//! A personal assistant that learns from user feedback — the paper's
//! Figure 1 loop as a library consumer would write it.
//!
//! The assistant observes interactions ("play my favorite song" → thumbs
//! up), fine-tunes its personal LLM with the PAC recipe (Parallel
//! Adapters with the activation cache), exports the personalization as a
//! megabyte-scale
//! adapter file, and restores it onto a fresh device holding only the
//! shared backbone.
//!
//! ```text
//! cargo run --release --example personal_assistant
//! ```

use pac_core::personalize::{Personalizer, PersonalizerConfig};
use pac_core::prelude::*;
use pac_tensor::rng::seeded;

fn main() {
    println!("=== Personal assistant feedback loop ===\n");

    // The shared backbone (shipped once to every device).
    let model_cfg = ModelConfig::micro(2, 1, 32, 4);
    let backbone = EncDecModel::new(&model_cfg, 2, &mut seeded(7));

    let mut assistant = Personalizer::new(
        backbone.clone(),
        PersonalizerConfig {
            n_classes: 2,
            reduction: 4,
            seq_len: 12,
            lr: 1e-2,
            seed: 11,
        },
    );

    // A week of interactions: commands with implicit feedback.
    let positive = [
        "play my favorite song",
        "that was perfect thank you",
        "great job with the lights",
        "i love this temperature",
        "nice choice of playlist",
    ];
    let negative = [
        "no stop that immediately",
        "that is wrong turn it off",
        "bad answer try again",
        "too loud turn it down",
        "not what i asked for",
    ];
    for _ in 0..3 {
        for t in positive {
            assistant.observe(t, 1);
        }
        for t in negative {
            assistant.observe(t, 0);
        }
    }
    println!("observed {} interactions", assistant.num_interactions());

    // Overnight fine-tuning: epoch 1 fills the activation cache, the rest
    // run without ever touching the backbone.
    let losses = assistant.train(10, 8).expect("training succeeds");
    println!(
        "training losses: first {:.3} → last {:.3}",
        losses[0],
        losses.last().unwrap()
    );
    let stats = assistant.cache_stats();
    println!(
        "activation cache: {} entries, {:.1} KiB, {} cache-served batches",
        stats.entries,
        stats.bytes as f64 / 1024.0,
        stats.hits
    );

    // Check the learned preferences.
    for text in ["play my favorite song", "bad answer try again"] {
        let proba = assistant.predict_proba(text).expect("inference works");
        println!("  \"{text}\" → P(positive) = {:.2}", proba[1]);
    }

    // Export the personalization: adapter-only, megabytes not gigabytes.
    let adapter = assistant.export_adapter().expect("export succeeds");
    let (trainable, total) = assistant.param_counts();
    println!(
        "\nexported adapter: {:.1} KiB ({} trainable of {} total params)",
        adapter.len() as f64 / 1024.0,
        trainable,
        total
    );

    // A brand-new device with the same backbone picks up the persona.
    let mut new_device = Personalizer::new(
        backbone,
        PersonalizerConfig {
            n_classes: 2,
            reduction: 4,
            seq_len: 12,
            lr: 1e-2,
            seed: 999, // different side-network init — overwritten by import
        },
    );
    new_device
        .import_adapter(&adapter)
        .expect("adapter import succeeds");
    let p = new_device
        .predict_proba("that was perfect thank you")
        .expect("inference works");
    println!(
        "new device after import: P(positive | \"that was perfect thank you\") = {:.2}",
        p[1]
    );
    println!("\nThe backbone never moved; the persona travelled as an adapter.");
}
