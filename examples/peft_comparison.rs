//! Comparing fine-tuning techniques: quality, trainable parameters, memory.
//!
//! Reproduces the flavor of the paper's Tables 1 and 3 in one run:
//!
//! * **quality** — real micro-scale fine-tuning of Full / Adapters / LoRA /
//!   Parallel Adapters from one shared pretrained checkpoint;
//! * **footprint** — analytic trainable-parameter and memory accounting at
//!   paper scale (T5-Large, batch 16, seq 128).
//!
//! ```text
//! cargo run --release --example peft_comparison
//! ```

use pac_core::prelude::*;
use pac_core::quality::{pa_difference_from_mean, run_quality_experiment};
use pac_peft::memory::{MemoryModel, Phase};

fn main() {
    println!("=== Fine-tuning technique comparison ===\n");

    // ----------------------------------------------------------- Table 1
    println!("## Memory footprint at paper scale (T5-Large, bs 16, seq 128)");
    println!(
        "{:<20} {:>12} {:>10} {:>12} {:>10} {:>10}",
        "technique", "trainable", "weights", "activations", "grads", "total"
    );
    let t5l = ModelConfig::t5_large();
    for technique in Technique::all_extended() {
        let m = MemoryModel::paper_defaults(t5l.clone(), technique);
        let b = m.breakdown(Phase::Training);
        println!(
            "{:<20} {:>11.1}M {:>9.2}G {:>11.2}G {:>9.2}G {:>9.2}G",
            technique.name(),
            m.trainable_params() as f64 / 1e6,
            b.weights as f64 / 1e9,
            b.activations as f64 / 1e9,
            b.gradients as f64 / 1e9,
            b.total() as f64 / 1e9,
        );
    }
    let pa = MemoryModel::paper_defaults(t5l.clone(), Technique::parallel_default());
    let cached = pa.breakdown(Phase::CachedTraining);
    println!(
        "{:<20} {:>12} {:>9.2}G {:>11.2}G {:>9.2}G {:>9.2}G   <- epochs ≥ 2",
        "PA + cache",
        "",
        cached.weights as f64 / 1e9,
        cached.activations as f64 / 1e9,
        cached.gradients as f64 / 1e9,
        cached.total() as f64 / 1e9,
    );
    let inf = MemoryModel::paper_defaults(t5l, Technique::Full).breakdown(Phase::Inference);
    println!(
        "{:<20} {:>12} {:>9.2}G {:>11} {:>10} {:>9.2}G",
        "Inference",
        "",
        inf.weights as f64 / 1e9,
        "/",
        "/",
        inf.total() as f64 / 1e9
    );

    // ----------------------------------------------------------- Table 3
    println!("\n## Quality parity at micro scale (shared pretrained backbone)");
    let micro = ModelConfig::micro(2, 1, 32, 4);
    let tasks = [TaskKind::Sst2, TaskKind::StsB];
    println!(
        "(fine-tuning {} tasks × 4 techniques — takes a minute)",
        tasks.len()
    );
    let cells = run_quality_experiment(&micro, &tasks, 96, 5, 17).expect("experiment runs");

    println!("\n{:<22} {:>8} {:>8}", "technique", "SST-2", "STS-B");
    for technique in Technique::all_paper() {
        let row: Vec<String> = tasks
            .iter()
            .map(|t| {
                cells
                    .iter()
                    .find(|c| c.technique == technique.name() && c.task == t.name())
                    .map(|c| format!("{:.1}", c.metric))
                    .unwrap_or_default()
            })
            .collect();
        println!("{:<22} {:>8} {:>8}", technique.name(), row[0], row[1]);
    }
    println!("\nParallel Adapters difference from baseline mean (paper: |Δ| ≤ 0.37):");
    for (task, d) in pa_difference_from_mean(&cells) {
        println!("  {task}: {d:+.2}");
    }
    println!("\n(Micro-scale variance is larger than the paper's ±0.37, but the");
    println!(" parity claim — PA in the same quality band as backbone-backprop");
    println!(" techniques at a fraction of the resources — reproduces.)");
}
