//! Quickstart: fine-tune a personal LLM with PAC in ~a minute on a laptop.
//!
//! This runs the complete PAC workflow (paper Figure 4) at micro scale:
//! a CPU-trainable stand-in backbone is "pretrained", equipped with
//! Parallel Adapters, planned onto a simulated 4-Nano cluster, fine-tuned
//! collaboratively for one epoch (filling the activation cache), and then
//! fine-tuned from the cache alone for the remaining epochs.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use pac_core::prelude::*;
use pac_core::trainer::{finetune, TrainConfig};
use pac_tensor::rng::seeded;

fn main() {
    println!("=== Pluto and Charon (PAC) quickstart ===\n");

    // A micro encoder-decoder model: 2 encoder + 1 decoder layers, d=32.
    // (The paper uses T5-Base/BART-Large/T5-Large; those configs drive the
    // simulated experiments in `pac-bench`.)
    let config = ModelConfig::micro(2, 1, 32, 4);
    let task = TaskKind::Sst2;
    println!(
        "model: {} ({} layers, hidden {})",
        config.name,
        config.total_layers(),
        config.hidden
    );
    println!("task:  {} ({})\n", task.name(), task.metric_name());

    // Step -1 (outside PAC): obtain a pretrained backbone. Offline we
    // emulate pre-training with a brief full fine-tune on pretext data.
    println!("pretraining backbone on pretext data...");
    let backbone = {
        let mut full = Tuner::new(Technique::Full, &config, task.n_out(), &mut seeded(1));
        let pretext = Dataset::generate(task, 96, 13, 999);
        let (ptrain, peval) = pretext.split(0.9);
        finetune(
            &mut full,
            &ptrain,
            &peval,
            &TrainConfig {
                epochs: 4,
                lr: 3e-3,
                ..Default::default()
            },
        )
        .expect("pretraining succeeds");
        match full {
            Tuner::Full(f) => f.model,
            _ => unreachable!(),
        }
    };

    // Steps 0-5: the PAC session.
    let session = PacSession::new(PacConfig {
        devices: 4,
        reduction: 4,
        epochs: 3,
        batch_size: 8,
        lr: 1e-2,
        seed: 42,
        checkpoint_every: 4,
        cache_int8: false,
    });
    println!("running PAC across 4 simulated edge devices...\n");
    let report = session
        .run_with_backbone(backbone, task, 64, 24)
        .expect("PAC session succeeds");

    println!(
        "planner chose:     {} stages {}",
        report.plan.num_stages(),
        report.plan.grouping_string()
    );
    println!(
        "trainable params:  {} of {} ({:.2}%)",
        report.trainable_params,
        report.total_params,
        100.0 * report.trainable_params as f64 / report.total_params as f64
    );
    println!("epoch losses:      {:?}", report.epoch_losses);
    println!(
        "activation cache:  {} entries, {:.1} KiB, {} hits / {} misses",
        report.cache_stats.entries,
        report.cache_stats.bytes as f64 / 1024.0,
        report.cache_stats.hits,
        report.cache_stats.misses
    );
    println!("final {}:  {:.1}", task.metric_name(), report.metric);
    println!("\nEpochs 2-3 never touched the backbone: they trained the");
    println!("Parallel Adapters purely from cached activations (paper §4.2).");
}
