//! Exploring the hybrid-parallelism planner across models and clusters
//! (the paper's Figure 10 device-grouping study, interactively).
//!
//! For each paper model and cluster size, prints the plan PAC's dynamic
//! program selects (Eq. 2–6) next to the two degenerate strategies —
//! Eco-FL's straight pipeline and EDDL's pure data parallelism — with their
//! simulated mini-batch times and OOM verdicts.
//!
//! ```text
//! cargo run --release --example cluster_planning
//! ```

use pac_cluster::{Cluster, CostModel};
use pac_core::prelude::*;
use pac_parallel::{simulate_data_parallel, simulate_plan, ParallelPlan, Schedule};
use pac_planner::Planner;

fn main() {
    println!("=== PAC planner exploration (cf. paper Figure 10) ===\n");
    let technique = Technique::parallel_default();

    for model in ModelConfig::paper_models() {
        println!("## {} ({} layers)", model.name, model.total_layers());
        println!(
            "{:>8} | {:<22} | {:>12} | {:>12} | {:>12}",
            "devices", "PAC plan", "PAC (s)", "Eco-FL (s)", "EDDL (s)"
        );
        for n in [2usize, 4, 6, 8] {
            let cluster = Cluster::nanos(n);
            let limit = cluster.devices[0].usable_memory;
            let cost = CostModel::new(model.clone(), technique, 128);
            let layers = cost.layer_costs().len();
            let mini_batch = n; // paper Fig 9: batch size = #devices

            // PAC: planner-selected hybrid.
            let planner = Planner::paper_defaults(cluster.clone(), mini_batch);
            let (pac_desc, pac_time) = match planner.plan(&cost) {
                Some(o) => (
                    o.best.grouping_string(),
                    format!("{:.2}", o.best_makespan_s),
                ),
                None => ("—".into(), "OOM".into()),
            };

            // Eco-FL: straight pipeline, one stage per device.
            let ecofl = {
                let plan = ParallelPlan::pipeline_even(layers, n);
                let sim = simulate_plan(&cluster, &cost, &plan, mini_batch, n, Schedule::GPipe);
                if sim.oom_stage(limit).is_some() {
                    "OOM".to_string()
                } else {
                    format!("{:.2}", sim.makespan_s)
                }
            };

            // EDDL: full replica per device.
            let eddl = {
                let sim = simulate_data_parallel(&cluster, &cost, mini_batch);
                if sim.oom_device(limit).is_some() {
                    "OOM".to_string()
                } else {
                    format!("{:.2}", sim.step_s)
                }
            };

            println!(
                "{:>8} | {:<22} | {:>12} | {:>12} | {:>12}",
                n, pac_desc, pac_time, ecofl, eddl
            );
        }
        println!();
    }

    println!("Notes:");
    println!("- 'PAC plan' shows stage groups, e.g. [4N] [4N] = 2 stages × 4 Nanos.");
    println!("- EDDL OOMs whenever one Nano cannot hold a full model replica");
    println!("  (BART-Large and T5-Large), matching the paper's Figure 9.");
    println!("- PAC's hybrid plans beat the straight pipeline by shrinking the");
    println!("  stage count (fewer bubbles, less inter-stage traffic).");
}
