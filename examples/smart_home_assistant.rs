//! Smart-home personal-assistant scenario (the paper's Figure 1).
//!
//! A household's intelligent personal assistant collects interaction data
//! (commands with user feedback → sentiment-style labels, and
//! question/answer pairs → QNLI-style entailment). Overnight, the
//! assistant fine-tunes its personal LLM **in situ** across the idle
//! devices on the home LAN — a Jetson TX2 media box, two Jetson Nano
//! cameras and a Raspberry Pi hub — without any interaction data leaving
//! the house.
//!
//! The example shows both halves of the reproduction:
//! 1. planning + time/memory estimation on the *paper-scale* model
//!    (T5-Base) over the heterogeneous home cluster, and
//! 2. a *real* collaborative fine-tuning run at micro scale with the
//!    activation cache.
//!
//! ```text
//! cargo run --release --example smart_home_assistant
//! ```

use pac_cluster::CostModel;
use pac_core::prelude::*;
use pac_core::trainer::{finetune, TrainConfig};
use pac_planner::Planner;
use pac_tensor::rng::seeded;

fn main() {
    println!("=== PAC in a smart home ===\n");

    // ---------------------------------------------------------------
    // Part 1: plan the paper-scale personal LLM onto the home cluster.
    // ---------------------------------------------------------------
    let home = Cluster::smart_home();
    println!("home devices:");
    for d in &home.devices {
        println!(
            "  - {:<16} {:>6.0} GFLOPS eff., {:>4.1} GiB usable",
            d.name,
            d.effective_flops() / 1e9,
            d.usable_memory as f64 / (1024.0 * 1024.0 * 1024.0)
        );
    }

    let model = ModelConfig::t5_base();
    let technique = Technique::parallel_default();
    let cost = CostModel::new(model.clone(), technique, 128);
    let planner = Planner::paper_defaults(home.clone(), 16);
    match planner.plan(&cost) {
        Some(outcome) => {
            println!(
                "\nplanned {} as {} stages {} — {:.2} s per mini-batch",
                model.name,
                outcome.best.num_stages(),
                outcome.best.grouping_string(),
                outcome.best_makespan_s
            );
            println!("candidates evaluated:");
            for c in &outcome.candidates {
                println!(
                    "  s={}  {:<14} {:>8.2} s {}",
                    c.stages,
                    c.plan.grouping_string(),
                    c.makespan_s,
                    if c.oom { "(OOM)" } else { "" }
                );
            }
        }
        None => println!("\nno feasible plan — model too large for this home"),
    }

    // ----------------------------------------------------------------
    // Part 1b: robustness — a camera powers off mid-training.
    // ----------------------------------------------------------------
    println!("\n--- device failure: one Jetson Nano drops off the LAN ---");
    match planner.replan_without(&cost, &[2]) {
        Some(o) => println!(
            "replanned onto 3 devices: {} stages {} — {:.2} s per mini-batch",
            o.best.num_stages(),
            o.best.grouping_string(),
            o.best_makespan_s
        ),
        None => println!("no feasible plan on the survivors"),
    }

    // ----------------------------------------------------------------
    // Part 2: real overnight fine-tuning at micro scale with the cache.
    // ----------------------------------------------------------------
    println!("\n--- overnight fine-tuning on collected interactions ---");
    let micro = ModelConfig::micro(2, 1, 32, 4);
    let task = TaskKind::Qnli; // "did the assistant answer the question?"

    let backbone = {
        let mut full = Tuner::new(Technique::Full, &micro, task.n_out(), &mut seeded(11));
        let pretext = Dataset::generate(task, 120, 13, 1234);
        let (ptrain, peval) = pretext.split(0.9);
        finetune(
            &mut full,
            &ptrain,
            &peval,
            &TrainConfig {
                epochs: 5,
                lr: 3e-3,
                ..Default::default()
            },
        )
        .expect("pretraining succeeds");
        match full {
            Tuner::Full(f) => f.model,
            _ => unreachable!(),
        }
    };

    let session = PacSession::new(PacConfig {
        devices: home.len(),
        reduction: 4,
        epochs: 3,
        batch_size: 8,
        lr: 1e-2,
        seed: 7,
        checkpoint_every: 4,
        cache_int8: false,
    });
    let report = session
        .run_with_backbone(backbone, task, 80, 24)
        .expect("session succeeds");

    println!("epoch losses: {:?}", report.epoch_losses);
    println!(
        "cache: {} interactions cached ({:.1} KiB), {} cache-served batches",
        report.cache_stats.entries,
        report.cache_stats.bytes as f64 / 1024.0,
        report.cache_stats.hits
    );
    println!(
        "assistant quality ({}): {:.1}",
        task.metric_name(),
        report.metric
    );
    println!("\nAll interaction data stayed on the home LAN.");
}
