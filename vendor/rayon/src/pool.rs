//! Persistent, lazily-initialized worker pool.
//!
//! The first parallel call starts `PAC_POOL_THREADS - 1` worker threads
//! (default: `available_parallelism`) that park on a condvar between
//! calls, so steady-state parallel kernels pay a notify/park handshake
//! (~single-digit µs) instead of per-call OS thread spawns (~tens of µs).
//!
//! Execution model: a parallel call becomes a [`Job`] of `n_chunks`
//! independent chunk indices claimed through a shared atomic cursor. The
//! submitting thread pushes the job, wakes workers, then *helps* — it
//! claims chunks like any worker — which makes the pool deadlock-free
//! even with zero workers and keeps small jobs fast (the submitter often
//! finishes every chunk before a worker wakes). Chunk *assignment* to
//! threads is racy by design; determinism is the caller's contract: each
//! chunk must write a disjoint output region and must not depend on any
//! other chunk, so results are identical at every thread count.
//!
//! Panics inside a chunk are caught, the first payload is stored, and it
//! is re-raised **intact** on the submitting thread once the job drains —
//! `EngineError::LanePanic` attribution upstream depends on receiving the
//! original payload, not a stringified copy.

use std::any::Any;
use std::cell::Cell;
use std::collections::VecDeque;
use std::num::NonZeroUsize;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicIsize, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, OnceLock};
use std::time::Instant;

/// Lifetime-erased pointer to a per-chunk task closure.
///
/// Safety contract: [`run`] does not return (normally or by unwinding)
/// until every chunk of its job has finished executing, so the pointee
/// outlives all dereferences even though the lifetime is erased here.
#[derive(Clone, Copy)]
struct TaskPtr(*const (dyn Fn(usize) + Sync));

// SAFETY: the pointee is `Sync` (shared calls are fine) and `run` keeps
// it alive for the duration of all uses; see `TaskPtr` docs.
unsafe impl Send for TaskPtr {}
unsafe impl Sync for TaskPtr {}

struct JobState {
    done: bool,
    panic: Option<Box<dyn Any + Send>>,
}

/// One parallel call: `n_chunks` chunk indices claimed via `cursor`.
struct Job {
    task: TaskPtr,
    n_chunks: usize,
    /// Next unclaimed chunk index.
    cursor: AtomicUsize,
    /// Chunks claimed but not yet finished plus chunks unclaimed.
    pending: AtomicUsize,
    /// How many more worker threads may still join this job (the
    /// submitter is not counted). Lets callers cap per-call concurrency.
    helper_slots: AtomicIsize,
    state: Mutex<JobState>,
    done_cv: Condvar,
}

impl Job {
    fn new(task: TaskPtr, n_chunks: usize, helpers: usize) -> Self {
        Job {
            task,
            n_chunks,
            cursor: AtomicUsize::new(0),
            pending: AtomicUsize::new(n_chunks),
            helper_slots: AtomicIsize::new(helpers as isize),
            state: Mutex::new(JobState {
                done: false,
                panic: None,
            }),
            done_cv: Condvar::new(),
        }
    }

    /// Claims and runs chunks until the cursor is exhausted. Returns the
    /// number of chunks this thread executed.
    fn help(&self) -> u64 {
        let mut ran = 0u64;
        loop {
            let i = self.cursor.fetch_add(1, Ordering::Relaxed);
            if i >= self.n_chunks {
                return ran;
            }
            ran += 1;
            // SAFETY: `run` keeps the closure alive until the job drains.
            let task = unsafe { &*self.task.0 };
            if let Err(payload) = catch_unwind(AssertUnwindSafe(|| task(i))) {
                let mut st = self.state.lock().expect("pool job state lock");
                if st.panic.is_none() {
                    st.panic = Some(payload);
                }
            }
            if self.pending.fetch_sub(1, Ordering::AcqRel) == 1 {
                let mut st = self.state.lock().expect("pool job state lock");
                st.done = true;
                self.done_cv.notify_all();
            }
        }
    }

    fn exhausted(&self) -> bool {
        self.cursor.load(Ordering::Relaxed) >= self.n_chunks
    }
}

struct Shared {
    queue: Mutex<VecDeque<Arc<Job>>>,
    work_cv: Condvar,
}

struct Pool {
    shared: Arc<Shared>,
    workers: usize,
}

static POOL: OnceLock<Pool> = OnceLock::new();

static PARALLEL_CALLS: AtomicU64 = AtomicU64::new(0);
static TASKS: AtomicU64 = AtomicU64::new(0);
static BUSY_NS: AtomicU64 = AtomicU64::new(0);

/// Snapshot of the pool's activity counters since process start (or the
/// last [`reset_stats`]).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct PoolStats {
    /// Parallel calls submitted (`run`, and everything built on it:
    /// `parallel_map`, `join`, `par_iter` terminals).
    pub parallel_calls: u64,
    /// Chunk tasks executed across all threads.
    pub tasks: u64,
    /// Wall-clock nanoseconds threads spent executing chunks, summed over
    /// threads (nested parallel calls count their inner time twice).
    pub busy_ns: u64,
}

/// Returns the activity counters.
pub fn stats() -> PoolStats {
    PoolStats {
        parallel_calls: PARALLEL_CALLS.load(Ordering::Relaxed),
        tasks: TASKS.load(Ordering::Relaxed),
        busy_ns: BUSY_NS.load(Ordering::Relaxed),
    }
}

/// Zeroes the activity counters (benchmarks isolate phases with this).
pub fn reset_stats() {
    PARALLEL_CALLS.store(0, Ordering::Relaxed);
    TASKS.store(0, Ordering::Relaxed);
    BUSY_NS.store(0, Ordering::Relaxed);
}

/// Total parallelism width (submitter + persistent workers): the value of
/// `PAC_POOL_THREADS` if set, else `available_parallelism`. `1` (or `0`)
/// means fully sequential — no worker threads are ever started.
pub fn pool_width() -> usize {
    pool().workers + 1
}

fn configured_width() -> usize {
    if let Ok(v) = std::env::var("PAC_POOL_THREADS") {
        if let Ok(n) = v.trim().parse::<usize>() {
            return n.max(1);
        }
    }
    std::thread::available_parallelism()
        .map(NonZeroUsize::get)
        .unwrap_or(1)
}

fn pool() -> &'static Pool {
    POOL.get_or_init(|| {
        let width = configured_width();
        let shared = Arc::new(Shared {
            queue: Mutex::new(VecDeque::new()),
            work_cv: Condvar::new(),
        });
        for i in 0..width.saturating_sub(1) {
            let shared = Arc::clone(&shared);
            std::thread::Builder::new()
                .name(format!("pac-pool-{i}"))
                .spawn(move || worker_loop(&shared))
                .expect("spawn pool worker");
        }
        Pool {
            shared,
            workers: width.saturating_sub(1),
        }
    })
}

fn worker_loop(shared: &Shared) {
    loop {
        let job = {
            let mut q = shared.queue.lock().expect("pool queue lock");
            loop {
                while q.front().is_some_and(|j| j.exhausted()) {
                    q.pop_front();
                }
                // First queued job that still has unclaimed chunks and a
                // free helper slot (jobs capped below their slot count are
                // skipped, not blocked on).
                let found = q.iter().find_map(|j| {
                    if j.exhausted() {
                        return None;
                    }
                    if j.helper_slots.fetch_sub(1, Ordering::AcqRel) > 0 {
                        return Some(Arc::clone(j));
                    }
                    j.helper_slots.fetch_add(1, Ordering::AcqRel);
                    None
                });
                match found {
                    Some(j) => break j,
                    None => q = shared.work_cv.wait(q).expect("pool queue wait"),
                }
            }
        };
        let t0 = Instant::now();
        let ran = job.help();
        TASKS.fetch_add(ran, Ordering::Relaxed);
        BUSY_NS.fetch_add(t0.elapsed().as_nanos() as u64, Ordering::Relaxed);
    }
}

thread_local! {
    /// Per-submitting-thread cap on a call's parallelism width.
    static MAX_CONCURRENCY: Cell<usize> = const { Cell::new(usize::MAX) };
}

/// Caps the parallelism width (submitter + helpers) of parallel calls made
/// from the **current thread**; `usize::MAX` (the default) means "whole
/// pool". The determinism stress tests run identical work at different
/// caps concurrently — results must be bitwise identical regardless.
pub fn set_max_concurrency(width: usize) {
    MAX_CONCURRENCY.with(|c| c.set(width.max(1)));
}

/// Current thread's parallelism cap (see [`set_max_concurrency`]).
pub fn max_concurrency() -> usize {
    MAX_CONCURRENCY.with(Cell::get)
}

/// If true, parallel calls spawn scoped OS threads per call (the
/// pre-pool behavior) instead of using the persistent pool.
static SPAWN_MODE: AtomicBool = AtomicBool::new(false);

/// Execution strategy for parallel calls.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ExecMode {
    /// Persistent worker pool (default).
    Pooled,
    /// Scoped `std::thread` spawn per call — the pre-pool baseline, kept
    /// so benchmarks can measure what the pool saves.
    Spawn,
}

/// Selects the process-wide execution strategy (benchmarks only).
pub fn set_exec_mode(mode: ExecMode) {
    SPAWN_MODE.store(mode == ExecMode::Spawn, Ordering::Relaxed);
}

/// Runs `task(0..n_chunks)` across the pool. Every chunk index is executed
/// exactly once; the call returns only after all chunks finish. If any
/// chunk panics, the first payload is re-raised on this thread intact.
pub(crate) fn run(task: &(dyn Fn(usize) + Sync), n_chunks: usize) {
    if n_chunks == 0 {
        return;
    }
    PARALLEL_CALLS.fetch_add(1, Ordering::Relaxed);
    let p = pool();
    let width = (p.workers + 1).min(max_concurrency()).min(n_chunks);
    if SPAWN_MODE.load(Ordering::Relaxed) {
        // The pre-pool code spawned `min(cores, items)` scoped threads per
        // call — one per core, NOT one per chunk, since items (rows) always
        // far outnumbered cores. Reproduce that width here so the baseline
        // pays the per-call thread cost the pool was built to eliminate.
        let spawn_width = (p.workers + 1).min(max_concurrency());
        if spawn_width > 1 {
            return run_spawn(task, n_chunks, spawn_width);
        }
    }
    let t0 = Instant::now();
    if width <= 1 {
        // Sequential: no catch_unwind, panics propagate naturally.
        for i in 0..n_chunks {
            task(i);
        }
        TASKS.fetch_add(n_chunks as u64, Ordering::Relaxed);
        BUSY_NS.fetch_add(t0.elapsed().as_nanos() as u64, Ordering::Relaxed);
        return;
    }
    // SAFETY: lifetime erasure only — `run` does not return until the job
    // drains, so the closure outlives every dereference (see TaskPtr).
    let task_erased: &'static (dyn Fn(usize) + Sync) = unsafe { std::mem::transmute(task) };
    let job = Arc::new(Job::new(TaskPtr(task_erased), n_chunks, width - 1));
    {
        let mut q = p.shared.queue.lock().expect("pool queue lock");
        q.push_back(Arc::clone(&job));
    }
    p.shared.work_cv.notify_all();
    let ran = job.help();
    TASKS.fetch_add(ran, Ordering::Relaxed);
    BUSY_NS.fetch_add(t0.elapsed().as_nanos() as u64, Ordering::Relaxed);
    // Wait for chunks claimed by workers; must not unwind before the job
    // drains or the task closure could dangle (see TaskPtr safety).
    let mut st = job.state.lock().expect("pool job state lock");
    while !st.done {
        st = job.done_cv.wait(st).expect("pool job done wait");
    }
    if let Some(payload) = st.panic.take() {
        drop(st);
        resume_unwind(payload);
    }
}

/// Pre-pool baseline: `width` scoped OS threads spawned per call (the
/// submitter only joins, as the old `parallel_map` did), claiming chunks
/// through the same cursor discipline (identical chunk → output mapping,
/// so results match the pooled path bitwise).
fn run_spawn(task: &(dyn Fn(usize) + Sync), n_chunks: usize, width: usize) {
    let cursor = AtomicUsize::new(0);
    let panic_slot: Mutex<Option<Box<dyn Any + Send>>> = Mutex::new(None);
    let claim_all = |_helper: usize| {
        let mut ran = 0u64;
        loop {
            let i = cursor.fetch_add(1, Ordering::Relaxed);
            if i >= n_chunks {
                return ran;
            }
            ran += 1;
            if let Err(payload) = catch_unwind(AssertUnwindSafe(|| task(i))) {
                let mut slot = panic_slot.lock().expect("spawn panic slot");
                if slot.is_none() {
                    *slot = Some(payload);
                }
            }
        }
    };
    let t0 = Instant::now();
    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..width)
            .map(|h| scope.spawn(move || claim_all(h)))
            .collect();
        let mut ran = 0;
        for h in handles {
            ran += h.join().unwrap_or(0);
        }
        TASKS.fetch_add(ran, Ordering::Relaxed);
    });
    BUSY_NS.fetch_add(t0.elapsed().as_nanos() as u64, Ordering::Relaxed);
    if let Some(payload) = panic_slot.into_inner().expect("spawn panic slot") {
        resume_unwind(payload);
    }
}

/// Runs `a` and `b`, potentially in parallel, returning both results.
/// A panic in either closure is re-raised intact (if both panic, `a`'s or
/// `b`'s payload — whichever was recorded first — wins).
pub fn join<A, B, RA, RB>(a: A, b: B) -> (RA, RB)
where
    A: FnOnce() -> RA + Send,
    B: FnOnce() -> RB + Send,
    RA: Send,
    RB: Send,
{
    let a = Mutex::new(Some(a));
    let b = Mutex::new(Some(b));
    let ra: Mutex<Option<RA>> = Mutex::new(None);
    let rb: Mutex<Option<RB>> = Mutex::new(None);
    let task = |i: usize| {
        if i == 0 {
            let f = a
                .lock()
                .expect("join slot a")
                .take()
                .expect("chunk 0 runs once");
            *ra.lock().expect("join result a") = Some(f());
        } else {
            let f = b
                .lock()
                .expect("join slot b")
                .take()
                .expect("chunk 1 runs once");
            *rb.lock().expect("join result b") = Some(f());
        }
    };
    run(&task, 2);
    let ra = ra
        .into_inner()
        .expect("join result a")
        .expect("chunk 0 completed");
    let rb = rb
        .into_inner()
        .expect("join result b")
        .expect("chunk 1 completed");
    (ra, rb)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU32;

    #[test]
    fn run_executes_every_chunk_exactly_once() {
        let counts: Vec<AtomicU32> = (0..257).map(|_| AtomicU32::new(0)).collect();
        let task = |i: usize| {
            counts[i].fetch_add(1, Ordering::Relaxed);
        };
        run(&task, counts.len());
        assert!(counts.iter().all(|c| c.load(Ordering::Relaxed) == 1));
    }

    #[test]
    fn panic_payload_is_propagated_intact() {
        #[derive(Debug, PartialEq)]
        struct Marker(u64);
        let task = |i: usize| {
            if i == 3 {
                std::panic::panic_any(Marker(0xBEEF));
            }
        };
        let err = catch_unwind(AssertUnwindSafe(|| run(&task, 8))).expect_err("chunk 3 panics");
        let marker = err.downcast::<Marker>().expect("payload preserved intact");
        assert_eq!(*marker, Marker(0xBEEF));
    }

    #[test]
    fn join_returns_both_and_propagates_panic() {
        let (x, y) = join(|| 6 * 7, || "ok".to_string());
        assert_eq!((x, y.as_str()), (42, "ok"));

        let err = catch_unwind(AssertUnwindSafe(|| {
            join(|| (), || panic!("join b boom"));
        }))
        .expect_err("b panics");
        let msg = err.downcast::<&'static str>().expect("str payload");
        assert_eq!(*msg, "join b boom");
    }

    #[test]
    fn concurrency_cap_still_computes_everything() {
        set_max_concurrency(2);
        let counts: Vec<AtomicU32> = (0..64).map(|_| AtomicU32::new(0)).collect();
        let task = |i: usize| {
            counts[i].fetch_add(1, Ordering::Relaxed);
        };
        run(&task, counts.len());
        set_max_concurrency(usize::MAX);
        assert!(counts.iter().all(|c| c.load(Ordering::Relaxed) == 1));
    }

    #[test]
    fn stats_count_calls_and_tasks() {
        let before = stats();
        run(&|_| {}, 5);
        let after = stats();
        assert!(after.parallel_calls > before.parallel_calls);
        assert!(after.tasks >= before.tasks + 5);
    }

    #[test]
    fn spawn_mode_matches_pooled_results() {
        let run_once = || {
            let mut out = vec![0u64; 300];
            let ptr = out.as_mut_ptr() as usize;
            let task = move |i: usize| {
                // SAFETY: each chunk writes a distinct index.
                unsafe { *(ptr as *mut u64).add(i) = (i * i) as u64 };
            };
            run(&task, 300);
            out
        };
        let pooled = run_once();
        set_exec_mode(ExecMode::Spawn);
        let spawned = run_once();
        set_exec_mode(ExecMode::Pooled);
        assert_eq!(pooled, spawned);
    }
}
