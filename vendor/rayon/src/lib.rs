//! Offline subset of the `rayon` parallel-iterator API.
//!
//! The build environment has no registry access, so the workspace vendors
//! the combinator surface it uses — `par_iter` / `par_iter_mut` /
//! `par_chunks_mut` with `zip`, `map`, `enumerate`, `for_each`, `collect`,
//! plus `join` — executed on a persistent worker [`pool`] (see that
//! module for sizing via `PAC_POOL_THREADS`, chunk claiming, panic
//! propagation, and the determinism contract).
//!
//! Order is preserved by writing each item's result into its own
//! pre-sized slot; which thread computes which item is racy by design and
//! never observable in the output.

pub mod pool;

pub use pool::join;

/// Everything a caller needs in scope, mirroring `rayon::prelude`.
pub mod prelude {
    pub use crate::{IntoParallelRefIterator, IntoParallelRefMutIterator, ParallelSliceMut};
}

/// Raw pointer wrapper for handing disjoint slot writes to pool chunks.
struct SendPtr<T>(*mut T);

impl<T> Clone for SendPtr<T> {
    fn clone(&self) -> Self {
        *self
    }
}
impl<T> Copy for SendPtr<T> {}

// SAFETY: every chunk index touches only its own slot, and `pool::run`
// returns only after all chunks finish.
unsafe impl<T: Send> Send for SendPtr<T> {}
unsafe impl<T: Send> Sync for SendPtr<T> {}

impl<T> SendPtr<T> {
    /// Accessor (rather than field access) so closures capture the whole
    /// `Sync` wrapper, not the raw pointer field.
    fn get(self) -> *mut T {
        self.0
    }
}

/// Applies `f` to every item on the worker pool, preserving input order
/// in the returned vector.
fn parallel_map<T: Send, R: Send>(items: Vec<T>, f: impl Fn(T) -> R + Sync) -> Vec<R> {
    let n = items.len();
    if n == 0 {
        return Vec::new();
    }
    let mut slots: Vec<Option<T>> = items.into_iter().map(Some).collect();
    let mut out: Vec<Option<R>> = std::iter::repeat_with(|| None).take(n).collect();
    let in_ptr = SendPtr(slots.as_mut_ptr());
    let out_ptr = SendPtr(out.as_mut_ptr());
    let task = move |i: usize| {
        // SAFETY: chunk i reads and writes only slot i (see SendPtr).
        unsafe {
            let item = (*in_ptr.get().add(i))
                .take()
                .expect("slot filled exactly once");
            *out_ptr.get().add(i) = Some(f(item));
        }
    };
    pool::run(&task, n);
    out.into_iter()
        .map(|r| r.expect("every slot computed"))
        .collect()
}

/// A materialized "parallel iterator": the item sequence is collected up
/// front, terminal operations fan it out across threads.
pub struct ParIter<T> {
    items: Vec<T>,
}

impl<T: Send> ParIter<T> {
    /// Pairs items positionally, truncating to the shorter side (as `zip`).
    pub fn zip<U: Send>(self, other: ParIter<U>) -> ParIter<(T, U)> {
        ParIter {
            items: self.items.into_iter().zip(other.items).collect(),
        }
    }

    /// Pairs every item with its index.
    pub fn enumerate(self) -> ParIter<(usize, T)> {
        ParIter {
            items: self.items.into_iter().enumerate().collect(),
        }
    }

    /// Lazy map; runs on the worker threads at the terminal operation.
    pub fn map<R, F>(self, f: F) -> ParMap<T, F>
    where
        F: Fn(T) -> R + Sync,
    {
        ParMap {
            items: self.items,
            f,
        }
    }

    /// Runs `f` on every item across threads.
    pub fn for_each<F>(self, f: F)
    where
        F: Fn(T) + Sync,
    {
        parallel_map(self.items, f);
    }

    /// Number of items.
    pub fn len(&self) -> usize {
        self.items.len()
    }

    /// True when no items remain.
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }
}

/// A mapped parallel iterator awaiting its terminal operation.
pub struct ParMap<T, F> {
    items: Vec<T>,
    f: F,
}

impl<T: Send, F> ParMap<T, F> {
    /// Evaluates the map across threads and collects in input order.
    pub fn collect<C, R>(self) -> C
    where
        F: Fn(T) -> R + Sync,
        R: Send,
        C: FromIterator<R>,
    {
        parallel_map(self.items, self.f).into_iter().collect()
    }

    /// Evaluates the map for its side effects.
    pub fn for_each<R>(self)
    where
        F: Fn(T) -> R + Sync,
        R: Send,
    {
        let _ = parallel_map(self.items, self.f);
    }
}

/// `.par_iter()` on anything viewable as a slice.
pub trait IntoParallelRefIterator<'a> {
    /// Shared-reference item type.
    type Item: Send;

    /// Parallel iterator over `&self`.
    fn par_iter(&'a self) -> ParIter<Self::Item>;
}

impl<'a, T: Sync + 'a> IntoParallelRefIterator<'a> for [T] {
    type Item = &'a T;

    fn par_iter(&'a self) -> ParIter<&'a T> {
        ParIter {
            items: self.iter().collect(),
        }
    }
}

/// `.par_iter_mut()` on anything viewable as a mutable slice.
pub trait IntoParallelRefMutIterator<'a> {
    /// Mutable-reference item type.
    type Item: Send;

    /// Parallel iterator over `&mut self`.
    fn par_iter_mut(&'a mut self) -> ParIter<Self::Item>;
}

impl<'a, T: Send + 'a> IntoParallelRefMutIterator<'a> for [T] {
    type Item = &'a mut T;

    fn par_iter_mut(&'a mut self) -> ParIter<&'a mut T> {
        ParIter {
            items: self.iter_mut().collect(),
        }
    }
}

/// `.par_chunks_mut()` on mutable slices.
pub trait ParallelSliceMut<T: Send> {
    /// Parallel iterator over non-overlapping mutable chunks of `size`.
    fn par_chunks_mut(&mut self, size: usize) -> ParIter<&mut [T]>;
}

impl<T: Send> ParallelSliceMut<T> for [T] {
    fn par_chunks_mut(&mut self, size: usize) -> ParIter<&mut [T]> {
        assert!(size > 0, "par_chunks_mut: chunk size must be positive");
        ParIter {
            items: self.chunks_mut(size).collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn chunked_for_each_touches_every_element_once() {
        let mut v = vec![0u64; 1003];
        v.par_chunks_mut(64).enumerate().for_each(|(i, chunk)| {
            for (j, x) in chunk.iter_mut().enumerate() {
                *x = (i * 64 + j) as u64;
            }
        });
        assert!(v.iter().enumerate().all(|(i, &x)| x == i as u64));
    }

    #[test]
    fn map_collect_preserves_order() {
        let xs: Vec<usize> = (0..500).collect();
        let doubled: Vec<usize> = xs.par_iter().map(|&x| x * 2).collect();
        assert_eq!(doubled, (0..500).map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn zip_mut_updates_in_parallel() {
        let mut a = vec![0i64; 256];
        let b: Vec<i64> = (0..256).collect();
        let sums: Vec<i64> = a
            .par_iter_mut()
            .zip(b.par_iter())
            .map(|(x, &y)| {
                *x = y * y;
                *x + y
            })
            .collect();
        assert_eq!(a[10], 100);
        assert_eq!(sums[10], 110);
    }
}
