//! Offline subset of `criterion`: a minimal wall-clock micro-benchmark
//! harness exposing the API the workspace benches use (`Criterion`,
//! `benchmark_group`, `bench_function`, `bench_with_input`, `BenchmarkId`,
//! `Throughput`, `Bencher::iter`, `criterion_group!`, `criterion_main!`).
//!
//! Instead of criterion's statistical analysis it runs a short warm-up,
//! auto-scales the iteration count to a per-benchmark time budget, and
//! prints mean / min time per iteration (plus element throughput when
//! declared). Good enough to compare configurations by hand; not a
//! substitute for upstream criterion's confidence intervals.

use std::fmt;
use std::hint::black_box as std_black_box;
use std::time::{Duration, Instant};

/// Re-export of `std::hint::black_box` under criterion's name.
pub fn black_box<T>(x: T) -> T {
    std_black_box(x)
}

/// Declared throughput of one benchmark iteration.
#[derive(Clone, Copy, Debug)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// Identifier for one parameterized benchmark case.
#[derive(Clone, Debug)]
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// `function_name/parameter` form.
    pub fn new(function_name: impl fmt::Display, parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            label: format!("{function_name}/{parameter}"),
        }
    }

    /// Parameter-only form.
    pub fn from_parameter(parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            label: parameter.to_string(),
        }
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.label)
    }
}

/// Passed to the closure under measurement; `iter` times the hot loop.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Runs `routine` `self.iters` times, recording total elapsed time.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        let start = Instant::now();
        for _ in 0..self.iters {
            std_black_box(routine());
        }
        self.elapsed = start.elapsed();
    }
}

fn fmt_duration(d: Duration) -> String {
    let ns = d.as_nanos();
    if ns < 1_000 {
        format!("{ns} ns")
    } else if ns < 1_000_000 {
        format!("{:.2} µs", ns as f64 / 1e3)
    } else if ns < 1_000_000_000 {
        format!("{:.2} ms", ns as f64 / 1e6)
    } else {
        format!("{:.3} s", ns as f64 / 1e9)
    }
}

/// One benchmark's measured result (what upstream criterion would estimate
/// statistically; here: order statistics over the per-sample means).
#[derive(Clone, Debug)]
pub struct BenchResult {
    /// Benchmark label.
    pub name: String,
    /// Total iterations across all measurement samples.
    pub iters: u64,
    /// Median per-iteration time across samples, nanoseconds.
    pub p50_ns: u64,
    /// 95th-percentile per-iteration time across samples, nanoseconds.
    pub p95_ns: u64,
    /// Mean per-iteration time, nanoseconds.
    pub mean_ns: u64,
    /// Fastest sample's per-iteration time, nanoseconds.
    pub min_ns: u64,
    /// Declared units (elements or bytes) per second, from the p50 time.
    pub throughput: Option<f64>,
}

/// Calibrates an iteration count targeting `budget`, then reports
/// per-iteration timing for `f`.
fn measure(
    name: &str,
    throughput: Option<Throughput>,
    budget: Duration,
    f: &mut dyn FnMut(&mut Bencher),
) -> BenchResult {
    // Warm-up / calibration: start at 1 iteration and double until the
    // sample takes long enough to matter.
    let mut iters: u64 = 1;
    let mut per_iter;
    loop {
        let mut b = Bencher {
            iters,
            elapsed: Duration::ZERO,
        };
        f(&mut b);
        per_iter = b
            .elapsed
            .checked_div(iters as u32)
            .unwrap_or(Duration::ZERO);
        if b.elapsed >= Duration::from_millis(5) || iters >= 1 << 20 {
            break;
        }
        iters = iters.saturating_mul(2);
    }
    let target = if per_iter.is_zero() {
        iters
    } else {
        (budget.as_nanos() / per_iter.as_nanos().max(1)).clamp(1, 1 << 24) as u64
    };

    // Measurement: many small samples at the calibrated count, so the
    // percentiles below have an actual distribution behind them.
    let samples = 20usize;
    let sample_iters = (target / samples as u64).max(1);

    // Warm-up proper: the calibration loop above spends most of its time
    // at tiny iteration counts, so caches, branch predictors, and the
    // allocator's free lists are still cold when the first measured
    // sample runs. Burn a few discarded samples at the measurement count
    // so the first *recorded* sample sees the same steady state as the
    // last one.
    for _ in 0..3 {
        let mut b = Bencher {
            iters: sample_iters,
            elapsed: Duration::ZERO,
        };
        f(&mut b);
    }

    let mut per_iter_ns: Vec<u64> = Vec::with_capacity(samples);
    let mut total_iters: u64 = 0;
    for _ in 0..samples {
        let mut b = Bencher {
            iters: sample_iters,
            elapsed: Duration::ZERO,
        };
        f(&mut b);
        per_iter_ns.push((b.elapsed.as_nanos() as u64) / sample_iters);
        total_iters += sample_iters;
    }
    per_iter_ns.sort_unstable();

    // Cold-start outlier drop: one-off samples inflated by first-touch
    // page faults or scheduler preemption showed up as p95 ≈ 3× p50 on
    // alloc-heavy benches (`kernel_alloc_64/into_reused_out`). Trim
    // trailing samples beyond 2× the median, but keep at least 3/4 of
    // the set so a genuinely bimodal workload still surfaces in p95.
    let median = per_iter_ns[per_iter_ns.len() / 2];
    let keep_min = per_iter_ns.len() * 3 / 4;
    while per_iter_ns.len() > keep_min && *per_iter_ns.last().unwrap() > median.saturating_mul(2) {
        per_iter_ns.pop();
    }

    let n = per_iter_ns.len();
    let p50_ns = per_iter_ns[n / 2];
    let p95_ns = per_iter_ns[(n * 95 / 100).min(n - 1)];
    let min_ns = per_iter_ns[0];
    let mean_ns = per_iter_ns.iter().sum::<u64>() / n as u64;

    let units = match throughput {
        Some(Throughput::Elements(n)) | Some(Throughput::Bytes(n)) => Some(n),
        None => None,
    };
    let thrpt_per_s = units
        .filter(|_| p50_ns > 0)
        .map(|n| n as f64 * 1e9 / p50_ns as f64);
    let thrpt = match (throughput, thrpt_per_s) {
        (Some(Throughput::Elements(_)), Some(t)) => format!("  ({:.2} Melem/s)", t / 1e6),
        (Some(Throughput::Bytes(_)), Some(t)) => {
            format!("  ({:.2} MiB/s)", t / (1024.0 * 1024.0))
        }
        _ => String::new(),
    };
    println!(
        "{name:<44} p50 {:>10}   p95 {:>10}   min {:>10}   ({total_iters} iters){thrpt}",
        fmt_duration(Duration::from_nanos(p50_ns)),
        fmt_duration(Duration::from_nanos(p95_ns)),
        fmt_duration(Duration::from_nanos(min_ns)),
    );
    BenchResult {
        name: name.trim_start().to_string(),
        iters: total_iters,
        p50_ns,
        p95_ns,
        mean_ns,
        min_ns,
        throughput: thrpt_per_s,
    }
}

/// Top-level benchmark driver.
pub struct Criterion {
    budget: Duration,
    results: Vec<BenchResult>,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            budget: Duration::from_millis(300),
            results: Vec::new(),
        }
    }
}

impl Criterion {
    /// Sets the per-benchmark measurement budget (criterion's name for it).
    pub fn measurement_time(mut self, budget: Duration) -> Self {
        self.budget = budget;
        self
    }

    /// Drains the results accumulated so far, in execution order. Lets
    /// binary harnesses (pac-bench) serialize measurements instead of
    /// scraping stdout.
    pub fn take_results(&mut self) -> Vec<BenchResult> {
        std::mem::take(&mut self.results)
    }

    /// Runs a single named benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) -> &mut Self {
        let r = measure(name, None, self.budget, &mut f);
        self.results.push(r);
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let name = name.into();
        println!("group {name}:");
        BenchmarkGroup {
            criterion: self,
            name,
            throughput: None,
        }
    }
}

/// A group of related benchmarks sharing a name prefix and throughput.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Sets the throughput reported for subsequent benchmarks.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Benchmarks `f` with access to `input`.
    pub fn bench_with_input<I, F>(&mut self, id: BenchmarkId, input: &I, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let label = format!("  {}/{}", self.name, id);
        let r = measure(&label, self.throughput, self.criterion.budget, &mut |b| {
            f(b, input)
        });
        self.criterion.results.push(r);
        self
    }

    /// Benchmarks a no-input closure inside the group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) -> &mut Self {
        let label = format!("  {}/{}", self.name, name);
        let r = measure(&label, self.throughput, self.criterion.budget, &mut f);
        self.criterion.results.push(r);
        self
    }

    /// Ends the group.
    pub fn finish(self) {}
}

/// Bundles benchmark functions under one group name, as upstream.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Emits `main` running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_times_work() {
        let mut b = Bencher {
            iters: 1000,
            elapsed: Duration::ZERO,
        };
        let mut acc = 0u64;
        b.iter(|| {
            acc = acc.wrapping_add(black_box(3));
        });
        assert!(b.elapsed > Duration::ZERO || acc > 0);
    }

    #[test]
    fn ids_render() {
        assert_eq!(BenchmarkId::new("blocked", 64).to_string(), "blocked/64");
        assert_eq!(BenchmarkId::from_parameter("LoRA").to_string(), "LoRA");
    }

    #[test]
    fn group_runs_benchmarks() {
        let mut c = Criterion::default().measurement_time(Duration::from_millis(2));
        let mut group = c.benchmark_group("t");
        group.throughput(Throughput::Elements(8));
        group.bench_with_input(BenchmarkId::new("add", 8), &8u64, |b, &n| {
            b.iter(|| (0..n).sum::<u64>())
        });
        group.bench_function("noop", |b| b.iter(|| ()));
        group.finish();
        c.bench_function("top", |b| b.iter(|| black_box(1 + 1)));
    }

    #[test]
    fn results_capture_ordered_percentiles() {
        let mut c = Criterion::default().measurement_time(Duration::from_millis(2));
        c.bench_function("spin", |b| {
            b.iter(|| {
                let mut acc = 0u64;
                for i in 0..100u64 {
                    acc = acc.wrapping_add(black_box(i));
                }
                acc
            })
        });
        let results = c.take_results();
        assert_eq!(results.len(), 1);
        let r = &results[0];
        assert_eq!(r.name, "spin");
        assert!(r.iters > 0);
        assert!(r.min_ns <= r.p50_ns && r.p50_ns <= r.p95_ns, "{r:?}");
        assert!(c.take_results().is_empty(), "take_results drains");
    }
}
