//! Offline drop-in subset of the `rand` crate API.
//!
//! The build environment has no registry access, so the workspace vendors
//! the narrow surface it actually uses: a deterministic [`rngs::StdRng`]
//! (xoshiro256++ seeded via SplitMix64), the [`Rng`] extension trait with
//! `gen` / `gen_range` / `gen_bool`, [`SeedableRng::seed_from_u64`], and
//! [`seq::SliceRandom::shuffle`].
//!
//! Determinism is the only contract the workspace relies on: every stream
//! is fully determined by its seed and stable across platforms and
//! versions. The exact values differ from upstream `rand`'s `StdRng`
//! (which is version-gated ChaCha and explicitly not reproducible across
//! major versions anyway).

/// A source of random 64-bit words. Object-safe core trait.
pub trait RngCore {
    /// Next 64 uniformly distributed bits.
    fn next_u64(&mut self) -> u64;

    /// Next 32 uniformly distributed bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Seedable generators (subset: `seed_from_u64`).
pub trait SeedableRng: Sized {
    /// Creates a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types that can be sampled uniformly from the generator's raw bits via
/// `Rng::gen`.
pub trait Standard: Sized {
    /// Draws one value.
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for u64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl Standard for usize {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() as usize
    }
}

impl Standard for bool {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 24 mantissa bits -> uniform in [0, 1).
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

impl Standard for f64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// Ranges usable with `Rng::gen_range`.
pub trait SampleRange<T> {
    /// Draws one value from the range.
    fn sample_range<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_range<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                // Multiply-shift mapping keeps bias below 2^-64 per draw.
                let hi = ((rng.next_u64() as u128 * span) >> 64) as i128;
                (self.start as i128 + hi) as $t
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_range<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = self.into_inner();
                assert!(lo <= hi, "gen_range: empty range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                let off = ((rng.next_u64() as u128 * span) >> 64) as i128;
                (lo as i128 + off) as $t
            }
        }
    )*};
}
int_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! float_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_range<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let unit: $t = Standard::sample_standard(rng);
                self.start + (self.end - self.start) * unit
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_range<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = self.into_inner();
                assert!(lo <= hi, "gen_range: empty range");
                let unit: $t = Standard::sample_standard(rng);
                lo + (hi - lo) * unit
            }
        }
    )*};
}
float_range!(f32, f64);

/// Convenience extension methods over any [`RngCore`].
pub trait Rng: RngCore {
    /// Uniform value of `T` from the generator's raw bits.
    fn gen<T: Standard>(&mut self) -> T {
        T::sample_standard(self)
    }

    /// Uniform value in `range`.
    fn gen_range<T, Rg: SampleRange<T>>(&mut self, range: Rg) -> T {
        range.sample_range(self)
    }

    /// `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        let unit: f64 = Standard::sample_standard(self);
        unit < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Concrete generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Deterministic xoshiro256++ generator, seeded via SplitMix64.
    ///
    /// Passes BigCrush-level statistical batteries per its authors; more
    /// than adequate for weight init, shuffling and synthetic data.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            // SplitMix64 expansion, as recommended by the xoshiro authors.
            let mut sm = seed;
            let mut next = || {
                sm = sm.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = sm;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            let s = [next(), next(), next(), next()];
            StdRng { s }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

/// Sequence helpers.
pub mod seq {
    use super::{Rng, RngCore};

    /// Subset of rand's `SliceRandom`: in-place Fisher–Yates shuffle.
    pub trait SliceRandom {
        /// Element type.
        type Item;

        /// Shuffles the slice in place.
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);

        /// Uniformly random element, or `None` when empty.
        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.gen_range(0..=i);
                self.swap(i, j);
            }
        }

        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[rng.gen_range(0..self.len())])
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_and_seed_sensitive() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        let mut c = StdRng::seed_from_u64(8);
        let va: Vec<u64> = (0..8).map(|_| a.gen()).collect();
        let vb: Vec<u64> = (0..8).map(|_| b.gen()).collect();
        let vc: Vec<u64> = (0..8).map(|_| c.gen()).collect();
        assert_eq!(va, vb);
        assert_ne!(va, vc);
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut r = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let x: usize = r.gen_range(3..17);
            assert!((3..17).contains(&x));
            let y: f32 = r.gen_range(-2.0..2.0);
            assert!((-2.0..2.0).contains(&y));
            let z: f32 = r.gen_range(0.0..=1.0);
            assert!((0.0..=1.0).contains(&z));
        }
    }

    #[test]
    fn unit_floats_cover_unit_interval() {
        let mut r = StdRng::seed_from_u64(2);
        let mut sum = 0.0f64;
        for _ in 0..4096 {
            let x: f64 = r.gen();
            assert!((0.0..1.0).contains(&x));
            sum += x;
        }
        let mean = sum / 4096.0;
        assert!((mean - 0.5).abs() < 0.03, "mean {mean}");
    }

    #[test]
    fn shuffle_permutes() {
        let mut r = StdRng::seed_from_u64(3);
        let mut v: Vec<usize> = (0..32).collect();
        v.shuffle(&mut r);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..32).collect::<Vec<_>>());
        assert_ne!(v, sorted, "32 elements staying in place is ~impossible");
    }
}
