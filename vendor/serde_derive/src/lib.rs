//! Derive macros for the vendored `serde` marker traits.
//!
//! Emits empty `impl serde::Serialize` / `impl<'de> serde::Deserialize<'de>`
//! blocks. Written against `proc_macro` alone (no syn/quote — the build
//! environment has no registry access), so it supports the shapes the
//! workspace actually derives on: non-generic structs and enums. Generic
//! types trigger a compile error pointing here rather than silently
//! miscompiling.

use proc_macro::{TokenStream, TokenTree};

/// Extracts the type name from a `struct`/`enum`/`union` item, rejecting
/// generic types (unused in this workspace).
fn type_name(input: TokenStream) -> Result<String, String> {
    let mut iter = input.into_iter().peekable();
    while let Some(tt) = iter.next() {
        match tt {
            // Skip outer attributes: `#` followed by a `[...]` group.
            TokenTree::Punct(p) if p.as_char() == '#' => {
                let _ = iter.next();
            }
            TokenTree::Ident(id) => {
                let s = id.to_string();
                if s == "pub" {
                    // Skip optional `(crate)` / `(super)` visibility group.
                    if let Some(TokenTree::Group(_)) = iter.peek() {
                        let _ = iter.next();
                    }
                } else if s == "struct" || s == "enum" || s == "union" {
                    let name = match iter.next() {
                        Some(TokenTree::Ident(n)) => n.to_string(),
                        other => return Err(format!("expected type name, found {other:?}")),
                    };
                    if let Some(TokenTree::Punct(p)) = iter.peek() {
                        if p.as_char() == '<' {
                            return Err(format!(
                                "vendored serde_derive does not support generic type `{name}` \
                                 (see vendor/serde_derive)"
                            ));
                        }
                    }
                    return Ok(name);
                }
                // Anything else (doc idents etc.) — keep scanning.
            }
            _ => {}
        }
    }
    Err("no struct/enum/union found in derive input".to_string())
}

fn emit(input: TokenStream, template: &str) -> TokenStream {
    match type_name(input) {
        Ok(name) => template.replace("__NAME__", &name).parse().unwrap(),
        Err(msg) => format!("compile_error!({msg:?});").parse().unwrap(),
    }
}

/// Derives the `serde::Serialize` marker.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    emit(input, "impl ::serde::Serialize for __NAME__ {}")
}

/// Derives the `serde::Deserialize` marker.
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    emit(input, "impl<'de> ::serde::Deserialize<'de> for __NAME__ {}")
}
