//! Offline subset of `proptest`: deterministic property-based testing.
//!
//! Provides the macro surface the workspace tests use — `proptest!`,
//! `prop_oneof!`, `prop_assert!`, `prop_assert_eq!`, `prop_assume!` — plus
//! `Strategy` with `prop_map`, `Just`, numeric range strategies, tuple
//! strategies, and `prop::collection::vec`.
//!
//! Differences from upstream, chosen for an environment with no registry
//! access:
//! - Case generation is seeded from a hash of the test name, so every run
//!   explores the same inputs (reproducible failures without a
//!   persistence file; no `proptest-regressions` files are written).
//! - No shrinking: a failure reports the exact generated input instead of
//!   a minimized one.

use std::fmt;
use std::ops::{Range, RangeInclusive};

pub mod test_runner {
    use super::fmt;
    use rand::{rngs::StdRng, SeedableRng};

    /// Deterministic RNG driving test-case generation.
    pub type TestRng = StdRng;

    /// Outcome of one generated test case.
    #[derive(Debug)]
    pub enum TestCaseError {
        /// The case did not satisfy a `prop_assume!` precondition.
        Reject,
        /// A property assertion failed.
        Fail(String),
    }

    impl TestCaseError {
        /// Builds a failure with the given message.
        pub fn fail(msg: impl Into<String>) -> Self {
            TestCaseError::Fail(msg.into())
        }
    }

    /// Runner configuration; only the case count is tunable.
    #[derive(Clone, Debug)]
    pub struct Config {
        /// Number of passing cases required.
        pub cases: u32,
    }

    impl Config {
        /// Config running `cases` passing cases per property.
        pub fn with_cases(cases: u32) -> Self {
            Config { cases }
        }
    }

    impl Default for Config {
        fn default() -> Self {
            Config { cases: 64 }
        }
    }

    fn fnv1a(s: &str) -> u64 {
        let mut h = 0xcbf2_9ce4_8422_2325u64;
        for b in s.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        h
    }

    /// Drives one property: generates cases with a name-seeded RNG until
    /// `config.cases` pass, panicking on the first failing input.
    pub fn run<V: fmt::Debug>(
        config: Config,
        name: &str,
        generate: impl Fn(&mut TestRng) -> V,
        check: impl Fn(V) -> Result<(), TestCaseError>,
    ) {
        let mut rng = StdRng::seed_from_u64(fnv1a(name) ^ 0x9e37_79b9_7f4a_7c15);
        let mut passed: u32 = 0;
        let mut rejected: u64 = 0;
        let reject_budget = (config.cases as u64).max(1) * 64;
        while passed < config.cases {
            let value = generate(&mut rng);
            let repr = format!("{value:?}");
            match check(value) {
                Ok(()) => passed += 1,
                Err(TestCaseError::Reject) => {
                    rejected += 1;
                    if rejected > reject_budget {
                        panic!(
                            "[{name}] too many prop_assume! rejections \
                             ({rejected} rejects for {passed} passes) — \
                             the precondition filters out almost every input"
                        );
                    }
                }
                Err(TestCaseError::Fail(msg)) => {
                    panic!(
                        "[{name}] property failed after {passed} passing case(s)\n\
                         input: {repr}\n{msg}"
                    );
                }
            }
        }
    }
}

pub mod strategy {
    use super::test_runner::TestRng;
    use super::{fmt, Range, RangeInclusive};
    use rand::Rng;

    /// A recipe for generating values of `Self::Value`.
    pub trait Strategy {
        /// Generated value type; `Debug` so failing inputs can be reported.
        type Value: fmt::Debug;

        /// Draws one value.
        fn sample(&self, rng: &mut TestRng) -> Self::Value;

        /// Transforms generated values.
        fn prop_map<O, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            O: fmt::Debug,
            F: Fn(Self::Value) -> O,
        {
            Map { inner: self, f }
        }
    }

    /// Always yields a clone of one value.
    #[derive(Clone, Debug)]
    pub struct Just<T: Clone + fmt::Debug>(pub T);

    impl<T: Clone + fmt::Debug> Strategy for Just<T> {
        type Value = T;

        fn sample(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// Strategy produced by [`Strategy::prop_map`].
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S, O, F> Strategy for Map<S, F>
    where
        S: Strategy,
        O: fmt::Debug,
        F: Fn(S::Value) -> O,
    {
        type Value = O;

        fn sample(&self, rng: &mut TestRng) -> O {
            (self.f)(self.inner.sample(rng))
        }
    }

    /// A boxed sampling closure, the erased form of one `prop_oneof!` arm.
    pub type Sampler<T> = Box<dyn Fn(&mut TestRng) -> T>;

    /// Uniform choice between heterogeneous strategies sharing one value
    /// type; built by `prop_oneof!`.
    pub struct Union<T> {
        variants: Vec<Sampler<T>>,
    }

    impl<T> Union<T> {
        /// Wraps pre-boxed sampling closures.
        pub fn new(variants: Vec<Sampler<T>>) -> Self {
            assert!(!variants.is_empty(), "prop_oneof! needs at least one arm");
            Union { variants }
        }

        /// Boxes one strategy as a sampling closure. A generic helper (not
        /// an inline `as Box<dyn Fn..>` cast in the macro) so the value
        /// type unifies across all `prop_oneof!` arms before integer
        /// literal fallback kicks in.
        pub fn variant(strategy: impl Strategy<Value = T> + 'static) -> Sampler<T> {
            Box::new(move |rng| strategy.sample(rng))
        }
    }

    impl<T: fmt::Debug> Strategy for Union<T> {
        type Value = T;

        fn sample(&self, rng: &mut TestRng) -> T {
            let idx = rng.gen_range(0..self.variants.len());
            (self.variants[idx])(rng)
        }
    }

    macro_rules! numeric_range_strategy {
        ($($t:ty),* $(,)?) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;

                fn sample(&self, rng: &mut TestRng) -> $t {
                    rng.gen_range(self.clone())
                }
            }

            impl Strategy for RangeInclusive<$t> {
                type Value = $t;

                fn sample(&self, rng: &mut TestRng) -> $t {
                    rng.gen_range(self.clone())
                }
            }
        )*};
    }

    numeric_range_strategy!(usize, u8, u16, u32, u64, i8, i16, i32, i64, isize, f32, f64);

    macro_rules! tuple_strategy {
        ($(($($s:ident . $idx:tt),+);)*) => {$(
            impl<$($s: Strategy),+> Strategy for ($($s,)+) {
                type Value = ($($s::Value,)+);

                fn sample(&self, rng: &mut TestRng) -> Self::Value {
                    ($(self.$idx.sample(rng),)+)
                }
            }
        )*};
    }

    tuple_strategy! {
        (A.0);
        (A.0, B.1);
        (A.0, B.1, C.2);
        (A.0, B.1, C.2, D.3);
        (A.0, B.1, C.2, D.3, E.4);
        (A.0, B.1, C.2, D.3, E.4, F.5);
    }
}

pub mod collection {
    use super::strategy::Strategy;
    use super::test_runner::TestRng;
    use super::{Range, RangeInclusive};
    use rand::Rng;

    /// Inclusive bounds on generated collection sizes.
    #[derive(Clone, Copy, Debug)]
    pub struct SizeRange {
        min: usize,
        max: usize,
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            SizeRange {
                min: r.start,
                max: r.end - 1,
            }
        }
    }

    impl From<RangeInclusive<usize>> for SizeRange {
        fn from(r: RangeInclusive<usize>) -> Self {
            assert!(r.start() <= r.end(), "empty size range");
            SizeRange {
                min: *r.start(),
                max: *r.end(),
            }
        }
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { min: n, max: n }
        }
    }

    /// Strategy for `Vec<E::Value>` with length drawn from a [`SizeRange`].
    pub struct VecStrategy<E> {
        element: E,
        size: SizeRange,
    }

    impl<E: Strategy> Strategy for VecStrategy<E> {
        type Value = Vec<E::Value>;

        fn sample(&self, rng: &mut TestRng) -> Self::Value {
            let len = rng.gen_range(self.size.min..=self.size.max);
            (0..len).map(|_| self.element.sample(rng)).collect()
        }
    }

    /// Generates vectors whose elements come from `element` and whose
    /// length falls in `size`.
    pub fn vec<E: Strategy>(element: E, size: impl Into<SizeRange>) -> VecStrategy<E> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }
}

pub mod prelude {
    pub use crate::strategy::{Just, Strategy, Union};
    pub use crate::test_runner::{Config as ProptestConfig, TestCaseError, TestRng};
    pub use crate::{prop_assert, prop_assert_eq, prop_assume, prop_oneof, proptest};

    /// Namespace alias so `prop::collection::vec(..)` resolves, as in the
    /// upstream prelude.
    pub use crate as prop;
}

/// Declares property tests. Supports an optional leading
/// `#![proptest_config(..)]` and any number of `#[test] fn name(pat in
/// strategy, ..) { .. }` items.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! {
            (<$crate::test_runner::Config as ::core::default::Default>::default())
            $($rest)*
        }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    ( ($cfg:expr) ) => {};
    ( ($cfg:expr)
      $(#[$meta:meta])*
      fn $name:ident ( $($pat:pat in $strat:expr),+ $(,)? ) $body:block
      $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let __strategies = ($($strat,)+);
            $crate::test_runner::run(
                $cfg,
                ::core::stringify!($name),
                |__rng| $crate::strategy::Strategy::sample(&__strategies, __rng),
                |($($pat,)+)| {
                    $body
                    ::core::result::Result::Ok(())
                },
            );
        }
        $crate::__proptest_items! { ($cfg) $($rest)* }
    };
}

/// Uniform choice among strategy expressions producing one value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($arm:expr),+ $(,)?) => {
        $crate::strategy::Union::new(::std::vec![
            $($crate::strategy::Union::variant($arm)),+
        ])
    };
}

/// Fails the current case with a message when the condition is false.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        $crate::prop_assert!(
            $cond,
            ::core::concat!("assertion failed: ", ::core::stringify!($cond))
        )
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::core::result::Result::Err(
                $crate::test_runner::TestCaseError::fail(::std::format!($($fmt)+)),
            );
        }
    };
}

/// Fails the current case when the two expressions are unequal.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (__l, __r) = (&$left, &$right);
        if !(*__l == *__r) {
            return ::core::result::Result::Err(
                $crate::test_runner::TestCaseError::fail(::std::format!(
                    "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}",
                    ::core::stringify!($left),
                    ::core::stringify!($right),
                    __l,
                    __r
                )),
            );
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (__l, __r) = (&$left, &$right);
        if !(*__l == *__r) {
            return ::core::result::Result::Err(
                $crate::test_runner::TestCaseError::fail(::std::format!(
                    "{}\n  left: {:?}\n right: {:?}",
                    ::std::format!($($fmt)+),
                    __l,
                    __r
                )),
            );
        }
    }};
}

/// Rejects the current case (retried with fresh inputs) when the
/// precondition is false.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(,)?) => {
        if !($cond) {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::Reject);
        }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        /// Range strategies stay in bounds and rejection sampling works.
        #[test]
        fn ranges_and_assume(x in 3usize..10, y in 0.0f64..1.0, z in 1u64..=4) {
            prop_assume!(x != 5);
            prop_assert!((3..10).contains(&x));
            prop_assert!((0.0..1.0).contains(&y));
            prop_assert!((1..=4).contains(&z));
        }

        #[test]
        fn tuples_and_oneof((a, b) in (1usize..4, 1usize..4), pick in prop_oneof![Just(1u8), (5u8..7).prop_map(|v| v)]) {
            prop_assert!(a * b <= 9);
            prop_assert!(pick == 1 || (5..7).contains(&pick));
        }

        #[test]
        fn collection_vec_respects_size(v in prop::collection::vec(0usize..100, 2..=5)) {
            prop_assert!((2..=5).contains(&v.len()));
            prop_assert!(v.iter().all(|&e| e < 100));
        }
    }

    #[test]
    fn determinism_same_name_same_stream() {
        use crate::strategy::Strategy;
        use crate::test_runner::TestRng;
        use rand::SeedableRng;
        let s = 0usize..1000;
        let draw = |seed| {
            let mut rng = TestRng::seed_from_u64(seed);
            (0..16).map(|_| s.sample(&mut rng)).collect::<Vec<_>>()
        };
        assert_eq!(draw(42), draw(42));
        assert_ne!(draw(42), draw(43));
    }

    #[test]
    #[should_panic(expected = "property failed")]
    fn failure_reports_input() {
        crate::test_runner::run(
            crate::test_runner::Config::with_cases(8),
            "failure_reports_input",
            |rng| crate::strategy::Strategy::sample(&(0usize..100), rng),
            |x| {
                crate::prop_assert!(x > 1000, "impossible bound for x = {x}");
                Ok(())
            },
        );
    }
}
