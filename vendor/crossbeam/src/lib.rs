//! Offline subset of `crossbeam` built on `std::sync::mpsc`.
//!
//! The workspace uses only bounded MPSC channels (one producer stage thread,
//! one consumer stage thread in the pipeline engine). `std::sync::mpsc`
//! provides exactly those semantics via `sync_channel`; this shim re-exports
//! them under the crossbeam names so the engine code reads as in the
//! original design. Crossbeam's select!/scope/epoch APIs are not used and
//! not provided.

pub mod channel {
    use std::sync::mpsc;

    /// Error returned when the receiving side has disconnected.
    pub type SendError<T> = mpsc::SendError<T>;
    /// Error returned when the sending side has disconnected and the
    /// channel is drained.
    pub type RecvError = mpsc::RecvError;

    /// Sending half of a bounded channel. Clonable; `send` blocks while the
    /// buffer is full.
    pub struct Sender<T>(mpsc::SyncSender<T>);

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            Sender(self.0.clone())
        }
    }

    impl<T> Sender<T> {
        /// Blocks until the value is buffered or the receiver disconnects.
        pub fn send(&self, value: T) -> Result<(), SendError<T>> {
            self.0.send(value)
        }
    }

    /// Receiving half of a bounded channel.
    pub struct Receiver<T>(mpsc::Receiver<T>);

    impl<T> Receiver<T> {
        /// Blocks until a value arrives or all senders disconnect.
        pub fn recv(&self) -> Result<T, RecvError> {
            self.0.recv()
        }

        /// Non-blocking receive.
        pub fn try_recv(&self) -> Result<T, mpsc::TryRecvError> {
            self.0.try_recv()
        }

        /// Iterator over received values until disconnection.
        pub fn iter(&self) -> mpsc::Iter<'_, T> {
            self.0.iter()
        }
    }

    impl<T> IntoIterator for Receiver<T> {
        type Item = T;
        type IntoIter = mpsc::IntoIter<T>;

        fn into_iter(self) -> Self::IntoIter {
            self.0.into_iter()
        }
    }

    /// Creates a bounded channel with space for `cap` in-flight messages.
    /// `cap = 0` is a rendezvous channel, matching crossbeam semantics.
    pub fn bounded<T>(cap: usize) -> (Sender<T>, Receiver<T>) {
        let (tx, rx) = mpsc::sync_channel(cap);
        (Sender(tx), Receiver(rx))
    }
}

#[cfg(test)]
mod tests {
    use super::channel;

    #[test]
    fn bounded_delivers_in_order_across_threads() {
        let (tx, rx) = channel::bounded::<usize>(2);
        let producer = std::thread::spawn(move || {
            for i in 0..100 {
                tx.send(i).unwrap();
            }
        });
        let got: Vec<usize> = (0..100).map(|_| rx.recv().unwrap()).collect();
        producer.join().unwrap();
        assert_eq!(got, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn recv_errors_after_sender_drops() {
        let (tx, rx) = channel::bounded::<u8>(1);
        tx.send(7).unwrap();
        drop(tx);
        assert_eq!(rx.recv(), Ok(7));
        assert!(rx.recv().is_err());
    }

    #[test]
    fn rendezvous_channel_handshakes() {
        let (tx, rx) = channel::bounded::<&'static str>(0);
        let t = std::thread::spawn(move || tx.send("hi").is_ok());
        assert_eq!(rx.recv().unwrap(), "hi");
        assert!(t.join().unwrap());
    }
}
