//! Offline marker-trait subset of `serde`.
//!
//! The workspace derives `Serialize`/`Deserialize` on its config and result
//! types to keep them wire-ready, but no serialization format crate
//! (serde_json, bincode, …) is a dependency — nothing ever calls a
//! serializer. This vendored stand-in therefore provides the two traits as
//! markers plus derive macros emitting empty impls, which is exactly the
//! surface the build needs while the environment has no registry access.
//!
//! If a future PR adds a real wire format, replace this shim with the
//! genuine crates (or grow the traits into the visitor pattern).

pub use serde_derive::{Deserialize, Serialize};

/// Marker for types that declare themselves serializable.
pub trait Serialize {}

/// Marker for types that declare themselves deserializable.
pub trait Deserialize<'de>: Sized {}
