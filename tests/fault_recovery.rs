//! Fault-injection acceptance tests: a real `PacSession` run must survive
//! a mid-epoch fail-stop (replan + checkpoint resume) and must be
//! bit-identical to a fault-free run under transient AllReduce faults.

use pac_core::prelude::*;
use pac_core::trainer::{finetune, TrainConfig};
use pac_data::{Dataset, TaskKind};
use pac_model::ModelConfig;
use pac_parallel::faults::TimelineKind;
use pac_parallel::{Fault, FaultPlan};
use pac_peft::{Technique, Tuner};
use pac_tensor::rng::seeded;

/// A briefly pretrained backbone (the paper personalizes a *pretrained*
/// LLM; frozen random features would not clear the quality bar).
fn pretrained_backbone(cfg: &ModelConfig) -> pac_model::EncDecModel {
    let mut full = Tuner::new(Technique::Full, cfg, 2, &mut seeded(41));
    let pre = Dataset::generate(TaskKind::Sst2, 80, 13, 999);
    let (ptrain, peval) = pre.split(0.9);
    finetune(
        &mut full,
        &ptrain,
        &peval,
        &TrainConfig {
            epochs: 4,
            lr: 3e-3,
            ..Default::default()
        },
    )
    .unwrap();
    match full {
        Tuner::Full(f) => f.model,
        _ => unreachable!(),
    }
}

fn session(devices: usize) -> PacSession {
    PacSession::new(PacConfig {
        devices,
        reduction: 4,
        epochs: 3,
        batch_size: 8,
        lr: 1e-2,
        seed: 42,
        checkpoint_every: 4,
        cache_int8: false,
    })
}

/// Mid-epoch fail-stop: the session must replan over the survivors,
/// restore the last checkpoint, replay, and still reach fault-free-grade
/// quality.
#[test]
fn fail_stop_recovers_via_replan_and_checkpoint_resume() {
    let cfg = ModelConfig::micro(2, 1, 32, 4);
    let backbone = pretrained_backbone(&cfg);
    let task = TaskKind::Sst2;

    let clean = session(3)
        .run_with_faults(backbone.clone(), task, 48, 16, &FaultPlan::none())
        .unwrap();
    assert_eq!(clean.recovery.replans, 0);
    assert_eq!(clean.recovery.final_devices, 3);
    assert_eq!(clean.recovery.faults_injected, 0);
    // Fault-free runs still checkpoint (initial + periodic).
    assert!(clean.recovery.checkpoints >= 2);

    // Device 2 fail-stops mid-epoch-2 (18 planned steps; snapshots land
    // every 4th step, so the last one predates the fault).
    let plan = FaultPlan::none().with(Fault::FailStop { step: 9, device: 2 });
    let faulty = session(3)
        .run_with_faults(backbone, task, 48, 16, &plan)
        .unwrap();

    assert_eq!(faulty.recovery.replans, 1, "one fail-stop, one replan");
    assert_eq!(faulty.recovery.final_devices, 2);
    assert_eq!(faulty.recovery.faults_injected, 1);
    assert!(faulty.recovery.checkpoint_bytes > 0);
    let kinds: Vec<TimelineKind> = faulty.recovery.timeline.iter().map(|e| e.kind).collect();
    for needed in [
        TimelineKind::Checkpoint,
        TimelineKind::Injected,
        TimelineKind::Replan,
        TimelineKind::Resume,
    ] {
        assert!(kinds.contains(&needed), "timeline missing {needed:?}");
    }
    // The injection must precede replan, which precedes resume.
    let at = |k: TimelineKind| kinds.iter().position(|&x| x == k).unwrap();
    assert!(at(TimelineKind::Injected) < at(TimelineKind::Replan));
    assert!(at(TimelineKind::Replan) < at(TimelineKind::Resume));

    // Quality: both clear the repo's 60-point bar, and recovery stays
    // within a modest band of the fault-free run.
    assert!(clean.metric > 60.0, "clean {}", clean.metric);
    assert!(faulty.metric > 60.0, "faulty {}", faulty.metric);
    assert!(
        (clean.metric - faulty.metric).abs() < 20.0,
        "recovery drifted too far: clean {} vs faulty {}",
        clean.metric,
        faulty.metric
    );
}

/// Transient AllReduce faults within the retry budget must be absorbed by
/// bounded retries and leave the whole run bit-identical to fault-free.
#[test]
fn transient_allreduce_is_retried_and_bitwise_transparent() {
    let cfg = ModelConfig::micro(1, 1, 16, 2);
    let task = TaskKind::Sst2;
    let mk = || {
        PacSession::new(PacConfig {
            devices: 2,
            reduction: 4,
            epochs: 2,
            batch_size: 4,
            lr: 1e-2,
            seed: 7,
            checkpoint_every: 3,
            cache_int8: false,
        })
    };
    let backbone = pac_model::EncDecModel::new(&cfg, task.n_out(), &mut seeded(77));

    let clean = mk()
        .run_with_faults(backbone.clone(), task, 24, 8, &FaultPlan::none())
        .unwrap();
    let plan = FaultPlan::none()
        .with(Fault::AllReduceTransient {
            step: 1,
            failures: 2,
            lane: None,
        })
        .with(Fault::AllReduceTransient {
            step: 4,
            failures: 1,
            lane: Some(1),
        });
    let faulty = mk().run_with_faults(backbone, task, 24, 8, &plan).unwrap();

    assert_eq!(faulty.recovery.retries, 3, "2 + 1 bounded retries");
    assert_eq!(faulty.recovery.replans, 0, "transients never replan");
    assert_eq!(faulty.recovery.final_devices, 2);
    // Injection happens before any gradient math, so the runs are
    // bitwise-identical: same per-epoch losses, same final metric.
    for (a, b) in clean.epoch_losses.iter().zip(faulty.epoch_losses.iter()) {
        assert_eq!(a.to_bits(), b.to_bits(), "epoch losses diverged");
    }
    assert_eq!(clean.metric.to_bits(), faulty.metric.to_bits());
}

/// Losing every device is unrecoverable and must surface as a typed error,
/// not a hang or a panic.
#[test]
fn losing_all_devices_is_a_typed_unplannable_error() {
    let cfg = ModelConfig::micro(1, 1, 16, 2);
    let backbone = pac_model::EncDecModel::new(&cfg, 2, &mut seeded(78));
    let plan = FaultPlan::none()
        .with(Fault::FailStop { step: 1, device: 0 })
        .with(Fault::FailStop { step: 2, device: 1 });
    let err = PacSession::new(PacConfig {
        devices: 2,
        epochs: 2,
        batch_size: 4,
        ..Default::default()
    })
    .run_with_faults(backbone, TaskKind::Sst2, 16, 8, &plan)
    .unwrap_err();
    assert!(
        matches!(err, pac_parallel::EngineError::Unplannable { survivors: 0 }),
        "unexpected error: {err}"
    );
}
