//! Property-based tests spanning crates: structural invariants that must
//! hold for *any* configuration, not just the paper's.

use pac_cluster::{Cluster, CostModel};
use pac_model::ModelConfig;
use pac_parallel::{
    schedule::{simulate_pipeline, Schedule, SimStage},
    simulate_plan, ParallelPlan,
};
use pac_peft::memory::{MemoryModel, Phase};
use pac_peft::Technique;
use pac_planner::{partition_for_stages, Planner, Profile};
use proptest::prelude::*;

fn arb_technique() -> impl Strategy<Value = Technique> {
    prop_oneof![
        Just(Technique::Full),
        (2usize..16).prop_map(|reduction| Technique::Adapters { reduction }),
        (1usize..64).prop_map(|rank| Technique::Lora { rank }),
        (2usize..16).prop_map(|reduction| Technique::ParallelAdapters { reduction }),
    ]
}

fn arb_model() -> impl Strategy<Value = ModelConfig> {
    (
        1usize..6,
        0usize..4,
        prop_oneof![Just(16usize), Just(32), Just(64)],
        Just(2usize),
    )
        .prop_map(|(e, d, h, heads)| ModelConfig::micro(e.max(1), d, h, heads))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// PEFT techniques with sane hyperparameters (rank/bottleneck well below
    /// the hidden size) always train fewer parameters than Full, and the
    /// trainable fraction is consistent with the raw count.
    #[test]
    fn peft_is_always_smaller_than_full(model in arb_model(), t in arb_technique()) {
        // Over-parameterized settings (e.g. LoRA rank > hidden/4 on a tiny
        // model) legitimately exceed the backbone; exclude them.
        let sane = match t {
            Technique::Lora { rank } => rank * 4 <= model.hidden,
            Technique::Adapters { reduction } | Technique::ParallelAdapters { reduction } => {
                reduction >= 2
            }
            Technique::PromptTuning { virtual_tokens } => virtual_tokens <= model.max_seq / 2,
            Technique::Full => true,
        };
        prop_assume!(sane);
        let full = Technique::Full.trainable_params(&model);
        let this = t.trainable_params(&model);
        prop_assert!(this <= full);
        let frac = t.trainable_fraction(&model);
        prop_assert!((frac - this as f64 / full as f64).abs() < 1e-12);
    }

    /// Memory breakdowns are additive and monotone in batch size, for every
    /// technique and phase.
    #[test]
    fn memory_model_is_monotone_in_batch(
        model in arb_model(),
        t in arb_technique(),
        batch in 1usize..32,
        seq in 4usize..64,
    ) {
        let mm = |b: usize| MemoryModel {
            config: model.clone(),
            technique: t,
            batch: b,
            seq,
            dec_seq: 4,
            opt_bytes_per_param: 4,
            value_bytes: 4,
            recompute_activations: false,
        };
        for phase in [Phase::Training, Phase::CachedTraining, Phase::Inference] {
            let small = mm(batch).breakdown(phase);
            let big = mm(batch + 8).breakdown(phase);
            prop_assert_eq!(small.total(), small.weights + small.activations + small.gradients);
            prop_assert!(big.total() >= small.total());
        }
    }

    /// Even pipeline partitions always validate, for any layer/device combo.
    #[test]
    fn pipeline_even_always_validates(layers in 1usize..64, devices in 1usize..16) {
        let plan = ParallelPlan::pipeline_even(layers, devices);
        prop_assert!(plan.validate(layers, devices).is_ok());
        // Stage layer counts differ by at most one.
        let sizes: Vec<usize> = plan.stages.iter().map(|s| s.num_layers()).collect();
        let max = sizes.iter().max().unwrap();
        let min = sizes.iter().min().unwrap();
        prop_assert!(max - min <= 1);
    }

    /// The pipeline simulator respects fundamental bounds for arbitrary
    /// stage timings: makespan ≥ any stage's total work, 1F1B in-flight is
    /// bounded by pipeline depth, GPipe in-flight equals the micro count.
    #[test]
    fn simulator_bounds_hold(
        n_stages in 1usize..6,
        micro in 1usize..10,
        fwd in 0.1f64..5.0,
        bwd in 0.1f64..5.0,
        send in 0.0f64..1.0,
    ) {
        let stages = vec![SimStage {
            fwd_s: fwd,
            bwd_s: bwd,
            send_fwd_s: send,
            send_bwd_s: send,
            weight_bytes: 10,
            act_bytes_per_mb: 3,
            fixed_bytes: 1,
            allreduce_s: 0.0,
        }; n_stages];
        for schedule in [Schedule::OneFOneB, Schedule::GPipe] {
            let r = simulate_pipeline(&stages, micro, schedule);
            let stage_work = micro as f64 * (fwd + bwd);
            prop_assert!(r.makespan_s >= stage_work - 1e-9);
            match schedule {
                Schedule::GPipe => {
                    prop_assert!(r.peak_inflight.iter().all(|&p| p == micro));
                }
                Schedule::OneFOneB => {
                    for (s, &p) in r.peak_inflight.iter().enumerate() {
                        prop_assert!(p <= (n_stages - s).min(micro), "stage {s}: {p}");
                    }
                }
                Schedule::GPipeWave { wave } => {
                    prop_assert!(r.peak_inflight.iter().all(|&p| p <= wave.min(micro)));
                }
            }
            prop_assert!(r.bubble_fraction >= -1e-9 && r.bubble_fraction < 1.0);
        }
    }

    /// The partition DP, when it returns a plan, always returns a valid one
    /// whose bottleneck is positive and finite.
    #[test]
    fn partition_dp_output_is_always_valid(
        stages in 1usize..5,
        devices in 1usize..6,
        seq in 8usize..64,
    ) {
        let model = ModelConfig::t5_base();
        let cost = CostModel::new(model, Technique::parallel_default(), seq);
        let profile = Profile::from_cost_model(&cost);
        let cluster = Cluster::nanos(devices);
        if let Some((plan, t)) = partition_for_stages(&profile, &cluster, stages, 2.0, stages) {
            prop_assert!(plan.validate(profile.num_layers(), devices).is_ok());
            prop_assert!(t.is_finite() && t > 0.0);
            prop_assert_eq!(plan.num_stages(), stages);
        } else {
            // Refusals only for structurally impossible requests or OOM.
            prop_assert!(stages > devices || stages > profile.num_layers() || stages == 0 || devices == 1);
        }
    }

    /// Whatever plan the planner returns, simulating it under a *different*
    /// micro-batch count still yields a finite makespan and valid memory
    /// accounting (robustness of the stage builder).
    #[test]
    fn simulate_plan_total_is_finite_for_any_micro(
        devices in 2usize..6,
        micro in 1usize..12,
    ) {
        let cost = CostModel::new(ModelConfig::t5_base(), Technique::parallel_default(), 128);
        let cluster = Cluster::nanos(devices);
        if let Some(outcome) = Planner::paper_defaults(cluster.clone(), devices).plan(&cost) {
            let sim = simulate_plan(
                &cluster,
                &cost,
                &outcome.best,
                devices,
                micro,
                pac_parallel::Schedule::OneFOneB,
            );
            prop_assert!(sim.makespan_s.is_finite() && sim.makespan_s > 0.0);
            prop_assert_eq!(sim.peak_bytes.len(), outcome.best.num_stages());
        }
    }
}
