//! End-to-end system tests: real multi-threaded collaborative fine-tuning
//! through the public API, exercising the complete paper workflow.

use pac_core::prelude::*;
use pac_core::trainer::{finetune, finetune_with_cache, TrainConfig};
use pac_model::EncoderModel;
use pac_nn::{Module, Optimizer, Sgd};
use pac_parallel::engine::HybridEngine;
use pac_parallel::Schedule;
use pac_tensor::rng::seeded;
use rand::Rng;

fn micro_batches(seed: u64, m: usize, b: usize, s: usize) -> Vec<(Vec<Vec<usize>>, Vec<usize>)> {
    let mut rng = seeded(seed);
    (0..m)
        .map(|_| {
            let toks: Vec<Vec<usize>> = (0..b)
                .map(|_| (0..s).map(|_| rng.gen_range(0..64)).collect())
                .collect();
            let targets: Vec<usize> = (0..b).map(|_| rng.gen_range(0..2)).collect();
            (toks, targets)
        })
        .collect()
}

/// The full hybrid engine (pipeline × data parallel on real threads) must
/// train a model to lower loss, staying synchronized across replicas.
#[test]
fn hybrid_engine_trains_end_to_end() {
    let cfg = ModelConfig::micro(4, 0, 16, 2);
    let model = EncoderModel::new(&cfg, 2, &mut seeded(500));
    let stages = model.partition(&[2, 2]).unwrap();
    let mut engine = HybridEngine::new(stages, 2, Schedule::OneFOneB);
    assert_eq!(engine.num_devices(), 4);

    let mut opts: Vec<Box<dyn Optimizer>> = (0..2)
        .map(|_| Box::new(Sgd::new(0.05)) as Box<dyn Optimizer>)
        .collect();
    let mbs = micro_batches(501, 4, 4, 5);
    let mut losses = Vec::new();
    for _ in 0..8 {
        engine.zero_grads();
        losses.push(engine.run_mini_batch(&mbs).unwrap());
        engine.step(&mut opts);
    }
    assert!(
        losses.last().unwrap() < &losses[0],
        "hybrid training diverged: {losses:?}"
    );
}

/// PAC (cached, distributed) and plain single-process Parallel-Adapters
/// training must converge to comparable quality on the same data.
#[test]
fn distributed_pac_matches_single_process_quality() {
    let cfg = ModelConfig::micro(2, 1, 32, 4);
    let task = TaskKind::Sst2;

    // Shared pretrained backbone.
    let backbone = {
        let mut full = Tuner::new(Technique::Full, &cfg, 2, &mut seeded(510));
        let pre = Dataset::generate(task, 64, 13, 888);
        let (ptrain, peval) = pre.split(0.9);
        finetune(
            &mut full,
            &ptrain,
            &peval,
            &TrainConfig {
                epochs: 4,
                lr: 3e-3,
                ..Default::default()
            },
        )
        .unwrap();
        match full {
            Tuner::Full(f) => f.model,
            _ => unreachable!(),
        }
    };

    // Single-process with cache.
    let data = Dataset::generate(task, 72, 13, 43);
    let (train, eval) = data.split(2.0 / 3.0);
    let mut single = Tuner::wrap(
        Technique::ParallelAdapters { reduction: 4 },
        backbone.clone(),
        2,
        &mut seeded(511),
    );
    let mut cache = ActivationCache::new();
    let single_report = finetune_with_cache(
        &mut single,
        &train,
        &eval,
        &TrainConfig {
            epochs: 3,
            ..Default::default()
        },
        &mut cache,
    )
    .unwrap();

    // Distributed PAC session on the same backbone/task.
    let session = PacSession::new(PacConfig {
        devices: 2,
        reduction: 4,
        epochs: 3,
        batch_size: 8,
        lr: 1e-2,
        seed: 512,
        checkpoint_every: 4,
        cache_int8: false,
    });
    let pac_report = session.run_with_backbone(backbone, task, 48, 24).unwrap();

    assert!(
        single_report.metric > 60.0,
        "single {}",
        single_report.metric
    );
    assert!(pac_report.metric > 60.0, "pac {}", pac_report.metric);
    assert!(
        (single_report.metric - pac_report.metric).abs() < 30.0,
        "quality gap too wide: {} vs {}",
        single_report.metric,
        pac_report.metric
    );
}

/// The cache must be semantically transparent even when training continues
/// across epochs (optimizer state, shuffling, clipping all active).
#[test]
fn cache_transparency_through_full_training_stack() {
    let cfg = ModelConfig::micro(1, 1, 16, 2);
    let task = TaskKind::Qnli;
    let data = Dataset::generate(task, 32, 13, 77);
    let (train, eval) = data.split(0.75);
    let base = Tuner::new(
        Technique::ParallelAdapters { reduction: 4 },
        &cfg,
        2,
        &mut seeded(520),
    );
    let tc = TrainConfig {
        epochs: 4,
        ..Default::default()
    };

    let mut a = base.clone();
    let ra = finetune(&mut a, &train, &eval, &tc).unwrap();
    let mut b = base;
    let mut cache = ActivationCache::new();
    let rb = finetune_with_cache(&mut b, &train, &eval, &tc, &mut cache).unwrap();

    for (la, lb) in ra.epoch_losses.iter().zip(&rb.epoch_losses) {
        assert!(
            (la - lb).abs() < 1e-4,
            "epoch losses diverged: {la} vs {lb}"
        );
    }
    assert_eq!(ra.metric, rb.metric);
    // Epoch 1 fills; epochs 2-4 hit.
    let stats = rb.cache_stats.unwrap();
    assert_eq!(stats.entries, train.len());
    assert!(stats.hits >= 3);
}

/// Freezing guarantees across the whole stack: a PAC session must never
/// move a backbone weight.
#[test]
fn pac_session_never_mutates_backbone() {
    let cfg = ModelConfig::micro(1, 1, 16, 2);
    let backbone = pac_model::EncDecModel::new(&cfg, 2, &mut seeded(530));
    let snapshot: Vec<f32> = {
        let mut v = Vec::new();
        backbone.visit_params_ref(&mut |p| v.extend_from_slice(p.value.data()));
        v
    };
    let session = PacSession::new(PacConfig {
        devices: 2,
        reduction: 4,
        epochs: 2,
        batch_size: 4,
        lr: 5e-2, // aggressive LR would expose any leak quickly
        seed: 531,
        checkpoint_every: 4,
        cache_int8: false,
    });
    let _ = session
        .run_with_backbone(backbone.clone(), TaskKind::Sst2, 16, 8)
        .unwrap();
    // The session consumed a clone; verify the `wrap` path froze it by
    // rebuilding a tuner and checking the trainable inventory instead.
    let tuner = Tuner::wrap(
        Technique::ParallelAdapters { reduction: 4 },
        backbone.clone(),
        2,
        &mut seeded(532),
    );
    let mut frozen_bytes = 0usize;
    match &tuner {
        Tuner::Parallel(t) => {
            t.model.visit_params_ref(&mut |p| {
                assert!(!p.trainable, "backbone param {} left trainable", p.name);
                frozen_bytes += p.value.size_bytes();
            });
        }
        _ => unreachable!(),
    }
    assert!(frozen_bytes > 0);
    // And the original snapshot is untouched (cloning semantics).
    let mut after = Vec::new();
    backbone.visit_params_ref(&mut |p| after.extend_from_slice(p.value.data()));
    assert_eq!(snapshot, after);
}
