//! Cross-crate integration tests: the substrates must agree with each
//! other where their domains overlap.

use pac_cluster::{Cluster, CollectiveModel, CostModel, LinkSpec};
use pac_core::prelude::*;
use pac_core::systems::{estimate_cell, System};
use pac_nn::Module;
use pac_parallel::{simulate_plan, ParallelPlan, Schedule};
use pac_peft::memory::{MemoryModel, Phase};
use pac_planner::{Planner, Profile};
use pac_tensor::rng::seeded;

/// The analytic technique accounting (pac-peft) and the real tuners must
/// agree on trainable-parameter counts for every technique.
#[test]
fn analytic_and_real_trainable_params_agree() {
    let cfg = ModelConfig::micro(2, 2, 32, 4);
    for technique in Technique::all_paper() {
        let tuner = Tuner::new(technique, &cfg, 2, &mut seeded(1));
        let analytic = technique.trainable_params(&cfg);
        let real = tuner.num_trainable();
        // The analytic model omits task-head and bias minutiae; require
        // agreement within 35% (exact for the structurally simple ones).
        let ratio = real as f64 / analytic as f64;
        assert!(
            (0.65..1.45).contains(&ratio),
            "{}: analytic {analytic} vs real {real}",
            technique.name()
        );
    }
}

/// The cost model's per-layer weight bytes must sum to the config's total
/// parameter count (minus embeddings, which the cost model charges to the
/// pipeline endpoints).
#[test]
fn cost_model_weights_match_config_totals() {
    for model in ModelConfig::paper_models() {
        let cost = CostModel::new(model.clone(), Technique::Full, 128);
        let layer_bytes: usize = cost.layer_costs().iter().map(|l| l.weight_bytes).sum();
        let expected = model.weight_bytes() - model.embedding_params() * 4;
        let diff = (layer_bytes as f64 - expected as f64).abs() / expected as f64;
        assert!(diff < 0.01, "{}: {layer_bytes} vs {expected}", model.name);
    }
}

/// The planner's DP feasibility must agree with the memory accountant: a
/// T5-Large full-fine-tuning replica exceeds one Nano in both views.
#[test]
fn planner_and_memory_model_agree_on_feasibility() {
    let nano = Cluster::nanos(1);
    let mm = MemoryModel::paper_defaults(ModelConfig::t5_large(), Technique::Full);
    assert!(mm.breakdown(Phase::Training).total() > nano.devices[0].usable_memory);
    let cost = CostModel::new(ModelConfig::t5_large(), Technique::Full, 128);
    assert!(Planner::paper_defaults(nano, 16).plan(&cost).is_none());
}

/// A measured (wall-clock) profile must produce a structurally valid plan
/// just like an analytic one.
#[test]
fn measured_profile_plans_successfully() {
    let cfg = ModelConfig::micro(4, 0, 16, 2);
    let model = pac_model::EncoderModel::new(&cfg, 2, &mut seeded(2));
    let batch: Vec<Vec<usize>> = (0..2).map(|i| vec![i + 1; 6]).collect();
    let profile = Profile::measure_micro(&model, &batch, 2);
    assert_eq!(profile.num_layers(), 4);

    let cluster = Cluster::nanos(2);
    let cost = CostModel::new(cfg, Technique::parallel_default(), 6);
    let planner = Planner::paper_defaults(cluster, 4);
    let outcome = planner
        .plan_from_profile(&cost, &profile)
        .expect("measured profile must be plannable");
    assert!(outcome.best.validate(4, 2).is_ok());
}

/// Cache bytes reported by the live cache must match the analytic
/// prediction used by the storage-cost analysis (§5.2).
#[test]
fn cache_bytes_match_prediction() {
    let hidden = 16usize;
    let mut cache = ActivationCache::new();
    let s = 7usize;
    for id in 0..5u64 {
        let acts: Vec<pac_tensor::Tensor> = (0..3)
            .map(|_| pac_tensor::Tensor::zeros([1, s, hidden]))
            .collect();
        cache.insert(id, acts);
    }
    let predicted = ActivationCache::predicted_bytes(5, s, hidden, 3);
    assert_eq!(cache.stats().bytes, predicted);
}

/// Simulated AllReduce cost must be consistent between the collective model
/// and the DP engine's payload.
#[test]
fn allreduce_payload_consistency() {
    let cfg = ModelConfig::t5_base();
    let technique = Technique::parallel_default();
    let cost = CostModel::new(cfg.clone(), technique, 128);
    let payload = cost.trainable_bytes_total();
    assert_eq!(payload, technique.trainable_params(&cfg) * 4);
    let coll = CollectiveModel::new(LinkSpec::lan_128mbps());
    let t2 = coll.allreduce_time(2, payload);
    let t8 = coll.allreduce_time(8, payload);
    assert!(t8 >= t2 * 0.8);
    assert!(t8 < 2.5 * LinkSpec::lan_128mbps().transfer_time(payload));
}

/// The Table 2 estimator must agree with direct simulation for a baseline
/// cell (EDDL: steps × epochs × step time).
#[test]
fn table2_cell_matches_direct_simulation() {
    let cluster = Cluster::nanos(8);
    let model = ModelConfig::t5_base();
    let technique = Technique::adapters_default();
    let cell = estimate_cell(System::Eddl, technique, &model, TaskKind::Sst2, &cluster)
        .hours()
        .expect("EDDL runs T5-Base");
    let cost = CostModel::new(model, technique, 128);
    let step = pac_parallel::simulate_data_parallel(&cluster, &cost, 16).step_s;
    let steps = TaskKind::Sst2.train_size().div_ceil(16);
    let expected = step * steps as f64 / 3600.0; // 1 epoch
    assert!((cell - expected).abs() / expected < 1e-9);
}

/// Every plan the planner emits must validate and re-simulate to the same
/// makespan it reported.
#[test]
fn every_planned_configuration_simulates() {
    for n in 2..=8usize {
        let cluster = Cluster::nanos(n);
        let cost = CostModel::new(
            ModelConfig::bart_large(),
            Technique::parallel_default(),
            128,
        );
        if let Some(outcome) = Planner::paper_defaults(cluster.clone(), n).plan(&cost) {
            let layers = cost.layer_costs().len();
            assert!(outcome.best.validate(layers, n).is_ok(), "n={n}");
            let sim = simulate_plan(
                &cluster,
                &cost,
                &outcome.best,
                n,
                outcome.best_micro_batches,
                Schedule::OneFOneB,
            );
            assert!(
                (sim.makespan_s - outcome.best_makespan_s).abs() < 1e-9,
                "n={n}"
            );
        }
    }
}

/// Degenerate plans recover the baseline systems exactly.
#[test]
fn degenerate_plans_recover_baselines() {
    let cost = CostModel::new(ModelConfig::t5_base(), Technique::parallel_default(), 128);
    let layers = cost.layer_costs().len();
    let dp = ParallelPlan::data_parallel(layers, 4);
    assert_eq!(dp.num_stages(), 1);
    assert_eq!(dp.stages[0].group_size(), 4);
    let pp = ParallelPlan::pipeline_even(layers, 4);
    assert_eq!(pp.num_stages(), 4);
    assert!(pp.stages.iter().all(|s| s.group_size() == 1));
}

/// Full end-to-end consistency of the PAC session report.
#[test]
fn session_reports_are_internally_consistent() {
    let cfg = ModelConfig::micro(1, 1, 16, 2);
    let session = PacSession::new(PacConfig {
        devices: 2,
        epochs: 2,
        batch_size: 4,
        reduction: 4,
        lr: 1e-2,
        seed: 3,
        checkpoint_every: 4,
        cache_int8: false,
    });
    let report = session.run(&cfg, TaskKind::Sst2, 16, 8).unwrap();
    assert!(report.trainable_params < report.total_params);
    assert!((0.0..=100.0).contains(&report.metric));
    assert_eq!(report.epoch_losses.len(), 2);
    assert!(report.cache_stats.entries <= 16);
}
