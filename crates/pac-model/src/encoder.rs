//! Encoder-only classifier used by the *real* pipeline-parallel engine.
//!
//! Pipeline parallelism moves a single hidden-state tensor between stages
//! (paper Figure 6); the encoder-only model has exactly that inter-stage
//! payload, so the real threaded engine in `pac-parallel` partitions this
//! model. The full encoder-decoder model ([`crate::EncDecModel`]) is used
//! for quality experiments where parallel execution does not change the
//! math.

use crate::config::ModelConfig;
use crate::stage::{StageModel, StageUnit};
use pac_nn::{
    Activation, Embedding, LayerNorm, LayerNormCtx, Linear, LinearCtx, Module, Param,
    TransformerLayer, TransformerLayerCtx,
};
use pac_tensor::{reduce, Result, Tensor, TensorError};
use rand::Rng;

/// Context captured by [`EncoderModel::forward`].
#[derive(Debug, Clone)]
pub struct EncoderCtx {
    tokens: Vec<Vec<usize>>,
    positions: Vec<usize>,
    layer_ctxs: Vec<TransformerLayerCtx>,
    /// Per-layer outputs `b_i` (for Parallel Adapters / activation cache).
    pub layer_outputs: Vec<Tensor>,
    final_ln: LayerNormCtx,
    /// Normalized hidden states entering the mean-pool.
    normed: Tensor,
    head_ctx: LinearCtx,
    batch: usize,
    seq: usize,
}

/// Encoder-only transformer with a mean-pool + linear classification head.
#[derive(Debug, Clone)]
pub struct EncoderModel {
    /// Architecture parameters.
    pub config: ModelConfig,
    /// Token embedding.
    pub embed: Embedding,
    /// Positional embedding.
    pub pos: Embedding,
    /// Transformer layers.
    pub layers: Vec<TransformerLayer>,
    /// Final LayerNorm.
    pub final_ln: LayerNorm,
    /// Classification head `[hidden, n_out]`.
    pub head: Linear,
}

impl EncoderModel {
    /// Builds an encoder-only model with `config.enc_layers` layers.
    pub fn new(config: &ModelConfig, n_out: usize, rng: &mut impl Rng) -> Self {
        let d = config.hidden;
        let layers = (0..config.enc_layers)
            .map(|i| {
                TransformerLayer::encoder(
                    &format!("layer{i}"),
                    rng,
                    d,
                    config.heads,
                    config.ff_dim,
                    Activation::Gelu,
                )
            })
            .collect();
        EncoderModel {
            config: config.clone(),
            embed: Embedding::new("embed", rng, config.vocab, d),
            pos: Embedding::new("pos", rng, config.max_seq, d),
            layers,
            final_ln: LayerNorm::new("final_ln", d),
            head: Linear::new("head", rng, d, n_out, true),
        }
    }

    /// Number of transformer layers.
    pub fn num_layers(&self) -> usize {
        self.layers.len()
    }

    /// Embeds a batch into `[b, s, d]` without running the layers (used by
    /// the profiler to obtain a representative hidden state).
    ///
    /// # Errors
    /// Returns a shape error on ragged or empty batches.
    pub fn embed_batch_for_profile(&self, tokens: &[Vec<usize>]) -> Result<(Tensor, Vec<usize>)> {
        let batch = tokens.len();
        let seq = tokens.first().map(|t| t.len()).unwrap_or(0);
        if batch == 0 || seq == 0 || tokens.iter().any(|t| t.len() != seq) {
            return Err(TensorError::ShapeMismatch {
                op: "embed_batch_for_profile",
                lhs: vec![batch],
                rhs: vec![seq],
            });
        }
        let flat: Vec<usize> = tokens.iter().flatten().copied().collect();
        let positions: Vec<usize> = (0..batch).flat_map(|_| 0..seq).collect();
        let x = self
            .embed
            .forward(&flat)?
            .add(&self.pos.forward(&positions)?)?
            .reshape([batch, seq, self.config.hidden])?;
        Ok((x, positions))
    }

    /// Forward pass: `tokens → logits [batch, n_out]`.
    ///
    /// # Errors
    /// Returns shape errors on ragged batches or OOV tokens.
    pub fn forward(&self, tokens: &[Vec<usize>]) -> Result<(Tensor, EncoderCtx)> {
        let batch = tokens.len();
        let seq = tokens.first().map(|t| t.len()).unwrap_or(0);
        if batch == 0 || seq == 0 || tokens.iter().any(|t| t.len() != seq) {
            return Err(TensorError::ShapeMismatch {
                op: "encoder_forward",
                lhs: vec![batch],
                rhs: vec![seq],
            });
        }
        let d = self.config.hidden;
        let flat: Vec<usize> = tokens.iter().flatten().copied().collect();
        let positions: Vec<usize> = (0..batch).flat_map(|_| 0..seq).collect();
        let mut x = self
            .embed
            .forward(&flat)?
            .add(&self.pos.forward(&positions)?)?
            .reshape([batch, seq, d])?;

        let mut layer_ctxs = Vec::with_capacity(self.layers.len());
        let mut layer_outputs = Vec::with_capacity(self.layers.len());
        for layer in &self.layers {
            let (y, ctx) = layer.forward(&x, None)?;
            layer_ctxs.push(ctx);
            layer_outputs.push(y.clone());
            x = y;
        }

        let (normed, final_ln) = self.final_ln.forward(&x)?;
        let pooled = mean_pool(&normed, batch, seq, d)?;
        let (logits, head_ctx) = self.head.forward(&pooled)?;
        Ok((
            logits,
            EncoderCtx {
                tokens: tokens.to_vec(),
                positions,
                layer_ctxs,
                layer_outputs,
                final_ln,
                normed,
                head_ctx,
                batch,
                seq,
            },
        ))
    }

    /// Backward pass from `dlogits`; accumulates gradients.
    ///
    /// # Errors
    /// Propagates shape errors from the constituent layers.
    pub fn backward(&mut self, ctx: &EncoderCtx, dlogits: &Tensor) -> Result<()> {
        let d = self.config.hidden;
        let (batch, seq) = (ctx.batch, ctx.seq);
        let d_pooled = self.head.backward(&ctx.head_ctx, dlogits)?;
        let d_normed = mean_pool_backward(&d_pooled, batch, seq, d)?;
        let mut dx = self
            .final_ln
            .backward(&ctx.final_ln, &d_normed)?
            .reshape([batch, seq, d])?;
        let _ = &ctx.normed;
        for (layer, lctx) in self.layers.iter_mut().zip(ctx.layer_ctxs.iter()).rev() {
            let (g, _) = layer.backward(lctx, &dx)?;
            dx = g;
        }
        let flat: Vec<usize> = ctx.tokens.iter().flatten().copied().collect();
        let dx2 = dx.reshape([batch * seq, d])?;
        self.embed.backward(&flat, &dx2)?;
        self.pos.backward(&ctx.positions, &dx2)?;
        Ok(())
    }

    /// Freezes everything except the head.
    pub fn freeze_backbone(&mut self) {
        self.visit_params(&mut |p| {
            if !p.name.starts_with("head") {
                p.trainable = false;
            }
        });
    }

    /// Splits the model into pipeline stages.
    ///
    /// `layers_per_stage[i]` is the number of transformer layers assigned to
    /// stage `i`; the embedding joins the first stage and the
    /// LayerNorm+pool+head join the last.
    ///
    /// # Errors
    /// Returns a shape error if the counts do not sum to the layer count or
    /// any stage is empty of layers while interior.
    pub fn partition(self, layers_per_stage: &[usize]) -> Result<Vec<StageModel>> {
        let total: usize = layers_per_stage.iter().sum();
        if total != self.layers.len() || layers_per_stage.is_empty() {
            return Err(TensorError::ShapeMismatch {
                op: "partition",
                lhs: vec![self.layers.len()],
                rhs: layers_per_stage.to_vec(),
            });
        }
        let n_stages = layers_per_stage.len();
        let mut layers = self.layers.into_iter();
        let mut stages = Vec::with_capacity(n_stages);
        for (si, &count) in layers_per_stage.iter().enumerate() {
            let mut units = Vec::new();
            if si == 0 {
                units.push(StageUnit::Embed {
                    embed: self.embed.clone(),
                    pos: self.pos.clone(),
                });
            }
            for _ in 0..count {
                units.push(StageUnit::Layer(Box::new(
                    layers.next().expect("layer count checked above"),
                )));
            }
            if si == n_stages - 1 {
                units.push(StageUnit::Head {
                    ln: self.final_ln.clone(),
                    head: self.head.clone(),
                });
            }
            stages.push(StageModel::new(si, units));
        }
        Ok(stages)
    }
}

/// Mean over the sequence dimension: `[b, s, d] → [b, d]`.
pub(crate) fn mean_pool(x: &Tensor, batch: usize, seq: usize, d: usize) -> Result<Tensor> {
    let x2 = x.clone().reshape([batch, seq * d])?;
    let mut out = Tensor::zeros([batch, d]);
    for b in 0..batch {
        for s in 0..seq {
            for j in 0..d {
                let v = x2.data()[b * seq * d + s * d + j];
                out.data_mut()[b * d + j] += v / seq as f32;
            }
        }
    }
    Ok(out)
}

/// Backward of [`mean_pool`]: spreads `dy/seq` over every position.
pub(crate) fn mean_pool_backward(
    dy: &Tensor,
    batch: usize,
    seq: usize,
    d: usize,
) -> Result<Tensor> {
    let mut out = Tensor::zeros([batch * seq, d]);
    for b in 0..batch {
        for s in 0..seq {
            for j in 0..d {
                out.data_mut()[(b * seq + s) * d + j] = dy.data()[b * d + j] / seq as f32;
            }
        }
    }
    Ok(out)
}

/// Re-exported pooling helpers for the stage head implementation.
pub(crate) mod pool {
    pub(crate) use super::{mean_pool, mean_pool_backward};
}

impl Module for EncoderModel {
    fn visit_params(&mut self, f: &mut dyn FnMut(&mut Param)) {
        self.embed.visit_params(f);
        self.pos.visit_params(f);
        for l in &mut self.layers {
            l.visit_params(f);
        }
        self.final_ln.visit_params(f);
        self.head.visit_params(f);
    }
    fn visit_params_ref(&self, f: &mut dyn FnMut(&Param)) {
        self.embed.visit_params_ref(f);
        self.pos.visit_params_ref(f);
        for l in &self.layers {
            l.visit_params_ref(f);
        }
        self.final_ln.visit_params_ref(f);
        self.head.visit_params_ref(f);
    }
}

// Silence the "unused" lint for reduce which is used in tests only.
#[allow(unused_imports)]
use reduce as _reduce_used_in_tests;

#[cfg(test)]
mod tests {
    use super::*;
    use pac_nn::{cross_entropy, Adam, Optimizer};
    use pac_tensor::rng::seeded;

    fn model(seed: u64, layers: usize) -> EncoderModel {
        let mut cfg = ModelConfig::micro(layers, 0, 16, 2);
        cfg.enc_layers = layers;
        EncoderModel::new(&cfg, 2, &mut seeded(seed))
    }

    fn batch(seed: u64, b: usize, s: usize) -> Vec<Vec<usize>> {
        let mut rng = seeded(seed);
        (0..b)
            .map(|_| (0..s).map(|_| rng.gen_range(0..64)).collect())
            .collect()
    }

    #[test]
    fn forward_shapes() {
        let m = model(100, 3);
        let toks = batch(101, 4, 6);
        let (logits, ctx) = m.forward(&toks).unwrap();
        assert_eq!(logits.dims(), &[4, 2]);
        assert_eq!(ctx.layer_outputs.len(), 3);
    }

    #[test]
    fn training_reduces_loss() {
        let mut m = model(102, 2);
        let toks = batch(103, 6, 5);
        let targets = [0usize, 1, 0, 1, 0, 1];
        let mut opt = Adam::new(5e-3);
        let mut first = 0.0;
        let mut last = 0.0;
        for step in 0..20 {
            let (logits, ctx) = m.forward(&toks).unwrap();
            let (loss, dl) = cross_entropy(&logits, &targets).unwrap();
            if step == 0 {
                first = loss;
            }
            last = loss;
            m.zero_grads();
            m.backward(&ctx, &dl).unwrap();
            opt.step(&mut m);
        }
        assert!(last < first * 0.8, "first {first} last {last}");
    }

    #[test]
    fn mean_pool_round_trip_gradcheck() {
        let mut rng = seeded(104);
        let x = pac_tensor::init::randn(&mut rng, [2, 3, 4], 1.0);
        let y = mean_pool(&x, 2, 3, 4).unwrap();
        assert_eq!(y.dims(), &[2, 4]);
        // Pool of a constant tensor is that constant.
        let c = Tensor::full([2, 3, 4], 5.0);
        assert!(mean_pool(&c, 2, 3, 4)
            .unwrap()
            .approx_eq(&Tensor::full([2, 4], 5.0), 1e-6));
        // Backward spreads uniformly and preserves total gradient mass.
        let dy = Tensor::ones([2, 4]);
        let dx = mean_pool_backward(&dy, 2, 3, 4).unwrap();
        assert!((dx.sum() - dy.sum()).abs() < 1e-4);
    }

    #[test]
    fn partition_layer_counts_must_sum() {
        let m = model(105, 4);
        assert!(m.clone().partition(&[2, 1]).is_err());
        assert!(m.clone().partition(&[]).is_err());
        let stages = m.partition(&[2, 2]).unwrap();
        assert_eq!(stages.len(), 2);
    }

    #[test]
    fn partitioned_params_equal_monolithic_params() {
        let m = model(106, 4);
        let total = m.num_params();
        let stages = m.partition(&[1, 3]).unwrap();
        let sum: usize = stages.iter().map(|s| s.num_params()).sum();
        assert_eq!(sum, total);
    }
}
