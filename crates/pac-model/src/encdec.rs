//! The full encoder-decoder model (T5/BART structure) with explicit
//! forward/backward, used for real micro-scale training.

use crate::config::ModelConfig;
use pac_nn::{
    Activation, Embedding, LayerNorm, LayerNormCtx, Linear, LinearCtx, Module, Param,
    TransformerLayer, TransformerLayerCtx,
};
use pac_tensor::{Result, Tensor, TensorError};
use rand::Rng;

/// Context captured by [`EncDecModel::forward`].
#[derive(Debug, Clone)]
pub struct EncDecCtx {
    /// Input token ids, one row per batch element (all equal length).
    pub tokens: Vec<Vec<usize>>,
    /// Positions used for the positional-embedding backward.
    positions: Vec<usize>,
    enc_ctxs: Vec<TransformerLayerCtx>,
    dec_ctxs: Vec<TransformerLayerCtx>,
    /// Per-backbone-layer outputs (encoder layers then decoder layers).
    ///
    /// These are the `b_i` activations the paper's Parallel Adapters consume
    /// and the activation cache stores.
    pub layer_outputs: Vec<Tensor>,
    /// Final encoder output fed to every decoder layer's cross-attention.
    pub enc_out: Tensor,
    final_ln: LayerNormCtx,
    head_ctx: LinearCtx,
    batch: usize,
    seq: usize,
}

/// Encoder-decoder transformer with a task head on the first decoder
/// position (the T5 "text-to-text reduced to classification" pattern: the
/// decoder is fed a single start token and the head reads its output).
#[derive(Debug, Clone)]
pub struct EncDecModel {
    /// Architecture this model instantiates.
    pub config: ModelConfig,
    /// Token embedding shared by encoder and decoder (T5/BART tie these).
    pub embed: Embedding,
    /// Learned positional embedding.
    pub pos: Embedding,
    /// Encoder stack.
    pub encoder: Vec<TransformerLayer>,
    /// Decoder stack (causal self-attention + cross-attention).
    pub decoder: Vec<TransformerLayer>,
    /// Final LayerNorm before the head.
    pub final_ln: LayerNorm,
    /// Task head `[hidden, n_out]`.
    pub head: Linear,
    /// Decoder start-token id.
    pub start_token: usize,
}

impl EncDecModel {
    /// Builds a model from `config` with `n_out` head outputs.
    pub fn new(config: &ModelConfig, n_out: usize, rng: &mut impl Rng) -> Self {
        let d = config.hidden;
        let encoder = (0..config.enc_layers)
            .map(|i| {
                TransformerLayer::encoder(
                    &format!("enc{i}"),
                    rng,
                    d,
                    config.heads,
                    config.ff_dim,
                    Activation::Gelu,
                )
            })
            .collect();
        let decoder = (0..config.dec_layers)
            .map(|i| {
                TransformerLayer::decoder(
                    &format!("dec{i}"),
                    rng,
                    d,
                    config.heads,
                    config.ff_dim,
                    Activation::Gelu,
                )
            })
            .collect();
        EncDecModel {
            config: config.clone(),
            embed: Embedding::new("embed", rng, config.vocab, d),
            pos: Embedding::new("pos", rng, config.max_seq, d),
            encoder,
            decoder,
            final_ln: LayerNorm::new("final_ln", d),
            head: Linear::new("head", rng, d, n_out, true),
            start_token: 1,
        }
    }

    /// Number of backbone layers (encoder + decoder).
    pub fn num_layers(&self) -> usize {
        self.encoder.len() + self.decoder.len()
    }

    /// Head output width.
    pub fn n_out(&self) -> usize {
        self.head.out_dim()
    }

    /// Embeds a batch of equal-length token sequences into `[b, s, d]`.
    ///
    /// # Errors
    /// Returns a shape error on ragged batches or OOV/overlong sequences.
    pub fn embed_batch(&self, tokens: &[Vec<usize>]) -> Result<(Tensor, Vec<usize>)> {
        let batch = tokens.len();
        let seq = tokens.first().map(|t| t.len()).unwrap_or(0);
        if batch == 0 || seq == 0 || tokens.iter().any(|t| t.len() != seq) {
            return Err(TensorError::ShapeMismatch {
                op: "embed_batch",
                lhs: vec![batch],
                rhs: vec![seq],
            });
        }
        let flat: Vec<usize> = tokens.iter().flatten().copied().collect();
        let tok_emb = self.embed.forward(&flat)?;
        let positions: Vec<usize> = (0..batch).flat_map(|_| 0..seq).collect();
        let pos_emb = self.pos.forward(&positions)?;
        let x = tok_emb
            .add(&pos_emb)?
            .reshape([batch, seq, self.config.hidden])?;
        Ok((x, positions))
    }

    /// Full forward pass: `tokens → logits [batch, n_out]`.
    ///
    /// # Errors
    /// Propagates shape errors from the constituent layers.
    pub fn forward(&self, tokens: &[Vec<usize>]) -> Result<(Tensor, EncDecCtx)> {
        let batch = tokens.len();
        let d = self.config.hidden;
        let (mut x, positions) = self.embed_batch(tokens)?;
        let seq = tokens[0].len();

        let mut enc_ctxs = Vec::with_capacity(self.encoder.len());
        let mut layer_outputs = Vec::with_capacity(self.num_layers());
        for layer in &self.encoder {
            let (y, ctx) = layer.forward(&x, None)?;
            enc_ctxs.push(ctx);
            layer_outputs.push(y.clone());
            x = y;
        }
        let enc_out = x;

        // Decoder input: one start token per batch element.
        let dec_tokens: Vec<usize> = vec![self.start_token; batch];
        let dec_emb = self.embed.forward(&dec_tokens)?;
        let dec_pos = self.pos.forward(&vec![0usize; batch])?;
        let mut xd = dec_emb.add(&dec_pos)?.reshape([batch, 1, d])?;

        let mut dec_ctxs = Vec::with_capacity(self.decoder.len());
        for layer in &self.decoder {
            let (y, ctx) = layer.forward(&xd, Some(&enc_out))?;
            dec_ctxs.push(ctx);
            layer_outputs.push(y.clone());
            xd = y;
        }

        let (normed, final_ln) = self.final_ln.forward(&xd)?;
        let (logits, head_ctx) = self.head.forward(&normed)?;

        Ok((
            logits,
            EncDecCtx {
                tokens: tokens.to_vec(),
                positions,
                enc_ctxs,
                dec_ctxs,
                layer_outputs,
                enc_out,
                final_ln,
                head_ctx,
                batch,
                seq,
            },
        ))
    }

    /// Full backward pass from `dlogits` (`[batch, n_out]`); accumulates
    /// gradients into every trainable parameter.
    ///
    /// # Errors
    /// Propagates shape errors from the constituent layers.
    pub fn backward(&mut self, ctx: &EncDecCtx, dlogits: &Tensor) -> Result<()> {
        let d = self.config.hidden;
        let (batch, seq) = (ctx.batch, ctx.seq);

        let d_normed = self.head.backward(&ctx.head_ctx, dlogits)?;
        let mut dxd = self
            .final_ln
            .backward(&ctx.final_ln, &d_normed)?
            .reshape([batch, 1, d])?;

        // Decoder stack (reverse). Cross-attention gradients accumulate into
        // the encoder output.
        let mut d_enc_total = Tensor::zeros(ctx.enc_out.dims());
        for (layer, lctx) in self.decoder.iter_mut().zip(ctx.dec_ctxs.iter()).rev() {
            let (dx, d_enc) = layer.backward(lctx, &dxd)?;
            dxd = dx;
            if let Some(de) = d_enc {
                d_enc_total.add_assign(&de)?;
            }
        }

        // Decoder input embedding gradient.
        let dec_tokens: Vec<usize> = vec![self.start_token; batch];
        let dxd2 = dxd.reshape([batch, d])?;
        self.embed.backward(&dec_tokens, &dxd2)?;
        self.pos.backward(&vec![0usize; batch], &dxd2)?;

        // Encoder stack (reverse).
        let mut dx = d_enc_total;
        for (layer, lctx) in self.encoder.iter_mut().zip(ctx.enc_ctxs.iter()).rev() {
            let (g, _) = layer.backward(lctx, &dx)?;
            dx = g;
        }

        // Encoder input embedding gradient.
        let flat: Vec<usize> = ctx.tokens.iter().flatten().copied().collect();
        let dx2 = dx.reshape([batch * seq, d])?;
        self.embed.backward(&flat, &dx2)?;
        self.pos.backward(&ctx.positions, &dx2)?;
        Ok(())
    }

    /// Freezes the backbone (everything except the task head).
    ///
    /// This is Step 3 of the PAC workflow; PEFT wrappers then add their own
    /// trainable parameters on top.
    pub fn freeze_backbone(&mut self) {
        let head_name_prefix = "head";
        self.visit_params(&mut |p| {
            if !p.name.starts_with(head_name_prefix) {
                p.trainable = false;
            }
        });
    }

    /// Switches every *frozen* linear projection in the transformer stacks
    /// (and the head, if frozen) to the dequant-free int8 forward path.
    /// Embeddings and LayerNorms stay f32 — they are lookups and vector
    /// ops, not matmuls. Returns how many linears engaged.
    pub fn quantize_frozen(&mut self) -> usize {
        let mut n = 0;
        for l in self.encoder.iter_mut().chain(self.decoder.iter_mut()) {
            n += l.quantize_frozen();
        }
        n + usize::from(self.head.quantize_frozen())
    }

    /// Resident bytes of all quantized weights (telemetry companion of
    /// [`EncDecModel::quantize_frozen`]).
    pub fn quantized_weight_bytes(&self) -> usize {
        let per_layer = |l: &pac_nn::TransformerLayer| {
            let mha = |a: &pac_nn::MultiHeadAttention| {
                a.wq.quantized_bytes()
                    + a.wk.quantized_bytes()
                    + a.wv.quantized_bytes()
                    + a.wo.quantized_bytes()
            };
            let mut b =
                mha(&l.self_attn) + l.ffn.up.quantized_bytes() + l.ffn.down.quantized_bytes();
            if let Some((_, cross)) = &l.cross_attn {
                b += mha(cross);
            }
            b
        };
        self.encoder
            .iter()
            .chain(self.decoder.iter())
            .map(per_layer)
            .sum::<usize>()
            + self.head.quantized_bytes()
    }
}

impl Module for EncDecModel {
    fn visit_params(&mut self, f: &mut dyn FnMut(&mut Param)) {
        self.embed.visit_params(f);
        self.pos.visit_params(f);
        for l in &mut self.encoder {
            l.visit_params(f);
        }
        for l in &mut self.decoder {
            l.visit_params(f);
        }
        self.final_ln.visit_params(f);
        self.head.visit_params(f);
    }
    fn visit_params_ref(&self, f: &mut dyn FnMut(&Param)) {
        self.embed.visit_params_ref(f);
        self.pos.visit_params_ref(f);
        for l in &self.encoder {
            l.visit_params_ref(f);
        }
        for l in &self.decoder {
            l.visit_params_ref(f);
        }
        self.final_ln.visit_params_ref(f);
        self.head.visit_params_ref(f);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pac_nn::{cross_entropy, Adam, Optimizer};
    use pac_tensor::rng::seeded;

    fn micro_model(seed: u64) -> EncDecModel {
        let cfg = ModelConfig::micro(2, 2, 16, 2);
        EncDecModel::new(&cfg, 3, &mut seeded(seed))
    }

    fn batch(seed: u64, b: usize, s: usize, vocab: usize) -> Vec<Vec<usize>> {
        use rand::Rng;
        let mut rng = seeded(seed);
        (0..b)
            .map(|_| (0..s).map(|_| rng.gen_range(0..vocab)).collect())
            .collect()
    }

    #[test]
    fn forward_produces_logits_and_layer_outputs() {
        let m = micro_model(80);
        let toks = batch(81, 3, 5, 64);
        let (logits, ctx) = m.forward(&toks).unwrap();
        assert_eq!(logits.dims(), &[3, 3]);
        assert_eq!(ctx.layer_outputs.len(), 4);
        assert_eq!(ctx.layer_outputs[0].dims(), &[3, 5, 16]); // encoder
        assert_eq!(ctx.layer_outputs[3].dims(), &[3, 1, 16]); // decoder
        assert!(logits.all_finite());
    }

    #[test]
    fn ragged_batches_are_rejected() {
        let m = micro_model(82);
        let toks = vec![vec![1, 2, 3], vec![1, 2]];
        assert!(m.forward(&toks).is_err());
        assert!(m.forward(&[]).is_err());
    }

    #[test]
    fn backward_populates_all_trainable_grads() {
        let mut m = micro_model(83);
        let toks = batch(84, 2, 4, 64);
        let (logits, ctx) = m.forward(&toks).unwrap();
        let (_, dlogits) = cross_entropy(&logits, &[0, 1]).unwrap();
        m.backward(&ctx, &dlogits).unwrap();
        let mut zero_grads = 0usize;
        let mut total = 0usize;
        m.visit_params_ref(&mut |p| {
            total += 1;
            if p.grad.norm() == 0.0 {
                zero_grads += 1;
            }
        });
        // Decoder self-attention Q/K legitimately receive zero gradient: the
        // decoder sees a single position, its 1×1 softmax is constant, so no
        // gradient flows into the score projections. Everything else must be
        // touched.
        let expected_zero = 2 * m.decoder.len();
        assert!(
            zero_grads <= expected_zero,
            "{zero_grads}/{total} params have zero grad (expected ≤ {expected_zero})"
        );
    }

    #[test]
    fn frozen_backbone_leaves_only_head_trainable() {
        let mut m = micro_model(85);
        let total = m.num_params();
        m.freeze_backbone();
        let trainable = m.num_trainable();
        assert_eq!(trainable, m.head.num_params());
        assert!(trainable < total / 100);
    }

    #[test]
    fn a_few_training_steps_reduce_loss() {
        let mut m = micro_model(86);
        let toks = batch(87, 4, 4, 64);
        let targets = [0usize, 1, 2, 0];
        let mut opt = Adam::new(5e-3);
        let mut first = 0.0f32;
        let mut last = 0.0f32;
        for step in 0..15 {
            let (logits, ctx) = m.forward(&toks).unwrap();
            let (loss, dlogits) = cross_entropy(&logits, &targets).unwrap();
            if step == 0 {
                first = loss;
            }
            last = loss;
            m.zero_grads();
            m.backward(&ctx, &dlogits).unwrap();
            opt.step(&mut m);
        }
        assert!(
            last < first * 0.7,
            "loss did not drop: first {first}, last {last}"
        );
    }

    #[test]
    fn frozen_backbone_is_bitwise_invariant_under_training() {
        let mut m = micro_model(88);
        m.freeze_backbone();
        let snapshot: Vec<f32> = {
            let mut v = Vec::new();
            m.visit_params_ref(&mut |p| {
                if !p.trainable {
                    v.extend_from_slice(p.value.data());
                }
            });
            v
        };
        let toks = batch(89, 2, 4, 64);
        let mut opt = Adam::new(1e-2);
        for _ in 0..3 {
            let (logits, ctx) = m.forward(&toks).unwrap();
            let (_, dl) = cross_entropy(&logits, &[1, 2]).unwrap();
            m.zero_grads();
            m.backward(&ctx, &dl).unwrap();
            opt.step(&mut m);
        }
        let mut after = Vec::new();
        m.visit_params_ref(&mut |p| {
            if !p.trainable {
                after.extend_from_slice(p.value.data());
            }
        });
        assert_eq!(snapshot, after, "frozen backbone weights moved");
    }

    #[test]
    fn layer_outputs_are_invariant_when_backbone_frozen() {
        // The property the activation cache relies on (paper §4.2): frozen
        // backbone ⇒ identical layer outputs for identical inputs, even
        // after head training steps.
        let mut m = micro_model(90);
        m.freeze_backbone();
        let toks = batch(91, 2, 4, 64);
        let (_, ctx1) = m.forward(&toks).unwrap();
        // Train the head a bit.
        let mut opt = Adam::new(1e-2);
        for _ in 0..3 {
            let (logits, ctx) = m.forward(&toks).unwrap();
            let (_, dl) = cross_entropy(&logits, &[1, 0]).unwrap();
            m.zero_grads();
            m.backward(&ctx, &dl).unwrap();
            opt.step(&mut m);
        }
        let (_, ctx2) = m.forward(&toks).unwrap();
        for (a, b) in ctx1.layer_outputs.iter().zip(ctx2.layer_outputs.iter()) {
            assert!(a.approx_eq(b, 0.0), "cached activations would be stale");
        }
    }
}
