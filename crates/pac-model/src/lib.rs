//! # pac-model
//!
//! Encoder-decoder transformer LLMs assembled from `pac-nn` layers.
//!
//! Two families of model objects live here:
//!
//! * [`config::ModelConfig`] — architecture descriptors. The three **paper
//!   configs** (T5-Base, BART-Large, T5-Large; Table 4 of the PAC paper) are
//!   used *analytically* by the cost model and planner: parameter counts,
//!   activation sizes and FLOPs are computed from them exactly, which is what
//!   drives every simulated experiment. **Micro configs** are small enough to
//!   train for real on a CPU and drive the quality-parity and correctness
//!   experiments.
//! * [`encdec::EncDecModel`] / [`encoder::EncoderModel`] — real, trainable
//!   models with explicit forward/backward. `EncDecModel` mirrors the paper's
//!   T5/BART structure (encoder + causally-masked decoder with
//!   cross-attention + task head). `EncoderModel` is the encoder-only variant
//!   the real pipeline-parallel engine partitions into [`stage::StageModel`]s
//!   (a single activation tensor flows between stages, matching the
//!   pipeline-parallel payload in the paper's Figure 6).

#![deny(missing_docs)]

pub mod config;
pub mod encdec;
pub mod encoder;
pub mod stage;

pub use config::{ModelConfig, ModelKind};
pub use encdec::{EncDecCtx, EncDecModel};
pub use encoder::{EncoderCtx, EncoderModel};
pub use stage::{StageCtx, StageData, StageModel, StageUnit};
