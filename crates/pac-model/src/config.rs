//! Architecture descriptors for the LLMs evaluated in the paper.

use serde::{Deserialize, Serialize};

/// Which published model a config describes (or a micro test model).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ModelKind {
    /// T5-Base (Raffel et al. 2020), 0.25 B parameters.
    T5Base,
    /// BART-Large (Lewis et al. 2019), 0.41 B parameters.
    BartLarge,
    /// T5-Large (Raffel et al. 2020), 0.74 B parameters.
    T5Large,
    /// A scaled-down model for real CPU training.
    Micro,
}

/// Transformer encoder-decoder architecture parameters.
///
/// The three paper configs reproduce Table 4 of the PAC paper. Every derived
/// quantity (parameter count, per-layer sizes) is computed from these fields
/// with the standard transformer formulas, so the analytic experiments use
/// the *exact* shapes of the models the paper ran.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ModelConfig {
    /// Which model family this is.
    pub kind: ModelKind,
    /// Display name, e.g. `"T5-Large"`.
    pub name: String,
    /// Number of encoder layers.
    pub enc_layers: usize,
    /// Number of decoder layers.
    pub dec_layers: usize,
    /// Attention heads per layer.
    pub heads: usize,
    /// Model (hidden) dimension `h`.
    pub hidden: usize,
    /// Feed-forward inner dimension (4·h for T5/BART).
    pub ff_dim: usize,
    /// Vocabulary size.
    pub vocab: usize,
    /// Maximum sequence length supported by the positional embedding.
    pub max_seq: usize,
}

impl ModelConfig {
    /// T5-Base per Table 4: 12+12 layers, 12 heads, hidden 768, 0.25 B.
    pub fn t5_base() -> Self {
        ModelConfig {
            kind: ModelKind::T5Base,
            name: "T5-Base".into(),
            enc_layers: 12,
            dec_layers: 12,
            heads: 12,
            hidden: 768,
            ff_dim: 3072,
            vocab: 32_128,
            max_seq: 512,
        }
    }

    /// BART-Large per Table 4: 12+12 layers, 16 heads, hidden 1024, 0.41 B.
    pub fn bart_large() -> Self {
        ModelConfig {
            kind: ModelKind::BartLarge,
            name: "BART-Large".into(),
            enc_layers: 12,
            dec_layers: 12,
            heads: 16,
            hidden: 1024,
            ff_dim: 4096,
            vocab: 50_265,
            max_seq: 1024,
        }
    }

    /// T5-Large per Table 4: 24+24 layers, 16 heads, hidden 1024, 0.74 B.
    pub fn t5_large() -> Self {
        ModelConfig {
            kind: ModelKind::T5Large,
            name: "T5-Large".into(),
            enc_layers: 24,
            dec_layers: 24,
            heads: 16,
            hidden: 1024,
            ff_dim: 4096,
            vocab: 32_128,
            max_seq: 512,
        }
    }

    /// The three paper models in evaluation order.
    pub fn paper_models() -> Vec<ModelConfig> {
        vec![Self::t5_base(), Self::bart_large(), Self::t5_large()]
    }

    /// A micro config trainable on a CPU in seconds. `enc_layers`/`dec_layers`
    /// default to 2/2 with hidden 32.
    pub fn micro(enc_layers: usize, dec_layers: usize, hidden: usize, heads: usize) -> Self {
        ModelConfig {
            kind: ModelKind::Micro,
            name: format!("Micro-{enc_layers}e{dec_layers}d-h{hidden}"),
            enc_layers,
            dec_layers,
            heads,
            hidden,
            ff_dim: hidden * 4,
            vocab: 64,
            max_seq: 32,
        }
    }

    // ------------------------------------------------------ derived counts

    /// Total transformer layers (encoder + decoder).
    pub fn total_layers(&self) -> usize {
        self.enc_layers + self.dec_layers
    }

    /// Parameters of one encoder layer: 4·h² attention + 2·h·ff feed-forward
    /// (+ the comparatively tiny LayerNorm/bias terms).
    pub fn enc_layer_params(&self) -> usize {
        let h = self.hidden;
        4 * h * h + 2 * h * self.ff_dim + 4 * h + self.ff_dim + h
    }

    /// Parameters of one decoder layer: adds a 4·h² cross-attention block
    /// and its LayerNorm.
    pub fn dec_layer_params(&self) -> usize {
        self.enc_layer_params() + 4 * self.hidden * self.hidden + 2 * self.hidden
    }

    /// Token-embedding parameters (tied between encoder, decoder and LM head,
    /// following T5/BART).
    pub fn embedding_params(&self) -> usize {
        self.vocab * self.hidden
    }

    /// Total backbone parameter count.
    pub fn total_params(&self) -> usize {
        self.enc_layers * self.enc_layer_params()
            + self.dec_layers * self.dec_layer_params()
            + self.embedding_params()
            + 2 * self.hidden // final LayerNorm
    }

    /// Backbone weight bytes at f32 precision (the paper trains in Float32).
    pub fn weight_bytes(&self) -> usize {
        self.total_params() * 4
    }

    /// Per-token activation floats that one encoder layer must retain for
    /// its backward pass (residuals, normalized inputs, Q/K/V/O, FFN hidden).
    ///
    /// Counted from the explicit backward implementations in `pac-nn`:
    /// LN1 x̂ (h) + attention q,k,v,o-concat (4h) + layer input (h) +
    /// LN2 x̂ (h) + FFN pre-activation (ff) + FFN input (h) — attention
    /// score matrices are counted separately because they scale with s².
    pub fn enc_layer_act_floats_per_token(&self) -> usize {
        8 * self.hidden + self.ff_dim
    }

    /// Per-token activation floats for a decoder layer (adds cross-attention
    /// q/k/v/o and its LN).
    pub fn dec_layer_act_floats_per_token(&self) -> usize {
        self.enc_layer_act_floats_per_token() + 5 * self.hidden
    }

    /// Attention-probability floats per layer for a `seq × seq` score matrix
    /// across all heads (these dominate at long sequence lengths).
    pub fn attn_score_floats(&self, batch: usize, seq: usize) -> usize {
        batch * self.heads * seq * seq
    }

    /// The hidden-state size `h` floats per token flowing between layers —
    /// this is the inter-stage communication payload of pipeline parallelism.
    pub fn boundary_floats_per_token(&self) -> usize {
        self.hidden
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_param_counts_match_table4() {
        // Table 4 reports 0.25B / 0.41B / 0.74B; Table 1 reports 737M for
        // T5-Large. Our formulas must land within 3% of those.
        let t5b = ModelConfig::t5_base();
        let bart = ModelConfig::bart_large();
        let t5l = ModelConfig::t5_large();
        let close = |got: usize, want: f64, tol: f64| {
            let got = got as f64;
            (got - want).abs() / want < tol
        };
        // T5-Base is actually 223M parameters; the paper rounds to "0.25B".
        assert!(
            close(t5b.total_params(), 223e6, 0.02),
            "{}",
            t5b.total_params()
        );
        assert!(
            close(bart.total_params(), 0.41e9, 0.03),
            "{}",
            bart.total_params()
        );
        assert!(
            close(t5l.total_params(), 0.737e9, 0.03),
            "{}",
            t5l.total_params()
        );
    }

    #[test]
    fn t5_large_weight_bytes_match_table1() {
        // Table 1: 2.75 GB of weights for T5-Large at Float32.
        let gb = ModelConfig::t5_large().weight_bytes() as f64 / 1e9;
        assert!((gb - 2.95).abs() < 0.3, "weights {gb} GB");
    }

    #[test]
    fn decoder_layers_are_heavier_than_encoder_layers() {
        let c = ModelConfig::t5_base();
        assert!(c.dec_layer_params() > c.enc_layer_params());
        assert!(c.dec_layer_act_floats_per_token() > c.enc_layer_act_floats_per_token());
    }

    #[test]
    fn micro_config_is_tiny() {
        let m = ModelConfig::micro(2, 2, 32, 4);
        assert!(m.total_params() < 1_000_000);
        assert_eq!(m.total_layers(), 4);
    }

    #[test]
    fn attn_scores_scale_quadratically() {
        let c = ModelConfig::t5_base();
        assert_eq!(c.attn_score_floats(1, 256), 4 * c.attn_score_floats(1, 128));
    }

    #[test]
    fn config_serializes() {
        let c = ModelConfig::t5_base();
        let s = serde_json_like(&c);
        assert!(s.contains("T5-Base"));
    }

    // serde round-trip via Debug (serde_json not a dependency; this exercises
    // the Serialize derive compiles and the Debug output is stable).
    fn serde_json_like(c: &ModelConfig) -> String {
        format!("{c:?}")
    }
}
