//! Pipeline-stage models: a contiguous chunk of an [`crate::EncoderModel`].
//!
//! A [`StageModel`] owns a sequence of [`StageUnit`]s (embedding, transformer
//! layers, head) and exposes `forward`/`backward` with per-micro-batch
//! contexts, so the pipeline engine can keep several micro-batches in flight
//! on the same stage (1F1B scheduling).

use pac_nn::{
    Embedding, LayerNorm, LayerNormCtx, Linear, LinearCtx, Module, Param, TransformerLayer,
    TransformerLayerCtx,
};
use pac_tensor::{Result, Tensor, TensorError};

/// One building block of a stage.
///
/// Variant sizes differ by design: embeddings dwarf heads. Stages hold a
/// handful of units, so boxing would cost more in indirection than it saves.
#[allow(clippy::large_enum_variant)]
#[derive(Debug, Clone)]
pub enum StageUnit {
    /// Token + positional embedding (first stage only).
    Embed {
        /// Token embedding table.
        embed: Embedding,
        /// Positional embedding table.
        pos: Embedding,
    },
    /// A transformer layer.
    Layer(Box<TransformerLayer>),
    /// Final LayerNorm + mean-pool + classification head (last stage only).
    Head {
        /// Final LayerNorm.
        ln: LayerNorm,
        /// Classification head.
        head: Linear,
    },
}

/// Data flowing into a stage: raw tokens for stage 0, hidden states after.
#[derive(Debug, Clone)]
pub enum StageData {
    /// Token ids (first stage input).
    Tokens(Vec<Vec<usize>>),
    /// Hidden states `[b, s, d]` (inter-stage payload).
    Hidden(Tensor),
    /// Head logits `[b, n_out]` (pipeline output).
    Logits(Tensor),
}

impl StageData {
    /// Bytes this payload occupies on the wire (what pipeline communication
    /// costs are charged on).
    pub fn wire_bytes(&self) -> usize {
        match self {
            StageData::Tokens(t) => t.iter().map(|r| r.len() * 4).sum(),
            StageData::Hidden(t) | StageData::Logits(t) => t.size_bytes(),
        }
    }
}

/// Per-unit saved context.
#[allow(clippy::large_enum_variant)]
#[derive(Debug, Clone)]
enum UnitCtx {
    Embed {
        tokens: Vec<Vec<usize>>,
        positions: Vec<usize>,
    },
    Layer(TransformerLayerCtx),
    Head {
        ln: LayerNormCtx,
        head: LinearCtx,
        batch: usize,
        seq: usize,
        dim: usize,
    },
}

/// Context captured by [`StageModel::forward`] for one micro-batch.
#[derive(Debug, Clone)]
pub struct StageCtx {
    units: Vec<UnitCtx>,
    /// Bytes of activation memory this context retains (for the live memory
    /// accounting of the real engine).
    pub activation_bytes: usize,
    /// Per-layer outputs produced inside this stage, in layer order.
    pub layer_outputs: Vec<Tensor>,
}

impl StageCtx {
    /// Recycles the activation tensors retained by this context into the
    /// scratch pool. Call after the backward pass that consumed the context;
    /// buffers still shared with live tensors are dropped, not recycled, so
    /// this is always safe.
    pub fn recycle(self) {
        let StageCtx {
            units,
            layer_outputs,
            ..
        } = self;
        // Release the per-unit contexts first: they hold clones of the layer
        // outputs, and a buffer is only recyclable once it is unshared.
        drop(units);
        for t in layer_outputs {
            pac_tensor::scratch::put(t);
        }
    }
}

/// A pipeline stage: an ordered list of units with explicit fwd/bwd.
#[derive(Debug, Clone)]
pub struct StageModel {
    /// Stage index within the pipeline.
    pub index: usize,
    units: Vec<StageUnit>,
}

impl StageModel {
    /// Creates a stage from its units.
    pub fn new(index: usize, units: Vec<StageUnit>) -> Self {
        StageModel { index, units }
    }

    /// Number of transformer layers in this stage.
    pub fn num_layers(&self) -> usize {
        self.units
            .iter()
            .filter(|u| matches!(u, StageUnit::Layer(_)))
            .count()
    }

    /// True when this stage contains the embedding (stage 0).
    pub fn has_embed(&self) -> bool {
        self.units
            .iter()
            .any(|u| matches!(u, StageUnit::Embed { .. }))
    }

    /// True when this stage contains the head (last stage).
    pub fn has_head(&self) -> bool {
        self.units
            .iter()
            .any(|u| matches!(u, StageUnit::Head { .. }))
    }

    /// Forward pass over one micro-batch.
    ///
    /// # Errors
    /// Returns a shape error when the payload kind does not match the stage
    /// position (e.g. hidden states fed to an embedding stage).
    pub fn forward(&self, input: StageData) -> Result<(StageData, StageCtx)> {
        let mut data = input;
        let mut ctxs = Vec::with_capacity(self.units.len());
        let mut act_bytes = 0usize;
        let mut layer_outputs = Vec::new();
        for unit in &self.units {
            data = match (unit, data) {
                (StageUnit::Embed { embed, pos }, StageData::Tokens(tokens)) => {
                    let batch = tokens.len();
                    let seq = tokens.first().map(|t| t.len()).unwrap_or(0);
                    if batch == 0 || seq == 0 || tokens.iter().any(|t| t.len() != seq) {
                        return Err(TensorError::ShapeMismatch {
                            op: "stage_embed",
                            lhs: vec![batch],
                            rhs: vec![seq],
                        });
                    }
                    let flat: Vec<usize> = tokens.iter().flatten().copied().collect();
                    let positions: Vec<usize> = (0..batch).flat_map(|_| 0..seq).collect();
                    let x = embed
                        .forward(&flat)?
                        .add(&pos.forward(&positions)?)?
                        .reshape([batch, seq, embed.dim()])?;
                    ctxs.push(UnitCtx::Embed { tokens, positions });
                    StageData::Hidden(x)
                }
                (StageUnit::Layer(layer), StageData::Hidden(x)) => {
                    let (y, ctx) = layer.forward(&x, None)?;
                    act_bytes += x.size_bytes(); // retained inside the layer ctx
                    ctxs.push(UnitCtx::Layer(ctx));
                    layer_outputs.push(y.clone());
                    StageData::Hidden(y)
                }
                (StageUnit::Head { ln, head }, StageData::Hidden(x)) => {
                    let (batch, seq, dim) = match x.dims() {
                        &[b, s, d] => (b, s, d),
                        _ => {
                            return Err(TensorError::RankMismatch {
                                op: "stage_head",
                                expected: 3,
                                actual: x.rank(),
                            })
                        }
                    };
                    let (normed, ln_ctx) = ln.forward(&x)?;
                    let pooled = crate::encoder::pool::mean_pool(&normed, batch, seq, dim)?;
                    let (logits, head_ctx) = head.forward(&pooled)?;
                    act_bytes += x.size_bytes();
                    ctxs.push(UnitCtx::Head {
                        ln: ln_ctx,
                        head: head_ctx,
                        batch,
                        seq,
                        dim,
                    });
                    StageData::Logits(logits)
                }
                (unit, data) => {
                    return Err(TensorError::ShapeMismatch {
                        op: match unit {
                            StageUnit::Embed { .. } => "stage expects tokens",
                            StageUnit::Layer(_) => "stage expects hidden states",
                            StageUnit::Head { .. } => "head expects hidden states",
                        },
                        lhs: vec![self.index],
                        rhs: vec![match data {
                            StageData::Tokens(_) => 0,
                            StageData::Hidden(_) => 1,
                            StageData::Logits(_) => 2,
                        }],
                    })
                }
            };
        }
        Ok((
            data,
            StageCtx {
                units: ctxs,
                activation_bytes: act_bytes,
                layer_outputs,
            },
        ))
    }

    /// Backward pass over one micro-batch.
    ///
    /// `dy` is the gradient of the stage output (`dlogits` for the last
    /// stage, hidden-state gradient otherwise). Returns the gradient to send
    /// upstream, or `None` when this stage starts at the embedding.
    ///
    /// # Errors
    /// Propagates shape errors from the constituent layers.
    pub fn backward(&mut self, ctx: &StageCtx, dy: &Tensor) -> Result<Option<Tensor>> {
        let mut grad = dy.clone();
        for (unit, uctx) in self.units.iter_mut().zip(ctx.units.iter()).rev() {
            match (unit, uctx) {
                (
                    StageUnit::Head { ln, head },
                    UnitCtx::Head {
                        ln: ln_ctx,
                        head: head_ctx,
                        batch,
                        seq,
                        dim,
                    },
                ) => {
                    let d_pooled = head.backward(head_ctx, &grad)?;
                    let d_normed =
                        crate::encoder::pool::mean_pool_backward(&d_pooled, *batch, *seq, *dim)?;
                    grad = ln
                        .backward(ln_ctx, &d_normed)?
                        .reshape([*batch, *seq, *dim])?;
                }
                (StageUnit::Layer(layer), UnitCtx::Layer(lctx)) => {
                    let (dx, _) = layer.backward(lctx, &grad)?;
                    grad = dx;
                }
                (StageUnit::Embed { embed, pos }, UnitCtx::Embed { tokens, positions }) => {
                    let batch = tokens.len();
                    let seq = tokens[0].len();
                    let flat: Vec<usize> = tokens.iter().flatten().copied().collect();
                    let g2 = grad.clone().reshape([batch * seq, embed.dim()])?;
                    embed.backward(&flat, &g2)?;
                    pos.backward(positions, &g2)?;
                    return Ok(None);
                }
                _ => {
                    return Err(TensorError::ShapeMismatch {
                        op: "stage_backward ctx mismatch",
                        lhs: vec![self.index],
                        rhs: vec![],
                    })
                }
            }
        }
        Ok(Some(grad))
    }
}

impl Module for StageModel {
    fn visit_params(&mut self, f: &mut dyn FnMut(&mut Param)) {
        for u in &mut self.units {
            match u {
                StageUnit::Embed { embed, pos } => {
                    embed.visit_params(f);
                    pos.visit_params(f);
                }
                StageUnit::Layer(l) => l.visit_params(f),
                StageUnit::Head { ln, head } => {
                    ln.visit_params(f);
                    head.visit_params(f);
                }
            }
        }
    }
    fn visit_params_ref(&self, f: &mut dyn FnMut(&Param)) {
        for u in &self.units {
            match u {
                StageUnit::Embed { embed, pos } => {
                    embed.visit_params_ref(f);
                    pos.visit_params_ref(f);
                }
                StageUnit::Layer(l) => l.visit_params_ref(f),
                StageUnit::Head { ln, head } => {
                    ln.visit_params_ref(f);
                    head.visit_params_ref(f);
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::ModelConfig;
    use crate::encoder::EncoderModel;
    use pac_nn::cross_entropy;
    use pac_tensor::rng::seeded;
    use rand::Rng as _;

    fn model(seed: u64, layers: usize) -> EncoderModel {
        let cfg = ModelConfig::micro(layers, 0, 16, 2);
        EncoderModel::new(&cfg, 2, &mut seeded(seed))
    }

    fn batch(seed: u64, b: usize, s: usize) -> Vec<Vec<usize>> {
        let mut rng = seeded(seed);
        (0..b)
            .map(|_| (0..s).map(|_| rng.gen_range(0..64)).collect())
            .collect()
    }

    /// Runs a chain of stages forward, producing logits.
    fn chain_forward(stages: &[StageModel], tokens: Vec<Vec<usize>>) -> (Tensor, Vec<StageCtx>) {
        let mut data = StageData::Tokens(tokens);
        let mut ctxs = Vec::new();
        for s in stages {
            let (out, ctx) = s.forward(data).unwrap();
            ctxs.push(ctx);
            data = out;
        }
        match data {
            StageData::Logits(l) => (l, ctxs),
            _ => panic!("pipeline did not end in logits"),
        }
    }

    #[test]
    fn pipeline_forward_matches_monolithic() {
        let m = model(110, 4);
        let toks = batch(111, 3, 5);
        let (mono_logits, _) = m.forward(&toks).unwrap();
        for cuts in [vec![4], vec![2, 2], vec![1, 1, 1, 1], vec![1, 3]] {
            let stages = m.clone().partition(&cuts).unwrap();
            let (pipe_logits, _) = chain_forward(&stages, toks.clone());
            assert!(
                pipe_logits.approx_eq(&mono_logits, 1e-5),
                "mismatch for cuts {cuts:?}"
            );
        }
    }

    #[test]
    fn pipeline_backward_matches_monolithic_grads() {
        let m = model(112, 3);
        let toks = batch(113, 2, 4);
        let targets = [0usize, 1];

        // Monolithic.
        let mut mono = m.clone();
        let (logits, ctx) = mono.forward(&toks).unwrap();
        let (_, dl) = cross_entropy(&logits, &targets).unwrap();
        mono.backward(&ctx, &dl).unwrap();
        let mut mono_grads = Vec::new();
        mono.visit_params_ref(&mut |p| mono_grads.push((p.name.clone(), p.grad.clone())));

        // Pipelined (2 stages).
        let mut stages = m.partition(&[2, 1]).unwrap();
        let (plogits, ctxs) = chain_forward(&stages, toks.clone());
        let (_, pdl) = cross_entropy(&plogits, &targets).unwrap();
        let mut grad = pdl;
        let mut upstream: Option<Tensor> = Some(grad.clone());
        for (s, c) in stages.iter_mut().zip(ctxs.iter()).rev() {
            grad = upstream.take().expect("gradient chain broke early");
            upstream = s.backward(c, &grad).unwrap();
        }
        assert!(upstream.is_none(), "stage 0 must terminate the chain");

        let mut pipe_grads = Vec::new();
        for s in &stages {
            s.visit_params_ref(&mut |p| pipe_grads.push((p.name.clone(), p.grad.clone())));
        }

        assert_eq!(mono_grads.len(), pipe_grads.len());
        let mono_map: std::collections::HashMap<_, _> = mono_grads.into_iter().collect();
        for (name, g) in pipe_grads {
            let mg = &mono_map[&name];
            assert!(
                g.approx_eq(mg, 1e-4),
                "gradient mismatch for {name}: |Δ| = {}",
                g.sub(mg).unwrap().norm()
            );
        }
    }

    #[test]
    fn wrong_payload_kind_is_error() {
        let m = model(114, 2);
        let stages = m.partition(&[1, 1]).unwrap();
        // Hidden into embed stage:
        let hidden = StageData::Hidden(Tensor::zeros([1, 2, 16]));
        assert!(stages[0].forward(hidden).is_err());
        // Tokens into a non-embed stage:
        let toks = StageData::Tokens(batch(115, 1, 2));
        assert!(stages[1].forward(toks).is_err());
    }

    #[test]
    fn wire_bytes_accounting() {
        let t = StageData::Tokens(vec![vec![1, 2, 3], vec![4, 5, 6]]);
        assert_eq!(t.wire_bytes(), 24);
        let h = StageData::Hidden(Tensor::zeros([2, 3, 4]));
        assert_eq!(h.wire_bytes(), 96);
    }

    #[test]
    fn stage_flags() {
        let m = model(116, 3);
        let stages = m.partition(&[1, 1, 1]).unwrap();
        assert!(stages[0].has_embed() && !stages[0].has_head());
        assert!(!stages[1].has_embed() && !stages[1].has_head());
        assert!(!stages[2].has_embed() && stages[2].has_head());
        assert_eq!(stages.iter().map(|s| s.num_layers()).sum::<usize>(), 3);
    }
}
