//! Property-based tests: stage partitioning must preserve the model's
//! function and gradients for *any* valid cut.

use pac_model::{EncoderModel, ModelConfig, StageData};
use pac_nn::{cross_entropy, Module};
use pac_tensor::rng::seeded;
use pac_tensor::Tensor;
use proptest::prelude::*;
use rand::Rng;

fn model(seed: u64, layers: usize) -> EncoderModel {
    let cfg = ModelConfig::micro(layers, 0, 16, 2);
    EncoderModel::new(&cfg, 2, &mut seeded(seed))
}

fn batch(seed: u64, b: usize, s: usize) -> Vec<Vec<usize>> {
    let mut rng = seeded(seed);
    (0..b)
        .map(|_| (0..s).map(|_| rng.gen_range(0..64)).collect())
        .collect()
}

/// Random layer cuts summing to `layers`.
fn arb_cuts(layers: usize) -> impl Strategy<Value = Vec<usize>> {
    prop::collection::vec(1usize..=layers, 1..=layers).prop_map(move |mut v| {
        // Normalize to sum exactly `layers`.
        let mut remaining = layers;
        let mut cuts = Vec::new();
        for x in v.drain(..) {
            if remaining == 0 {
                break;
            }
            let take = x.min(remaining);
            cuts.push(take);
            remaining -= take;
        }
        if remaining > 0 {
            cuts.push(remaining);
        }
        cuts
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// For any partition, chaining stage forwards reproduces the
    /// monolithic logits exactly, and chained backwards reproduce the
    /// monolithic gradients.
    #[test]
    fn any_partition_is_function_preserving(
        cuts in arb_cuts(4),
        seed in 0u64..200,
    ) {
        let m = model(seed, 4);
        let toks = batch(seed.wrapping_add(1), 2, 5);
        let targets = [0usize, 1];

        // Monolithic reference.
        let mut mono = m.clone();
        let (logits, ctx) = mono.forward(&toks).unwrap();
        let (_, dl) = cross_entropy(&logits, &targets).unwrap();
        mono.backward(&ctx, &dl).unwrap();
        let mut mono_grads: std::collections::HashMap<String, Tensor> = Default::default();
        mono.visit_params_ref(&mut |p| {
            mono_grads.insert(p.name.clone(), p.grad.clone());
        });

        // Partitioned.
        let mut stages = m.partition(&cuts).unwrap();
        let mut data = StageData::Tokens(toks);
        let mut ctxs = Vec::new();
        for s in &stages {
            let (out, c) = s.forward(data).unwrap();
            ctxs.push(c);
            data = out;
        }
        let plogits = match data {
            StageData::Logits(l) => l,
            _ => unreachable!("chain ends in logits"),
        };
        prop_assert!(plogits.approx_eq(&logits, 1e-5));

        let (_, pdl) = cross_entropy(&plogits, &targets).unwrap();
        let mut upstream = Some(pdl);
        for (s, c) in stages.iter_mut().zip(ctxs.iter()).rev() {
            let g = upstream.take().expect("gradient chain intact");
            upstream = s.backward(c, &g).unwrap();
        }
        prop_assert!(upstream.is_none());

        for s in &stages {
            s.visit_params_ref(&mut |p| {
                let mg = &mono_grads[&p.name];
                assert!(
                    p.grad.approx_eq(mg, 1e-4),
                    "gradient mismatch {} under cuts {cuts:?}",
                    p.name
                );
            });
        }
    }

    /// Partition parameter conservation: any cut keeps the exact parameter
    /// multiset (counted via byte totals and per-stage sums).
    #[test]
    fn any_partition_conserves_parameters(cuts in arb_cuts(6), seed in 0u64..200) {
        let m = model(seed, 6);
        let total = m.num_params();
        let stages = m.partition(&cuts).unwrap();
        let sum: usize = stages.iter().map(|s| s.num_params()).sum();
        prop_assert_eq!(sum, total);
        // Exactly one embed and one head across the chain.
        prop_assert_eq!(stages.iter().filter(|s| s.has_embed()).count(), 1);
        prop_assert_eq!(stages.iter().filter(|s| s.has_head()).count(), 1);
    }
}
