//! Collective-communication cost models (ring AllReduce, broadcast,
//! redistribution).

use crate::network::LinkSpec;

/// Cost model for collectives over a uniform LAN.
#[derive(Debug, Clone, Copy)]
pub struct CollectiveModel {
    /// The link between any pair of devices.
    pub link: LinkSpec,
}

impl CollectiveModel {
    /// Creates a collective model over `link`.
    pub fn new(link: LinkSpec) -> Self {
        CollectiveModel { link }
    }

    /// Ring AllReduce of `bytes` across `n` devices:
    /// `2·(n−1)/n · bytes` on the wire per device plus `2·(n−1)` latency
    /// hops. With the paper's Parallel Adapters only the lightweight
    /// trainable parameters are reduced, which is why this stays cheap.
    pub fn allreduce_time(&self, n: usize, bytes: usize) -> f64 {
        if n <= 1 {
            return 0.0;
        }
        let steps = 2 * (n - 1);
        let chunk = bytes as f64 / n as f64;
        steps as f64 * (self.link.latency_s + chunk * 8.0 / self.link.bandwidth_bps)
    }

    /// One-to-all broadcast of `bytes` (binomial tree: ⌈log₂ n⌉ rounds).
    pub fn broadcast_time(&self, n: usize, bytes: usize) -> f64 {
        if n <= 1 {
            return 0.0;
        }
        let rounds = (n as f64).log2().ceil();
        rounds * self.link.transfer_time(bytes)
    }

    /// All-to-all redistribution where each device ends up holding all
    /// `total_bytes` (allgather): `(n−1)/n · total_bytes` received per
    /// device over `n−1` rounds.
    ///
    /// This is the cache/parameter redistribution step between PAC's phase 1
    /// (hybrid parallelism) and phase 2 (pure data parallelism) — paper §5.2
    /// measures it at ≈ 8 % of a 3-epoch run.
    pub fn allgather_time(&self, n: usize, total_bytes: usize) -> f64 {
        if n <= 1 {
            return 0.0;
        }
        let per_round = total_bytes as f64 / n as f64;
        (n - 1) as f64 * (self.link.latency_s + per_round * 8.0 / self.link.bandwidth_bps)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn m() -> CollectiveModel {
        CollectiveModel::new(LinkSpec::lan_128mbps())
    }

    #[test]
    fn single_device_collectives_are_free() {
        assert_eq!(m().allreduce_time(1, 1_000_000), 0.0);
        assert_eq!(m().broadcast_time(1, 1_000_000), 0.0);
        assert_eq!(m().allgather_time(1, 1_000_000), 0.0);
    }

    #[test]
    fn allreduce_band_term_is_size_invariant_in_n() {
        // Ring AllReduce wire traffic per device ≈ 2·bytes regardless of n
        // (for large n), so time should grow only via latency hops.
        let small = m().allreduce_time(2, 10_000_000);
        let large = m().allreduce_time(8, 10_000_000);
        assert!(large < small * 2.5, "small {small}, large {large}");
    }

    #[test]
    fn allreduce_scales_with_bytes() {
        let a = m().allreduce_time(4, 1_000_000);
        let b = m().allreduce_time(4, 10_000_000);
        assert!(b > 5.0 * a);
    }

    #[test]
    fn adapter_allreduce_is_fast_on_paper_lan() {
        // Parallel Adapters on T5-Large ≈ 7 M params = 28 MB. Ring
        // AllReduce over 8 Nanos on 128 Mbps should be a few seconds —
        // amortized over a whole epoch this is negligible, as the paper
        // asserts.
        let t = m().allreduce_time(8, 28_000_000);
        assert!(t < 10.0, "{t} s");
        // Full-model AllReduce (2.95 GB) would be minutes — the reason EDDL
        // with full fine-tuning is hopeless at the edge.
        let full = m().allreduce_time(8, 2_950_000_000);
        assert!(full > 300.0, "{full} s");
    }

    #[test]
    fn broadcast_uses_log_rounds() {
        let t2 = m().broadcast_time(2, 1_000_000);
        let t8 = m().broadcast_time(8, 1_000_000);
        assert!((t8 / t2 - 3.0).abs() < 1e-6);
    }

    #[test]
    fn allgather_grows_with_devices_and_bytes() {
        let a = m().allgather_time(2, 1_000_000);
        let b = m().allgather_time(4, 1_000_000);
        assert!(b > a);
        let c = m().allgather_time(4, 2_000_000);
        assert!(c > b);
    }
}
