//! Edge-device hardware models.

use crate::network::LinkSpec;
use serde::{Deserialize, Serialize};

/// An edge device's compute and memory capacities.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DeviceSpec {
    /// Device name, e.g. `"Jetson Nano"`.
    pub name: String,
    /// Peak f32 throughput in FLOP/s.
    pub peak_flops: f64,
    /// Fraction of peak sustained on transformer training kernels
    /// (memory-bandwidth-bound small GEMMs achieve well below peak on
    /// embedded GPUs).
    pub efficiency: f64,
    /// DRAM usable for training, in bytes (total minus OS/app reservation).
    pub usable_memory: usize,
}

impl DeviceSpec {
    /// NVIDIA Jetson Nano (the paper's testbed device): 0.47 TFLOPS peak.
    /// The 4 GB DRAM is shared between CPU and GPU; after the OS/desktop
    /// (~1.5 GB) and the CUDA context + framework runtime (~1 GB), roughly
    /// 1.5 GB remains for training tensors — which is what makes a full
    /// BART-Large replica (1.6 GB of f32 weights) OOM under pure data
    /// parallelism, as the paper's Figure 9 reports.
    pub fn jetson_nano() -> Self {
        DeviceSpec {
            name: "Jetson Nano".into(),
            peak_flops: 0.47e12,
            efficiency: 0.25,
            usable_memory: 1536 * 1024 * 1024,
        }
    }

    /// NVIDIA Jetson TX2: a stronger edge board for heterogeneity studies.
    pub fn jetson_tx2() -> Self {
        DeviceSpec {
            name: "Jetson TX2".into(),
            peak_flops: 1.33e12,
            efficiency: 0.25,
            usable_memory: 6 * 1024 * 1024 * 1024,
        }
    }

    /// Raspberry Pi 4 (CPU-only): a much weaker companion device.
    pub fn raspberry_pi4() -> Self {
        DeviceSpec {
            name: "Raspberry Pi 4".into(),
            peak_flops: 0.03e12,
            efficiency: 0.5,
            usable_memory: 3 * 1024 * 1024 * 1024,
        }
    }

    /// Sustained FLOP/s on training kernels.
    pub fn effective_flops(&self) -> f64 {
        self.peak_flops * self.efficiency
    }

    /// A slowed copy of this device (thermal throttling, background load):
    /// effective throughput divided by `factor`. Applying `slowed` again
    /// composes: the annotations multiply into a single `(×1/…)` suffix
    /// instead of nesting.
    ///
    /// # Panics
    /// Panics if `factor` is not positive and finite.
    pub fn slowed(&self, factor: f64) -> Self {
        assert!(
            factor.is_finite() && factor > 0.0,
            "slowdown must be positive"
        );
        // Fold an existing "(×1/X)" suffix into the new factor so repeated
        // slowdowns render as one combined annotation.
        let (base, total) = match self
            .name
            .rsplit_once(" (×1/")
            .and_then(|(base, rest)| Some((base, rest.strip_suffix(')')?.parse::<f64>().ok()?)))
        {
            Some((base, prev)) => (base, prev * factor),
            None => (self.name.as_str(), factor),
        };
        DeviceSpec {
            name: format!("{base} (×1/{total:.1})"),
            efficiency: self.efficiency / factor,
            ..self.clone()
        }
    }

    /// Seconds to execute `flops` floating-point operations.
    pub fn compute_time(&self, flops: f64) -> f64 {
        flops / self.effective_flops()
    }

    /// Whether a working set of `bytes` fits in usable memory.
    pub fn fits(&self, bytes: usize) -> bool {
        bytes <= self.usable_memory
    }
}

/// A pool of edge devices on a shared LAN.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Cluster {
    /// Member devices.
    pub devices: Vec<DeviceSpec>,
    /// The (uniform) LAN link between any two devices.
    pub link: LinkSpec,
}

impl Cluster {
    /// The paper's testbed: `n` Jetson Nanos on a 128 Mbps LAN.
    pub fn nanos(n: usize) -> Self {
        Cluster {
            devices: vec![DeviceSpec::jetson_nano(); n],
            link: LinkSpec::lan_128mbps(),
        }
    }

    /// A heterogeneous smart-home pool for robustness experiments.
    pub fn smart_home() -> Self {
        Cluster {
            devices: vec![
                DeviceSpec::jetson_tx2(),
                DeviceSpec::jetson_nano(),
                DeviceSpec::jetson_nano(),
                DeviceSpec::raspberry_pi4(),
            ],
            link: LinkSpec::lan_128mbps(),
        }
    }

    /// The same pool on a different fabric — e.g. a
    /// [`LinkSpec::measured`](crate::LinkSpec::measured) calibration from
    /// the loopback micro-bench, consumed by the planner in place of the
    /// assumed LAN.
    pub fn with_link(mut self, link: LinkSpec) -> Self {
        self.link = link;
        self
    }

    /// Number of devices.
    pub fn len(&self) -> usize {
        self.devices.len()
    }

    /// True when the pool is empty.
    pub fn is_empty(&self) -> bool {
        self.devices.is_empty()
    }

    /// True when every device has identical specs.
    pub fn is_homogeneous(&self) -> bool {
        self.devices.windows(2).all(|w| w[0] == w[1])
    }

    /// The slowest device's effective FLOP/s (pipeline throughput is gated
    /// by it).
    pub fn min_effective_flops(&self) -> f64 {
        self.devices
            .iter()
            .map(DeviceSpec::effective_flops)
            .fold(f64::INFINITY, f64::min)
    }

    /// Aggregate effective FLOP/s.
    pub fn total_effective_flops(&self) -> f64 {
        self.devices.iter().map(DeviceSpec::effective_flops).sum()
    }

    /// A copy of the cluster with device `idx` slowed by `factor`
    /// (straggler injection for robustness studies).
    ///
    /// # Panics
    /// Panics if `idx` is out of range.
    pub fn with_straggler(&self, idx: usize, factor: f64) -> Self {
        let mut c = self.clone();
        c.devices[idx] = c.devices[idx].slowed(factor);
        c
    }

    /// A copy of the cluster with the given devices removed (fail-stop
    /// injection). Indices refer to the current device list; duplicates
    /// are deduplicated (a device can only fail once).
    ///
    /// # Panics
    /// Panics if any index is out of range — a silent no-op would let a
    /// recovery path "survive" a failure it never actually removed.
    pub fn without_devices(&self, failed: &[usize]) -> Self {
        for &i in failed {
            assert!(
                i < self.devices.len(),
                "device index {i} out of range for cluster of {}",
                self.devices.len()
            );
        }
        Cluster {
            devices: self
                .devices
                .iter()
                .enumerate()
                .filter(|(i, _)| !failed.contains(i))
                .map(|(_, d)| d.clone())
                .collect(),
            link: self.link,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nano_matches_paper_specs() {
        let n = DeviceSpec::jetson_nano();
        assert!((n.peak_flops - 0.47e12).abs() < 1e9);
        assert!(n.usable_memory <= 4 * 1024 * 1024 * 1024);
        assert!(n.effective_flops() < n.peak_flops);
    }

    #[test]
    fn compute_time_scales_linearly() {
        let n = DeviceSpec::jetson_nano();
        let t1 = n.compute_time(1e12);
        let t2 = n.compute_time(2e12);
        assert!((t2 / t1 - 2.0).abs() < 1e-9);
        assert!(t1 > 0.0);
    }

    #[test]
    fn memory_fit() {
        let n = DeviceSpec::jetson_nano();
        assert!(n.fits(1024));
        assert!(!n.fits(8 * 1024 * 1024 * 1024));
    }

    #[test]
    fn cluster_construction() {
        let c = Cluster::nanos(8);
        assert_eq!(c.len(), 8);
        assert!(c.is_homogeneous());
        assert!(!c.is_empty());
        let h = Cluster::smart_home();
        assert!(!h.is_homogeneous());
        assert!(h.min_effective_flops() < h.total_effective_flops() / h.len() as f64);
    }

    #[test]
    fn straggler_injection() {
        let c = Cluster::nanos(4);
        let s = c.with_straggler(2, 4.0);
        assert!(!s.is_homogeneous());
        assert!(
            (s.devices[2].effective_flops() - c.devices[2].effective_flops() / 4.0).abs() < 1e-3
        );
        assert_eq!(s.min_effective_flops(), s.devices[2].effective_flops());
    }

    #[test]
    fn failure_injection_removes_devices() {
        let c = Cluster::nanos(5);
        let f = c.without_devices(&[1, 3]);
        assert_eq!(f.len(), 3);
        // Removing nothing is identity.
        assert_eq!(c.without_devices(&[]), c);
    }

    #[test]
    fn duplicate_failures_count_once() {
        let c = Cluster::nanos(3);
        assert_eq!(c.without_devices(&[1, 1, 1]).len(), 2);
        assert_eq!(c.without_devices(&[0, 2, 0]).len(), 1);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_failure_panics() {
        let _ = Cluster::nanos(3).without_devices(&[3]);
    }

    #[test]
    fn repeated_slowdowns_compose_into_one_annotation() {
        let d = DeviceSpec::jetson_nano().slowed(2.0).slowed(3.0);
        assert_eq!(d.name, "Jetson Nano (×1/6.0)");
        assert!(
            (d.effective_flops() - DeviceSpec::jetson_nano().effective_flops() / 6.0).abs() < 1e-3
        );
        // A parenthesized base name must not be mangled.
        let mut odd = DeviceSpec::jetson_nano();
        odd.name = "Nano (dev kit)".into();
        assert_eq!(odd.slowed(2.0).name, "Nano (dev kit) (×1/2.0)");
    }

    #[test]
    #[should_panic(expected = "slowdown must be positive")]
    fn invalid_slowdown_panics() {
        let _ = DeviceSpec::jetson_nano().slowed(0.0);
    }

    #[test]
    fn device_ordering_by_speed() {
        assert!(
            DeviceSpec::jetson_tx2().effective_flops()
                > DeviceSpec::jetson_nano().effective_flops()
        );
        assert!(
            DeviceSpec::jetson_nano().effective_flops()
                > DeviceSpec::raspberry_pi4().effective_flops()
        );
    }
}
