//! Network link models.

use serde::{Deserialize, Serialize};

/// A point-to-point link's bandwidth and latency.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LinkSpec {
    /// Bandwidth in bits per second.
    pub bandwidth_bps: f64,
    /// One-way latency in seconds.
    pub latency_s: f64,
}

impl LinkSpec {
    /// The paper's testbed LAN: 128 Mbps with ~1 ms latency.
    pub fn lan_128mbps() -> Self {
        LinkSpec {
            bandwidth_bps: 128e6,
            latency_s: 1e-3,
        }
    }

    /// Gigabit Ethernet (for sensitivity studies).
    pub fn gigabit() -> Self {
        LinkSpec {
            bandwidth_bps: 1e9,
            latency_s: 0.3e-3,
        }
    }

    /// Congested Wi-Fi (for sensitivity studies).
    pub fn wifi_slow() -> Self {
        LinkSpec {
            bandwidth_bps: 30e6,
            latency_s: 5e-3,
        }
    }

    /// A link calibrated from live measurements (e.g. the loopback
    /// micro-bench in `pac-bench`), so the planner can cost communication
    /// with the fabric the job will actually run on instead of the paper's
    /// assumed 128 Mbps LAN. Values are clamped to a sane floor: a
    /// measurement glitch must not produce a zero-bandwidth link that makes
    /// every plan look infinitely slow.
    pub fn measured(bandwidth_bps: f64, latency_s: f64) -> Self {
        LinkSpec {
            bandwidth_bps: bandwidth_bps.max(1e3),
            latency_s: latency_s.max(0.0),
        }
    }

    /// Seconds to move `bytes` across the link.
    pub fn transfer_time(&self, bytes: usize) -> f64 {
        self.latency_s + (bytes as f64 * 8.0) / self.bandwidth_bps
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_lan_spec() {
        let l = LinkSpec::lan_128mbps();
        assert_eq!(l.bandwidth_bps, 128e6);
        // 16 MB at 128 Mbps = 1 s (plus latency).
        let t = l.transfer_time(16 * 1000 * 1000);
        assert!((t - 1.001).abs() < 1e-3, "{t}");
    }

    #[test]
    fn latency_dominates_small_transfers() {
        let l = LinkSpec::lan_128mbps();
        let t = l.transfer_time(16);
        assert!(t < 2e-3);
        assert!(t >= l.latency_s);
    }

    #[test]
    fn measured_links_clamp_degenerate_calibrations() {
        let l = LinkSpec::measured(2.5e9, 40e-6);
        assert_eq!(l.bandwidth_bps, 2.5e9);
        assert_eq!(l.latency_s, 40e-6);
        let bad = LinkSpec::measured(0.0, -1.0);
        assert!(bad.bandwidth_bps > 0.0);
        assert!(bad.latency_s >= 0.0);
        assert!(bad.transfer_time(1000).is_finite());
    }

    #[test]
    fn faster_links_are_faster() {
        let bytes = 1_000_000;
        assert!(
            LinkSpec::gigabit().transfer_time(bytes) < LinkSpec::lan_128mbps().transfer_time(bytes)
        );
        assert!(
            LinkSpec::lan_128mbps().transfer_time(bytes)
                < LinkSpec::wifi_slow().transfer_time(bytes)
        );
    }
}
