//! Network link models.

use serde::{Deserialize, Serialize};

/// A point-to-point link's bandwidth and latency.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LinkSpec {
    /// Bandwidth in bits per second.
    pub bandwidth_bps: f64,
    /// One-way latency in seconds.
    pub latency_s: f64,
}

impl LinkSpec {
    /// The paper's testbed LAN: 128 Mbps with ~1 ms latency.
    pub fn lan_128mbps() -> Self {
        LinkSpec {
            bandwidth_bps: 128e6,
            latency_s: 1e-3,
        }
    }

    /// Gigabit Ethernet (for sensitivity studies).
    pub fn gigabit() -> Self {
        LinkSpec {
            bandwidth_bps: 1e9,
            latency_s: 0.3e-3,
        }
    }

    /// Congested Wi-Fi (for sensitivity studies).
    pub fn wifi_slow() -> Self {
        LinkSpec {
            bandwidth_bps: 30e6,
            latency_s: 5e-3,
        }
    }

    /// Seconds to move `bytes` across the link.
    pub fn transfer_time(&self, bytes: usize) -> f64 {
        self.latency_s + (bytes as f64 * 8.0) / self.bandwidth_bps
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_lan_spec() {
        let l = LinkSpec::lan_128mbps();
        assert_eq!(l.bandwidth_bps, 128e6);
        // 16 MB at 128 Mbps = 1 s (plus latency).
        let t = l.transfer_time(16 * 1000 * 1000);
        assert!((t - 1.001).abs() < 1e-3, "{t}");
    }

    #[test]
    fn latency_dominates_small_transfers() {
        let l = LinkSpec::lan_128mbps();
        let t = l.transfer_time(16);
        assert!(t < 2e-3);
        assert!(t >= l.latency_s);
    }

    #[test]
    fn faster_links_are_faster() {
        let bytes = 1_000_000;
        assert!(
            LinkSpec::gigabit().transfer_time(bytes) < LinkSpec::lan_128mbps().transfer_time(bytes)
        );
        assert!(
            LinkSpec::lan_128mbps().transfer_time(bytes)
                < LinkSpec::wifi_slow().transfer_time(bytes)
        );
    }
}
