//! # pac-cluster
//!
//! Edge-cluster hardware models and the analytic transformer cost model.
//!
//! The paper's testbed — NVIDIA Jetson Nano boards (0.47 TFLOPS, 4 GB) on a
//! 128 Mbps LAN — is not available in this environment, so this crate models
//! it deterministically:
//!
//! * [`device`] — device specs (sustained FLOP/s, usable DRAM) with an
//!   efficiency factor calibrated to edge-training workloads;
//! * [`network`] — link specs and transfer times;
//! * [`collective`] — ring-AllReduce / broadcast / redistribution costs;
//! * [`cost`] — per-layer forward/backward FLOPs, weight bytes and retained
//!   activation bytes for every fine-tuning technique, derived from the
//!   exact model architecture (`pac_model::ModelConfig`).
//!
//! Every simulated experiment (Tables 1–2, Figures 3/8/9/10/11) is a
//! function of these models, which is why the *shape* of the paper's results
//! (who wins, who OOMs, where crossovers fall) is preserved.

#![deny(missing_docs)]

pub mod collective;
pub mod cost;
pub mod device;
pub mod network;

pub use collective::CollectiveModel;
pub use cost::{CostModel, LayerCost, LayerRole};
pub use device::{Cluster, DeviceSpec};
pub use network::LinkSpec;
