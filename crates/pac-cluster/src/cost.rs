//! Analytic FLOPs / bytes cost model for transformer fine-tuning.
//!
//! Conventions:
//! * one fused multiply-add counts as 2 FLOPs;
//! * backward is split into the **dX** part (gradient w.r.t. activations,
//!   needed whenever *any* upstream parameter trains) and the **dW** part
//!   (gradient w.r.t. weights, needed only for trainable weights). This
//!   split is what produces the paper's Figure 3 observation that forward
//!   is ≈ 54 % of PEFT compute (fwd ≈ dX ≫ dW_adapter) but only ≈ ⅓ of
//!   full fine-tuning compute (fwd ≈ dX ≈ dW).

use pac_model::ModelConfig;
use pac_peft::Technique;
use serde::{Deserialize, Serialize};

/// Whether a layer sits in the encoder or decoder stack.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum LayerRole {
    /// Encoder layer (processes `seq` tokens).
    Encoder,
    /// Decoder layer (processes `dec_seq` tokens + cross-attention).
    Decoder,
}

/// Per-layer costs, normalized per sample (multiply by the micro-batch size
/// at the point of use).
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct LayerCost {
    /// Encoder or decoder.
    pub role: LayerRole,
    /// Forward FLOPs per sample (backbone + technique extras on this layer).
    pub fwd_flops: f64,
    /// Backward-dX FLOPs per sample.
    pub dx_flops: f64,
    /// Backward-dW FLOPs per sample (trainable weights on this layer only).
    pub dw_flops: f64,
    /// Resident weight bytes (backbone layer + technique extras).
    pub weight_bytes: usize,
    /// Bytes of parameters requiring gradient + optimizer state.
    pub trainable_bytes: usize,
    /// Activation bytes retained per sample for this layer's backward.
    pub retained_act_bytes: usize,
    /// Bytes crossing a stage boundary after this layer, per sample.
    pub boundary_bytes: usize,
}

impl LayerCost {
    /// Total backward FLOPs per sample under the owning technique.
    pub fn bwd_flops(&self) -> f64 {
        self.dx_flops + self.dw_flops
    }
}

/// Cost model for one (architecture, technique, sequence geometry).
#[derive(Debug, Clone)]
pub struct CostModel {
    /// Model architecture.
    pub config: ModelConfig,
    /// Fine-tuning technique.
    pub technique: Technique,
    /// Encoder sequence length.
    pub seq: usize,
    /// Decoder sequence length.
    pub dec_seq: usize,
    /// Account frozen-side activation storage and Act-edge transfers as
    /// per-row absmax int8 (1 byte per element + one f32 scale per token
    /// row) instead of f32. Mirrors the runtime's int8 activation cache
    /// and `wire_q8` Act frames; trainable-side bytes (side context,
    /// gradients, optimizer state) stay f32 — quantization never touches
    /// a gradient path.
    pub int8_frozen: bool,
}

impl CostModel {
    /// Cost model with the paper's geometry (seq 128, short targets).
    pub fn new(config: ModelConfig, technique: Technique, seq: usize) -> Self {
        CostModel {
            config,
            technique,
            seq,
            dec_seq: 8,
            int8_frozen: false,
        }
    }

    /// The same cost model with frozen-side int8 accounting switched on
    /// (Eq. 4–6 memory ceilings and link-transfer terms see the ~4×
    /// smaller cached-activation and Act-edge bytes).
    pub fn with_int8_frozen(mut self) -> Self {
        self.int8_frozen = true;
        self
    }

    /// Side-network hidden width for Parallel Adapters (0 otherwise).
    fn side_r(&self) -> usize {
        match self.technique {
            Technique::ParallelAdapters { reduction } => (self.config.hidden / reduction).max(1),
            _ => 0,
        }
    }

    /// Backbone forward FLOPs per sample for one layer.
    fn backbone_layer_fwd(&self, role: LayerRole) -> f64 {
        let h = self.config.hidden as f64;
        let ff = self.config.ff_dim as f64;
        match role {
            LayerRole::Encoder => {
                let s = self.seq as f64;
                // Per token: QKVO projections 8h², attention matmuls 4sh,
                // FFN 4h·ff.
                s * (8.0 * h * h + 4.0 * s * h + 4.0 * h * ff)
            }
            LayerRole::Decoder => {
                let s = self.dec_seq as f64;
                let s_enc = self.seq as f64;
                // Self-attention over dec tokens + cross-attention into the
                // encoder sequence + FFN.
                s * (8.0 * h * h + 4.0 * s * h + 4.0 * h * ff) + s * (8.0 * h * h + 4.0 * s_enc * h)
            }
        }
    }

    /// Technique-extra forward FLOPs per sample on one layer (adapter
    /// bottleneck, LoRA branch, or side-network step).
    fn technique_layer_fwd(&self, role: LayerRole) -> f64 {
        let h = self.config.hidden as f64;
        let tokens = match role {
            LayerRole::Encoder => self.seq as f64,
            LayerRole::Decoder => self.dec_seq as f64,
        };
        match self.technique {
            Technique::Full => 0.0,
            Technique::Adapters { reduction } => {
                let r = (self.config.hidden / reduction).max(1) as f64;
                tokens * 4.0 * h * r
            }
            Technique::Lora { rank } => {
                let r = rank as f64;
                let blocks = match role {
                    LayerRole::Encoder => 1.0,
                    LayerRole::Decoder => 2.0,
                };
                tokens * blocks * 2.0 * (4.0 * h * r)
            }
            Technique::ParallelAdapters { .. } => {
                let r = self.side_r() as f64;
                tokens * (4.0 * h * r / 2.0 + 4.0 * r * r / 2.0) // down h→r + rec r→r (2 FLOPs/madd)
            }
            Technique::PromptTuning { virtual_tokens } => {
                // p extra tokens flow through every encoder layer.
                match role {
                    LayerRole::Encoder => {
                        let p = virtual_tokens as f64;
                        let s = self.seq as f64;
                        (p / s) * self.backbone_layer_fwd(role)
                    }
                    LayerRole::Decoder => 0.0,
                }
            }
        }
    }

    /// Per-layer trainable parameter bytes.
    fn technique_layer_trainable_bytes(&self, role: LayerRole) -> usize {
        let h = self.config.hidden;
        match self.technique {
            Technique::Full => {
                let p = match role {
                    LayerRole::Encoder => self.config.enc_layer_params(),
                    LayerRole::Decoder => self.config.dec_layer_params(),
                };
                p * 4
            }
            Technique::Adapters { reduction } => {
                let r = (h / reduction).max(1);
                (2 * h * r + r + h) * 4
            }
            Technique::Lora { rank } => {
                let blocks = match role {
                    LayerRole::Encoder => 1,
                    LayerRole::Decoder => 2,
                };
                blocks * 2 * 2 * h * rank * 4
            }
            Technique::ParallelAdapters { .. } => {
                let r = self.side_r();
                (h * r + r * r + r) * 4
            }
            Technique::PromptTuning { virtual_tokens } => {
                // The prompt lives at the encoder input; charge it there.
                match role {
                    LayerRole::Encoder => virtual_tokens * h * 4 / self.config.enc_layers.max(1),
                    LayerRole::Decoder => 0,
                }
            }
        }
    }

    /// Per-sample retained activation bytes on one layer.
    fn layer_retained_act_bytes(&self, role: LayerRole) -> usize {
        let c = &self.config;
        let (tokens, per_token) = match role {
            LayerRole::Encoder => (self.seq, c.enc_layer_act_floats_per_token()),
            LayerRole::Decoder => (self.dec_seq, c.dec_layer_act_floats_per_token()),
        };
        let scores = match role {
            LayerRole::Encoder => c.heads * self.seq * self.seq,
            LayerRole::Decoder => c.heads * (self.dec_seq * self.dec_seq + self.dec_seq * self.seq),
        };
        match self.technique {
            // Backbone-backprop techniques retain the full layer context.
            Technique::Full | Technique::Adapters { .. } | Technique::Lora { .. } => {
                (tokens * per_token + scores) * 4
            }
            // Parallel Adapters retain only b_i (side-network input) plus
            // the small side context. b_i is frozen-side data — exactly
            // what the int8 activation cache stores — so the int8 knob
            // shrinks it to 1 byte per element plus a per-token scale;
            // the side context is trainable-path and stays f32.
            Technique::ParallelAdapters { .. } => {
                let r = self.side_r();
                if self.int8_frozen {
                    tokens * (c.hidden + 4) + tokens * 3 * r * 4
                } else {
                    (tokens * (c.hidden + 3 * r)) * 4
                }
            }
            Technique::PromptTuning { virtual_tokens } => {
                let extra = match role {
                    LayerRole::Encoder => virtual_tokens * per_token,
                    LayerRole::Decoder => 0,
                };
                (tokens * per_token + scores + extra) * 4
            }
        }
    }

    /// Per-layer cost table (`total_layers()` entries: encoder layers then
    /// decoder layers).
    pub fn layer_costs(&self) -> Vec<LayerCost> {
        let c = &self.config;
        let mut out = Vec::with_capacity(c.total_layers());
        for i in 0..c.total_layers() {
            let role = if i < c.enc_layers {
                LayerRole::Encoder
            } else {
                LayerRole::Decoder
            };
            let backbone_fwd = self.backbone_layer_fwd(role);
            let tech_fwd = self.technique_layer_fwd(role);
            let fwd = backbone_fwd + tech_fwd;
            let (dx, dw) = match self.technique {
                Technique::Full => (backbone_fwd, backbone_fwd + tech_fwd),
                Technique::Adapters { .. }
                | Technique::Lora { .. }
                | Technique::PromptTuning { .. } => {
                    // dX through the whole backbone; dW only for the
                    // technique's parameters.
                    (backbone_fwd + tech_fwd, 2.0 * tech_fwd)
                }
                Technique::ParallelAdapters { .. } => {
                    // No backbone backward at all; side network bwd ≈ 2×
                    // its fwd.
                    (0.0, 2.0 * tech_fwd)
                }
            };
            let base_params = match role {
                LayerRole::Encoder => c.enc_layer_params(),
                LayerRole::Decoder => c.dec_layer_params(),
            };
            let tech_bytes = match self.technique {
                Technique::Full => 0,
                _ => self.technique_layer_trainable_bytes(role),
            };
            // Under Parallel Adapters the backbone is frozen *and* never
            // backpropagated through (dx = 0), so with int8 accounting its
            // resident weights are the quantized copy alone: 1 byte per
            // parameter plus one f32 scale per hidden-width row. Other
            // techniques need f32 weights for dX/dW and keep them.
            let resident_weight_bytes = if self.int8_frozen
                && matches!(self.technique, Technique::ParallelAdapters { .. })
            {
                base_params + 4 * base_params.div_ceil(c.hidden.max(1)) + tech_bytes
            } else {
                base_params * 4 + tech_bytes
            };
            let boundary_tokens = match role {
                LayerRole::Encoder => self.seq,
                LayerRole::Decoder => self.dec_seq,
            };
            // Forward Act edges carry `ActQ8` frames under int8 wire mode:
            // 1 byte per element + one f32 scale per token row.
            let boundary_bytes = if self.int8_frozen {
                boundary_tokens * (c.hidden + 4)
            } else {
                boundary_tokens * c.hidden * 4
            };
            out.push(LayerCost {
                role,
                fwd_flops: fwd,
                dx_flops: dx,
                dw_flops: dw,
                weight_bytes: resident_weight_bytes,
                trainable_bytes: self.technique_layer_trainable_bytes(role),
                retained_act_bytes: self.layer_retained_act_bytes(role),
                boundary_bytes,
            });
        }
        out
    }

    /// Total forward FLOPs for a mini-batch.
    pub fn total_fwd_flops(&self, batch: usize) -> f64 {
        self.layer_costs().iter().map(|l| l.fwd_flops).sum::<f64>() * batch as f64
    }

    /// Total backward FLOPs for a mini-batch.
    pub fn total_bwd_flops(&self, batch: usize) -> f64 {
        self.layer_costs()
            .iter()
            .map(|l| l.bwd_flops())
            .sum::<f64>()
            * batch as f64
    }

    /// Forward share of a training step (the paper's Figure 3 quantity).
    pub fn fwd_fraction(&self) -> f64 {
        let f = self.total_fwd_flops(1);
        let b = self.total_bwd_flops(1);
        f / (f + b)
    }

    /// FLOPs of a cache-enabled training step (Parallel Adapters only):
    /// the side network's forward + backward, no backbone at all.
    pub fn cached_step_flops(&self, batch: usize) -> f64 {
        let side_fwd: f64 = (0..self.config.total_layers())
            .map(|i| {
                let role = if i < self.config.enc_layers {
                    LayerRole::Encoder
                } else {
                    LayerRole::Decoder
                };
                self.technique_layer_fwd(role)
            })
            .sum();
        3.0 * side_fwd * batch as f64
    }

    /// Trainable parameter bytes across the whole model (AllReduce payload).
    pub fn trainable_bytes_total(&self) -> usize {
        self.technique.trainable_params(&self.config) * 4
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn model() -> ModelConfig {
        ModelConfig::t5_large()
    }

    #[test]
    fn fig3_forward_fractions() {
        // Figure 3: forward ≈ 54% of total for Adapters/LoRA, ≈ ⅓ for Full.
        let full = CostModel::new(model(), Technique::Full, 128).fwd_fraction();
        assert!((0.30..0.37).contains(&full), "full fwd fraction {full}");

        let ad = CostModel::new(model(), Technique::adapters_default(), 128).fwd_fraction();
        assert!((0.45..0.60).contains(&ad), "adapters fwd fraction {ad}");

        let lora = CostModel::new(model(), Technique::lora_default(), 128).fwd_fraction();
        assert!((0.45..0.60).contains(&lora), "lora fwd fraction {lora}");
    }

    #[test]
    fn parallel_adapters_cut_training_flops() {
        // Fig 8(a): PA reduces per-sample training time ≈ 32% vs Full
        // (no cache), and ≈ 96% with the cache.
        let full = CostModel::new(model(), Technique::Full, 128);
        let pa = CostModel::new(model(), Technique::parallel_default(), 128);
        let full_step = full.total_fwd_flops(1) + full.total_bwd_flops(1);
        let pa_step = pa.total_fwd_flops(1) + pa.total_bwd_flops(1);
        let saving = 1.0 - pa_step / full_step;
        assert!((0.25..0.75).contains(&saving), "PA saving {saving}");

        let cached = pa.cached_step_flops(1);
        let cached_saving = 1.0 - cached / full_step;
        assert!(cached_saving > 0.90, "cached saving {cached_saving}");
    }

    #[test]
    fn layer_costs_cover_all_layers() {
        let cm = CostModel::new(model(), Technique::Full, 128);
        let lc = cm.layer_costs();
        assert_eq!(lc.len(), 48);
        assert!(lc[..24].iter().all(|l| l.role == LayerRole::Encoder));
        assert!(lc[24..].iter().all(|l| l.role == LayerRole::Decoder));
        // Every layer costs something and carries weights.
        assert!(lc.iter().all(|l| l.fwd_flops > 0.0 && l.weight_bytes > 0));
    }

    #[test]
    fn boundary_bytes_match_hidden_state_size() {
        let cm = CostModel::new(model(), Technique::Full, 128);
        let lc = cm.layer_costs();
        assert_eq!(lc[0].boundary_bytes, 128 * 1024 * 4);
        assert_eq!(lc[47].boundary_bytes, 8 * 1024 * 4);
    }

    #[test]
    fn pa_layers_have_zero_dx() {
        let cm = CostModel::new(model(), Technique::parallel_default(), 128);
        assert!(cm.layer_costs().iter().all(|l| l.dx_flops == 0.0));
        let cm2 = CostModel::new(model(), Technique::lora_default(), 128);
        assert!(cm2.layer_costs().iter().all(|l| l.dx_flops > 0.0));
    }

    #[test]
    fn pa_retains_far_fewer_activations() {
        let full = CostModel::new(model(), Technique::Full, 128);
        let pa = CostModel::new(model(), Technique::parallel_default(), 128);
        let full_act: usize = full
            .layer_costs()
            .iter()
            .map(|l| l.retained_act_bytes)
            .sum();
        let pa_act: usize = pa.layer_costs().iter().map(|l| l.retained_act_bytes).sum();
        assert!(
            pa_act * 3 < full_act,
            "PA {pa_act} should be ≪ full {full_act}"
        );
    }

    #[test]
    fn int8_accounting_shrinks_frozen_bytes_only() {
        let f32cm = CostModel::new(model(), Technique::parallel_default(), 128);
        let q8cm = CostModel::new(model(), Technique::parallel_default(), 128).with_int8_frozen();
        let f = &f32cm.layer_costs()[0];
        let q = &q8cm.layer_costs()[0];
        // Boundary (Act edge) bytes drop ~4×: h=1024 → 1028/4096 per token.
        assert_eq!(f.boundary_bytes, 128 * 1024 * 4);
        assert_eq!(q.boundary_bytes, 128 * (1024 + 4));
        assert!(f.boundary_bytes as f64 / q.boundary_bytes as f64 > 3.5);
        // Retained bytes shrink, but less than 4×: only b_i (h floats per
        // token) quantizes, while the f32 side context (3r = 384 floats
        // per token at reduction 8) stays. The b_i slice alone cuts 3.98×.
        let ratio = f.retained_act_bytes as f64 / q.retained_act_bytes as f64;
        assert!((1.8..4.0).contains(&ratio), "retained ratio {ratio}");
        let bi_ratio = (1024.0 * 4.0) / (1024.0 + 4.0);
        assert!(bi_ratio > 3.9);
        // FLOPs and trainable/weight bytes are untouched — int8 is a
        // storage/transport knob, not a compute model change.
        assert_eq!(f.fwd_flops, q.fwd_flops);
        assert_eq!(f.trainable_bytes, q.trainable_bytes);
        // Frozen backbone weights shrink ~4× under PA (no backbone
        // backward, so the int8 copy alone serves forward).
        let w_ratio = f.weight_bytes as f64 / q.weight_bytes as f64;
        assert!((3.0..4.0).contains(&w_ratio), "weight ratio {w_ratio}");
        // Backbone-backprop techniques keep f32 retained activations:
        // those sit on a gradient path and are out of quantization scope.
        let lora_f = CostModel::new(model(), Technique::lora_default(), 128);
        let lora_q = CostModel::new(model(), Technique::lora_default(), 128).with_int8_frozen();
        assert_eq!(
            lora_f.layer_costs()[0].retained_act_bytes,
            lora_q.layer_costs()[0].retained_act_bytes
        );
    }

    #[test]
    fn flops_scale_linearly_with_batch() {
        let cm = CostModel::new(model(), Technique::Full, 128);
        assert!((cm.total_fwd_flops(16) / cm.total_fwd_flops(1) - 16.0).abs() < 1e-9);
    }

    #[test]
    fn allreduce_payload_is_trainable_bytes() {
        let cm = CostModel::new(model(), Technique::parallel_default(), 128);
        let bytes = cm.trainable_bytes_total();
        // Lightweight: tens of MB, not GB.
        assert!(bytes < 100_000_000, "{bytes}");
        let full = CostModel::new(model(), Technique::Full, 128).trainable_bytes_total();
        assert!(full > 2_000_000_000);
    }

    #[test]
    fn step_flops_are_feasible_on_nano() {
        // Sanity: a T5-Large full fine-tuning step (bs 16) on one Nano
        // should take minutes, not milliseconds — consistent with the
        // paper's hours-long training runs.
        let cm = CostModel::new(model(), Technique::Full, 128);
        let flops = cm.total_fwd_flops(16) + cm.total_bwd_flops(16);
        let nano = crate::device::DeviceSpec::jetson_nano();
        let secs = nano.compute_time(flops);
        assert!((10.0..4000.0).contains(&secs), "step time {secs} s");
    }
}
