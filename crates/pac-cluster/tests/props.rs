//! Property-based tests for the cost and collective models: the analytic
//! formulas must satisfy the scaling laws the simulations rely on.

use pac_cluster::{CollectiveModel, CostModel, DeviceSpec, LinkSpec};
use pac_model::ModelConfig;
use pac_peft::Technique;
use proptest::prelude::*;

fn arb_model() -> impl Strategy<Value = ModelConfig> {
    prop_oneof![
        Just(ModelConfig::t5_base()),
        Just(ModelConfig::bart_large()),
        Just(ModelConfig::t5_large()),
    ]
}

fn arb_technique() -> impl Strategy<Value = Technique> {
    prop_oneof![
        Just(Technique::Full),
        Just(Technique::adapters_default()),
        Just(Technique::lora_default()),
        Just(Technique::parallel_default()),
        Just(Technique::prompt_default()),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Forward FLOPs are monotone in sequence length (attention is
    /// super-linear, everything else linear).
    #[test]
    fn flops_monotone_in_seq(model in arb_model(), t in arb_technique(), seq in 16usize..256) {
        let small = CostModel::new(model.clone(), t, seq).total_fwd_flops(1);
        let large = CostModel::new(model, t, seq + 16).total_fwd_flops(1);
        prop_assert!(large > small);
    }

    /// Layer costs are internally consistent: every layer has positive
    /// forward FLOPs, non-negative backward parts, and backward totals
    /// equal dx + dw.
    #[test]
    fn layer_costs_are_consistent(model in arb_model(), t in arb_technique(), seq in 16usize..256) {
        let cm = CostModel::new(model.clone(), t, seq);
        let layers = cm.layer_costs();
        prop_assert_eq!(layers.len(), model.total_layers());
        for l in &layers {
            prop_assert!(l.fwd_flops > 0.0);
            prop_assert!(l.dx_flops >= 0.0 && l.dw_flops >= 0.0);
            prop_assert!((l.bwd_flops() - (l.dx_flops + l.dw_flops)).abs() < 1e-9);
            prop_assert!(l.weight_bytes > 0);
            prop_assert!(l.boundary_bytes > 0);
        }
        // Totals equal per-layer sums.
        let sum_f: f64 = layers.iter().map(|l| l.fwd_flops).sum();
        prop_assert!((cm.total_fwd_flops(1) - sum_f).abs() < 1e-6 * sum_f.max(1.0));
    }

    /// The forward share of a step is bounded and ordered by technique:
    /// Full ≤ Adapters/LoRA/Prompt ≤ Parallel Adapters.
    #[test]
    fn fwd_fraction_ordering(model in arb_model(), seq in 32usize..192) {
        let frac = |t: Technique| CostModel::new(model.clone(), t, seq).fwd_fraction();
        let full = frac(Technique::Full);
        let ad = frac(Technique::adapters_default());
        let pa = frac(Technique::parallel_default());
        prop_assert!((0.2..0.45).contains(&full), "full {full}");
        prop_assert!(ad > full);
        prop_assert!(pa > ad);
        prop_assert!(pa <= 1.0);
    }

    /// Ring AllReduce: time is monotone in payload and superior to naive
    /// gather-broadcast for large payloads on many devices.
    #[test]
    fn allreduce_scaling(n in 2usize..16, mb in 1usize..64) {
        let coll = CollectiveModel::new(LinkSpec::lan_128mbps());
        let bytes = mb * 1_000_000;
        let t = coll.allreduce_time(n, bytes);
        let t_more = coll.allreduce_time(n, bytes * 2);
        prop_assert!(t_more > t);
        // Naive: everyone sends everything to one device and back.
        let naive = 2.0 * (n - 1) as f64 * LinkSpec::lan_128mbps().transfer_time(bytes);
        prop_assert!(t <= naive + 1e-9, "ring {t} worse than naive {naive}");
    }

    /// Device scaling helpers: slowing a device never increases its
    /// throughput; removing devices never increases aggregate capacity.
    #[test]
    fn device_transformations_are_contractive(factor in 1.0f64..16.0, n in 2usize..8) {
        let d = DeviceSpec::jetson_nano();
        prop_assert!(d.slowed(factor).effective_flops() <= d.effective_flops());
        let c = pac_cluster::Cluster::nanos(n);
        let f = c.without_devices(&[0]);
        prop_assert!(f.total_effective_flops() < c.total_effective_flops());
        prop_assert_eq!(f.len(), n - 1);
    }

    /// Cached-step FLOPs are always a small fraction of the full step for
    /// Parallel Adapters at paper scale.
    #[test]
    fn cached_step_is_cheap(model in arb_model(), seq in 32usize..192) {
        let cm = CostModel::new(model, Technique::parallel_default(), seq);
        let full = cm.total_fwd_flops(16) + cm.total_bwd_flops(16);
        let cached = cm.cached_step_flops(16);
        prop_assert!(cached < full * 0.2, "cached {cached} vs full {full}");
    }
}
