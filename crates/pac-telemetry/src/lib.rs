//! Lightweight global metrics for the PAC execution stack.
//!
//! Engines, the activation cache, and the trainer record counters, gauges,
//! and timing spans here; `repro --telemetry` renders the snapshot after a
//! run. Collection is **off by default**: every recording entry point
//! checks one relaxed atomic load and returns immediately when disabled,
//! so instrumented hot paths stay within noise of uninstrumented builds.
//!
//! Metric names are dot-separated paths, with the convention
//! `<subsystem>.<object>.<measure>`, e.g. `cache.hits`,
//! `pipeline.stage0.busy_ns`, `allreduce.bytes`, `membership.leaves` /
//! `membership.stale_probes` (elastic-membership churn and
//! liveness-sweep evictions). The multi-tenant serving platform books
//! under `serve.*`: `serve.registry.publishes`, `serve.cache.hits` /
//! `serve.cache.misses` / `serve.cache.evictions` /
//! `serve.cache.resident_peak_bytes` (a max-gauge),
//! `serve.route.warm` / `serve.route.cold` / `serve.route.fresh`,
//! `serve.wait.ticks`, `serve.steps.serviced`, and
//! `serve.jobs.completed` / `serve.jobs.faulted` — the fairness and
//! hit-rate ledgers `pac-bench --serve` reports. Spans append `.ns` and
//! `.calls` to their base name.
//!
//! The registry is deliberately global (a process models one training
//! node); tests that assert on metrics should [`reset`] first and not run
//! concurrently with other metric-asserting tests — use serial tests or
//! distinct metric names.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex, OnceLock, RwLock};
use std::time::Instant;

static ENABLED: AtomicBool = AtomicBool::new(false);

fn registry() -> &'static Mutex<BTreeMap<String, u64>> {
    static REGISTRY: OnceLock<Mutex<BTreeMap<String, u64>>> = OnceLock::new();
    REGISTRY.get_or_init(|| Mutex::new(BTreeMap::new()))
}

/// A monotonic nanosecond clock that spans read from. The default is the
/// process wall clock; a simulated runtime installs its virtual clock so
/// recorded timings are in virtual time.
pub type Clock = Arc<dyn Fn() -> u64 + Send + Sync>;

fn clock_slot() -> &'static RwLock<Option<Clock>> {
    static CLOCK: OnceLock<RwLock<Option<Clock>>> = OnceLock::new();
    CLOCK.get_or_init(|| RwLock::new(None))
}

fn epoch() -> Instant {
    static EPOCH: OnceLock<Instant> = OnceLock::new();
    *EPOCH.get_or_init(Instant::now)
}

/// Installs (or with `None`, removes) a custom span clock. Spans capture
/// which clock was active when they started and read the same clock on
/// drop, so toggling mid-span cannot produce negative durations.
pub fn set_clock(clock: Option<Clock>) {
    *clock_slot().write().unwrap() = clock;
}

fn now_ns() -> (u64, bool) {
    if let Some(c) = clock_slot().read().unwrap().as_ref() {
        (c(), true)
    } else {
        (epoch().elapsed().as_nanos() as u64, false)
    }
}

/// Turns metric collection on or off process-wide.
pub fn set_enabled(on: bool) {
    ENABLED.store(on, Ordering::Relaxed);
}

/// Whether metric collection is currently on.
#[inline]
pub fn enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// Adds `delta` to the named counter (creating it at zero).
#[inline]
pub fn counter_add(name: &str, delta: u64) {
    if !enabled() {
        return;
    }
    let mut map = registry().lock().unwrap();
    *map.entry(name.to_string()).or_insert(0) += delta;
}

/// Increments the named counter by one.
#[inline]
pub fn counter_inc(name: &str) {
    counter_add(name, 1);
}

/// Sets the named gauge to `value`, overwriting any previous value.
#[inline]
pub fn gauge_set(name: &str, value: u64) {
    if !enabled() {
        return;
    }
    registry().lock().unwrap().insert(name.to_string(), value);
}

/// Raises the named gauge to `value` if larger (high-water mark).
#[inline]
pub fn gauge_max(name: &str, value: u64) {
    if !enabled() {
        return;
    }
    let mut map = registry().lock().unwrap();
    let slot = map.entry(name.to_string()).or_insert(0);
    *slot = (*slot).max(value);
}

/// Reads one metric; `None` when absent (or collection never enabled).
pub fn get(name: &str) -> Option<u64> {
    registry().lock().unwrap().get(name).copied()
}

/// All metrics, sorted by name.
pub fn snapshot() -> Vec<(String, u64)> {
    registry()
        .lock()
        .unwrap()
        .iter()
        .map(|(k, v)| (k.clone(), *v))
        .collect()
}

/// All metrics whose name starts with `prefix`, sorted by name.
pub fn snapshot_prefix(prefix: &str) -> Vec<(String, u64)> {
    snapshot()
        .into_iter()
        .filter(|(k, _)| k.starts_with(prefix))
        .collect()
}

/// Clears all metrics (does not change the enabled flag).
pub fn reset() {
    registry().lock().unwrap().clear();
}

/// Folds a remote process's counter snapshot into this registry by
/// addition, so a distributed coordinator can aggregate its workers'
/// `net.*` traffic into one report (workers ship
/// [`snapshot_prefix`]`("net.")` at shutdown). Counter semantics only —
/// merging a gauge this way sums it, so ship counters, not gauges.
pub fn merge_counters<I>(rows: I)
where
    I: IntoIterator<Item = (String, u64)>,
{
    if !enabled() {
        return;
    }
    let mut map = registry().lock().unwrap();
    for (k, v) in rows {
        *map.entry(k).or_insert(0) += v;
    }
}

/// RAII timing span: on drop, adds elapsed nanoseconds to `<name>.ns` and
/// bumps `<name>.calls`. A no-op (no clock read) while collection is off.
#[must_use = "the span measures until it is dropped"]
pub struct Span {
    name: &'static str,
    /// `(start ns, started on the custom clock)`; `None` while disabled.
    start: Option<(u64, bool)>,
}

/// Starts a timing span for `name`.
#[inline]
pub fn span(name: &'static str) -> Span {
    Span {
        name,
        start: enabled().then(now_ns),
    }
}

impl Drop for Span {
    fn drop(&mut self) {
        if let Some((start, was_virtual)) = self.start {
            let (now, is_virtual) = now_ns();
            // If the clock was swapped mid-span the difference is
            // meaningless; record zero rather than a bogus duration.
            let ns = if was_virtual == is_virtual {
                now.saturating_sub(start)
            } else {
                0
            };
            // Collection may have been toggled off mid-span; record anyway
            // so paired .ns/.calls stay consistent.
            let mut map = registry().lock().unwrap();
            *map.entry(format!("{}.ns", self.name)).or_insert(0) += ns;
            *map.entry(format!("{}.calls", self.name)).or_insert(0) += 1;
        }
    }
}

/// Formats a snapshot as aligned `name value` lines for terminal output.
pub fn render(rows: &[(String, u64)]) -> String {
    let width = rows.iter().map(|(k, _)| k.len()).max().unwrap_or(0);
    let mut out = String::new();
    for (k, v) in rows {
        let line = if k.ends_with(".ns") {
            format!("{k:<width$}  {:>14.3} ms\n", *v as f64 / 1e6)
        } else if k.ends_with("bytes") {
            format!("{k:<width$}  {:>14.2} KiB\n", *v as f64 / 1024.0)
        } else {
            format!("{k:<width$}  {v:>14}\n")
        };
        out.push_str(&line);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    // The registry is process-global, so exercise everything in one test
    // to avoid cross-test interference under the parallel test runner.
    #[test]
    fn registry_lifecycle() {
        set_enabled(false);
        reset();
        counter_add("t.off", 5);
        assert_eq!(get("t.off"), None, "disabled collection must not record");

        set_enabled(true);
        counter_add("t.a", 2);
        counter_inc("t.a");
        gauge_set("t.g", 7);
        gauge_set("t.g", 3);
        gauge_max("t.m", 10);
        gauge_max("t.m", 4);
        {
            let _s = span("t.work");
            std::hint::black_box(1 + 1);
        }
        assert_eq!(get("t.a"), Some(3));
        assert_eq!(get("t.g"), Some(3));
        assert_eq!(get("t.m"), Some(10));
        assert_eq!(get("t.work.calls"), Some(1));
        assert!(get("t.work.ns").is_some());

        // Pluggable clock: a span on a virtual clock records virtual ns.
        let ticks = Arc::new(std::sync::atomic::AtomicU64::new(0));
        let source = ticks.clone();
        set_clock(Some(Arc::new(move || {
            source.fetch_add(500, Ordering::SeqCst)
        })));
        {
            let _s = span("t.virtual");
        }
        set_clock(None);
        assert_eq!(get("t.virtual.ns"), Some(500), "virtual clock drives spans");

        merge_counters(vec![("t.a".to_string(), 4), ("t.new".to_string(), 1)]);
        assert_eq!(get("t.a"), Some(7), "merge adds into existing counters");
        assert_eq!(get("t.new"), Some(1), "merge creates missing counters");

        let pre = snapshot_prefix("t.");
        assert!(pre.len() >= 5);
        assert!(pre.windows(2).all(|w| w[0].0 <= w[1].0), "sorted by name");

        let text = render(&pre);
        assert!(text.contains("t.a"));
        assert!(text.contains("ms"), "span ns rendered in ms: {text}");

        set_enabled(false);
        reset();
        assert!(snapshot().is_empty());
    }
}
