//! Engine-level thread-count invariance: a full hybrid mini-batch (pipeline
//! stages × data-parallel lanes, AllReduce included) must produce
//! bitwise-identical losses and gradients at every worker-pool width, even
//! with several differently-capped training runs sharing the pool.

use pac_model::{EncoderModel, ModelConfig};
use pac_nn::Module;
use pac_parallel::engine::HybridEngine;
use pac_parallel::Schedule;
use pac_tensor::rng::seeded;
use rand::Rng as _;

fn model(seed: u64) -> EncoderModel {
    let cfg = ModelConfig::micro(2, 0, 16, 2);
    EncoderModel::new(&cfg, 2, &mut seeded(seed))
}

fn micro_batches(seed: u64, m: usize, b: usize, s: usize) -> Vec<(Vec<Vec<usize>>, Vec<usize>)> {
    let mut rng = seeded(seed);
    (0..m)
        .map(|_| {
            let toks: Vec<Vec<usize>> = (0..b)
                .map(|_| (0..s).map(|_| rng.gen_range(0..64)).collect())
                .collect();
            let targets: Vec<usize> = (0..b).map(|_| rng.gen_range(0..2)).collect();
            (toks, targets)
        })
        .collect()
}

/// Runs one hybrid mini-batch and returns (loss bits, every grad's bits).
fn run_once(width_cap: usize) -> (u32, Vec<Vec<u32>>) {
    rayon::pool::set_max_concurrency(width_cap);
    let m = model(900);
    let mbs = micro_batches(901, 2, 4, 4);
    let stages = m.partition(&[1, 1]).unwrap();
    let mut engine = HybridEngine::new(stages, 2, Schedule::OneFOneB);
    let loss = engine.run_mini_batch(&mbs).unwrap();
    let mut grads = Vec::new();
    for lane in &engine.lanes {
        for s in lane {
            s.visit_params_ref(&mut |p| {
                grads.push(p.grad.data().iter().map(|v| v.to_bits()).collect())
            });
        }
    }
    (loss.to_bits(), grads)
}

#[test]
fn hybrid_training_is_bitwise_identical_across_pool_widths() {
    let reference = run_once(1);
    // Concurrent runs at widths 1/2/8: stage threads and lane threads from
    // every run contend for the same persistent pool.
    std::thread::scope(|scope| {
        for &w in &[1usize, 2, 8] {
            let reference = &reference;
            scope.spawn(move || {
                for round in 0..3 {
                    let got = run_once(w);
                    assert_eq!(got.0, reference.0, "loss diverged: width {w} round {round}");
                    assert_eq!(
                        got.1, reference.1,
                        "grads diverged: width {w} round {round}"
                    );
                }
            });
        }
    });
}
