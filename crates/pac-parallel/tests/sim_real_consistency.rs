//! Sim-vs-real consistency: the threaded pipeline engine and the timeline
//! simulator must implement the *same* 1F1B/GPipe discipline.
//!
//! Three layers of agreement are checked on a uniform micro pipeline:
//!
//! 1. **Op order** — each real stage executes exactly
//!    [`stage_op_sequence`], in order (the engine is built on it, but the
//!    measured event stream is the proof that the timestamps reflect it).
//! 2. **Causality** — measured timestamps respect the simulator's
//!    dependency rules: `F(s−1, m)` before `F(s, m)`, `B(s+1, m)` before
//!    `B(s, m)`, forward before backward of the same micro-batch, and ops
//!    on one stage never overlap.
//! 3. **Timeline shape** — a simulator parameterized with the *measured*
//!    mean forward/backward times predicts the measured makespan within a
//!    loose tolerance, and the real in-flight memory profile obeys the
//!    1F1B bound the simulator derives (stage `s` holds ≤ `S − s`).
//!
//! On failure the measured and simulated timelines are both rendered via
//! [`SimResult::ascii_gantt`] so the divergence is visible at a glance.

use pac_model::{EncoderModel, ModelConfig};
use pac_parallel::engine::{run_pipeline_mini_batch, PipelineOutcome};
use pac_parallel::schedule::{
    simulate_pipeline, stage_op_sequence, Op, Schedule, SimEvent, SimResult, SimStage,
};
use pac_tensor::rng::seeded;
use rand::Rng as _;

const STAGES: usize = 4;
const MICROS: usize = 4;

fn run_real(schedule: Schedule) -> PipelineOutcome {
    let cfg = ModelConfig::micro(STAGES, 0, 16, 2);
    let model = EncoderModel::new(&cfg, 2, &mut seeded(400));
    let stages = model.partition(&[1; STAGES]).unwrap();
    let mut rng = seeded(401);
    let micro_batches: Vec<(Vec<Vec<usize>>, Vec<usize>)> = (0..MICROS)
        .map(|_| {
            let toks: Vec<Vec<usize>> = (0..2)
                .map(|_| (0..6).map(|_| rng.gen_range(0..64)).collect())
                .collect();
            let targets: Vec<usize> = (0..2).map(|_| rng.gen_range(0..2)).collect();
            (toks, targets)
        })
        .collect();
    run_pipeline_mini_batch(stages, micro_batches, schedule).expect("fault-free pipeline run")
}

/// The measured per-stage op stream, in start-time order.
fn measured_ops(events: &[SimEvent], stage: usize) -> Vec<Op> {
    let mut evs: Vec<&SimEvent> = events.iter().filter(|e| e.stage == stage).collect();
    evs.sort_by(|a, b| a.start.total_cmp(&b.start));
    evs.iter()
        .map(|e| {
            if e.forward {
                Op::F(e.micro)
            } else {
                Op::B(e.micro)
            }
        })
        .collect()
}

fn gantts(outcome: &PipelineOutcome, sim: &SimResult) -> String {
    let real = SimResult::from_events(outcome.events.clone(), STAGES);
    format!(
        "measured:\n{}\nsimulated:\n{}",
        real.ascii_gantt(72),
        sim.ascii_gantt(72)
    )
}

#[test]
fn real_stage_op_order_matches_schedule() {
    for schedule in [Schedule::OneFOneB, Schedule::GPipe] {
        let out = run_real(schedule);
        assert_eq!(out.events.len(), 2 * STAGES * MICROS);
        for s in 0..STAGES {
            let expected = stage_op_sequence(schedule, s, STAGES, MICROS);
            let got = measured_ops(&out.events, s);
            assert_eq!(
                got, expected,
                "{schedule:?}: stage {s} executed a different op order"
            );
        }
    }
}

#[test]
fn real_timestamps_respect_simulator_dependencies() {
    let out = run_real(Schedule::OneFOneB);
    let find = |stage: usize, micro: usize, forward: bool| -> &SimEvent {
        out.events
            .iter()
            .find(|e| e.stage == stage && e.micro == micro && e.forward == forward)
            .expect("every op appears exactly once")
    };
    let eps = 1e-9;
    for m in 0..MICROS {
        for s in 0..STAGES {
            let f = find(s, m, true);
            let b = find(s, m, false);
            assert!(f.start <= f.end && b.start <= b.end, "degenerate interval");
            assert!(
                f.end <= b.start + eps,
                "stage {s} micro {m}: backward started before its forward ended"
            );
            if s > 0 {
                let up = find(s - 1, m, true);
                assert!(
                    up.end <= f.start + eps,
                    "F({s},{m}) started before F({},{m}) ended",
                    s - 1
                );
            }
            if s < STAGES - 1 {
                let down = find(s + 1, m, false);
                assert!(
                    down.end <= b.start + eps,
                    "B({s},{m}) started before B({},{m}) ended",
                    s + 1
                );
            }
        }
    }
    // Ops on one stage serialize.
    for s in 0..STAGES {
        let mut evs: Vec<&SimEvent> = out.events.iter().filter(|e| e.stage == s).collect();
        evs.sort_by(|a, b| a.start.total_cmp(&b.start));
        for w in evs.windows(2) {
            assert!(
                w[1].start >= w[0].end - eps,
                "stage {s}: overlapping ops in the measured timeline"
            );
        }
    }
}

#[test]
fn measured_timeline_agrees_with_simulation() {
    let out = run_real(Schedule::OneFOneB);

    // Parameterize the simulator with the *measured* mean compute times, so
    // the comparison isolates scheduling shape from absolute speed.
    let sim_stages: Vec<SimStage> = (0..STAGES)
        .map(|s| {
            let mean = |forward: bool| -> f64 {
                let durs: Vec<f64> = out
                    .events
                    .iter()
                    .filter(|e| e.stage == s && e.forward == forward)
                    .map(|e| e.end - e.start)
                    .collect();
                durs.iter().sum::<f64>() / durs.len() as f64
            };
            SimStage {
                fwd_s: mean(true),
                bwd_s: mean(false),
                send_fwd_s: 0.0,
                send_bwd_s: 0.0,
                weight_bytes: 0,
                act_bytes_per_mb: 0,
                fixed_bytes: 0,
                allreduce_s: 0.0,
            }
        })
        .collect();
    let sim = simulate_pipeline(&sim_stages, MICROS, Schedule::OneFOneB);

    // The real timeline includes thread spawn/channel overhead and OS
    // jitter, so the tolerance is deliberately loose: the measured critical
    // path must be at least the simulated one (the sim is an ideal lower
    // bound built from the same mean op costs) and within a generous
    // constant factor of it.
    let measured_span = out.events.iter().fold(0.0f64, |a, e| a.max(e.end));
    let ratio = measured_span / sim.makespan_s;
    assert!(
        ratio > 0.5 && ratio < 10.0,
        "measured/simulated makespan ratio {ratio:.3} out of tolerance\n{}",
        gantts(&out, &sim)
    );

    // The real engine must obey the 1F1B in-flight bound the simulator
    // derives: stage s retains at most S − s micro-batches.
    let real = SimResult::from_events(out.events.clone(), STAGES);
    for (s, (&rp, &sp)) in real
        .peak_inflight
        .iter()
        .zip(sim.peak_inflight.iter())
        .enumerate()
    {
        assert!(
            rp <= STAGES - s,
            "stage {s}: measured inflight {rp} exceeds the 1F1B bound\n{}",
            gantts(&out, &sim)
        );
        assert_eq!(
            rp,
            sp,
            "stage {s}: measured inflight {rp} != simulated {sp}\n{}",
            gantts(&out, &sim)
        );
    }

    // Busy-time bookkeeping: PipelineOutcome::stage_busy_s must equal the
    // per-stage event durations it was derived from.
    for s in 0..STAGES {
        let from_events: f64 = out
            .events
            .iter()
            .filter(|e| e.stage == s)
            .map(|e| e.end - e.start)
            .sum();
        assert!(
            (from_events - out.stage_busy_s[s]).abs() < 1e-9,
            "stage {s}: busy bookkeeping diverged"
        );
        assert!(out.stage_busy_s[s] <= out.wall_s + 1e-9);
    }
}
