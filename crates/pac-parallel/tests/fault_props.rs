//! Property-based test: degraded-lane gradient averaging. When the
//! AllReduce drops an unreachable lane, the survivors' averaged gradient
//! must equal the monolithic gradient over the surviving rows — for any
//! replica count and any dead lane.

use pac_model::ModelConfig;
use pac_nn::{cross_entropy, Module};
use pac_parallel::engine::{dp_step_tokens_supervised, MAX_ALLREDUCE_RETRIES};
use pac_parallel::faults::{Fault, FaultClock, FaultPlan};
use pac_peft::{Technique, Tuner};
use pac_tensor::rng::seeded;
use pac_tensor::Tensor;
use proptest::prelude::*;
use rand::Rng as _;

fn shard(seed: u64, rows: usize, seq: usize) -> (Vec<Vec<usize>>, Vec<usize>) {
    let mut rng = seeded(seed);
    let toks = (0..rows)
        .map(|_| (0..seq).map(|_| rng.gen_range(0..64)).collect())
        .collect();
    let targets = (0..rows).map(|_| rng.gen_range(0..2)).collect();
    (toks, targets)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    #[test]
    fn degraded_averaging_matches_monolithic_on_surviving_rows(
        n in 2usize..5,
        dead_sel in 0usize..100,
        seed in 0u64..1_000,
    ) {
        let dead = dead_sel % n;
        let cfg = ModelConfig::micro(1, 1, 16, 2);
        let base = Tuner::new(Technique::adapters_default(), &cfg, 2, &mut seeded(seed));
        let shards: Vec<_> = (0..n).map(|k| shard(seed * 31 + k as u64, 2, 4)).collect();

        // Monolithic reference over every row except the dead lane's.
        let mut mono = base.clone();
        let tokens: Vec<Vec<usize>> = shards
            .iter()
            .enumerate()
            .filter(|(k, _)| *k != dead)
            .flat_map(|(_, (t, _))| t.clone())
            .collect();
        let targets: Vec<usize> = shards
            .iter()
            .enumerate()
            .filter(|(k, _)| *k != dead)
            .flat_map(|(_, (_, y))| y.clone())
            .collect();
        let (logits, ctx) = mono.forward(&tokens).unwrap();
        let (_, dl) = cross_entropy(&logits, &targets).unwrap();
        mono.backward(&ctx, &dl).unwrap();
        let mut expected: Vec<Tensor> = Vec::new();
        mono.visit_params_ref(&mut |p| {
            if p.trainable {
                expected.push(p.grad.clone());
            }
        });

        // Supervised DP step whose AllReduce exhausts its retries with
        // `dead` unreachable.
        let mut replicas = vec![base; n];
        let plan = FaultPlan::none().with(Fault::AllReduceTransient {
            step: 0,
            failures: MAX_ALLREDUCE_RETRIES + 1,
            lane: Some(dead),
        });
        let clock = FaultClock::new(plan);
        clock.advance();
        let out = dp_step_tokens_supervised(&mut replicas, &shards, &clock).unwrap();
        prop_assert_eq!(out.dropped_lane, Some(dead));

        for (k, r) in replicas.iter().enumerate() {
            if k == dead {
                continue;
            }
            let mut idx = 0usize;
            let mut worst = 0.0f32;
            r.visit_params_ref(&mut |p| {
                if p.trainable {
                    worst = worst.max(p.grad.sub(&expected[idx]).unwrap().norm());
                    idx += 1;
                }
            });
            prop_assert!(worst < 1e-4, "survivor {k} grad off by {worst}");
        }
    }
}
