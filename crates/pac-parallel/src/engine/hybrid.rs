//! Real hybrid data+pipeline parallel engine (the paper's Figure 6).
//!
//! The pipeline's stages are each replicated across `group_width` lanes.
//! Every micro-batch is split row-wise across lanes (the paper: "if a
//! device cluster hosts multiple devices, micro-batches are further
//! subdivided"); lanes run the full 1F1B pipeline concurrently on their
//! slices, and at mini-batch end each stage's gradient is AllReduce-averaged
//! across lanes.
//!
//! This engine supports uniform group widths (every stage replicated the
//! same number of times). Non-uniform groups — which require activation
//! resharding between stages — are covered by the timeline simulator.

use crate::engine::pipeline::run_pipeline_mini_batch;
use crate::schedule::Schedule;
use pac_model::StageModel;
use pac_nn::{Module, Optimizer, Param};
use pac_tensor::{Result, Tensor, TensorError};

/// One micro-batch: `(token rows, class targets)`.
type MicroBatch = (Vec<Vec<usize>>, Vec<usize>);

/// Hybrid-parallel training engine over real threads.
#[derive(Debug)]
pub struct HybridEngine {
    /// `lanes[k][s]` = lane `k`'s replica of stage `s`.
    pub lanes: Vec<Vec<StageModel>>,
    /// Micro-batch schedule.
    pub schedule: Schedule,
}

impl HybridEngine {
    /// Replicates a stage chain across `group_width` lanes.
    ///
    /// # Panics
    /// Panics if `group_width` is zero or `stages` is empty.
    pub fn new(stages: Vec<StageModel>, group_width: usize, schedule: Schedule) -> Self {
        assert!(group_width > 0, "group width must be positive");
        assert!(!stages.is_empty(), "need at least one stage");
        let lanes = (0..group_width).map(|_| stages.clone()).collect();
        HybridEngine { lanes, schedule }
    }

    /// Number of pipeline stages.
    pub fn num_stages(&self) -> usize {
        self.lanes[0].len()
    }

    /// Data-parallel width.
    pub fn group_width(&self) -> usize {
        self.lanes.len()
    }

    /// Total simulated devices (stages × lanes).
    pub fn num_devices(&self) -> usize {
        self.num_stages() * self.group_width()
    }

    /// Runs one mini-batch: splits every micro-batch row-wise across lanes,
    /// pipelines each lane on its own threads, then AllReduces gradients
    /// across lanes per stage. Returns the mean loss.
    ///
    /// # Errors
    /// Returns an error if a micro-batch cannot be split evenly across the
    /// lanes (keeps gradient averaging exact).
    pub fn run_mini_batch(
        &mut self,
        micro_batches: &[(Vec<Vec<usize>>, Vec<usize>)],
    ) -> Result<f32> {
        let g = self.group_width();
        for (toks, _) in micro_batches {
            if toks.len() % g != 0 {
                return Err(TensorError::ShapeMismatch {
                    op: "hybrid micro-batch must split evenly across lanes",
                    lhs: vec![toks.len()],
                    rhs: vec![g],
                });
            }
        }
        // Per-lane slices of every micro-batch.
        let lane_inputs: Vec<Vec<MicroBatch>> = (0..g)
            .map(|k| {
                micro_batches
                    .iter()
                    .map(|(toks, targets)| {
                        let share = toks.len() / g;
                        (
                            toks[k * share..(k + 1) * share].to_vec(),
                            targets[k * share..(k + 1) * share].to_vec(),
                        )
                    })
                    .collect()
            })
            .collect();
        if pac_telemetry::enabled() {
            for (k, input) in lane_inputs.iter().enumerate() {
                let rows: usize = input.iter().map(|(t, _)| t.len()).sum();
                pac_telemetry::counter_add(&format!("hybrid.lane{k}.rows"), rows as u64);
            }
            pac_telemetry::counter_inc("hybrid.runs");
        }

        let schedule = self.schedule;
        let lanes = std::mem::take(&mut self.lanes);
        let outcomes: Vec<(Vec<StageModel>, f32)> = std::thread::scope(|scope| {
            let handles: Vec<_> = lanes
                .into_iter()
                .zip(lane_inputs)
                .map(|(stage_chain, input)| {
                    scope.spawn(move || {
                        let out = run_pipeline_mini_batch(stage_chain, input, schedule);
                        (out.stages, out.loss)
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("lane thread panicked"))
                .collect()
        });

        let mut loss = 0.0f32;
        self.lanes = Vec::with_capacity(g);
        for (stages, l) in outcomes {
            self.lanes.push(stages);
            loss += l;
        }

        // AllReduce each stage's gradients across lanes.
        {
            let _span = pac_telemetry::span("hybrid.allreduce");
            for s in 0..self.num_stages() {
                let mut group: Vec<&mut StageModel> =
                    self.lanes.iter_mut().map(|lane| &mut lane[s]).collect();
                allreduce_group(&mut group);
            }
        }
        Ok(loss / g as f32)
    }

    /// Zeroes gradients on every replica.
    pub fn zero_grads(&mut self) {
        for lane in &mut self.lanes {
            for s in lane {
                s.zero_grads();
            }
        }
    }

    /// Applies one optimizer step to every replica. After an AllReduce the
    /// replicas hold identical gradients, so identical steps keep them in
    /// sync (asserted in tests).
    pub fn step(&mut self, opts: &mut [Box<dyn Optimizer>]) {
        assert_eq!(opts.len(), self.lanes.len(), "one optimizer per lane");
        for (lane, opt) in self.lanes.iter_mut().zip(opts.iter_mut()) {
            for s in lane {
                opt.step(s);
            }
        }
    }

    /// Collects lane 0's parameters (the canonical model state).
    pub fn canonical_params(&self) -> Vec<(String, Tensor)> {
        let mut out = Vec::new();
        for s in &self.lanes[0] {
            s.visit_params_ref(&mut |p: &Param| out.push((p.name.clone(), p.value.clone())));
        }
        out
    }
}

/// AllReduce-mean across a group of stage replicas (trainable params only).
fn allreduce_group(group: &mut [&mut StageModel]) {
    let n = group.len();
    if n <= 1 {
        return;
    }
    let mut sums: Vec<Tensor> = Vec::new();
    for (gi, stage) in group.iter().enumerate() {
        let mut idx = 0usize;
        stage.visit_params_ref(&mut |p| {
            if !p.trainable {
                return;
            }
            if gi == 0 {
                sums.push(p.grad.clone());
            } else {
                sums[idx]
                    .add_assign(&p.grad)
                    .expect("replica shapes must match");
            }
            idx += 1;
        });
    }
    let inv = 1.0 / n as f32;
    for s in &mut sums {
        s.scale_in_place(inv);
    }
    if pac_telemetry::enabled() {
        // Logical comms volume: every lane ships its full gradient set into
        // the reduction (what a ring AllReduce moves, up to the 2(n−1)/n
        // factor accounted in the cost model).
        let payload: usize = sums.iter().map(Tensor::size_bytes).sum();
        pac_telemetry::counter_add("allreduce.bytes", (payload * n) as u64);
        pac_telemetry::counter_inc("allreduce.reductions");
    }
    for stage in group.iter_mut() {
        let mut idx = 0usize;
        stage.visit_params(&mut |p| {
            if !p.trainable {
                return;
            }
            p.grad = sums[idx].clone();
            idx += 1;
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pac_model::{EncoderModel, ModelConfig};
    use pac_nn::{cross_entropy, Sgd};
    use pac_tensor::rng::seeded;
    use rand::Rng as _;
    use std::collections::HashMap;

    fn model(seed: u64, layers: usize) -> EncoderModel {
        let cfg = ModelConfig::micro(layers, 0, 16, 2);
        EncoderModel::new(&cfg, 2, &mut seeded(seed))
    }

    fn micro_batches(
        seed: u64,
        m: usize,
        b: usize,
        s: usize,
    ) -> Vec<(Vec<Vec<usize>>, Vec<usize>)> {
        let mut rng = seeded(seed);
        (0..m)
            .map(|_| {
                let toks: Vec<Vec<usize>> = (0..b)
                    .map(|_| (0..s).map(|_| rng.gen_range(0..64)).collect())
                    .collect();
                let targets: Vec<usize> = (0..b).map(|_| rng.gen_range(0..2)).collect();
                (toks, targets)
            })
            .collect()
    }

    #[test]
    fn hybrid_gradients_match_monolithic() {
        let m = model(230, 4);
        let mbs = micro_batches(231, 2, 4, 5);

        // Monolithic reference.
        let mut mono = m.clone();
        let all_tokens: Vec<Vec<usize>> = mbs.iter().flat_map(|(t, _)| t.clone()).collect();
        let all_targets: Vec<usize> = mbs.iter().flat_map(|(_, t)| t.clone()).collect();
        let (logits, ctx) = mono.forward(&all_tokens).unwrap();
        let (mono_loss, dl) = cross_entropy(&logits, &all_targets).unwrap();
        mono.backward(&ctx, &dl).unwrap();
        let mut mono_grads: HashMap<String, Tensor> = HashMap::new();
        mono.visit_params_ref(&mut |p| {
            mono_grads.insert(p.name.clone(), p.grad.clone());
        });

        // Hybrid: 2 stages × 2 lanes = 4 "devices".
        let stages = m.partition(&[2, 2]).unwrap();
        let mut engine = HybridEngine::new(stages, 2, Schedule::OneFOneB);
        assert_eq!(engine.num_devices(), 4);
        let loss = engine.run_mini_batch(&mbs).unwrap();
        assert!(
            (loss - mono_loss).abs() < 1e-5,
            "loss {loss} vs {mono_loss}"
        );

        for lane in &engine.lanes {
            for stage in lane {
                stage.visit_params_ref(&mut |p| {
                    let mg = &mono_grads[&p.name];
                    assert!(
                        p.grad.approx_eq(mg, 1e-4),
                        "grad mismatch {}: |Δ|={}",
                        p.name,
                        p.grad.sub(mg).unwrap().norm()
                    );
                });
            }
        }
    }

    #[test]
    fn lanes_stay_synchronized_over_training() {
        let m = model(232, 2);
        let stages = m.partition(&[1, 1]).unwrap();
        let mut engine = HybridEngine::new(stages, 2, Schedule::OneFOneB);
        let mut opts: Vec<Box<dyn Optimizer>> =
            vec![Box::new(Sgd::new(0.05)), Box::new(Sgd::new(0.05))];
        for step in 0..3 {
            let mbs = micro_batches(240 + step, 2, 4, 4);
            engine.zero_grads();
            engine.run_mini_batch(&mbs).unwrap();
            engine.step(&mut opts);
        }
        // Lane parameters must agree bitwise after synced SGD steps.
        let lane0: HashMap<String, Tensor> = {
            let mut m = HashMap::new();
            for s in &engine.lanes[0] {
                s.visit_params_ref(&mut |p| {
                    m.insert(p.name.clone(), p.value.clone());
                });
            }
            m
        };
        for s in &engine.lanes[1] {
            s.visit_params_ref(&mut |p| {
                assert!(
                    p.value.approx_eq(&lane0[&p.name], 1e-6),
                    "lane divergence on {}",
                    p.name
                );
            });
        }
    }

    #[test]
    fn uneven_split_is_rejected() {
        let m = model(233, 2);
        let stages = m.partition(&[1, 1]).unwrap();
        let mut engine = HybridEngine::new(stages, 2, Schedule::OneFOneB);
        let mbs = micro_batches(234, 1, 3, 4); // 3 rows, 2 lanes
        assert!(engine.run_mini_batch(&mbs).is_err());
    }

    #[test]
    fn training_reduces_loss() {
        let m = model(235, 2);
        let stages = m.partition(&[1, 1]).unwrap();
        let mut engine = HybridEngine::new(stages, 2, Schedule::OneFOneB);
        let mut opts: Vec<Box<dyn Optimizer>> =
            vec![Box::new(Sgd::new(0.05)), Box::new(Sgd::new(0.05))];
        let mbs = micro_batches(236, 2, 4, 4);
        let mut first = 0.0;
        let mut last = 0.0;
        for step in 0..10 {
            engine.zero_grads();
            let loss = engine.run_mini_batch(&mbs).unwrap();
            if step == 0 {
                first = loss;
            }
            last = loss;
            engine.step(&mut opts);
        }
        assert!(last < first, "first {first} last {last}");
    }
}
