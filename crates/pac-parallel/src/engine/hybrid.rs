//! Real hybrid data+pipeline parallel engine (the paper's Figure 6).
//!
//! The pipeline's stages are each replicated across `group_width` lanes.
//! Every micro-batch is split row-wise across lanes (the paper: "if a
//! device cluster hosts multiple devices, micro-batches are further
//! subdivided"); lanes run the full 1F1B pipeline concurrently on their
//! slices, and at mini-batch end each stage's gradient is AllReduce-averaged
//! across lanes.
//!
//! Execution is supervised: lane threads are joined as `Result`s, a panic
//! becomes [`EngineError::LanePanic`] and removes only the dead lane, a
//! disturbed AllReduce gets a bounded retry with backoff
//! ([`MAX_ALLREDUCE_RETRIES`]) and, past the budget, degrades to the
//! surviving lanes with `1/k` rescaled averaging.
//!
//! This engine supports uniform group widths (every stage replicated the
//! same number of times). Non-uniform groups — which require activation
//! resharding between stages — are covered by the timeline simulator.

use crate::engine::error::{EngineError, EngineResult};
use crate::engine::pipeline::{run_pipeline_supervised, LaneFaults};
use crate::faults::{FaultClock, TimelineKind};
use crate::schedule::Schedule;
use pac_model::StageModel;
use pac_nn::{Module, Optimizer, Param};
use pac_tensor::{Tensor, TensorError};

/// One micro-batch: `(token rows, class targets)`.
pub type MicroBatch = (Vec<Vec<usize>>, Vec<usize>);

/// Splits every micro-batch row-wise into `g` equal lane shares — lane `k`
/// takes rows `[k·share, (k+1)·share)`. Public so the distributed driver
/// (`pac-net`) shards the mini-batch *identically* to [`HybridEngine`],
/// which is a precondition for bitwise-equal results.
///
/// # Errors
/// [`EngineError::Tensor`] when any micro-batch's row count is not a
/// multiple of `g` (uneven shares would break exact gradient averaging).
pub fn split_micro_batches(
    micro_batches: &[MicroBatch],
    g: usize,
) -> EngineResult<Vec<Vec<MicroBatch>>> {
    for (toks, _) in micro_batches {
        if toks.len() % g != 0 {
            return Err(EngineError::Tensor(TensorError::ShapeMismatch {
                op: "hybrid micro-batch must split evenly across lanes",
                lhs: vec![toks.len()],
                rhs: vec![g],
            }));
        }
    }
    Ok((0..g)
        .map(|k| {
            micro_batches
                .iter()
                .map(|(toks, targets)| {
                    let share = toks.len() / g;
                    (
                        toks[k * share..(k + 1) * share].to_vec(),
                        targets[k * share..(k + 1) * share].to_vec(),
                    )
                })
                .collect()
        })
        .collect())
}

/// Row counts per lane for one micro-batch of `rows` rows under relative
/// `weights` (higher weight ⇒ more rows — the inverse of measured lane
/// cost). Largest-remainder apportionment with a one-row floor per lane:
/// shares sum exactly to `rows`, equal weights reproduce the even split of
/// [`split_micro_batches`] when `rows` divides evenly, and a lane is never
/// starved to zero (a lane with no rows would desynchronize the 1F1B
/// schedule). Deterministic: ties go to the lower lane index.
///
/// # Errors
/// [`EngineError::Tensor`] when `rows < weights.len()` (cannot give every
/// lane a row) or `weights` is empty / contains a non-positive weight.
pub fn weighted_shares(rows: usize, weights: &[f64]) -> EngineResult<Vec<usize>> {
    let g = weights.len();
    if g == 0 || rows < g || weights.iter().any(|w| !w.is_finite() || *w <= 0.0) {
        return Err(EngineError::Tensor(TensorError::ShapeMismatch {
            op: "weighted micro-batch shares need >= 1 row per lane and positive weights",
            lhs: vec![rows],
            rhs: vec![g],
        }));
    }
    let total: f64 = weights.iter().sum();
    // Floor of the proportional share, with the one-row floor applied.
    let spendable = rows - g; // rows left after every lane's guaranteed one
    let mut shares: Vec<usize> = Vec::with_capacity(g);
    let mut remainders: Vec<(usize, f64)> = Vec::with_capacity(g);
    let mut assigned = 0usize;
    for (k, w) in weights.iter().enumerate() {
        let ideal = spendable as f64 * (w / total);
        let base = ideal.floor() as usize;
        shares.push(1 + base);
        assigned += base;
        remainders.push((k, ideal - base as f64));
    }
    // Hand the leftover rows to the largest fractional remainders; ties
    // break toward the lower lane index so the split is deterministic.
    remainders.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap().then(a.0.cmp(&b.0)));
    for &(k, _) in remainders.iter().take(spendable - assigned) {
        shares[k] += 1;
    }
    debug_assert_eq!(shares.iter().sum::<usize>(), rows);
    Ok(shares)
}

/// The weighted generalization of [`split_micro_batches`]: every
/// micro-batch is cut into *contiguous* row ranges sized by
/// [`weighted_shares`], lane `k` taking the `k`-th range. With equal
/// weights and evenly divisible rows this is bit-identical to
/// [`split_micro_batches`] (same contiguous slices in the same order), so
/// a driver can use the weighted path unconditionally and only diverge
/// from the in-process engines once measured lane costs actually differ.
///
/// # Errors
/// [`EngineError::Tensor`] when any micro-batch has fewer rows than lanes
/// or the weights are degenerate (see [`weighted_shares`]).
pub fn split_micro_batches_weighted(
    micro_batches: &[MicroBatch],
    weights: &[f64],
) -> EngineResult<Vec<Vec<MicroBatch>>> {
    let g = weights.len();
    let mut lanes: Vec<Vec<MicroBatch>> = vec![Vec::with_capacity(micro_batches.len()); g];
    for (toks, targets) in micro_batches {
        let shares = weighted_shares(toks.len(), weights)?;
        let mut start = 0usize;
        for (k, &share) in shares.iter().enumerate() {
            lanes[k].push((
                toks[start..start + share].to_vec(),
                targets[start..start + share].to_vec(),
            ));
            start += share;
        }
    }
    Ok(lanes)
}

/// Bounded retry budget for a disturbed gradient AllReduce: the collective
/// is attempted `1 + MAX_ALLREDUCE_RETRIES` times before the engine
/// degrades (unreachable lane known) or gives up.
pub const MAX_ALLREDUCE_RETRIES: u32 = 3;

/// What a supervised mini-batch reported back.
#[derive(Debug, Clone, PartialEq)]
pub struct SupervisedOutcome {
    /// Mean loss across the lanes that contributed to the update.
    pub loss: f32,
    /// Global step this mini-batch ran as (from the [`FaultClock`]).
    pub step: u64,
    /// AllReduce attempts that failed and were retried.
    pub retries: u32,
    /// Lane dropped by AllReduce degradation this step (index into the
    /// lane order *before* the call), if any. The caller must drop the
    /// matching optimizer.
    pub dropped_lane: Option<usize>,
}

/// Hybrid-parallel training engine over real threads.
#[derive(Debug)]
pub struct HybridEngine {
    /// `lanes[k][s]` = lane `k`'s replica of stage `s`.
    pub lanes: Vec<Vec<StageModel>>,
    /// Micro-batch schedule.
    pub schedule: Schedule,
}

impl HybridEngine {
    /// Replicates a stage chain across `group_width` lanes.
    ///
    /// Replication is cheap: tensors are copy-on-write, so every lane's
    /// frozen backbone *shares* the original parameter storage. A lane only
    /// materializes its own copy of the buffers it actually writes
    /// (accumulated gradients, optimized parameters) — see
    /// [`HybridEngine::resident_param_bytes`].
    ///
    /// # Panics
    /// Panics if `group_width` is zero or `stages` is empty.
    pub fn new(stages: Vec<StageModel>, group_width: usize, schedule: Schedule) -> Self {
        assert!(group_width > 0, "group width must be positive");
        assert!(!stages.is_empty(), "need at least one stage");
        let lanes = (0..group_width).map(|_| stages.clone()).collect();
        HybridEngine { lanes, schedule }
    }

    /// Bytes of parameter + gradient storage resident across all lanes,
    /// counting each distinct buffer once (lane replicas that still share a
    /// copy-on-write buffer are not double-charged).
    pub fn resident_param_bytes(&self) -> usize {
        let mut seen = std::collections::HashSet::new();
        let mut total = 0usize;
        for lane in &self.lanes {
            for s in lane {
                s.visit_params_ref(&mut |p: &Param| {
                    if seen.insert(p.value.storage_ptr()) {
                        total += p.value.size_bytes();
                    }
                    if seen.insert(p.grad.storage_ptr()) {
                        total += p.grad.size_bytes();
                    }
                });
            }
        }
        total
    }

    /// Number of pipeline stages.
    pub fn num_stages(&self) -> usize {
        self.lanes[0].len()
    }

    /// Data-parallel width.
    pub fn group_width(&self) -> usize {
        self.lanes.len()
    }

    /// Total simulated devices (stages × lanes).
    pub fn num_devices(&self) -> usize {
        self.num_stages() * self.group_width()
    }

    /// Runs one mini-batch: splits every micro-batch row-wise across lanes,
    /// pipelines each lane on its own threads, then AllReduces gradients
    /// across lanes per stage. Returns the mean loss.
    ///
    /// # Errors
    /// Returns an error if a micro-batch cannot be split evenly across the
    /// lanes (keeps gradient averaging exact), or any supervised failure
    /// from [`HybridEngine::run_supervised`].
    pub fn run_mini_batch(
        &mut self,
        micro_batches: &[(Vec<Vec<usize>>, Vec<usize>)],
    ) -> EngineResult<f32> {
        let clock = FaultClock::quiet();
        clock.advance();
        self.run_supervised(micro_batches, &clock).map(|o| o.loss)
    }

    /// Runs one supervised mini-batch against the clock's current step,
    /// injecting whatever the clock's [`FaultPlan`](crate::faults::FaultPlan)
    /// schedules there. The caller owns the loop and must call
    /// [`FaultClock::advance`] once per mini-batch before this.
    ///
    /// On a lane failure the dead lane's replica is removed and the
    /// survivors are kept, so the engine remains usable; the survivors'
    /// gradients are partial, so callers must `zero_grads` before reusing
    /// them. AllReduce disturbances are retried up to
    /// [`MAX_ALLREDUCE_RETRIES`] times; past that, a known-unreachable lane
    /// is dropped and averaging rescales over the `k` survivors.
    ///
    /// # Errors
    /// [`EngineError::LanePanic`] / [`EngineError::Disconnected`] when a
    /// lane dies, [`EngineError::AllReduceFailed`] when the collective
    /// exhausts its budget with no lane to blame, [`EngineError::Tensor`]
    /// on uneven splits or math failures.
    pub fn run_supervised(
        &mut self,
        micro_batches: &[(Vec<Vec<usize>>, Vec<usize>)],
        clock: &FaultClock,
    ) -> EngineResult<SupervisedOutcome> {
        let step = clock.current_step();
        let g = self.group_width();
        // Per-lane slices of every micro-batch.
        let lane_inputs = split_micro_batches(micro_batches, g)?;
        if pac_telemetry::enabled() {
            for (k, input) in lane_inputs.iter().enumerate() {
                let rows: usize = input.iter().map(|(t, _)| t.len()).sum();
                pac_telemetry::counter_add(&format!("hybrid.lane{k}.rows"), rows as u64);
            }
            pac_telemetry::counter_inc("hybrid.runs");
        }

        // Injection points for this step, logged before the threads start
        // so the timeline reads in causal order.
        let lane_faults: Vec<LaneFaults> = (0..g)
            .map(|k| {
                let panic_stage = clock.lane_panic_stage(step, k);
                if let Some(s) = panic_stage {
                    clock.note(
                        step,
                        TimelineKind::Injected,
                        format!("lane {k} panic at stage {s}"),
                    );
                }
                let delay = clock.straggler_delay(step, k);
                if let Some(d) = delay {
                    clock.note(
                        step,
                        TimelineKind::Injected,
                        format!("lane {k} straggles {}ms", d.as_millis()),
                    );
                }
                LaneFaults {
                    lane: k,
                    step,
                    panic_stage,
                    delay,
                }
            })
            .collect();

        let schedule = self.schedule;
        let lanes = std::mem::take(&mut self.lanes);
        let joined: Vec<EngineResult<(Vec<StageModel>, f32)>> = std::thread::scope(|scope| {
            let handles: Vec<_> = lanes
                .into_iter()
                .zip(lane_inputs)
                .zip(&lane_faults)
                .map(|((stage_chain, input), faults)| {
                    scope.spawn(move || {
                        run_pipeline_supervised(stage_chain, input, schedule, faults)
                            .map(|out| (out.stages, out.loss))
                    })
                })
                .collect();
            handles
                .into_iter()
                .enumerate()
                .map(|(k, h)| match h.join() {
                    Ok(r) => r,
                    Err(payload) => Err(EngineError::LanePanic {
                        lane: k,
                        stage: None,
                        step,
                        message: EngineError::panic_message(payload.as_ref()),
                    }),
                })
                .collect()
        });

        // Keep every surviving replica even when a lane died, so the
        // engine stays usable for recovery; report the most attributable
        // error (a panic over the disconnections it caused).
        let mut error: Option<EngineError> = None;
        let mut lane_losses: Vec<f32> = Vec::with_capacity(g);
        self.lanes = Vec::with_capacity(g);
        for r in joined {
            match r {
                Ok((stages, l)) => {
                    self.lanes.push(stages);
                    lane_losses.push(l);
                }
                Err(e) => {
                    let replace = match (&error, &e) {
                        (None, _) => true,
                        (Some(EngineError::LanePanic { .. }), _) => false,
                        (_, EngineError::LanePanic { .. }) => true,
                        (Some(EngineError::Disconnected { .. }), _) => true,
                        _ => false,
                    };
                    if replace {
                        error = Some(e);
                    }
                }
            }
        }
        if let Some(e) = error {
            return Err(e);
        }

        // Gradient AllReduce, with bounded retry and degrade-to-survivors.
        let (failures, unreachable) = clock.allreduce_fault(step);
        if failures > 0 {
            clock.note(
                step,
                TimelineKind::Injected,
                format!(
                    "AllReduce disturbed for {failures} attempt(s){}",
                    match unreachable {
                        Some(l) => format!(", lane {l} unreachable"),
                        None => String::new(),
                    }
                ),
            );
        }
        let mut retries = 0u32;
        while retries < failures && retries < MAX_ALLREDUCE_RETRIES {
            retries += 1;
            clock.note(
                step,
                TimelineKind::Retry,
                format!("AllReduce attempt {retries} failed, backing off"),
            );
            // Exponential backoff, capped small: real engines wait for the
            // link; tests must not.
            std::thread::sleep(std::time::Duration::from_micros(100 << retries.min(6)));
        }
        let mut dropped_lane = None;
        if failures > retries {
            // Budget exhausted: the collective is permanently broken.
            match unreachable {
                Some(dead) if dead < self.lanes.len() && self.lanes.len() > 1 => {
                    self.lanes.remove(dead);
                    lane_losses.remove(dead);
                    dropped_lane = Some(dead);
                    clock.note(
                        step,
                        TimelineKind::Degraded,
                        format!(
                            "dropped unreachable lane {dead}, averaging over {} survivors",
                            self.lanes.len()
                        ),
                    );
                }
                _ => {
                    return Err(EngineError::AllReduceFailed {
                        step,
                        attempts: retries + 1,
                    });
                }
            }
        }
        {
            let _span = pac_telemetry::span("hybrid.allreduce");
            for s in 0..self.num_stages() {
                let mut group: Vec<&mut StageModel> =
                    self.lanes.iter_mut().map(|lane| &mut lane[s]).collect();
                allreduce_group(&mut group)?;
            }
        }
        let loss = lane_losses.iter().sum::<f32>() / lane_losses.len() as f32;
        Ok(SupervisedOutcome {
            loss,
            step,
            retries,
            dropped_lane,
        })
    }

    /// Zeroes gradients on every replica.
    pub fn zero_grads(&mut self) {
        for lane in &mut self.lanes {
            for s in lane {
                s.zero_grads();
            }
        }
    }

    /// Applies one optimizer step to every replica. After an AllReduce the
    /// replicas hold identical gradients, so identical steps keep them in
    /// sync (asserted in tests).
    ///
    /// # Panics
    /// Panics unless there is exactly one optimizer per (surviving) lane.
    pub fn step(&mut self, opts: &mut [Box<dyn Optimizer>]) {
        assert_eq!(opts.len(), self.lanes.len(), "one optimizer per lane");
        for (lane, opt) in self.lanes.iter_mut().zip(opts.iter_mut()) {
            for s in lane {
                opt.step(s);
            }
        }
    }

    /// Collects lane 0's parameters (the canonical model state).
    pub fn canonical_params(&self) -> Vec<(String, Tensor)> {
        let mut out = Vec::new();
        for s in &self.lanes[0] {
            s.visit_params_ref(&mut |p: &Param| out.push((p.name.clone(), p.value.clone())));
        }
        out
    }
}

/// AllReduce-mean across a group of stage replicas (trainable params only).
///
/// # Errors
/// Returns a tensor error if replicas disagree on parameter shapes.
fn allreduce_group(group: &mut [&mut StageModel]) -> EngineResult<()> {
    let n = group.len();
    if n <= 1 {
        return Ok(());
    }
    let mut sums: Vec<Tensor> = Vec::new();
    let mut shape_err: Option<TensorError> = None;
    for (gi, stage) in group.iter().enumerate() {
        let mut idx = 0usize;
        stage.visit_params_ref(&mut |p| {
            if !p.trainable || shape_err.is_some() {
                return;
            }
            if gi == 0 {
                sums.push(p.grad.clone());
            } else if let Err(e) = sums[idx].add_assign(&p.grad) {
                shape_err = Some(e);
            }
            idx += 1;
        });
    }
    if let Some(e) = shape_err {
        return Err(EngineError::Tensor(e));
    }
    let inv = 1.0 / n as f32;
    for s in &mut sums {
        s.scale_in_place(inv);
    }
    if pac_telemetry::enabled() {
        // Logical comms volume: every lane ships its full gradient set into
        // the reduction (what a ring AllReduce moves, up to the 2(n−1)/n
        // factor accounted in the cost model).
        let payload: usize = sums.iter().map(Tensor::size_bytes).sum();
        pac_telemetry::counter_add("allreduce.bytes", (payload * n) as u64);
        pac_telemetry::counter_inc("allreduce.reductions");
    }
    for stage in group.iter_mut() {
        let mut idx = 0usize;
        stage.visit_params(&mut |p| {
            if !p.trainable {
                return;
            }
            p.grad = sums[idx].clone();
            idx += 1;
        });
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::faults::{Fault, FaultPlan};
    use pac_model::{EncoderModel, ModelConfig};
    use pac_nn::{cross_entropy, Sgd};
    use pac_tensor::rng::seeded;
    use rand::Rng as _;
    use std::collections::HashMap;

    fn model(seed: u64, layers: usize) -> EncoderModel {
        let cfg = ModelConfig::micro(layers, 0, 16, 2);
        EncoderModel::new(&cfg, 2, &mut seeded(seed))
    }

    fn micro_batches(
        seed: u64,
        m: usize,
        b: usize,
        s: usize,
    ) -> Vec<(Vec<Vec<usize>>, Vec<usize>)> {
        let mut rng = seeded(seed);
        (0..m)
            .map(|_| {
                let toks: Vec<Vec<usize>> = (0..b)
                    .map(|_| (0..s).map(|_| rng.gen_range(0..64)).collect())
                    .collect();
                let targets: Vec<usize> = (0..b).map(|_| rng.gen_range(0..2)).collect();
                (toks, targets)
            })
            .collect()
    }

    #[test]
    fn weighted_shares_apportion_exactly() {
        // Equal weights, divisible rows: the even split.
        assert_eq!(weighted_shares(4, &[1.0, 1.0]).unwrap(), vec![2, 2]);
        // Equal weights, ragged rows: leftover goes to the lowest lane.
        assert_eq!(weighted_shares(4, &[1.0, 1.0, 1.0]).unwrap(), vec![2, 1, 1]);
        // A lane twice as fast takes (roughly) twice the rows.
        assert_eq!(weighted_shares(6, &[2.0, 1.0]).unwrap(), vec![4, 2]);
        // The one-row floor: even a very slow lane keeps one row.
        let shares = weighted_shares(8, &[100.0, 1.0]).unwrap();
        assert_eq!(shares.iter().sum::<usize>(), 8);
        assert!(shares[1] >= 1 && shares[0] > shares[1]);
        // Degenerate inputs are typed errors, not panics.
        assert!(weighted_shares(1, &[1.0, 1.0]).is_err());
        assert!(weighted_shares(4, &[]).is_err());
        assert!(weighted_shares(4, &[1.0, 0.0]).is_err());
        assert!(weighted_shares(4, &[1.0, f64::NAN]).is_err());
    }

    #[test]
    fn weighted_split_with_equal_weights_matches_even_split() {
        let mbs = micro_batches(77, 3, 4, 5);
        let even = split_micro_batches(&mbs, 2).unwrap();
        let weighted = split_micro_batches_weighted(&mbs, &[1.0, 1.0]).unwrap();
        assert_eq!(
            even, weighted,
            "equal weights must reproduce the even split"
        );
    }

    #[test]
    fn weighted_split_is_contiguous_and_loses_no_rows() {
        let mbs = micro_batches(78, 2, 5, 3);
        let lanes = split_micro_batches_weighted(&mbs, &[3.0, 1.0]).unwrap();
        for (m, (toks, targets)) in mbs.iter().enumerate() {
            let rejoined_toks: Vec<Vec<usize>> =
                lanes.iter().flat_map(|lane| lane[m].0.clone()).collect();
            let rejoined_targets: Vec<usize> =
                lanes.iter().flat_map(|lane| lane[m].1.clone()).collect();
            assert_eq!(&rejoined_toks, toks, "lane ranges must tile the rows");
            assert_eq!(&rejoined_targets, targets);
        }
    }

    #[test]
    fn hybrid_gradients_match_monolithic() {
        let m = model(230, 4);
        let mbs = micro_batches(231, 2, 4, 5);

        // Monolithic reference.
        let mut mono = m.clone();
        let all_tokens: Vec<Vec<usize>> = mbs.iter().flat_map(|(t, _)| t.clone()).collect();
        let all_targets: Vec<usize> = mbs.iter().flat_map(|(_, t)| t.clone()).collect();
        let (logits, ctx) = mono.forward(&all_tokens).unwrap();
        let (mono_loss, dl) = cross_entropy(&logits, &all_targets).unwrap();
        mono.backward(&ctx, &dl).unwrap();
        let mut mono_grads: HashMap<String, Tensor> = HashMap::new();
        mono.visit_params_ref(&mut |p| {
            mono_grads.insert(p.name.clone(), p.grad.clone());
        });

        // Hybrid: 2 stages × 2 lanes = 4 "devices".
        let stages = m.partition(&[2, 2]).unwrap();
        let mut engine = HybridEngine::new(stages, 2, Schedule::OneFOneB);
        assert_eq!(engine.num_devices(), 4);
        let loss = engine.run_mini_batch(&mbs).unwrap();
        assert!(
            (loss - mono_loss).abs() < 1e-5,
            "loss {loss} vs {mono_loss}"
        );

        for lane in &engine.lanes {
            for stage in lane {
                stage.visit_params_ref(&mut |p| {
                    let mg = &mono_grads[&p.name];
                    assert!(
                        p.grad.approx_eq(mg, 1e-4),
                        "grad mismatch {}: |Δ|={}",
                        p.name,
                        p.grad.sub(mg).unwrap().norm()
                    );
                });
            }
        }
    }

    #[test]
    fn lanes_stay_synchronized_over_training() {
        let m = model(232, 2);
        let stages = m.partition(&[1, 1]).unwrap();
        let mut engine = HybridEngine::new(stages, 2, Schedule::OneFOneB);
        let mut opts: Vec<Box<dyn Optimizer>> =
            vec![Box::new(Sgd::new(0.05)), Box::new(Sgd::new(0.05))];
        for step in 0..3 {
            let mbs = micro_batches(240 + step, 2, 4, 4);
            engine.zero_grads();
            engine.run_mini_batch(&mbs).unwrap();
            engine.step(&mut opts);
        }
        // Lane parameters must agree bitwise after synced SGD steps.
        let lane0: HashMap<String, Tensor> = {
            let mut m = HashMap::new();
            for s in &engine.lanes[0] {
                s.visit_params_ref(&mut |p| {
                    m.insert(p.name.clone(), p.value.clone());
                });
            }
            m
        };
        for s in &engine.lanes[1] {
            s.visit_params_ref(&mut |p| {
                assert!(
                    p.value.approx_eq(&lane0[&p.name], 1e-6),
                    "lane divergence on {}",
                    p.name
                );
            });
        }
    }

    /// Forces every lane's parameter storage to a private copy (the
    /// pre-copy-on-write behavior), for memory/equivalence comparison.
    fn deep_copied(engine: &HybridEngine) -> HybridEngine {
        let mut lanes = engine.lanes.clone();
        for lane in &mut lanes {
            for s in lane {
                s.visit_params(&mut |p| {
                    p.value = Tensor::from_vec(p.value.data().to_vec(), p.value.dims()).unwrap();
                    p.grad = Tensor::from_vec(p.grad.data().to_vec(), p.grad.dims()).unwrap();
                });
            }
        }
        HybridEngine {
            lanes,
            schedule: engine.schedule,
        }
    }

    #[test]
    fn lane_replication_shares_backbone_storage_and_matches_deep_copy() {
        let m = model(246, 2);
        let g = 3usize;
        let single =
            HybridEngine::new(m.clone().partition(&[1, 1]).unwrap(), 1, Schedule::OneFOneB)
                .resident_param_bytes();

        let mut shared = HybridEngine::new(m.partition(&[1, 1]).unwrap(), g, Schedule::OneFOneB);
        // Replication is copy-on-write: three lanes resident at the cost of one.
        assert_eq!(shared.resident_param_bytes(), single);
        let mut deep = deep_copied(&shared);
        assert_eq!(deep.resident_param_bytes(), g * single);

        // Sharing must not change the math: same losses, bitwise-same grads.
        let mbs = micro_batches(247, 2, 3, 4);
        let shared_loss = shared.run_mini_batch(&mbs).unwrap();
        let deep_loss = deep.run_mini_batch(&mbs).unwrap();
        assert_eq!(shared_loss.to_bits(), deep_loss.to_bits());
        for (sl, dl) in shared.lanes.iter().zip(&deep.lanes) {
            for (ss, ds) in sl.iter().zip(dl) {
                let mut deep_grads: Vec<Tensor> = Vec::new();
                ds.visit_params_ref(&mut |p| deep_grads.push(p.grad.clone()));
                let mut idx = 0;
                ss.visit_params_ref(&mut |p| {
                    assert!(
                        p.grad.approx_eq(&deep_grads[idx], 0.0),
                        "sharing changed gradient bits at param {idx}"
                    );
                    idx += 1;
                });
            }
        }
        // Even after a backward pass the shared engine stays lighter: the
        // untouched parameter values still share one buffer per param.
        assert!(shared.resident_param_bytes() < deep.resident_param_bytes());
    }

    #[test]
    fn uneven_split_is_rejected() {
        let m = model(233, 2);
        let stages = m.partition(&[1, 1]).unwrap();
        let mut engine = HybridEngine::new(stages, 2, Schedule::OneFOneB);
        let mbs = micro_batches(234, 1, 3, 4); // 3 rows, 2 lanes
        assert!(engine.run_mini_batch(&mbs).is_err());
    }

    #[test]
    fn training_reduces_loss() {
        let m = model(235, 2);
        let stages = m.partition(&[1, 1]).unwrap();
        let mut engine = HybridEngine::new(stages, 2, Schedule::OneFOneB);
        let mut opts: Vec<Box<dyn Optimizer>> =
            vec![Box::new(Sgd::new(0.05)), Box::new(Sgd::new(0.05))];
        let mbs = micro_batches(236, 2, 4, 4);
        let mut first = 0.0;
        let mut last = 0.0;
        for step in 0..10 {
            engine.zero_grads();
            let loss = engine.run_mini_batch(&mbs).unwrap();
            if step == 0 {
                first = loss;
            }
            last = loss;
            engine.step(&mut opts);
        }
        assert!(last < first, "first {first} last {last}");
    }

    #[test]
    fn injected_lane_panic_keeps_the_survivors() {
        let m = model(237, 2);
        let stages = m.partition(&[1, 1]).unwrap();
        let mut engine = HybridEngine::new(stages, 3, Schedule::OneFOneB);
        let plan = FaultPlan::none().with(Fault::LanePanic {
            step: 0,
            lane: 1,
            stage: 0,
        });
        let clock = FaultClock::new(plan);
        clock.advance();
        let mbs = micro_batches(238, 2, 3, 4);
        let err = engine
            .run_supervised(&mbs, &clock)
            .expect_err("injected panic must surface");
        assert_eq!(err.lane(), Some(1));
        assert!(err.is_recoverable());
        assert_eq!(engine.group_width(), 2, "dead lane removed, survivors kept");
        // Survivors are structurally intact: a clean retry on the
        // remaining width works (2 lanes divide the 4-row batches evenly).
        engine.zero_grads();
        clock.advance();
        let mbs = micro_batches(239, 2, 4, 4);
        engine.run_supervised(&mbs, &clock).unwrap();
    }

    #[test]
    fn transient_allreduce_retry_is_bitwise_identical() {
        let m = model(240, 2);
        let mbs = micro_batches(241, 2, 4, 4);

        let stages = m.clone().partition(&[1, 1]).unwrap();
        let mut clean = HybridEngine::new(stages, 2, Schedule::OneFOneB);
        clean.run_mini_batch(&mbs).unwrap();

        let stages = m.partition(&[1, 1]).unwrap();
        let mut faulted = HybridEngine::new(stages, 2, Schedule::OneFOneB);
        let plan = FaultPlan::none().with(Fault::AllReduceTransient {
            step: 0,
            failures: 2,
            lane: None,
        });
        let clock = FaultClock::new(plan);
        clock.advance();
        let out = faulted.run_supervised(&mbs, &clock).unwrap();
        assert_eq!(out.retries, 2);
        assert_eq!(out.dropped_lane, None);

        // Retry must not change a single bit of the gradients.
        for (cl, fl) in clean.lanes.iter().zip(&faulted.lanes) {
            for (cs, fs) in cl.iter().zip(fl) {
                let mut clean_grads: Vec<Tensor> = Vec::new();
                cs.visit_params_ref(&mut |p| clean_grads.push(p.grad.clone()));
                let mut idx = 0;
                fs.visit_params_ref(&mut |p| {
                    assert!(
                        p.grad.approx_eq(&clean_grads[idx], 0.0),
                        "retry changed gradient bits at param {idx}"
                    );
                    idx += 1;
                });
            }
        }
    }

    #[test]
    fn exhausted_allreduce_with_unreachable_lane_degrades_and_rescales() {
        let m = model(242, 2);
        let mbs = micro_batches(243, 2, 4, 4);
        let g = 2usize;

        // Monolithic reference over the SURVIVING rows only (lane 1 takes
        // the second half of each micro-batch; lane 0's rows survive).
        let mut mono = m.clone();
        let surviving_tokens: Vec<Vec<usize>> = mbs
            .iter()
            .flat_map(|(t, _)| t[..t.len() / g].to_vec())
            .collect();
        let surviving_targets: Vec<usize> = mbs
            .iter()
            .flat_map(|(_, t)| t[..t.len() / g].to_vec())
            .collect();
        let (logits, ctx) = mono.forward(&surviving_tokens).unwrap();
        let (_, dl) = cross_entropy(&logits, &surviving_targets).unwrap();
        mono.backward(&ctx, &dl).unwrap();
        let mut mono_grads: HashMap<String, Tensor> = HashMap::new();
        mono.visit_params_ref(&mut |p| {
            mono_grads.insert(p.name.clone(), p.grad.clone());
        });

        let stages = m.partition(&[1, 1]).unwrap();
        let mut engine = HybridEngine::new(stages, g, Schedule::OneFOneB);
        let plan = FaultPlan::none().with(Fault::AllReduceTransient {
            step: 0,
            failures: MAX_ALLREDUCE_RETRIES + 5,
            lane: Some(1),
        });
        let clock = FaultClock::new(plan);
        clock.advance();
        let out = engine.run_supervised(&mbs, &clock).unwrap();
        assert_eq!(out.retries, MAX_ALLREDUCE_RETRIES);
        assert_eq!(out.dropped_lane, Some(1));
        assert_eq!(engine.group_width(), 1);

        for stage in &engine.lanes[0] {
            stage.visit_params_ref(&mut |p| {
                if !p.trainable {
                    return;
                }
                let mg = &mono_grads[&p.name];
                assert!(
                    p.grad.approx_eq(mg, 1e-4),
                    "degraded grad mismatch {}: |Δ|={}",
                    p.name,
                    p.grad.sub(mg).unwrap().norm()
                );
            });
        }
    }

    #[test]
    fn exhausted_allreduce_without_suspect_lane_errors_out() {
        let m = model(244, 2);
        let stages = m.partition(&[1, 1]).unwrap();
        let mut engine = HybridEngine::new(stages, 2, Schedule::OneFOneB);
        let plan = FaultPlan::none().with(Fault::AllReduceTransient {
            step: 0,
            failures: MAX_ALLREDUCE_RETRIES + 1,
            lane: None,
        });
        let clock = FaultClock::new(plan);
        clock.advance();
        let mbs = micro_batches(245, 2, 4, 4);
        match engine.run_supervised(&mbs, &clock) {
            Err(EngineError::AllReduceFailed { step, attempts }) => {
                assert_eq!(step, 0);
                assert_eq!(attempts, MAX_ALLREDUCE_RETRIES + 1);
            }
            other => panic!("expected AllReduceFailed, got {other:?}"),
        }
    }
}
