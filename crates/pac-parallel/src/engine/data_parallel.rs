//! Real data-parallel training with AllReduce-style gradient averaging.
//!
//! Each replica ("device") computes gradients on its shard in parallel
//! (Rayon); [`allreduce_mean`] then averages the gradients across replicas
//! and writes the result back into every replica — semantically a ring
//! AllReduce. With equal shard sizes this is bit-for-bit the mean-gradient
//! of the concatenated batch, which the tests verify against single-device
//! training.

use pac_nn::{cross_entropy, mse, Module};
use pac_peft::Tuner;
use pac_tensor::{Result, Tensor, TensorError};
use rayon::prelude::*;

/// Averages trainable gradients across replicas in place (AllReduce-mean).
///
/// Replicas must have identical parameter structure.
///
/// # Panics
/// Panics if replicas disagree on parameter count or shapes.
pub fn allreduce_mean<M: Module>(replicas: &mut [M]) {
    let n = replicas.len();
    if n <= 1 {
        return;
    }
    let _span = pac_telemetry::span("allreduce");
    // Gather.
    let mut sums: Vec<Tensor> = Vec::new();
    {
        let mut first = true;
        for r in replicas.iter() {
            let mut idx = 0usize;
            r.visit_params_ref(&mut |p| {
                if !p.trainable {
                    return;
                }
                if first {
                    sums.push(p.grad.clone());
                } else {
                    sums[idx]
                        .add_assign(&p.grad)
                        .expect("replica gradient shapes must match");
                }
                idx += 1;
            });
            first = false;
        }
    }
    let inv = 1.0 / n as f32;
    for s in &mut sums {
        s.scale_in_place(inv);
    }
    if pac_telemetry::enabled() {
        let payload: usize = sums.iter().map(Tensor::size_bytes).sum();
        pac_telemetry::counter_add("allreduce.bytes", (payload * n) as u64);
        pac_telemetry::counter_inc("allreduce.reductions");
    }
    // Scatter.
    for r in replicas.iter_mut() {
        let mut idx = 0usize;
        r.visit_params(&mut |p| {
            if !p.trainable {
                return;
            }
            p.grad = sums[idx].clone();
            idx += 1;
        });
    }
}

/// One data-parallel step over token shards: each replica computes its
/// shard's gradient concurrently; gradients are then AllReduce-averaged.
///
/// `shards[k]` is `(tokens, class_targets)` for replica `k`. Returns the
/// mean loss across replicas.
///
/// # Errors
/// Returns an error if shard and replica counts differ or any forward
/// fails.
pub fn dp_step_tokens(
    replicas: &mut [Tuner],
    shards: &[(Vec<Vec<usize>>, Vec<usize>)],
) -> Result<f32> {
    if replicas.len() != shards.len() || replicas.is_empty() {
        return Err(TensorError::ShapeMismatch {
            op: "dp_step_tokens",
            lhs: vec![replicas.len()],
            rhs: vec![shards.len()],
        });
    }
    let _span = pac_telemetry::span("dp.step_tokens");
    let losses: Vec<Result<f32>> = replicas
        .par_iter_mut()
        .zip(shards.par_iter())
        .map(|(tuner, (tokens, targets))| {
            let (logits, ctx) = tuner.forward(tokens)?;
            let (loss, dl) = cross_entropy(&logits, targets)?;
            tuner.backward(&ctx, &dl)?;
            Ok(loss)
        })
        .collect();
    let mut total = 0.0f32;
    for l in losses {
        total += l?;
    }
    allreduce_mean(replicas);
    Ok(total / replicas.len() as f32)
}

/// One cache-enabled data-parallel step (PAC epochs ≥ 2, paper §5.2): each
/// replica trains the Parallel-Adapters side network from its shard's
/// cached activations.
///
/// `shards[k]` is `(per-layer cached activations, targets)` for replica
/// `k`; `regression` selects MSE over cross-entropy.
///
/// # Errors
/// Returns an error on count mismatches or if a replica is not a
/// Parallel-Adapters tuner.
pub fn dp_step_cached(
    replicas: &mut [Tuner],
    shards: &[(Vec<Tensor>, Vec<f32>)],
    regression: bool,
) -> Result<f32> {
    if replicas.len() != shards.len() || replicas.is_empty() {
        return Err(TensorError::ShapeMismatch {
            op: "dp_step_cached",
            lhs: vec![replicas.len()],
            rhs: vec![shards.len()],
        });
    }
    let _span = pac_telemetry::span("dp.step_cached");
    let losses: Vec<Result<f32>> = replicas
        .par_iter_mut()
        .zip(shards.par_iter())
        .map(|(tuner, (acts, targets))| {
            let (logits, ctx) = tuner.forward_cached(acts)?;
            let (loss, dl) = if regression {
                let target = Tensor::from_vec(targets.clone(), [targets.len(), 1])?;
                mse(&logits, &target)?
            } else {
                let classes: Vec<usize> = targets.iter().map(|&t| t as usize).collect();
                cross_entropy(&logits, &classes)?
            };
            tuner.backward(&ctx, &dl)?;
            Ok(loss)
        })
        .collect();
    let mut total = 0.0f32;
    for l in losses {
        total += l?;
    }
    allreduce_mean(replicas);
    Ok(total / replicas.len() as f32)
}

/// Redistribution step between PAC phase 1 and phase 2 (paper §5.2):
/// equalizes replica parameters by broadcasting replica 0's trainable
/// values (in a real deployment this is the collective that also ships the
/// activation cache).
pub fn broadcast_params(replicas: &mut [Tuner]) {
    if replicas.len() <= 1 {
        return;
    }
    let mut values: Vec<Tensor> = Vec::new();
    replicas[0].visit_params_ref(&mut |p| {
        if p.trainable {
            values.push(p.value.clone());
        }
    });
    for r in replicas[1..].iter_mut() {
        let mut idx = 0usize;
        r.visit_params(&mut |p| {
            if p.trainable {
                p.value = values[idx].clone();
                idx += 1;
            }
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pac_model::ModelConfig;
    use pac_nn::{Adam, Optimizer};
    use pac_peft::Technique;
    use pac_tensor::rng::seeded;
    use rand::Rng as _;

    fn batch(seed: u64, b: usize, s: usize) -> (Vec<Vec<usize>>, Vec<usize>) {
        let mut rng = seeded(seed);
        let toks = (0..b)
            .map(|_| (0..s).map(|_| rng.gen_range(0..64)).collect())
            .collect();
        let targets = (0..b).map(|_| rng.gen_range(0..2)).collect();
        (toks, targets)
    }

    #[test]
    fn dp_gradients_match_single_device() {
        let cfg = ModelConfig::micro(2, 1, 16, 2);
        let base = Tuner::new(Technique::adapters_default(), &cfg, 2, &mut seeded(210));
        let (tokens, targets) = batch(211, 4, 5);

        // Single device, full batch.
        let mut single = base.clone();
        let (logits, ctx) = single.forward(&tokens).unwrap();
        let (_, dl) = cross_entropy(&logits, &targets).unwrap();
        single.backward(&ctx, &dl).unwrap();
        let mut expected: Vec<Tensor> = Vec::new();
        single.visit_params_ref(&mut |p| {
            if p.trainable {
                expected.push(p.grad.clone());
            }
        });

        // Two replicas, half batch each.
        let mut replicas = vec![base.clone(), base];
        let shards = vec![
            (tokens[..2].to_vec(), targets[..2].to_vec()),
            (tokens[2..].to_vec(), targets[2..].to_vec()),
        ];
        dp_step_tokens(&mut replicas, &shards).unwrap();

        for r in &replicas {
            let mut idx = 0usize;
            r.visit_params_ref(&mut |p| {
                if p.trainable {
                    assert!(
                        p.grad.approx_eq(&expected[idx], 1e-5),
                        "grad {idx} diverged: |Δ|={}",
                        p.grad.sub(&expected[idx]).unwrap().norm()
                    );
                    idx += 1;
                }
            });
        }
    }

    #[test]
    fn replicas_stay_in_sync_across_steps() {
        let cfg = ModelConfig::micro(1, 1, 16, 2);
        let base = Tuner::new(Technique::parallel_default(), &cfg, 2, &mut seeded(212));
        let mut replicas = vec![base.clone(), base.clone(), base];
        let mut opts: Vec<Adam> = (0..3).map(|_| Adam::new(1e-2)).collect();
        for step in 0..3 {
            let shards: Vec<_> = (0..3).map(|k| batch(300 + step * 10 + k, 2, 4)).collect();
            for r in replicas.iter_mut() {
                r.zero_grads();
            }
            dp_step_tokens(&mut replicas, &shards).unwrap();
            for (r, o) in replicas.iter_mut().zip(opts.iter_mut()) {
                o.step(r);
            }
        }
        // All replicas must hold identical parameters after synced steps.
        let mut p0: Vec<Tensor> = Vec::new();
        replicas[0].visit_params_ref(&mut |p| p0.push(p.value.clone()));
        for r in &replicas[1..] {
            let mut idx = 0;
            r.visit_params_ref(&mut |p| {
                assert!(
                    p.value.approx_eq(&p0[idx], 1e-6),
                    "replica diverged at {idx}"
                );
                idx += 1;
            });
        }
    }

    #[test]
    fn cached_dp_trains_parallel_adapters() {
        let cfg = ModelConfig::micro(2, 1, 16, 2);
        let base = Tuner::new(Technique::parallel_default(), &cfg, 2, &mut seeded(213));
        // Build cached activations by running the full forward once.
        let mut warm = base.clone();
        let (t0, y0) = batch(214, 2, 4);
        let (t1, y1) = batch(215, 2, 4);
        let (_, c0) = warm.forward(&t0).unwrap();
        let acts0 = warm.cacheable_acts(&c0).unwrap().to_vec();
        let (_, c1) = warm.forward(&t1).unwrap();
        let acts1 = warm.cacheable_acts(&c1).unwrap().to_vec();

        let mut replicas = vec![base.clone(), base];
        let shards = vec![
            (acts0, y0.iter().map(|&c| c as f32).collect::<Vec<f32>>()),
            (acts1, y1.iter().map(|&c| c as f32).collect::<Vec<f32>>()),
        ];
        let mut losses = Vec::new();
        let mut opts: Vec<Adam> = (0..2).map(|_| Adam::new(1e-2)).collect();
        for _ in 0..10 {
            for r in replicas.iter_mut() {
                r.zero_grads();
            }
            let l = dp_step_cached(&mut replicas, &shards, false).unwrap();
            losses.push(l);
            for (r, o) in replicas.iter_mut().zip(opts.iter_mut()) {
                o.step(r);
            }
        }
        assert!(
            losses.last().unwrap() < &(losses[0] * 0.9),
            "cached DP loss did not drop: {losses:?}"
        );
    }

    #[test]
    fn shard_count_mismatch_is_error() {
        let cfg = ModelConfig::micro(1, 1, 16, 2);
        let base = Tuner::new(Technique::Full, &cfg, 2, &mut seeded(216));
        let mut replicas = vec![base];
        let shards = vec![batch(217, 2, 4), batch(218, 2, 4)];
        assert!(dp_step_tokens(&mut replicas, &shards).is_err());
    }

    #[test]
    fn broadcast_synchronizes_parameters() {
        let cfg = ModelConfig::micro(1, 1, 16, 2);
        let a = Tuner::new(Technique::parallel_default(), &cfg, 2, &mut seeded(219));
        let b = Tuner::new(Technique::parallel_default(), &cfg, 2, &mut seeded(220));
        let mut replicas = vec![a, b];
        broadcast_params(&mut replicas);
        let mut p0: Vec<Tensor> = Vec::new();
        replicas[0].visit_params_ref(&mut |p| {
            if p.trainable {
                p0.push(p.value.clone());
            }
        });
        let mut idx = 0;
        replicas[1].visit_params_ref(&mut |p| {
            if p.trainable {
                assert!(p.value.approx_eq(&p0[idx], 0.0));
                idx += 1;
            }
        });
    }
}
