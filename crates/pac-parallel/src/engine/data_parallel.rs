//! Real data-parallel training with AllReduce-style gradient averaging.
//!
//! Each replica ("device") computes gradients on its shard in parallel
//! (Rayon); [`allreduce_mean`] then averages the gradients across replicas
//! and writes the result back into every replica — semantically a ring
//! AllReduce. With equal shard sizes this is bit-for-bit the mean-gradient
//! of the concatenated batch, which the tests verify against single-device
//! training.
//!
//! Execution is supervised: replica work runs under `catch_unwind`, so a
//! crashing lane surfaces as [`EngineError::LanePanic`] instead of tearing
//! the process down; a disturbed AllReduce is retried up to
//! [`MAX_ALLREDUCE_RETRIES`] times and past the budget degrades to the
//! surviving replicas with correctly rescaled averaging.

use crate::engine::error::{EngineError, EngineResult};
use crate::engine::hybrid::{SupervisedOutcome, MAX_ALLREDUCE_RETRIES};
use crate::faults::{FaultClock, TimelineKind};
use pac_nn::{cross_entropy, mse, Module};
use pac_peft::Tuner;
use pac_tensor::{Tensor, TensorError};
use rayon::prelude::*;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::time::Duration;

/// Per-replica injection context for one supervised step.
struct LaneCtx {
    lane: usize,
    panic: bool,
    delay: Option<Duration>,
}

fn lane_ctxs(n: usize, step: u64, clock: &FaultClock) -> Vec<LaneCtx> {
    (0..n)
        .map(|k| {
            let panic = clock.lane_panic_stage(step, k).is_some();
            if panic {
                clock.note(step, TimelineKind::Injected, format!("lane {k} panics"));
            }
            let delay = clock.straggler_delay(step, k);
            if let Some(d) = delay {
                clock.note(
                    step,
                    TimelineKind::Injected,
                    format!("lane {k} straggles {}ms", d.as_millis()),
                );
            }
            LaneCtx {
                lane: k,
                panic,
                delay,
            }
        })
        .collect()
}

/// Runs one replica's shard compute under `catch_unwind`, applying the
/// lane's injections first.
fn supervised_lane<F>(ctx: &LaneCtx, step: u64, compute: F) -> EngineResult<f32>
where
    F: FnOnce() -> EngineResult<f32>,
{
    if let Some(d) = ctx.delay {
        std::thread::sleep(d);
    }
    let lane = ctx.lane;
    let inject = ctx.panic;
    match catch_unwind(AssertUnwindSafe(|| {
        if inject {
            panic!("injected fault: lane {lane} panics (step {step})");
        }
        compute()
    })) {
        Ok(r) => r,
        Err(payload) => Err(EngineError::LanePanic {
            lane,
            stage: None,
            step,
            message: EngineError::panic_message(payload.as_ref()),
        }),
    }
}

/// Folds per-lane results: losses on success, the most attributable error
/// (a panic beats anything else) on failure.
fn fold_lanes(results: Vec<EngineResult<f32>>) -> EngineResult<Vec<f32>> {
    let mut losses = Vec::with_capacity(results.len());
    let mut error: Option<EngineError> = None;
    for r in results {
        match r {
            Ok(l) => losses.push(l),
            Err(e) => {
                let replace = match (&error, &e) {
                    (None, _) => true,
                    (Some(EngineError::LanePanic { .. }), _) => false,
                    (_, EngineError::LanePanic { .. }) => true,
                    _ => false,
                };
                if replace {
                    error = Some(e);
                }
            }
        }
    }
    match error {
        Some(e) => Err(e),
        None => Ok(losses),
    }
}

/// AllReduce with bounded retry / degrade, shared by both supervised steps.
/// Returns the outcome; on degrade the caller must remove the reported
/// replica (its gradients were excluded and not written back).
fn reduce_supervised(
    replicas: &mut [Tuner],
    lane_losses: &[f32],
    step: u64,
    clock: &FaultClock,
) -> EngineResult<SupervisedOutcome> {
    let (failures, unreachable) = clock.allreduce_fault(step);
    if failures > 0 {
        clock.note(
            step,
            TimelineKind::Injected,
            format!(
                "AllReduce disturbed for {failures} attempt(s){}",
                match unreachable {
                    Some(l) => format!(", lane {l} unreachable"),
                    None => String::new(),
                }
            ),
        );
    }
    let mut retries = 0u32;
    while retries < failures && retries < MAX_ALLREDUCE_RETRIES {
        retries += 1;
        clock.note(
            step,
            TimelineKind::Retry,
            format!("AllReduce attempt {retries} failed, backing off"),
        );
        std::thread::sleep(Duration::from_micros(100 << retries.min(6)));
    }
    let mut dropped_lane = None;
    if failures > retries {
        match unreachable {
            Some(dead) if dead < replicas.len() && replicas.len() > 1 => {
                dropped_lane = Some(dead);
                clock.note(
                    step,
                    TimelineKind::Degraded,
                    format!(
                        "dropped unreachable lane {dead}, averaging over {} survivors",
                        replicas.len() - 1
                    ),
                );
            }
            _ => {
                return Err(EngineError::AllReduceFailed {
                    step,
                    attempts: retries + 1,
                });
            }
        }
    }
    allreduce_mean_excluding(replicas, dropped_lane)?;
    let (sum, count) = lane_losses
        .iter()
        .enumerate()
        .filter(|(k, _)| Some(*k) != dropped_lane)
        .fold((0.0f32, 0usize), |(s, c), (_, l)| (s + l, c + 1));
    Ok(SupervisedOutcome {
        loss: sum / count as f32,
        step,
        retries,
        dropped_lane,
    })
}

/// Averages trainable gradients across replicas in place (AllReduce-mean).
///
/// Replicas must have identical parameter structure.
///
/// # Errors
/// Returns a tensor error if replicas disagree on parameter shapes.
pub fn allreduce_mean<M: Module>(replicas: &mut [M]) -> EngineResult<()> {
    allreduce_mean_excluding(replicas, None)
}

/// [`allreduce_mean`] over the replicas except `skip` (a degraded,
/// unreachable lane): the mean rescales over the k participating replicas
/// and is written back only to them.
///
/// # Errors
/// Returns a tensor error if replicas disagree on parameter shapes.
pub fn allreduce_mean_excluding<M: Module>(
    replicas: &mut [M],
    skip: Option<usize>,
) -> EngineResult<()> {
    let n = replicas.len() - usize::from(skip.is_some_and(|s| s < replicas.len()));
    if n <= 1 {
        return Ok(());
    }
    let _span = pac_telemetry::span("allreduce");
    // Gather.
    let mut sums: Vec<Tensor> = Vec::new();
    let mut shape_err: Option<TensorError> = None;
    {
        let mut first = true;
        for (k, r) in replicas.iter().enumerate() {
            if Some(k) == skip {
                continue;
            }
            let mut idx = 0usize;
            r.visit_params_ref(&mut |p| {
                if !p.trainable || shape_err.is_some() {
                    return;
                }
                if first {
                    sums.push(p.grad.clone());
                } else if let Err(e) = sums[idx].add_assign(&p.grad) {
                    shape_err = Some(e);
                }
                idx += 1;
            });
            first = false;
        }
    }
    if let Some(e) = shape_err {
        return Err(EngineError::Tensor(e));
    }
    let inv = 1.0 / n as f32;
    for s in &mut sums {
        s.scale_in_place(inv);
    }
    if pac_telemetry::enabled() {
        let payload: usize = sums.iter().map(Tensor::size_bytes).sum();
        pac_telemetry::counter_add("allreduce.bytes", (payload * n) as u64);
        pac_telemetry::counter_inc("allreduce.reductions");
    }
    // Scatter.
    for (k, r) in replicas.iter_mut().enumerate() {
        if Some(k) == skip {
            continue;
        }
        let mut idx = 0usize;
        r.visit_params(&mut |p| {
            if !p.trainable {
                return;
            }
            p.grad = sums[idx].clone();
            idx += 1;
        });
    }
    Ok(())
}

/// One data-parallel step over token shards: each replica computes its
/// shard's gradient concurrently; gradients are then AllReduce-averaged.
///
/// `shards[k]` is `(tokens, class_targets)` for replica `k`. Returns the
/// mean loss across replicas.
///
/// # Errors
/// Returns an error if shard and replica counts differ or any forward
/// fails.
pub fn dp_step_tokens(
    replicas: &mut [Tuner],
    shards: &[(Vec<Vec<usize>>, Vec<usize>)],
) -> EngineResult<f32> {
    let clock = FaultClock::quiet();
    clock.advance();
    dp_step_tokens_supervised(replicas, shards, &clock).map(|o| o.loss)
}

/// [`dp_step_tokens`] under a [`FaultClock`]: injects the clock's faults
/// for the current step, catches lane panics, retries/degrades the
/// AllReduce. On `dropped_lane = Some(k)` the caller must remove replica
/// `k` (its gradients were excluded and not written back).
///
/// # Errors
/// [`EngineError::LanePanic`] when a replica dies,
/// [`EngineError::AllReduceFailed`] when the collective exhausts its retry
/// budget with no lane to blame, [`EngineError::Tensor`] on count/shape
/// mismatches.
pub fn dp_step_tokens_supervised(
    replicas: &mut [Tuner],
    shards: &[(Vec<Vec<usize>>, Vec<usize>)],
    clock: &FaultClock,
) -> EngineResult<SupervisedOutcome> {
    if replicas.len() != shards.len() || replicas.is_empty() {
        return Err(EngineError::Tensor(TensorError::ShapeMismatch {
            op: "dp_step_tokens",
            lhs: vec![replicas.len()],
            rhs: vec![shards.len()],
        }));
    }
    let step = clock.current_step();
    let ctxs = lane_ctxs(replicas.len(), step, clock);
    let _span = pac_telemetry::span("dp.step_tokens");
    let results: Vec<EngineResult<f32>> = replicas
        .par_iter_mut()
        .zip(shards.par_iter())
        .zip(ctxs.par_iter())
        .map(|((tuner, (tokens, targets)), ctx)| {
            supervised_lane(ctx, step, || {
                let (logits, fwd) = tuner.forward(tokens)?;
                let (loss, dl) = cross_entropy(&logits, targets)?;
                tuner.backward(&fwd, &dl)?;
                Ok(loss)
            })
        })
        .collect();
    let losses = fold_lanes(results)?;
    reduce_supervised(replicas, &losses, step, clock)
}

/// One cache-enabled data-parallel step (PAC epochs ≥ 2, paper §5.2): each
/// replica trains the Parallel-Adapters side network from its shard's
/// cached activations.
///
/// `shards[k]` is `(per-layer cached activations, targets)` for replica
/// `k`; `regression` selects MSE over cross-entropy.
///
/// # Errors
/// Returns an error on count mismatches or if a replica is not a
/// Parallel-Adapters tuner.
pub fn dp_step_cached(
    replicas: &mut [Tuner],
    shards: &[(Vec<Tensor>, Vec<f32>)],
    regression: bool,
) -> EngineResult<f32> {
    let clock = FaultClock::quiet();
    clock.advance();
    dp_step_cached_supervised(replicas, shards, regression, &clock).map(|o| o.loss)
}

/// [`dp_step_cached`] under a [`FaultClock`]; same supervision contract as
/// [`dp_step_tokens_supervised`].
///
/// # Errors
/// As [`dp_step_tokens_supervised`].
pub fn dp_step_cached_supervised(
    replicas: &mut [Tuner],
    shards: &[(Vec<Tensor>, Vec<f32>)],
    regression: bool,
    clock: &FaultClock,
) -> EngineResult<SupervisedOutcome> {
    if replicas.len() != shards.len() || replicas.is_empty() {
        return Err(EngineError::Tensor(TensorError::ShapeMismatch {
            op: "dp_step_cached",
            lhs: vec![replicas.len()],
            rhs: vec![shards.len()],
        }));
    }
    let step = clock.current_step();
    let ctxs = lane_ctxs(replicas.len(), step, clock);
    let _span = pac_telemetry::span("dp.step_cached");
    let results: Vec<EngineResult<f32>> = replicas
        .par_iter_mut()
        .zip(shards.par_iter())
        .zip(ctxs.par_iter())
        .map(|((tuner, (acts, targets)), ctx)| {
            supervised_lane(ctx, step, || {
                let (logits, fwd) = tuner.forward_cached(acts)?;
                let (loss, dl) = if regression {
                    let target = Tensor::from_vec(targets.clone(), [targets.len(), 1])?;
                    mse(&logits, &target)?
                } else {
                    let classes: Vec<usize> = targets.iter().map(|&t| t as usize).collect();
                    cross_entropy(&logits, &classes)?
                };
                tuner.backward(&fwd, &dl)?;
                Ok(loss)
            })
        })
        .collect();
    let losses = fold_lanes(results)?;
    reduce_supervised(replicas, &losses, step, clock)
}

/// Redistribution step between PAC phase 1 and phase 2 (paper §5.2):
/// equalizes replica parameters by broadcasting replica 0's trainable
/// values (in a real deployment this is the collective that also ships the
/// activation cache).
pub fn broadcast_params(replicas: &mut [Tuner]) {
    if replicas.len() <= 1 {
        return;
    }
    let mut values: Vec<Tensor> = Vec::new();
    replicas[0].visit_params_ref(&mut |p| {
        if p.trainable {
            values.push(p.value.clone());
        }
    });
    for r in replicas[1..].iter_mut() {
        let mut idx = 0usize;
        r.visit_params(&mut |p| {
            if p.trainable {
                p.value = values[idx].clone();
                idx += 1;
            }
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::faults::{Fault, FaultPlan};
    use pac_model::ModelConfig;
    use pac_nn::{Adam, Optimizer};
    use pac_peft::Technique;
    use pac_tensor::rng::seeded;
    use rand::Rng as _;

    fn batch(seed: u64, b: usize, s: usize) -> (Vec<Vec<usize>>, Vec<usize>) {
        let mut rng = seeded(seed);
        let toks = (0..b)
            .map(|_| (0..s).map(|_| rng.gen_range(0..64)).collect())
            .collect();
        let targets = (0..b).map(|_| rng.gen_range(0..2)).collect();
        (toks, targets)
    }

    #[test]
    fn dp_gradients_match_single_device() {
        let cfg = ModelConfig::micro(2, 1, 16, 2);
        let base = Tuner::new(Technique::adapters_default(), &cfg, 2, &mut seeded(210));
        let (tokens, targets) = batch(211, 4, 5);

        // Single device, full batch.
        let mut single = base.clone();
        let (logits, ctx) = single.forward(&tokens).unwrap();
        let (_, dl) = cross_entropy(&logits, &targets).unwrap();
        single.backward(&ctx, &dl).unwrap();
        let mut expected: Vec<Tensor> = Vec::new();
        single.visit_params_ref(&mut |p| {
            if p.trainable {
                expected.push(p.grad.clone());
            }
        });

        // Two replicas, half batch each.
        let mut replicas = vec![base.clone(), base];
        let shards = vec![
            (tokens[..2].to_vec(), targets[..2].to_vec()),
            (tokens[2..].to_vec(), targets[2..].to_vec()),
        ];
        dp_step_tokens(&mut replicas, &shards).unwrap();

        for r in &replicas {
            let mut idx = 0usize;
            r.visit_params_ref(&mut |p| {
                if p.trainable {
                    assert!(
                        p.grad.approx_eq(&expected[idx], 1e-5),
                        "grad {idx} diverged: |Δ|={}",
                        p.grad.sub(&expected[idx]).unwrap().norm()
                    );
                    idx += 1;
                }
            });
        }
    }

    #[test]
    fn replicas_stay_in_sync_across_steps() {
        let cfg = ModelConfig::micro(1, 1, 16, 2);
        let base = Tuner::new(Technique::parallel_default(), &cfg, 2, &mut seeded(212));
        let mut replicas = vec![base.clone(), base.clone(), base];
        let mut opts: Vec<Adam> = (0..3).map(|_| Adam::new(1e-2)).collect();
        for step in 0..3 {
            let shards: Vec<_> = (0..3).map(|k| batch(300 + step * 10 + k, 2, 4)).collect();
            for r in replicas.iter_mut() {
                r.zero_grads();
            }
            dp_step_tokens(&mut replicas, &shards).unwrap();
            for (r, o) in replicas.iter_mut().zip(opts.iter_mut()) {
                o.step(r);
            }
        }
        // All replicas must hold identical parameters after synced steps.
        let mut p0: Vec<Tensor> = Vec::new();
        replicas[0].visit_params_ref(&mut |p| p0.push(p.value.clone()));
        for r in &replicas[1..] {
            let mut idx = 0;
            r.visit_params_ref(&mut |p| {
                assert!(
                    p.value.approx_eq(&p0[idx], 1e-6),
                    "replica diverged at {idx}"
                );
                idx += 1;
            });
        }
    }

    #[test]
    fn cached_dp_trains_parallel_adapters() {
        let cfg = ModelConfig::micro(2, 1, 16, 2);
        let base = Tuner::new(Technique::parallel_default(), &cfg, 2, &mut seeded(213));
        // Build cached activations by running the full forward once.
        let mut warm = base.clone();
        let (t0, y0) = batch(214, 2, 4);
        let (t1, y1) = batch(215, 2, 4);
        let (_, c0) = warm.forward(&t0).unwrap();
        let acts0 = warm.cacheable_acts(&c0).unwrap().to_vec();
        let (_, c1) = warm.forward(&t1).unwrap();
        let acts1 = warm.cacheable_acts(&c1).unwrap().to_vec();

        let mut replicas = vec![base.clone(), base];
        let shards = vec![
            (acts0, y0.iter().map(|&c| c as f32).collect::<Vec<f32>>()),
            (acts1, y1.iter().map(|&c| c as f32).collect::<Vec<f32>>()),
        ];
        let mut losses = Vec::new();
        let mut opts: Vec<Adam> = (0..2).map(|_| Adam::new(1e-2)).collect();
        for _ in 0..10 {
            for r in replicas.iter_mut() {
                r.zero_grads();
            }
            let l = dp_step_cached(&mut replicas, &shards, false).unwrap();
            losses.push(l);
            for (r, o) in replicas.iter_mut().zip(opts.iter_mut()) {
                o.step(r);
            }
        }
        assert!(
            losses.last().unwrap() < &(losses[0] * 0.9),
            "cached DP loss did not drop: {losses:?}"
        );
    }

    #[test]
    fn shard_count_mismatch_is_error() {
        let cfg = ModelConfig::micro(1, 1, 16, 2);
        let base = Tuner::new(Technique::Full, &cfg, 2, &mut seeded(216));
        let mut replicas = vec![base];
        let shards = vec![batch(217, 2, 4), batch(218, 2, 4)];
        assert!(dp_step_tokens(&mut replicas, &shards).is_err());
    }

    #[test]
    fn broadcast_synchronizes_parameters() {
        let cfg = ModelConfig::micro(1, 1, 16, 2);
        let a = Tuner::new(Technique::parallel_default(), &cfg, 2, &mut seeded(219));
        let b = Tuner::new(Technique::parallel_default(), &cfg, 2, &mut seeded(220));
        let mut replicas = vec![a, b];
        broadcast_params(&mut replicas);
        let mut p0: Vec<Tensor> = Vec::new();
        replicas[0].visit_params_ref(&mut |p| {
            if p.trainable {
                p0.push(p.value.clone());
            }
        });
        let mut idx = 0;
        replicas[1].visit_params_ref(&mut |p| {
            if p.trainable {
                assert!(p.value.approx_eq(&p0[idx], 0.0));
                idx += 1;
            }
        });
    }

    #[test]
    fn injected_replica_panic_is_caught_and_attributed() {
        let cfg = ModelConfig::micro(1, 1, 16, 2);
        let base = Tuner::new(Technique::adapters_default(), &cfg, 2, &mut seeded(221));
        let mut replicas = vec![base.clone(), base];
        let shards = vec![batch(222, 2, 4), batch(223, 2, 4)];
        let plan = FaultPlan::none().with(Fault::LanePanic {
            step: 0,
            lane: 1,
            stage: 0,
        });
        let clock = FaultClock::new(plan);
        clock.advance();
        let err = dp_step_tokens_supervised(&mut replicas, &shards, &clock)
            .expect_err("injected panic must surface");
        match err {
            EngineError::LanePanic { lane, message, .. } => {
                assert_eq!(lane, 1);
                assert!(message.contains("injected fault"), "{message}");
            }
            other => panic!("expected LanePanic, got {other}"),
        }
    }

    #[test]
    fn transient_allreduce_retry_is_bitwise_identical() {
        let cfg = ModelConfig::micro(1, 1, 16, 2);
        let base = Tuner::new(Technique::adapters_default(), &cfg, 2, &mut seeded(224));
        let shards = vec![batch(225, 2, 4), batch(226, 2, 4)];

        let mut clean = vec![base.clone(), base.clone()];
        dp_step_tokens(&mut clean, &shards).unwrap();

        let mut faulted = vec![base.clone(), base];
        let plan = FaultPlan::none().with(Fault::AllReduceTransient {
            step: 0,
            failures: 2,
            lane: None,
        });
        let clock = FaultClock::new(plan);
        clock.advance();
        let out = dp_step_tokens_supervised(&mut faulted, &shards, &clock).unwrap();
        assert_eq!(out.retries, 2);
        assert_eq!(out.dropped_lane, None);

        for (c, f) in clean.iter().zip(&faulted) {
            let mut cg: Vec<Tensor> = Vec::new();
            c.visit_params_ref(&mut |p| cg.push(p.grad.clone()));
            let mut idx = 0;
            f.visit_params_ref(&mut |p| {
                assert!(
                    p.grad.approx_eq(&cg[idx], 0.0),
                    "retry changed gradient bits at param {idx}"
                );
                idx += 1;
            });
        }
    }

    #[test]
    fn exhausted_allreduce_degrades_to_survivors() {
        let cfg = ModelConfig::micro(1, 1, 16, 2);
        let base = Tuner::new(Technique::adapters_default(), &cfg, 2, &mut seeded(227));
        let (tokens, targets) = batch(228, 4, 4);

        // Monolithic reference over the surviving (first two) rows.
        let mut mono = base.clone();
        let (logits, ctx) = mono.forward(&tokens[..2]).unwrap();
        let (_, dl) = cross_entropy(&logits, &targets[..2]).unwrap();
        mono.backward(&ctx, &dl).unwrap();
        let mut expected: Vec<Tensor> = Vec::new();
        mono.visit_params_ref(&mut |p| {
            if p.trainable {
                expected.push(p.grad.clone());
            }
        });

        let mut replicas = vec![base.clone(), base];
        let shards = vec![
            (tokens[..2].to_vec(), targets[..2].to_vec()),
            (tokens[2..].to_vec(), targets[2..].to_vec()),
        ];
        let plan = FaultPlan::none().with(Fault::AllReduceTransient {
            step: 0,
            failures: MAX_ALLREDUCE_RETRIES + 2,
            lane: Some(1),
        });
        let clock = FaultClock::new(plan);
        clock.advance();
        let out = dp_step_tokens_supervised(&mut replicas, &shards, &clock).unwrap();
        assert_eq!(out.dropped_lane, Some(1));
        assert_eq!(out.retries, MAX_ALLREDUCE_RETRIES);

        let mut idx = 0usize;
        replicas[0].visit_params_ref(&mut |p| {
            if p.trainable {
                assert!(
                    p.grad.approx_eq(&expected[idx], 1e-5),
                    "degraded grad {idx} diverged"
                );
                idx += 1;
            }
        });
    }
}
