//! Real threaded pipeline-parallel engine with 1F1B scheduling.
//!
//! One OS thread per stage ("device"); bounded crossbeam channels carry
//! activations forward and gradients backward, modeling the LAN links.
//! Every stage executes exactly the op sequence from
//! [`crate::schedule::stage_op_sequence`], so the real engine and the
//! timeline simulator implement the *same* discipline.

use crate::schedule::{stage_op_sequence, Op, Schedule, SimEvent};
use crossbeam::channel::{bounded, Receiver, Sender};
use pac_model::{StageCtx, StageData, StageModel};
use pac_nn::cross_entropy;
use pac_tensor::Tensor;
use std::collections::HashMap;
use std::time::Instant;

/// Result of running one mini-batch through the real pipeline.
#[derive(Debug)]
pub struct PipelineOutcome {
    /// The stages, with gradients accumulated (returned because stage
    /// threads take ownership).
    pub stages: Vec<StageModel>,
    /// Mean loss over micro-batches.
    pub loss: f32,
    /// Per-stage peak retained activation bytes observed (live validation
    /// of the 1F1B memory claim).
    pub peak_act_bytes: Vec<usize>,
    /// Measured timeline of every executed op, in the same format the
    /// simulator emits — start/end are seconds since mini-batch start,
    /// covering compute only (channel waits are idle, sends are comms).
    /// Feed to [`SimResult::from_events`](crate::schedule::SimResult::from_events)
    /// to render or compare against a simulated run.
    pub events: Vec<SimEvent>,
    /// Per-stage total compute time (seconds); `busy / wall_s` is the
    /// stage's utilization.
    pub stage_busy_s: Vec<f64>,
    /// Wall-clock duration of the whole mini-batch (seconds).
    pub wall_s: f64,
}

/// Runs one mini-batch of `micro_batches` through the stage chain with the
/// given schedule. `micro_batches[m]` is `(tokens, class_targets)`; the
/// last stage computes softmax cross-entropy and scales gradients by
/// `1 / M` so the accumulated gradient equals the full-batch mean gradient.
///
/// # Panics
/// Panics if a stage thread panics (gradient-math bugs should fail loudly
/// in tests) or if `stages`/`micro_batches` are empty.
pub fn run_pipeline_mini_batch(
    stages: Vec<StageModel>,
    micro_batches: Vec<(Vec<Vec<usize>>, Vec<usize>)>,
    schedule: Schedule,
) -> PipelineOutcome {
    assert!(!stages.is_empty(), "pipeline needs at least one stage");
    assert!(!micro_batches.is_empty(), "pipeline needs micro-batches");
    let s_n = stages.len();
    let m_n = micro_batches.len();

    // Channel capacity bounds in-flight transfers like a real link buffer.
    let cap = m_n.max(1);
    let mut fwd_txs: Vec<Option<Sender<(usize, StageData)>>> = Vec::new();
    let mut fwd_rxs: Vec<Option<Receiver<(usize, StageData)>>> = vec![None];
    let mut bwd_txs: Vec<Option<Sender<(usize, Tensor)>>> = vec![None];
    let mut bwd_rxs: Vec<Option<Receiver<(usize, Tensor)>>> = Vec::new();
    for _ in 0..s_n - 1 {
        let (ftx, frx) = bounded(cap);
        fwd_txs.push(Some(ftx));
        fwd_rxs.push(Some(frx));
        let (btx, brx) = bounded(cap);
        bwd_txs.push(Some(btx));
        bwd_rxs.push(Some(brx));
    }
    fwd_txs.push(None);
    bwd_rxs.push(None);

    let epoch = Instant::now();
    let results: Vec<(StageModel, f32, usize, Vec<SimEvent>, f64)> = std::thread::scope(|scope| {
        let mut handles = Vec::with_capacity(s_n);
        for (s, mut stage) in stages.into_iter().enumerate() {
            let fwd_tx = fwd_txs[s].take();
            let fwd_rx = fwd_rxs[s].take();
            let bwd_tx = bwd_txs[s].take();
            let bwd_rx = bwd_rxs[s].take();
            // First stage needs the tokens, last stage needs the targets.
            let mb_inputs: Vec<(Vec<Vec<usize>>, Vec<usize>)> = if s == 0 || s == s_n - 1 {
                micro_batches.clone()
            } else {
                Vec::new()
            };
            handles.push(scope.spawn(move || {
                let ops = stage_op_sequence(schedule, s, s_n, m_n);
                let mut ctxs: HashMap<usize, StageCtx> = HashMap::new();
                let mut outputs: HashMap<usize, Tensor> = HashMap::new();
                let mut loss_sum = 0.0f32;
                let mut live_act = 0usize;
                let mut peak_act = 0usize;
                let mut events: Vec<SimEvent> = Vec::with_capacity(2 * m_n);
                let mut busy = 0.0f64;
                for op in ops {
                    match op {
                        Op::F(m) => {
                            let input = if s == 0 {
                                StageData::Tokens(mb_inputs[m].0.clone())
                            } else {
                                let (idx, data) = fwd_rx
                                    .as_ref()
                                    .expect("interior stage has a forward receiver")
                                    .recv()
                                    .expect("upstream stage closed unexpectedly");
                                debug_assert_eq!(idx, m, "forward arrived out of order");
                                data
                            };
                            let t0 = epoch.elapsed().as_secs_f64();
                            let (out, ctx) = stage.forward(input).expect("stage forward failed");
                            let t1 = epoch.elapsed().as_secs_f64();
                            busy += t1 - t0;
                            events.push(SimEvent {
                                stage: s,
                                micro: m,
                                forward: true,
                                start: t0,
                                end: t1,
                            });
                            live_act += ctx.activation_bytes;
                            peak_act = peak_act.max(live_act);
                            ctxs.insert(m, ctx);
                            match out {
                                StageData::Logits(l) => {
                                    outputs.insert(m, l);
                                }
                                other => {
                                    fwd_tx
                                        .as_ref()
                                        .expect("non-final stage has a forward sender")
                                        .send((m, other))
                                        .expect("downstream stage closed unexpectedly");
                                }
                            }
                        }
                        Op::B(m) => {
                            // Receive before the timestamp so channel waits
                            // count as idle; the last stage's loss compute
                            // is part of its backward time.
                            let received = if s == s_n - 1 {
                                None
                            } else {
                                let (idx, g) = bwd_rx
                                    .as_ref()
                                    .expect("non-final stage has a backward receiver")
                                    .recv()
                                    .expect("downstream stage closed unexpectedly");
                                debug_assert_eq!(idx, m, "backward arrived out of order");
                                Some(g)
                            };
                            let t0 = epoch.elapsed().as_secs_f64();
                            let grad = match received {
                                Some(g) => g,
                                None => {
                                    let logits =
                                        outputs.remove(&m).expect("logits missing for backward");
                                    let (loss, dl) = cross_entropy(&logits, &mb_inputs[m].1)
                                        .expect("loss computation failed");
                                    loss_sum += loss;
                                    dl.scale(1.0 / m_n as f32)
                                }
                            };
                            let ctx = ctxs.remove(&m).expect("ctx missing for backward");
                            let upstream =
                                stage.backward(&ctx, &grad).expect("stage backward failed");
                            let t1 = epoch.elapsed().as_secs_f64();
                            busy += t1 - t0;
                            events.push(SimEvent {
                                stage: s,
                                micro: m,
                                forward: false,
                                start: t0,
                                end: t1,
                            });
                            live_act -= ctx.activation_bytes;
                            if let Some(g) = upstream {
                                bwd_tx
                                    .as_ref()
                                    .expect("non-first stage has a backward sender")
                                    .send((m, g))
                                    .expect("upstream stage closed unexpectedly");
                            }
                        }
                    }
                }
                (stage, loss_sum, peak_act, events, busy)
            }));
        }
        handles
            .into_iter()
            .map(|h| h.join().expect("stage thread panicked"))
            .collect()
    });
    let wall_s = epoch.elapsed().as_secs_f64();

    let mut stages_out = Vec::with_capacity(s_n);
    let mut loss = 0.0f32;
    let mut peaks = Vec::with_capacity(s_n);
    let mut events = Vec::with_capacity(2 * s_n * m_n);
    let mut stage_busy_s = Vec::with_capacity(s_n);
    for (s, (stage, l, peak, evs, busy)) in results.into_iter().enumerate() {
        stages_out.push(stage);
        loss += l;
        peaks.push(peak);
        if pac_telemetry::enabled() {
            pac_telemetry::counter_add(&format!("pipeline.stage{s}.busy_ns"), (busy * 1e9) as u64);
            pac_telemetry::counter_add(&format!("pipeline.stage{s}.ops"), evs.len() as u64);
            pac_telemetry::gauge_max(&format!("pipeline.stage{s}.peak_act_bytes"), peak as u64);
        }
        events.extend(evs);
        stage_busy_s.push(busy);
    }
    pac_telemetry::counter_inc("pipeline.runs");
    pac_telemetry::counter_add("pipeline.wall_ns", (wall_s * 1e9) as u64);
    PipelineOutcome {
        stages: stages_out,
        loss: loss / m_n as f32,
        peak_act_bytes: peaks,
        events,
        stage_busy_s,
        wall_s,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pac_model::{EncoderModel, ModelConfig};
    use pac_nn::Module;
    use pac_tensor::rng::seeded;
    use rand::Rng as _;

    fn model(seed: u64, layers: usize) -> EncoderModel {
        let cfg = ModelConfig::micro(layers, 0, 16, 2);
        EncoderModel::new(&cfg, 2, &mut seeded(seed))
    }

    fn micro_batches(
        seed: u64,
        m: usize,
        b: usize,
        s: usize,
    ) -> Vec<(Vec<Vec<usize>>, Vec<usize>)> {
        let mut rng = seeded(seed);
        (0..m)
            .map(|_| {
                let toks: Vec<Vec<usize>> = (0..b)
                    .map(|_| (0..s).map(|_| rng.gen_range(0..64)).collect())
                    .collect();
                let targets: Vec<usize> = (0..b).map(|_| rng.gen_range(0..2)).collect();
                (toks, targets)
            })
            .collect()
    }

    /// Reference: monolithic gradient over the concatenated mini-batch.
    fn monolithic_grads(
        m: &EncoderModel,
        mbs: &[(Vec<Vec<usize>>, Vec<usize>)],
    ) -> (f32, Vec<(String, Tensor)>) {
        let mut model = m.clone();
        let all_tokens: Vec<Vec<usize>> = mbs.iter().flat_map(|(t, _)| t.clone()).collect();
        let all_targets: Vec<usize> = mbs.iter().flat_map(|(_, t)| t.clone()).collect();
        let (logits, ctx) = model.forward(&all_tokens).unwrap();
        let (loss, dl) = cross_entropy(&logits, &all_targets).unwrap();
        model.backward(&ctx, &dl).unwrap();
        let mut grads = Vec::new();
        model.visit_params_ref(&mut |p| grads.push((p.name.clone(), p.grad.clone())));
        (loss, grads)
    }

    fn pipeline_grads(outcome: &PipelineOutcome) -> Vec<(String, Tensor)> {
        let mut grads = Vec::new();
        for s in &outcome.stages {
            s.visit_params_ref(&mut |p| grads.push((p.name.clone(), p.grad.clone())));
        }
        grads
    }

    #[test]
    fn pipeline_gradients_match_monolithic_for_both_schedules() {
        let m = model(200, 4);
        let mbs = micro_batches(201, 4, 2, 5);
        let (mono_loss, mono) = monolithic_grads(&m, &mbs);
        let mono_map: HashMap<String, Tensor> = mono.into_iter().collect();

        for schedule in [Schedule::OneFOneB, Schedule::GPipe] {
            let stages = m.clone().partition(&[2, 2]).unwrap();
            let out = run_pipeline_mini_batch(stages, mbs.clone(), schedule);
            assert!(
                (out.loss - mono_loss).abs() < 1e-5,
                "{schedule:?}: loss {} vs {mono_loss}",
                out.loss
            );
            for (name, g) in pipeline_grads(&out) {
                let mg = &mono_map[&name];
                assert!(
                    g.approx_eq(mg, 1e-4),
                    "{schedule:?}: grad mismatch on {name} (|Δ|={})",
                    g.sub(mg).unwrap().norm()
                );
            }
        }
    }

    #[test]
    fn wave_limited_gpipe_matches_monolithic_and_bounds_memory() {
        // The memory-constrained Eco-FL schedule must be *numerically*
        // identical to the others — it only reorders work.
        let m = model(208, 4);
        let mbs = micro_batches(209, 6, 2, 5);
        let (mono_loss, mono) = monolithic_grads(&m, &mbs);
        let mono_map: HashMap<String, Tensor> = mono.into_iter().collect();
        let stages = m.clone().partition(&[2, 2]).unwrap();
        let out = run_pipeline_mini_batch(stages, mbs.clone(), Schedule::GPipeWave { wave: 2 });
        assert!((out.loss - mono_loss).abs() < 1e-5);
        for (name, g) in pipeline_grads(&out) {
            assert!(g.approx_eq(&mono_map[&name], 1e-4), "{name}");
        }
        // And it must hold fewer activations than unbounded GPipe.
        let stages2 = m.partition(&[2, 2]).unwrap();
        let unbounded = run_pipeline_mini_batch(stages2, mbs, Schedule::GPipe);
        assert!(
            out.peak_act_bytes[0] < unbounded.peak_act_bytes[0],
            "wave {} vs gpipe {}",
            out.peak_act_bytes[0],
            unbounded.peak_act_bytes[0]
        );
    }

    #[test]
    fn deeper_pipelines_still_match() {
        let m = model(202, 4);
        let mbs = micro_batches(203, 3, 2, 4);
        let (_, mono) = monolithic_grads(&m, &mbs);
        let mono_map: HashMap<String, Tensor> = mono.into_iter().collect();
        let stages = m.partition(&[1, 1, 1, 1]).unwrap();
        let out = run_pipeline_mini_batch(stages, mbs, Schedule::OneFOneB);
        for (name, g) in pipeline_grads(&out) {
            assert!(g.approx_eq(&mono_map[&name], 1e-4), "{name}");
        }
    }

    #[test]
    fn one_f_one_b_uses_less_activation_memory_than_gpipe() {
        let m = model(204, 4);
        let mbs = micro_batches(205, 8, 2, 5);
        let s1 = m.clone().partition(&[1, 1, 1, 1]).unwrap();
        let o1 = run_pipeline_mini_batch(s1, mbs.clone(), Schedule::OneFOneB);
        let s2 = m.partition(&[1, 1, 1, 1]).unwrap();
        let o2 = run_pipeline_mini_batch(s2, mbs, Schedule::GPipe);
        // The first stage shows the largest gap: 1F1B keeps ≤ S in flight,
        // GPipe keeps all M = 8.
        assert!(
            o1.peak_act_bytes[0] < o2.peak_act_bytes[0],
            "1F1B {} vs GPipe {}",
            o1.peak_act_bytes[0],
            o2.peak_act_bytes[0]
        );
    }

    #[test]
    fn single_stage_pipeline_degenerates_to_gradient_accumulation() {
        let m = model(206, 2);
        let mbs = micro_batches(207, 3, 2, 4);
        let (mono_loss, mono) = monolithic_grads(&m, &mbs);
        let mono_map: HashMap<String, Tensor> = mono.into_iter().collect();
        let stages = m.partition(&[2]).unwrap();
        let out = run_pipeline_mini_batch(stages, mbs, Schedule::OneFOneB);
        assert!((out.loss - mono_loss).abs() < 1e-5);
        for (name, g) in pipeline_grads(&out) {
            assert!(g.approx_eq(&mono_map[&name], 1e-4), "{name}");
        }
    }
}
