//! Real threaded pipeline-parallel engine with 1F1B scheduling.
//!
//! One OS thread per stage ("device"); bounded crossbeam channels carry
//! activations forward and gradients backward, modeling the LAN links.
//! Every stage executes exactly the op sequence from
//! [`crate::schedule::stage_op_sequence`], so the real engine and the
//! timeline simulator implement the *same* discipline.
//!
//! Execution is supervised: stage threads return typed results, panics are
//! caught at join and attributed to their stage, and a neighbor's death
//! surfaces as [`EngineError::Disconnected`] instead of a cascading panic.

use crate::engine::error::{EngineError, EngineResult};
use crate::schedule::{stage_op_sequence, Op, Schedule, SimEvent};
use crossbeam::channel::{bounded, Receiver, Sender};
use pac_model::{StageCtx, StageData, StageModel};
use pac_nn::cross_entropy;
use pac_tensor::Tensor;
use std::collections::HashMap;
use std::time::{Duration, Instant};

/// Fault-injection instructions for one lane of a pipeline run, produced by
/// a [`FaultClock`](crate::faults::FaultClock) (or
/// [`LaneFaults::none`] for a healthy run).
#[derive(Debug, Clone, Default)]
pub struct LaneFaults {
    /// Lane index, used to attribute errors in multi-lane (hybrid) runs.
    pub lane: usize,
    /// Global step, echoed into errors for the recovery timeline.
    pub step: u64,
    /// Inject a panic when this stage starts the mini-batch.
    pub panic_stage: Option<usize>,
    /// Stall the lane for this long before computing (straggler).
    pub delay: Option<Duration>,
}

impl LaneFaults {
    /// No injection: supervise only.
    pub fn none() -> Self {
        LaneFaults::default()
    }
}

/// Result of running one mini-batch through the real pipeline.
#[derive(Debug)]
pub struct PipelineOutcome {
    /// The stages, with gradients accumulated (returned because stage
    /// threads take ownership).
    pub stages: Vec<StageModel>,
    /// Mean loss over micro-batches.
    pub loss: f32,
    /// Per-stage peak retained activation bytes observed (live validation
    /// of the 1F1B memory claim).
    pub peak_act_bytes: Vec<usize>,
    /// Measured timeline of every executed op, in the same format the
    /// simulator emits — start/end are seconds since mini-batch start,
    /// covering compute only (channel waits are idle, sends are comms).
    /// Feed to [`SimResult::from_events`](crate::schedule::SimResult::from_events)
    /// to render or compare against a simulated run.
    pub events: Vec<SimEvent>,
    /// Per-stage total compute time (seconds); `busy / wall_s` is the
    /// stage's utilization.
    pub stage_busy_s: Vec<f64>,
    /// Wall-clock duration of the whole mini-batch (seconds).
    pub wall_s: f64,
}

/// What one stage execution produces on success — returned by [`run_stage`]
/// whether the stage ran on an in-process thread or a remote worker.
#[derive(Debug)]
pub struct StageRun {
    /// The stage, with gradients accumulated (stage execution takes
    /// ownership so remote workers can keep their replica between steps).
    pub stage: StageModel,
    /// Sum of per-micro-batch losses (nonzero only on the last stage).
    pub loss_sum: f32,
    /// Peak retained activation bytes observed.
    pub peak_act_bytes: usize,
    /// Measured timeline of every executed op (seconds since `epoch`).
    pub events: Vec<SimEvent>,
    /// Total compute time (seconds).
    pub busy_s: f64,
}

/// Transport-generic neighbor links for one pipeline stage.
///
/// [`run_stage`] drives a stage purely through this trait, so the same 1F1B
/// op loop executes over in-process crossbeam channels ([`ChannelLinks`])
/// and over real TCP sockets (`pac-net`) — which is what entitles the
/// distributed engines to claim bitwise equivalence with the in-process
/// ones: the float math is the very same code path, only the bytes' route
/// differs.
///
/// Ordering contract: both neighbors execute complementary deterministic op
/// sequences, so payloads for micro-batch `m` arrive in op order. An
/// implementation may assert the `micro` tag matches.
pub trait StageLinks {
    /// Ships an activation to the next stage.
    ///
    /// # Errors
    /// A typed transport error when the downstream neighbor is gone.
    fn send_fwd(&mut self, micro: usize, data: StageData) -> EngineResult<()>;
    /// Receives an activation from the previous stage.
    ///
    /// # Errors
    /// A typed transport error when the upstream neighbor is gone.
    fn recv_fwd(&mut self, micro: usize) -> EngineResult<StageData>;
    /// Ships a gradient to the previous stage.
    ///
    /// # Errors
    /// A typed transport error when the upstream neighbor is gone.
    fn send_bwd(&mut self, micro: usize, grad: Tensor) -> EngineResult<()>;
    /// Receives a gradient from the next stage.
    ///
    /// # Errors
    /// A typed transport error when the downstream neighbor is gone.
    fn recv_bwd(&mut self, micro: usize) -> EngineResult<Tensor>;
}

/// In-process [`StageLinks`] over bounded crossbeam channels — the original
/// engine transport. A closed channel (dead neighbor) surfaces as
/// [`EngineError::Disconnected`]. Channels are optional per position: stage
/// 0 has no upstream, the last stage no downstream; using a missing link is
/// a scheduler bug and panics (caught and attributed at join).
pub struct ChannelLinks {
    lane: usize,
    stage: usize,
    fwd_tx: Option<Sender<(usize, StageData)>>,
    fwd_rx: Option<Receiver<(usize, StageData)>>,
    bwd_tx: Option<Sender<(usize, Tensor)>>,
    bwd_rx: Option<Receiver<(usize, Tensor)>>,
}

impl ChannelLinks {
    /// Wires a stage's channel endpoints (`None` where the chain ends).
    pub fn new(
        lane: usize,
        stage: usize,
        fwd_tx: Option<Sender<(usize, StageData)>>,
        fwd_rx: Option<Receiver<(usize, StageData)>>,
        bwd_tx: Option<Sender<(usize, Tensor)>>,
        bwd_rx: Option<Receiver<(usize, Tensor)>>,
    ) -> Self {
        ChannelLinks {
            lane,
            stage,
            fwd_tx,
            fwd_rx,
            bwd_tx,
            bwd_rx,
        }
    }

    fn disconnected(&self, micro: usize, forward: bool) -> EngineError {
        EngineError::Disconnected {
            lane: self.lane,
            stage: self.stage,
            micro,
            forward,
        }
    }
}

impl StageLinks for ChannelLinks {
    fn send_fwd(&mut self, micro: usize, data: StageData) -> EngineResult<()> {
        self.fwd_tx
            .as_ref()
            .expect("non-final stage has a forward sender")
            .send((micro, data))
            .map_err(|_| self.disconnected(micro, true))
    }

    fn recv_fwd(&mut self, micro: usize) -> EngineResult<StageData> {
        let (idx, data) = self
            .fwd_rx
            .as_ref()
            .expect("interior stage has a forward receiver")
            .recv()
            .map_err(|_| self.disconnected(micro, true))?;
        debug_assert_eq!(idx, micro, "forward arrived out of order");
        Ok(data)
    }

    fn send_bwd(&mut self, micro: usize, grad: Tensor) -> EngineResult<()> {
        self.bwd_tx
            .as_ref()
            .expect("non-first stage has a backward sender")
            .send((micro, grad))
            .map_err(|_| self.disconnected(micro, false))
    }

    fn recv_bwd(&mut self, micro: usize) -> EngineResult<Tensor> {
        let (idx, g) = self
            .bwd_rx
            .as_ref()
            .expect("non-final stage has a backward receiver")
            .recv()
            .map_err(|_| self.disconnected(micro, false))?;
        debug_assert_eq!(idx, micro, "backward arrived out of order");
        Ok(g)
    }
}

/// Runs one mini-batch of `micro_batches` through the stage chain with the
/// given schedule. `micro_batches[m]` is `(tokens, class_targets)`; the
/// last stage computes softmax cross-entropy and scales gradients by
/// `1 / M` so the accumulated gradient equals the full-batch mean gradient.
///
/// # Errors
/// Returns [`EngineError::LanePanic`] when a stage thread panics (caught at
/// join, never propagated), [`EngineError::Disconnected`] when a stage
/// loses its neighbor, and [`EngineError::Tensor`] on math/shape failures
/// or empty inputs.
pub fn run_pipeline_mini_batch(
    stages: Vec<StageModel>,
    micro_batches: Vec<(Vec<Vec<usize>>, Vec<usize>)>,
    schedule: Schedule,
) -> EngineResult<PipelineOutcome> {
    run_pipeline_supervised(stages, micro_batches, schedule, &LaneFaults::none())
}

/// [`run_pipeline_mini_batch`] with fault injection: the supervised entry
/// point used by the hybrid engine and the fault-injection test suite.
///
/// # Errors
/// As [`run_pipeline_mini_batch`]; injected panics surface as
/// [`EngineError::LanePanic`] with the lane/stage/step from `faults`.
pub fn run_pipeline_supervised(
    stages: Vec<StageModel>,
    micro_batches: Vec<(Vec<Vec<usize>>, Vec<usize>)>,
    schedule: Schedule,
    faults: &LaneFaults,
) -> EngineResult<PipelineOutcome> {
    if stages.is_empty() || micro_batches.is_empty() {
        return Err(EngineError::Tensor(
            pac_tensor::TensorError::ShapeMismatch {
                op: "pipeline needs at least one stage and one micro-batch",
                lhs: vec![stages.len()],
                rhs: vec![micro_batches.len()],
            },
        ));
    }
    let s_n = stages.len();
    let m_n = micro_batches.len();

    // Channel capacity bounds in-flight transfers like a real link buffer.
    let cap = m_n.max(1);
    let mut fwd_txs: Vec<Option<Sender<(usize, StageData)>>> = Vec::new();
    let mut fwd_rxs: Vec<Option<Receiver<(usize, StageData)>>> = vec![None];
    let mut bwd_txs: Vec<Option<Sender<(usize, Tensor)>>> = vec![None];
    let mut bwd_rxs: Vec<Option<Receiver<(usize, Tensor)>>> = Vec::new();
    for _ in 0..s_n - 1 {
        let (ftx, frx) = bounded(cap);
        fwd_txs.push(Some(ftx));
        fwd_rxs.push(Some(frx));
        let (btx, brx) = bounded(cap);
        bwd_txs.push(Some(btx));
        bwd_rxs.push(Some(brx));
    }
    fwd_txs.push(None);
    bwd_rxs.push(None);

    let epoch = Instant::now();
    let joined: Vec<Result<EngineResult<StageRun>, EngineError>> = std::thread::scope(|scope| {
        let mut handles = Vec::with_capacity(s_n);
        for (s, stage) in stages.into_iter().enumerate() {
            let fwd_tx = fwd_txs[s].take();
            let fwd_rx = fwd_rxs[s].take();
            let bwd_tx = bwd_txs[s].take();
            let bwd_rx = bwd_rxs[s].take();
            // First stage needs the tokens, last stage needs the targets.
            let mb_inputs: Vec<(Vec<Vec<usize>>, Vec<usize>)> = if s == 0 || s == s_n - 1 {
                micro_batches.clone()
            } else {
                Vec::new()
            };
            let faults = faults.clone();
            handles.push(scope.spawn(move || {
                let mut links = ChannelLinks::new(faults.lane, s, fwd_tx, fwd_rx, bwd_tx, bwd_rx);
                run_stage(
                    stage, s, s_n, m_n, schedule, &mb_inputs, &mut links, &epoch, &faults,
                )
            }));
        }
        handles
            .into_iter()
            .enumerate()
            .map(|(s, h)| {
                h.join().map_err(|payload| EngineError::LanePanic {
                    lane: faults.lane,
                    stage: Some(s),
                    step: faults.step,
                    message: EngineError::panic_message(payload.as_ref()),
                })
            })
            .collect()
    });
    let wall_s = epoch.elapsed().as_secs_f64();

    // Attribute the root cause: a panic beats a compute error beats the
    // disconnections it caused downstream.
    let mut disconnect: Option<EngineError> = None;
    let mut results: Vec<StageRun> = Vec::with_capacity(s_n);
    for r in joined {
        match r {
            Err(panic) => return Err(panic),
            Ok(Err(e @ EngineError::Disconnected { .. })) => {
                disconnect.get_or_insert(e);
            }
            Ok(Err(e)) => return Err(e),
            Ok(Ok(run)) => results.push(run),
        }
    }
    if let Some(e) = disconnect {
        return Err(e);
    }

    let mut stages_out = Vec::with_capacity(s_n);
    let mut loss = 0.0f32;
    let mut peaks = Vec::with_capacity(s_n);
    let mut events = Vec::with_capacity(2 * s_n * m_n);
    let mut stage_busy_s = Vec::with_capacity(s_n);
    for (s, run) in results.into_iter().enumerate() {
        stages_out.push(run.stage);
        loss += run.loss_sum;
        peaks.push(run.peak_act_bytes);
        if pac_telemetry::enabled() {
            pac_telemetry::counter_add(
                &format!("pipeline.stage{s}.busy_ns"),
                (run.busy_s * 1e9) as u64,
            );
            pac_telemetry::counter_add(&format!("pipeline.stage{s}.ops"), run.events.len() as u64);
            pac_telemetry::gauge_max(
                &format!("pipeline.stage{s}.peak_act_bytes"),
                run.peak_act_bytes as u64,
            );
        }
        events.extend(run.events);
        stage_busy_s.push(run.busy_s);
    }
    pac_telemetry::counter_inc("pipeline.runs");
    pac_telemetry::counter_add("pipeline.wall_ns", (wall_s * 1e9) as u64);
    Ok(PipelineOutcome {
        stages: stages_out,
        loss: loss / m_n as f32,
        peak_act_bytes: peaks,
        events,
        stage_busy_s,
        wall_s,
    })
}

/// Executes one stage's full op sequence for a mini-batch, exchanging
/// activations/gradients with its neighbors through `links`. This is the
/// single implementation of the per-stage 1F1B discipline: the in-process
/// engine runs it on scoped threads over [`ChannelLinks`], and `pac-net`'s
/// distributed workers run the *same function* over TCP-backed links.
///
/// Transport failures surface as whatever typed error the links produce
/// ([`EngineError::Disconnected`] in-process, `EngineError::RankDown` over
/// sockets); math failures as [`EngineError::Tensor`]. Structural
/// invariants of the op sequence (a context present for every backward,
/// links wired per position) remain `expect`s — a violation is a scheduler
/// bug.
///
/// # Errors
/// Typed transport errors from `links`, [`EngineError::Tensor`] from the
/// stage math.
#[allow(clippy::too_many_arguments)]
pub fn run_stage<L: StageLinks>(
    mut stage: StageModel,
    s: usize,
    s_n: usize,
    m_n: usize,
    schedule: Schedule,
    mb_inputs: &[(Vec<Vec<usize>>, Vec<usize>)],
    links: &mut L,
    epoch: &Instant,
    faults: &LaneFaults,
) -> EngineResult<StageRun> {
    if let (0, Some(delay)) = (s, faults.delay) {
        // Straggler injection: stalling the first stage stalls the lane.
        std::thread::sleep(delay);
    }
    if faults.panic_stage == Some(s) {
        panic!(
            "injected fault: lane {} panics at stage {s} (step {})",
            faults.lane, faults.step
        );
    }
    let ops = stage_op_sequence(schedule, s, s_n, m_n);
    let mut ctxs: HashMap<usize, StageCtx> = HashMap::new();
    let mut outputs: HashMap<usize, Tensor> = HashMap::new();
    let mut loss_sum = 0.0f32;
    let mut live_act = 0usize;
    let mut peak_act = 0usize;
    let mut events: Vec<SimEvent> = Vec::with_capacity(2 * m_n);
    let mut busy = 0.0f64;
    for op in ops {
        match op {
            Op::F(m) => {
                let input = if s == 0 {
                    StageData::Tokens(mb_inputs[m].0.clone())
                } else {
                    links.recv_fwd(m)?
                };
                let t0 = epoch.elapsed().as_secs_f64();
                let (out, ctx) = stage.forward(input)?;
                let t1 = epoch.elapsed().as_secs_f64();
                busy += t1 - t0;
                events.push(SimEvent {
                    stage: s,
                    micro: m,
                    forward: true,
                    start: t0,
                    end: t1,
                });
                live_act += ctx.activation_bytes;
                peak_act = peak_act.max(live_act);
                ctxs.insert(m, ctx);
                match out {
                    StageData::Logits(l) => {
                        outputs.insert(m, l);
                    }
                    other => links.send_fwd(m, other)?,
                }
            }
            Op::B(m) => {
                // Receive before the timestamp so channel waits
                // count as idle; the last stage's loss compute
                // is part of its backward time.
                let received = if s == s_n - 1 {
                    None
                } else {
                    Some(links.recv_bwd(m)?)
                };
                let t0 = epoch.elapsed().as_secs_f64();
                let grad = match received {
                    Some(g) => g,
                    None => {
                        let logits = outputs.remove(&m).expect("logits missing for backward");
                        let (loss, dl) = cross_entropy(&logits, &mb_inputs[m].1)?;
                        loss_sum += loss;
                        dl.scale(1.0 / m_n as f32)
                    }
                };
                let ctx = ctxs.remove(&m).expect("ctx missing for backward");
                let upstream = stage.backward(&ctx, &grad)?;
                let t1 = epoch.elapsed().as_secs_f64();
                busy += t1 - t0;
                events.push(SimEvent {
                    stage: s,
                    micro: m,
                    forward: false,
                    start: t0,
                    end: t1,
                });
                live_act -= ctx.activation_bytes;
                ctx.recycle();
                pac_tensor::scratch::put(grad);
                if let Some(g) = upstream {
                    links.send_bwd(m, g)?;
                }
            }
        }
    }
    Ok(StageRun {
        stage,
        loss_sum,
        peak_act_bytes: peak_act,
        events,
        busy_s: busy,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use pac_model::{EncoderModel, ModelConfig};
    use pac_nn::Module;
    use pac_tensor::rng::seeded;
    use rand::Rng as _;

    fn model(seed: u64, layers: usize) -> EncoderModel {
        let cfg = ModelConfig::micro(layers, 0, 16, 2);
        EncoderModel::new(&cfg, 2, &mut seeded(seed))
    }

    fn micro_batches(
        seed: u64,
        m: usize,
        b: usize,
        s: usize,
    ) -> Vec<(Vec<Vec<usize>>, Vec<usize>)> {
        let mut rng = seeded(seed);
        (0..m)
            .map(|_| {
                let toks: Vec<Vec<usize>> = (0..b)
                    .map(|_| (0..s).map(|_| rng.gen_range(0..64)).collect())
                    .collect();
                let targets: Vec<usize> = (0..b).map(|_| rng.gen_range(0..2)).collect();
                (toks, targets)
            })
            .collect()
    }

    /// Reference: monolithic gradient over the concatenated mini-batch.
    fn monolithic_grads(
        m: &EncoderModel,
        mbs: &[(Vec<Vec<usize>>, Vec<usize>)],
    ) -> (f32, Vec<(String, Tensor)>) {
        let mut model = m.clone();
        let all_tokens: Vec<Vec<usize>> = mbs.iter().flat_map(|(t, _)| t.clone()).collect();
        let all_targets: Vec<usize> = mbs.iter().flat_map(|(_, t)| t.clone()).collect();
        let (logits, ctx) = model.forward(&all_tokens).unwrap();
        let (loss, dl) = cross_entropy(&logits, &all_targets).unwrap();
        model.backward(&ctx, &dl).unwrap();
        let mut grads = Vec::new();
        model.visit_params_ref(&mut |p| grads.push((p.name.clone(), p.grad.clone())));
        (loss, grads)
    }

    fn pipeline_grads(outcome: &PipelineOutcome) -> Vec<(String, Tensor)> {
        let mut grads = Vec::new();
        for s in &outcome.stages {
            s.visit_params_ref(&mut |p| grads.push((p.name.clone(), p.grad.clone())));
        }
        grads
    }

    #[test]
    fn pipeline_gradients_match_monolithic_for_both_schedules() {
        let m = model(200, 4);
        let mbs = micro_batches(201, 4, 2, 5);
        let (mono_loss, mono) = monolithic_grads(&m, &mbs);
        let mono_map: HashMap<String, Tensor> = mono.into_iter().collect();

        for schedule in [Schedule::OneFOneB, Schedule::GPipe] {
            let stages = m.clone().partition(&[2, 2]).unwrap();
            let out = run_pipeline_mini_batch(stages, mbs.clone(), schedule).unwrap();
            assert!(
                (out.loss - mono_loss).abs() < 1e-5,
                "{schedule:?}: loss {} vs {mono_loss}",
                out.loss
            );
            for (name, g) in pipeline_grads(&out) {
                let mg = &mono_map[&name];
                assert!(
                    g.approx_eq(mg, 1e-4),
                    "{schedule:?}: grad mismatch on {name} (|Δ|={})",
                    g.sub(mg).unwrap().norm()
                );
            }
        }
    }

    #[test]
    fn wave_limited_gpipe_matches_monolithic_and_bounds_memory() {
        // The memory-constrained Eco-FL schedule must be *numerically*
        // identical to the others — it only reorders work.
        let m = model(208, 4);
        let mbs = micro_batches(209, 6, 2, 5);
        let (mono_loss, mono) = monolithic_grads(&m, &mbs);
        let mono_map: HashMap<String, Tensor> = mono.into_iter().collect();
        let stages = m.clone().partition(&[2, 2]).unwrap();
        let out =
            run_pipeline_mini_batch(stages, mbs.clone(), Schedule::GPipeWave { wave: 2 }).unwrap();
        assert!((out.loss - mono_loss).abs() < 1e-5);
        for (name, g) in pipeline_grads(&out) {
            assert!(g.approx_eq(&mono_map[&name], 1e-4), "{name}");
        }
        // And it must hold fewer activations than unbounded GPipe.
        let stages2 = m.partition(&[2, 2]).unwrap();
        let unbounded = run_pipeline_mini_batch(stages2, mbs, Schedule::GPipe).unwrap();
        assert!(
            out.peak_act_bytes[0] < unbounded.peak_act_bytes[0],
            "wave {} vs gpipe {}",
            out.peak_act_bytes[0],
            unbounded.peak_act_bytes[0]
        );
    }

    #[test]
    fn deeper_pipelines_still_match() {
        let m = model(202, 4);
        let mbs = micro_batches(203, 3, 2, 4);
        let (_, mono) = monolithic_grads(&m, &mbs);
        let mono_map: HashMap<String, Tensor> = mono.into_iter().collect();
        let stages = m.partition(&[1, 1, 1, 1]).unwrap();
        let out = run_pipeline_mini_batch(stages, mbs, Schedule::OneFOneB).unwrap();
        for (name, g) in pipeline_grads(&out) {
            assert!(g.approx_eq(&mono_map[&name], 1e-4), "{name}");
        }
    }

    #[test]
    fn one_f_one_b_uses_less_activation_memory_than_gpipe() {
        let m = model(204, 4);
        let mbs = micro_batches(205, 8, 2, 5);
        let s1 = m.clone().partition(&[1, 1, 1, 1]).unwrap();
        let o1 = run_pipeline_mini_batch(s1, mbs.clone(), Schedule::OneFOneB).unwrap();
        let s2 = m.partition(&[1, 1, 1, 1]).unwrap();
        let o2 = run_pipeline_mini_batch(s2, mbs, Schedule::GPipe).unwrap();
        // The first stage shows the largest gap: 1F1B keeps ≤ S in flight,
        // GPipe keeps all M = 8.
        assert!(
            o1.peak_act_bytes[0] < o2.peak_act_bytes[0],
            "1F1B {} vs GPipe {}",
            o1.peak_act_bytes[0],
            o2.peak_act_bytes[0]
        );
    }

    #[test]
    fn single_stage_pipeline_degenerates_to_gradient_accumulation() {
        let m = model(206, 2);
        let mbs = micro_batches(207, 3, 2, 4);
        let (mono_loss, mono) = monolithic_grads(&m, &mbs);
        let mono_map: HashMap<String, Tensor> = mono.into_iter().collect();
        let stages = m.partition(&[2]).unwrap();
        let out = run_pipeline_mini_batch(stages, mbs, Schedule::OneFOneB).unwrap();
        assert!((out.loss - mono_loss).abs() < 1e-5);
        for (name, g) in pipeline_grads(&out) {
            assert!(g.approx_eq(&mono_map[&name], 1e-4), "{name}");
        }
    }

    #[test]
    fn injected_stage_panic_is_caught_and_attributed() {
        let m = model(210, 4);
        let mbs = micro_batches(211, 3, 2, 4);
        let stages = m.partition(&[1, 1, 1, 1]).unwrap();
        let faults = LaneFaults {
            lane: 3,
            step: 9,
            panic_stage: Some(2),
            delay: None,
        };
        let err = run_pipeline_supervised(stages, mbs, Schedule::OneFOneB, &faults)
            .expect_err("injected panic must fail the run");
        match err {
            EngineError::LanePanic {
                lane,
                stage,
                step,
                message,
            } => {
                assert_eq!(lane, 3);
                assert_eq!(stage, Some(2));
                assert_eq!(step, 9);
                assert!(message.contains("injected fault"), "{message}");
            }
            other => panic!("expected LanePanic, got {other}"),
        }
    }

    #[test]
    fn straggler_delay_slows_but_does_not_corrupt() {
        let m = model(212, 2);
        let mbs = micro_batches(213, 2, 2, 4);
        let (_, mono) = monolithic_grads(&m, &mbs);
        let mono_map: HashMap<String, Tensor> = mono.into_iter().collect();
        let stages = m.partition(&[1, 1]).unwrap();
        let faults = LaneFaults {
            delay: Some(Duration::from_millis(30)),
            ..LaneFaults::none()
        };
        let out = run_pipeline_supervised(stages, mbs, Schedule::OneFOneB, &faults).unwrap();
        assert!(
            out.wall_s >= 0.03,
            "stall must show up in wall time: {}",
            out.wall_s
        );
        for (name, g) in pipeline_grads(&out) {
            assert!(g.approx_eq(&mono_map[&name], 1e-4), "{name}");
        }
    }

    #[test]
    fn empty_inputs_are_typed_errors_not_panics() {
        let m = model(214, 2);
        let stages = m.partition(&[1, 1]).unwrap();
        assert!(run_pipeline_mini_batch(stages, Vec::new(), Schedule::OneFOneB).is_err());
        let mbs = micro_batches(215, 1, 2, 4);
        assert!(run_pipeline_mini_batch(Vec::new(), mbs, Schedule::OneFOneB).is_err());
    }
}
