//! Typed failures of the real training engines.
//!
//! Engines never let a worker-thread panic escape their public API: lane
//! threads are joined, panics are converted into [`EngineError::LanePanic`]
//! carrying the failing lane/stage, and channel teardown from a neighbor's
//! death surfaces as [`EngineError::Disconnected`]. Callers (the session's
//! recovery loop, tests, benches) decide whether to retry, degrade, replan,
//! or abort.

use pac_tensor::TensorError;
use std::fmt;

/// Result alias for engine operations.
pub type EngineResult<T> = std::result::Result<T, EngineError>;

/// A failure inside a training engine, attributed to its origin.
#[derive(Debug)]
pub enum EngineError {
    /// A lane's worker thread panicked (caught at join, not propagated).
    LanePanic {
        /// Data-parallel lane that died.
        lane: usize,
        /// Pipeline stage inside the lane, when attributable.
        stage: Option<usize>,
        /// Global step of the mini-batch, when known.
        step: u64,
        /// Panic payload rendered as text.
        message: String,
    },
    /// A stage lost its neighbor mid-batch (channel closed): the usual
    /// downstream symptom of a [`EngineError::LanePanic`] elsewhere.
    Disconnected {
        /// Lane the disconnection was observed in.
        lane: usize,
        /// Stage that observed the closed channel.
        stage: usize,
        /// Micro-batch being exchanged.
        micro: usize,
        /// True if the forward link broke, false for the backward link.
        forward: bool,
    },
    /// A remote peer became unreachable over a real transport (socket EOF,
    /// connection reset, or a read timeout): the distributed analogue of
    /// [`EngineError::Disconnected`], attributed to the world rank that
    /// stopped answering.
    RankDown {
        /// World rank of the peer that went away.
        rank: usize,
        /// Data-parallel lane that rank belonged to.
        lane: usize,
        /// Pipeline stage of that rank, when attributable.
        stage: Option<usize>,
        /// Global step during which contact was lost.
        step: u64,
        /// Human-readable transport diagnosis (EOF vs timeout vs reset).
        detail: String,
    },
    /// The gradient AllReduce failed every attempt of the bounded retry.
    AllReduceFailed {
        /// Global step whose collective failed.
        step: u64,
        /// Attempts made (1 initial + retries).
        attempts: u32,
    },
    /// Recovery is impossible: no lanes/devices left to run on.
    NoSurvivors,
    /// The planner found no feasible plan for the surviving devices.
    Unplannable {
        /// Number of surviving devices.
        survivors: usize,
    },
    /// A tensor-math error (shape mismatch, numerically invalid input).
    Tensor(TensorError),
    /// The run was halted from outside the engine mid-step — the durable
    /// checkpoint writer died (crash-point injection or a real storage
    /// failure), so training state past the last committed snapshot is
    /// gone. Recovery is a *cold restart* replaying the store, not an
    /// in-process replan.
    Halted {
        /// Global step during which the run was halted.
        step: u64,
        /// What killed it (e.g. the store's crash diagnosis).
        detail: String,
    },
}

impl fmt::Display for EngineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EngineError::LanePanic {
                lane,
                stage,
                step,
                message,
            } => match stage {
                Some(s) => write!(
                    f,
                    "lane {lane} panicked at stage {s} (step {step}): {message}"
                ),
                None => write!(f, "lane {lane} panicked (step {step}): {message}"),
            },
            EngineError::Disconnected {
                lane,
                stage,
                micro,
                forward,
            } => write!(
                f,
                "lane {lane} stage {stage} lost its {} neighbor at micro-batch {micro}",
                if *forward { "forward" } else { "backward" }
            ),
            EngineError::RankDown {
                rank,
                lane,
                stage,
                step,
                detail,
            } => match stage {
                Some(s) => write!(
                    f,
                    "rank {rank} (lane {lane}, stage {s}) unreachable at step {step}: {detail}"
                ),
                None => write!(
                    f,
                    "rank {rank} (lane {lane}) unreachable at step {step}: {detail}"
                ),
            },
            EngineError::AllReduceFailed { step, attempts } => {
                write!(f, "AllReduce failed {attempts} attempt(s) at step {step}")
            }
            EngineError::NoSurvivors => write!(f, "no surviving lanes to run on"),
            EngineError::Unplannable { survivors } => {
                write!(f, "no feasible plan for {survivors} surviving device(s)")
            }
            EngineError::Tensor(e) => write!(f, "tensor error: {e}"),
            EngineError::Halted { step, detail } => {
                write!(f, "run halted at step {step}: {detail}")
            }
        }
    }
}

impl std::error::Error for EngineError {}

impl From<TensorError> for EngineError {
    fn from(e: TensorError) -> Self {
        EngineError::Tensor(e)
    }
}

impl EngineError {
    /// The lane this error is attributed to, when known.
    pub fn lane(&self) -> Option<usize> {
        match self {
            EngineError::LanePanic { lane, .. }
            | EngineError::Disconnected { lane, .. }
            | EngineError::RankDown { lane, .. } => Some(*lane),
            _ => None,
        }
    }

    /// True for failures a supervisor may recover from by dropping a lane
    /// or replanning (as opposed to programming/shape errors).
    pub fn is_recoverable(&self) -> bool {
        matches!(
            self,
            EngineError::LanePanic { .. }
                | EngineError::Disconnected { .. }
                | EngineError::RankDown { .. }
                | EngineError::AllReduceFailed { .. }
        )
    }

    /// Renders a panic payload from [`std::thread::JoinHandle::join`].
    pub(crate) fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
        if let Some(s) = payload.downcast_ref::<&str>() {
            (*s).to_string()
        } else if let Some(s) = payload.downcast_ref::<String>() {
            s.clone()
        } else {
            "opaque panic payload".to_string()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_carries_lane_and_stage() {
        let e = EngineError::LanePanic {
            lane: 2,
            stage: Some(1),
            step: 7,
            message: "injected".into(),
        };
        let text = e.to_string();
        assert!(text.contains("lane 2"), "{text}");
        assert!(text.contains("stage 1"), "{text}");
        assert!(text.contains("step 7"), "{text}");
        assert_eq!(e.lane(), Some(2));
        assert!(e.is_recoverable());
        assert!(!EngineError::NoSurvivors.is_recoverable());
        assert!(!EngineError::Unplannable { survivors: 1 }.is_recoverable());
    }

    #[test]
    fn rank_down_is_recoverable_and_lane_attributed() {
        let e = EngineError::RankDown {
            rank: 3,
            lane: 1,
            stage: Some(0),
            step: 4,
            detail: "read timed out after 500ms".into(),
        };
        let text = e.to_string();
        assert!(text.contains("rank 3"), "{text}");
        assert!(text.contains("lane 1"), "{text}");
        assert!(text.contains("timed out"), "{text}");
        assert_eq!(e.lane(), Some(1));
        assert!(e.is_recoverable());
    }
}
