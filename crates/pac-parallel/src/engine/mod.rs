//! Real multi-threaded training engines at micro scale.
//!
//! These engines execute actual tensor math on real threads — one thread per
//! simulated device — and are tested for gradient equivalence against
//! single-device training. They demonstrate that the parallel disciplines
//! the timeline simulator models (1F1B pipelining, data-parallel gradient
//! averaging, and their hybrid) are *correct*, not just fast on paper.
//!
//! All engines are *supervised*: worker panics are caught and attributed
//! ([`error::EngineError`]), transient AllReduce failures get bounded
//! retries, and permanent lane loss degrades to the survivors — see
//! [`crate::faults`] for the deterministic injection machinery.

pub mod data_parallel;
pub mod error;
pub mod hybrid;
pub mod pipeline;

pub use data_parallel::{
    allreduce_mean, allreduce_mean_excluding, dp_step_cached, dp_step_cached_supervised,
    dp_step_tokens, dp_step_tokens_supervised,
};
pub use error::{EngineError, EngineResult};
pub use hybrid::{
    split_micro_batches, split_micro_batches_weighted, weighted_shares, HybridEngine, MicroBatch,
    SupervisedOutcome, MAX_ALLREDUCE_RETRIES,
};
pub use pipeline::{
    run_pipeline_mini_batch, run_pipeline_supervised, run_stage, ChannelLinks, LaneFaults,
    PipelineOutcome, StageLinks, StageRun,
};
