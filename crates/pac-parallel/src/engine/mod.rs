//! Real multi-threaded training engines at micro scale.
//!
//! These engines execute actual tensor math on real threads — one thread per
//! simulated device — and are tested for gradient equivalence against
//! single-device training. They demonstrate that the parallel disciplines
//! the timeline simulator models (1F1B pipelining, data-parallel gradient
//! averaging, and their hybrid) are *correct*, not just fast on paper.

pub mod data_parallel;
pub mod hybrid;
pub mod pipeline;

pub use data_parallel::{allreduce_mean, dp_step_cached, dp_step_tokens};
pub use hybrid::HybridEngine;
pub use pipeline::{run_pipeline_mini_batch, PipelineOutcome};
