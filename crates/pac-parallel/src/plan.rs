//! Parallelism plans: how layers map to stages and stages to device groups.

use serde::{Deserialize, Serialize};

/// One pipeline stage's assignment: which layers it holds and which devices
/// replicate it.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct StageAssignment {
    /// Contiguous backbone layer indices `[start, end)` in this stage.
    pub layer_start: usize,
    /// End of the layer range (exclusive).
    pub layer_end: usize,
    /// Indices into the cluster's device list forming this stage's
    /// data-parallel group.
    pub devices: Vec<usize>,
}

impl StageAssignment {
    /// Number of layers in the stage.
    pub fn num_layers(&self) -> usize {
        self.layer_end - self.layer_start
    }

    /// Data-parallel width of the stage.
    pub fn group_size(&self) -> usize {
        self.devices.len()
    }
}

/// A complete hybrid-parallelism plan.
///
/// * One stage holding all layers on one device ⇒ Standalone.
/// * One stage replicated on all devices ⇒ pure data parallelism (EDDL).
/// * `|devices|` single-device stages ⇒ pure pipeline parallelism (Eco-FL).
/// * Anything in between is PAC's hybrid space (paper Figure 6/10).
/// ```
/// use pac_parallel::ParallelPlan;
///
/// let plan = ParallelPlan::pipeline_even(24, 4);   // Eco-FL shape
/// assert_eq!(plan.num_stages(), 4);
/// assert!(plan.validate(24, 4).is_ok());
/// assert_eq!(plan.grouping_string(), "[1N] [1N] [1N] [1N]");
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ParallelPlan {
    /// The stages in pipeline order.
    pub stages: Vec<StageAssignment>,
}

impl ParallelPlan {
    /// Pure data parallelism: every device holds all `layers`.
    pub fn data_parallel(layers: usize, n_devices: usize) -> Self {
        ParallelPlan {
            stages: vec![StageAssignment {
                layer_start: 0,
                layer_end: layers,
                devices: (0..n_devices).collect(),
            }],
        }
    }

    /// Pure pipeline parallelism: `layers` split as evenly as possible over
    /// `n_devices` single-device stages (Eco-FL's "straight pipeline").
    pub fn pipeline_even(layers: usize, n_devices: usize) -> Self {
        let n = n_devices.min(layers).max(1);
        let base = layers / n;
        let extra = layers % n;
        let mut stages = Vec::with_capacity(n);
        let mut start = 0;
        for d in 0..n {
            let count = base + usize::from(d < extra);
            stages.push(StageAssignment {
                layer_start: start,
                layer_end: start + count,
                devices: vec![d],
            });
            start += count;
        }
        ParallelPlan { stages }
    }

    /// Single-device plan.
    pub fn standalone(layers: usize) -> Self {
        Self::data_parallel(layers, 1)
    }

    /// Number of pipeline stages.
    pub fn num_stages(&self) -> usize {
        self.stages.len()
    }

    /// Total devices referenced.
    pub fn num_devices(&self) -> usize {
        self.stages.iter().map(StageAssignment::group_size).sum()
    }

    /// Validates structural invariants: contiguous full layer coverage,
    /// non-empty disjoint device groups.
    pub fn validate(&self, total_layers: usize, n_devices: usize) -> Result<(), String> {
        if self.stages.is_empty() {
            return Err("plan has no stages".into());
        }
        let mut expected_start = 0usize;
        let mut seen = vec![false; n_devices];
        for (i, s) in self.stages.iter().enumerate() {
            if s.layer_start != expected_start {
                return Err(format!(
                    "stage {i}: layers not contiguous (start {} ≠ {expected_start})",
                    s.layer_start
                ));
            }
            if s.layer_end <= s.layer_start {
                return Err(format!("stage {i}: empty layer range"));
            }
            if s.devices.is_empty() {
                return Err(format!("stage {i}: no devices"));
            }
            for &d in &s.devices {
                if d >= n_devices {
                    return Err(format!("stage {i}: device {d} out of range"));
                }
                if seen[d] {
                    return Err(format!("device {d} assigned to multiple stages"));
                }
                seen[d] = true;
            }
            expected_start = s.layer_end;
        }
        if expected_start != total_layers {
            return Err(format!(
                "layers covered {expected_start} ≠ total {total_layers}"
            ));
        }
        Ok(())
    }

    /// Human-readable grouping string in the paper's Figure 10 style, e.g.
    /// `"[2N] [2N]"` for two stages of two Nanos.
    pub fn grouping_string(&self) -> String {
        self.stages
            .iter()
            .map(|s| format!("[{}N]", s.group_size()))
            .collect::<Vec<_>>()
            .join(" ")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn canonical_plans() {
        let dp = ParallelPlan::data_parallel(24, 4);
        assert_eq!(dp.num_stages(), 1);
        assert_eq!(dp.num_devices(), 4);
        assert!(dp.validate(24, 4).is_ok());

        let pp = ParallelPlan::pipeline_even(24, 4);
        assert_eq!(pp.num_stages(), 4);
        assert!(pp.validate(24, 4).is_ok());
        assert!(pp.stages.iter().all(|s| s.num_layers() == 6));

        let st = ParallelPlan::standalone(24);
        assert_eq!(st.num_devices(), 1);
        assert!(st.validate(24, 1).is_ok());
    }

    #[test]
    fn uneven_pipeline_split() {
        let pp = ParallelPlan::pipeline_even(10, 4);
        let counts: Vec<usize> = pp.stages.iter().map(|s| s.num_layers()).collect();
        assert_eq!(counts, vec![3, 3, 2, 2]);
        assert!(pp.validate(10, 4).is_ok());
    }

    #[test]
    fn more_devices_than_layers() {
        let pp = ParallelPlan::pipeline_even(2, 5);
        assert_eq!(pp.num_stages(), 2);
        assert!(pp.validate(2, 5).is_ok());
    }

    #[test]
    fn validation_catches_errors() {
        // Gap in layers.
        let bad = ParallelPlan {
            stages: vec![
                StageAssignment {
                    layer_start: 0,
                    layer_end: 2,
                    devices: vec![0],
                },
                StageAssignment {
                    layer_start: 3,
                    layer_end: 4,
                    devices: vec![1],
                },
            ],
        };
        assert!(bad.validate(4, 2).is_err());

        // Device reuse.
        let reuse = ParallelPlan {
            stages: vec![
                StageAssignment {
                    layer_start: 0,
                    layer_end: 2,
                    devices: vec![0],
                },
                StageAssignment {
                    layer_start: 2,
                    layer_end: 4,
                    devices: vec![0],
                },
            ],
        };
        assert!(reuse.validate(4, 2).is_err());

        // Incomplete coverage.
        let short = ParallelPlan {
            stages: vec![StageAssignment {
                layer_start: 0,
                layer_end: 2,
                devices: vec![0],
            }],
        };
        assert!(short.validate(4, 1).is_err());
    }

    #[test]
    fn grouping_string_matches_fig10_style() {
        let plan = ParallelPlan {
            stages: vec![
                StageAssignment {
                    layer_start: 0,
                    layer_end: 12,
                    devices: vec![0, 1],
                },
                StageAssignment {
                    layer_start: 12,
                    layer_end: 24,
                    devices: vec![2, 3],
                },
            ],
        };
        assert_eq!(plan.grouping_string(), "[2N] [2N]");
    }
}
