//! Cross-tenant pipeline **bubble filling**: when a tenant's 1F1B schedule
//! would leave a stage idle (a pipeline bubble, measured by
//! [`SimResult::bubble_fraction`]), fill the slot with a ready micro-batch
//! from another tenant sharing the frozen backbone.
//!
//! Two layers, mirroring the rest of `pac-parallel`:
//!
//! * [`plan_filled`] — a deterministic work-conserving timeline planner.
//!   Each tenant keeps its *own* per-stage op queue (exactly
//!   [`stage_op_sequence`] under [`Schedule::OneFOneB`]); a shared stage
//!   only ever executes queue **heads**, so per-tenant op order and the
//!   1F1B in-flight bound are preserved *structurally* — they cannot be
//!   violated no matter how slots interleave. [`plan_serialized`] is the
//!   unbatched baseline: the same tenants run back-to-back with a full
//!   flush between them.
//! * [`run_filled_mini_batch`] — a real executor that runs several
//!   tenants' mini-batches through their own [`StageModel`] chains in one
//!   interleaved slot order, with **strictly separate per-tenant gradient
//!   streams**: every tensor a tenant touches lives in that tenant's own
//!   state, so each tenant's loss and accumulated gradients are *bitwise
//!   identical* to its solo
//!   [`run_pipeline_mini_batch`](crate::engine::run_pipeline_mini_batch)
//!   run. The [`SlotLeak`] knob deliberately breaks that isolation at one
//!   slot (a planted bug) so determinism harnesses can prove they would
//!   catch a real one.

use crate::engine::error::{EngineError, EngineResult};
use crate::engine::MicroBatch;
use crate::schedule::{
    simulate_pipeline, stage_op_sequence, Op, Schedule, SimEvent, SimResult, SimStage,
};
use pac_model::{StageCtx, StageData, StageModel};
use pac_nn::cross_entropy;
use pac_tensor::Tensor;
use std::collections::HashMap;

/// One tenant's load for the timeline planner: its per-stage costs (the
/// backbone partition is shared, so every tenant has the same stage
/// *count*, but costs may differ — different adapter ranks, batch shapes)
/// and its micro-batch count.
#[derive(Debug, Clone)]
pub struct TenantLoad {
    /// Per-stage simulated execution parameters.
    pub stages: Vec<SimStage>,
    /// Micro-batches per mini-batch for this tenant.
    pub micros: usize,
}

/// One executed slot in a filled timeline: a [`SimEvent`] plus the tenant
/// that owned the slot.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FilledOp {
    /// Tenant index (position in the planner's input slice).
    pub tenant: usize,
    /// Physical (shared) stage index.
    pub stage: usize,
    /// The tenant's micro-batch id.
    pub micro: usize,
    /// True for forward, false for backward.
    pub forward: bool,
    /// Start time (seconds).
    pub start: f64,
    /// End time (seconds).
    pub end: f64,
}

impl FilledOp {
    fn event(&self) -> SimEvent {
        SimEvent {
            stage: self.stage,
            micro: self.micro,
            forward: self.forward,
            start: self.start,
            end: self.end,
        }
    }
}

/// A planned multi-tenant timeline over one shared stage chain.
#[derive(Debug, Clone)]
pub struct FilledPlan {
    /// Every slot in execution order (nondecreasing start time; dependency
    /// producers always precede their consumers).
    pub ops: Vec<FilledOp>,
    /// The combined timeline over the shared stages — its
    /// `bubble_fraction` is the headline metric bubble filling improves.
    pub combined: SimResult,
    /// Each tenant's own slots replayed in isolation (per-tenant order and
    /// in-flight accounting).
    pub per_tenant: Vec<SimResult>,
}

impl FilledPlan {
    /// Deterministic one-line-per-slot rendering with exact `f64` bits —
    /// two runs of the same plan must produce byte-identical lines, which
    /// is what the simsweep determinism harness diffs.
    pub fn trace_lines(&self) -> Vec<String> {
        self.ops
            .iter()
            .map(|o| {
                format!(
                    "t{} s{} m{} {} {:016x}-{:016x}",
                    o.tenant,
                    o.stage,
                    o.micro,
                    if o.forward { 'F' } else { 'B' },
                    o.start.to_bits(),
                    o.end.to_bits()
                )
            })
            .collect()
    }
}

fn check_loads(tenants: &[TenantLoad]) -> usize {
    assert!(!tenants.is_empty(), "fill plan: no tenants");
    let s_n = tenants[0].stages.len();
    assert!(s_n > 0, "fill plan: no stages");
    for (t, load) in tenants.iter().enumerate() {
        assert_eq!(
            load.stages.len(),
            s_n,
            "fill plan: tenant {t} has a different stage count (the backbone partition is shared)"
        );
        assert!(
            load.micros > 0,
            "fill plan: tenant {t} has no micro-batches"
        );
    }
    s_n
}

fn results_from_ops(ops: &[FilledOp], s_n: usize, t_n: usize) -> (SimResult, Vec<SimResult>) {
    let combined = SimResult::from_events(ops.iter().map(FilledOp::event).collect(), s_n);
    let per_tenant = (0..t_n)
        .map(|t| {
            SimResult::from_events(
                ops.iter()
                    .filter(|o| o.tenant == t)
                    .map(FilledOp::event)
                    .collect(),
                s_n,
            )
        })
        .collect();
    (combined, per_tenant)
}

/// Plans a work-conserving filled timeline: whenever a shared stage is
/// free, it runs the earliest-ready queue head over *all* tenants
/// (ties broken by stage index, then tenant index — fully deterministic).
///
/// Per-tenant op order is `stage_op_sequence(OneFOneB, …)` verbatim, and a
/// tenant's in-flight micro-batches at stage `s` never exceed `S − s`,
/// because only that tenant's own queue heads are ever eligible.
///
/// # Panics
/// Panics on caller bugs: no tenants, zero micro-batches, or mismatched
/// per-tenant stage counts (the backbone partition is shared).
pub fn plan_filled(tenants: &[TenantLoad]) -> FilledPlan {
    let s_n = check_loads(tenants);
    let t_n = tenants.len();

    let seqs: Vec<Vec<Vec<Op>>> = tenants
        .iter()
        .map(|load| {
            (0..s_n)
                .map(|s| stage_op_sequence(Schedule::OneFOneB, s, s_n, load.micros))
                .collect()
        })
        .collect();
    let mut ptr = vec![vec![0usize; s_n]; t_n];
    let mut stage_free = vec![0.0f64; s_n];
    let mut fwd_done: Vec<Vec<Vec<f64>>> = tenants
        .iter()
        .map(|l| vec![vec![f64::NAN; l.micros]; s_n])
        .collect();
    let mut bwd_done = fwd_done.clone();
    let mut ops: Vec<FilledOp> = Vec::new();
    let mut remaining: usize = seqs.iter().flatten().map(Vec::len).sum();

    while remaining > 0 {
        // Globally earliest-start-first: the op picked now can never be
        // beaten by one whose dependency is still pending (that dependency
        // itself starts no earlier).
        let mut best: Option<(f64, usize, usize)> = None;
        for s in 0..s_n {
            for t in 0..t_n {
                if ptr[t][s] >= seqs[t][s].len() {
                    continue;
                }
                let ready = match seqs[t][s][ptr[t][s]] {
                    Op::F(mb) => {
                        if s == 0 {
                            Some(0.0)
                        } else {
                            let d = fwd_done[t][s - 1][mb];
                            (!d.is_nan()).then(|| d + tenants[t].stages[s - 1].send_fwd_s)
                        }
                    }
                    Op::B(mb) => {
                        if s == s_n - 1 {
                            let d = fwd_done[t][s][mb];
                            (!d.is_nan()).then_some(d)
                        } else {
                            let d = bwd_done[t][s + 1][mb];
                            (!d.is_nan()).then(|| d + tenants[t].stages[s + 1].send_bwd_s)
                        }
                    }
                };
                let Some(ready) = ready else { continue };
                let start = ready.max(stage_free[s]);
                if best.is_none_or(|(b, _, _)| start < b) {
                    best = Some((start, s, t));
                }
            }
        }
        let (start, s, t) = best.expect("filled schedule deadlocked (internal bug)");
        let op = seqs[t][s][ptr[t][s]];
        let (micro, forward, dur) = match op {
            Op::F(mb) => (mb, true, tenants[t].stages[s].fwd_s),
            Op::B(mb) => (mb, false, tenants[t].stages[s].bwd_s),
        };
        let end = start + dur;
        stage_free[s] = end;
        match op {
            Op::F(mb) => fwd_done[t][s][mb] = end,
            Op::B(mb) => bwd_done[t][s][mb] = end,
        }
        ops.push(FilledOp {
            tenant: t,
            stage: s,
            micro,
            forward,
            start,
            end,
        });
        ptr[t][s] += 1;
        remaining -= 1;
    }

    pac_telemetry::counter_inc("fill.plans");
    let (combined, per_tenant) = results_from_ops(&ops, s_n, t_n);
    FilledPlan {
        ops,
        combined,
        per_tenant,
    }
}

/// The unbatched baseline: every tenant runs its solo
/// [`simulate_pipeline`] timeline, serialized back-to-back with a full
/// flush between tenants — each tenant's warmup/drain bubbles are paid in
/// full. Bubble filling must beat this plan's `combined.bubble_fraction`.
///
/// # Panics
/// As [`plan_filled`].
pub fn plan_serialized(tenants: &[TenantLoad]) -> FilledPlan {
    let s_n = check_loads(tenants);
    let mut ops: Vec<FilledOp> = Vec::new();
    let mut offset = 0.0f64;
    for (t, load) in tenants.iter().enumerate() {
        let solo = simulate_pipeline(&load.stages, load.micros, Schedule::OneFOneB);
        let mut span = 0.0f64;
        for e in &solo.events {
            ops.push(FilledOp {
                tenant: t,
                stage: e.stage,
                micro: e.micro,
                forward: e.forward,
                start: e.start + offset,
                end: e.end + offset,
            });
            span = span.max(e.end);
        }
        offset += span;
    }
    ops.sort_by(|a, b| {
        a.start
            .total_cmp(&b.start)
            .then(a.stage.cmp(&b.stage))
            .then(a.tenant.cmp(&b.tenant))
    });
    let (combined, per_tenant) = results_from_ops(&ops, s_n, tenants.len());
    FilledPlan {
        ops,
        combined,
        per_tenant,
    }
}

/// One tenant's real workload for [`run_filled_mini_batch`]: its own stage
/// chain (adapters private, frozen backbone shared copy-on-write at the
/// tensor layer) and its own micro-batches.
pub struct FillTenant {
    /// The tenant's pipeline stages, in order. All tenants must have the
    /// same stage count.
    pub stages: Vec<StageModel>,
    /// `(tokens, class_targets)` per micro-batch.
    pub micro_batches: Vec<MicroBatch>,
}

/// A **planted isolation bug** for determinism harnesses: starting at
/// forward-consume slot `from_slot`, the first cross-tenant opportunity
/// delivers the most recent boundary activation produced by *another*
/// tenant in place of the victim's own. The victim's trajectory silently
/// diverges from its solo run — exactly the failure mode the bitwise
/// equivalence checks exist to catch.
#[derive(Debug, Clone, Copy)]
pub struct SlotLeak {
    /// First forward-consume slot (global count of stage>0 forward inputs,
    /// in execution order) at which the leak may fire.
    pub from_slot: usize,
}

/// One tenant's outcome from a filled run.
pub struct FilledOutcome {
    /// The tenant's stages with gradients accumulated.
    pub stages: Vec<StageModel>,
    /// Mean loss over the tenant's micro-batches.
    pub loss: f32,
}

/// Outcome of [`run_filled_mini_batch`] over all tenants.
pub struct FilledRun {
    /// Per-tenant outcomes, in input order.
    pub tenants: Vec<FilledOutcome>,
    /// Which tenant consumed a leaked activation, if a [`SlotLeak`] fired.
    /// Recorded for test assertions only — harnesses must *detect* the
    /// divergence themselves, bitwise, without reading this field.
    pub leak_victim: Option<usize>,
}

struct TenantState {
    stages: Vec<StageModel>,
    ctxs: HashMap<(usize, usize), StageCtx>,
    logits: HashMap<usize, Tensor>,
    fwd_mail: HashMap<(usize, usize), StageData>,
    bwd_mail: HashMap<(usize, usize), Tensor>,
    loss_sum: f32,
}

/// Runs every tenant's mini-batch through its own stage chain in one
/// deterministic interleaved slot order (a unit-cost [`plan_filled`]
/// timeline), on the current thread.
///
/// Per-tenant state — activations, gradients, contexts, logits — is fully
/// disjoint, and each tenant's ops execute in its exact solo 1F1B order
/// with the same math as
/// [`run_stage`](crate::engine::run_stage) (loss scaled by that tenant's
/// own `1 / M`), so every tenant's loss and accumulated gradients are
/// bitwise identical to its solo pipeline run — unless a [`SlotLeak`] is
/// planted.
///
/// # Errors
/// [`EngineError::Tensor`] on empty/mismatched inputs or stage math
/// failures.
pub fn run_filled_mini_batch(
    tenants: Vec<FillTenant>,
    leak: Option<SlotLeak>,
) -> EngineResult<FilledRun> {
    if tenants.is_empty()
        || tenants
            .iter()
            .any(|t| t.stages.is_empty() || t.micro_batches.is_empty())
    {
        return Err(EngineError::Tensor(
            pac_tensor::TensorError::ShapeMismatch {
                op: "filled run needs tenants with at least one stage and one micro-batch",
                lhs: vec![tenants.len()],
                rhs: Vec::new(),
            },
        ));
    }
    let s_n = tenants[0].stages.len();
    if tenants.iter().any(|t| t.stages.len() != s_n) {
        return Err(EngineError::Tensor(
            pac_tensor::TensorError::ShapeMismatch {
                op: "filled run: every tenant must have the same stage count",
                lhs: vec![s_n],
                rhs: tenants.iter().map(|t| t.stages.len()).collect(),
            },
        ));
    }

    // Slot order: a unit-cost plan — compute costs are equal, so the
    // interleaving is decided purely by readiness and the deterministic
    // (stage, tenant) tie-break. Any valid interleaving preserves
    // per-tenant bitwise results; this one is reproducible.
    let loads: Vec<TenantLoad> = tenants
        .iter()
        .map(|t| TenantLoad {
            stages: vec![
                SimStage {
                    fwd_s: 1.0,
                    bwd_s: 1.0,
                    send_fwd_s: 0.0,
                    send_bwd_s: 0.0,
                    weight_bytes: 0,
                    act_bytes_per_mb: 0,
                    fixed_bytes: 0,
                    allreduce_s: 0.0,
                };
                s_n
            ],
            micros: t.micro_batches.len(),
        })
        .collect();
    let plan = plan_filled(&loads);

    let micro_batches: Vec<Vec<MicroBatch>> =
        tenants.iter().map(|t| t.micro_batches.clone()).collect();
    let mut states: Vec<TenantState> = tenants
        .into_iter()
        .map(|t| TenantState {
            stages: t.stages,
            ctxs: HashMap::new(),
            logits: HashMap::new(),
            fwd_mail: HashMap::new(),
            bwd_mail: HashMap::new(),
            loss_sum: 0.0,
        })
        .collect();

    let mut consume_slot = 0usize;
    let mut last_boundary: Option<(usize, StageData)> = None;
    let mut leak_armed = leak;
    let mut leak_victim: Option<usize> = None;

    for op in &plan.ops {
        let (t, s, m) = (op.tenant, op.stage, op.micro);
        let m_n = micro_batches[t].len();
        if op.forward {
            // Leaks target boundary activations — the only cross-stage
            // tensor traffic — so stage-0 token inputs are never affected.
            let input = if s == 0 {
                StageData::Tokens(micro_batches[t][m].0.clone())
            } else {
                let mut chosen = states[t]
                    .fwd_mail
                    .remove(&(s, m))
                    .expect("activation missing for forward (scheduler bug)");
                if let Some(lk) = leak_armed {
                    if consume_slot >= lk.from_slot {
                        if let Some((src, data)) = &last_boundary {
                            if *src != t {
                                // The planted bug: another tenant's
                                // activation crosses the stream boundary.
                                chosen = data.clone();
                                leak_armed = None;
                                leak_victim = Some(t);
                                pac_telemetry::counter_inc("fill.leaks_injected");
                            }
                        }
                    }
                }
                consume_slot += 1;
                chosen
            };
            let st = &mut states[t];
            let (out, ctx) = st.stages[s].forward(input)?;
            st.ctxs.insert((s, m), ctx);
            match out {
                StageData::Logits(l) => {
                    st.logits.insert(m, l);
                }
                other => {
                    if leak_armed.is_some() {
                        last_boundary = Some((t, other.clone()));
                    }
                    st.fwd_mail.insert((s + 1, m), other);
                }
            }
        } else {
            let grad = if s == s_n - 1 {
                let logits = states[t]
                    .logits
                    .remove(&m)
                    .expect("logits missing for backward (scheduler bug)");
                let (loss, dl) = cross_entropy(&logits, &micro_batches[t][m].1)?;
                states[t].loss_sum += loss;
                dl.scale(1.0 / m_n as f32)
            } else {
                states[t]
                    .bwd_mail
                    .remove(&(s, m))
                    .expect("gradient missing for backward (scheduler bug)")
            };
            let st = &mut states[t];
            let ctx = st
                .ctxs
                .remove(&(s, m))
                .expect("ctx missing for backward (scheduler bug)");
            let upstream = st.stages[s].backward(&ctx, &grad)?;
            ctx.recycle();
            pac_tensor::scratch::put(grad);
            if let Some(g) = upstream {
                assert!(s > 0, "first stage produced an upstream gradient");
                st.bwd_mail.insert((s - 1, m), g);
            }
        }
    }

    pac_telemetry::counter_inc("fill.runs");
    let outcomes = states
        .into_iter()
        .enumerate()
        .map(|(t, st)| FilledOutcome {
            stages: st.stages,
            loss: st.loss_sum / micro_batches[t].len() as f32,
        })
        .collect();
    Ok(FilledRun {
        tenants: outcomes,
        leak_victim,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::run_pipeline_mini_batch;
    use pac_model::{EncoderModel, ModelConfig};
    use pac_nn::Module;
    use pac_tensor::rng::seeded;
    use proptest::prelude::*;
    use rand::Rng as _;

    fn uniform(n: usize, fwd: f64, bwd: f64, send: f64) -> Vec<SimStage> {
        vec![
            SimStage {
                fwd_s: fwd,
                bwd_s: bwd,
                send_fwd_s: send,
                send_bwd_s: send,
                weight_bytes: 0,
                act_bytes_per_mb: 0,
                fixed_bytes: 0,
                allreduce_s: 0.0,
            };
            n
        ]
    }

    fn random_loads(seed: u64, t_n: usize, s_n: usize) -> Vec<TenantLoad> {
        let mut rng = seeded(seed);
        (0..t_n)
            .map(|_| TenantLoad {
                stages: (0..s_n)
                    .map(|_| SimStage {
                        fwd_s: 0.1 + rng.gen_range(0..19) as f64 * 0.1,
                        bwd_s: 0.1 + rng.gen_range(0..19) as f64 * 0.1,
                        send_fwd_s: rng.gen_range(0..4) as f64 * 0.05,
                        send_bwd_s: rng.gen_range(0..4) as f64 * 0.05,
                        weight_bytes: 0,
                        act_bytes_per_mb: 0,
                        fixed_bytes: 0,
                        allreduce_s: 0.0,
                    })
                    .collect(),
                micros: 1 + rng.gen_range(0..5usize),
            })
            .collect()
    }

    #[test]
    fn single_tenant_plan_is_bitwise_the_existing_scheduler() {
        for (s_n, m) in [(1, 3), (2, 4), (4, 6)] {
            let stages = uniform(s_n, 1.0, 2.0, 0.1);
            let solo = simulate_pipeline(&stages, m, Schedule::OneFOneB);
            let filled = plan_filled(&[TenantLoad { stages, micros: m }]);
            let mut a: Vec<SimEvent> = solo.events.clone();
            let mut b: Vec<SimEvent> = filled.ops.iter().map(FilledOp::event).collect();
            let key = |e: &SimEvent| (e.start.to_bits(), e.stage, e.micro, e.forward as usize);
            a.sort_by_key(key);
            b.sort_by_key(key);
            assert_eq!(a.len(), b.len());
            for (x, y) in a.iter().zip(&b) {
                assert_eq!(x.stage, y.stage);
                assert_eq!(x.micro, y.micro);
                assert_eq!(x.forward, y.forward);
                assert_eq!(x.start.to_bits(), y.start.to_bits(), "start drifted");
                assert_eq!(x.end.to_bits(), y.end.to_bits(), "end drifted");
            }
            assert_eq!(
                filled.combined.bubble_fraction.to_bits(),
                SimResult::from_events(solo.events.clone(), s_n)
                    .bubble_fraction
                    .to_bits()
            );
        }
    }

    #[test]
    fn filling_two_tenants_beats_the_serialized_baseline() {
        let loads = vec![
            TenantLoad {
                stages: uniform(3, 1.0, 2.0, 0.1),
                micros: 2,
            },
            TenantLoad {
                stages: uniform(3, 1.5, 1.5, 0.1),
                micros: 3,
            },
        ];
        let filled = plan_filled(&loads);
        let serial = plan_serialized(&loads);
        assert!(
            filled.combined.bubble_fraction < serial.combined.bubble_fraction,
            "filled {} vs serialized {}",
            filled.combined.bubble_fraction,
            serial.combined.bubble_fraction
        );
        assert!(filled.combined.makespan_s < serial.combined.makespan_s);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(24))]

        #[test]
        fn filled_plans_preserve_order_bound_and_bubble(
            t_n in 2usize..5,
            s_n in 2usize..5,
            seed in 0u64..10_000,
        ) {
            let loads = random_loads(seed, t_n, s_n);
            let filled = plan_filled(&loads);

            // Determinism: replanning is bitwise identical.
            let again = plan_filled(&loads);
            prop_assert_eq!(filled.trace_lines(), again.trace_lines());

            // No per-tenant reorder: each (tenant, stage) slot subsequence
            // is exactly the tenant's solo 1F1B op sequence.
            for (t, load) in loads.iter().enumerate() {
                for s in 0..s_n {
                    let got: Vec<Op> = filled
                        .ops
                        .iter()
                        .filter(|o| o.tenant == t && o.stage == s)
                        .map(|o| if o.forward { Op::F(o.micro) } else { Op::B(o.micro) })
                        .collect();
                    let want = stage_op_sequence(Schedule::OneFOneB, s, s_n, load.micros);
                    prop_assert_eq!(got, want, "tenant {} stage {} reordered", t, s);
                }
            }

            // 1F1B in-flight bound per tenant: stage s holds at most S - s.
            for t in 0..t_n {
                let mut inflight = vec![0isize; s_n];
                for o in filled.ops.iter().filter(|o| o.tenant == t) {
                    if o.forward {
                        inflight[o.stage] += 1;
                        prop_assert!(
                            inflight[o.stage] as usize <= s_n - o.stage,
                            "tenant {} stage {} holds {}",
                            t, o.stage, inflight[o.stage]
                        );
                    } else {
                        inflight[o.stage] -= 1;
                    }
                }
            }

            // Stage serialization and dependency sanity on the shared chain.
            for s in 0..s_n {
                let evs: Vec<&FilledOp> =
                    filled.ops.iter().filter(|o| o.stage == s).collect();
                for w in evs.windows(2) {
                    prop_assert!(w[1].start >= w[0].end - 1e-12, "overlap on stage {}", s);
                }
            }

            // Filling never bubbles more than the serialized baseline.
            let serial = plan_serialized(&loads);
            prop_assert!(
                filled.combined.bubble_fraction
                    <= serial.combined.bubble_fraction + 1e-9,
                "filled {} > serialized {}",
                filled.combined.bubble_fraction,
                serial.combined.bubble_fraction
            );
        }
    }

    fn model(seed: u64, layers: usize) -> EncoderModel {
        let cfg = ModelConfig::micro(layers, 0, 16, 2);
        EncoderModel::new(&cfg, 2, &mut seeded(seed))
    }

    fn micro_batches(
        seed: u64,
        m: usize,
        b: usize,
        s: usize,
    ) -> Vec<(Vec<Vec<usize>>, Vec<usize>)> {
        let mut rng = seeded(seed);
        (0..m)
            .map(|_| {
                let toks: Vec<Vec<usize>> = (0..b)
                    .map(|_| (0..s).map(|_| rng.gen_range(0..64)).collect())
                    .collect();
                let targets: Vec<usize> = (0..b).map(|_| rng.gen_range(0..2)).collect();
                (toks, targets)
            })
            .collect()
    }

    fn grads(stages: &[StageModel]) -> Vec<(String, Vec<u32>)> {
        let mut out = Vec::new();
        for st in stages {
            st.visit_params_ref(&mut |p| {
                out.push((
                    p.name.clone(),
                    p.grad.data().iter().map(|v| v.to_bits()).collect(),
                ));
            });
        }
        out
    }

    #[test]
    fn filled_execution_is_bitwise_identical_to_each_solo_run() {
        let inputs = [
            (model(300, 4), micro_batches(310, 2, 2, 4)),
            (model(301, 4), micro_batches(311, 3, 2, 4)),
        ];
        let solos: Vec<_> = inputs
            .iter()
            .map(|(m, mbs)| {
                let stages = m.clone().partition(&[2, 2]).unwrap();
                run_pipeline_mini_batch(stages, mbs.clone(), Schedule::OneFOneB).unwrap()
            })
            .collect();
        let tenants: Vec<FillTenant> = inputs
            .iter()
            .map(|(m, mbs)| FillTenant {
                stages: m.clone().partition(&[2, 2]).unwrap(),
                micro_batches: mbs.clone(),
            })
            .collect();
        let run = run_filled_mini_batch(tenants, None).unwrap();
        assert!(run.leak_victim.is_none());
        for (t, (solo, filled)) in solos.iter().zip(&run.tenants).enumerate() {
            assert_eq!(
                solo.loss.to_bits(),
                filled.loss.to_bits(),
                "tenant {t} loss drifted"
            );
            assert_eq!(
                grads(&solo.stages),
                grads(&filled.stages),
                "tenant {t} grads"
            );
        }
    }

    #[test]
    fn planted_slot_leak_poisons_exactly_one_tenant() {
        let inputs = [
            (model(302, 4), micro_batches(312, 2, 2, 4)),
            (model(303, 4), micro_batches(313, 2, 2, 4)),
        ];
        let solos: Vec<_> = inputs
            .iter()
            .map(|(m, mbs)| {
                let stages = m.clone().partition(&[2, 2]).unwrap();
                run_pipeline_mini_batch(stages, mbs.clone(), Schedule::OneFOneB).unwrap()
            })
            .collect();
        let tenants: Vec<FillTenant> = inputs
            .iter()
            .map(|(m, mbs)| FillTenant {
                stages: m.clone().partition(&[2, 2]).unwrap(),
                micro_batches: mbs.clone(),
            })
            .collect();
        let run = run_filled_mini_batch(tenants, Some(SlotLeak { from_slot: 0 })).unwrap();
        let victim = run.leak_victim.expect("leak must fire");
        for (t, (solo, filled)) in solos.iter().zip(&run.tenants).enumerate() {
            let same = grads(&solo.stages) == grads(&filled.stages)
                && solo.loss.to_bits() == filled.loss.to_bits();
            if t == victim {
                assert!(
                    !same,
                    "victim tenant {t} did not diverge — leak had no effect"
                );
            } else {
                assert!(same, "non-victim tenant {t} was contaminated");
            }
        }
    }

    #[test]
    fn mismatched_or_empty_tenants_are_typed_errors() {
        assert!(run_filled_mini_batch(Vec::new(), None).is_err());
        let m = model(304, 2);
        let bad = vec![
            FillTenant {
                stages: m.clone().partition(&[1, 1]).unwrap(),
                micro_batches: micro_batches(314, 1, 2, 4),
            },
            FillTenant {
                stages: m.partition(&[2]).unwrap(),
                micro_batches: micro_batches(315, 1, 2, 4),
            },
        ];
        assert!(run_filled_mini_batch(bad, None).is_err());
    }
}
