//! Deterministic fault injection for the training runtime.
//!
//! PAC fine-tunes on a pool of flaky consumer edge devices, so every
//! recovery path — lane supervision, AllReduce retry, checkpoint + replan —
//! must be exercised by tests that reproduce bit-for-bit. A [`FaultPlan`]
//! is a declarative list of failures pinned to precise injection points
//! (global step, lane, stage); a [`FaultClock`] carries the plan through a
//! run, answers the engines' "does anything fail here?" queries, and logs a
//! recovery timeline that `repro --faults` renders.
//!
//! Plans are seedable two ways: written explicitly (tests pin exact
//! injection points) or generated pseudo-randomly from a seed with
//! [`FaultPlan::scattered`] (soak tests sweep seeds). Both are pure data —
//! no wall-clock, no global RNG — so a plan plus a session seed fully
//! determines a run.
//!
//! The textual schema (accepted by [`FaultPlan::parse`] and `repro
//! --faults`) is `kind@key=value,...` joined by `;`:
//!
//! ```text
//! fail-stop@step=5,device=1
//! lane-panic@step=3,lane=0,stage=1
//! straggler@step=2,lane=1,delay-ms=40
//! allreduce@step=4,failures=2
//! allreduce@step=4,failures=9,lane=1      # unreachable peer: degrade
//! join@step=6                             # a device offers to join
//! crash@step=3,at-byte=17                 # kill the checkpoint writer
//! ```

use serde::{Deserialize, Serialize};
use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::Duration;

/// One injected failure, pinned to a precise point of the run.
///
/// `step` is the global mini-batch index (0-based) counted by the
/// [`FaultClock`]; replayed steps after a checkpoint restore get fresh
/// indices, so a fault fires exactly once.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum Fault {
    /// The lane's worker thread panics when the given stage starts the
    /// mini-batch (models a crashing process / driver fault).
    LanePanic {
        /// Global step at which the panic fires.
        step: u64,
        /// Lane (data-parallel replica) that panics.
        lane: usize,
        /// Pipeline stage inside the lane where the panic is raised.
        stage: usize,
    },
    /// The device leaves the pool permanently before executing this step
    /// (powered off, left the LAN). Recovery requires a replan.
    FailStop {
        /// Global step before which the device disappears.
        step: u64,
        /// Original device index (stable across earlier failures).
        device: usize,
    },
    /// The lane stalls for `delay_ms` before computing this step (thermal
    /// throttling, background load).
    Straggler {
        /// Global step the delay applies to.
        step: u64,
        /// Lane that stalls.
        lane: usize,
        /// Stall duration in milliseconds.
        delay_ms: u64,
    },
    /// The gradient AllReduce at this step fails `failures` consecutive
    /// attempts before succeeding. If `failures` exceeds the engines'
    /// bounded retry budget, the collective is treated as permanently
    /// broken: with `lane` set the engine drops that (unreachable) lane and
    /// degrades to the survivors; with `lane` unset the step errors out.
    AllReduceTransient {
        /// Global step whose AllReduce is disturbed.
        step: u64,
        /// Number of consecutive failing attempts.
        failures: u32,
        /// Unreachable lane to drop if the retry budget is exhausted.
        lane: Option<usize>,
    },
    /// A new device offers to join the pool before this step (powered on,
    /// came back in LAN range). Elastic runtimes admit it through the
    /// planner (`replan_with`) and grow the world; engines without a join
    /// path ignore the event.
    Join {
        /// Global step before which the device offers to join.
        step: u64,
    },
    /// The coordinator is killed `at_byte` bytes into the durable
    /// checkpoint append at this step — the crash adversary for the
    /// write → fsync → commit-record protocol. Runs persisting through a
    /// crash-capable store die mid-append (possibly inside the commit
    /// record itself); a cold restart must recover the last committed
    /// snapshot. Runs without a durable store ignore the event.
    Crash {
        /// Global step whose checkpoint append is torn.
        step: u64,
        /// Byte offset into the append at which the writer dies.
        at_byte: u64,
    },
}

impl Fault {
    /// The global step this fault fires at.
    pub fn step(&self) -> u64 {
        match self {
            Fault::LanePanic { step, .. }
            | Fault::FailStop { step, .. }
            | Fault::Straggler { step, .. }
            | Fault::AllReduceTransient { step, .. }
            | Fault::Join { step }
            | Fault::Crash { step, .. } => *step,
        }
    }
}

impl fmt::Display for Fault {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Fault::LanePanic { step, lane, stage } => {
                write!(f, "lane-panic@step={step},lane={lane},stage={stage}")
            }
            Fault::FailStop { step, device } => {
                write!(f, "fail-stop@step={step},device={device}")
            }
            Fault::Straggler {
                step,
                lane,
                delay_ms,
            } => write!(f, "straggler@step={step},lane={lane},delay-ms={delay_ms}"),
            Fault::AllReduceTransient {
                step,
                failures,
                lane,
            } => {
                write!(f, "allreduce@step={step},failures={failures}")?;
                if let Some(l) = lane {
                    write!(f, ",lane={l}")?;
                }
                Ok(())
            }
            Fault::Join { step } => write!(f, "join@step={step}"),
            Fault::Crash { step, at_byte } => {
                write!(f, "crash@step={step},at-byte={at_byte}")
            }
        }
    }
}

/// A deterministic, seedable schedule of failures for one training run.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct FaultPlan {
    /// The injected failures, in no particular order.
    pub faults: Vec<Fault>,
}

impl FaultPlan {
    /// The empty plan (a fault-free run).
    pub fn none() -> Self {
        FaultPlan::default()
    }

    /// True when no faults are scheduled.
    pub fn is_empty(&self) -> bool {
        self.faults.is_empty()
    }

    /// Adds a fault (builder style).
    #[must_use]
    pub fn with(mut self, fault: Fault) -> Self {
        self.faults.push(fault);
        self
    }

    /// Generates a pseudo-random plan from `seed`: roughly one fault per
    /// eight steps, scattered over `steps` steps, `devices` devices, and
    /// `stages` stages. The same seed always yields the same plan.
    pub fn scattered(seed: u64, steps: u64, devices: usize, stages: usize) -> Self {
        use rand::Rng as _;
        let mut rng = pac_tensor::rng::seeded(seed ^ 0xFA17_FA17_FA17_FA17);
        let mut faults = Vec::new();
        let n = (steps / 8).max(1);
        for _ in 0..n {
            let step = rng.gen_range(0..steps.max(1));
            let lane = rng.gen_range(0..devices.max(1));
            match rng.gen_range(0..3u32) {
                0 => faults.push(Fault::Straggler {
                    step,
                    lane,
                    delay_ms: rng.gen_range(1..20),
                }),
                1 => faults.push(Fault::AllReduceTransient {
                    step,
                    failures: rng.gen_range(1..3),
                    lane: None,
                }),
                _ => faults.push(Fault::LanePanic {
                    step,
                    lane,
                    stage: rng.gen_range(0..stages.max(1)),
                }),
            }
        }
        FaultPlan { faults }
    }

    /// Parses the textual schema (see module docs). Whitespace around
    /// separators is ignored; an empty string is the empty plan.
    ///
    /// # Errors
    /// Returns a human-readable description of the first malformed clause.
    pub fn parse(spec: &str) -> Result<Self, String> {
        let mut faults = Vec::new();
        for clause in spec.split(';') {
            let clause = clause.trim();
            if clause.is_empty() {
                continue;
            }
            let (kind, args) = clause
                .split_once('@')
                .ok_or_else(|| format!("'{clause}': expected kind@key=value,..."))?;
            let mut step: Option<u64> = None;
            let mut lane: Option<usize> = None;
            let mut stage: Option<usize> = None;
            let mut device: Option<usize> = None;
            let mut delay_ms: Option<u64> = None;
            let mut failures: Option<u32> = None;
            let mut at_byte: Option<u64> = None;
            for kv in args.split(',') {
                let (k, v) = kv
                    .split_once('=')
                    .ok_or_else(|| format!("'{kv}': expected key=value"))?;
                let (k, v) = (k.trim(), v.trim());
                let parse_err = |e| format!("'{kv}': {e}");
                match k {
                    "step" => step = Some(v.parse().map_err(|_| parse_err("bad integer"))?),
                    "lane" => lane = Some(v.parse().map_err(|_| parse_err("bad integer"))?),
                    "stage" => stage = Some(v.parse().map_err(|_| parse_err("bad integer"))?),
                    "device" => device = Some(v.parse().map_err(|_| parse_err("bad integer"))?),
                    "delay-ms" => delay_ms = Some(v.parse().map_err(|_| parse_err("bad integer"))?),
                    "failures" => failures = Some(v.parse().map_err(|_| parse_err("bad integer"))?),
                    "at-byte" => at_byte = Some(v.parse().map_err(|_| parse_err("bad integer"))?),
                    other => return Err(format!("unknown key '{other}' in '{clause}'")),
                }
            }
            let step = step.ok_or_else(|| format!("'{clause}': missing step="))?;
            let fault = match kind.trim() {
                "lane-panic" => Fault::LanePanic {
                    step,
                    lane: lane.ok_or_else(|| format!("'{clause}': missing lane="))?,
                    stage: stage.ok_or_else(|| format!("'{clause}': missing stage="))?,
                },
                "fail-stop" => Fault::FailStop {
                    step,
                    device: device.ok_or_else(|| format!("'{clause}': missing device="))?,
                },
                "straggler" => Fault::Straggler {
                    step,
                    lane: lane.ok_or_else(|| format!("'{clause}': missing lane="))?,
                    delay_ms: delay_ms.ok_or_else(|| format!("'{clause}': missing delay-ms="))?,
                },
                "allreduce" => Fault::AllReduceTransient {
                    step,
                    failures: failures.ok_or_else(|| format!("'{clause}': missing failures="))?,
                    lane,
                },
                "join" => Fault::Join { step },
                "crash" => Fault::Crash {
                    step,
                    at_byte: at_byte.ok_or_else(|| format!("'{clause}': missing at-byte="))?,
                },
                other => return Err(format!("unknown fault kind '{other}'")),
            };
            faults.push(fault);
        }
        Ok(FaultPlan { faults })
    }
}

impl fmt::Display for FaultPlan {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let parts: Vec<String> = self.faults.iter().map(Fault::to_string).collect();
        write!(f, "{}", parts.join(";"))
    }
}

/// What happened during a supervised run, in order — the recovery timeline.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct TimelineEvent {
    /// Global step the event belongs to.
    pub step: u64,
    /// Event category.
    pub kind: TimelineKind,
    /// Human-readable detail, e.g. `"device 1 fail-stop"`.
    pub detail: String,
}

/// Category of a [`TimelineEvent`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum TimelineKind {
    /// A fault from the plan fired.
    Injected,
    /// A transient failure was retried.
    Retry,
    /// The engine dropped a lane and continued on the survivors.
    Degraded,
    /// A training checkpoint was snapshotted.
    Checkpoint,
    /// The planner produced a new plan over the surviving devices.
    Replan,
    /// Training resumed from a checkpoint.
    Resume,
    /// A joining device was admitted into (or rejected from) the pool.
    Join,
    /// Micro-batch shares were rebalanced across lanes (straggler
    /// mitigation).
    Rebalance,
}

impl fmt::Display for TimelineKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            TimelineKind::Injected => "inject",
            TimelineKind::Retry => "retry",
            TimelineKind::Degraded => "degrade",
            TimelineKind::Checkpoint => "checkpoint",
            TimelineKind::Replan => "replan",
            TimelineKind::Resume => "resume",
            TimelineKind::Join => "join",
            TimelineKind::Rebalance => "rebalance",
        };
        f.write_str(s)
    }
}

/// Carries a [`FaultPlan`] through a run: counts global steps, answers the
/// engines' injection queries, and records the recovery timeline.
///
/// The driver that owns the mini-batch loop (the session, an engine run in
/// isolation, or a test) calls [`FaultClock::advance`] once per mini-batch;
/// all queries are against explicit step numbers so concurrent lane threads
/// need no further synchronization.
#[derive(Debug, Default)]
pub struct FaultClock {
    plan: FaultPlan,
    next_step: AtomicU64,
    log: Mutex<Vec<TimelineEvent>>,
}

impl FaultClock {
    /// Wraps a plan; the clock starts before step 0.
    pub fn new(plan: FaultPlan) -> Self {
        FaultClock {
            plan,
            next_step: AtomicU64::new(0),
            log: Mutex::new(Vec::new()),
        }
    }

    /// A clock with no faults (supervision without injection).
    pub fn quiet() -> Self {
        FaultClock::new(FaultPlan::none())
    }

    /// The wrapped plan.
    pub fn plan(&self) -> &FaultPlan {
        &self.plan
    }

    /// Starts the next mini-batch step and returns its index (0-based).
    pub fn advance(&self) -> u64 {
        self.next_step.fetch_add(1, Ordering::Relaxed)
    }

    /// The most recently started step (0 before the first [`advance`]).
    ///
    /// [`advance`]: FaultClock::advance
    pub fn current_step(&self) -> u64 {
        self.next_step.load(Ordering::Relaxed).saturating_sub(1)
    }

    /// Device that fail-stops before `step`, if any. Fires once per device;
    /// the caller tracks which devices are already gone.
    pub fn fail_stop(&self, step: u64) -> Option<usize> {
        self.plan.faults.iter().find_map(|f| match f {
            Fault::FailStop { step: s, device } if *s == step => Some(*device),
            _ => None,
        })
    }

    /// Stage at which `lane` must panic during `step`, if any.
    pub fn lane_panic_stage(&self, step: u64, lane: usize) -> Option<usize> {
        self.plan.faults.iter().find_map(|f| match f {
            Fault::LanePanic {
                step: s,
                lane: l,
                stage,
            } if *s == step && *l == lane => Some(*stage),
            _ => None,
        })
    }

    /// Straggler delay for `lane` at `step`, if any.
    pub fn straggler_delay(&self, step: u64, lane: usize) -> Option<Duration> {
        self.plan.faults.iter().find_map(|f| match f {
            Fault::Straggler {
                step: s,
                lane: l,
                delay_ms,
            } if *s == step && *l == lane => Some(Duration::from_millis(*delay_ms)),
            _ => None,
        })
    }

    /// True when at least one device offers to join the pool before
    /// `step`. Convenience over [`FaultClock::joins`] for callers that
    /// only care whether a membership event is due.
    pub fn join(&self, step: u64) -> bool {
        self.joins(step) > 0
    }

    /// How many devices offer to join the pool before `step`. Repeated
    /// `join@step=N` faults form a *wave*: the driver admits the whole
    /// wave with one replan and one catch-up snapshot rather than one
    /// membership event per joiner.
    pub fn joins(&self, step: u64) -> usize {
        self.plan
            .faults
            .iter()
            .filter(|f| matches!(f, Fault::Join { step: s } if *s == step))
            .count()
    }

    /// Byte offset at which the durable checkpoint writer is killed during
    /// `step`'s append, if a crash is planned there. Fires once: the run
    /// dies with it.
    pub fn crash_point(&self, step: u64) -> Option<u64> {
        self.plan.faults.iter().find_map(|f| match f {
            Fault::Crash { step: s, at_byte } if *s == step => Some(*at_byte),
            _ => None,
        })
    }

    /// AllReduce disturbance at `step`: `(failing_attempts, unreachable
    /// lane)`. `(0, None)` when the collective is healthy.
    pub fn allreduce_fault(&self, step: u64) -> (u32, Option<usize>) {
        self.plan
            .faults
            .iter()
            .find_map(|f| match f {
                Fault::AllReduceTransient {
                    step: s,
                    failures,
                    lane,
                } if *s == step => Some((*failures, *lane)),
                _ => None,
            })
            .unwrap_or((0, None))
    }

    /// Appends an event to the recovery timeline and mirrors it into
    /// telemetry (`faults.injected`, `recovery.retries`,
    /// `recovery.replans`, …).
    pub fn note(&self, step: u64, kind: TimelineKind, detail: impl Into<String>) {
        let counter = match kind {
            TimelineKind::Injected => "faults.injected",
            TimelineKind::Retry => "recovery.retries",
            TimelineKind::Degraded => "recovery.degraded",
            TimelineKind::Checkpoint => "checkpoint.snapshots",
            TimelineKind::Replan => "recovery.replans",
            TimelineKind::Resume => "recovery.resumes",
            TimelineKind::Join => "membership.joins",
            TimelineKind::Rebalance => "membership.rebalances",
        };
        pac_telemetry::counter_inc(counter);
        self.log.lock().unwrap().push(TimelineEvent {
            step,
            kind,
            detail: detail.into(),
        });
    }

    /// The recovery timeline recorded so far, in order.
    pub fn timeline(&self) -> Vec<TimelineEvent> {
        self.log.lock().unwrap().clone()
    }

    /// Renders the timeline as aligned `step  kind  detail` lines.
    pub fn render_timeline(&self) -> String {
        render_events(&self.timeline())
    }
}

/// Renders a recovery timeline as aligned `step  kind  detail` lines
/// (what [`FaultClock::render_timeline`] produces for its own log).
pub fn render_events(events: &[TimelineEvent]) -> String {
    if events.is_empty() {
        return "(no faults injected, no recovery actions)".into();
    }
    let mut out = String::new();
    for e in events {
        out.push_str(&format!(
            "step {:>4}  {:<10} {}\n",
            e.step, e.kind, e.detail
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_round_trips_every_kind() {
        let spec = "lane-panic@step=3,lane=0,stage=1;fail-stop@step=5,device=2;\
                    straggler@step=2,lane=1,delay-ms=40;allreduce@step=4,failures=2;\
                    allreduce@step=6,failures=9,lane=1;join@step=7;\
                    crash@step=8,at-byte=17";
        let plan = FaultPlan::parse(spec).unwrap();
        assert_eq!(plan.faults.len(), 7);
        let rendered = plan.to_string();
        assert_eq!(FaultPlan::parse(&rendered).unwrap(), plan);
    }

    #[test]
    fn parse_rejects_malformed_specs() {
        for bad in [
            "nonsense",
            "lane-panic@lane=0,stage=1",       // missing step
            "fail-stop@step=1",                // missing device
            "warp-core-breach@step=1,lane=0",  // unknown kind
            "allreduce@step=x,failures=1",     // bad integer
            "straggler@step=1,lane=0,wait=10", // unknown key
            "crash@step=1",                    // missing at-byte
        ] {
            assert!(FaultPlan::parse(bad).is_err(), "accepted: {bad}");
        }
        assert!(FaultPlan::parse("").unwrap().is_empty());
        assert!(FaultPlan::parse("  ;  ").unwrap().is_empty());
    }

    #[test]
    fn scattered_is_deterministic_in_the_seed() {
        let a = FaultPlan::scattered(7, 32, 4, 2);
        let b = FaultPlan::scattered(7, 32, 4, 2);
        let c = FaultPlan::scattered(8, 32, 4, 2);
        assert_eq!(a, b);
        assert_ne!(a, c, "different seeds should differ (overwhelmingly)");
        assert!(!a.is_empty());
        assert!(a.faults.iter().all(|f| f.step() < 32));
    }

    #[test]
    fn clock_answers_point_queries() {
        let plan = FaultPlan::none()
            .with(Fault::FailStop { step: 2, device: 1 })
            .with(Fault::LanePanic {
                step: 1,
                lane: 0,
                stage: 1,
            })
            .with(Fault::Straggler {
                step: 3,
                lane: 2,
                delay_ms: 15,
            })
            .with(Fault::AllReduceTransient {
                step: 4,
                failures: 2,
                lane: Some(1),
            })
            .with(Fault::Join { step: 5 })
            .with(Fault::Crash {
                step: 6,
                at_byte: 17,
            });
        let clock = FaultClock::new(plan);
        assert_eq!(clock.advance(), 0);
        assert_eq!(clock.advance(), 1);
        assert_eq!(clock.current_step(), 1);
        assert_eq!(clock.fail_stop(2), Some(1));
        assert_eq!(clock.fail_stop(0), None);
        assert_eq!(clock.lane_panic_stage(1, 0), Some(1));
        assert_eq!(clock.lane_panic_stage(1, 1), None);
        assert_eq!(clock.straggler_delay(3, 2), Some(Duration::from_millis(15)));
        assert_eq!(clock.allreduce_fault(4), (2, Some(1)));
        assert_eq!(clock.allreduce_fault(5), (0, None));
        assert!(clock.join(5));
        assert!(!clock.join(4));
        assert_eq!(clock.crash_point(6), Some(17));
        assert_eq!(clock.crash_point(5), None);
    }

    #[test]
    fn timeline_records_in_order() {
        let clock = FaultClock::quiet();
        clock.note(0, TimelineKind::Injected, "device 1 fail-stop");
        clock.note(0, TimelineKind::Replan, "2 survivors");
        clock.note(1, TimelineKind::Resume, "from step 0");
        let t = clock.timeline();
        assert_eq!(t.len(), 3);
        assert_eq!(t[0].kind, TimelineKind::Injected);
        let text = clock.render_timeline();
        assert!(text.contains("replan"));
        assert!(text.contains("device 1 fail-stop"));
    }
}
