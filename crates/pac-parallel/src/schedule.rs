//! Deterministic pipeline-schedule simulation (GPipe-style flush vs the
//! paper's 1F1B), producing makespans and per-stage peak memory.
//!
//! The simulator executes each stage's known op sequence under cross-stage
//! data dependencies:
//!
//! * `F(s, m)` needs `F(s−1, m)` plus the forward activation transfer;
//! * `B(s, m)` needs `B(s+1, m)` plus the gradient transfer (the last stage
//!   starts backward right after its own forward — the loss is local);
//! * ops on one stage serialize in schedule order.
//!
//! 1F1B's advantage (paper §5.1) is *memory*: a stage holds at most
//! `S − s` in-flight micro-batches instead of all `M`, because each
//! backward releases its forward's activations before the next forward is
//! admitted.

use serde::{Deserialize, Serialize};

/// Micro-batch scheduling discipline.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Schedule {
    /// One-forward-one-backward (PipeDream-flush), the paper's choice.
    OneFOneB,
    /// GPipe-style: all forwards, then all backwards.
    GPipe,
    /// Memory-constrained GPipe: micro-batches flow in waves of at most
    /// `wave` concurrently in-flight micro-batches, with a full flush
    /// between waves. This models the paper's §6.2 observation that Eco-FL
    /// "necessitates … a reduction in the number of micro-batches
    /// simultaneously input into the pipeline", which costs concurrency.
    GPipeWave {
        /// Maximum in-flight micro-batches per stage.
        wave: usize,
    },
}

/// One pipeline stage's simulated execution parameters. Times are for one
/// micro-batch on one device of the stage's group (data-parallel
/// subdivision is applied by the caller).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SimStage {
    /// Forward time per micro-batch (seconds).
    pub fwd_s: f64,
    /// Backward time per micro-batch (seconds).
    pub bwd_s: f64,
    /// Activation transfer time to the next stage (seconds per micro-batch).
    pub send_fwd_s: f64,
    /// Gradient transfer time to the previous stage (seconds per
    /// micro-batch).
    pub send_bwd_s: f64,
    /// Resident weight bytes on each device of this stage.
    pub weight_bytes: usize,
    /// Activation bytes retained per in-flight micro-batch.
    pub act_bytes_per_mb: usize,
    /// Fixed training bytes (gradients, optimizer state, technique extras).
    pub fixed_bytes: usize,
    /// Gradient-synchronization time within this stage's group at
    /// mini-batch end (seconds).
    pub allreduce_s: f64,
}

/// One executed operation in the simulated timeline.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SimEvent {
    /// Stage index.
    pub stage: usize,
    /// Micro-batch id.
    pub micro: usize,
    /// True for forward, false for backward.
    pub forward: bool,
    /// Start time (seconds).
    pub start: f64,
    /// End time (seconds).
    pub end: f64,
}

/// Outcome of a pipeline simulation.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SimResult {
    /// End-to-end mini-batch time including AllReduce (seconds).
    pub makespan_s: f64,
    /// Peak concurrently in-flight micro-batches per stage.
    pub peak_inflight: Vec<usize>,
    /// Peak bytes per stage device (weights + fixed + activations).
    pub peak_bytes: Vec<usize>,
    /// Fraction of stage-time slots idle (pipeline bubbles).
    pub bubble_fraction: f64,
    /// Every executed op with its start/end time (the paper's Figure 6(b)
    /// timeline; render with [`SimResult::ascii_gantt`]).
    pub events: Vec<SimEvent>,
}

impl SimResult {
    /// Maximum peak bytes over all stages.
    pub fn max_peak_bytes(&self) -> usize {
        self.peak_bytes.iter().copied().max().unwrap_or(0)
    }

    /// Builds a `SimResult` from an event list recorded elsewhere — in
    /// particular the *real* engine's measured timeline
    /// (`PipelineOutcome::events`), so measured and simulated runs render
    /// through the same [`SimResult::ascii_gantt`] and are directly
    /// comparable.
    ///
    /// `peak_inflight` is replayed from forward/backward transitions;
    /// `peak_bytes` is not knowable from events alone and is zeroed.
    pub fn from_events(events: Vec<SimEvent>, n_stages: usize) -> SimResult {
        let mut inflight = vec![0isize; n_stages];
        let mut peak_inflight = vec![0usize; n_stages];
        let mut busy = vec![0.0f64; n_stages];
        let mut stage_end = vec![0.0f64; n_stages];
        // Replay in start order; per stage, ops never overlap.
        let mut ordered: Vec<&SimEvent> = events.iter().collect();
        ordered.sort_by(|a, b| a.start.total_cmp(&b.start));
        for e in ordered {
            if e.forward {
                inflight[e.stage] += 1;
                peak_inflight[e.stage] = peak_inflight[e.stage].max(inflight[e.stage] as usize);
            } else {
                inflight[e.stage] -= 1;
            }
            busy[e.stage] += e.end - e.start;
            stage_end[e.stage] = stage_end[e.stage].max(e.end);
        }
        let makespan = stage_end.iter().fold(0.0f64, |a, &b| a.max(b));
        let busy_total: f64 = busy.iter().sum();
        let bubble_fraction = if makespan > 0.0 && n_stages > 0 {
            1.0 - busy_total / (n_stages as f64 * makespan)
        } else {
            0.0
        };
        SimResult {
            makespan_s: makespan,
            peak_inflight,
            peak_bytes: vec![0; n_stages],
            bubble_fraction,
            events,
        }
    }

    /// Renders the timeline as an ASCII Gantt chart in the style of the
    /// paper's Figure 6(b): one row per stage, `width` character columns,
    /// forward cells as the micro-batch digit, backward cells as letters
    /// (`a` = micro-batch 0), idle as `·`.
    pub fn ascii_gantt(&self, width: usize) -> String {
        let width = width.max(10);
        let n_stages = self.peak_inflight.len();
        let span = self.makespan_s.max(1e-12);
        let mut rows = vec![vec![b'.'; width]; n_stages];
        for e in &self.events {
            let lo = ((e.start / span) * width as f64).floor() as usize;
            let hi = (((e.end / span) * width as f64).ceil() as usize).min(width);
            let ch = if e.forward {
                b'0' + (e.micro % 10) as u8
            } else {
                b'a' + (e.micro % 26) as u8
            };
            for cell in rows[e.stage].iter_mut().take(hi).skip(lo.min(width)) {
                *cell = ch;
            }
        }
        rows.iter()
            .enumerate()
            .map(|(s, r)| format!("stage {s} |{}|", String::from_utf8_lossy(r)))
            .collect::<Vec<_>>()
            .join("\n")
    }

    /// First stage whose peak exceeds `limit`, if any (the OOM verdict).
    pub fn oom_stage(&self, limit: usize) -> Option<usize> {
        self.peak_bytes.iter().position(|&b| b > limit)
    }
}

/// One scheduled operation on a pipeline stage.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Op {
    /// Forward pass of micro-batch `m`.
    F(usize),
    /// Backward pass of micro-batch `m`.
    B(usize),
}

/// The op sequence stage `s` of `n_stages` executes for `m` micro-batches
/// under `schedule`. Shared by the timeline simulator and the real threaded
/// pipeline engine, so both execute the *same* discipline.
pub fn stage_op_sequence(schedule: Schedule, s: usize, n_stages: usize, m: usize) -> Vec<Op> {
    let mut ops = Vec::with_capacity(2 * m);
    match schedule {
        Schedule::GPipe => {
            ops.extend((0..m).map(Op::F));
            ops.extend((0..m).map(Op::B));
        }
        Schedule::GPipeWave { wave } => {
            let w = wave.max(1);
            let mut start = 0usize;
            while start < m {
                let end = (start + w).min(m);
                ops.extend((start..end).map(Op::F));
                ops.extend((start..end).map(Op::B));
                start = end;
            }
        }
        Schedule::OneFOneB => {
            let warmup = (n_stages - 1 - s).min(m);
            let mut f = 0usize;
            let mut b = 0usize;
            for _ in 0..warmup {
                ops.push(Op::F(f));
                f += 1;
            }
            while f < m {
                ops.push(Op::F(f));
                f += 1;
                ops.push(Op::B(b));
                b += 1;
            }
            while b < m {
                ops.push(Op::B(b));
                b += 1;
            }
        }
    }
    ops
}

/// Simulates one mini-batch of `micro_batches` through `stages` under
/// `schedule`.
///
/// # Panics
/// Panics if `stages` is empty or `micro_batches` is zero (caller bug), or
/// if the schedule deadlocks (impossible for the shipped disciplines — this
/// is an internal consistency check).
pub fn simulate_pipeline(
    stages: &[SimStage],
    micro_batches: usize,
    schedule: Schedule,
) -> SimResult {
    assert!(!stages.is_empty(), "simulate_pipeline: no stages");
    assert!(micro_batches > 0, "simulate_pipeline: no micro-batches");
    let s_n = stages.len();
    let m = micro_batches;

    let sequences: Vec<Vec<Op>> = (0..s_n)
        .map(|s| stage_op_sequence(schedule, s, s_n, m))
        .collect();
    let mut ptr = vec![0usize; s_n];
    let mut stage_free = vec![0.0f64; s_n];
    let mut fwd_done = vec![vec![f64::NAN; m]; s_n];
    let mut bwd_done = vec![vec![f64::NAN; m]; s_n];
    let mut inflight = vec![0usize; s_n];
    let mut peak_inflight = vec![0usize; s_n];
    let mut busy = vec![0.0f64; s_n];
    let mut events: Vec<SimEvent> = Vec::with_capacity(2 * s_n * m);

    let mut remaining: usize = sequences.iter().map(Vec::len).sum();
    while remaining > 0 {
        let mut progressed = false;
        for s in 0..s_n {
            while ptr[s] < sequences[s].len() {
                let op = sequences[s][ptr[s]];
                // Dependency readiness.
                let ready = match op {
                    Op::F(mb) => {
                        if s == 0 {
                            Some(0.0)
                        } else {
                            let d = fwd_done[s - 1][mb];
                            if d.is_nan() {
                                None
                            } else {
                                Some(d + stages[s - 1].send_fwd_s)
                            }
                        }
                    }
                    Op::B(mb) => {
                        if s == s_n - 1 {
                            let d = fwd_done[s][mb];
                            if d.is_nan() {
                                None
                            } else {
                                Some(d)
                            }
                        } else {
                            let d = bwd_done[s + 1][mb];
                            if d.is_nan() {
                                None
                            } else {
                                Some(d + stages[s + 1].send_bwd_s)
                            }
                        }
                    }
                };
                let Some(ready) = ready else { break };
                let start = ready.max(stage_free[s]);
                let dur = match op {
                    Op::F(_) => stages[s].fwd_s,
                    Op::B(_) => stages[s].bwd_s,
                };
                let end = start + dur;
                stage_free[s] = end;
                busy[s] += dur;
                events.push(SimEvent {
                    stage: s,
                    micro: match op {
                        Op::F(mb) | Op::B(mb) => mb,
                    },
                    forward: matches!(op, Op::F(_)),
                    start,
                    end,
                });
                match op {
                    Op::F(mb) => {
                        fwd_done[s][mb] = end;
                        inflight[s] += 1;
                        peak_inflight[s] = peak_inflight[s].max(inflight[s]);
                    }
                    Op::B(mb) => {
                        bwd_done[s][mb] = end;
                        inflight[s] -= 1;
                    }
                }
                ptr[s] += 1;
                remaining -= 1;
                progressed = true;
            }
        }
        assert!(progressed, "pipeline schedule deadlocked (internal bug)");
    }

    // Each stage AllReduces its group's gradients after its last backward.
    let makespan = (0..s_n)
        .map(|s| stage_free[s] + stages[s].allreduce_s)
        .fold(0.0f64, f64::max);
    let busy_total: f64 = busy.iter().sum();
    // Compute span excludes the trailing AllReduce; degenerate zero-cost
    // schedules (all fwd_s = bwd_s = 0) have no slots to be idle in.
    let compute_span = stage_free.iter().fold(0.0f64, |a, &b| a.max(b));
    let bubble_fraction = if compute_span > 0.0 {
        1.0 - busy_total / (s_n as f64 * compute_span)
    } else {
        0.0
    };

    let peak_bytes = (0..s_n)
        .map(|s| {
            stages[s].weight_bytes
                + stages[s].fixed_bytes
                + peak_inflight[s] * stages[s].act_bytes_per_mb
        })
        .collect();

    SimResult {
        makespan_s: makespan,
        peak_inflight,
        peak_bytes,
        bubble_fraction,
        events,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn uniform(n: usize, fwd: f64, bwd: f64, send: f64) -> Vec<SimStage> {
        vec![
            SimStage {
                fwd_s: fwd,
                bwd_s: bwd,
                send_fwd_s: send,
                send_bwd_s: send,
                weight_bytes: 100,
                act_bytes_per_mb: 10,
                fixed_bytes: 5,
                allreduce_s: 0.0,
            };
            n
        ]
    }

    #[test]
    fn single_stage_is_sequential() {
        let st = uniform(1, 1.0, 2.0, 0.0);
        for sched in [Schedule::OneFOneB, Schedule::GPipe] {
            let r = simulate_pipeline(&st, 4, sched);
            assert!(
                (r.makespan_s - 12.0).abs() < 1e-9,
                "{sched:?}: {}",
                r.makespan_s
            );
        }
    }

    #[test]
    fn pipeline_overlaps_micro_batches() {
        // 4 stages, 8 micro-batches: pipelined time must be far below
        // sequential (stages × micro × (f+b)) and above the critical path.
        let st = uniform(4, 1.0, 1.0, 0.0);
        let r = simulate_pipeline(&st, 8, Schedule::OneFOneB);
        let sequential = 4.0 * 8.0 * 2.0;
        // Per-stage work alone is 8 × 2 = 16.
        assert!(r.makespan_s < sequential * 0.5, "{}", r.makespan_s);
        assert!(r.makespan_s >= 16.0);
    }

    #[test]
    fn one_f_one_b_bounds_inflight_memory() {
        let st = uniform(4, 1.0, 1.0, 0.0);
        let m = 16;
        let r1 = simulate_pipeline(&st, m, Schedule::OneFOneB);
        let rg = simulate_pipeline(&st, m, Schedule::GPipe);
        // GPipe: every stage holds all M micro-batches at its forward peak.
        assert_eq!(rg.peak_inflight, vec![m; 4]);
        // 1F1B: stage s holds at most S − s.
        for (s, &p) in r1.peak_inflight.iter().enumerate() {
            assert!(p <= 4 - s, "stage {s} inflight {p}");
        }
        assert!(r1.max_peak_bytes() < rg.max_peak_bytes());
    }

    #[test]
    fn similar_makespans_for_both_schedules() {
        // With uniform stages 1F1B and GPipe have similar makespans (1F1B
        // trades memory, not time).
        let st = uniform(4, 1.0, 2.0, 0.1);
        let r1 = simulate_pipeline(&st, 8, Schedule::OneFOneB);
        let rg = simulate_pipeline(&st, 8, Schedule::GPipe);
        let ratio = r1.makespan_s / rg.makespan_s;
        assert!((0.8..1.3).contains(&ratio), "ratio {ratio}");
    }

    #[test]
    fn slowest_stage_gates_throughput() {
        let mut st = uniform(3, 1.0, 1.0, 0.0);
        st[1].fwd_s = 3.0;
        st[1].bwd_s = 3.0;
        let r = simulate_pipeline(&st, 8, Schedule::OneFOneB);
        // Stage 1 works 8 × 6 = 48 s; makespan must be ≥ that.
        assert!(r.makespan_s >= 48.0);
        assert!(r.makespan_s < 60.0);
    }

    #[test]
    fn communication_adds_latency() {
        let fast = simulate_pipeline(&uniform(4, 1.0, 1.0, 0.0), 4, Schedule::OneFOneB);
        let slow = simulate_pipeline(&uniform(4, 1.0, 1.0, 0.5), 4, Schedule::OneFOneB);
        assert!(slow.makespan_s > fast.makespan_s);
    }

    #[test]
    fn allreduce_extends_makespan() {
        let mut st = uniform(2, 1.0, 1.0, 0.0);
        let base = simulate_pipeline(&st, 4, Schedule::OneFOneB).makespan_s;
        st[0].allreduce_s = 5.0;
        let with_ar = simulate_pipeline(&st, 4, Schedule::OneFOneB).makespan_s;
        assert!(with_ar >= base, "AR should not shrink the makespan");
        assert!(with_ar - base > 0.5, "AR time not reflected");
    }

    #[test]
    fn more_stages_mean_more_bubbles() {
        let shallow = simulate_pipeline(&uniform(2, 1.0, 1.0, 0.1), 4, Schedule::OneFOneB);
        let deep = simulate_pipeline(&uniform(8, 1.0, 1.0, 0.1), 4, Schedule::OneFOneB);
        assert!(
            deep.bubble_fraction > shallow.bubble_fraction,
            "deep {} vs shallow {}",
            deep.bubble_fraction,
            shallow.bubble_fraction
        );
    }

    #[test]
    fn events_cover_every_op_without_stage_overlap() {
        let st = uniform(3, 1.0, 2.0, 0.1);
        let r = simulate_pipeline(&st, 4, Schedule::OneFOneB);
        assert_eq!(r.events.len(), 3 * 4 * 2);
        // Per stage: events are serialized (no overlap) and total busy time
        // equals M × (fwd + bwd).
        for s in 0..3 {
            let mut evs: Vec<_> = r.events.iter().filter(|e| e.stage == s).collect();
            evs.sort_by(|a, b| a.start.partial_cmp(&b.start).unwrap());
            for w in evs.windows(2) {
                assert!(w[1].start >= w[0].end - 1e-12, "overlap on stage {s}");
            }
            let busy: f64 = evs.iter().map(|e| e.end - e.start).sum();
            assert!((busy - 4.0 * 3.0).abs() < 1e-9);
        }
    }

    #[test]
    fn gantt_renders_all_stages() {
        let st = uniform(2, 1.0, 1.0, 0.0);
        let r = simulate_pipeline(&st, 3, Schedule::GPipe);
        let g = r.ascii_gantt(40);
        let lines: Vec<&str> = g.split("\n").collect();
        assert_eq!(lines.len(), 2);
        assert!(lines[0].starts_with("stage 0 |"));
        // Forward digits and backward letters both appear.
        assert!(g.contains('0') && g.contains('a'), "{g}");
    }

    #[test]
    fn oom_detection() {
        let st = uniform(2, 1.0, 1.0, 0.0);
        let r = simulate_pipeline(&st, 4, Schedule::GPipe);
        assert_eq!(r.oom_stage(usize::MAX), None);
        assert_eq!(r.oom_stage(0), Some(0));
    }

    #[test]
    #[should_panic(expected = "no stages")]
    fn empty_stages_panic() {
        simulate_pipeline(&[], 1, Schedule::GPipe);
    }

    #[test]
    fn zero_cost_compute_is_finite() {
        // All fwd_s = bwd_s = 0: the schedule still "executes" but every op
        // is instantaneous. Makespan collapses to the AllReduce tail and
        // bubble_fraction must stay finite (there are no slots to idle in).
        let mut st = uniform(3, 0.0, 0.0, 0.0);
        st[2].allreduce_s = 0.25;
        for sched in [Schedule::OneFOneB, Schedule::GPipe] {
            let r = simulate_pipeline(&st, 4, sched);
            assert!(
                (r.makespan_s - 0.25).abs() < 1e-12,
                "{sched:?}: {}",
                r.makespan_s
            );
            assert!(r.bubble_fraction.is_finite(), "{sched:?}: NaN bubble");
            assert_eq!(r.bubble_fraction, 0.0);
            assert_eq!(r.events.len(), 3 * 4 * 2);
        }
    }

    #[test]
    fn zero_forward_time_only_still_simulates() {
        // fwd_s = 0 with nonzero bwd_s: forwards ripple through instantly,
        // backwards carry all the cost. Makespan = critical backward chain.
        let st = uniform(2, 0.0, 1.0, 0.0);
        let r = simulate_pipeline(&st, 3, Schedule::OneFOneB);
        assert!(r.makespan_s >= 3.0, "backwards alone take 3 s per stage");
        assert!(r.bubble_fraction.is_finite());
        assert!(
            (0.0..=1.0).contains(&r.bubble_fraction),
            "{}",
            r.bubble_fraction
        );
    }

    #[test]
    fn gantt_handles_zero_span_events() {
        // Zero-duration events at t = 0 map to zero-column cells; the chart
        // must render (all idle) rather than panic on the degenerate span.
        let st = uniform(2, 0.0, 0.0, 0.0);
        let r = simulate_pipeline(&st, 2, Schedule::GPipe);
        let g = r.ascii_gantt(20);
        let lines: Vec<&str> = g.split('\n').collect();
        assert_eq!(lines.len(), 2);
        assert!(lines[1].starts_with("stage 1 |"));
        // Width floor also applies: asking for 0 columns yields ≥ 10.
        let tiny = r.ascii_gantt(0);
        assert!(tiny.split('\n').all(|l| l.len() >= 10));
    }

    #[test]
    fn single_stage_with_allreduce_has_bounded_bubble() {
        // A single stage is never idle during compute; the AllReduce tail
        // extends the makespan but must not push bubble_fraction out of
        // [0, 1] (it is excluded from the idle accounting by design).
        let mut st = uniform(1, 1.0, 2.0, 0.0);
        st[0].allreduce_s = 10.0;
        let r = simulate_pipeline(&st, 4, Schedule::OneFOneB);
        assert!((r.makespan_s - 22.0).abs() < 1e-9, "{}", r.makespan_s);
        assert!(
            (0.0..=1.0).contains(&r.bubble_fraction),
            "bubble {} out of bounds",
            r.bubble_fraction
        );
        assert!(r.bubble_fraction.abs() < 1e-9, "single stage cannot bubble");
    }

    #[test]
    fn from_events_round_trips_a_simulated_timeline() {
        let st = uniform(3, 1.0, 2.0, 0.1);
        let sim = simulate_pipeline(&st, 4, Schedule::OneFOneB);
        let rebuilt = SimResult::from_events(sim.events.clone(), 3);
        // Makespan: from_events sees compute only (no AllReduce here).
        assert!(
            (rebuilt.makespan_s - sim.events.iter().fold(0.0f64, |a, e| a.max(e.end))).abs()
                < 1e-12
        );
        assert_eq!(rebuilt.peak_inflight, sim.peak_inflight);
        assert!((rebuilt.bubble_fraction - sim.bubble_fraction).abs() < 1e-9);
        assert_eq!(rebuilt.peak_bytes, vec![0; 3]);
    }

    #[test]
    fn from_events_empty_is_all_zero() {
        let r = SimResult::from_events(Vec::new(), 2);
        assert_eq!(r.makespan_s, 0.0);
        assert_eq!(r.bubble_fraction, 0.0);
        assert_eq!(r.peak_inflight, vec![0, 0]);
        assert!(r.ascii_gantt(12).contains("stage 1"));
    }
}
