//! Builders translating (cluster, model, technique, plan) into simulated
//! stage timelines, plus the pure data-parallel simulation.

use crate::plan::ParallelPlan;
use crate::schedule::{simulate_pipeline, Schedule, SimResult, SimStage};
use pac_cluster::{Cluster, CollectiveModel, CostModel};
use serde::{Deserialize, Serialize};

/// Result of a pure data-parallel (EDDL-style) step simulation.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DpSimResult {
    /// Mini-batch wall time including AllReduce (seconds).
    pub step_s: f64,
    /// Peak bytes per device.
    pub peak_bytes: Vec<usize>,
}

impl DpSimResult {
    /// First device over `limit`, if any.
    pub fn oom_device(&self, limit: usize) -> Option<usize> {
        self.peak_bytes.iter().position(|&b| b > limit)
    }
}

/// Simulates one mini-batch under a hybrid-parallelism `plan`.
///
/// Every stage's times are derived from the cost model's per-layer FLOPs on
/// the slowest device of the stage's group; micro-batches are further
/// subdivided across the group (paper §5.1), and each group AllReduces its
/// trainable bytes at mini-batch end.
///
/// # Panics
/// Panics if the plan fails validation against the cost model / cluster
/// (caller should have validated).
pub fn simulate_plan(
    cluster: &Cluster,
    cost: &CostModel,
    plan: &ParallelPlan,
    mini_batch: usize,
    micro_batches: usize,
    schedule: Schedule,
) -> SimResult {
    let layers = cost.layer_costs();
    plan.validate(layers.len(), cluster.len())
        .expect("invalid plan passed to simulate_plan");
    let coll = CollectiveModel::new(cluster.link);
    let micro = micro_batches.max(1);
    // Embedding (and tied head) bytes, charged to the first / last stage.
    let embed_bytes = cost.config.embedding_params() * 4;

    let n_stages = plan.num_stages();
    let mut stages = Vec::with_capacity(n_stages);
    for (si, a) in plan.stages.iter().enumerate() {
        let group = a.group_size();
        // Samples processed per device per micro-batch.
        let samples = mini_batch as f64 / micro as f64 / group as f64;
        let slowest = a
            .devices
            .iter()
            .map(|&d| cluster.devices[d].effective_flops())
            .fold(f64::INFINITY, f64::min);

        let range = &layers[a.layer_start..a.layer_end];
        let fwd_flops: f64 = range.iter().map(|l| l.fwd_flops).sum();
        let bwd_flops: f64 = range.iter().map(|l| l.bwd_flops()).sum();
        let weight_bytes: usize = range.iter().map(|l| l.weight_bytes).sum::<usize>()
            + if si == 0 || si == n_stages - 1 {
                embed_bytes
            } else {
                0
            };
        let trainable: usize = range.iter().map(|l| l.trainable_bytes).sum();
        let act_per_sample: usize = range.iter().map(|l| l.retained_act_bytes).sum();
        let boundary = range.last().map(|l| l.boundary_bytes).unwrap_or(0);

        // Transfer: each receiving device of the next stage pulls its slice
        // of the micro-batch activation.
        let send_bytes = (boundary as f64 * mini_batch as f64
            / micro as f64
            / plan
                .stages
                .get(si + 1)
                .map(|n| n.group_size() as f64)
                .unwrap_or(1.0)) as usize;

        stages.push(SimStage {
            fwd_s: fwd_flops * samples / slowest,
            bwd_s: bwd_flops * samples / slowest,
            send_fwd_s: if si + 1 < n_stages {
                cluster.link.transfer_time(send_bytes)
            } else {
                0.0
            },
            send_bwd_s: if si > 0 {
                cluster.link.transfer_time(send_bytes)
            } else {
                0.0
            },
            weight_bytes,
            // Retained activations per in-flight micro-batch per device.
            act_bytes_per_mb: (act_per_sample as f64 * samples).ceil() as usize,
            // Gradients + Adam's two moment slots for trainable params
            // (transformer fine-tuning uses Adam-family optimizers).
            fixed_bytes: 3 * trainable,
            allreduce_s: coll.allreduce_time(group, trainable),
        });
    }
    simulate_pipeline(&stages, micro, schedule)
}

/// Simulates one pure data-parallel mini-batch (EDDL): every device hosts
/// the full model and processes `mini_batch / n` samples, then AllReduces
/// the trainable bytes.
pub fn simulate_data_parallel(
    cluster: &Cluster,
    cost: &CostModel,
    mini_batch: usize,
) -> DpSimResult {
    let n = cluster.len().max(1);
    let layers = cost.layer_costs();
    let coll = CollectiveModel::new(cluster.link);
    let fwd: f64 = layers.iter().map(|l| l.fwd_flops).sum();
    let bwd: f64 = layers.iter().map(|l| l.bwd_flops()).sum();
    let weight_bytes: usize =
        layers.iter().map(|l| l.weight_bytes).sum::<usize>() + cost.config.embedding_params() * 4;
    let trainable: usize = layers.iter().map(|l| l.trainable_bytes).sum();
    let act_per_sample: usize = layers.iter().map(|l| l.retained_act_bytes).sum();

    let share = (mini_batch as f64 / n as f64).ceil();
    let slowest = cluster.min_effective_flops();
    let compute = (fwd + bwd) * share / slowest;
    let ar = coll.allreduce_time(n, trainable);

    let per_dev = weight_bytes + 3 * trainable + (act_per_sample as f64 * share) as usize;
    DpSimResult {
        step_s: compute + ar,
        peak_bytes: vec![per_dev; n],
    }
}

/// Simulates Eco-FL's straight pipeline (one stage per device, GPipe-style
/// flush) under its real memory constraint: the number of concurrently
/// in-flight micro-batches is reduced (wave by wave) until the peak
/// activation footprint fits the devices — the paper's §6.2 observation
/// that Eco-FL must sacrifice pipeline concurrency on memory-constrained
/// edge devices. Returns the best feasible simulation, or `None` if even
/// one-at-a-time processing does not fit.
pub fn simulate_ecofl(
    cluster: &Cluster,
    cost: &CostModel,
    mini_batch: usize,
    micro_batches: usize,
) -> Option<SimResult> {
    let layers = cost.layer_costs().len();
    let plan = ParallelPlan::pipeline_even(layers, cluster.len());
    let limit = cluster
        .devices
        .iter()
        .map(|d| d.usable_memory)
        .min()
        .unwrap_or(0);
    let micro = micro_batches.max(1);
    let mut wave = micro;
    while wave >= 1 {
        let schedule = if wave >= micro {
            Schedule::GPipe
        } else {
            Schedule::GPipeWave { wave }
        };
        let sim = simulate_plan(cluster, cost, &plan, mini_batch, micro, schedule);
        if sim.oom_stage(limit).is_none() {
            return Some(sim);
        }
        wave /= 2;
    }
    None
}

/// Default gradient-sync interval for the cached phase: replicas
/// accumulate gradients locally for this many mini-batches between
/// AllReduces. With the backbone gone the side-network step is far cheaper
/// than a full-adapter AllReduce on a 128 Mbps LAN, so synchronizing every
/// step would be communication-bound — amortizing the sync is what makes
/// the paper's phase-2 step times (implying sub-AllReduce costs per step)
/// achievable. Gradient accumulation leaves the averaged-gradient math
/// identical at matching effective batch sizes.
pub const CACHED_SYNC_INTERVAL: usize = 8;

/// Simulates one cache-enabled data-parallel step (PAC epochs ≥ 2) with the
/// default sync interval; see [`simulate_cached_dp_step_with_interval`].
pub fn simulate_cached_dp_step(
    cluster: &Cluster,
    cost: &CostModel,
    mini_batch: usize,
) -> DpSimResult {
    simulate_cached_dp_step_with_interval(cluster, cost, mini_batch, CACHED_SYNC_INTERVAL)
}

/// Simulates one cache-enabled data-parallel step (PAC epochs ≥ 2): only
/// the Parallel-Adapters side network runs, from cached activations, with
/// the AllReduce amortized over `sync_interval` mini-batches.
///
/// Returns the amortized per-step time and per-device peak bytes.
pub fn simulate_cached_dp_step_with_interval(
    cluster: &Cluster,
    cost: &CostModel,
    mini_batch: usize,
    sync_interval: usize,
) -> DpSimResult {
    let n = cluster.len().max(1);
    let coll = CollectiveModel::new(cluster.link);
    let share = (mini_batch as f64 / n as f64).ceil();
    let flops = cost.cached_step_flops(1) * share;
    let compute = flops / cluster.min_effective_flops();
    let trainable = cost.trainable_bytes_total();
    let ar = coll.allreduce_time(n, trainable) / sync_interval.max(1) as f64;

    // Memory: side network (weights + grads + opt) plus the micro-batch's
    // cached b_i activations streamed from storage.
    let cached_acts_per_sample: usize = cost
        .config
        .enc_layers
        .saturating_mul(cost.config.hidden * cost.seq * 4)
        + cost.config.dec_layers * cost.config.hidden * cost.dec_seq * 4;
    let per_dev = 3 * trainable + (cached_acts_per_sample as f64 * share) as usize;
    DpSimResult {
        step_s: compute + ar,
        peak_bytes: vec![per_dev; n],
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pac_model::ModelConfig;
    use pac_peft::Technique;

    fn cost(t: Technique) -> CostModel {
        CostModel::new(ModelConfig::t5_base(), t, 128)
    }

    #[test]
    fn eddl_ooms_on_large_models_but_not_t5_base_with_peft() {
        // Fig 9(a): EDDL runs T5-Base with PEFT but OOMs on BART-Large and
        // T5-Large (a full replica per Nano does not fit).
        let cluster = Cluster::nanos(4);
        let limit = cluster.devices[0].usable_memory;

        let small = simulate_data_parallel(&cluster, &cost(Technique::adapters_default()), 4);
        assert_eq!(small.oom_device(limit), None, "T5-Base+Adapters should fit");

        let large = simulate_data_parallel(
            &cluster,
            &CostModel::new(ModelConfig::t5_large(), Technique::adapters_default(), 128),
            4,
        );
        assert!(
            large.oom_device(limit).is_some(),
            "T5-Large must OOM under DP"
        );

        let bart = simulate_data_parallel(
            &cluster,
            &CostModel::new(
                ModelConfig::bart_large(),
                Technique::parallel_default(),
                128,
            ),
            4,
        );
        assert!(
            bart.oom_device(limit).is_some(),
            "BART-Large must OOM under DP"
        );
    }

    #[test]
    fn pipeline_reduces_per_device_weights() {
        let cluster = Cluster::nanos(4);
        let c = cost(Technique::adapters_default());
        let layers = c.layer_costs().len();
        let pp = ParallelPlan::pipeline_even(layers, 4);
        let r = simulate_plan(&cluster, &c, &pp, 4, 4, Schedule::OneFOneB);
        let dp = simulate_data_parallel(&cluster, &c, 4);
        assert!(
            r.max_peak_bytes() < dp.peak_bytes[0],
            "pipeline {} vs dp {}",
            r.max_peak_bytes(),
            dp.peak_bytes[0]
        );
    }

    #[test]
    fn hybrid_beats_deep_pipeline_on_throughput() {
        // Fig 9(a): with 8 devices, a 2-stage × 4-wide hybrid plan beats the
        // 8-stage straight pipeline (fewer bubbles, less inter-stage comm).
        let cluster = Cluster::nanos(8);
        let c = cost(Technique::parallel_default());
        let layers = c.layer_costs().len();

        let straight = ParallelPlan::pipeline_even(layers, 8);
        let r_straight = simulate_plan(&cluster, &c, &straight, 8, 8, Schedule::OneFOneB);

        let hybrid = ParallelPlan {
            stages: vec![
                crate::plan::StageAssignment {
                    layer_start: 0,
                    layer_end: layers / 2,
                    devices: (0..4).collect(),
                },
                crate::plan::StageAssignment {
                    layer_start: layers / 2,
                    layer_end: layers,
                    devices: (4..8).collect(),
                },
            ],
        };
        let r_hybrid = simulate_plan(&cluster, &c, &hybrid, 8, 8, Schedule::OneFOneB);
        assert!(
            r_hybrid.makespan_s < r_straight.makespan_s,
            "hybrid {} vs straight {}",
            r_hybrid.makespan_s,
            r_straight.makespan_s
        );
    }

    #[test]
    fn cached_step_is_an_order_faster() {
        // Fig 11: cache-enabled epochs cut per-step time dramatically.
        let cluster = Cluster::nanos(4);
        let c = cost(Technique::parallel_default());
        let layers = c.layer_costs().len();
        let plan = ParallelPlan::pipeline_even(layers, 4);
        let full = simulate_plan(&cluster, &c, &plan, 16, 4, Schedule::OneFOneB);
        let cached = simulate_cached_dp_step(&cluster, &c, 16);
        // The AllReduce over the 128 Mbps LAN puts a floor on the cached
        // step, so the per-step gain is ~3× here; the end-to-end gains of
        // Fig 11 / Table 2 compound this with the baselines' slower steps.
        assert!(
            cached.step_s < full.makespan_s / 2.0,
            "cached {} vs full {}",
            cached.step_s,
            full.makespan_s
        );
    }

    #[test]
    fn full_fine_tuning_is_slower_than_pa() {
        let cluster = Cluster::nanos(4);
        let layers = cost(Technique::Full).layer_costs().len();
        let plan = ParallelPlan::pipeline_even(layers, 4);
        let t_full = simulate_plan(
            &cluster,
            &cost(Technique::Full),
            &plan,
            8,
            4,
            Schedule::OneFOneB,
        );
        let t_pa = simulate_plan(
            &cluster,
            &cost(Technique::parallel_default()),
            &plan,
            8,
            4,
            Schedule::OneFOneB,
        );
        assert!(t_pa.makespan_s < t_full.makespan_s);
    }

    #[test]
    fn throughput_scales_with_devices() {
        // More devices (wider groups) → shorter mini-batch time.
        let c = cost(Technique::parallel_default());
        let layers = c.layer_costs().len();
        let t2 = {
            let cluster = Cluster::nanos(2);
            let plan = ParallelPlan::pipeline_even(layers, 2);
            simulate_plan(&cluster, &c, &plan, 8, 4, Schedule::OneFOneB).makespan_s
        };
        let t8 = {
            let cluster = Cluster::nanos(8);
            let plan = ParallelPlan {
                stages: vec![
                    crate::plan::StageAssignment {
                        layer_start: 0,
                        layer_end: layers / 2,
                        devices: (0..4).collect(),
                    },
                    crate::plan::StageAssignment {
                        layer_start: layers / 2,
                        layer_end: layers,
                        devices: (4..8).collect(),
                    },
                ],
            };
            simulate_plan(&cluster, &c, &plan, 8, 4, Schedule::OneFOneB).makespan_s
        };
        assert!(t8 < t2, "8 devices {t8} vs 2 devices {t2}");
    }
}
