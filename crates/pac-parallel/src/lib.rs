//! # pac-parallel
//!
//! Parallel training engines for the PAC reproduction, in two layers:
//!
//! * [`schedule`] / [`simulate`] — **deterministic timeline simulation** of
//!   data parallelism (EDDL), pipeline parallelism (Eco-FL) and PAC's hybrid
//!   parallelism with 1F1B micro-batch scheduling, over the `pac-cluster`
//!   hardware models. These produce the makespans, throughputs, per-device
//!   peak memories and OOM verdicts behind Tables 2 and Figures 8/9/11.
//! * [`engine`] — **real multi-threaded execution** at micro scale:
//!   crossbeam-channel pipeline stages with the exact 1F1B op order, and a
//!   Rayon data-parallel trainer with AllReduce-style gradient averaging.
//!   Both are tested for *bitwise gradient equivalence* against
//!   single-device training, which is what entitles the simulated timelines
//!   to stand in for real runs.
//! * [`faults`] — **deterministic fault injection**: a seedable
//!   [`FaultPlan`] pins failures (lane panics, fail-stops, stragglers,
//!   AllReduce disturbances) to precise steps so the engines' supervision,
//!   retry, degrade, and checkpoint-recovery paths are reproducible in
//!   tests.

#![deny(missing_docs)]

pub mod engine;
pub mod faults;
pub mod fill;
pub mod plan;
pub mod schedule;
pub mod simulate;

pub use engine::{EngineError, EngineResult};
pub use faults::{Fault, FaultClock, FaultPlan, TimelineEvent, TimelineKind};
pub use fill::{
    plan_filled, plan_serialized, run_filled_mini_batch, FillTenant, FilledOp, FilledPlan,
    FilledRun, SlotLeak, TenantLoad,
};
pub use plan::{ParallelPlan, StageAssignment};
pub use schedule::{Schedule, SimResult, SimStage};
pub use simulate::{
    simulate_cached_dp_step, simulate_cached_dp_step_with_interval, simulate_data_parallel,
    simulate_plan, DpSimResult,
};
