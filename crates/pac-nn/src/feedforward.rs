//! Position-wise feed-forward block (two linear layers + nonlinearity).

use crate::activation::Activation;
use crate::linear::{Linear, LinearCtx};
use crate::param::{Module, Param};
use pac_tensor::{Result, Tensor};
use rand::Rng;

/// Context saved by [`FeedForward::forward`].
#[derive(Debug, Clone)]
pub struct FeedForwardCtx {
    up_ctx: LinearCtx,
    /// Pre-activation hidden state (input of the nonlinearity).
    hidden_pre: Tensor,
    down_ctx: LinearCtx,
}

/// `y = W₂ · act(W₁ · x + b₁) + b₂`, expanding `dim → ff_dim → dim`.
#[derive(Debug, Clone)]
pub struct FeedForward {
    /// Up projection `[dim, ff_dim]`.
    pub up: Linear,
    /// Down projection `[ff_dim, dim]`.
    pub down: Linear,
    /// Nonlinearity between the projections.
    pub act: Activation,
}

impl FeedForward {
    /// Creates a feed-forward block.
    pub fn new(name: &str, rng: &mut impl Rng, dim: usize, ff_dim: usize, act: Activation) -> Self {
        FeedForward {
            up: Linear::new(&format!("{name}.up"), rng, dim, ff_dim, true),
            down: Linear::new(&format!("{name}.down"), rng, ff_dim, dim, true),
            act,
        }
    }

    /// Quantizes every frozen projection (see [`Linear::quantize_frozen`]);
    /// returns how many engaged.
    pub fn quantize_frozen(&mut self) -> usize {
        usize::from(self.up.quantize_frozen()) + usize::from(self.down.quantize_frozen())
    }

    /// Forward pass over the 2-D view of `x`.
    ///
    /// # Errors
    /// Propagates shape mismatches from the projections.
    pub fn forward(&self, x: &Tensor) -> Result<(Tensor, FeedForwardCtx)> {
        let (hidden_pre, up_ctx) = self.up.forward(x)?;
        let hidden = self.act.forward(&hidden_pre);
        let (y, down_ctx) = self.down.forward(&hidden)?;
        Ok((
            y,
            FeedForwardCtx {
                up_ctx,
                hidden_pre,
                down_ctx,
            },
        ))
    }

    /// Backward pass; accumulates parameter grads, returns `dx`.
    ///
    /// # Errors
    /// Propagates shape mismatches from the projections.
    pub fn backward(&mut self, ctx: &FeedForwardCtx, dy: &Tensor) -> Result<Tensor> {
        let d_hidden = self.down.backward(&ctx.down_ctx, dy)?;
        let d_pre = self.act.backward(&ctx.hidden_pre, &d_hidden);
        pac_tensor::scratch::put(d_hidden);
        let dx = self.up.backward(&ctx.up_ctx, &d_pre)?;
        pac_tensor::scratch::put(d_pre);
        Ok(dx)
    }
}

impl Module for FeedForward {
    fn visit_params(&mut self, f: &mut dyn FnMut(&mut Param)) {
        self.up.visit_params(f);
        self.down.visit_params(f);
    }
    fn visit_params_ref(&self, f: &mut dyn FnMut(&Param)) {
        self.up.visit_params_ref(f);
        self.down.visit_params_ref(f);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gradcheck::assert_grad_close;
    use pac_tensor::{init, rng::seeded};

    #[test]
    fn shapes_and_params() {
        let mut rng = seeded(50);
        let ff = FeedForward::new("ff", &mut rng, 4, 16, Activation::Gelu);
        let x = init::randn(&mut rng, [3, 4], 1.0);
        let (y, _) = ff.forward(&x).unwrap();
        assert_eq!(y.dims(), &[3, 4]);
        assert_eq!(ff.num_params(), 4 * 16 + 16 + 16 * 4 + 4);
    }

    #[test]
    fn gradient_matches_finite_difference() {
        let mut rng = seeded(51);
        let ff = FeedForward::new("ff", &mut rng, 3, 8, Activation::Gelu);
        let x = init::randn(&mut rng, [2, 3], 0.5);
        let w = init::randn(&mut rng, [2, 3], 1.0);

        let (_, ctx) = ff.forward(&x).unwrap();
        let mut ff2 = ff.clone();
        let dx = ff2.backward(&ctx, &w).unwrap();

        assert_grad_close(&x, &dx, 2e-2, |xp| {
            ff.forward(xp).unwrap().0.mul(&w).unwrap().sum()
        });
    }

    #[test]
    fn relu_variant_gradient() {
        let mut rng = seeded(52);
        let ff = FeedForward::new("ff", &mut rng, 3, 6, Activation::Relu);
        let x = init::randn(&mut rng, [2, 3], 1.0);
        let (_, ctx) = ff.forward(&x).unwrap();
        let mut ff2 = ff.clone();
        let dx = ff2.backward(&ctx, &Tensor::ones([2, 3])).unwrap();
        assert_grad_close(&x, &dx, 3e-2, |xp| ff.forward(xp).unwrap().0.sum());
    }
}
