//! Multi-head scaled-dot-product attention (self- and cross-attention).

use crate::linear::{Linear, LinearCtx};
use crate::param::{Module, Param};
use pac_tensor::{ops, reduce, scratch, Result, Tensor, TensorError};
use rand::Rng;

/// Context saved by [`MultiHeadAttention::forward`] for the backward pass.
#[derive(Debug, Clone)]
pub struct AttentionCtx {
    /// Projection input contexts (q from `x`, k/v from `kv`).
    q_ctx: LinearCtx,
    k_ctx: LinearCtx,
    v_ctx: LinearCtx,
    /// Projected queries/keys/values, `[b*s, d]` / `[b*skv, d]`.
    q: Tensor,
    k: Tensor,
    v: Tensor,
    /// Softmax attention weights per (batch, head), each `[s, s_kv]`.
    attn: Vec<Tensor>,
    /// Concatenated per-head outputs before the output projection.
    o_ctx: LinearCtx,
    batch: usize,
    s_q: usize,
    s_kv: usize,
}

/// Multi-head attention with separate Q/K/V/O projections.
///
/// Self-attention passes the same tensor for `x` and `kv`; cross-attention
/// (decoder → encoder) passes the encoder output as `kv` and receives its
/// gradient back from [`MultiHeadAttention::backward`].
#[derive(Debug, Clone)]
pub struct MultiHeadAttention {
    /// Query projection `[d, d]`.
    pub wq: Linear,
    /// Key projection `[d, d]`.
    pub wk: Linear,
    /// Value projection `[d, d]`.
    pub wv: Linear,
    /// Output projection `[d, d]`.
    pub wo: Linear,
    heads: usize,
    dim: usize,
}

impl MultiHeadAttention {
    /// Creates an MHA block with `heads` heads over model dimension `dim`.
    ///
    /// # Panics
    /// Panics if `dim` is not divisible by `heads`.
    pub fn new(name: &str, rng: &mut impl Rng, dim: usize, heads: usize) -> Self {
        assert!(dim.is_multiple_of(heads), "dim must be divisible by heads");
        MultiHeadAttention {
            wq: Linear::new(&format!("{name}.wq"), rng, dim, dim, false),
            wk: Linear::new(&format!("{name}.wk"), rng, dim, dim, false),
            wv: Linear::new(&format!("{name}.wv"), rng, dim, dim, false),
            wo: Linear::new(&format!("{name}.wo"), rng, dim, dim, false),
            heads,
            dim,
        }
    }

    /// Number of attention heads.
    pub fn heads(&self) -> usize {
        self.heads
    }

    /// Model dimension.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Quantizes every frozen projection (see [`Linear::quantize_frozen`]);
    /// returns how many engaged.
    pub fn quantize_frozen(&mut self) -> usize {
        usize::from(self.wq.quantize_frozen())
            + usize::from(self.wk.quantize_frozen())
            + usize::from(self.wv.quantize_frozen())
            + usize::from(self.wo.quantize_frozen())
    }

    /// Extracts the `[s, dh]` block of head `h`, batch `b` from a
    /// `[b*s, heads*dh]` tensor.
    fn head_block(t: &Tensor, b: usize, h: usize, s: usize, dh: usize) -> Tensor {
        let (_, cols) = t.as_2d();
        let mut out = scratch::take_for(s * dh);
        out.reset_to([s, dh]);
        let dst = out.data_mut();
        for ti in 0..s {
            let r = b * s + ti;
            dst[ti * dh..(ti + 1) * dh]
                .copy_from_slice(&t.data()[r * cols + h * dh..r * cols + (h + 1) * dh]);
        }
        out
    }

    /// Accumulates an `[s, dh]` head block back into a `[b*s, heads*dh]`
    /// destination.
    fn add_head_block(dst: &mut Tensor, src: &Tensor, b: usize, h: usize, s: usize, dh: usize) {
        let (_, cols) = dst.as_2d();
        for ti in 0..s {
            let r = b * s + ti;
            let drow = &mut dst.data_mut()[r * cols + h * dh..r * cols + (h + 1) * dh];
            for (d, v) in drow.iter_mut().zip(&src.data()[ti * dh..(ti + 1) * dh]) {
                *d += v;
            }
        }
    }

    /// Forward pass.
    ///
    /// * `x`  — `[batch, s_q, d]` query-side input.
    /// * `kv` — `[batch, s_kv, d]` key/value-side input (`x` itself for
    ///   self-attention).
    /// * `causal` — apply a lower-triangular mask (decoder self-attention).
    ///
    /// # Errors
    /// Returns shape errors if the inputs are not rank-3 `[b, s, d]` with
    /// matching batch and model dimensions.
    pub fn forward(&self, x: &Tensor, kv: &Tensor, causal: bool) -> Result<(Tensor, AttentionCtx)> {
        let (batch, s_q, d) = Self::expect_bsd("attention", x)?;
        let (kb, s_kv, kd) = Self::expect_bsd("attention", kv)?;
        if kb != batch || kd != d || d != self.dim {
            return Err(TensorError::ShapeMismatch {
                op: "attention",
                lhs: x.dims().to_vec(),
                rhs: kv.dims().to_vec(),
            });
        }
        let dh = d / self.heads;
        let scale = 1.0 / (dh as f32).sqrt();

        let (q, q_ctx) = self.wq.forward(x)?;
        let (k, k_ctx) = self.wk.forward(kv)?;
        let (v, v_ctx) = self.wv.forward(kv)?;

        let mut o_concat = Tensor::zeros([batch * s_q, d]);
        let mut attn_saved = Vec::with_capacity(batch * self.heads);
        let mut scores = scratch::take_for(s_q * s_kv);
        let mut ob = scratch::take_for(s_q * dh);
        for b in 0..batch {
            for h in 0..self.heads {
                let qb = Self::head_block(&q, b, h, s_q, dh);
                let kb_ = Self::head_block(&k, b, h, s_kv, dh);
                let vb = Self::head_block(&v, b, h, s_kv, dh);
                ops::matmul_nt_into(&qb, &kb_, &mut scores)?;
                scores.scale_in_place(scale);
                if causal {
                    for i in 0..s_q {
                        for j in 0..s_kv {
                            if j > i {
                                scores.data_mut()[i * s_kv + j] = f32::NEG_INFINITY;
                            }
                        }
                    }
                }
                let attn = reduce::softmax_rows(&scores);
                ops::matmul_into(&attn, &vb, &mut ob)?;
                Self::add_head_block(&mut o_concat, &ob, b, h, s_q, dh);
                attn_saved.push(attn);
                scratch::put(qb);
                scratch::put(kb_);
                scratch::put(vb);
            }
        }
        scratch::put(scores);
        scratch::put(ob);

        let (y, o_ctx) = self.wo.forward(&o_concat)?;
        let y = y.reshape([batch, s_q, d])?;
        Ok((
            y,
            AttentionCtx {
                q_ctx,
                k_ctx,
                v_ctx,
                q,
                k,
                v,
                attn: attn_saved,
                o_ctx,
                batch,
                s_q,
                s_kv,
            },
        ))
    }

    /// Backward pass. Returns `(dx, dkv)`: the gradient w.r.t. the
    /// query-side input and the key/value-side input. For self-attention the
    /// caller adds them together.
    ///
    /// # Errors
    /// Propagates shape errors from the constituent matmuls.
    pub fn backward(&mut self, ctx: &AttentionCtx, dy: &Tensor) -> Result<(Tensor, Tensor)> {
        let d = self.dim;
        let dh = d / self.heads;
        let scale = 1.0 / (dh as f32).sqrt();
        let (batch, s_q, s_kv) = (ctx.batch, ctx.s_q, ctx.s_kv);

        // Through the output projection.
        let d_oconcat = self.wo.backward(&ctx.o_ctx, dy)?;

        let mut dq = scratch::take([batch * s_q, d]);
        let mut dk = scratch::take([batch * s_kv, d]);
        let mut dv = scratch::take([batch * s_kv, d]);

        let mut d_attn = scratch::take_for(s_q * s_kv);
        let mut dv_bh = scratch::take_for(s_kv * dh);
        let mut dq_bh = scratch::take_for(s_q * dh);
        let mut dk_bh = scratch::take_for(s_kv * dh);
        for b in 0..batch {
            for h in 0..self.heads {
                let attn = &ctx.attn[b * self.heads + h];
                let do_bh = Self::head_block(&d_oconcat, b, h, s_q, dh);
                let vb = Self::head_block(&ctx.v, b, h, s_kv, dh);
                let qb = Self::head_block(&ctx.q, b, h, s_q, dh);
                let kb = Self::head_block(&ctx.k, b, h, s_kv, dh);

                // o = attn · v
                ops::matmul_nt_into(&do_bh, &vb, &mut d_attn)?;
                ops::matmul_tn_into(attn, &do_bh, &mut dv_bh)?;

                // attn = softmax(scores); masked entries have attn == 0 so
                // their gradient is exactly zero through the softmax Jacobian.
                let mut ds = reduce::softmax_rows_backward(attn, &d_attn)?;
                ds.scale_in_place(scale);

                // scores = q · kᵀ (· scale, already folded into ds)
                ops::matmul_into(&ds, &kb, &mut dq_bh)?;
                ops::matmul_tn_into(&ds, &qb, &mut dk_bh)?;

                Self::add_head_block(&mut dq, &dq_bh, b, h, s_q, dh);
                Self::add_head_block(&mut dk, &dk_bh, b, h, s_kv, dh);
                Self::add_head_block(&mut dv, &dv_bh, b, h, s_kv, dh);

                scratch::put(do_bh);
                scratch::put(vb);
                scratch::put(qb);
                scratch::put(kb);
                scratch::put(ds);
            }
        }
        scratch::put(d_attn);
        scratch::put(dv_bh);
        scratch::put(dq_bh);
        scratch::put(dk_bh);
        scratch::put(d_oconcat);

        let dx = self.wq.backward(&ctx.q_ctx, &dq)?;
        let dkv_k = self.wk.backward(&ctx.k_ctx, &dk)?;
        let dkv_v = self.wv.backward(&ctx.v_ctx, &dv)?;
        scratch::put(dq);
        scratch::put(dk);
        scratch::put(dv);
        let dkv = dkv_k.add(&dkv_v)?;
        scratch::put(dkv_k);
        scratch::put(dkv_v);

        Ok((dx.reshape([batch, s_q, d])?, dkv.reshape([batch, s_kv, d])?))
    }

    fn expect_bsd(op: &'static str, t: &Tensor) -> Result<(usize, usize, usize)> {
        match t.dims() {
            &[b, s, d] => Ok((b, s, d)),
            _ => Err(TensorError::RankMismatch {
                op,
                expected: 3,
                actual: t.rank(),
            }),
        }
    }
}

impl Module for MultiHeadAttention {
    fn visit_params(&mut self, f: &mut dyn FnMut(&mut Param)) {
        self.wq.visit_params(f);
        self.wk.visit_params(f);
        self.wv.visit_params(f);
        self.wo.visit_params(f);
    }
    fn visit_params_ref(&self, f: &mut dyn FnMut(&Param)) {
        self.wq.visit_params_ref(f);
        self.wk.visit_params_ref(f);
        self.wv.visit_params_ref(f);
        self.wo.visit_params_ref(f);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gradcheck::assert_grad_close;
    use pac_tensor::{init, rng::seeded};

    fn mha(seed: u64, d: usize, h: usize) -> MultiHeadAttention {
        let mut rng = seeded(seed);
        MultiHeadAttention::new("attn", &mut rng, d, h)
    }

    #[test]
    fn forward_shape_and_param_count() {
        let a = mha(30, 8, 2);
        let mut rng = seeded(31);
        let x = init::randn(&mut rng, [2, 3, 8], 1.0);
        let (y, _) = a.forward(&x, &x, false).unwrap();
        assert_eq!(y.dims(), &[2, 3, 8]);
        assert_eq!(a.num_params(), 4 * 8 * 8);
    }

    #[test]
    fn rejects_bad_ranks_and_dims() {
        let a = mha(32, 8, 2);
        let x2d = Tensor::zeros([3, 8]);
        assert!(a.forward(&x2d, &x2d, false).is_err());
        let x = Tensor::zeros([1, 3, 8]);
        let bad_kv = Tensor::zeros([2, 3, 8]);
        assert!(a.forward(&x, &bad_kv, false).is_err());
    }

    #[test]
    fn causal_mask_blocks_future_positions() {
        let a = mha(33, 4, 1);
        let mut rng = seeded(34);
        let x = init::randn(&mut rng, [1, 4, 4], 1.0);
        let (_, ctx) = a.forward(&x, &x, true).unwrap();
        let attn = &ctx.attn[0];
        for i in 0..4 {
            for j in (i + 1)..4 {
                assert_eq!(attn.get(&[i, j]).unwrap(), 0.0, "future leak at ({i},{j})");
            }
            let rowsum: f32 = attn.row(i).unwrap().iter().sum();
            assert!((rowsum - 1.0).abs() < 1e-5);
        }
    }

    #[test]
    fn causal_future_input_does_not_affect_past_output() {
        let a = mha(35, 4, 2);
        let mut rng = seeded(36);
        let x1 = init::randn(&mut rng, [1, 3, 4], 1.0);
        let mut x2 = x1.clone();
        // Perturb only the last position.
        for c in 0..4 {
            let v = x2.get(&[0, 2, c]).unwrap();
            x2.set(&[0, 2, c], v + 1.0).unwrap();
        }
        let (y1, _) = a.forward(&x1, &x1, true).unwrap();
        let (y2, _) = a.forward(&x2, &x2, true).unwrap();
        for t in 0..2 {
            for c in 0..4 {
                assert!(
                    (y1.get(&[0, t, c]).unwrap() - y2.get(&[0, t, c]).unwrap()).abs() < 1e-6,
                    "position {t} changed"
                );
            }
        }
    }

    #[test]
    fn self_attention_gradient_matches_finite_difference() {
        let a = mha(37, 4, 2);
        let mut rng = seeded(38);
        let x = init::randn(&mut rng, [1, 3, 4], 0.5);
        let w = init::randn(&mut rng, [1, 3, 4], 1.0);

        let (_, ctx) = a.forward(&x, &x, false).unwrap();
        let mut a2 = a.clone();
        let (dx, dkv) = a2.backward(&ctx, &w).unwrap();
        let total = dx.add(&dkv).unwrap();

        assert_grad_close(&x, &total, 3e-2, |xp| {
            a.forward(xp, xp, false).unwrap().0.mul(&w).unwrap().sum()
        });
    }

    #[test]
    fn cross_attention_kv_gradient_matches_finite_difference() {
        let a = mha(39, 4, 1);
        let mut rng = seeded(40);
        let x = init::randn(&mut rng, [1, 2, 4], 0.5);
        let kv = init::randn(&mut rng, [1, 3, 4], 0.5);
        let w = init::randn(&mut rng, [1, 2, 4], 1.0);

        let (_, ctx) = a.forward(&x, &kv, false).unwrap();
        let mut a2 = a.clone();
        let (dx, dkv) = a2.backward(&ctx, &w).unwrap();

        assert_grad_close(&kv, &dkv, 3e-2, |kvp| {
            a.forward(&x, kvp, false).unwrap().0.mul(&w).unwrap().sum()
        });
        assert_grad_close(&x, &dx, 3e-2, |xp| {
            a.forward(xp, &kv, false).unwrap().0.mul(&w).unwrap().sum()
        });
    }

    #[test]
    fn causal_gradient_matches_finite_difference() {
        let a = mha(41, 4, 2);
        let mut rng = seeded(42);
        let x = init::randn(&mut rng, [1, 3, 4], 0.5);
        let w = init::randn(&mut rng, [1, 3, 4], 1.0);

        let (_, ctx) = a.forward(&x, &x, true).unwrap();
        let mut a2 = a.clone();
        let (dx, dkv) = a2.backward(&ctx, &w).unwrap();
        let total = dx.add(&dkv).unwrap();

        assert_grad_close(&x, &total, 3e-2, |xp| {
            a.forward(xp, xp, true).unwrap().0.mul(&w).unwrap().sum()
        });
    }

    #[test]
    fn weight_gradients_match_finite_difference() {
        let a = mha(43, 4, 2);
        let mut rng = seeded(44);
        let x = init::randn(&mut rng, [1, 2, 4], 0.5);

        let (_, ctx) = a.forward(&x, &x, false).unwrap();
        let mut a2 = a.clone();
        a2.backward(&ctx, &Tensor::ones([1, 2, 4])).unwrap();

        assert_grad_close(&a.wq.w.value, &a2.wq.w.grad, 3e-2, |wp| {
            let mut at = a.clone();
            at.wq.w.value = wp.clone();
            at.forward(&x, &x, false).unwrap().0.sum()
        });
        assert_grad_close(&a.wv.w.value, &a2.wv.w.grad, 3e-2, |wp| {
            let mut at = a.clone();
            at.wv.w.value = wp.clone();
            at.forward(&x, &x, false).unwrap().0.sum()
        });
    }
}
