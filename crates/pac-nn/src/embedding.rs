//! Token and position embeddings.

use crate::param::{Module, Param};
use pac_tensor::{init, Result, Tensor, TensorError};
use rand::Rng;

/// Lookup-table embedding: maps token ids to learned `[dim]` vectors.
#[derive(Debug, Clone)]
pub struct Embedding {
    /// The embedding table, `[vocab, dim]`.
    pub table: Param,
    vocab: usize,
    dim: usize,
}

impl Embedding {
    /// Creates a `[vocab, dim]` embedding with N(0, 0.02) init (GPT/T5
    /// convention).
    pub fn new(name: &str, rng: &mut impl Rng, vocab: usize, dim: usize) -> Self {
        Embedding {
            table: Param::new(
                format!("{name}.table"),
                init::randn(rng, [vocab, dim], 0.02),
            ),
            vocab,
            dim,
        }
    }

    /// Vocabulary size.
    pub fn vocab(&self) -> usize {
        self.vocab
    }

    /// Embedding dimension.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Looks up `tokens`, producing `[tokens.len(), dim]`.
    ///
    /// # Errors
    /// Returns [`TensorError::IndexOutOfBounds`] on out-of-vocabulary ids.
    pub fn forward(&self, tokens: &[usize]) -> Result<Tensor> {
        let mut out = Vec::with_capacity(tokens.len() * self.dim);
        for &t in tokens {
            if t >= self.vocab {
                return Err(TensorError::IndexOutOfBounds {
                    index: t,
                    bound: self.vocab,
                });
            }
            out.extend_from_slice(&self.table.value.data()[t * self.dim..(t + 1) * self.dim]);
        }
        Tensor::from_vec(out, [tokens.len(), self.dim])
    }

    /// Backward pass: scatters `dy` rows into the table gradient.
    ///
    /// # Errors
    /// Returns a shape error if `dy` row count differs from `tokens.len()`.
    pub fn backward(&mut self, tokens: &[usize], dy: &Tensor) -> Result<()> {
        let (rows, cols) = dy.as_2d();
        if rows != tokens.len() || cols != self.dim {
            return Err(TensorError::ShapeMismatch {
                op: "embedding_backward",
                lhs: dy.dims().to_vec(),
                rhs: vec![tokens.len(), self.dim],
            });
        }
        if !self.table.trainable {
            return Ok(());
        }
        for (r, &t) in tokens.iter().enumerate() {
            let grow = &mut self.table.grad.data_mut()[t * self.dim..(t + 1) * self.dim];
            for (g, d) in grow.iter_mut().zip(&dy.data()[r * cols..(r + 1) * cols]) {
                *g += d;
            }
        }
        Ok(())
    }
}

impl Module for Embedding {
    fn visit_params(&mut self, f: &mut dyn FnMut(&mut Param)) {
        f(&mut self.table);
    }
    fn visit_params_ref(&self, f: &mut dyn FnMut(&Param)) {
        f(&self.table);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pac_tensor::rng::seeded;

    #[test]
    fn lookup_returns_table_rows() {
        let mut rng = seeded(10);
        let e = Embedding::new("emb", &mut rng, 10, 4);
        let y = e.forward(&[3, 3, 7]).unwrap();
        assert_eq!(y.dims(), &[3, 4]);
        assert_eq!(y.row(0).unwrap(), y.row(1).unwrap());
        assert_eq!(y.row(2).unwrap(), &e.table.value.data()[7 * 4..8 * 4]);
    }

    #[test]
    fn oov_is_error() {
        let mut rng = seeded(11);
        let e = Embedding::new("emb", &mut rng, 4, 2);
        assert!(e.forward(&[4]).is_err());
    }

    #[test]
    fn backward_scatters_and_accumulates() {
        let mut rng = seeded(12);
        let mut e = Embedding::new("emb", &mut rng, 5, 2);
        let dy = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], [2, 2]).unwrap();
        e.backward(&[1, 1], &dy).unwrap();
        // Both rows hit token 1: grad = [1+3, 2+4].
        assert_eq!(&e.table.grad.data()[2..4], &[4.0, 6.0]);
        assert_eq!(&e.table.grad.data()[0..2], &[0.0, 0.0]);
    }

    #[test]
    fn frozen_table_gets_no_grads() {
        let mut rng = seeded(13);
        let mut e = Embedding::new("emb", &mut rng, 5, 2);
        e.freeze_all();
        e.backward(&[0], &Tensor::ones([1, 2])).unwrap();
        assert_eq!(e.table.grad.norm(), 0.0);
    }

    #[test]
    fn backward_shape_mismatch_is_error() {
        let mut rng = seeded(14);
        let mut e = Embedding::new("emb", &mut rng, 5, 2);
        assert!(e.backward(&[0, 1], &Tensor::ones([1, 2])).is_err());
        assert!(e.backward(&[0], &Tensor::ones([1, 3])).is_err());
    }
}
