//! Pointwise nonlinearities with exact derivative implementations.

use pac_tensor::Tensor;

/// Supported activation functions.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Activation {
    /// Rectified linear unit.
    Relu,
    /// Gaussian error linear unit (tanh approximation, as used by T5/BART
    /// implementations).
    Gelu,
    /// Hyperbolic tangent.
    Tanh,
    /// Identity (no-op), useful for ablations.
    Identity,
}

impl Activation {
    /// Applies the activation elementwise.
    pub fn forward(&self, x: &Tensor) -> Tensor {
        match self {
            Activation::Relu => x.map(|v| v.max(0.0)),
            Activation::Gelu => x.map(gelu),
            Activation::Tanh => x.map(f32::tanh),
            Activation::Identity => x.clone(),
        }
    }

    /// Backward pass: `dx = dy ⊙ f'(x)` given the forward *input* `x`.
    ///
    /// # Panics
    /// Panics if `x` and `dy` shapes differ (programming error).
    pub fn backward(&self, x: &Tensor, dy: &Tensor) -> Tensor {
        let d = match self {
            Activation::Relu => x.map(|v| if v > 0.0 { 1.0 } else { 0.0 }),
            Activation::Gelu => x.map(gelu_prime),
            Activation::Tanh => x.map(|v| 1.0 - v.tanh().powi(2)),
            Activation::Identity => Tensor::ones(x.dims()),
        };
        d.mul(dy).expect("activation backward shapes must match")
    }
}

/// Tanh-approximated GELU: `0.5 x (1 + tanh(√(2/π)(x + 0.044715 x³)))`.
fn gelu(x: f32) -> f32 {
    const C: f32 = 0.797_884_6; // sqrt(2/pi)
    0.5 * x * (1.0 + (C * (x + 0.044_715 * x * x * x)).tanh())
}

/// Derivative of the tanh-approximated GELU.
fn gelu_prime(x: f32) -> f32 {
    const C: f32 = 0.797_884_6;
    let inner = C * (x + 0.044_715 * x * x * x);
    let t = inner.tanh();
    let sech2 = 1.0 - t * t;
    0.5 * (1.0 + t) + 0.5 * x * sech2 * C * (1.0 + 3.0 * 0.044_715 * x * x)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gradcheck::assert_grad_close;
    use pac_tensor::{init, rng::seeded};

    #[test]
    fn relu_clamps_negatives() {
        let x = Tensor::from_vec(vec![-1.0, 0.0, 2.0], [3]).unwrap();
        assert_eq!(Activation::Relu.forward(&x).data(), &[0.0, 0.0, 2.0]);
    }

    #[test]
    fn gelu_known_values() {
        // GELU(0) = 0, GELU(x) ≈ x for large x, ≈ 0 for very negative x.
        let x = Tensor::from_vec(vec![0.0, 6.0, -6.0], [3]).unwrap();
        let y = Activation::Gelu.forward(&x);
        assert!(y.data()[0].abs() < 1e-6);
        assert!((y.data()[1] - 6.0).abs() < 1e-3);
        assert!(y.data()[2].abs() < 1e-3);
    }

    #[test]
    fn identity_is_noop() {
        let x = Tensor::from_vec(vec![1.5, -2.5], [2]).unwrap();
        assert_eq!(Activation::Identity.forward(&x), x);
        let dy = Tensor::ones([2]);
        assert_eq!(Activation::Identity.backward(&x, &dy), dy);
    }

    #[test]
    fn all_gradients_match_finite_difference() {
        let mut rng = seeded(6);
        // Avoid the ReLU kink at exactly 0 by shifting values away from it.
        let x =
            init::randn(&mut rng, [3, 4], 1.0).map(|v| if v.abs() < 0.05 { v + 0.1 } else { v });
        for act in [
            Activation::Relu,
            Activation::Gelu,
            Activation::Tanh,
            Activation::Identity,
        ] {
            let dy = Tensor::ones(x.dims());
            let dx = act.backward(&x, &dy);
            assert_grad_close(&x, &dx, 2e-2, |xp| act.forward(xp).sum());
        }
    }
}
