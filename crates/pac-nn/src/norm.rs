//! Layer normalization over the last dimension.

use crate::param::{Module, Param};
use pac_tensor::{Result, Tensor, TensorError};

/// Context saved by [`LayerNorm::forward`]: the normalized activations and
/// per-row inverse standard deviations.
#[derive(Debug, Clone)]
pub struct LayerNormCtx {
    /// Normalized input `x̂ = (x - μ) / σ`, shape of `x`.
    pub x_hat: Tensor,
    /// Per-row `1/σ`, length = rows of the 2-D view.
    pub inv_std: Vec<f32>,
}

/// LayerNorm with learnable gain `γ` and shift `β` over the last dimension.
#[derive(Debug, Clone)]
pub struct LayerNorm {
    /// Gain, `[dim]`.
    pub gamma: Param,
    /// Shift, `[dim]`.
    pub beta: Param,
    dim: usize,
    eps: f32,
}

impl LayerNorm {
    /// Creates a LayerNorm over feature dimension `dim` (γ=1, β=0, ε=1e-5).
    pub fn new(name: &str, dim: usize) -> Self {
        LayerNorm {
            gamma: Param::new(format!("{name}.gamma"), Tensor::ones([dim])),
            beta: Param::new(format!("{name}.beta"), Tensor::zeros([dim])),
            dim,
            eps: 1e-5,
        }
    }

    /// Feature dimension.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Forward pass: normalizes each row of the 2-D view, then applies γ, β.
    ///
    /// # Errors
    /// Returns a shape error if the last dimension differs from `dim`.
    pub fn forward(&self, x: &Tensor) -> Result<(Tensor, LayerNormCtx)> {
        let (rows, cols) = x.as_2d();
        if cols != self.dim {
            return Err(TensorError::ShapeMismatch {
                op: "layernorm",
                lhs: x.dims().to_vec(),
                rhs: vec![self.dim],
            });
        }
        let mut x_hat = x.clone();
        let mut inv_std = Vec::with_capacity(rows);
        for r in 0..rows {
            let row = &mut x_hat.data_mut()[r * cols..(r + 1) * cols];
            let mean: f32 = row.iter().sum::<f32>() / cols as f32;
            let var: f32 = row.iter().map(|v| (v - mean).powi(2)).sum::<f32>() / cols as f32;
            let is = 1.0 / (var + self.eps).sqrt();
            for v in row.iter_mut() {
                *v = (*v - mean) * is;
            }
            inv_std.push(is);
        }
        let mut y = x_hat.clone();
        let g = self.gamma.value.data();
        let b = self.beta.value.data();
        for r in 0..rows {
            let row = &mut y.data_mut()[r * cols..(r + 1) * cols];
            for (j, v) in row.iter_mut().enumerate() {
                *v = *v * g[j] + b[j];
            }
        }
        Ok((y, LayerNormCtx { x_hat, inv_std }))
    }

    /// Backward pass. Accumulates `dγ`, `dβ`; returns `dx`.
    ///
    /// Uses the standard LayerNorm gradient:
    /// `dx = (1/σ)(dŷ − mean(dŷ) − x̂·mean(dŷ⊙x̂))` with `dŷ = dy⊙γ`.
    ///
    /// # Errors
    /// Returns a shape error if `dy` does not match the context shape.
    pub fn backward(&mut self, ctx: &LayerNormCtx, dy: &Tensor) -> Result<Tensor> {
        let (rows, cols) = ctx.x_hat.as_2d();
        if dy.as_2d() != (rows, cols) {
            return Err(TensorError::ShapeMismatch {
                op: "layernorm_backward",
                lhs: dy.dims().to_vec(),
                rhs: ctx.x_hat.dims().to_vec(),
            });
        }
        let g = self.gamma.value.data().to_vec();
        let mut dgamma = vec![0.0f32; cols];
        let mut dbeta = vec![0.0f32; cols];
        let mut dx = Tensor::zeros(dy.dims());
        for r in 0..rows {
            let dyr = &dy.data()[r * cols..(r + 1) * cols];
            let xh = &ctx.x_hat.data()[r * cols..(r + 1) * cols];
            let is = ctx.inv_std[r];

            // Parameter gradients.
            for j in 0..cols {
                dgamma[j] += dyr[j] * xh[j];
                dbeta[j] += dyr[j];
            }

            // dŷ = dy ⊙ γ; means needed for the input gradient.
            let mut mean_dyh = 0.0f32;
            let mut mean_dyh_xh = 0.0f32;
            for j in 0..cols {
                let dyh = dyr[j] * g[j];
                mean_dyh += dyh;
                mean_dyh_xh += dyh * xh[j];
            }
            mean_dyh /= cols as f32;
            mean_dyh_xh /= cols as f32;

            let dxr = &mut dx.data_mut()[r * cols..(r + 1) * cols];
            for j in 0..cols {
                let dyh = dyr[j] * g[j];
                dxr[j] = is * (dyh - mean_dyh - xh[j] * mean_dyh_xh);
            }
        }
        if self.gamma.trainable {
            self.gamma
                .accumulate_grad(&Tensor::from_vec(dgamma, [cols])?);
        }
        if self.beta.trainable {
            self.beta.accumulate_grad(&Tensor::from_vec(dbeta, [cols])?);
        }
        Ok(dx)
    }
}

impl Module for LayerNorm {
    fn visit_params(&mut self, f: &mut dyn FnMut(&mut Param)) {
        f(&mut self.gamma);
        f(&mut self.beta);
    }
    fn visit_params_ref(&self, f: &mut dyn FnMut(&Param)) {
        f(&self.gamma);
        f(&self.beta);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gradcheck::assert_grad_close;
    use pac_tensor::{init, rng::seeded};

    #[test]
    fn output_rows_are_normalized() {
        let mut rng = seeded(7);
        let ln = LayerNorm::new("ln", 8);
        let x = init::randn(&mut rng, [4, 8], 3.0).add_scalar(5.0);
        let (y, _) = ln.forward(&x).unwrap();
        for r in 0..4 {
            let row = y.row(r).unwrap();
            let mean: f32 = row.iter().sum::<f32>() / 8.0;
            let var: f32 = row.iter().map(|v| (v - mean).powi(2)).sum::<f32>() / 8.0;
            assert!(mean.abs() < 1e-4, "row mean {mean}");
            assert!((var - 1.0).abs() < 1e-3, "row var {var}");
        }
    }

    #[test]
    fn gamma_beta_affect_output() {
        let mut ln = LayerNorm::new("ln", 2);
        ln.gamma.value = Tensor::from_vec(vec![2.0, 2.0], [2]).unwrap();
        ln.beta.value = Tensor::from_vec(vec![1.0, 1.0], [2]).unwrap();
        let x = Tensor::from_vec(vec![-1.0, 1.0], [1, 2]).unwrap();
        let (y, _) = ln.forward(&x).unwrap();
        // x̂ = [-1, 1] (approximately), y = 2x̂ + 1 = [-1, 3].
        assert!((y.data()[0] + 1.0).abs() < 1e-2);
        assert!((y.data()[1] - 3.0).abs() < 1e-2);
    }

    #[test]
    fn wrong_dim_is_error() {
        let ln = LayerNorm::new("ln", 4);
        assert!(ln.forward(&Tensor::zeros([2, 3])).is_err());
    }

    #[test]
    fn input_gradient_matches_finite_difference() {
        let mut rng = seeded(8);
        let ln = LayerNorm::new("ln", 5);
        let x = init::randn(&mut rng, [3, 5], 1.0);
        // Weighted-sum loss to exercise non-uniform upstream gradients.
        let w = init::randn(&mut rng, [3, 5], 1.0);

        let (_, ctx) = ln.forward(&x).unwrap();
        let mut ln2 = ln.clone();
        let dx = ln2.backward(&ctx, &w).unwrap();

        assert_grad_close(&x, &dx, 2e-2, |xp| {
            ln.forward(xp).unwrap().0.mul(&w).unwrap().sum()
        });
    }

    #[test]
    fn param_gradients_match_finite_difference() {
        let mut rng = seeded(9);
        let ln = LayerNorm::new("ln", 4);
        let x = init::randn(&mut rng, [2, 4], 1.0);
        let (_, ctx) = ln.forward(&x).unwrap();
        let mut ln2 = ln.clone();
        ln2.backward(&ctx, &Tensor::ones([2, 4])).unwrap();

        assert_grad_close(&ln.gamma.value, &ln2.gamma.grad, 1e-2, |gp| {
            let mut lt = ln.clone();
            lt.gamma.value = gp.clone();
            lt.forward(&x).unwrap().0.sum()
        });
        assert_grad_close(&ln.beta.value, &ln2.beta.grad, 1e-2, |bp| {
            let mut lt = ln.clone();
            lt.beta.value = bp.clone();
            lt.forward(&x).unwrap().0.sum()
        });
    }
}
