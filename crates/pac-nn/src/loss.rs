//! Loss functions returning `(loss, dlogits)` pairs.

use pac_tensor::{reduce, Result, Tensor, TensorError};

/// Softmax cross-entropy over rows of `logits` against integer targets.
///
/// Returns the mean loss and the gradient w.r.t. `logits`
/// (`(softmax - onehot) / n`).
///
/// # Errors
/// Returns a shape error if `targets.len()` differs from the row count or a
/// target id exceeds the class count.
pub fn cross_entropy(logits: &Tensor, targets: &[usize]) -> Result<(f32, Tensor)> {
    let (rows, cols) = logits.as_2d();
    if targets.len() != rows {
        return Err(TensorError::ShapeMismatch {
            op: "cross_entropy",
            lhs: logits.dims().to_vec(),
            rhs: vec![targets.len()],
        });
    }
    let probs = reduce::softmax_rows(logits);
    let mut loss = 0.0f64;
    let mut grad = probs.clone();
    let inv_n = 1.0 / rows as f32;
    for (r, &t) in targets.iter().enumerate() {
        if t >= cols {
            return Err(TensorError::IndexOutOfBounds {
                index: t,
                bound: cols,
            });
        }
        let p = probs.data()[r * cols + t].max(1e-12);
        loss -= (p as f64).ln();
        grad.data_mut()[r * cols + t] -= 1.0;
    }
    grad.scale_in_place(inv_n);
    Ok(((loss / rows as f64) as f32, grad))
}

/// Softmax cross-entropy with label smoothing `eps`: the target
/// distribution is `(1 - eps)` on the true class and `eps / (C - 1)` on
/// the rest. Returns the mean loss and gradient w.r.t. `logits`.
///
/// # Errors
/// Returns a shape error on length mismatches or out-of-range targets.
pub fn cross_entropy_smoothed(
    logits: &Tensor,
    targets: &[usize],
    eps: f32,
) -> Result<(f32, Tensor)> {
    let (rows, cols) = logits.as_2d();
    if targets.len() != rows || cols < 2 {
        return Err(TensorError::ShapeMismatch {
            op: "cross_entropy_smoothed",
            lhs: logits.dims().to_vec(),
            rhs: vec![targets.len()],
        });
    }
    let probs = reduce::softmax_rows(logits);
    let off = eps / (cols - 1) as f32;
    let on = 1.0 - eps;
    let mut loss = 0.0f64;
    let mut grad = probs.clone();
    let inv_n = 1.0 / rows as f32;
    for (r, &t) in targets.iter().enumerate() {
        if t >= cols {
            return Err(TensorError::IndexOutOfBounds {
                index: t,
                bound: cols,
            });
        }
        for c in 0..cols {
            let q = if c == t { on } else { off };
            let p = probs.data()[r * cols + c].max(1e-12);
            loss -= (q as f64) * (p as f64).ln();
            grad.data_mut()[r * cols + c] -= q;
        }
    }
    grad.scale_in_place(inv_n);
    Ok(((loss / rows as f64) as f32, grad))
}

/// Mean-squared error between `pred` and `target` (same shapes).
///
/// Returns the mean loss and the gradient `2(pred - target)/n`.
///
/// # Errors
/// Returns a shape error if the shapes differ.
pub fn mse(pred: &Tensor, target: &Tensor) -> Result<(f32, Tensor)> {
    let diff = pred.sub(target)?;
    let n = diff.numel() as f32;
    let loss = diff.data().iter().map(|d| (d * d) as f64).sum::<f64>() as f32 / n;
    let grad = diff.scale(2.0 / n);
    Ok((loss, grad))
}

#[cfg(test)]
mod tests {
    use super::*;
    use pac_tensor::{init, rng::seeded};

    #[test]
    fn cross_entropy_perfect_prediction_is_near_zero() {
        let logits = Tensor::from_vec(vec![10.0, -10.0, -10.0, 10.0], [2, 2]).unwrap();
        let (loss, _) = cross_entropy(&logits, &[0, 1]).unwrap();
        assert!(loss < 1e-4);
    }

    #[test]
    fn cross_entropy_uniform_is_log_classes() {
        let logits = Tensor::zeros([3, 4]);
        let (loss, _) = cross_entropy(&logits, &[0, 1, 2]).unwrap();
        assert!((loss - (4.0f32).ln()).abs() < 1e-5);
    }

    #[test]
    fn cross_entropy_gradient_matches_finite_difference() {
        let mut rng = seeded(70);
        let logits = init::randn(&mut rng, [3, 4], 1.0);
        let targets = [1usize, 3, 0];
        let (_, grad) = cross_entropy(&logits, &targets).unwrap();

        let eps = 1e-3;
        for i in 0..logits.numel() {
            let mut lp = logits.clone();
            lp.data_mut()[i] += eps;
            let mut lm = logits.clone();
            lm.data_mut()[i] -= eps;
            let num = (cross_entropy(&lp, &targets).unwrap().0
                - cross_entropy(&lm, &targets).unwrap().0)
                / (2.0 * eps);
            assert!(
                (num - grad.data()[i]).abs() < 1e-3,
                "mismatch at {i}: {num} vs {}",
                grad.data()[i]
            );
        }
    }

    #[test]
    fn cross_entropy_validates_inputs() {
        let logits = Tensor::zeros([2, 3]);
        assert!(cross_entropy(&logits, &[0]).is_err());
        assert!(cross_entropy(&logits, &[0, 3]).is_err());
    }

    #[test]
    fn smoothed_ce_reduces_to_plain_at_zero_eps() {
        let mut rng = seeded(72);
        let logits = init::randn(&mut rng, [3, 4], 1.0);
        let targets = [1usize, 3, 0];
        let (l0, g0) = cross_entropy(&logits, &targets).unwrap();
        let (l1, g1) = cross_entropy_smoothed(&logits, &targets, 0.0).unwrap();
        assert!((l0 - l1).abs() < 1e-5);
        assert!(g0.approx_eq(&g1, 1e-6));
    }

    #[test]
    fn smoothed_ce_gradient_matches_finite_difference() {
        let mut rng = seeded(73);
        let logits = init::randn(&mut rng, [2, 3], 1.0);
        let targets = [2usize, 0];
        let eps_s = 0.1f32;
        let (_, grad) = cross_entropy_smoothed(&logits, &targets, eps_s).unwrap();
        let h = 1e-3;
        for i in 0..logits.numel() {
            let mut lp = logits.clone();
            lp.data_mut()[i] += h;
            let mut lm = logits.clone();
            lm.data_mut()[i] -= h;
            let num = (cross_entropy_smoothed(&lp, &targets, eps_s).unwrap().0
                - cross_entropy_smoothed(&lm, &targets, eps_s).unwrap().0)
                / (2.0 * h);
            assert!((num - grad.data()[i]).abs() < 1e-3, "at {i}");
        }
    }

    #[test]
    fn smoothing_softens_confident_gradients() {
        // A perfectly confident correct prediction has ~zero plain-CE
        // gradient but a nonzero smoothed gradient (pulling toward the
        // smoothed target).
        let logits = Tensor::from_vec(vec![20.0, -20.0], [1, 2]).unwrap();
        let (_, g_plain) = cross_entropy(&logits, &[0]).unwrap();
        let (_, g_smooth) = cross_entropy_smoothed(&logits, &[0], 0.2).unwrap();
        assert!(g_plain.norm() < 1e-6);
        assert!(g_smooth.norm() > 0.1);
    }

    #[test]
    fn mse_zero_when_equal() {
        let a = Tensor::ones([2, 2]);
        let (loss, grad) = mse(&a, &a).unwrap();
        assert_eq!(loss, 0.0);
        assert_eq!(grad.norm(), 0.0);
    }

    #[test]
    fn mse_gradient_matches_finite_difference() {
        let mut rng = seeded(71);
        let pred = init::randn(&mut rng, [2, 3], 1.0);
        let target = init::randn(&mut rng, [2, 3], 1.0);
        let (_, grad) = mse(&pred, &target).unwrap();

        let eps = 1e-3;
        for i in 0..pred.numel() {
            let mut pp = pred.clone();
            pp.data_mut()[i] += eps;
            let mut pm = pred.clone();
            pm.data_mut()[i] -= eps;
            let num = (mse(&pp, &target).unwrap().0 - mse(&pm, &target).unwrap().0) / (2.0 * eps);
            assert!((num - grad.data()[i]).abs() < 1e-3);
        }
    }

    #[test]
    fn mse_shape_mismatch_is_error() {
        assert!(mse(&Tensor::zeros([2]), &Tensor::zeros([3])).is_err());
    }
}
