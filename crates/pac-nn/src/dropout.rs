//! Inverted dropout with a deterministic, seedable mask.

use pac_tensor::{Result, Tensor};
use rand::Rng;

/// Inverted dropout: during training each element is zeroed with probability
/// `p` and survivors are scaled by `1/(1-p)` so expectations match eval mode.
#[derive(Debug, Clone)]
pub struct Dropout {
    p: f32,
}

impl Dropout {
    /// Creates a dropout layer with drop probability `p ∈ [0, 1)`.
    ///
    /// # Panics
    /// Panics if `p` is out of range.
    pub fn new(p: f32) -> Self {
        assert!((0.0..1.0).contains(&p), "dropout p must be in [0, 1)");
        Dropout { p }
    }

    /// Drop probability.
    pub fn p(&self) -> f32 {
        self.p
    }

    /// Forward pass. In training mode returns `(y, mask)`; in eval mode the
    /// mask is all-ones and `y == x`.
    pub fn forward(&self, x: &Tensor, training: bool, rng: &mut impl Rng) -> (Tensor, Tensor) {
        if !training || self.p == 0.0 {
            return (x.clone(), Tensor::ones(x.dims()));
        }
        let keep = 1.0 - self.p;
        let scale = 1.0 / keep;
        let mask_data: Vec<f32> = (0..x.numel())
            .map(|_| if rng.gen::<f32>() < keep { scale } else { 0.0 })
            .collect();
        let mask = Tensor::from_vec(mask_data, x.dims()).expect("mask matches input shape");
        let y = x.mul(&mask).expect("mask matches input shape");
        (y, mask)
    }

    /// Backward pass: `dx = dy ⊙ mask`.
    ///
    /// # Errors
    /// Returns a shape error if `dy` and `mask` differ.
    pub fn backward(&self, mask: &Tensor, dy: &Tensor) -> Result<Tensor> {
        dy.mul(mask)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pac_tensor::rng::seeded;

    #[test]
    fn eval_mode_is_identity() {
        let mut rng = seeded(20);
        let d = Dropout::new(0.5);
        let x = Tensor::ones([4, 4]);
        let (y, mask) = d.forward(&x, false, &mut rng);
        assert_eq!(y, x);
        assert_eq!(mask, Tensor::ones([4, 4]));
    }

    #[test]
    fn training_preserves_expectation() {
        let mut rng = seeded(21);
        let d = Dropout::new(0.3);
        let x = Tensor::ones([100, 100]);
        let (y, _) = d.forward(&x, true, &mut rng);
        // E[y] = 1; with 10k samples the mean should be within a few percent.
        assert!((y.mean() - 1.0).abs() < 0.05, "mean {}", y.mean());
    }

    #[test]
    fn backward_uses_same_mask() {
        let mut rng = seeded(22);
        let d = Dropout::new(0.5);
        let x = Tensor::ones([8, 8]);
        let (y, mask) = d.forward(&x, true, &mut rng);
        let dx = d.backward(&mask, &Tensor::ones([8, 8])).unwrap();
        // Where the forward output is zero the gradient must be zero, and
        // vice versa.
        for (yv, dv) in y.data().iter().zip(dx.data().iter()) {
            assert_eq!(*yv == 0.0, *dv == 0.0);
        }
    }

    #[test]
    fn deterministic_under_same_seed() {
        let d = Dropout::new(0.4);
        let x = Tensor::ones([16]);
        let (y1, _) = d.forward(&x, true, &mut seeded(33));
        let (y2, _) = d.forward(&x, true, &mut seeded(33));
        assert_eq!(y1, y2);
    }

    #[test]
    #[should_panic(expected = "dropout p")]
    fn invalid_p_panics() {
        let _ = Dropout::new(1.0);
    }
}
