//! # pac-nn
//!
//! Neural-network layers with **explicit, hand-derived forward and backward
//! passes** — the style used by high-performance training systems, and
//! exactly the interface pipeline-parallel stage execution needs:
//!
//! * `forward(&self, x) -> (y, Ctx)` is pure with respect to parameters, so
//!   multiple micro-batches can be in flight on one stage concurrently
//!   (1F1B scheduling);
//! * `backward(&mut self, ctx, dy) -> dx` consumes the per-micro-batch
//!   context and accumulates parameter gradients.
//!
//! Every layer's backward pass is validated against central finite
//! differences in its unit tests (see [`gradcheck`]).
//!
//! The crate deliberately avoids trait objects on the hot path: the
//! transformer block composes concrete layers, and per-layer contexts are
//! plain structs moved by value between the forward and backward halves.

#![deny(missing_docs)]

pub mod activation;
pub mod attention;
pub mod dropout;
pub mod embedding;
pub mod feedforward;
pub mod gradcheck;
pub mod linear;
pub mod loss;
pub mod norm;
pub mod optim;
pub mod param;
pub mod schedule;
pub mod transformer;

pub use activation::Activation;
pub use attention::{AttentionCtx, MultiHeadAttention};
pub use dropout::Dropout;
pub use embedding::Embedding;
pub use feedforward::{FeedForward, FeedForwardCtx};
pub use linear::{Linear, LinearCtx};
pub use loss::{cross_entropy, cross_entropy_smoothed, mse};
pub use norm::{LayerNorm, LayerNormCtx};
pub use optim::{Adam, Optimizer, Sgd};
pub use param::{Module, Param};
pub use schedule::LrSchedule;
pub use transformer::{TransformerLayer, TransformerLayerCtx};
