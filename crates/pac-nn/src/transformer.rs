//! Pre-norm transformer layer (encoder or decoder flavor).

use crate::attention::{AttentionCtx, MultiHeadAttention};
use crate::feedforward::{FeedForward, FeedForwardCtx};
use crate::norm::{LayerNorm, LayerNormCtx};
use crate::param::{Module, Param};
use pac_tensor::{Result, Tensor};
use rand::Rng;

/// Context saved by [`TransformerLayer::forward`].
#[derive(Debug, Clone)]
pub struct TransformerLayerCtx {
    ln1: LayerNormCtx,
    attn: AttentionCtx,
    cross: Option<(LayerNormCtx, AttentionCtx)>,
    ln2: LayerNormCtx,
    ffn: FeedForwardCtx,
    dims: Vec<usize>,
}

/// A pre-norm transformer layer:
///
/// ```text
/// h1 = x  + SelfAttn(LN1(x))          (causal in decoder layers)
/// h2 = h1 + CrossAttn(LNc(h1), enc)   (decoder layers only)
/// y  = h2 + FFN(LN2(h2))
/// ```
///
/// Encoder layers omit the cross-attention sub-block. Pre-norm is used by
/// both T5 and (in its stable variants) BART-class models and keeps deep
/// micro-models trainable without LR warmup.
#[derive(Debug, Clone)]
pub struct TransformerLayer {
    /// Pre-self-attention LayerNorm.
    pub ln1: LayerNorm,
    /// Self-attention block.
    pub self_attn: MultiHeadAttention,
    /// Optional (decoder) cross-attention with its LayerNorm.
    pub cross_attn: Option<(LayerNorm, MultiHeadAttention)>,
    /// Pre-FFN LayerNorm.
    pub ln2: LayerNorm,
    /// Feed-forward block.
    pub ffn: FeedForward,
    /// Whether self-attention is causally masked (decoder).
    pub causal: bool,
}

impl TransformerLayer {
    /// Creates an encoder layer (bidirectional self-attention, no
    /// cross-attention).
    pub fn encoder(
        name: &str,
        rng: &mut impl Rng,
        dim: usize,
        heads: usize,
        ff_dim: usize,
        act: crate::Activation,
    ) -> Self {
        TransformerLayer {
            ln1: LayerNorm::new(&format!("{name}.ln1"), dim),
            self_attn: MultiHeadAttention::new(&format!("{name}.self"), rng, dim, heads),
            cross_attn: None,
            ln2: LayerNorm::new(&format!("{name}.ln2"), dim),
            ffn: FeedForward::new(&format!("{name}.ffn"), rng, dim, ff_dim, act),
            causal: false,
        }
    }

    /// Creates a decoder layer (causal self-attention + cross-attention).
    pub fn decoder(
        name: &str,
        rng: &mut impl Rng,
        dim: usize,
        heads: usize,
        ff_dim: usize,
        act: crate::Activation,
    ) -> Self {
        TransformerLayer {
            ln1: LayerNorm::new(&format!("{name}.ln1"), dim),
            self_attn: MultiHeadAttention::new(&format!("{name}.self"), rng, dim, heads),
            cross_attn: Some((
                LayerNorm::new(&format!("{name}.lnc"), dim),
                MultiHeadAttention::new(&format!("{name}.cross"), rng, dim, heads),
            )),
            ln2: LayerNorm::new(&format!("{name}.ln2"), dim),
            ffn: FeedForward::new(&format!("{name}.ffn"), rng, dim, ff_dim, act),
            causal: true,
        }
    }

    /// True when this layer has a cross-attention sub-block.
    pub fn is_decoder(&self) -> bool {
        self.cross_attn.is_some()
    }

    /// Quantizes every frozen linear projection in the layer (attention and
    /// FFN; LayerNorms stay f32 — their parameters are vectors, not
    /// matmuls). Returns how many linears engaged.
    pub fn quantize_frozen(&mut self) -> usize {
        let mut n = self.self_attn.quantize_frozen() + self.ffn.quantize_frozen();
        if let Some((_, cross)) = &mut self.cross_attn {
            n += cross.quantize_frozen();
        }
        n
    }

    /// Forward pass. `enc` must be `Some` for decoder layers and is ignored
    /// by encoder layers.
    ///
    /// # Errors
    /// Returns shape errors on malformed inputs, or a rank error if a
    /// decoder layer is called without `enc`.
    pub fn forward(
        &self,
        x: &Tensor,
        enc: Option<&Tensor>,
    ) -> Result<(Tensor, TransformerLayerCtx)> {
        let dims = x.dims().to_vec();

        let (n1, ln1_ctx) = self.ln1.forward(x)?;
        let (a, attn_ctx) = self.self_attn.forward(&n1, &n1, self.causal)?;
        let h1 = x.add(&a)?;

        let (h2, cross_ctx) = if let Some((lnc, cross)) = &self.cross_attn {
            let enc = enc.ok_or(pac_tensor::TensorError::RankMismatch {
                op: "decoder layer requires encoder output",
                expected: 3,
                actual: 0,
            })?;
            let (nc, lnc_ctx) = lnc.forward(&h1)?;
            let (c, cctx) = cross.forward(&nc, enc, false)?;
            (h1.add(&c)?, Some((lnc_ctx, cctx)))
        } else {
            (h1, None)
        };

        let (n2, ln2_ctx) = self.ln2.forward(&h2)?;
        let (f, ffn_ctx) = self.ffn.forward(&n2)?;
        let y = h2.add(&f.reshape(dims.clone())?)?;

        Ok((
            y,
            TransformerLayerCtx {
                ln1: ln1_ctx,
                attn: attn_ctx,
                cross: cross_ctx,
                ln2: ln2_ctx,
                ffn: ffn_ctx,
                dims,
            },
        ))
    }

    /// Backward pass. Returns `(dx, d_enc)`; `d_enc` is `Some` only for
    /// decoder layers and carries the gradient flowing into the encoder
    /// output.
    ///
    /// # Errors
    /// Propagates shape errors from sub-blocks.
    pub fn backward(
        &mut self,
        ctx: &TransformerLayerCtx,
        dy: &Tensor,
    ) -> Result<(Tensor, Option<Tensor>)> {
        // FFN branch: y = h2 + FFN(LN2(h2)).
        let d_f = self.ffn.backward(&ctx.ffn, dy)?;
        let d_n2 = self.ln2.backward(&ctx.ln2, &d_f)?;
        let d_h2 = dy.add(&d_n2.reshape(ctx.dims.clone())?)?;

        // Cross-attention branch.
        let (d_h1, d_enc) = if let Some((lnc, cross)) = &mut self.cross_attn {
            let (lnc_ctx, cctx) = ctx
                .cross
                .as_ref()
                .expect("decoder ctx must contain cross-attention context");
            let (d_nc, d_enc) = cross.backward(cctx, &d_h2)?;
            let d_from_cross = lnc.backward(lnc_ctx, &d_nc)?;
            (
                d_h2.add(&d_from_cross.reshape(ctx.dims.clone())?)?,
                Some(d_enc),
            )
        } else {
            (d_h2, None)
        };

        // Self-attention branch: h1 = x + SelfAttn(LN1(x)).
        let (d_n1_q, d_n1_kv) = self.self_attn.backward(&ctx.attn, &d_h1)?;
        let d_n1 = d_n1_q.add(&d_n1_kv)?;
        let d_from_attn = self.ln1.backward(&ctx.ln1, &d_n1)?;
        let dx = d_h1.add(&d_from_attn.reshape(ctx.dims.clone())?)?;

        Ok((dx, d_enc))
    }
}

impl Module for TransformerLayer {
    fn visit_params(&mut self, f: &mut dyn FnMut(&mut Param)) {
        self.ln1.visit_params(f);
        self.self_attn.visit_params(f);
        if let Some((lnc, cross)) = &mut self.cross_attn {
            lnc.visit_params(f);
            cross.visit_params(f);
        }
        self.ln2.visit_params(f);
        self.ffn.visit_params(f);
    }
    fn visit_params_ref(&self, f: &mut dyn FnMut(&Param)) {
        self.ln1.visit_params_ref(f);
        self.self_attn.visit_params_ref(f);
        if let Some((lnc, cross)) = &self.cross_attn {
            lnc.visit_params_ref(f);
            cross.visit_params_ref(f);
        }
        self.ln2.visit_params_ref(f);
        self.ffn.visit_params_ref(f);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gradcheck::assert_grad_close;
    use crate::Activation;
    use pac_tensor::{init, rng::seeded};

    #[test]
    fn encoder_layer_shapes() {
        let mut rng = seeded(60);
        let l = TransformerLayer::encoder("enc0", &mut rng, 8, 2, 16, Activation::Gelu);
        let x = init::randn(&mut rng, [2, 4, 8], 1.0);
        let (y, _) = l.forward(&x, None).unwrap();
        assert_eq!(y.dims(), &[2, 4, 8]);
        assert!(!l.is_decoder());
    }

    #[test]
    fn decoder_layer_requires_encoder_output() {
        let mut rng = seeded(61);
        let l = TransformerLayer::decoder("dec0", &mut rng, 8, 2, 16, Activation::Gelu);
        let x = init::randn(&mut rng, [1, 3, 8], 1.0);
        assert!(l.forward(&x, None).is_err());
        let enc = init::randn(&mut rng, [1, 5, 8], 1.0);
        let (y, _) = l.forward(&x, Some(&enc)).unwrap();
        assert_eq!(y.dims(), &[1, 3, 8]);
        assert!(l.is_decoder());
    }

    #[test]
    fn encoder_gradient_matches_finite_difference() {
        let mut rng = seeded(62);
        let l = TransformerLayer::encoder("enc0", &mut rng, 4, 2, 8, Activation::Gelu);
        let x = init::randn(&mut rng, [1, 3, 4], 0.5);
        let w = init::randn(&mut rng, [1, 3, 4], 1.0);

        let (_, ctx) = l.forward(&x, None).unwrap();
        let mut l2 = l.clone();
        let (dx, d_enc) = l2.backward(&ctx, &w).unwrap();
        assert!(d_enc.is_none());

        assert_grad_close(&x, &dx, 4e-2, |xp| {
            l.forward(xp, None).unwrap().0.mul(&w).unwrap().sum()
        });
    }

    #[test]
    fn decoder_gradients_match_finite_difference() {
        let mut rng = seeded(63);
        let l = TransformerLayer::decoder("dec0", &mut rng, 4, 2, 8, Activation::Gelu);
        let x = init::randn(&mut rng, [1, 2, 4], 0.5);
        let enc = init::randn(&mut rng, [1, 3, 4], 0.5);
        let w = init::randn(&mut rng, [1, 2, 4], 1.0);

        let (_, ctx) = l.forward(&x, Some(&enc)).unwrap();
        let mut l2 = l.clone();
        let (dx, d_enc) = l2.backward(&ctx, &w).unwrap();
        let d_enc = d_enc.unwrap();

        assert_grad_close(&x, &dx, 4e-2, |xp| {
            l.forward(xp, Some(&enc)).unwrap().0.mul(&w).unwrap().sum()
        });
        assert_grad_close(&enc, &d_enc, 4e-2, |ep| {
            l.forward(&x, Some(ep)).unwrap().0.mul(&w).unwrap().sum()
        });
    }

    #[test]
    fn residual_path_preserves_identity_at_zero_weights() {
        // If every sub-block output is (near) zero, y ≈ x via the residuals.
        let mut rng = seeded(64);
        let mut l = TransformerLayer::encoder("enc0", &mut rng, 4, 1, 8, Activation::Gelu);
        l.visit_params(&mut |p| {
            if !p.name.contains("gamma") {
                p.value.data_mut().fill(0.0);
            }
        });
        let x = init::randn(&mut rng, [1, 2, 4], 1.0);
        let (y, _) = l.forward(&x, None).unwrap();
        assert!(y.approx_eq(&x, 1e-5));
    }

    #[test]
    fn param_traversal_counts_subblocks() {
        let mut rng = seeded(65);
        let enc = TransformerLayer::encoder("e", &mut rng, 8, 2, 16, Activation::Gelu);
        let dec = TransformerLayer::decoder("d", &mut rng, 8, 2, 16, Activation::Gelu);
        // Decoder adds one MHA (4 * d * d) and one LayerNorm (2 * d).
        assert_eq!(dec.num_params(), enc.num_params() + 4 * 8 * 8 + 2 * 8);
    }
}
