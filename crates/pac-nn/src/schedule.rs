//! Learning-rate schedules for fine-tuning runs.

/// A learning-rate schedule: maps a 0-based step index to a multiplier of
/// the base learning rate.
///
/// ```
/// use pac_nn::LrSchedule;
///
/// let s = LrSchedule::Warmup { warmup: 4 };
/// assert_eq!(s.multiplier(0), 0.25);
/// assert_eq!(s.lr_at(0.01, 100), 0.01);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum LrSchedule {
    /// Constant base LR.
    Constant,
    /// Linear warmup over `warmup` steps, then constant.
    Warmup {
        /// Number of warmup steps.
        warmup: usize,
    },
    /// Linear warmup then linear decay to zero at `total` steps.
    WarmupLinearDecay {
        /// Number of warmup steps.
        warmup: usize,
        /// Total steps (decay endpoint).
        total: usize,
    },
    /// Linear warmup then cosine decay to `floor` at `total` steps.
    WarmupCosine {
        /// Number of warmup steps.
        warmup: usize,
        /// Total steps.
        total: usize,
        /// Final multiplier (≥ 0).
        floor: f32,
    },
}

impl LrSchedule {
    /// The LR multiplier at `step` (0-based).
    pub fn multiplier(&self, step: usize) -> f32 {
        match *self {
            LrSchedule::Constant => 1.0,
            LrSchedule::Warmup { warmup } => {
                if warmup == 0 || step >= warmup {
                    1.0
                } else {
                    (step + 1) as f32 / warmup as f32
                }
            }
            LrSchedule::WarmupLinearDecay { warmup, total } => {
                let w = LrSchedule::Warmup { warmup }.multiplier(step);
                if step < warmup || total <= warmup {
                    w
                } else {
                    let span = (total - warmup) as f32;
                    let done = (step - warmup) as f32;
                    (1.0 - done / span).max(0.0)
                }
            }
            LrSchedule::WarmupCosine {
                warmup,
                total,
                floor,
            } => {
                let w = LrSchedule::Warmup { warmup }.multiplier(step);
                if step < warmup || total <= warmup {
                    w
                } else {
                    let span = (total - warmup) as f32;
                    let done = ((step - warmup) as f32).min(span);
                    let cos = 0.5 * (1.0 + (std::f32::consts::PI * done / span).cos());
                    floor + (1.0 - floor) * cos
                }
            }
        }
    }

    /// The absolute LR at `step` for a given base LR.
    pub fn lr_at(&self, base_lr: f32, step: usize) -> f32 {
        base_lr * self.multiplier(step)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constant_is_constant() {
        for s in [0usize, 5, 1000] {
            assert_eq!(LrSchedule::Constant.multiplier(s), 1.0);
        }
    }

    #[test]
    fn warmup_ramps_linearly() {
        let s = LrSchedule::Warmup { warmup: 4 };
        assert_eq!(s.multiplier(0), 0.25);
        assert_eq!(s.multiplier(1), 0.5);
        assert_eq!(s.multiplier(3), 1.0);
        assert_eq!(s.multiplier(100), 1.0);
        // Degenerate warmup of zero steps.
        assert_eq!(LrSchedule::Warmup { warmup: 0 }.multiplier(0), 1.0);
    }

    #[test]
    fn linear_decay_reaches_zero() {
        let s = LrSchedule::WarmupLinearDecay {
            warmup: 2,
            total: 10,
        };
        assert!(s.multiplier(1) <= 1.0);
        assert_eq!(s.multiplier(2), 1.0);
        assert!((s.multiplier(6) - 0.5).abs() < 1e-6);
        assert_eq!(s.multiplier(10), 0.0);
        assert_eq!(s.multiplier(50), 0.0);
    }

    #[test]
    fn cosine_decays_smoothly_to_floor() {
        let s = LrSchedule::WarmupCosine {
            warmup: 0,
            total: 100,
            floor: 0.1,
        };
        assert!((s.multiplier(0) - 1.0).abs() < 1e-6);
        assert!((s.multiplier(100) - 0.1).abs() < 1e-6);
        // Monotone decreasing after warmup.
        let mut prev = f32::INFINITY;
        for step in 0..=100 {
            let m = s.multiplier(step);
            assert!(m <= prev + 1e-6, "not monotone at {step}");
            prev = m;
        }
    }

    #[test]
    fn lr_at_scales_base() {
        let s = LrSchedule::Warmup { warmup: 2 };
        assert_eq!(s.lr_at(0.01, 0), 0.005);
        assert_eq!(s.lr_at(0.01, 5), 0.01);
    }
}
