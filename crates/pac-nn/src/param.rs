//! Trainable parameters and the module-traversal trait.

use pac_tensor::Tensor;

/// A named model parameter: value, accumulated gradient, and (lazily
/// allocated) optimizer state.
///
/// The `trainable` flag implements parameter freezing: PEFT techniques mark
/// backbone parameters frozen so optimizers skip them, gradient accounting
/// excludes them, and AllReduce synchronizes only the trainable remainder —
/// the property the paper's system design exploits.
#[derive(Debug, Clone)]
pub struct Param {
    /// Human-readable dotted path, e.g. `"encoder.layer3.attn.wq"`.
    pub name: String,
    /// Current value.
    pub value: Tensor,
    /// Accumulated gradient (same shape as `value`).
    pub grad: Tensor,
    /// Whether the optimizer updates this parameter.
    pub trainable: bool,
    /// First-moment / momentum buffer (allocated on first optimizer step).
    pub opt_m: Option<Tensor>,
    /// Second-moment buffer (allocated on first Adam step).
    pub opt_v: Option<Tensor>,
}

impl Param {
    /// Creates a trainable parameter with zeroed gradient.
    pub fn new(name: impl Into<String>, value: Tensor) -> Self {
        let grad = Tensor::zeros(value.dims());
        Param {
            name: name.into(),
            value,
            grad,
            trainable: true,
            opt_m: None,
            opt_v: None,
        }
    }

    /// Number of scalar elements.
    pub fn numel(&self) -> usize {
        self.value.numel()
    }

    /// Zeroes the accumulated gradient.
    ///
    /// Skips the write entirely when the gradient is already all-zero
    /// (common for frozen backbones), avoiding a copy-on-write clone of
    /// storage that may be shared across data-parallel lanes.
    pub fn zero_grad(&mut self) {
        if self.grad.data().iter().all(|v| v.to_bits() == 0) {
            return;
        }
        self.grad.fill_zero();
    }

    /// Accumulates `g` into the gradient buffer (no-op allocation-wise).
    ///
    /// # Panics
    /// Panics if `g` has a different shape — a gradient/value shape mismatch
    /// is a programming error, not a recoverable condition.
    pub fn accumulate_grad(&mut self, g: &Tensor) {
        self.grad
            .add_assign(g)
            .expect("gradient shape must match parameter shape");
    }
}

/// Visitor-style traversal over a module tree's parameters.
///
/// Implemented by every layer and by composite models; gives optimizers,
/// AllReduce, and the memory accountant a uniform view without trait objects
/// on the compute path.
pub trait Module {
    /// Visits every parameter mutably.
    fn visit_params(&mut self, f: &mut dyn FnMut(&mut Param));

    /// Visits every parameter immutably.
    fn visit_params_ref(&self, f: &mut dyn FnMut(&Param));

    /// Total scalar parameter count.
    fn num_params(&self) -> usize {
        let mut n = 0;
        self.visit_params_ref(&mut |p| n += p.numel());
        n
    }

    /// Trainable scalar parameter count.
    fn num_trainable(&self) -> usize {
        let mut n = 0;
        self.visit_params_ref(&mut |p| {
            if p.trainable {
                n += p.numel()
            }
        });
        n
    }

    /// Zeroes all gradients.
    fn zero_grads(&mut self) {
        self.visit_params(&mut |p| p.zero_grad());
    }

    /// Marks every parameter frozen (non-trainable).
    fn freeze_all(&mut self) {
        self.visit_params(&mut |p| p.trainable = false);
    }

    /// Marks every parameter trainable.
    fn unfreeze_all(&mut self) {
        self.visit_params(&mut |p| p.trainable = true);
    }

    /// Bytes of parameter storage (f32).
    fn param_bytes(&self) -> usize {
        self.num_params() * 4
    }

    /// Bytes of gradient storage for trainable parameters (f32).
    fn trainable_grad_bytes(&self) -> usize {
        self.num_trainable() * 4
    }

    /// Global L2 norm over all trainable gradients.
    fn grad_norm(&self) -> f32 {
        let mut acc = 0.0f64;
        self.visit_params_ref(&mut |p| {
            if p.trainable {
                acc += p
                    .grad
                    .data()
                    .iter()
                    .map(|x| (*x as f64).powi(2))
                    .sum::<f64>();
            }
        });
        acc.sqrt() as f32
    }

    /// Scales trainable gradients so the global norm is at most `max_norm`.
    fn clip_grad_norm(&mut self, max_norm: f32) {
        let norm = self.grad_norm();
        if norm > max_norm && norm > 0.0 {
            let scale = max_norm / norm;
            self.visit_params(&mut |p| {
                if p.trainable {
                    p.grad.scale_in_place(scale);
                }
            });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    struct Toy {
        a: Param,
        b: Param,
    }

    impl Module for Toy {
        fn visit_params(&mut self, f: &mut dyn FnMut(&mut Param)) {
            f(&mut self.a);
            f(&mut self.b);
        }
        fn visit_params_ref(&self, f: &mut dyn FnMut(&Param)) {
            f(&self.a);
            f(&self.b);
        }
    }

    fn toy() -> Toy {
        Toy {
            a: Param::new("a", Tensor::ones([2, 3])),
            b: Param::new("b", Tensor::ones([4])),
        }
    }

    #[test]
    fn counting_and_freezing() {
        let mut t = toy();
        assert_eq!(t.num_params(), 10);
        assert_eq!(t.num_trainable(), 10);
        t.a.trainable = false;
        assert_eq!(t.num_trainable(), 4);
        t.freeze_all();
        assert_eq!(t.num_trainable(), 0);
        t.unfreeze_all();
        assert_eq!(t.num_trainable(), 10);
        assert_eq!(t.param_bytes(), 40);
    }

    #[test]
    fn grad_accumulation_and_zeroing() {
        let mut t = toy();
        t.a.accumulate_grad(&Tensor::full([2, 3], 2.0));
        t.a.accumulate_grad(&Tensor::full([2, 3], 1.0));
        assert_eq!(t.a.grad.data()[0], 3.0);
        t.zero_grads();
        assert_eq!(t.a.grad.data()[0], 0.0);
    }

    #[test]
    #[should_panic(expected = "gradient shape")]
    fn grad_shape_mismatch_panics() {
        let mut p = Param::new("p", Tensor::zeros([2]));
        p.accumulate_grad(&Tensor::zeros([3]));
    }

    #[test]
    fn clip_grad_norm_scales() {
        let mut t = toy();
        t.a.accumulate_grad(&Tensor::full([2, 3], 3.0));
        t.b.accumulate_grad(&Tensor::full([4], 4.0));
        let before = t.grad_norm();
        assert!(before > 1.0);
        t.clip_grad_norm(1.0);
        assert!((t.grad_norm() - 1.0).abs() < 1e-4);
        // Clipping below the threshold is a no-op.
        let g = t.a.grad.clone();
        t.clip_grad_norm(10.0);
        assert_eq!(t.a.grad, g);
    }

    #[test]
    fn frozen_params_excluded_from_norm() {
        let mut t = toy();
        t.a.accumulate_grad(&Tensor::full([2, 3], 5.0));
        t.a.trainable = false;
        assert_eq!(t.grad_norm(), 0.0);
    }
}
