//! Gradient-descent optimizers operating through the [`Module`] visitor.
//!
//! Optimizer state (momentum / Adam moments) lives inside each [`Param`] so
//! the optimizer itself is stateless and can be shared or recreated freely —
//! convenient when parameters migrate between simulated devices.

use crate::param::{Module, Param};
use pac_tensor::Tensor;

/// Common optimizer interface: one in-place update step over a module's
/// trainable parameters. Frozen parameters are skipped entirely (no state is
/// even allocated for them), which is what makes PEFT memory savings real in
/// this implementation.
pub trait Optimizer {
    /// Applies one update step to every trainable parameter of `module`.
    fn step(&mut self, module: &mut dyn Module);

    /// Bytes of optimizer state that would be held for `module`'s trainable
    /// parameters (used by the memory accountant).
    fn state_bytes_per_trainable_param(&self) -> usize;
}

/// Stochastic gradient descent with optional momentum and weight decay.
#[derive(Debug, Clone)]
pub struct Sgd {
    /// Learning rate.
    pub lr: f32,
    /// Momentum coefficient (0 disables momentum and its state buffer).
    pub momentum: f32,
    /// Decoupled weight decay.
    pub weight_decay: f32,
}

impl Sgd {
    /// Plain SGD with learning rate `lr`.
    pub fn new(lr: f32) -> Self {
        Sgd {
            lr,
            momentum: 0.0,
            weight_decay: 0.0,
        }
    }

    /// SGD with momentum.
    pub fn with_momentum(lr: f32, momentum: f32) -> Self {
        Sgd {
            lr,
            momentum,
            weight_decay: 0.0,
        }
    }

    fn update(&self, p: &mut Param) {
        if self.weight_decay > 0.0 {
            let wd = self.weight_decay;
            let v = p.value.clone();
            p.grad.axpy(wd, &v).expect("shapes match by construction");
        }
        if self.momentum > 0.0 {
            let m = p.opt_m.get_or_insert_with(|| Tensor::zeros(p.value.dims()));
            m.scale_in_place(self.momentum);
            m.add_assign(&p.grad).expect("shapes match by construction");
            let update = m.clone();
            p.value
                .axpy(-self.lr, &update)
                .expect("shapes match by construction");
        } else {
            let g = p.grad.clone();
            p.value
                .axpy(-self.lr, &g)
                .expect("shapes match by construction");
        }
    }
}

impl Optimizer for Sgd {
    fn step(&mut self, module: &mut dyn Module) {
        let this = self.clone();
        module.visit_params(&mut |p| {
            if p.trainable {
                this.update(p);
            }
        });
    }

    fn state_bytes_per_trainable_param(&self) -> usize {
        if self.momentum > 0.0 {
            4
        } else {
            0
        }
    }
}

/// Adam optimizer (Kingma & Ba) with bias correction.
#[derive(Debug, Clone)]
pub struct Adam {
    /// Learning rate.
    pub lr: f32,
    /// Exponential decay for the first moment.
    pub beta1: f32,
    /// Exponential decay for the second moment.
    pub beta2: f32,
    /// Numerical-stability epsilon.
    pub eps: f32,
    /// Global step counter (for bias correction).
    pub t: u64,
}

impl Adam {
    /// Adam with standard hyperparameters (β₁=0.9, β₂=0.999, ε=1e-8).
    pub fn new(lr: f32) -> Self {
        Adam {
            lr,
            beta1: 0.9,
            beta2: 0.999,
            eps: 1e-8,
            t: 0,
        }
    }
}

impl Optimizer for Adam {
    fn step(&mut self, module: &mut dyn Module) {
        self.t += 1;
        let (b1, b2, eps, lr, t) = (self.beta1, self.beta2, self.eps, self.lr, self.t);
        let bc1 = 1.0 - b1.powi(t as i32);
        let bc2 = 1.0 - b2.powi(t as i32);
        module.visit_params(&mut |p| {
            if !p.trainable {
                return;
            }
            let dims = p.value.dims().to_vec();
            let m = p.opt_m.get_or_insert_with(|| Tensor::zeros(dims.clone()));
            for (mi, gi) in m.data_mut().iter_mut().zip(p.grad.data()) {
                *mi = b1 * *mi + (1.0 - b1) * gi;
            }
            let v = p.opt_v.get_or_insert_with(|| Tensor::zeros(dims));
            for (vi, gi) in v.data_mut().iter_mut().zip(p.grad.data()) {
                *vi = b2 * *vi + (1.0 - b2) * gi * gi;
            }
            // Borrow m and v immutably for the value update.
            let (m, v) = (p.opt_m.as_ref().unwrap(), p.opt_v.as_ref().unwrap());
            let mdata = m.data();
            let vdata = v.data();
            for (i, w) in p.value.data_mut().iter_mut().enumerate() {
                let mhat = mdata[i] / bc1;
                let vhat = vdata[i] / bc2;
                *w -= lr * mhat / (vhat.sqrt() + eps);
            }
        });
    }

    fn state_bytes_per_trainable_param(&self) -> usize {
        8 // two f32 moments
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    struct Quad {
        p: Param,
    }

    impl Module for Quad {
        fn visit_params(&mut self, f: &mut dyn FnMut(&mut Param)) {
            f(&mut self.p);
        }
        fn visit_params_ref(&self, f: &mut dyn FnMut(&Param)) {
            f(&self.p);
        }
    }

    impl Quad {
        fn new(x0: f32) -> Self {
            Quad {
                p: Param::new("x", Tensor::from_vec(vec![x0], [1]).unwrap()),
            }
        }
        /// Loss = x², grad = 2x.
        fn compute_grad(&mut self) {
            let g = self.p.value.scale(2.0);
            self.p.zero_grad();
            self.p.accumulate_grad(&g);
        }
        fn x(&self) -> f32 {
            self.p.value.data()[0]
        }
    }

    #[test]
    fn sgd_minimizes_quadratic() {
        let mut q = Quad::new(5.0);
        let mut opt = Sgd::new(0.1);
        for _ in 0..100 {
            q.compute_grad();
            opt.step(&mut q);
        }
        assert!(q.x().abs() < 1e-3, "x = {}", q.x());
    }

    #[test]
    fn sgd_momentum_converges_faster_than_plain() {
        let run = |mut opt: Sgd| {
            let mut q = Quad::new(5.0);
            for _ in 0..20 {
                q.compute_grad();
                opt.step(&mut q);
            }
            q.x().abs()
        };
        let plain = run(Sgd::new(0.01));
        let momentum = run(Sgd::with_momentum(0.01, 0.9));
        assert!(momentum < plain, "momentum {momentum} vs plain {plain}");
    }

    #[test]
    fn adam_minimizes_quadratic() {
        let mut q = Quad::new(3.0);
        let mut opt = Adam::new(0.1);
        for _ in 0..300 {
            q.compute_grad();
            opt.step(&mut q);
        }
        assert!(q.x().abs() < 1e-2, "x = {}", q.x());
    }

    #[test]
    fn frozen_params_are_not_updated_and_get_no_state() {
        let mut q = Quad::new(2.0);
        q.p.trainable = false;
        q.compute_grad();
        let mut opt = Adam::new(0.1);
        opt.step(&mut q);
        assert_eq!(q.x(), 2.0);
        assert!(q.p.opt_m.is_none());
        assert!(q.p.opt_v.is_none());
    }

    #[test]
    fn weight_decay_shrinks_weights_without_gradient() {
        let mut q = Quad::new(1.0);
        q.p.zero_grad(); // no task gradient
        let mut opt = Sgd {
            lr: 0.1,
            momentum: 0.0,
            weight_decay: 0.5,
        };
        opt.step(&mut q);
        assert!(q.x() < 1.0);
    }

    #[test]
    fn state_bytes_accounting() {
        assert_eq!(Sgd::new(0.1).state_bytes_per_trainable_param(), 0);
        assert_eq!(
            Sgd::with_momentum(0.1, 0.9).state_bytes_per_trainable_param(),
            4
        );
        assert_eq!(Adam::new(0.1).state_bytes_per_trainable_param(), 8);
    }
}
