//! Finite-difference gradient checking utilities.
//!
//! Used by unit tests throughout this crate and by downstream crates to
//! validate hand-derived backward passes: perturb each input (or parameter)
//! element by ±ε, evaluate a scalar loss, and compare the central difference
//! against the analytic gradient.

use pac_tensor::Tensor;

/// Result of a gradient check: maximum absolute and relative error observed.
#[derive(Debug, Clone, Copy)]
pub struct GradCheckReport {
    /// Largest absolute difference between numeric and analytic gradients.
    pub max_abs_err: f32,
    /// Largest relative difference (normalized by magnitude, floor 1.0).
    pub max_rel_err: f32,
}

impl GradCheckReport {
    /// True when the analytic gradient agrees with the numeric one within
    /// `tol` in both absolute and relative terms.
    pub fn passes(&self, tol: f32) -> bool {
        self.max_abs_err <= tol || self.max_rel_err <= tol
    }
}

/// Checks an analytic gradient of a scalar-valued function of one tensor.
///
/// `f` must be a pure function of the input; `analytic` is the gradient to
/// verify; `eps` is the perturbation step.
pub fn check_input_grad(
    x: &Tensor,
    analytic: &Tensor,
    eps: f32,
    mut f: impl FnMut(&Tensor) -> f32,
) -> GradCheckReport {
    assert_eq!(
        x.dims(),
        analytic.dims(),
        "analytic gradient must match input shape"
    );
    let mut max_abs = 0.0f32;
    let mut max_rel = 0.0f32;
    for i in 0..x.numel() {
        let mut xp = x.clone();
        xp.data_mut()[i] += eps;
        let mut xm = x.clone();
        xm.data_mut()[i] -= eps;
        let numeric = (f(&xp) - f(&xm)) / (2.0 * eps);
        let a = analytic.data()[i];
        let abs = (numeric - a).abs();
        let rel = abs / numeric.abs().max(a.abs()).max(1.0);
        max_abs = max_abs.max(abs);
        max_rel = max_rel.max(rel);
    }
    GradCheckReport {
        max_abs_err: max_abs,
        max_rel_err: max_rel,
    }
}

/// Convenience: asserts that `analytic` matches the numeric gradient of `f`
/// at `x` within `tol`.
///
/// # Panics
/// Panics with a diagnostic message when the check fails.
pub fn assert_grad_close(x: &Tensor, analytic: &Tensor, tol: f32, f: impl FnMut(&Tensor) -> f32) {
    // ε = 3e-3 balances O(ε²) truncation error against f32 cancellation for
    // the strongly curved losses (softmax·GELU compositions) checked here.
    let report = check_input_grad(x, analytic, 3e-3, f);
    assert!(
        report.passes(tol),
        "gradient check failed: max_abs_err={}, max_rel_err={} (tol {tol})",
        report.max_abs_err,
        report.max_rel_err
    );
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quadratic_gradient_passes() {
        // f(x) = Σ x², df/dx = 2x
        let x = Tensor::from_vec(vec![1.0, -2.0, 3.0], [3]).unwrap();
        let analytic = x.scale(2.0);
        let report = check_input_grad(&x, &analytic, 1e-3, |t| {
            t.data().iter().map(|v| v * v).sum()
        });
        assert!(report.passes(1e-2), "{report:?}");
    }

    #[test]
    fn wrong_gradient_fails() {
        let x = Tensor::from_vec(vec![1.0, -2.0, 3.0], [3]).unwrap();
        let wrong = x.scale(3.0); // should be 2x
        let report = check_input_grad(&x, &wrong, 1e-3, |t| t.data().iter().map(|v| v * v).sum());
        assert!(!report.passes(1e-2));
    }

    #[test]
    #[should_panic(expected = "gradient check failed")]
    fn assert_grad_close_panics_on_mismatch() {
        let x = Tensor::from_vec(vec![1.0, 2.0], [2]).unwrap();
        let wrong = Tensor::zeros([2]);
        assert_grad_close(&x, &wrong, 1e-3, |t| t.data().iter().map(|v| v * v).sum());
    }
}
