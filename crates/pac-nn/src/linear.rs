//! Fully-connected (dense) layer.

use crate::param::{Module, Param};
use pac_tensor::{init, ops, quant, reduce, scratch, QTensor, Result, Tensor};
use rand::Rng;

/// Per-micro-batch context saved by [`Linear::forward`] for the backward
/// pass: the layer input.
#[derive(Debug, Clone)]
pub struct LinearCtx {
    /// Input of the forward pass, `[rows, in_dim]` (2-D view).
    pub x: Tensor,
}

/// `y = x · W + b` with `W: [in_dim, out_dim]`, optional bias.
#[derive(Debug, Clone)]
pub struct Linear {
    /// Weight matrix `[in_dim, out_dim]`.
    pub w: Param,
    /// Optional bias `[out_dim]`.
    pub b: Option<Param>,
    in_dim: usize,
    out_dim: usize,
    /// Per-row absmax-quantized weight, stored transposed (`[out, in]`) so
    /// the dequant-free int8 product runs in nt form. Present only after
    /// [`Linear::quantize_frozen`]; the f32 weight stays resident for the
    /// backward pass (`dx = dy·Wᵀ` still propagates through frozen layers).
    qw_t: Option<QTensor>,
}

impl Linear {
    /// Creates a linear layer with Xavier-uniform weights and zero bias.
    pub fn new(name: &str, rng: &mut impl Rng, in_dim: usize, out_dim: usize, bias: bool) -> Self {
        Linear {
            w: Param::new(format!("{name}.w"), init::xavier(rng, in_dim, out_dim)),
            b: bias.then(|| Param::new(format!("{name}.b"), Tensor::zeros([out_dim]))),
            in_dim,
            out_dim,
            qw_t: None,
        }
    }

    /// Creates a linear layer from explicit weights (used by structural
    /// pruning init and tests).
    ///
    /// # Panics
    /// Panics if the weight is not `[in_dim, out_dim]`-shaped.
    pub fn from_weights(name: &str, w: Tensor, b: Option<Tensor>) -> Self {
        let (in_dim, out_dim) = w.as_2d();
        assert_eq!(w.rank(), 2, "linear weight must be rank 2");
        Linear {
            w: Param::new(format!("{name}.w"), w),
            b: b.map(|t| Param::new(format!("{name}.b"), t)),
            in_dim,
            out_dim,
            qw_t: None,
        }
    }

    /// Input feature dimension.
    pub fn in_dim(&self) -> usize {
        self.in_dim
    }

    /// Output feature dimension.
    pub fn out_dim(&self) -> usize {
        self.out_dim
    }

    /// Switches the forward pass to the dequant-free int8 product by
    /// quantizing the weight (per-row absmax over the transposed `[out,
    /// in]` layout). Refuses — returning `false` — while the weight is
    /// trainable: quantization is strictly a frozen-side optimization, and
    /// a stale `QTensor` must never shadow a weight the optimizer updates.
    pub fn quantize_frozen(&mut self) -> bool {
        if self.w.trainable {
            return false;
        }
        self.qw_t = Some(QTensor::quantize(&self.w.value.transpose_2d()));
        true
    }

    /// Drops the quantized weight, restoring the exact f32 forward path.
    pub fn dequantize_weights(&mut self) {
        self.qw_t = None;
    }

    /// Whether the forward pass currently runs the int8 product.
    pub fn is_quantized(&self) -> bool {
        self.qw_t.is_some()
    }

    /// Resident bytes of the quantized weight (0 when not quantized).
    pub fn quantized_bytes(&self) -> usize {
        self.qw_t.as_ref().map_or(0, QTensor::size_bytes)
    }

    /// Forward pass. `x` is interpreted as `[rows, in_dim]` via the 2-D view.
    ///
    /// # Errors
    /// Propagates shape mismatches from the underlying matmul.
    pub fn forward(&self, x: &Tensor) -> Result<(Tensor, LinearCtx)> {
        let mut y = scratch::take_for(x.as_2d().0 * self.out_dim);
        match (&self.qw_t, &self.b) {
            (Some(qw), b) => {
                quant::qlinear_forward_into(x, qw, b.as_ref().map(|b| &b.value), &mut y)?
            }
            (None, Some(b)) => ops::addmm_into(x, &self.w.value, &b.value, &mut y)?,
            (None, None) => ops::matmul_into(x, &self.w.value, &mut y)?,
        }
        Ok((y, LinearCtx { x: x.clone() }))
    }

    /// Backward pass: accumulates `dW = xᵀ·dy`, `db = Σ dy`, returns
    /// `dx = dy·Wᵀ`.
    ///
    /// Gradients are only accumulated for trainable parameters, but `dx` is
    /// always produced (a frozen layer still propagates gradients through).
    ///
    /// # Errors
    /// Propagates shape mismatches from the underlying matmuls.
    pub fn backward(&mut self, ctx: &LinearCtx, dy: &Tensor) -> Result<Tensor> {
        if self.w.trainable {
            let mut dw = scratch::take_for(self.in_dim * self.out_dim);
            ops::matmul_tn_into(&ctx.x, dy, &mut dw)?;
            let dw = dw.reshape(self.w.value.dims())?;
            self.w.accumulate_grad(&dw);
            scratch::put(dw);
        }
        if let Some(b) = &mut self.b {
            if b.trainable {
                let db = reduce::sum_rows(dy);
                b.accumulate_grad(&db);
            }
        }
        let mut dx = scratch::take_for(dy.as_2d().0 * self.in_dim);
        ops::matmul_nt_into(dy, &self.w.value, &mut dx)?;
        Ok(dx)
    }
}

impl Module for Linear {
    fn visit_params(&mut self, f: &mut dyn FnMut(&mut Param)) {
        f(&mut self.w);
        if let Some(b) = &mut self.b {
            f(b);
        }
    }
    fn visit_params_ref(&self, f: &mut dyn FnMut(&Param)) {
        f(&self.w);
        if let Some(b) = &self.b {
            f(b);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gradcheck::assert_grad_close;
    use pac_tensor::rng::seeded;

    #[test]
    fn forward_shapes() {
        let mut rng = seeded(1);
        let l = Linear::new("l", &mut rng, 4, 3, true);
        let x = init::randn(&mut rng, [5, 4], 1.0);
        let (y, _) = l.forward(&x).unwrap();
        assert_eq!(y.dims(), &[5, 3]);
        assert_eq!(l.num_params(), 4 * 3 + 3);
    }

    #[test]
    fn bias_is_added() {
        let w = Tensor::zeros([2, 2]);
        let b = Tensor::from_vec(vec![1.0, 2.0], [2]).unwrap();
        let l = Linear::from_weights("l", w, Some(b));
        let x = Tensor::ones([1, 2]);
        let (y, _) = l.forward(&x).unwrap();
        assert_eq!(y.data(), &[1.0, 2.0]);
    }

    #[test]
    fn input_gradient_matches_finite_difference() {
        let mut rng = seeded(2);
        let l = Linear::new("l", &mut rng, 3, 4, true);
        let x = init::randn(&mut rng, [2, 3], 1.0);
        let dy = Tensor::ones([2, 4]); // loss = sum(y)

        let (_, ctx) = l.forward(&x).unwrap();
        let mut l2 = l.clone();
        let dx = l2.backward(&ctx, &dy).unwrap();

        assert_grad_close(&x, &dx, 1e-2, |xp| l.forward(xp).unwrap().0.sum());
    }

    #[test]
    fn weight_gradient_matches_finite_difference() {
        let mut rng = seeded(3);
        let l = Linear::new("l", &mut rng, 3, 2, true);
        let x = init::randn(&mut rng, [4, 3], 1.0);
        let dy = Tensor::ones([4, 2]);

        let (_, ctx) = l.forward(&x).unwrap();
        let mut l2 = l.clone();
        l2.backward(&ctx, &dy).unwrap();

        // Numeric gradient w.r.t. W.
        assert_grad_close(&l.w.value, &l2.w.grad, 1e-2, |wp| {
            let lt = Linear::from_weights("t", wp.clone(), l.b.as_ref().map(|b| b.value.clone()));
            lt.forward(&x).unwrap().0.sum()
        });

        // Numeric gradient w.r.t. b: db should equal sum of dy rows = [4, 4].
        let db = l2.b.as_ref().unwrap().grad.clone();
        assert_eq!(db.data(), &[4.0, 4.0]);
    }

    #[test]
    fn frozen_layer_accumulates_no_grads_but_propagates() {
        let mut rng = seeded(4);
        let mut l = Linear::new("l", &mut rng, 3, 3, true);
        l.freeze_all();
        let x = init::randn(&mut rng, [2, 3], 1.0);
        let (_, ctx) = l.forward(&x).unwrap();
        let dx = l.backward(&ctx, &Tensor::ones([2, 3])).unwrap();
        assert_eq!(l.w.grad.norm(), 0.0);
        assert!(dx.norm() > 0.0);
    }

    #[test]
    fn quantize_refuses_trainable_and_engages_when_frozen() {
        let mut rng = seeded(6);
        let mut l = Linear::new("l", &mut rng, 8, 6, true);
        assert!(!l.quantize_frozen(), "trainable weight must not quantize");
        assert!(!l.is_quantized());
        l.freeze_all();
        assert!(l.quantize_frozen());
        assert!(l.is_quantized());
        // int8 payload (out*in) + one f32 scale per out row.
        assert_eq!(l.quantized_bytes(), 6 * 8 + 6 * 4);
        l.dequantize_weights();
        assert!(!l.is_quantized());
        assert_eq!(l.quantized_bytes(), 0);
    }

    #[test]
    fn quantized_forward_tracks_f32_within_quant_error() {
        let mut rng = seeded(7);
        let mut l = Linear::new("l", &mut rng, 16, 12, true);
        l.freeze_all();
        let x = init::randn(&mut rng, [5, 16], 1.0);
        let (exact, _) = l.forward(&x).unwrap();
        l.quantize_frozen();
        let (q8, _) = l.forward(&x).unwrap();
        assert_eq!(q8.dims(), exact.dims());
        // Both operands carry ≤ half-step error over k=16 terms; the
        // practical deviation at unit-scale data is far below 0.1.
        for (a, b) in exact.data().iter().zip(q8.data().iter()) {
            assert!((a - b).abs() < 0.1, "{a} vs {b}");
        }
        // Backward still runs off the resident f32 weight.
        let (_, ctx) = l.forward(&x).unwrap();
        let dx = l.backward(&ctx, &Tensor::ones([5, 12])).unwrap();
        assert!(dx.norm() > 0.0);
    }

    #[test]
    fn grad_accumulates_across_micro_batches() {
        let mut rng = seeded(5);
        let mut l = Linear::new("l", &mut rng, 2, 2, false);
        let x = init::randn(&mut rng, [1, 2], 1.0);
        let (_, ctx) = l.forward(&x).unwrap();
        l.backward(&ctx, &Tensor::ones([1, 2])).unwrap();
        let g1 = l.w.grad.clone();
        l.backward(&ctx, &Tensor::ones([1, 2])).unwrap();
        assert!(l.w.grad.approx_eq(&g1.scale(2.0), 1e-6));
    }
}
