//! Full fine-tuning: every backbone parameter trains.

use pac_model::{EncDecCtx, EncDecModel};
use pac_nn::{Module, Param};
use pac_tensor::{Result, Tensor};

/// Full-model fine-tuning — the memory-hungriest baseline of Table 1/2.
#[derive(Debug, Clone)]
pub struct FullTuner {
    /// The model; all parameters trainable.
    pub model: EncDecModel,
}

impl FullTuner {
    /// Wraps a model for full fine-tuning (unfreezes everything).
    pub fn new(mut model: EncDecModel) -> Self {
        model.unfreeze_all();
        FullTuner { model }
    }

    /// Forward pass.
    ///
    /// # Errors
    /// Propagates model shape errors.
    pub fn forward(&self, tokens: &[Vec<usize>]) -> Result<(Tensor, EncDecCtx)> {
        self.model.forward(tokens)
    }

    /// Backward pass.
    ///
    /// # Errors
    /// Propagates model shape errors.
    pub fn backward(&mut self, ctx: &EncDecCtx, dlogits: &Tensor) -> Result<()> {
        self.model.backward(ctx, dlogits)
    }
}

impl Module for FullTuner {
    fn visit_params(&mut self, f: &mut dyn FnMut(&mut Param)) {
        self.model.visit_params(f);
    }
    fn visit_params_ref(&self, f: &mut dyn FnMut(&Param)) {
        self.model.visit_params_ref(f);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pac_model::ModelConfig;
    use pac_nn::{cross_entropy, Adam, Optimizer};
    use pac_tensor::rng::seeded;
    use rand::Rng as _;

    #[test]
    fn full_tuner_trains_everything() {
        let cfg = ModelConfig::micro(2, 1, 16, 2);
        let model = EncDecModel::new(&cfg, 2, &mut seeded(120));
        let t = FullTuner::new(model);
        assert_eq!(t.num_trainable(), t.num_params());
    }

    #[test]
    fn loss_decreases() {
        let cfg = ModelConfig::micro(1, 1, 16, 2);
        let model = EncDecModel::new(&cfg, 2, &mut seeded(121));
        let mut t = FullTuner::new(model);
        let mut rng = seeded(122);
        let toks: Vec<Vec<usize>> = (0..4)
            .map(|_| (0..4).map(|_| rng.gen_range(0..64)).collect())
            .collect();
        let targets = [0usize, 1, 0, 1];
        let mut opt = Adam::new(5e-3);
        let mut first = 0.0;
        let mut last = 0.0;
        for i in 0..15 {
            let (logits, ctx) = t.forward(&toks).unwrap();
            let (loss, dl) = cross_entropy(&logits, &targets).unwrap();
            if i == 0 {
                first = loss;
            }
            last = loss;
            t.zero_grads();
            t.backward(&ctx, &dl).unwrap();
            opt.step(&mut t);
        }
        assert!(last < first, "first {first} last {last}");
    }
}
