//! Prompt tuning (Lester et al. 2021) — an extension technique from the
//! paper's related-work section (§7).
//!
//! A small matrix of trainable "virtual token" embeddings is prepended to
//! the encoder input; everything else is frozen. Like Adapters and LoRA
//! (and unlike Parallel Adapters), computing the prompt gradient requires a
//! full backward pass through the backbone — the gradient must reach the
//! *input* embeddings — so prompt tuning inherits the resource profile the
//! paper criticizes, while being even more parameter-frugal.

use pac_model::EncDecModel;
use pac_nn::{LayerNormCtx, LinearCtx, Module, Param, TransformerLayerCtx};
use pac_tensor::{init, Result, Tensor, TensorError};
use rand::Rng;

/// Context of a prompt-tuned forward pass.
#[derive(Debug, Clone)]
pub struct PromptCtx {
    enc_ctxs: Vec<TransformerLayerCtx>,
    dec_ctxs: Vec<TransformerLayerCtx>,
    enc_out: Tensor,
    final_ln: LayerNormCtx,
    head_ctx: LinearCtx,
    batch: usize,
    /// Sequence length *including* the virtual tokens.
    full_seq: usize,
}

/// Prompt tuning over a frozen backbone.
#[derive(Debug, Clone)]
pub struct PromptTuner {
    /// Frozen backbone (head stays trainable).
    pub model: EncDecModel,
    /// Virtual-token embeddings `[p, d]`.
    pub prompt: Param,
}

impl PromptTuner {
    /// Attaches `virtual_tokens` trainable embeddings and freezes the
    /// backbone.
    pub fn new(mut model: EncDecModel, virtual_tokens: usize, rng: &mut impl Rng) -> Self {
        model.freeze_backbone();
        let d = model.config.hidden;
        PromptTuner {
            model,
            prompt: Param::new(
                "prompt.embeddings",
                init::randn(rng, [virtual_tokens, d], 0.02),
            ),
        }
    }

    /// Number of virtual tokens.
    pub fn virtual_tokens(&self) -> usize {
        self.prompt.value.as_2d().0
    }

    /// Forward pass: virtual tokens prepended to the embedded input.
    ///
    /// # Errors
    /// Returns shape errors on ragged batches or when `seq + p` exceeds the
    /// positional table.
    pub fn forward(&self, tokens: &[Vec<usize>]) -> Result<(Tensor, PromptCtx)> {
        let m = &self.model;
        let d = m.config.hidden;
        let p = self.virtual_tokens();
        let batch = tokens.len();
        let seq = tokens.first().map(|t| t.len()).unwrap_or(0);
        if batch == 0 || seq == 0 || tokens.iter().any(|t| t.len() != seq) {
            return Err(TensorError::ShapeMismatch {
                op: "prompt_forward",
                lhs: vec![batch],
                rhs: vec![seq],
            });
        }
        let full_seq = seq + p;
        if full_seq > m.config.max_seq {
            return Err(TensorError::IndexOutOfBounds {
                index: full_seq,
                bound: m.config.max_seq,
            });
        }

        // Embed [prompt ; tokens] with positions 0..full_seq.
        let flat: Vec<usize> = tokens.iter().flatten().copied().collect();
        let tok_emb = m.embed.forward(&flat)?; // [b*s, d]
        let positions: Vec<usize> = (0..batch).flat_map(|_| 0..full_seq).collect();
        let pos_emb = m.pos.forward(&positions)?; // [b*full_seq, d]
        let mut x = Tensor::zeros([batch * full_seq, d]);
        for b in 0..batch {
            for t in 0..p {
                let dst = (b * full_seq + t) * d;
                x.data_mut()[dst..dst + d]
                    .copy_from_slice(&self.prompt.value.data()[t * d..(t + 1) * d]);
            }
            for t in 0..seq {
                let dst = (b * full_seq + p + t) * d;
                let src = (b * seq + t) * d;
                x.data_mut()[dst..dst + d].copy_from_slice(&tok_emb.data()[src..src + d]);
            }
        }
        let mut x = x.add(&pos_emb)?.reshape([batch, full_seq, d])?;

        let mut enc_ctxs = Vec::with_capacity(m.encoder.len());
        for layer in &m.encoder {
            let (y, ctx) = layer.forward(&x, None)?;
            enc_ctxs.push(ctx);
            x = y;
        }
        let enc_out = x;

        let dec_tokens: Vec<usize> = vec![m.start_token; batch];
        let dec_emb = m.embed.forward(&dec_tokens)?;
        let dec_pos = m.pos.forward(&vec![0usize; batch])?;
        let mut xd = dec_emb.add(&dec_pos)?.reshape([batch, 1, d])?;
        let mut dec_ctxs = Vec::with_capacity(m.decoder.len());
        for layer in &m.decoder {
            let (y, ctx) = layer.forward(&xd, Some(&enc_out))?;
            dec_ctxs.push(ctx);
            xd = y;
        }

        let (normed, final_ln) = m.final_ln.forward(&xd)?;
        let (logits, head_ctx) = m.head.forward(&normed)?;
        Ok((
            logits,
            PromptCtx {
                enc_ctxs,
                dec_ctxs,
                enc_out,
                final_ln,
                head_ctx,
                batch,
                full_seq,
            },
        ))
    }

    /// Backward pass: traverses the whole (frozen) backbone to reach the
    /// prompt embeddings at the encoder input.
    ///
    /// # Errors
    /// Propagates shape errors.
    pub fn backward(&mut self, ctx: &PromptCtx, dlogits: &Tensor) -> Result<()> {
        let m = &mut self.model;
        let d = m.config.hidden;
        let p = self.prompt.value.as_2d().0;
        let (batch, full_seq) = (ctx.batch, ctx.full_seq);

        let d_normed = m.head.backward(&ctx.head_ctx, dlogits)?;
        let mut dxd = m
            .final_ln
            .backward(&ctx.final_ln, &d_normed)?
            .reshape([batch, 1, d])?;

        let mut d_enc_total = Tensor::zeros(ctx.enc_out.dims());
        for (layer, lctx) in m.decoder.iter_mut().zip(ctx.dec_ctxs.iter()).rev() {
            let (dx, d_enc) = layer.backward(lctx, &dxd)?;
            dxd = dx;
            if let Some(de) = d_enc {
                d_enc_total.add_assign(&de)?;
            }
        }

        let mut dx = d_enc_total;
        for (layer, lctx) in m.encoder.iter_mut().zip(ctx.enc_ctxs.iter()).rev() {
            let (g, _) = layer.backward(lctx, &dx)?;
            dx = g;
        }

        // Scatter the gradient rows of the virtual-token positions into the
        // prompt parameter (summed over the batch).
        if self.prompt.trainable {
            let dx2 = dx.reshape([batch * full_seq, d])?;
            let mut dprompt = Tensor::zeros([p, d]);
            for b in 0..batch {
                for t in 0..p {
                    let src = (b * full_seq + t) * d;
                    let dst = t * d;
                    for j in 0..d {
                        dprompt.data_mut()[dst + j] += dx2.data()[src + j];
                    }
                }
            }
            self.prompt.accumulate_grad(&dprompt);
        }
        Ok(())
    }
}

impl Module for PromptTuner {
    fn visit_params(&mut self, f: &mut dyn FnMut(&mut Param)) {
        self.model.visit_params(f);
        f(&mut self.prompt);
    }
    fn visit_params_ref(&self, f: &mut dyn FnMut(&Param)) {
        self.model.visit_params_ref(f);
        f(&self.prompt);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pac_model::ModelConfig;
    use pac_nn::{cross_entropy, Adam, Optimizer};
    use pac_tensor::rng::seeded;
    use rand::Rng;

    fn tuner(seed: u64, p: usize) -> PromptTuner {
        let cfg = ModelConfig::micro(2, 1, 16, 2);
        let model = EncDecModel::new(&cfg, 2, &mut seeded(seed));
        PromptTuner::new(model, p, &mut seeded(seed + 1))
    }

    fn toks(seed: u64, b: usize) -> Vec<Vec<usize>> {
        let mut rng = seeded(seed);
        (0..b)
            .map(|_| (0..4).map(|_| rng.gen_range(0..64)).collect())
            .collect()
    }

    #[test]
    fn forward_shapes_and_trainable_set() {
        let t = tuner(600, 3);
        let batch = toks(601, 2);
        let (logits, _) = t.forward(&batch).unwrap();
        assert_eq!(logits.dims(), &[2, 2]);
        // Trainable = prompt + head.
        let expected = 3 * 16 + t.model.head.num_params();
        assert_eq!(t.num_trainable(), expected);
    }

    #[test]
    fn overlong_prompt_is_rejected() {
        let t = tuner(602, 40); // 40 + 4 > max_seq (32 for micro)
        assert!(t.forward(&toks(603, 1)).is_err());
    }

    #[test]
    fn prompt_gradient_matches_finite_difference() {
        let mut t = tuner(604, 2);
        let batch = toks(605, 2);
        let targets = [0usize, 1];
        let (logits, ctx) = t.forward(&batch).unwrap();
        let (_, dl) = cross_entropy(&logits, &targets).unwrap();
        t.zero_grads();
        t.backward(&ctx, &dl).unwrap();
        let grad = t.prompt.grad.clone();

        // Small ε: the loss is strongly curved through LayerNorm+softmax
        // (verified: central differences converge to the analytic value).
        let eps = 1e-3f32;
        for i in [0usize, 7, 19, 31] {
            let loss_at = |delta: f32| {
                let mut tp = t.clone();
                tp.prompt.value.data_mut()[i] += delta;
                let (lp, _) = tp.forward(&batch).unwrap();
                cross_entropy(&lp, &targets).unwrap().0
            };
            let numeric = (loss_at(eps) - loss_at(-eps)) / (2.0 * eps);
            assert!(
                (numeric - grad.data()[i]).abs() < 1e-2_f32.max(numeric.abs() * 0.05),
                "dprompt[{i}]: numeric {numeric} vs analytic {}",
                grad.data()[i]
            );
        }
    }

    #[test]
    fn training_reduces_loss_with_frozen_backbone() {
        let mut t = tuner(606, 4);
        let backbone_before: Vec<f32> = {
            let mut v = Vec::new();
            t.model.visit_params_ref(&mut |p| {
                if !p.trainable {
                    v.extend_from_slice(p.value.data());
                }
            });
            v
        };
        let batch = toks(607, 4);
        let targets = [0usize, 1, 0, 1];
        let mut opt = Adam::new(5e-2);
        let mut first = 0.0;
        let mut last = 0.0;
        for i in 0..25 {
            let (logits, ctx) = t.forward(&batch).unwrap();
            let (loss, dl) = cross_entropy(&logits, &targets).unwrap();
            if i == 0 {
                first = loss;
            }
            last = loss;
            t.zero_grads();
            t.backward(&ctx, &dl).unwrap();
            opt.step(&mut t);
        }
        assert!(last < first, "first {first} last {last}");
        let mut after = Vec::new();
        t.model.visit_params_ref(&mut |p| {
            if !p.trainable {
                after.extend_from_slice(p.value.data());
            }
        });
        assert_eq!(backbone_before, after, "backbone moved under prompt tuning");
    }
}
