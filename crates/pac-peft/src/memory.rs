//! Analytic memory-footprint model reproducing Table 1 / Figure 8(b).
//!
//! All quantities are derived from the model architecture and training
//! hyperparameters with the standard transformer formulas — the same inputs
//! the real system would have — so the *relative* footprints (who fits on a
//! 4 GB Jetson Nano, who OOMs, how much Parallel Adapters save) reproduce
//! the paper's findings even though we do not run on real hardware.

use crate::technique::Technique;
use pac_model::ModelConfig;
use serde::{Deserialize, Serialize};

/// Which phase of fine-tuning memory is being accounted for.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Phase {
    /// Regular training epoch (epoch 1 for PAC; every epoch for baselines).
    Training,
    /// Cache-enabled epoch (≥ 2) for Parallel Adapters: the backbone's
    /// weights are released and its forward pass is skipped (paper §4.2).
    CachedTraining,
    /// Forward-only inference.
    Inference,
}

/// A Table-1-style memory breakdown, in bytes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct MemoryBreakdown {
    /// Model weights resident in memory.
    pub weights: usize,
    /// Intermediate activations retained for backward, plus optimizer state
    /// (the paper's "Activations" column groups these).
    pub activations: usize,
    /// Gradient buffers for trainable parameters.
    pub gradients: usize,
}

impl MemoryBreakdown {
    /// Total footprint.
    pub fn total(&self) -> usize {
        self.weights + self.activations + self.gradients
    }

    /// Gigabytes (SI) helper for reporting.
    pub fn total_gb(&self) -> f64 {
        self.total() as f64 / 1e9
    }
}

/// Memory accountant for one (model, technique, batch geometry) combination.
#[derive(Debug, Clone)]
pub struct MemoryModel {
    /// Architecture being trained.
    pub config: ModelConfig,
    /// Fine-tuning technique.
    pub technique: Technique,
    /// Mini-batch size.
    pub batch: usize,
    /// Encoder sequence length.
    pub seq: usize,
    /// Decoder (target) sequence length — GLUE-style targets are short.
    pub dec_seq: usize,
    /// Optimizer state bytes per trainable parameter (4 = SGD-momentum,
    /// 8 = Adam).
    pub opt_bytes_per_param: usize,
    /// Bytes per weight/activation value: 4 = f32 (the paper's setting),
    /// 2 = fp16 mixed precision. Optimizer state stays f32 (master copies).
    pub value_bytes: usize,
    /// Activation recomputation (gradient checkpointing, as in the
    /// related-work on-device trainers Sage/Melon): retain only ~2·√L
    /// layers of activations and recompute the rest during backward,
    /// trading one extra forward pass for memory.
    pub recompute_activations: bool,
}

impl MemoryModel {
    /// Accountant with the paper's evaluation geometry (batch 16, seq 128)
    /// and SGD-momentum optimizer state.
    pub fn paper_defaults(config: ModelConfig, technique: Technique) -> Self {
        MemoryModel {
            config,
            technique,
            batch: 16,
            seq: 128,
            dec_seq: 8,
            opt_bytes_per_param: 4,
            value_bytes: 4,
            recompute_activations: false,
        }
    }

    /// Copy with fp16 weights/activations (optimizer master copies stay
    /// f32).
    pub fn with_fp16(mut self) -> Self {
        self.value_bytes = 2;
        self
    }

    /// Copy with activation recomputation enabled.
    pub fn with_recompute(mut self) -> Self {
        self.recompute_activations = true;
        self
    }

    /// Trainable parameters under this technique.
    pub fn trainable_params(&self) -> usize {
        self.technique.trainable_params(&self.config)
    }

    /// Weight bytes resident during `phase`.
    pub fn weight_bytes(&self, phase: Phase) -> usize {
        let technique_extra = match self.technique {
            Technique::Full => 0,
            t => t.trainable_params(&self.config) * self.value_bytes,
        };
        let backbone = self.config.total_params() * self.value_bytes;
        match phase {
            Phase::CachedTraining if self.technique.supports_activation_cache() => {
                // Backbone released: only the side network + head remain.
                technique_extra
            }
            Phase::Inference => backbone,
            _ => backbone + technique_extra,
        }
    }

    /// Gradient-buffer bytes during `phase`.
    pub fn gradient_bytes(&self, phase: Phase) -> usize {
        match phase {
            Phase::Inference => 0,
            _ => self.trainable_params() * self.value_bytes,
        }
    }

    /// Backbone intermediate activations retained for backward, per the
    /// explicit backward implementations in `pac-nn` (bytes).
    fn backbone_intermediate_bytes(&self) -> usize {
        let c = &self.config;
        let enc_tokens = self.batch * self.seq;
        let dec_tokens = self.batch * self.dec_seq;
        let enc = c.enc_layers * c.enc_layer_act_floats_per_token() * enc_tokens;
        let dec = c.dec_layers * c.dec_layer_act_floats_per_token() * dec_tokens;
        let scores = c.enc_layers * c.attn_score_floats(self.batch, self.seq)
            + c.dec_layers
                * (c.attn_score_floats(self.batch, self.dec_seq)
                    + self.batch * c.heads * self.dec_seq * self.seq);
        let full = (enc + dec + scores) * self.value_bytes;
        if self.recompute_activations {
            // √L checkpointing: keep ~2·√L of L layers' activations; the
            // rest is recomputed during backward (+1 forward of compute).
            let l = c.total_layers().max(1) as f64;
            let keep = (2.0 * l.sqrt() / l).min(1.0);
            (full as f64 * keep).ceil() as usize
        } else {
            full
        }
    }

    /// Technique-specific extra activations (adapter bottlenecks, LoRA
    /// branch activations, side-network state).
    fn technique_activation_bytes(&self) -> usize {
        let c = &self.config;
        let h = c.hidden;
        let enc_tokens = self.batch * self.seq;
        let dec_tokens = self.batch * self.dec_seq;
        let tokens = enc_tokens + dec_tokens;
        match self.technique {
            Technique::Full => 0,
            Technique::Adapters { reduction } => {
                let r = (h / reduction).max(1);
                // Bottleneck input + hidden retained per layer.
                c.total_layers() * (h + r) * tokens / 2 * 4
            }
            Technique::Lora { rank } => {
                // Low-rank branch activations on Q/V of each block.
                let blocks = c.enc_layers + 2 * c.dec_layers;
                blocks * 2 * rank * tokens / 2 * 4
            }
            Technique::ParallelAdapters { reduction } => {
                let r = (h / reduction).max(1);
                // Side network retains its own (r-dim) contexts plus the
                // b_i inputs feeding each down-projection.
                let b_inputs = c.enc_layers * h * enc_tokens + c.dec_layers * h * dec_tokens;
                let side = c.total_layers() * 3 * r * enc_tokens;
                (b_inputs + side) * 4
            }
            Technique::PromptTuning { virtual_tokens } => {
                // The virtual tokens lengthen the encoder sequence, growing
                // every retained layer context proportionally.
                let extra_tokens = self.batch * virtual_tokens;
                c.enc_layers * c.enc_layer_act_floats_per_token() * extra_tokens * 4
            }
        }
    }

    /// "Activations" bytes in the paper's Table 1 sense: retained
    /// intermediates plus optimizer state.
    pub fn activation_bytes(&self, phase: Phase) -> usize {
        match phase {
            Phase::Inference => 0,
            Phase::Training => {
                let opt = self.trainable_params() * self.opt_bytes_per_param;
                if self.technique.backprop_through_backbone() {
                    self.backbone_intermediate_bytes() + self.technique_activation_bytes() + opt
                } else {
                    // Parallel Adapters: the backbone runs forward-only. The
                    // transient working set is ~2 layers of activations; the
                    // retained set is the side network's contexts.
                    let transient = 2
                        * self.config.enc_layer_act_floats_per_token()
                        * self.batch
                        * self.seq
                        * 4;
                    transient + self.technique_activation_bytes() + opt
                }
            }
            Phase::CachedTraining => {
                let opt = self.trainable_params() * self.opt_bytes_per_param;
                // Only the current micro-batch's cached b_i plus side state.
                self.technique_activation_bytes() + opt
            }
        }
    }

    /// Complete breakdown for `phase`.
    pub fn breakdown(&self, phase: Phase) -> MemoryBreakdown {
        MemoryBreakdown {
            weights: self.weight_bytes(phase),
            activations: self.activation_bytes(phase),
            gradients: self.gradient_bytes(phase),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t5l(t: Technique) -> MemoryModel {
        MemoryModel::paper_defaults(ModelConfig::t5_large(), t)
    }

    #[test]
    fn table1_shape_full_vs_peft_vs_inference() {
        // Table 1 ordering: Full (10.83) > LoRA (7.13) ≈ Adapters (6.89)
        // > Inference (2.75).
        let full = t5l(Technique::Full).breakdown(Phase::Training).total();
        let ad = t5l(Technique::adapters_default())
            .breakdown(Phase::Training)
            .total();
        let lora = t5l(Technique::lora_default())
            .breakdown(Phase::Training)
            .total();
        let inf = t5l(Technique::Full).breakdown(Phase::Inference).total();
        assert!(full > lora && full > ad, "full {full} ad {ad} lora {lora}");
        assert!(ad > inf && lora > inf);
        // Full ≈ 1.5–1.7× the PEFT rows, as in the table.
        let ratio = full as f64 / ad as f64;
        assert!((1.2..2.2).contains(&ratio), "ratio {ratio}");
    }

    #[test]
    fn table1_magnitudes_are_in_paper_range() {
        // Weights 2.75 GB, Full total 10.83 GB, PEFT ≈ 7 GB.
        let full = t5l(Technique::Full).breakdown(Phase::Training);
        assert!(
            (2.4..3.4).contains(&(full.weights as f64 / 1e9)),
            "weights {} GB",
            full.weights as f64 / 1e9
        );
        let total_gb = full.total_gb();
        assert!((8.0..13.0).contains(&total_gb), "full total {total_gb} GB");
    }

    #[test]
    fn peft_gradients_are_tiny() {
        // Table 1: Adapters grads 0.05 GB, LoRA 0.04 GB.
        let ad = t5l(Technique::adapters_default()).breakdown(Phase::Training);
        let lora = t5l(Technique::lora_default()).breakdown(Phase::Training);
        assert!((ad.gradients as f64 / 1e9) < 0.08, "{}", ad.gradients);
        assert!((lora.gradients as f64 / 1e9) < 0.08, "{}", lora.gradients);
    }

    #[test]
    fn parallel_adapters_save_memory_without_cache() {
        // Fig 8(b): PA reduces peak memory ≈ 25% versus backbone-backprop
        // techniques even before the cache kicks in.
        let pa = t5l(Technique::parallel_default())
            .breakdown(Phase::Training)
            .total();
        let ad = t5l(Technique::adapters_default())
            .breakdown(Phase::Training)
            .total();
        let saving = 1.0 - pa as f64 / ad as f64;
        assert!(saving > 0.15, "saving {saving}");
    }

    #[test]
    fn cached_phase_releases_backbone() {
        // Fig 8(b): with the cache the footprint drops ≈ 75%: only the side
        // network + current micro-batch activations remain.
        let m = t5l(Technique::parallel_default());
        let train = m.breakdown(Phase::Training).total();
        let cached = m.breakdown(Phase::CachedTraining).total();
        assert!(cached < train / 2, "train {train} cached {cached}");
        let vs_full =
            1.0 - cached as f64 / t5l(Technique::Full).breakdown(Phase::Training).total() as f64;
        assert!(vs_full > 0.6, "reduction vs full {vs_full}");
    }

    #[test]
    fn cache_does_not_apply_to_backbone_techniques() {
        let m = t5l(Technique::lora_default());
        assert_eq!(
            m.weight_bytes(Phase::CachedTraining),
            m.weight_bytes(Phase::Training)
        );
    }

    #[test]
    fn inference_is_weights_only() {
        let b = t5l(Technique::Full).breakdown(Phase::Inference);
        assert_eq!(b.activations, 0);
        assert_eq!(b.gradients, 0);
        assert!(b.weights > 0);
    }

    #[test]
    fn fp16_roughly_halves_weights_and_activations() {
        let f32_model = t5l(Technique::Full);
        let fp16 = t5l(Technique::Full).with_fp16();
        let a = f32_model.breakdown(Phase::Training);
        let b = fp16.breakdown(Phase::Training);
        assert!((b.weights as f64 / a.weights as f64 - 0.5).abs() < 0.01);
        assert!(
            b.total() < a.total() * 7 / 10,
            "{} vs {}",
            b.total(),
            a.total()
        );
        // Optimizer master state stays f32, so it's not exactly half.
        assert!(b.activations * 2 > a.activations);
    }

    #[test]
    fn recomputation_cuts_retained_activations() {
        let plain = t5l(Technique::Full);
        let ckpt = t5l(Technique::Full).with_recompute();
        let a = plain.breakdown(Phase::Training);
        let b = ckpt.breakdown(Phase::Training);
        // √L checkpointing on 48 layers keeps ~2/√48 ≈ 29% of the
        // intermediates; optimizer state (also counted in "activations")
        // is untouched, so check the intermediates-only reduction exactly.
        let opt = plain.trainable_params() * plain.opt_bytes_per_param;
        let kept = (b.activations - opt) as f64 / (a.activations - opt) as f64;
        assert!((0.2..0.4).contains(&kept), "kept fraction {kept}");
        assert!(b.activations < a.activations * 7 / 10);
        assert_eq!(a.weights, b.weights);
        // Recomputation composes with fp16.
        let both = t5l(Technique::Full).with_recompute().with_fp16();
        assert!(both.breakdown(Phase::Training).total() < b.total());
    }

    #[test]
    fn prompt_tuning_costs_more_activations_than_lora() {
        // The virtual tokens lengthen the encoder sequence, so prompt
        // tuning's retained activations exceed LoRA's tiny branch.
        let prompt = t5l(Technique::prompt_default()).breakdown(Phase::Training);
        let lora = t5l(Technique::lora_default()).breakdown(Phase::Training);
        assert!(prompt.activations > lora.activations);
        // But its checkpoint (trainable set) is the smallest of all.
        assert!(
            Technique::prompt_default().trainable_params(&ModelConfig::t5_large())
                < Technique::lora_default().trainable_params(&ModelConfig::t5_large())
        );
    }

    #[test]
    fn activations_grow_with_batch() {
        let mut m = t5l(Technique::Full);
        let small = m.activation_bytes(Phase::Training);
        m.batch = 32;
        let big = m.activation_bytes(Phase::Training);
        assert!(big > small * 3 / 2);
    }
}
