//! The PAC activation cache (paper §4.2).
//!
//! With a frozen backbone, the per-layer activations `b_i` produced for a
//! given input sequence never change. The cache stores them per sample
//! during the first epoch; later epochs fetch them and skip the backbone
//! forward pass entirely.
//!
//! The store is keyed by a caller-supplied sample id and holds one tensor
//! per backbone layer. [`CacheStats`] mirrors the paper's storage-cost
//! analysis (`s × h × l` floats per sample).
//!
//! # Precision
//!
//! The cache stores either raw f32 activations ([`CachePrecision::F32`],
//! the default — hits reproduce fills bit-for-bit, keeping the cache a
//! *pure* optimization) or per-row absmax int8 ([`CachePrecision::Int8`]):
//! quantize on fill, dequantize on hit, cutting resident bytes ~4×. The
//! int8 mode trades a half-quantization-step perturbation of each cached
//! activation for the memory cut — sound for exactly the reason the cache
//! exists at all: the backbone is frozen, so cached values sit on no
//! gradient path (EDGE-LLM-style frozen-side compression).

use pac_tensor::{QTensor, Tensor};
use std::collections::HashMap;

/// Storage precision of cached activations.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub enum CachePrecision {
    /// Raw f32: hits are bitwise identical to fills (default).
    #[default]
    F32,
    /// Per-row absmax int8: ~4× smaller, half-step dequantization error.
    Int8,
}

/// One sample's cached per-layer activations, in the cache's precision.
#[derive(Debug, Clone)]
enum CachedActs {
    F32(Vec<Tensor>),
    Q8(Vec<QTensor>),
}

impl CachedActs {
    fn resident_bytes(&self) -> usize {
        match self {
            CachedActs::F32(acts) => acts.iter().map(Tensor::size_bytes).sum(),
            CachedActs::Q8(acts) => acts.iter().map(QTensor::size_bytes).sum(),
        }
    }

    /// Bytes the same activations would occupy as f32.
    fn logical_bytes(&self) -> usize {
        match self {
            CachedActs::F32(acts) => acts.iter().map(Tensor::size_bytes).sum(),
            CachedActs::Q8(acts) => acts.iter().map(|q| q.data().len() * 4).sum(),
        }
    }

    fn layers(&self) -> usize {
        match self {
            CachedActs::F32(acts) => acts.len(),
            CachedActs::Q8(acts) => acts.len(),
        }
    }

    /// Materializes layer `l` as an f32 tensor (cheap CoW clone for f32
    /// entries, dequantization for int8 entries).
    fn layer(&self, l: usize) -> Tensor {
        match self {
            CachedActs::F32(acts) => acts[l].clone(),
            CachedActs::Q8(acts) => acts[l].dequantize(),
        }
    }

    fn materialize(&self) -> Vec<Tensor> {
        (0..self.layers()).map(|l| self.layer(l)).collect()
    }
}

/// Statistics about cache contents and effectiveness.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Number of cached samples.
    pub entries: usize,
    /// Resident bytes of cached activations, in the storage precision
    /// (int8 entries count 1 byte per element plus their scales).
    pub bytes: usize,
    /// Bytes the same activations would occupy as raw f32 — the
    /// compression denominator (`logical_bytes / bytes` ≈ 4 for int8).
    pub logical_bytes: usize,
    /// Lookup hits since creation.
    pub hits: usize,
    /// Lookup misses since creation.
    pub misses: usize,
}

/// Per-sample activation cache for Parallel-Adapters fine-tuning.
///
/// ```
/// use pac_peft::ActivationCache;
/// use pac_tensor::Tensor;
///
/// let mut cache = ActivationCache::new();
/// cache.insert(7, vec![Tensor::zeros([1, 4, 8])]);
/// assert!(cache.contains(7));
/// assert_eq!(cache.stats().bytes, 4 * 8 * 4);
/// assert!(cache.get(7).is_some());
/// assert!(cache.get(8).is_none()); // counted as a miss
/// ```
#[derive(Debug, Clone, Default)]
pub struct ActivationCache {
    entries: HashMap<u64, CachedActs>,
    precision: CachePrecision,
    bytes: usize,
    logical_bytes: usize,
    hits: usize,
    misses: usize,
}

impl ActivationCache {
    /// Creates an empty f32 cache (hits bitwise-identical to fills).
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates an empty cache with the given storage precision.
    pub fn with_precision(precision: CachePrecision) -> Self {
        ActivationCache {
            precision,
            ..Self::default()
        }
    }

    /// Creates an empty int8 cache (quantize on fill, dequantize on hit).
    pub fn new_int8() -> Self {
        Self::with_precision(CachePrecision::Int8)
    }

    /// The storage precision of this cache.
    pub fn precision(&self) -> CachePrecision {
        self.precision
    }

    /// Inserts (or replaces) the per-layer activations of `sample_id`.
    ///
    /// `acts[i]` is the backbone layer-`i` output for this sample, shaped
    /// `[1, s, d]` (encoder layers) or `[1, 1, d]` (decoder layers). In
    /// int8 mode each layer is quantized here, one absmax scale per folded
    /// row (i.e. per token position).
    pub fn insert(&mut self, sample_id: u64, acts: Vec<Tensor>) {
        let stored = match self.precision {
            CachePrecision::F32 => CachedActs::F32(acts),
            CachePrecision::Int8 => CachedActs::Q8(acts.iter().map(QTensor::quantize).collect()),
        };
        let new_bytes = stored.resident_bytes();
        let new_logical = stored.logical_bytes();
        if let Some(old) = self.entries.insert(sample_id, stored) {
            self.bytes -= old.resident_bytes();
            self.logical_bytes -= old.logical_bytes();
        }
        self.bytes += new_bytes;
        self.logical_bytes += new_logical;
        if pac_telemetry::enabled() {
            pac_telemetry::counter_inc("cache.fills");
            pac_telemetry::gauge_set("cache.bytes", self.bytes as u64);
            pac_telemetry::gauge_set("cache.logical_bytes", self.logical_bytes as u64);
            pac_telemetry::gauge_set("cache.entries", self.entries.len() as u64);
        }
    }

    /// Fetches the cached activations of `sample_id`, updating hit/miss
    /// statistics. F32 entries return cheap copy-on-write clones; int8
    /// entries dequantize here.
    pub fn get(&mut self, sample_id: u64) -> Option<Vec<Tensor>> {
        if let Some(entry) = self.entries.get(&sample_id) {
            self.hits += 1;
            pac_telemetry::counter_inc("cache.hits");
            Some(entry.materialize())
        } else {
            self.misses += 1;
            pac_telemetry::counter_inc("cache.misses");
            None
        }
    }

    /// True when `sample_id` is cached (does not update statistics).
    pub fn contains(&self, sample_id: u64) -> bool {
        self.entries.contains_key(&sample_id)
    }

    /// Assembles a batched activation list for `sample_ids`: for each layer,
    /// stacks the per-sample tensors along the batch dimension.
    ///
    /// Counts one hit or miss *per sample* (a batch of 8 with 3 absent
    /// samples records 5 hits and 3 misses), so the hit rate reflects how
    /// much backbone compute the cache actually saved. Returns `None` if
    /// any sample is absent.
    pub fn get_batch(&mut self, sample_ids: &[u64]) -> Option<Vec<Tensor>> {
        if sample_ids.is_empty() {
            return None;
        }
        let present = sample_ids
            .iter()
            .filter(|id| self.entries.contains_key(id))
            .count();
        let absent = sample_ids.len() - present;
        self.hits += present;
        self.misses += absent;
        if pac_telemetry::enabled() {
            pac_telemetry::counter_add("cache.hits", present as u64);
            pac_telemetry::counter_add("cache.misses", absent as u64);
        }
        if absent > 0 {
            return None;
        }
        let layers = self.entries[&sample_ids[0]].layers();
        let mut out = Vec::with_capacity(layers);
        for l in 0..layers {
            let per_sample: Vec<Tensor> = sample_ids
                .iter()
                .map(|id| {
                    let t = self.entries[id].layer(l);
                    // [1, s, d] → [s, d] rows for stacking.
                    let (s, d) = match t.dims() {
                        &[1, s, d] => (s, d),
                        &[s, d] => (s, d),
                        other => {
                            let n = t.numel();
                            let d = *other.last().unwrap_or(&n);
                            (n / d.max(1), d)
                        }
                    };
                    t.reshape([s, d]).expect("cached tensor reshapes to [s, d]")
                })
                .collect();
            let refs: Vec<&Tensor> = per_sample.iter().collect();
            let stacked = Tensor::stack_rows(&refs).expect("cached shapes are uniform per layer");
            let (rows, d) = stacked.as_2d();
            let s = rows / sample_ids.len();
            out.push(
                stacked
                    .reshape([sample_ids.len(), s, d])
                    .expect("stacked rows divide evenly into the batch"),
            );
        }
        Some(out)
    }

    /// Splits a batched forward's layer outputs into per-sample entries and
    /// caches them (the epoch-1 fill path).
    pub fn insert_batch(&mut self, sample_ids: &[u64], layer_outputs: &[Tensor]) {
        for (bi, &id) in sample_ids.iter().enumerate() {
            let acts: Vec<Tensor> = layer_outputs
                .iter()
                .map(|t| {
                    let (b, s, d) = match t.dims() {
                        &[b, s, d] => (b, s, d),
                        _ => panic!("layer outputs must be [b, s, d]"),
                    };
                    debug_assert_eq!(b, sample_ids.len());
                    let _ = b;
                    t.clone()
                        .reshape([sample_ids.len() * s, d])
                        .and_then(|t2| t2.slice_rows(bi * s..(bi + 1) * s))
                        .and_then(|t2| t2.reshape([1, s, d]))
                        .expect("slicing a batched layer output cannot fail")
                })
                .collect();
            self.insert(id, acts);
        }
    }

    /// Removes every entry (the paper clears the cache when fine-tuning
    /// finishes).
    pub fn clear(&mut self) {
        self.entries.clear();
        self.bytes = 0;
        self.logical_bytes = 0;
        if pac_telemetry::enabled() {
            pac_telemetry::gauge_set("cache.bytes", 0);
            pac_telemetry::gauge_set("cache.logical_bytes", 0);
            pac_telemetry::gauge_set("cache.entries", 0);
        }
    }

    /// Current statistics.
    pub fn stats(&self) -> CacheStats {
        CacheStats {
            entries: self.entries.len(),
            bytes: self.bytes,
            logical_bytes: self.logical_bytes,
            hits: self.hits,
            misses: self.misses,
        }
    }

    /// Predicted storage for caching `n_samples` sequences of length `seq`
    /// on a model with `layers` layers and hidden size `h` — the paper's
    /// `s × h × l` analysis (bytes, f32).
    pub fn predicted_bytes(n_samples: usize, seq: usize, h: usize, layers: usize) -> usize {
        n_samples * seq * h * layers * 4
    }

    /// [`ActivationCache::predicted_bytes`] for the int8 mode: 1 byte per
    /// element plus one f32 scale per token row.
    pub fn predicted_bytes_q8(n_samples: usize, seq: usize, h: usize, layers: usize) -> usize {
        n_samples * seq * layers * (h + 4)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pac_tensor::{init, rng::seeded};

    fn acts(seed: u64, layers: usize, s: usize, d: usize) -> Vec<Tensor> {
        let mut rng = seeded(seed);
        (0..layers)
            .map(|_| init::randn(&mut rng, [1, s, d], 1.0))
            .collect()
    }

    #[test]
    fn insert_get_round_trip() {
        let mut c = ActivationCache::new();
        let a = acts(1, 3, 4, 8);
        c.insert(42, a.clone());
        assert!(c.contains(42));
        let got = c.get(42).unwrap();
        assert_eq!(got.len(), 3);
        assert!(got[0].approx_eq(&a[0], 0.0));
        assert_eq!(c.stats().hits, 1);
        assert!(c.get(7).is_none());
        assert_eq!(c.stats().misses, 1);
    }

    #[test]
    fn byte_accounting_handles_replacement() {
        let mut c = ActivationCache::new();
        c.insert(1, acts(2, 2, 4, 8));
        let b1 = c.stats().bytes;
        assert_eq!(b1, 2 * 4 * 8 * 4);
        assert_eq!(c.stats().logical_bytes, b1);
        // Replacing the same id must not double-count.
        c.insert(1, acts(3, 2, 4, 8));
        assert_eq!(c.stats().bytes, b1);
        c.clear();
        assert_eq!(c.stats().bytes, 0);
        assert_eq!(c.stats().logical_bytes, 0);
        assert_eq!(c.stats().entries, 0);
    }

    #[test]
    fn batch_round_trip_preserves_values() {
        let mut c = ActivationCache::new();
        // Build a fake batched forward: 2 layers, batch 3, seq 2, d 4.
        let mut rng = seeded(5);
        let layer_outputs: Vec<Tensor> = (0..2)
            .map(|_| init::randn(&mut rng, [3, 2, 4], 1.0))
            .collect();
        let ids = [10u64, 11, 12];
        c.insert_batch(&ids, &layer_outputs);
        assert_eq!(c.stats().entries, 3);

        let rebuilt = c.get_batch(&ids).unwrap();
        assert_eq!(rebuilt.len(), 2);
        for (orig, got) in layer_outputs.iter().zip(rebuilt.iter()) {
            assert!(orig.approx_eq(got, 0.0), "batch round trip corrupted data");
        }
    }

    #[test]
    fn get_batch_fails_on_missing_sample() {
        let mut c = ActivationCache::new();
        c.insert(1, acts(6, 2, 4, 8));
        assert!(c.get_batch(&[1, 2]).is_none());
        assert!(c.get_batch(&[]).is_none());
    }

    #[test]
    fn get_batch_counts_per_sample_hits_and_misses() {
        let mut c = ActivationCache::new();
        c.insert(1, acts(7, 2, 4, 8));
        c.insert(2, acts(8, 2, 4, 8));

        // 2 of 4 present: the partial batch is a miss overall, but the
        // stats must record exactly which samples the cache could serve.
        assert!(c.get_batch(&[1, 2, 3, 4]).is_none());
        assert_eq!(c.stats().hits, 2);
        assert_eq!(c.stats().misses, 2);

        // Fully present batch: one hit per sample, no misses.
        assert!(c.get_batch(&[1, 2]).is_some());
        assert_eq!(c.stats().hits, 4);
        assert_eq!(c.stats().misses, 2);

        // Empty batch touches no counters.
        assert!(c.get_batch(&[]).is_none());
        assert_eq!(c.stats().hits, 4);
        assert_eq!(c.stats().misses, 2);
    }

    #[test]
    fn int8_mode_cuts_resident_bytes_about_4x() {
        let mut f32c = ActivationCache::new();
        let mut q8c = ActivationCache::new_int8();
        assert_eq!(q8c.precision(), CachePrecision::Int8);
        for id in 0..4u64 {
            f32c.insert(id, acts(20 + id, 3, 8, 64));
            q8c.insert(id, acts(20 + id, 3, 8, 64));
        }
        let f = f32c.stats();
        let q = q8c.stats();
        assert_eq!(f.bytes, 4 * 3 * 8 * 64 * 4);
        assert_eq!(q.logical_bytes, f.bytes);
        let ratio = f.bytes as f64 / q.bytes as f64;
        assert!(ratio >= 3.5, "resident cut only {ratio:.2}x");
        // Predicted formulas agree with the realized layouts.
        assert_eq!(q.bytes, ActivationCache::predicted_bytes_q8(4, 8, 64, 3));
        assert_eq!(f.bytes, ActivationCache::predicted_bytes(4, 8, 64, 3));
    }

    #[test]
    fn int8_hits_stay_within_half_quantization_step() {
        let mut c = ActivationCache::new_int8();
        let a = acts(30, 2, 4, 16);
        c.insert(9, a.clone());
        let got = c.get(9).unwrap();
        for (orig, deq) in a.iter().zip(got.iter()) {
            assert_eq!(orig.dims(), deq.dims());
            // Per-row absmax step over d=16: absmax/127 half-steps.
            for (o, g) in orig.data().iter().zip(deq.data().iter()) {
                assert!((o - g).abs() < 0.05, "{o} vs {g}");
            }
        }
    }

    #[test]
    fn int8_batch_round_trip_is_close_not_exact() {
        let mut c = ActivationCache::new_int8();
        let mut rng = seeded(31);
        let layer_outputs: Vec<Tensor> = (0..2)
            .map(|_| init::randn(&mut rng, [3, 2, 4], 1.0))
            .collect();
        let ids = [1u64, 2, 3];
        c.insert_batch(&ids, &layer_outputs);
        let rebuilt = c.get_batch(&ids).unwrap();
        for (orig, got) in layer_outputs.iter().zip(rebuilt.iter()) {
            assert_eq!(orig.dims(), got.dims());
            assert!(orig.approx_eq(got, 0.05));
            // The whole point of F32 being the default: int8 is lossy.
        }
    }

    #[test]
    fn predicted_bytes_matches_paper_formula() {
        // T5-Base (h=768, 24 layers), seq 128: per-sample cost
        // 128 × 768 × 24 × 4 B ≈ 9.4 MB; thousands of samples fit in the
        // "hundreds of GB" flash of a mobile device (paper §5.2).
        let per_sample = ActivationCache::predicted_bytes(1, 128, 768, 24);
        assert_eq!(per_sample, 128 * 768 * 24 * 4);
        let mrpc = ActivationCache::predicted_bytes(3700, 128, 768, 24);
        assert!((mrpc as f64) < 50e9, "MRPC cache {} GB", mrpc as f64 / 1e9);
        // int8 cuts the same cache ~4×.
        let q8 = ActivationCache::predicted_bytes_q8(3700, 128, 768, 24);
        assert!(per_sample as f64 / (q8 as f64 / 3700.0) > 3.5);
    }
}
