//! Parallel Adapters — the paper's fine-tuning technique (§4.1).
//!
//! A lightweight side network runs *parallel* to the frozen backbone:
//!
//! ```text
//! a_0 = σ(down_0(b_0))
//! a_i = σ(down_i(b_i) + rec_i(a_{i-1}))     i = 1..L-1
//! ŷ   = head(LN(b_L + up(a_L)))
//! ```
//!
//! where `b_i` is backbone layer `i`'s output and the side hidden width is
//! `r = h / k` (reduction factor `k = 8` in the paper). Three properties
//! follow, and each is exercised by a test below:
//!
//! 1. **No backbone backward pass** — gradients never enter the backbone
//!    (the dedicated "gradient highway" of the paper's Figure 5c).
//! 2. **Activation-cache compatible** — the side network's only inputs are
//!    the `b_i`, so [`ParallelTuner::forward_cached`] trains from cached
//!    activations without touching the backbone at all.
//! 3. **Structural-pruning init** — side weights are initialized from the
//!    backbone's weights (§6.1), implemented in `pac_tensor::init`.

use crate::checkpoint::{CheckpointError, TrainCheckpoint};
use pac_model::{EncDecModel, ModelConfig};
use pac_nn::{Activation, LayerNorm, LayerNormCtx, Linear, LinearCtx, Module, Param};
use pac_tensor::{init, Result, Tensor, TensorError};
use rand::Rng;

/// Per-layer saved context of the side network.
#[derive(Debug, Clone)]
struct SideLayerCtx {
    down_ctx: LinearCtx,
    /// Recurrence context and, if the previous state was pooled at the
    /// encoder→decoder boundary, the original sequence length.
    rec: Option<(LinearCtx, Option<usize>)>,
    /// Pre-activation side state (2-D `[b*s, r]`).
    pre: Tensor,
    batch: usize,
    seq: usize,
}

/// Context captured by [`ParallelAdapters::forward_from_acts`].
#[derive(Debug, Clone)]
pub struct SideCtx {
    layers: Vec<SideLayerCtx>,
    up_ctx: LinearCtx,
    ln_ctx: LayerNormCtx,
    head_ctx: LinearCtx,
    batch: usize,
}

/// The trainable side network.
#[derive(Debug, Clone)]
pub struct ParallelAdapters {
    /// Per-layer down projections `[d, r]`.
    pub down: Vec<Linear>,
    /// Recurrence projections `[r, r]` connecting `a_{i-1} → a_i`
    /// (length `L − 1`).
    pub rec: Vec<Linear>,
    /// Up projection `[r, d]`.
    pub up: Linear,
    /// LayerNorm over the combined representation.
    pub side_ln: LayerNorm,
    /// Task head `[d, n_out]`.
    pub head: Linear,
    act: Activation,
    r: usize,
}

impl ParallelAdapters {
    /// Builds a side network for `config` with reduction factor `k` and
    /// `n_out` outputs. Down projections are initialized by structural
    /// pruning of the corresponding backbone attention weights when
    /// `backbone` is given, otherwise randomly.
    pub fn new(
        config: &ModelConfig,
        reduction: usize,
        n_out: usize,
        backbone: Option<&EncDecModel>,
        rng: &mut impl Rng,
    ) -> Self {
        let d = config.hidden;
        let r = (d / reduction).max(1);
        let layers = config.total_layers();
        let mut down = Vec::with_capacity(layers);
        for i in 0..layers {
            let lin = if let Some(m) = backbone {
                let src = if i < m.encoder.len() {
                    &m.encoder[i].self_attn.wq.w.value
                } else {
                    &m.decoder[i - m.encoder.len()].self_attn.wq.w.value
                };
                let w = init::structural_prune(src, d, r);
                Linear::from_weights(
                    &format!("side.down{i}"),
                    w.scale(0.1),
                    Some(Tensor::zeros([r])),
                )
            } else {
                Linear::new(&format!("side.down{i}"), rng, d, r, true)
            };
            down.push(lin);
        }
        let rec = (1..layers)
            .map(|i| Linear::new(&format!("side.rec{i}"), rng, r, r, true))
            .collect();
        ParallelAdapters {
            down,
            rec,
            up: Linear::new("side.up", rng, r, d, true),
            side_ln: LayerNorm::new("side.ln", d),
            head: Linear::new("side.head", rng, d, n_out, true),
            act: Activation::Gelu,
            r,
        }
    }

    /// Side hidden width `r`.
    pub fn side_dim(&self) -> usize {
        self.r
    }

    /// Forward pass from backbone layer outputs `acts` (`acts[i] = b_i`,
    /// `[b, s_i, d]`). This is the *only* input the side network needs — the
    /// fact exploited by the activation cache.
    ///
    /// # Errors
    /// Returns shape errors if `acts` does not match the configured layer
    /// count or shapes are malformed.
    pub fn forward_from_acts(&self, acts: &[Tensor]) -> Result<(Tensor, SideCtx)> {
        if acts.len() != self.down.len() {
            return Err(TensorError::ShapeMismatch {
                op: "parallel_adapters",
                lhs: vec![acts.len()],
                rhs: vec![self.down.len()],
            });
        }
        let mut layers = Vec::with_capacity(acts.len());
        let mut a_prev: Option<Tensor> = None; // [b, s, r]
        for (i, b_i) in acts.iter().enumerate() {
            let (batch, seq, _d) = expect_bsd(b_i)?;
            let (down_out, down_ctx) = self.down[i].forward(b_i)?; // [b*s, r]
            let mut pre = down_out;
            let rec_ctx = if let Some(prev) = a_prev.take() {
                let (pb, ps, pr) = expect_bsd(&prev)?;
                debug_assert_eq!(pb, batch);
                let (prev_use, pooled) = if ps != seq {
                    (pool_seq(&prev, pb, ps, pr)?, Some(ps))
                } else {
                    (prev, None)
                };
                let (rec_out, rctx) = self.rec[i - 1].forward(&prev_use)?;
                pre.add_assign(&rec_out)?;
                Some((rctx, pooled))
            } else {
                None
            };
            let a_i = self.act.forward(&pre).reshape([batch, seq, self.r])?;
            layers.push(SideLayerCtx {
                down_ctx,
                rec: rec_ctx,
                pre,
                batch,
                seq,
            });
            a_prev = Some(a_i);
        }

        let a_last = a_prev.expect("at least one layer");
        let b_last = acts.last().expect("at least one layer");
        let (batch, s_last, d) = expect_bsd(b_last)?;
        let (up_out, up_ctx) = self.up.forward(&a_last)?;
        let repr = b_last.add(&up_out.reshape([batch, s_last, d])?)?;
        let (normed, ln_ctx) = self.side_ln.forward(&repr)?;
        // Head reads the final position's representation (s_last = 1 for
        // decoder outputs; otherwise all positions are pooled by the 2-D
        // view of the linear layer applying per-row and averaging below).
        let pooled = if s_last == 1 {
            normed.clone().reshape([batch, d])?
        } else {
            pool_seq(&normed, batch, s_last, d)?.reshape([batch, d])?
        };
        let (logits, head_ctx) = self.head.forward(&pooled)?;
        Ok((
            logits,
            SideCtx {
                layers,
                up_ctx,
                ln_ctx,
                head_ctx,
                batch,
            },
        ))
    }

    /// Backward pass from `dlogits`. Accumulates gradients into the side
    /// network only — by construction nothing flows into the backbone.
    ///
    /// # Errors
    /// Propagates shape errors.
    pub fn backward(&mut self, ctx: &SideCtx, dlogits: &Tensor) -> Result<()> {
        let batch = ctx.batch;
        let last = ctx.layers.last().expect("at least one layer");
        let (s_last, _) = (last.seq, last.batch);
        let d = self.side_ln.dim();

        let d_pooled = self.head.backward(&ctx.head_ctx, dlogits)?; // [b, d]
        let d_normed = if s_last == 1 {
            d_pooled.reshape([batch, 1, d])?
        } else {
            unpool_seq(&d_pooled, batch, s_last, d)?
        };
        let d_repr = self.side_ln.backward(&ctx.ln_ctx, &d_normed)?;
        // repr = b_last + up(a_last): the b_last branch dies here (frozen
        // backbone — the "gradient highway" property).
        let mut d_a = self.up.backward(&ctx.up_ctx, &d_repr)?; // [b*s, r]

        for i in (0..ctx.layers.len()).rev() {
            let lctx = &ctx.layers[i];
            let d_pre = self.act.backward(&lctx.pre, &d_a);
            // Down-projection grads; input gradient (into b_i) discarded.
            let _ = self.down[i].backward(&lctx.down_ctx, &d_pre)?;
            if let Some((rctx, pooled)) = &lctx.rec {
                let mut d_prev = self.rec[i - 1].backward(rctx, &d_pre)?; // [b*s, r]
                if let Some(orig_s) = pooled {
                    // The forward pooled [b, orig_s, r] → [b, 1, r].
                    d_prev = unpool_seq(&d_prev, batch, *orig_s, self.r)?
                        .reshape([batch * orig_s, self.r])?;
                }
                d_a = d_prev;
            }
        }
        Ok(())
    }
}

fn expect_bsd(t: &Tensor) -> Result<(usize, usize, usize)> {
    match t.dims() {
        &[b, s, d] => Ok((b, s, d)),
        _ => Err(TensorError::RankMismatch {
            op: "parallel_adapters expects [b, s, d]",
            expected: 3,
            actual: t.rank(),
        }),
    }
}

/// Mean over the sequence dimension: `[b, s, w] → [b, 1, w]`.
fn pool_seq(x: &Tensor, b: usize, s: usize, w: usize) -> Result<Tensor> {
    let mut out = Tensor::zeros([b, 1, w]);
    for bi in 0..b {
        for si in 0..s {
            for j in 0..w {
                out.data_mut()[bi * w + j] += x.data()[(bi * s + si) * w + j] / s as f32;
            }
        }
    }
    Ok(out)
}

/// Backward of [`pool_seq`]: `[b, w] or [b,1,w] → [b, s, w]`, each position
/// receiving `dy / s`.
fn unpool_seq(dy: &Tensor, b: usize, s: usize, w: usize) -> Result<Tensor> {
    let mut out = Tensor::zeros([b, s, w]);
    for bi in 0..b {
        for si in 0..s {
            for j in 0..w {
                out.data_mut()[(bi * s + si) * w + j] = dy.data()[bi * w + j] / s as f32;
            }
        }
    }
    Ok(out)
}

impl Module for ParallelAdapters {
    fn visit_params(&mut self, f: &mut dyn FnMut(&mut Param)) {
        for l in &mut self.down {
            l.visit_params(f);
        }
        for l in &mut self.rec {
            l.visit_params(f);
        }
        self.up.visit_params(f);
        self.side_ln.visit_params(f);
        self.head.visit_params(f);
    }
    fn visit_params_ref(&self, f: &mut dyn FnMut(&Param)) {
        for l in &self.down {
            l.visit_params_ref(f);
        }
        for l in &self.rec {
            l.visit_params_ref(f);
        }
        self.up.visit_params_ref(f);
        self.side_ln.visit_params_ref(f);
        self.head.visit_params_ref(f);
    }
}

/// Parallel-Adapters fine-tuning: frozen backbone + trainable side network.
#[derive(Debug, Clone)]
pub struct ParallelTuner {
    /// Fully frozen backbone (its own head is unused; the side network has
    /// its own).
    pub model: EncDecModel,
    /// The trainable side network.
    pub side: ParallelAdapters,
}

/// Context of a full (non-cached) Parallel-Adapters forward pass.
#[derive(Debug, Clone)]
pub struct ParallelCtx {
    /// Side-network context (all that backward needs).
    pub side: SideCtx,
    /// Backbone layer outputs — exactly what the activation cache stores.
    pub layer_outputs: Vec<Tensor>,
}

impl ParallelTuner {
    /// Freezes `model` entirely and attaches a side network with reduction
    /// factor `k`.
    pub fn new(mut model: EncDecModel, reduction: usize, n_out: usize, rng: &mut impl Rng) -> Self {
        model.freeze_all();
        let side = ParallelAdapters::new(&model.config, reduction, n_out, Some(&model), rng);
        ParallelTuner { model, side }
    }

    /// Quantizes the frozen backbone's linear projections to int8 (per-row
    /// absmax, EDGE-LLM-style frozen-side compression). The side network is
    /// untouched — it is the trainable half. Returns how many linears
    /// engaged.
    pub fn quantize_backbone(&mut self) -> usize {
        self.model.quantize_frozen()
    }

    /// Epoch-1 forward: frozen backbone forward (to produce the `b_i`), then
    /// the side network.
    ///
    /// # Errors
    /// Propagates shape errors.
    pub fn forward_full(&self, tokens: &[Vec<usize>]) -> Result<(Tensor, ParallelCtx)> {
        let (_backbone_logits, bctx) = self.model.forward(tokens)?;
        let (logits, side) = self.side.forward_from_acts(&bctx.layer_outputs)?;
        Ok((
            logits,
            ParallelCtx {
                side,
                layer_outputs: bctx.layer_outputs,
            },
        ))
    }

    /// Epoch-≥2 forward: straight from cached activations, no backbone.
    ///
    /// # Errors
    /// Propagates shape errors.
    pub fn forward_cached(&self, acts: &[Tensor]) -> Result<(Tensor, SideCtx)> {
        self.side.forward_from_acts(acts)
    }

    /// Backward pass (side network only).
    ///
    /// # Errors
    /// Propagates shape errors.
    pub fn backward(&mut self, ctx: &SideCtx, dlogits: &Tensor) -> Result<()> {
        self.side.backward(ctx, dlogits)
    }

    /// Captures the current side-network state as a swap baseline. A
    /// multi-tenant host calls this once right after construction, while
    /// the side network is still pristine, so [`ParallelTuner::reset_to`]
    /// can scrub one tenant's weights before the next tenant attaches.
    pub fn baseline(&self) -> AdapterBaseline {
        AdapterBaseline {
            snap: TrainCheckpoint::capture(self, 0, 0, 0),
        }
    }

    /// Attaches a tenant's personal adapter: restores side-network weights
    /// and Adam moments from `adapter` and clears gradients. The frozen
    /// backbone is untouched — `ParallelTuner`'s [`Module`] impl visits the
    /// side network only, so a swap can never leak into shared state.
    ///
    /// # Errors
    /// Propagates name/shape mismatches from checkpoint restore.
    pub fn swap_in(
        &mut self,
        adapter: &TrainCheckpoint,
    ) -> std::result::Result<(), CheckpointError> {
        adapter.restore(self)?;
        self.zero_grads();
        Ok(())
    }

    /// Detaches the current tenant: resets the side network (weights,
    /// moments, gradients) to the captured `baseline`. Every tenant job
    /// must start from this state — skipping it leaks the previous
    /// tenant's weights into the next tenant's trajectory, which the
    /// serve-layer isolation suite detects bitwise.
    ///
    /// # Errors
    /// Propagates name/shape mismatches from checkpoint restore.
    pub fn reset_to(
        &mut self,
        baseline: &AdapterBaseline,
    ) -> std::result::Result<(), CheckpointError> {
        baseline.snap.restore(self)?;
        self.zero_grads();
        Ok(())
    }
}

/// Pristine side-network state captured by [`ParallelTuner::baseline`],
/// used to scrub tenant state between adapter swaps.
#[derive(Debug, Clone)]
pub struct AdapterBaseline {
    snap: TrainCheckpoint,
}

impl AdapterBaseline {
    /// Serialized size of the baseline snapshot in bytes — also the
    /// resident size of one blank adapter, which the serve-layer cache
    /// uses to size its eviction budget.
    pub fn size_bytes(&self) -> usize {
        self.snap.size_bytes()
    }
}

impl Module for ParallelTuner {
    fn visit_params(&mut self, f: &mut dyn FnMut(&mut Param)) {
        self.side.visit_params(f);
    }
    fn visit_params_ref(&self, f: &mut dyn FnMut(&Param)) {
        self.side.visit_params_ref(f);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pac_nn::{cross_entropy, Adam, Optimizer};
    use pac_tensor::rng::seeded;

    fn tuner(seed: u64) -> ParallelTuner {
        let cfg = ModelConfig::micro(2, 1, 16, 2);
        let model = EncDecModel::new(&cfg, 2, &mut seeded(seed));
        ParallelTuner::new(model, 4, 2, &mut seeded(seed + 1))
    }

    fn toks(seed: u64, b: usize) -> Vec<Vec<usize>> {
        let mut rng = seeded(seed);
        (0..b)
            .map(|_| (0..4).map(|_| rng.gen_range(0..64)).collect())
            .collect()
    }

    #[test]
    fn forward_shapes_and_trainable_set() {
        let t = tuner(150);
        let batch = toks(151, 3);
        let (logits, ctx) = t.forward_full(&batch).unwrap();
        assert_eq!(logits.dims(), &[3, 2]);
        assert_eq!(ctx.layer_outputs.len(), 3);
        // Only the side network trains; backbone contributes nothing.
        assert_eq!(t.num_trainable(), t.side.num_params());
        let backbone_trainable = t.model.num_trainable();
        assert_eq!(backbone_trainable, 0);
    }

    #[test]
    fn backward_never_touches_backbone_grads() {
        let mut t = tuner(152);
        let batch = toks(153, 2);
        let (logits, ctx) = t.forward_full(&batch).unwrap();
        let (_, dl) = cross_entropy(&logits, &[0, 1]).unwrap();
        t.backward(&ctx.side, &dl).unwrap();
        let mut backbone_gnorm = 0.0f32;
        t.model
            .visit_params_ref(&mut |p| backbone_gnorm += p.grad.norm());
        assert_eq!(backbone_gnorm, 0.0, "gradient leaked into the backbone");
        let mut side_gnorm = 0.0f32;
        t.side
            .visit_params_ref(&mut |p| side_gnorm += p.grad.norm());
        assert!(side_gnorm > 0.0, "side network got no gradient");
    }

    #[test]
    fn cached_forward_is_bitwise_identical_to_full() {
        // The core cache-correctness property (paper §4.2): feeding cached
        // b_i reproduces the full forward exactly.
        let t = tuner(154);
        let batch = toks(155, 2);
        let (full_logits, ctx) = t.forward_full(&batch).unwrap();
        let (cached_logits, _) = t.forward_cached(&ctx.layer_outputs).unwrap();
        assert!(full_logits.approx_eq(&cached_logits, 0.0));
    }

    #[test]
    fn side_gradient_matches_finite_difference() {
        let mut t = tuner(156);
        let batch = toks(157, 2);
        let targets = [0usize, 1];
        let (logits, ctx) = t.forward_full(&batch).unwrap();
        let (_, dl) = cross_entropy(&logits, &targets).unwrap();
        t.zero_grads();
        t.backward(&ctx.side, &dl).unwrap();

        // Probe a down-projection weight (layer 1) against finite diff.
        let grad = t.side.down[1].w.grad.clone();
        let eps = 1e-2f32;
        for i in [0usize, 5, 11] {
            let loss_at = |delta: f32| {
                let mut tp = t.clone();
                tp.side.down[1].w.value.data_mut()[i] += delta;
                let (lp, _) = tp.forward_cached(&ctx.layer_outputs).unwrap();
                cross_entropy(&lp, &targets).unwrap().0
            };
            let numeric = (loss_at(eps) - loss_at(-eps)) / (2.0 * eps);
            assert!(
                (numeric - grad.data()[i]).abs() < 2e-2_f32.max(numeric.abs() * 0.1),
                "d(down1)[{i}]: numeric {numeric} vs analytic {}",
                grad.data()[i]
            );
        }
    }

    #[test]
    fn adapter_swap_round_trips_tenant_state_bitwise() {
        let mut t = tuner(170);
        let base = t.baseline();
        let batch = toks(171, 2);
        let (pristine_logits, ctx) = t.forward_full(&batch).unwrap();
        let acts = ctx.layer_outputs;

        // Tenant A trains a few cached steps; capture its adapter.
        let mut opt = Adam::new(5e-2);
        for _ in 0..3 {
            let (logits, sctx) = t.forward_cached(&acts).unwrap();
            let (_, dl) = cross_entropy(&logits, &[0, 1]).unwrap();
            t.zero_grads();
            t.backward(&sctx, &dl).unwrap();
            opt.step(&mut t);
        }
        let adapter_a = TrainCheckpoint::capture(&t, 0, 3, opt.t);
        let (logits_a, _) = t.forward_cached(&acts).unwrap();
        assert!(!logits_a.approx_eq(&pristine_logits, 0.0));

        // Detach: the tuner is bitwise back at the pristine baseline.
        t.reset_to(&base).unwrap();
        let (logits_reset, _) = t.forward_cached(&acts).unwrap();
        assert!(logits_reset.approx_eq(&pristine_logits, 0.0));
        let mut moments = 0usize;
        t.visit_params_ref(&mut |p| moments += usize::from(p.opt_m.is_some()));
        assert_eq!(moments, 0, "reset_to must scrub Adam moments");

        // Re-attach tenant A: identical logits, moments back in place.
        t.swap_in(&adapter_a).unwrap();
        let (logits_back, _) = t.forward_cached(&acts).unwrap();
        assert!(logits_back.approx_eq(&logits_a, 0.0));
        let mut moments = 0usize;
        t.visit_params_ref(&mut |p| moments += usize::from(p.opt_m.is_some()));
        assert!(moments > 0, "swap_in must restore Adam moments");
    }

    #[test]
    fn training_from_cache_reduces_loss() {
        let mut t = tuner(158);
        let batch = toks(159, 4);
        let targets = [0usize, 1, 0, 1];
        // Epoch 1: fill "cache" (here: just capture the acts once).
        let (_, ctx) = t.forward_full(&batch).unwrap();
        let acts = ctx.layer_outputs;
        // Epochs 2+: cached training.
        let mut opt = Adam::new(1e-2);
        let mut first = 0.0;
        let mut last = 0.0;
        for i in 0..25 {
            let (logits, sctx) = t.forward_cached(&acts).unwrap();
            let (loss, dl) = cross_entropy(&logits, &targets).unwrap();
            if i == 0 {
                first = loss;
            }
            last = loss;
            t.zero_grads();
            t.backward(&sctx, &dl).unwrap();
            opt.step(&mut t);
        }
        assert!(last < first * 0.8, "first {first} last {last}");
    }

    #[test]
    fn quantized_backbone_still_trains_and_stays_close() {
        // EDGE-LLM scope check: quantizing the frozen half perturbs the
        // b_i slightly but the side network trains on them all the same,
        // and logits stay close to the f32 reference.
        let mut t = tuner(163);
        let batch = toks(164, 3);
        let (f32_logits, _) = t.forward_full(&batch).unwrap();
        let engaged = t.quantize_backbone();
        assert!(engaged > 0, "no frozen linear engaged");
        let (q8_logits, ctx) = t.forward_full(&batch).unwrap();
        for (a, b) in f32_logits.data().iter().zip(q8_logits.data().iter()) {
            assert!((a - b).abs() < 0.35, "{a} vs {b}");
        }
        // Cached forward from quantized-backbone acts is still exact
        // w.r.t. the quantized full forward (cache purity is unaffected).
        let (cached, _) = t.forward_cached(&ctx.layer_outputs).unwrap();
        assert!(cached.approx_eq(&q8_logits, 0.0));
        // And training from those acts still reduces the loss.
        let targets = [0usize, 1, 0];
        let mut opt = Adam::new(1e-2);
        let mut first = 0.0;
        let mut last = 0.0;
        for i in 0..20 {
            let (logits, sctx) = t.forward_cached(&ctx.layer_outputs).unwrap();
            let (loss, dl) = cross_entropy(&logits, &targets).unwrap();
            if i == 0 {
                first = loss;
            }
            last = loss;
            t.zero_grads();
            t.backward(&sctx, &dl).unwrap();
            opt.step(&mut t);
        }
        assert!(last < first, "first {first} last {last}");
    }

    #[test]
    fn pool_unpool_preserve_gradient_mass() {
        let mut rng = seeded(160);
        let x = init::randn(&mut rng, [2, 3, 4], 1.0);
        let p = pool_seq(&x, 2, 3, 4).unwrap();
        assert_eq!(p.dims(), &[2, 1, 4]);
        let dy = Tensor::ones([2, 4]);
        let dx = unpool_seq(&dy, 2, 3, 4).unwrap();
        assert!((dx.sum() - dy.sum()).abs() < 1e-5);
    }

    #[test]
    fn wrong_act_count_is_error() {
        let t = tuner(161);
        let batch = toks(162, 1);
        let (_, ctx) = t.forward_full(&batch).unwrap();
        let mut acts = ctx.layer_outputs;
        acts.pop();
        assert!(t.forward_cached(&acts).is_err());
    }
}
