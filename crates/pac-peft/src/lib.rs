//! # pac-peft
//!
//! Fine-tuning techniques for personal LLMs, reproducing §4 of the PAC paper:
//!
//! * **Full** fine-tuning — every backbone parameter trains.
//! * **Adapters** (Houlsby et al. 2019) — bottleneck modules inserted at the
//!   end of each transformer layer; parameter-efficient but backprop still
//!   traverses the whole backbone.
//! * **LoRA** (Hu et al. 2021) — trainable low-rank deltas on the attention
//!   Q/V projections; same backprop caveat.
//! * **Parallel Adapters** (the paper's technique, after side-tuning/LST) —
//!   a trainable side network `a_i = f_i(b_i, a_{i-1})` consuming backbone
//!   layer outputs `b_i`. Backprop never enters the backbone, and because
//!   the backbone is frozen the `b_i` are input-invariant — enabling the
//!   **activation cache** ([`cache`]) that skips backbone forward passes
//!   from epoch 2 on.
//!
//! Every technique has (a) a *real trainable implementation* over
//! [`pac_model::EncDecModel`] used in the quality experiments, and (b) an
//! *analytic account* of trainable parameters and memory footprint
//! ([`technique`], [`memory`]) used by the cluster-scale simulations
//! (Tables 1–2, Figures 3/8/9).

#![deny(missing_docs)]

pub mod adapters;
pub mod cache;
pub mod checkpoint;
pub mod full;
pub mod lora;
pub mod memory;
pub mod parallel;
pub mod prompt;
pub mod technique;
pub mod tuner;

pub use adapters::AdapterTuner;
pub use cache::{ActivationCache, CachePrecision, CacheStats};
pub use checkpoint::{
    from_bytes, load_trainable, save_trainable, to_bytes, CheckpointError, TrainCheckpoint,
};
pub use full::FullTuner;
pub use lora::LoraTuner;
pub use memory::{MemoryBreakdown, MemoryModel};
pub use parallel::{AdapterBaseline, ParallelAdapters, ParallelCtx, ParallelTuner, SideCtx};
pub use prompt::{PromptCtx, PromptTuner};
pub use technique::Technique;
pub use tuner::{Tuner, TunerCtx};
