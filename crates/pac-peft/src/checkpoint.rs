//! Checkpointing of trainable (adapter) parameters.
//!
//! PAC's deployment story is "one backbone, many personalizations": the
//! frozen backbone ships once, and each personalization is only the
//! technique's trainable parameters — megabytes, not gigabytes. This module
//! serializes exactly that trainable set in a small self-describing binary
//! format:
//!
//! ```text
//! magic "PACCKPT1" · u32 entry count · entries… · u32 FNV-1a checksum
//! entry: u32 name len · name bytes · u32 rank · u64 dims… · f32 data…
//! ```
//!
//! [`TrainCheckpoint`] extends this for *mid-run* recovery snapshots: it
//! also carries per-parameter optimizer moments and the training cursor, so
//! a session that loses a device can repartition and resume exactly where
//! it stopped:
//!
//! ```text
//! magic "PACCKPT2" · u64 epoch · u64 step · u64 adam_t · u32 entry count · entries…
//!                  · u32 FNV-1a checksum
//! entry: u32 name len · name bytes · u32 rank · u64 dims… ·
//!        u8 moment flags (bit0 = m, bit1 = v) · f32 value… · [f32 m…] · [f32 v…]
//! ```
//!
//! All integers are little-endian. Both formats end in a 32-bit FNV-1a
//! checksum over every preceding byte (the same framing idiom as
//! `pac-net`'s wire protocol): a single flipped byte anywhere in the
//! stream is rejected as [`CheckpointError::Format`] before any state is
//! applied. Loading matches parameters by name and verifies shapes, so a
//! checkpoint from a different architecture fails loudly instead of
//! silently corrupting weights.

use pac_nn::Module;
use pac_tensor::Tensor;
use std::io::{self, Read, Write};

const MAGIC: &[u8; 8] = b"PACCKPT1";
const TRAIN_MAGIC: &[u8; 8] = b"PACCKPT2";

const FNV_BASIS: u32 = 0x811c_9dc5;
const FNV_PRIME: u32 = 0x0100_0193;

fn fnv1a(mut h: u32, bytes: &[u8]) -> u32 {
    for &b in bytes {
        h ^= b as u32;
        h = h.wrapping_mul(FNV_PRIME);
    }
    h
}

/// Writer shim that folds every written byte into a running FNV-1a hash;
/// [`HashWriter::finish`] appends the 4-byte checksum trailer.
struct HashWriter<'a, W: Write> {
    inner: &'a mut W,
    hash: u32,
}

impl<'a, W: Write> HashWriter<'a, W> {
    fn new(inner: &'a mut W) -> Self {
        HashWriter {
            inner,
            hash: FNV_BASIS,
        }
    }

    fn finish(self) -> Result<(), CheckpointError> {
        self.inner.write_all(&self.hash.to_le_bytes())?;
        Ok(())
    }
}

impl<W: Write> Write for HashWriter<'_, W> {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        self.inner.write_all(buf)?;
        self.hash = fnv1a(self.hash, buf);
        Ok(buf.len())
    }

    fn flush(&mut self) -> io::Result<()> {
        self.inner.flush()
    }
}

/// Reader shim mirroring [`HashWriter`]; [`HashReader::verify_trailer`]
/// reads the 4-byte checksum and rejects any stream whose bytes do not
/// hash to it.
struct HashReader<'a, R: Read> {
    inner: &'a mut R,
    hash: u32,
}

impl<'a, R: Read> HashReader<'a, R> {
    fn new(inner: &'a mut R) -> Self {
        HashReader {
            inner,
            hash: FNV_BASIS,
        }
    }

    fn verify_trailer(self) -> Result<(), CheckpointError> {
        let expected = self.hash;
        let mut b = [0u8; 4];
        self.inner.read_exact(&mut b)?;
        let got = u32::from_le_bytes(b);
        if got != expected {
            return Err(CheckpointError::Format(format!(
                "checksum mismatch: stream hashes to {expected:#010x}, trailer says {got:#010x}"
            )));
        }
        Ok(())
    }
}

impl<R: Read> Read for HashReader<'_, R> {
    fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        let n = self.inner.read(buf)?;
        self.hash = fnv1a(self.hash, &buf[..n]);
        Ok(n)
    }
}

/// Number of elements `dims` describes, rejecting products that overflow
/// `usize` or exceed the plausibility bound — a flipped byte in a dim must
/// never panic the decoder or drive a giant allocation.
fn checked_numel(dims: &[usize]) -> Result<usize, CheckpointError> {
    let numel = dims
        .iter()
        .try_fold(1usize, |acc, &d| acc.checked_mul(d))
        .ok_or_else(|| CheckpointError::Format("tensor dimension product overflows".into()))?;
    if numel > 1 << 30 {
        return Err(CheckpointError::Format(format!(
            "implausible tensor size {numel}"
        )));
    }
    Ok(numel)
}

/// Preallocation cap for length-prefixed vectors: corrupt lengths within
/// the plausibility bound must not transiently allocate gigabytes before
/// the stream runs dry.
const PREALLOC_CAP: usize = 1 << 16;

/// Errors produced by checkpoint (de)serialization.
#[derive(Debug)]
pub enum CheckpointError {
    /// Underlying I/O failure.
    Io(io::Error),
    /// The byte stream is not a PAC checkpoint (bad magic or truncation).
    Format(String),
    /// The checkpoint does not match the module (missing/extra/mis-shaped
    /// parameters).
    Mismatch(String),
}

impl std::fmt::Display for CheckpointError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CheckpointError::Io(e) => write!(f, "checkpoint I/O error: {e}"),
            CheckpointError::Format(m) => write!(f, "malformed checkpoint: {m}"),
            CheckpointError::Mismatch(m) => write!(f, "checkpoint mismatch: {m}"),
        }
    }
}

impl std::error::Error for CheckpointError {}

impl From<io::Error> for CheckpointError {
    fn from(e: io::Error) -> Self {
        CheckpointError::Io(e)
    }
}

/// Serializes every *trainable* parameter of `module` into `w`.
///
/// # Errors
/// Returns I/O errors from the writer.
pub fn save_trainable<M: Module>(module: &M, w: &mut impl Write) -> Result<(), CheckpointError> {
    let mut entries: Vec<(String, Tensor)> = Vec::new();
    module.visit_params_ref(&mut |p| {
        if p.trainable {
            entries.push((p.name.clone(), p.value.clone()));
        }
    });
    let mut hw = HashWriter::new(w);
    hw.write_all(MAGIC)?;
    hw.write_all(&(entries.len() as u32).to_le_bytes())?;
    for (name, value) in &entries {
        hw.write_all(&(name.len() as u32).to_le_bytes())?;
        hw.write_all(name.as_bytes())?;
        hw.write_all(&(value.rank() as u32).to_le_bytes())?;
        for &d in value.dims() {
            hw.write_all(&(d as u64).to_le_bytes())?;
        }
        for &v in value.data() {
            hw.write_all(&v.to_le_bytes())?;
        }
    }
    hw.finish()
}

/// Deserializes a checkpoint previously written by [`save_trainable`] into
/// `module`'s trainable parameters (matched by name).
///
/// # Errors
/// Fails on malformed streams, unknown parameter names, shape mismatches,
/// or trainable parameters missing from the checkpoint.
pub fn load_trainable<M: Module>(module: &mut M, r: &mut impl Read) -> Result<(), CheckpointError> {
    let mut hr = HashReader::new(r);
    let mut magic = [0u8; 8];
    hr.read_exact(&mut magic)?;
    if &magic != MAGIC {
        return Err(CheckpointError::Format("bad magic".into()));
    }
    let count = read_u32(&mut hr)? as usize;
    let mut loaded: std::collections::HashMap<String, Tensor> = std::collections::HashMap::new();
    for _ in 0..count {
        let name_len = read_u32(&mut hr)? as usize;
        if name_len > 4096 {
            return Err(CheckpointError::Format(format!(
                "implausible name length {name_len}"
            )));
        }
        let mut name_bytes = vec![0u8; name_len];
        hr.read_exact(&mut name_bytes)?;
        let name = String::from_utf8(name_bytes)
            .map_err(|_| CheckpointError::Format("non-UTF-8 parameter name".into()))?;
        let rank = read_u32(&mut hr)? as usize;
        if rank > 8 {
            return Err(CheckpointError::Format(format!("implausible rank {rank}")));
        }
        let mut dims = Vec::with_capacity(rank);
        for _ in 0..rank {
            dims.push(read_u64(&mut hr)? as usize);
        }
        let numel = checked_numel(&dims)?;
        let mut data = Vec::with_capacity(numel.min(PREALLOC_CAP));
        let mut buf = [0u8; 4];
        for _ in 0..numel {
            hr.read_exact(&mut buf)?;
            data.push(f32::from_le_bytes(buf));
        }
        let t = Tensor::from_vec(data, dims)
            .map_err(|e| CheckpointError::Format(format!("tensor rebuild failed: {e}")))?;
        loaded.insert(name, t);
    }
    // Reject any damaged stream *before* touching the module.
    hr.verify_trailer()?;

    // Apply, verifying full coverage both ways.
    let mut error: Option<CheckpointError> = None;
    let mut applied = 0usize;
    module.visit_params(&mut |p| {
        if !p.trainable || error.is_some() {
            return;
        }
        match loaded.get(&p.name) {
            Some(t) if t.dims() == p.value.dims() => {
                p.value = t.clone();
                applied += 1;
            }
            Some(t) => {
                error = Some(CheckpointError::Mismatch(format!(
                    "{}: shape {:?} vs checkpoint {:?}",
                    p.name,
                    p.value.dims(),
                    t.dims()
                )));
            }
            None => {
                error = Some(CheckpointError::Mismatch(format!(
                    "trainable parameter {} absent from checkpoint",
                    p.name
                )));
            }
        }
    });
    if let Some(e) = error {
        return Err(e);
    }
    if applied != loaded.len() {
        return Err(CheckpointError::Mismatch(format!(
            "checkpoint has {} entries but module consumed {applied}",
            loaded.len()
        )));
    }
    Ok(())
}

/// Serializes to an in-memory buffer.
///
/// # Errors
/// Propagates [`save_trainable`] errors (none for in-memory writers).
pub fn to_bytes<M: Module>(module: &M) -> Result<Vec<u8>, CheckpointError> {
    let mut out = Vec::new();
    save_trainable(module, &mut out)?;
    Ok(out)
}

/// Deserializes from an in-memory buffer.
///
/// # Errors
/// Propagates [`load_trainable`] errors.
pub fn from_bytes<M: Module>(module: &mut M, bytes: &[u8]) -> Result<(), CheckpointError> {
    load_trainable(module, &mut &bytes[..])
}

/// One trainable parameter's full training state inside a
/// [`TrainCheckpoint`].
#[derive(Debug, Clone)]
struct TrainEntry {
    name: String,
    value: Tensor,
    opt_m: Option<Tensor>,
    opt_v: Option<Tensor>,
}

/// A lightweight mid-run recovery snapshot: trainable (adapter) parameter
/// values, their optimizer moments, and the training cursor (epoch, step,
/// Adam's bias-correction counter). Snapshotted every N steps by the
/// session's recovery loop; on permanent device loss the session replans,
/// restores this into the survivors' replicas, and replays from the
/// cursor.
#[derive(Debug, Clone)]
pub struct TrainCheckpoint {
    /// Epoch the snapshot was taken in.
    pub epoch: u64,
    /// Global mini-batch step the snapshot was taken after.
    pub step: u64,
    /// Adam's `t` (bias-correction) counter at the snapshot.
    pub adam_t: u64,
    entries: Vec<TrainEntry>,
}

impl TrainCheckpoint {
    /// Captures every trainable parameter (value + optimizer moments) of
    /// `module` together with the training cursor.
    pub fn capture<M: Module>(module: &M, epoch: u64, step: u64, adam_t: u64) -> Self {
        let mut entries = Vec::new();
        module.visit_params_ref(&mut |p| {
            if p.trainable {
                entries.push(TrainEntry {
                    name: p.name.clone(),
                    value: p.value.clone(),
                    opt_m: p.opt_m.clone(),
                    opt_v: p.opt_v.clone(),
                });
            }
        });
        TrainCheckpoint {
            epoch,
            step,
            adam_t,
            entries,
        }
    }

    /// Number of parameter entries captured.
    pub fn num_entries(&self) -> usize {
        self.entries.len()
    }

    /// Serialized size in bytes (what `checkpoint.bytes` telemetry
    /// reports) without materializing the buffer.
    pub fn size_bytes(&self) -> usize {
        // Magic + cursor + count header, plus the 4-byte checksum trailer.
        let mut n = 8 + 8 + 8 + 8 + 4 + 4;
        for e in &self.entries {
            n += 4 + e.name.len() + 4 + 8 * e.value.rank() + 1;
            let numel = e.value.data().len();
            n += 4 * numel;
            n += e.opt_m.as_ref().map_or(0, |_| 4 * numel);
            n += e.opt_v.as_ref().map_or(0, |_| 4 * numel);
        }
        n
    }

    /// Writes values and moments back into `module`'s trainable parameters
    /// (matched by name), restoring the exact optimizer trajectory.
    ///
    /// # Errors
    /// Fails on unknown names, shape mismatches, or trainable parameters
    /// missing from the snapshot — the module must be the same
    /// architecture the snapshot came from.
    pub fn restore<M: Module>(&self, module: &mut M) -> Result<(), CheckpointError> {
        let by_name: std::collections::HashMap<&str, &TrainEntry> =
            self.entries.iter().map(|e| (e.name.as_str(), e)).collect();
        let mut error: Option<CheckpointError> = None;
        let mut applied = 0usize;
        module.visit_params(&mut |p| {
            if !p.trainable || error.is_some() {
                return;
            }
            match by_name.get(p.name.as_str()) {
                Some(e) if e.value.dims() == p.value.dims() => {
                    p.value = e.value.clone();
                    p.opt_m = e.opt_m.clone();
                    p.opt_v = e.opt_v.clone();
                    applied += 1;
                }
                Some(e) => {
                    error = Some(CheckpointError::Mismatch(format!(
                        "{}: shape {:?} vs snapshot {:?}",
                        p.name,
                        p.value.dims(),
                        e.value.dims()
                    )));
                }
                None => {
                    error = Some(CheckpointError::Mismatch(format!(
                        "trainable parameter {} absent from snapshot",
                        p.name
                    )));
                }
            }
        });
        if let Some(e) = error {
            return Err(e);
        }
        if applied != self.entries.len() {
            return Err(CheckpointError::Mismatch(format!(
                "snapshot has {} entries but module consumed {applied}",
                self.entries.len()
            )));
        }
        Ok(())
    }

    /// Serializes the snapshot (format in the module docs).
    ///
    /// # Errors
    /// Returns I/O errors from the writer.
    pub fn write(&self, w: &mut impl Write) -> Result<(), CheckpointError> {
        let mut hw = HashWriter::new(w);
        hw.write_all(TRAIN_MAGIC)?;
        hw.write_all(&self.epoch.to_le_bytes())?;
        hw.write_all(&self.step.to_le_bytes())?;
        hw.write_all(&self.adam_t.to_le_bytes())?;
        hw.write_all(&(self.entries.len() as u32).to_le_bytes())?;
        for e in &self.entries {
            hw.write_all(&(e.name.len() as u32).to_le_bytes())?;
            hw.write_all(e.name.as_bytes())?;
            hw.write_all(&(e.value.rank() as u32).to_le_bytes())?;
            for &d in e.value.dims() {
                hw.write_all(&(d as u64).to_le_bytes())?;
            }
            let flags = u8::from(e.opt_m.is_some()) | (u8::from(e.opt_v.is_some()) << 1);
            hw.write_all(&[flags])?;
            for &v in e.value.data() {
                hw.write_all(&v.to_le_bytes())?;
            }
            for t in [&e.opt_m, &e.opt_v].into_iter().flatten() {
                for &v in t.data() {
                    hw.write_all(&v.to_le_bytes())?;
                }
            }
        }
        hw.finish()
    }

    /// Serializes to an in-memory buffer.
    ///
    /// # Errors
    /// Propagates [`TrainCheckpoint::write`] errors (none for in-memory
    /// writers).
    pub fn to_bytes(&self) -> Result<Vec<u8>, CheckpointError> {
        let mut out = Vec::with_capacity(self.size_bytes());
        self.write(&mut out)?;
        Ok(out)
    }

    /// Deserializes a snapshot written by [`TrainCheckpoint::write`].
    ///
    /// # Errors
    /// Fails on bad magic, truncation, or implausible dimensions.
    pub fn read(r: &mut impl Read) -> Result<Self, CheckpointError> {
        let mut hr = HashReader::new(r);
        let mut magic = [0u8; 8];
        hr.read_exact(&mut magic)?;
        if &magic != TRAIN_MAGIC {
            return Err(CheckpointError::Format("bad magic".into()));
        }
        let epoch = read_u64(&mut hr)?;
        let step = read_u64(&mut hr)?;
        let adam_t = read_u64(&mut hr)?;
        let count = read_u32(&mut hr)? as usize;
        let mut entries = Vec::with_capacity(count.min(4096));
        for _ in 0..count {
            let name_len = read_u32(&mut hr)? as usize;
            if name_len > 4096 {
                return Err(CheckpointError::Format(format!(
                    "implausible name length {name_len}"
                )));
            }
            let mut name_bytes = vec![0u8; name_len];
            hr.read_exact(&mut name_bytes)?;
            let name = String::from_utf8(name_bytes)
                .map_err(|_| CheckpointError::Format("non-UTF-8 parameter name".into()))?;
            let rank = read_u32(&mut hr)? as usize;
            if rank > 8 {
                return Err(CheckpointError::Format(format!("implausible rank {rank}")));
            }
            let mut dims = Vec::with_capacity(rank);
            for _ in 0..rank {
                dims.push(read_u64(&mut hr)? as usize);
            }
            let numel = checked_numel(&dims)?;
            let mut flags = [0u8; 1];
            hr.read_exact(&mut flags)?;
            let read_tensor = |r: &mut dyn Read| -> Result<Tensor, CheckpointError> {
                let mut data = Vec::with_capacity(numel.min(PREALLOC_CAP));
                let mut buf = [0u8; 4];
                for _ in 0..numel {
                    r.read_exact(&mut buf)?;
                    data.push(f32::from_le_bytes(buf));
                }
                Tensor::from_vec(data, dims.clone())
                    .map_err(|e| CheckpointError::Format(format!("tensor rebuild failed: {e}")))
            };
            let value = read_tensor(&mut hr)?;
            let opt_m = if flags[0] & 1 != 0 {
                Some(read_tensor(&mut hr)?)
            } else {
                None
            };
            let opt_v = if flags[0] & 2 != 0 {
                Some(read_tensor(&mut hr)?)
            } else {
                None
            };
            entries.push(TrainEntry {
                name,
                value,
                opt_m,
                opt_v,
            });
        }
        // A snapshot that hashes wrong is corrupt, no matter how plausibly
        // it parsed.
        hr.verify_trailer()?;
        Ok(TrainCheckpoint {
            epoch,
            step,
            adam_t,
            entries,
        })
    }

    /// Deserializes from an in-memory buffer.
    ///
    /// # Errors
    /// Propagates [`TrainCheckpoint::read`] errors.
    pub fn from_bytes(bytes: &[u8]) -> Result<Self, CheckpointError> {
        TrainCheckpoint::read(&mut &bytes[..])
    }
}

fn read_u32(r: &mut impl Read) -> Result<u32, CheckpointError> {
    let mut b = [0u8; 4];
    r.read_exact(&mut b)?;
    Ok(u32::from_le_bytes(b))
}

fn read_u64(r: &mut impl Read) -> Result<u64, CheckpointError> {
    let mut b = [0u8; 8];
    r.read_exact(&mut b)?;
    Ok(u64::from_le_bytes(b))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Technique, Tuner};
    use pac_model::ModelConfig;
    use pac_nn::cross_entropy;
    use pac_tensor::rng::seeded;
    use rand::Rng;

    fn toks(seed: u64, b: usize) -> Vec<Vec<usize>> {
        let mut rng = seeded(seed);
        (0..b)
            .map(|_| (0..4).map(|_| rng.gen_range(0..64)).collect())
            .collect()
    }

    #[test]
    fn round_trip_restores_exact_function() {
        let cfg = ModelConfig::micro(2, 1, 16, 2);
        for technique in Technique::all_extended() {
            let mut donor = Tuner::new(technique, &cfg, 2, &mut seeded(700));
            // Nudge the donor's trainable weights so the checkpoint is
            // distinguishable from init.
            donor.visit_params(&mut |p| {
                if p.trainable {
                    p.value.map_in_place(|v| v + 0.01);
                }
            });
            let bytes = to_bytes(&donor).unwrap();
            // PEFT checkpoints are tiny relative to the model; a Full
            // checkpoint is the whole model plus per-tensor name overhead.
            let bound = if matches!(technique, Technique::Full) {
                donor.total_params() * 4 + 64 * 1024
            } else {
                donor.total_params() * 4 / 2
            };
            assert!(
                bytes.len() < bound,
                "{}: checkpoint {} B (bound {bound})",
                technique.name(),
                bytes.len()
            );

            let mut recipient = Tuner::new(technique, &cfg, 2, &mut seeded(700));
            from_bytes(&mut recipient, &bytes).unwrap();

            let batch = toks(701, 2);
            let (a, _) = donor.forward(&batch).unwrap();
            let (b, _) = recipient.forward(&batch).unwrap();
            assert!(
                a.approx_eq(&b, 0.0),
                "{}: restored model diverges",
                technique.name()
            );
        }
    }

    #[test]
    fn adapter_checkpoints_are_megabyte_scale_not_gigabyte() {
        // The deployment claim: a Parallel-Adapters personalization of a
        // micro model is ≪ the backbone.
        let cfg = ModelConfig::micro(2, 2, 32, 4);
        let tuner = Tuner::new(Technique::parallel_default(), &cfg, 2, &mut seeded(702));
        let bytes = to_bytes(&tuner).unwrap();
        let backbone_bytes = tuner.total_params() * 4;
        assert!(bytes.len() * 5 < backbone_bytes);
    }

    #[test]
    fn corrupted_streams_are_rejected() {
        let cfg = ModelConfig::micro(1, 1, 16, 2);
        let tuner = Tuner::new(Technique::parallel_default(), &cfg, 2, &mut seeded(703));
        let bytes = to_bytes(&tuner).unwrap();

        let mut t = tuner.clone();
        // Bad magic.
        let mut bad = bytes.clone();
        bad[0] ^= 0xFF;
        assert!(matches!(
            from_bytes(&mut t, &bad),
            Err(CheckpointError::Format(_))
        ));
        // Truncation.
        assert!(from_bytes(&mut t, &bytes[..bytes.len() / 2]).is_err());
        // Empty.
        assert!(from_bytes(&mut t, &[]).is_err());
    }

    #[test]
    fn cross_architecture_load_fails_loudly() {
        let small = ModelConfig::micro(1, 1, 16, 2);
        let big = ModelConfig::micro(1, 1, 32, 2);
        let donor = Tuner::new(Technique::parallel_default(), &small, 2, &mut seeded(704));
        let bytes = to_bytes(&donor).unwrap();
        let mut recipient = Tuner::new(Technique::parallel_default(), &big, 2, &mut seeded(705));
        assert!(matches!(
            from_bytes(&mut recipient, &bytes),
            Err(CheckpointError::Mismatch(_))
        ));
    }

    #[test]
    fn checkpoint_survives_training_and_reload() {
        // Train → save → fresh tuner → load → identical predictions.
        let cfg = ModelConfig::micro(1, 1, 16, 2);
        let mut t = Tuner::new(Technique::parallel_default(), &cfg, 2, &mut seeded(706));
        let batch = toks(707, 4);
        let targets = [0usize, 1, 0, 1];
        let mut opt = pac_nn::Adam::new(1e-2);
        use pac_nn::Optimizer;
        for _ in 0..5 {
            let (logits, ctx) = t.forward(&batch).unwrap();
            let (_, dl) = cross_entropy(&logits, &targets).unwrap();
            t.zero_grads();
            t.backward(&ctx, &dl).unwrap();
            opt.step(&mut t);
        }
        let bytes = to_bytes(&t).unwrap();
        let mut fresh = Tuner::new(Technique::parallel_default(), &cfg, 2, &mut seeded(706));
        from_bytes(&mut fresh, &bytes).unwrap();
        let (a, _) = t.forward(&batch).unwrap();
        let (b, _) = fresh.forward(&batch).unwrap();
        assert!(a.approx_eq(&b, 0.0));
    }

    fn adam_step(t: &mut Tuner, opt: &mut pac_nn::Adam, batch: &[Vec<usize>], y: &[usize]) {
        use pac_nn::Optimizer;
        let (logits, ctx) = t.forward(batch).unwrap();
        let (_, dl) = cross_entropy(&logits, y).unwrap();
        t.zero_grads();
        t.backward(&ctx, &dl).unwrap();
        opt.step(t);
    }

    #[test]
    fn train_checkpoint_resume_is_bitwise_identical() {
        // Train 3 Adam steps, snapshot, train 2 more → A. Restore the
        // snapshot into a *fresh* tuner + fresh Adam seeded with the saved
        // `t`, replay the same 2 steps → B. Exact match: the snapshot
        // carries the full optimizer trajectory, not just weights.
        let cfg = ModelConfig::micro(1, 1, 16, 2);
        let mut t = Tuner::new(Technique::parallel_default(), &cfg, 2, &mut seeded(720));
        let batch = toks(721, 4);
        let targets = [0usize, 1, 0, 1];
        let mut opt = pac_nn::Adam::new(1e-2);
        for _ in 0..3 {
            adam_step(&mut t, &mut opt, &batch, &targets);
        }
        let snap = TrainCheckpoint::capture(&t, 0, 3, opt.t);
        let bytes = snap.to_bytes().unwrap();
        assert_eq!(bytes.len(), snap.size_bytes());
        for _ in 0..2 {
            adam_step(&mut t, &mut opt, &batch, &targets);
        }
        let (a, _) = t.forward(&batch).unwrap();

        let restored = TrainCheckpoint::from_bytes(&bytes).unwrap();
        assert_eq!((restored.epoch, restored.step, restored.adam_t), (0, 3, 3));
        // Same backbone seed: the snapshot carries only the trainable
        // (adapter) state, the frozen backbone ships separately.
        let mut fresh = Tuner::new(Technique::parallel_default(), &cfg, 2, &mut seeded(720));
        restored.restore(&mut fresh).unwrap();
        let mut opt2 = pac_nn::Adam::new(1e-2);
        opt2.t = restored.adam_t;
        for _ in 0..2 {
            adam_step(&mut fresh, &mut opt2, &batch, &targets);
        }
        let (b, _) = fresh.forward(&batch).unwrap();
        assert!(a.approx_eq(&b, 0.0), "resumed run diverged from original");
    }

    #[test]
    fn train_checkpoint_rejects_corruption_and_mismatch() {
        let cfg = ModelConfig::micro(1, 1, 16, 2);
        let t = Tuner::new(Technique::parallel_default(), &cfg, 2, &mut seeded(722));
        let snap = TrainCheckpoint::capture(&t, 1, 7, 7);
        let bytes = snap.to_bytes().unwrap();

        // PACCKPT1 bytes are not a train checkpoint (and vice versa).
        assert!(matches!(
            TrainCheckpoint::from_bytes(&to_bytes(&t).unwrap()),
            Err(CheckpointError::Format(_))
        ));
        // Truncation.
        assert!(TrainCheckpoint::from_bytes(&bytes[..bytes.len() / 2]).is_err());
        // Restoring into a different architecture fails loudly.
        let big = ModelConfig::micro(1, 1, 32, 2);
        let mut other = Tuner::new(Technique::parallel_default(), &big, 2, &mut seeded(723));
        assert!(matches!(
            snap.restore(&mut other),
            Err(CheckpointError::Mismatch(_))
        ));
    }

    #[test]
    fn train_checkpoint_preserves_missing_moments() {
        // A snapshot taken before any optimizer step has no moments; the
        // flags byte must round-trip that faithfully.
        let cfg = ModelConfig::micro(1, 1, 16, 2);
        let t = Tuner::new(Technique::parallel_default(), &cfg, 2, &mut seeded(724));
        let snap = TrainCheckpoint::capture(&t, 0, 0, 0);
        let round = TrainCheckpoint::from_bytes(&snap.to_bytes().unwrap()).unwrap();
        assert_eq!(round.num_entries(), snap.num_entries());
        let mut fresh = Tuner::new(Technique::parallel_default(), &cfg, 2, &mut seeded(725));
        round.restore(&mut fresh).unwrap();
        let mut any_moment = false;
        fresh.visit_params_ref(&mut |p| {
            any_moment |= p.opt_m.is_some() || p.opt_v.is_some();
        });
        assert!(!any_moment, "phantom moments materialized");
    }
}
