//! LoRA: low-rank adaptation of attention projections (paper Figure 2,
//! right).
//!
//! Every attention block's Q and V projections receive a trainable low-rank
//! delta: `W_eff = W₀ + A·B · s` with `A ∈ R^{d×r}` (random init) and
//! `B ∈ R^{r×d}` (zero init, so training starts from the pretrained
//! function).
//!
//! ### Implementation note
//! We train LoRA by *merging*: before each forward pass `W_eff` is
//! materialized into the backbone weight, the ordinary backward pass
//! produces `dW`, and the chain rule projects it onto the factors
//! (`dA = dW·Bᵀ·s`, `dB = Aᵀ·dW·s`). This is mathematically identical to
//! the factored formulation; the memory characteristics of real LoRA are
//! accounted analytically in [`crate::memory`].

use pac_model::{EncDecCtx, EncDecModel};
use pac_nn::{Linear, Module, Param};
use pac_tensor::{init, ops, scratch, Result, Tensor};
use rand::Rng;

/// Which attention block a LoRA pair targets.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AttnSite {
    /// Encoder layer `i` self-attention.
    EncSelf(usize),
    /// Decoder layer `i` self-attention.
    DecSelf(usize),
    /// Decoder layer `i` cross-attention.
    DecCross(usize),
}

/// Which projection within the attention block.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Proj {
    /// Query projection.
    Q,
    /// Value projection.
    V,
}

/// One low-rank factor pair attached to a projection.
#[derive(Debug, Clone)]
pub struct LoraPair {
    /// Target attention block.
    pub site: AttnSite,
    /// Target projection.
    pub proj: Proj,
    /// Frozen pretrained weight `W₀`.
    pub w0: Tensor,
    /// Factor `A [d, r]`.
    pub a: Param,
    /// Factor `B [r, d]`.
    pub b: Param,
    /// Scale `s = α / r` (we use α = r, i.e. s = 1).
    pub scale: f32,
}

fn target_mut(model: &mut EncDecModel, site: AttnSite, proj: Proj) -> &mut Linear {
    let attn = match site {
        AttnSite::EncSelf(i) => &mut model.encoder[i].self_attn,
        AttnSite::DecSelf(i) => &mut model.decoder[i].self_attn,
        AttnSite::DecCross(i) => {
            &mut model.decoder[i]
                .cross_attn
                .as_mut()
                .expect("decoder layer has cross attention")
                .1
        }
    };
    match proj {
        Proj::Q => &mut attn.wq,
        Proj::V => &mut attn.wv,
    }
}

/// LoRA fine-tuning over a frozen backbone.
#[derive(Debug, Clone)]
pub struct LoraTuner {
    /// Backbone; frozen except the task head and the (gradient-carrier)
    /// target projections, which are excluded from optimization.
    pub model: EncDecModel,
    /// The low-rank pairs.
    pub pairs: Vec<LoraPair>,
}

impl LoraTuner {
    /// Attaches rank-`r` LoRA pairs to Q and V of every attention block.
    pub fn new(mut model: EncDecModel, rank: usize, rng: &mut impl Rng) -> Self {
        model.freeze_backbone();
        let d = model.config.hidden;
        let mut sites = Vec::new();
        for i in 0..model.encoder.len() {
            sites.push(AttnSite::EncSelf(i));
        }
        for i in 0..model.decoder.len() {
            sites.push(AttnSite::DecSelf(i));
            sites.push(AttnSite::DecCross(i));
        }
        let mut pairs = Vec::new();
        for site in sites {
            for proj in [Proj::Q, Proj::V] {
                let lin = target_mut(&mut model, site, proj);
                // The target weight carries gradients during backward but is
                // never optimized directly (see module docs).
                lin.w.trainable = true;
                let w0 = lin.w.value.clone();
                let a = Param::new(
                    format!("lora.{site:?}.{proj:?}.a"),
                    init::randn(rng, [d, rank], (1.0 / rank as f32).sqrt()),
                );
                let b = Param::new(
                    format!("lora.{site:?}.{proj:?}.b"),
                    Tensor::zeros([rank, d]),
                );
                pairs.push(LoraPair {
                    site,
                    proj,
                    w0,
                    a,
                    b,
                    scale: 1.0,
                });
            }
        }
        LoraTuner { model, pairs }
    }

    /// Re-materializes `W_eff = W₀ + A·B·s` into every target projection.
    ///
    /// # Errors
    /// Propagates matmul shape errors (cannot occur for well-formed pairs).
    pub fn merge(&mut self) -> Result<()> {
        let mut delta = scratch::take_for(0);
        for pair in &self.pairs {
            ops::matmul_into(&pair.a.value, &pair.b.value, &mut delta)?;
            let mut w_eff = scratch::take_for(pair.w0.numel());
            w_eff.reset_to(pair.w0.dims());
            w_eff.data_mut().copy_from_slice(pair.w0.data());
            let s = pair.scale;
            for (o, d) in w_eff.data_mut().iter_mut().zip(delta.data()) {
                *o += d * s;
            }
            let lin = target_mut(&mut self.model, pair.site, pair.proj);
            let old = std::mem::replace(&mut lin.w.value, w_eff);
            scratch::put(old);
        }
        scratch::put(delta);
        Ok(())
    }

    /// Forward pass (merges first).
    ///
    /// # Errors
    /// Propagates model shape errors.
    pub fn forward(&mut self, tokens: &[Vec<usize>]) -> Result<(Tensor, EncDecCtx)> {
        self.merge()?;
        self.model.forward(tokens)
    }

    /// Backward pass: runs the model backward, then projects each target's
    /// `dW` onto the low-rank factors and clears the carrier gradient.
    ///
    /// # Errors
    /// Propagates model shape errors.
    pub fn backward(&mut self, ctx: &EncDecCtx, dlogits: &Tensor) -> Result<()> {
        self.model.backward(ctx, dlogits)?;
        for pi in 0..self.pairs.len() {
            let (site, proj, scale) = {
                let p = &self.pairs[pi];
                (p.site, p.proj, p.scale)
            };
            let dw = {
                let lin = target_mut(&mut self.model, site, proj);
                let dw = lin.w.grad.clone();
                lin.w.zero_grad();
                dw
            };
            let pair = &mut self.pairs[pi];
            // dA = dW·Bᵀ·s ; dB = Aᵀ·dW·s
            let mut da = scratch::take_for(pair.a.value.numel());
            ops::matmul_nt_into(&dw, &pair.b.value, &mut da)?;
            da.scale_in_place(scale);
            pair.a.accumulate_grad(&da);
            scratch::put(da);
            let mut db = scratch::take_for(pair.b.value.numel());
            ops::matmul_tn_into(&pair.a.value, &dw, &mut db)?;
            db.scale_in_place(scale);
            pair.b.accumulate_grad(&db);
            scratch::put(db);
            scratch::put(dw);
        }
        Ok(())
    }
}

impl Module for LoraTuner {
    /// Exposes only the optimizable parameters: LoRA factors and the task
    /// head. The backbone (including the gradient-carrier projections) is
    /// invisible to optimizers.
    fn visit_params(&mut self, f: &mut dyn FnMut(&mut Param)) {
        for p in &mut self.pairs {
            f(&mut p.a);
            f(&mut p.b);
        }
        self.model.head.visit_params(f);
    }
    fn visit_params_ref(&self, f: &mut dyn FnMut(&Param)) {
        for p in &self.pairs {
            f(&p.a);
            f(&p.b);
        }
        self.model.head.visit_params_ref(f);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pac_model::ModelConfig;
    use pac_nn::{cross_entropy, Adam, Optimizer};
    use pac_tensor::rng::seeded;

    fn tuner(seed: u64) -> LoraTuner {
        let cfg = ModelConfig::micro(2, 1, 16, 2);
        let model = EncDecModel::new(&cfg, 2, &mut seeded(seed));
        LoraTuner::new(model, 2, &mut seeded(seed + 1))
    }

    fn toks(seed: u64, b: usize) -> Vec<Vec<usize>> {
        let mut rng = seeded(seed);
        (0..b)
            .map(|_| (0..4).map(|_| rng.gen_range(0..64)).collect())
            .collect()
    }

    #[test]
    fn pair_count_covers_all_attention_blocks() {
        let t = tuner(140);
        // 2 encoder (1 attn) + 1 decoder (2 attn) = 4 blocks × {Q, V}.
        assert_eq!(t.pairs.len(), 8);
    }

    #[test]
    fn zero_b_means_pretrained_function() {
        let cfg = ModelConfig::micro(2, 1, 16, 2);
        let model = EncDecModel::new(&cfg, 2, &mut seeded(141));
        let batch = toks(142, 2);
        let (ref_logits, _) = model.forward(&batch).unwrap();
        let mut t = LoraTuner::new(model, 2, &mut seeded(143));
        let (logits, _) = t.forward(&batch).unwrap();
        assert!(
            logits.approx_eq(&ref_logits, 1e-5),
            "B=0 must reproduce the pretrained model exactly"
        );
    }

    #[test]
    fn factor_gradients_match_finite_difference() {
        let mut t = tuner(144);
        let batch = toks(145, 2);
        let targets = [0usize, 1];

        let (logits, ctx) = t.forward(&batch).unwrap();
        let (_, dl) = cross_entropy(&logits, &targets).unwrap();
        t.zero_grads();
        t.backward(&ctx, &dl).unwrap();

        // Check the A factor of the first pair against finite differences.
        let a_val = t.pairs[0].a.value.clone();
        let a_grad = t.pairs[0].a.grad.clone();
        let eps = 1e-2f32;
        // Probe a handful of coordinates (full sweep is expensive).
        for i in [0usize, 3, 7, 13] {
            let mut tp = t.clone();
            tp.pairs[0].a.value = {
                let mut v = a_val.clone();
                v.data_mut()[i] += eps;
                v
            };
            let (lp, _) = tp.forward(&batch).unwrap();
            let (loss_p, _) = cross_entropy(&lp, &targets).unwrap();

            let mut tm = t.clone();
            tm.pairs[0].a.value = {
                let mut v = a_val.clone();
                v.data_mut()[i] -= eps;
                v
            };
            let (lm, _) = tm.forward(&batch).unwrap();
            let (loss_m, _) = cross_entropy(&lm, &targets).unwrap();

            let numeric = (loss_p - loss_m) / (2.0 * eps);
            assert!(
                (numeric - a_grad.data()[i]).abs() < 2e-2_f32.max(numeric.abs() * 0.1),
                "dA[{i}]: numeric {numeric} vs analytic {}",
                a_grad.data()[i]
            );
        }
    }

    #[test]
    fn training_reduces_loss_and_w0_is_preserved() {
        let mut t = tuner(146);
        let w0_snapshot = t.pairs[0].w0.clone();
        let batch = toks(147, 4);
        let targets = [0usize, 1, 0, 1];
        let mut opt = Adam::new(1e-2);
        let mut first = 0.0;
        let mut last = 0.0;
        for i in 0..20 {
            let (logits, ctx) = t.forward(&batch).unwrap();
            let (loss, dl) = cross_entropy(&logits, &targets).unwrap();
            if i == 0 {
                first = loss;
            }
            last = loss;
            t.zero_grads();
            t.backward(&ctx, &dl).unwrap();
            opt.step(&mut t);
        }
        assert!(last < first, "first {first} last {last}");
        assert_eq!(t.pairs[0].w0, w0_snapshot, "pretrained weight moved");
        // B must have moved away from zero for LoRA to have done anything.
        assert!(t.pairs.iter().any(|p| p.b.value.norm() > 0.0));
    }

    #[test]
    fn optimizer_never_sees_backbone_params() {
        let mut t = tuner(148);
        let mut names = Vec::new();
        t.visit_params(&mut |p| names.push(p.name.clone()));
        assert!(names
            .iter()
            .all(|n| n.starts_with("lora") || n.starts_with("head")));
    }
}
