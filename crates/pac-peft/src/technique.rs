//! Fine-tuning technique descriptors and analytic parameter accounting.

use pac_model::ModelConfig;
use serde::{Deserialize, Serialize};

/// A fine-tuning technique, with its structural hyperparameters.
///
/// ```
/// use pac_peft::Technique;
/// use pac_model::ModelConfig;
///
/// let cfg = ModelConfig::t5_large();
/// let pa = Technique::parallel_default();
/// assert!(pa.trainable_fraction(&cfg) < 0.02);     // ~1% of the backbone
/// assert!(!pa.backprop_through_backbone());        // the gradient highway
/// assert!(pa.supports_activation_cache());
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Technique {
    /// Update every backbone parameter.
    Full,
    /// Houlsby bottleneck adapters at the end of each transformer layer;
    /// `reduction` is the hidden-size reduction factor `k` (bottleneck dim =
    /// `h / k`).
    Adapters {
        /// Reduction factor `k` (paper uses 8).
        reduction: usize,
    },
    /// LoRA low-rank deltas on the Q and V projections of every attention
    /// block.
    Lora {
        /// Low-rank dimension `r` (the paper's ~9 M trainable parameters on
        /// T5-Large corresponds to r = 32).
        rank: usize,
    },
    /// The paper's Parallel Adapters side network with reduction factor `k`
    /// (side hidden dim = `h / k`; paper uses k = 8).
    ParallelAdapters {
        /// Reduction factor `k`.
        reduction: usize,
    },
    /// Prompt tuning (Lester et al. 2021): trainable virtual-token
    /// embeddings prepended to the encoder input. An extension technique
    /// from the paper's related work (§7).
    PromptTuning {
        /// Number of virtual tokens `p`.
        virtual_tokens: usize,
    },
}

impl Technique {
    /// Paper-default Adapters (k = 8).
    pub fn adapters_default() -> Self {
        Technique::Adapters { reduction: 8 }
    }

    /// Paper-default LoRA (r = 32, matching the 1.26% trainable-parameter
    /// share of Table 1).
    pub fn lora_default() -> Self {
        Technique::Lora { rank: 32 }
    }

    /// Paper-default Parallel Adapters (k = 8, §6.1).
    pub fn parallel_default() -> Self {
        Technique::ParallelAdapters { reduction: 8 }
    }

    /// Default prompt tuning (20 virtual tokens, the common setting).
    pub fn prompt_default() -> Self {
        Technique::PromptTuning { virtual_tokens: 20 }
    }

    /// Display name matching the paper's tables.
    pub fn name(&self) -> &'static str {
        match self {
            Technique::Full => "Full Model",
            Technique::Adapters { .. } => "Adapters",
            Technique::Lora { .. } => "LoRA",
            Technique::ParallelAdapters { .. } => "Parallel Adapters",
            Technique::PromptTuning { .. } => "Prompt Tuning",
        }
    }

    /// Number of trainable parameters this technique introduces (or, for
    /// Full, the whole backbone).
    ///
    /// The count is purely structural — it is **not** clamped against the
    /// backbone size. Over-parameterized settings are legal and counted
    /// as-is: LoRA with `rank > hidden / 4` on a small model adds
    /// `4 · h · rank` parameters per attention block and can exceed
    /// `Technique::Full` (e.g. rank 45 on hidden 16 — a configuration that
    /// once tripped a property test assuming PEFT < Full unconditionally).
    /// Such settings waste parameters but compute fine; callers comparing
    /// against Full must gate on sane hyperparameters themselves, as the
    /// planner does.
    pub fn trainable_params(&self, cfg: &ModelConfig) -> usize {
        let h = cfg.hidden;
        let layers = cfg.total_layers();
        match *self {
            Technique::Full => cfg.total_params(),
            Technique::Adapters { reduction } => {
                // Per layer: down (h×r + r) + up (r×h + h), r = h / k.
                let r = (h / reduction).max(1);
                layers * (2 * h * r + r + h)
            }
            Technique::Lora { rank } => {
                // Q and V of each attention block get A [h×r] + B [r×h].
                // Encoder layers have one attention block, decoder layers two.
                let blocks = cfg.enc_layers + 2 * cfg.dec_layers;
                blocks * 2 * (2 * h * rank)
            }
            Technique::ParallelAdapters { reduction } => {
                let r = (h / reduction).max(1);
                // Per layer: down-projection h×r + side recurrence r×r + r.
                // Plus one up-projection r×h and a side LayerNorm 2h.
                layers * (h * r + r * r + r) + r * h + 2 * h
            }
            Technique::PromptTuning { virtual_tokens } => virtual_tokens * h,
        }
    }

    /// Fraction of the backbone parameter count that is trainable.
    pub fn trainable_fraction(&self, cfg: &ModelConfig) -> f64 {
        self.trainable_params(cfg) as f64 / cfg.total_params() as f64
    }

    /// Whether backward must traverse the backbone (true for everything but
    /// Parallel Adapters — the property the paper's Figure 5 illustrates).
    pub fn backprop_through_backbone(&self) -> bool {
        !matches!(self, Technique::ParallelAdapters { .. })
    }

    /// Whether the technique supports the activation cache (backbone frozen
    /// *and* trainable parameters outside the backbone).
    pub fn supports_activation_cache(&self) -> bool {
        matches!(self, Technique::ParallelAdapters { .. })
    }

    /// The four techniques in the paper's table order.
    pub fn all_paper() -> Vec<Technique> {
        vec![
            Technique::Full,
            Technique::adapters_default(),
            Technique::lora_default(),
            Technique::parallel_default(),
        ]
    }

    /// The paper techniques plus the extension techniques implemented in
    /// this reproduction.
    pub fn all_extended() -> Vec<Technique> {
        let mut v = Self::all_paper();
        v.push(Self::prompt_default());
        v
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn t5_large_trainable_counts_match_table1() {
        let cfg = ModelConfig::t5_large();
        // Table 1: Full 737M (100%), Adapters 12M (1.70%), LoRA 9M (1.26%).
        let full = Technique::Full.trainable_params(&cfg);
        assert!((full as f64 - 737e6).abs() / 737e6 < 0.01, "{full}");

        let ad = Technique::adapters_default().trainable_params(&cfg);
        assert!(
            (ad as f64 - 12e6).abs() / 12e6 < 0.10,
            "adapters {ad} (want ≈12M)"
        );

        let lora = Technique::lora_default().trainable_params(&cfg);
        assert!(
            (lora as f64 - 9e6).abs() / 9e6 < 0.10,
            "lora {lora} (want ≈9M)"
        );
    }

    #[test]
    fn peft_fractions_are_small() {
        let cfg = ModelConfig::t5_large();
        for t in [
            Technique::adapters_default(),
            Technique::lora_default(),
            Technique::parallel_default(),
        ] {
            let f = t.trainable_fraction(&cfg);
            assert!(f < 0.02, "{} fraction {f}", t.name());
        }
        assert_eq!(Technique::Full.trainable_fraction(&cfg), 1.0);
    }

    #[test]
    fn only_parallel_adapters_skip_backbone_backprop() {
        assert!(Technique::Full.backprop_through_backbone());
        assert!(Technique::adapters_default().backprop_through_backbone());
        assert!(Technique::lora_default().backprop_through_backbone());
        assert!(!Technique::parallel_default().backprop_through_backbone());
        assert!(Technique::parallel_default().supports_activation_cache());
        assert!(!Technique::lora_default().supports_activation_cache());
    }

    #[test]
    fn parallel_adapters_are_lightweight() {
        let cfg = ModelConfig::t5_large();
        let pa = Technique::parallel_default().trainable_params(&cfg);
        // Comparable order to Adapters (both ≈ 1% of the backbone).
        assert!(pa > 1_000_000 && pa < 20_000_000, "{pa}");
    }

    #[test]
    fn over_parameterized_lora_exceeds_full_and_is_counted_structurally() {
        // Deterministic reproduction of the proptest regression once pinned
        // in tests/cross_crate_props.proptest-regressions: LoRA rank 45 on
        // Micro-1e1d-h16. With h = 16, one encoder + one decoder layer give
        // 3 attention blocks, so LoRA adds 3 · 2 · (2 · 16 · 45) = 8640
        // parameters — more than the whole micro backbone. The count is
        // intentionally unclamped (see `trainable_params` docs); the
        // property test excludes such configs via rank · 4 ≤ hidden.
        let cfg = ModelConfig::micro(1, 1, 16, 2);
        let lora = Technique::Lora { rank: 45 };
        assert_eq!(lora.trainable_params(&cfg), 3 * 2 * (2 * 16 * 45));
        assert!(
            lora.trainable_params(&cfg) > Technique::Full.trainable_params(&cfg),
            "rank 45 on hidden 16 must exceed the micro backbone ({} vs {})",
            lora.trainable_params(&cfg),
            Technique::Full.trainable_params(&cfg)
        );
        assert!(lora.trainable_fraction(&cfg) > 1.0);

        // The sanity gate the property test uses: at rank ≤ h/4 LoRA is
        // strictly smaller than Full on the same model.
        let sane = Technique::Lora { rank: 4 };
        assert!(sane.trainable_params(&cfg) < Technique::Full.trainable_params(&cfg));
    }

    #[test]
    fn names_match_paper() {
        assert_eq!(Technique::Full.name(), "Full Model");
        assert_eq!(Technique::adapters_default().name(), "Adapters");
        assert_eq!(Technique::lora_default().name(), "LoRA");
        assert_eq!(Technique::parallel_default().name(), "Parallel Adapters");
    }
}
