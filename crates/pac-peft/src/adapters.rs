//! Houlsby-style bottleneck adapters (paper Figure 2, left).
//!
//! A bottleneck module `y' = y + W_up · act(W_down · y)` is appended to every
//! transformer layer. Only the adapters and the task head train, but the
//! adapters live *inside* the backbone data path, so backward still
//! traverses the entire backbone — the inefficiency the paper's §4.1
//! analyzes.

use pac_model::EncDecModel;
use pac_nn::{Activation, Linear, LinearCtx, Module, Param, TransformerLayerCtx};
use pac_tensor::{Result, Tensor};
use rand::Rng;

/// One bottleneck adapter.
#[derive(Debug, Clone)]
pub struct Adapter {
    /// Down-projection `[d, r]`.
    pub down: Linear,
    /// Up-projection `[r, d]`.
    pub up: Linear,
    act: Activation,
}

/// Saved context for one adapter application.
#[derive(Debug, Clone)]
pub struct AdapterCtx {
    down_ctx: LinearCtx,
    hidden_pre: Tensor,
    up_ctx: LinearCtx,
    dims: Vec<usize>,
}

impl Adapter {
    /// Creates an adapter with bottleneck width `r`.
    pub fn new(name: &str, rng: &mut impl Rng, d: usize, r: usize) -> Self {
        Adapter {
            down: Linear::new(&format!("{name}.down"), rng, d, r, true),
            up: Linear::new(&format!("{name}.up"), rng, r, d, true),
            act: Activation::Gelu,
        }
    }

    /// `y' = y + up(act(down(y)))`, preserving `y`'s shape.
    ///
    /// # Errors
    /// Propagates projection shape errors.
    pub fn forward(&self, y: &Tensor) -> Result<(Tensor, AdapterCtx)> {
        let dims = y.dims().to_vec();
        let (hidden_pre, down_ctx) = self.down.forward(y)?;
        let hidden = self.act.forward(&hidden_pre);
        let (delta, up_ctx) = self.up.forward(&hidden)?;
        let out = y.add(&delta.reshape(dims.clone())?)?;
        Ok((
            out,
            AdapterCtx {
                down_ctx,
                hidden_pre,
                up_ctx,
                dims,
            },
        ))
    }

    /// Backward: accumulates adapter grads, returns `dy` (residual + branch).
    ///
    /// # Errors
    /// Propagates projection shape errors.
    pub fn backward(&mut self, ctx: &AdapterCtx, dy: &Tensor) -> Result<Tensor> {
        let d_hidden = self.up.backward(&ctx.up_ctx, dy)?;
        let d_pre = self.act.backward(&ctx.hidden_pre, &d_hidden);
        let d_branch = self.down.backward(&ctx.down_ctx, &d_pre)?;
        dy.add(&d_branch.reshape(ctx.dims.clone())?)
    }
}

impl Module for Adapter {
    fn visit_params(&mut self, f: &mut dyn FnMut(&mut Param)) {
        self.down.visit_params(f);
        self.up.visit_params(f);
    }
    fn visit_params_ref(&self, f: &mut dyn FnMut(&Param)) {
        self.down.visit_params_ref(f);
        self.up.visit_params_ref(f);
    }
}

/// Context for a full adapter-tuned forward pass.
#[derive(Debug, Clone)]
pub struct AdapterTunerCtx {
    tokens: Vec<Vec<usize>>,
    positions: Vec<usize>,
    enc: Vec<(TransformerLayerCtx, AdapterCtx)>,
    dec: Vec<(TransformerLayerCtx, AdapterCtx)>,
    enc_out: Tensor,
    final_ln: pac_nn::LayerNormCtx,
    head_ctx: LinearCtx,
    batch: usize,
    seq: usize,
}

/// Adapters fine-tuning over a frozen backbone.
#[derive(Debug, Clone)]
pub struct AdapterTuner {
    /// Frozen backbone (its head stays trainable).
    pub model: EncDecModel,
    /// One adapter per backbone layer (encoder layers then decoder layers).
    pub adapters: Vec<Adapter>,
}

impl AdapterTuner {
    /// Attaches adapters with reduction factor `k` (bottleneck `h/k`) to a
    /// backbone and freezes the backbone.
    pub fn new(mut model: EncDecModel, reduction: usize, rng: &mut impl Rng) -> Self {
        model.freeze_backbone();
        let d = model.config.hidden;
        let r = (d / reduction).max(1);
        let n = model.num_layers();
        let adapters = (0..n)
            .map(|i| Adapter::new(&format!("adapter{i}"), rng, d, r))
            .collect();
        AdapterTuner { model, adapters }
    }

    /// Forward pass with adapters interleaved after every backbone layer.
    ///
    /// # Errors
    /// Propagates shape errors.
    pub fn forward(&self, tokens: &[Vec<usize>]) -> Result<(Tensor, AdapterTunerCtx)> {
        let m = &self.model;
        let d = m.config.hidden;
        let batch = tokens.len();
        let (mut x, positions) = m.embed_batch(tokens)?;
        let seq = tokens[0].len();

        let mut enc = Vec::with_capacity(m.encoder.len());
        for (i, layer) in m.encoder.iter().enumerate() {
            let (y, lctx) = layer.forward(&x, None)?;
            let (y2, actx) = self.adapters[i].forward(&y)?;
            enc.push((lctx, actx));
            x = y2;
        }
        let enc_out = x;

        let dec_tokens: Vec<usize> = vec![m.start_token; batch];
        let dec_emb = m.embed.forward(&dec_tokens)?;
        let dec_pos = m.pos.forward(&vec![0usize; batch])?;
        let mut xd = dec_emb.add(&dec_pos)?.reshape([batch, 1, d])?;

        let mut dec = Vec::with_capacity(m.decoder.len());
        for (j, layer) in m.decoder.iter().enumerate() {
            let (y, lctx) = layer.forward(&xd, Some(&enc_out))?;
            let (y2, actx) = self.adapters[m.encoder.len() + j].forward(&y)?;
            dec.push((lctx, actx));
            xd = y2;
        }

        let (normed, final_ln) = m.final_ln.forward(&xd)?;
        let (logits, head_ctx) = m.head.forward(&normed)?;
        Ok((
            logits,
            AdapterTunerCtx {
                tokens: tokens.to_vec(),
                positions,
                enc,
                dec,
                enc_out,
                final_ln,
                head_ctx,
                batch,
                seq,
            },
        ))
    }

    /// Backward pass. Note that even though the backbone is frozen, the
    /// gradient must traverse every backbone layer to reach earlier
    /// adapters — the computational cost the paper measures in Figure 3.
    ///
    /// # Errors
    /// Propagates shape errors.
    pub fn backward(&mut self, ctx: &AdapterTunerCtx, dlogits: &Tensor) -> Result<()> {
        let d = self.model.config.hidden;
        let (batch, seq) = (ctx.batch, ctx.seq);

        let d_normed = self.model.head.backward(&ctx.head_ctx, dlogits)?;
        let mut dxd = self
            .model
            .final_ln
            .backward(&ctx.final_ln, &d_normed)?
            .reshape([batch, 1, d])?;

        let mut d_enc_total = Tensor::zeros(ctx.enc_out.dims());
        let n_enc = self.model.encoder.len();
        for (j, (layer, (lctx, actx))) in self
            .model
            .decoder
            .iter_mut()
            .zip(ctx.dec.iter())
            .enumerate()
            .rev()
        {
            let dy = self.adapters[n_enc + j].backward(actx, &dxd)?;
            let (dx, d_enc) = layer.backward(lctx, &dy)?;
            dxd = dx;
            if let Some(de) = d_enc {
                d_enc_total.add_assign(&de)?;
            }
        }

        let mut dx = d_enc_total;
        for (i, (layer, (lctx, actx))) in self
            .model
            .encoder
            .iter_mut()
            .zip(ctx.enc.iter())
            .enumerate()
            .rev()
        {
            let dy = self.adapters[i].backward(actx, &dx)?;
            let (g, _) = layer.backward(lctx, &dy)?;
            dx = g;
        }
        // Embedding gradients would be computed here for full fine-tuning;
        // the backbone (including embeddings) is frozen so we stop. `dx` and
        // the decoder-side gradient are dropped intentionally.
        let _ = (dx, seq, &ctx.tokens, &ctx.positions);
        Ok(())
    }
}

impl Module for AdapterTuner {
    fn visit_params(&mut self, f: &mut dyn FnMut(&mut Param)) {
        self.model.visit_params(f);
        for a in &mut self.adapters {
            a.visit_params(f);
        }
    }
    fn visit_params_ref(&self, f: &mut dyn FnMut(&Param)) {
        self.model.visit_params_ref(f);
        for a in &self.adapters {
            a.visit_params_ref(f);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pac_model::ModelConfig;
    use pac_nn::{cross_entropy, Adam, Optimizer};
    use pac_tensor::rng::seeded;

    fn tuner(seed: u64) -> AdapterTuner {
        let cfg = ModelConfig::micro(2, 1, 16, 2);
        let model = EncDecModel::new(&cfg, 2, &mut seeded(seed));
        AdapterTuner::new(model, 4, &mut seeded(seed + 1))
    }

    fn toks(seed: u64, b: usize) -> Vec<Vec<usize>> {
        let mut rng = seeded(seed);
        (0..b)
            .map(|_| (0..4).map(|_| rng.gen_range(0..64)).collect())
            .collect()
    }

    #[test]
    fn trainable_is_adapters_plus_head() {
        let t = tuner(130);
        let adapter_params: usize = t.adapters.iter().map(|a| a.num_params()).sum();
        let head_params = t.model.head.num_params();
        assert_eq!(t.num_trainable(), adapter_params + head_params);
        assert!(t.num_trainable() < t.num_params() / 10);
    }

    #[test]
    fn adapter_identity_at_zero_up_weights() {
        let mut rng = seeded(131);
        let mut a = Adapter::new("a", &mut rng, 8, 2);
        a.up.w.value.data_mut().fill(0.0);
        a.up.b.as_mut().unwrap().value.data_mut().fill(0.0);
        let y = pac_tensor::init::randn(&mut rng, [2, 8], 1.0);
        let (out, _) = a.forward(&y).unwrap();
        assert!(out.approx_eq(&y, 1e-6));
    }

    #[test]
    fn adapter_gradcheck() {
        let mut rng = seeded(132);
        let a = Adapter::new("a", &mut rng, 6, 2);
        let y = pac_tensor::init::randn(&mut rng, [3, 6], 0.5);
        let (_, ctx) = a.forward(&y).unwrap();
        let mut a2 = a.clone();
        let dy = a2.backward(&ctx, &Tensor::ones([3, 6])).unwrap();
        pac_nn::gradcheck::assert_grad_close(&y, &dy, 2e-2, |yp| a.forward(yp).unwrap().0.sum());
    }

    #[test]
    fn training_reduces_loss_with_frozen_backbone() {
        let mut t = tuner(133);
        let backbone_before: Vec<f32> = {
            let mut v = Vec::new();
            t.model.visit_params_ref(&mut |p| {
                if !p.trainable {
                    v.extend_from_slice(p.value.data());
                }
            });
            v
        };
        let batch = toks(134, 4);
        let targets = [0usize, 1, 0, 1];
        let mut opt = Adam::new(5e-3);
        let mut first = 0.0;
        let mut last = 0.0;
        for i in 0..20 {
            let (logits, ctx) = t.forward(&batch).unwrap();
            let (loss, dl) = cross_entropy(&logits, &targets).unwrap();
            if i == 0 {
                first = loss;
            }
            last = loss;
            t.zero_grads();
            t.backward(&ctx, &dl).unwrap();
            opt.step(&mut t);
        }
        assert!(last < first, "first {first} last {last}");

        let mut backbone_after = Vec::new();
        t.model.visit_params_ref(&mut |p| {
            if !p.trainable {
                backbone_after.extend_from_slice(p.value.data());
            }
        });
        assert_eq!(backbone_before, backbone_after);
    }

    #[test]
    fn adapter_grads_are_nonzero_after_backward() {
        let mut t = tuner(135);
        let batch = toks(136, 2);
        let (logits, ctx) = t.forward(&batch).unwrap();
        let (_, dl) = cross_entropy(&logits, &[0, 1]).unwrap();
        t.backward(&ctx, &dl).unwrap();
        for (i, a) in t.adapters.iter().enumerate() {
            let mut norm = 0.0f32;
            a.visit_params_ref(&mut |p| norm += p.grad.norm());
            assert!(norm > 0.0, "adapter {i} got no gradient");
        }
    }
}
