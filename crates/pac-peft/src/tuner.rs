//! Unified dispatch over the four fine-tuning techniques.

use crate::adapters::{AdapterTuner, AdapterTunerCtx};
use crate::full::FullTuner;
use crate::lora::LoraTuner;
use crate::parallel::{ParallelCtx, ParallelTuner, SideCtx};
use crate::prompt::{PromptCtx, PromptTuner};
use crate::technique::Technique;
use pac_model::{EncDecCtx, EncDecModel, ModelConfig};
use pac_nn::{Module, Param};
use pac_tensor::{Result, Tensor, TensorError};
use rand::Rng;

/// A fine-tuner: one of the four techniques wrapping a backbone.
///
/// Each variant owns a whole backbone, so their sizes legitimately differ;
/// a `Tuner` lives on the heap inside replica vectors anyway.
#[allow(clippy::large_enum_variant)]
#[derive(Debug, Clone)]
pub enum Tuner {
    /// Full fine-tuning.
    Full(FullTuner),
    /// Houlsby adapters.
    Adapters(AdapterTuner),
    /// LoRA.
    Lora(LoraTuner),
    /// Parallel Adapters (the paper's technique).
    Parallel(ParallelTuner),
    /// Prompt tuning (extension technique).
    Prompt(PromptTuner),
}

/// Per-technique forward context.
#[derive(Debug, Clone)]
pub enum TunerCtx {
    /// Context of a full or LoRA forward (plain model context).
    Model(EncDecCtx),
    /// Context of an adapters forward.
    Adapters(AdapterTunerCtx),
    /// Context of a Parallel-Adapters full forward.
    Parallel(ParallelCtx),
    /// Context of a Parallel-Adapters cached forward.
    ParallelCached(SideCtx),
    /// Context of a prompt-tuning forward.
    Prompt(PromptCtx),
}

impl Tuner {
    /// Builds a tuner of the given technique over a fresh backbone.
    pub fn new(
        technique: Technique,
        config: &ModelConfig,
        n_out: usize,
        rng: &mut impl Rng,
    ) -> Self {
        let model = EncDecModel::new(config, n_out, rng);
        Self::wrap(technique, model, n_out, rng)
    }

    /// Wraps an existing ("pretrained") backbone.
    pub fn wrap(
        technique: Technique,
        model: EncDecModel,
        n_out: usize,
        rng: &mut impl Rng,
    ) -> Self {
        match technique {
            Technique::Full => Tuner::Full(FullTuner::new(model)),
            Technique::Adapters { reduction } => {
                Tuner::Adapters(AdapterTuner::new(model, reduction, rng))
            }
            Technique::Lora { rank } => Tuner::Lora(LoraTuner::new(model, rank, rng)),
            Technique::ParallelAdapters { reduction } => {
                Tuner::Parallel(ParallelTuner::new(model, reduction, n_out, rng))
            }
            Technique::PromptTuning { virtual_tokens } => {
                Tuner::Prompt(PromptTuner::new(model, virtual_tokens, rng))
            }
        }
    }

    /// The technique this tuner implements.
    pub fn technique(&self) -> Technique {
        match self {
            Tuner::Full(_) => Technique::Full,
            Tuner::Adapters(t) => Technique::Adapters {
                reduction: (t.model.config.hidden
                    / t.adapters
                        .first()
                        .map(|a| a.down.out_dim())
                        .unwrap_or(1)
                        .max(1))
                .max(1),
            },
            Tuner::Lora(t) => Technique::Lora {
                rank: t.pairs.first().map(|p| p.a.value.dims()[1]).unwrap_or(0),
            },
            Tuner::Parallel(t) => Technique::ParallelAdapters {
                reduction: (t.model.config.hidden / t.side.side_dim().max(1)).max(1),
            },
            Tuner::Prompt(t) => Technique::PromptTuning {
                virtual_tokens: t.virtual_tokens(),
            },
        }
    }

    /// Forward pass on a token batch.
    ///
    /// # Errors
    /// Propagates shape errors.
    pub fn forward(&mut self, tokens: &[Vec<usize>]) -> Result<(Tensor, TunerCtx)> {
        match self {
            Tuner::Full(t) => {
                let (l, c) = t.forward(tokens)?;
                Ok((l, TunerCtx::Model(c)))
            }
            Tuner::Adapters(t) => {
                let (l, c) = t.forward(tokens)?;
                Ok((l, TunerCtx::Adapters(c)))
            }
            Tuner::Lora(t) => {
                let (l, c) = t.forward(tokens)?;
                Ok((l, TunerCtx::Model(c)))
            }
            Tuner::Parallel(t) => {
                let (l, c) = t.forward_full(tokens)?;
                Ok((l, TunerCtx::Parallel(c)))
            }
            Tuner::Prompt(t) => {
                let (l, c) = t.forward(tokens)?;
                Ok((l, TunerCtx::Prompt(c)))
            }
        }
    }

    /// Cache-enabled forward (Parallel Adapters only).
    ///
    /// # Errors
    /// Returns a shape error for techniques without cache support.
    pub fn forward_cached(&self, acts: &[Tensor]) -> Result<(Tensor, TunerCtx)> {
        match self {
            Tuner::Parallel(t) => {
                let (l, c) = t.forward_cached(acts)?;
                Ok((l, TunerCtx::ParallelCached(c)))
            }
            _ => Err(TensorError::ShapeMismatch {
                op: "forward_cached requires Parallel Adapters",
                lhs: vec![],
                rhs: vec![],
            }),
        }
    }

    /// Backward pass matching a prior forward.
    ///
    /// # Errors
    /// Returns a shape error if `ctx` does not belong to this tuner kind.
    pub fn backward(&mut self, ctx: &TunerCtx, dlogits: &Tensor) -> Result<()> {
        match (self, ctx) {
            (Tuner::Full(t), TunerCtx::Model(c)) => t.backward(c, dlogits),
            (Tuner::Adapters(t), TunerCtx::Adapters(c)) => t.backward(c, dlogits),
            (Tuner::Lora(t), TunerCtx::Model(c)) => t.backward(c, dlogits),
            (Tuner::Parallel(t), TunerCtx::Parallel(c)) => t.backward(&c.side, dlogits),
            (Tuner::Parallel(t), TunerCtx::ParallelCached(c)) => t.backward(c, dlogits),
            (Tuner::Prompt(t), TunerCtx::Prompt(c)) => t.backward(c, dlogits),
            _ => Err(TensorError::ShapeMismatch {
                op: "tuner/ctx kind mismatch",
                lhs: vec![],
                rhs: vec![],
            }),
        }
    }

    /// Total parameters including the frozen backbone. The `Module`
    /// traversal of LoRA and Parallel-Adapters tuners deliberately exposes
    /// only optimizable parameters, so `num_params()` under-counts for
    /// them; this method reports the true resident model size.
    pub fn total_params(&self) -> usize {
        match self {
            Tuner::Full(t) => t.model.num_params(),
            Tuner::Adapters(t) => {
                t.model.num_params() + t.adapters.iter().map(Module::num_params).sum::<usize>()
            }
            Tuner::Lora(t) => {
                t.model.num_params()
                    + t.pairs
                        .iter()
                        .map(|p| p.a.numel() + p.b.numel())
                        .sum::<usize>()
            }
            Tuner::Parallel(t) => t.model.num_params() + t.side.num_params(),
            Tuner::Prompt(t) => t.model.num_params() + t.prompt.numel(),
        }
    }

    /// Backbone layer outputs from a full forward, if this technique
    /// produces cacheable activations.
    pub fn cacheable_acts<'c>(&self, ctx: &'c TunerCtx) -> Option<&'c [Tensor]> {
        match ctx {
            TunerCtx::Parallel(c) => Some(&c.layer_outputs),
            _ => None,
        }
    }
}

impl Module for Tuner {
    fn visit_params(&mut self, f: &mut dyn FnMut(&mut Param)) {
        match self {
            Tuner::Full(t) => t.visit_params(f),
            Tuner::Adapters(t) => t.visit_params(f),
            Tuner::Lora(t) => t.visit_params(f),
            Tuner::Parallel(t) => t.visit_params(f),
            Tuner::Prompt(t) => t.visit_params(f),
        }
    }
    fn visit_params_ref(&self, f: &mut dyn FnMut(&Param)) {
        match self {
            Tuner::Full(t) => t.visit_params_ref(f),
            Tuner::Adapters(t) => t.visit_params_ref(f),
            Tuner::Lora(t) => t.visit_params_ref(f),
            Tuner::Parallel(t) => t.visit_params_ref(f),
            Tuner::Prompt(t) => t.visit_params_ref(f),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pac_nn::{cross_entropy, Adam, Optimizer};
    use pac_tensor::rng::seeded;

    fn toks(seed: u64, b: usize) -> Vec<Vec<usize>> {
        let mut rng = seeded(seed);
        (0..b)
            .map(|_| (0..4).map(|_| rng.gen_range(0..64)).collect())
            .collect()
    }

    #[test]
    fn every_technique_trains_end_to_end() {
        let cfg = ModelConfig::micro(2, 1, 16, 2);
        for technique in Technique::all_paper() {
            let mut t = Tuner::new(technique, &cfg, 2, &mut seeded(170));
            let batch = toks(171, 4);
            let targets = [0usize, 1, 0, 1];
            let mut opt = Adam::new(5e-3);
            let mut first = 0.0;
            let mut last = 0.0;
            for i in 0..15 {
                let (logits, ctx) = t.forward(&batch).unwrap();
                let (loss, dl) = cross_entropy(&logits, &targets).unwrap();
                if i == 0 {
                    first = loss;
                }
                last = loss;
                t.zero_grads();
                t.backward(&ctx, &dl).unwrap();
                opt.step(&mut t);
            }
            assert!(
                last < first,
                "{}: loss did not drop ({first} → {last})",
                technique.name()
            );
        }
    }

    #[test]
    fn technique_round_trips() {
        let cfg = ModelConfig::micro(2, 1, 16, 2);
        for technique in Technique::all_paper() {
            let t = Tuner::new(technique, &cfg, 2, &mut seeded(172));
            assert_eq!(t.technique().name(), technique.name());
        }
    }

    #[test]
    fn cached_forward_only_for_parallel() {
        let cfg = ModelConfig::micro(2, 1, 16, 2);
        let mut pa = Tuner::new(Technique::parallel_default(), &cfg, 2, &mut seeded(173));
        let batch = toks(174, 2);
        let (_, ctx) = pa.forward(&batch).unwrap();
        let acts = pa.cacheable_acts(&ctx).unwrap().to_vec();
        assert!(pa.forward_cached(&acts).is_ok());

        let mut lora = Tuner::new(Technique::lora_default(), &cfg, 2, &mut seeded(175));
        let (_, lctx) = lora.forward(&batch).unwrap();
        assert!(lora.cacheable_acts(&lctx).is_none());
        assert!(lora.forward_cached(&acts).is_err());
    }

    #[test]
    fn mismatched_ctx_is_rejected() {
        let cfg = ModelConfig::micro(1, 1, 16, 2);
        let mut full = Tuner::new(Technique::Full, &cfg, 2, &mut seeded(176));
        let mut ad = Tuner::new(Technique::adapters_default(), &cfg, 2, &mut seeded(177));
        let batch = toks(178, 2);
        let (_, fctx) = full.forward(&batch).unwrap();
        let (logits, _) = ad.forward(&batch).unwrap();
        let (_, dl) = cross_entropy(&logits, &[0, 1]).unwrap();
        assert!(ad.backward(&fctx, &dl).is_err());
    }

    #[test]
    fn trainable_ordering_matches_paper() {
        // Full >> Adapters ≈ PA ≈ LoRA in trainable parameters.
        let cfg = ModelConfig::micro(2, 2, 32, 4);
        let counts: Vec<(String, usize)> = Technique::all_paper()
            .into_iter()
            .map(|tech| {
                let t = Tuner::new(tech, &cfg, 2, &mut seeded(179));
                (tech.name().to_string(), t.num_trainable())
            })
            .collect();
        let full = counts[0].1;
        for (name, c) in &counts[1..] {
            assert!(c * 2 < full, "{name}: {c} not ≪ full {full}");
        }
    }
}
