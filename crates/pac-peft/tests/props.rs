//! Property-based tests for PEFT invariants: freezing, caching and
//! checkpointing must hold for arbitrary (sane) configurations.

use pac_model::ModelConfig;
use pac_nn::{cross_entropy, Module};
use pac_peft::{checkpoint, ActivationCache, Technique, Tuner};
use pac_tensor::rng::seeded;
use proptest::prelude::*;
use rand::Rng;

fn arb_micro() -> impl Strategy<Value = ModelConfig> {
    (1usize..3, 1usize..3, prop_oneof![Just(16usize), Just(32)])
        .prop_map(|(e, d, h)| ModelConfig::micro(e, d, h, 2))
}

fn arb_technique() -> impl Strategy<Value = Technique> {
    prop_oneof![
        Just(Technique::Full),
        (2usize..8).prop_map(|reduction| Technique::Adapters { reduction }),
        (1usize..4).prop_map(|rank| Technique::Lora { rank }),
        (2usize..8).prop_map(|reduction| Technique::ParallelAdapters { reduction }),
        (1usize..8).prop_map(|virtual_tokens| Technique::PromptTuning { virtual_tokens }),
    ]
}

fn toks(seed: u64, b: usize, s: usize) -> Vec<Vec<usize>> {
    let mut rng = seeded(seed);
    (0..b)
        .map(|_| (0..s).map(|_| rng.gen_range(0..64)).collect())
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// For every technique: one training step never changes a frozen
    /// parameter, and always changes at least one trainable parameter.
    #[test]
    fn frozen_stays_frozen_trainable_moves(
        model in arb_micro(),
        technique in arb_technique(),
        seed in 0u64..500,
    ) {
        let mut tuner = Tuner::new(technique, &model, 2, &mut seeded(seed));
        let frozen_before: Vec<f32> = {
            let mut v = Vec::new();
            tuner.visit_params_ref(&mut |p| {
                if !p.trainable {
                    v.extend_from_slice(p.value.data());
                }
            });
            v
        };
        let batch = toks(seed.wrapping_add(1), 2, 4);
        let (logits, ctx) = tuner.forward(&batch).unwrap();
        let (_, dl) = cross_entropy(&logits, &[0, 1]).unwrap();
        tuner.zero_grads();
        tuner.backward(&ctx, &dl).unwrap();
        let mut opt = pac_nn::Adam::new(1e-2);
        use pac_nn::Optimizer;
        opt.step(&mut tuner);

        let mut frozen_after = Vec::new();
        let mut trainable_grad_norm = 0.0f32;
        tuner.visit_params_ref(&mut |p| {
            if !p.trainable {
                frozen_after.extend_from_slice(p.value.data());
            } else {
                trainable_grad_norm += p.grad.norm();
            }
        });
        prop_assert_eq!(frozen_before, frozen_after);
        prop_assert!(trainable_grad_norm > 0.0, "no trainable gradient at all");
    }

    /// Checkpoint round trips restore the exact function for every
    /// technique and micro architecture.
    #[test]
    fn checkpoint_round_trip_preserves_outputs(
        model in arb_micro(),
        technique in arb_technique(),
        seed in 0u64..500,
    ) {
        let mut donor = Tuner::new(technique, &model, 2, &mut seeded(seed));
        donor.visit_params(&mut |p| {
            if p.trainable {
                p.value.map_in_place(|v| v * 1.1 + 0.003);
            }
        });
        let bytes = checkpoint::to_bytes(&donor).unwrap();
        let mut recipient = Tuner::new(technique, &model, 2, &mut seeded(seed));
        checkpoint::from_bytes(&mut recipient, &bytes).unwrap();

        let batch = toks(seed.wrapping_add(9), 2, 4);
        let (a, _) = donor.forward(&batch).unwrap();
        let (b, _) = recipient.forward(&batch).unwrap();
        prop_assert!(a.approx_eq(&b, 0.0));
    }

    /// Cached and uncached Parallel-Adapters forwards agree exactly for
    /// arbitrary inputs and side widths.
    #[test]
    fn cache_equivalence_for_arbitrary_inputs(
        model in arb_micro(),
        reduction in 2usize..8,
        seed in 0u64..500,
        batch_size in 1usize..4,
    ) {
        let mut tuner = Tuner::new(
            Technique::ParallelAdapters { reduction },
            &model,
            2,
            &mut seeded(seed),
        );
        let batch = toks(seed.wrapping_add(2), batch_size, 5);
        let (full, ctx) = tuner.forward(&batch).unwrap();
        let acts = tuner.cacheable_acts(&ctx).unwrap().to_vec();
        let (cached, _) = tuner.forward_cached(&acts).unwrap();
        prop_assert!(full.approx_eq(&cached, 0.0));

        // And through the cache store/rebuild path.
        let mut cache = ActivationCache::new();
        let ids: Vec<u64> = (0..batch_size as u64).collect();
        cache.insert_batch(&ids, &acts);
        let rebuilt = cache.get_batch(&ids).unwrap();
        let (via_cache, _) = tuner.forward_cached(&rebuilt).unwrap();
        prop_assert!(full.approx_eq(&via_cache, 0.0));
    }

    /// Trainable-parameter monotonicity: a larger adapter budget never
    /// trains fewer parameters.
    #[test]
    fn adapter_budget_is_monotone(model in arb_micro(), k in 2usize..8) {
        let small = Technique::Adapters { reduction: k + 1 }.trainable_params(&model);
        let big = Technique::Adapters { reduction: k }.trainable_params(&model);
        prop_assert!(big >= small);
        let pa_small = Technique::ParallelAdapters { reduction: k + 1 }.trainable_params(&model);
        let pa_big = Technique::ParallelAdapters { reduction: k }.trainable_params(&model);
        prop_assert!(pa_big >= pa_small);
    }
}
