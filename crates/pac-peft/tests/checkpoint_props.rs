//! Adversarial robustness of the `PACCKPT1`/`PACCKPT2` codecs, mirroring
//! pac-net's wire-format properties (`any_truncation_is_rejected_as_eof`,
//! `any_single_byte_flip_is_rejected`): every truncation and every single
//! flipped byte of a valid checkpoint must be rejected with a typed
//! [`CheckpointError`] — never a panic, never silently-corrupted weights.

use pac_model::ModelConfig;
use pac_nn::Module;
use pac_peft::checkpoint::{from_bytes, to_bytes, CheckpointError, TrainCheckpoint};
use pac_peft::{Technique, Tuner};
use pac_tensor::rng::seeded;
use proptest::prelude::*;

fn tuner() -> Tuner {
    Tuner::new(
        Technique::parallel_default(),
        &ModelConfig::micro(1, 1, 16, 2),
        2,
        &mut seeded(900),
    )
}

/// A `PACCKPT2` snapshot with populated Adam moments so both the value and
/// moment planes are in the byte stream.
fn train_snapshot_bytes() -> Vec<u8> {
    let mut t = tuner();
    t.visit_params(&mut |p| {
        if p.trainable {
            p.opt_m = Some(p.value.clone());
            p.opt_v = Some(p.value.clone());
        }
    });
    TrainCheckpoint::capture(&t, 2, 5, 5)
        .to_bytes()
        .expect("serialize")
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn ckpt2_any_truncation_is_rejected(cut_seed in 0usize..10_000) {
        let bytes = train_snapshot_bytes();
        let cut = cut_seed % bytes.len();
        prop_assert!(
            TrainCheckpoint::from_bytes(&bytes[..cut]).is_err(),
            "truncation at {cut}/{} decoded", bytes.len()
        );
    }

    #[test]
    fn ckpt2_any_single_byte_flip_is_rejected(
        pos_seed in 0usize..10_000,
        mask in 1u8..=255,
    ) {
        let bytes = train_snapshot_bytes();
        let pos = pos_seed % bytes.len();
        let mut corrupt = bytes.clone();
        corrupt[pos] ^= mask;
        match TrainCheckpoint::from_bytes(&corrupt) {
            Err(_) => {}
            Ok(_) => prop_assert!(false, "flip at {pos} (mask {mask:#04x}) decoded"),
        }
    }

    #[test]
    fn ckpt1_any_truncation_is_rejected(cut_seed in 0usize..10_000) {
        let donor = tuner();
        let bytes = to_bytes(&donor).expect("serialize");
        let cut = cut_seed % bytes.len();
        let mut recipient = tuner();
        prop_assert!(
            from_bytes(&mut recipient, &bytes[..cut]).is_err(),
            "truncation at {cut}/{} decoded", bytes.len()
        );
    }

    #[test]
    fn ckpt1_any_single_byte_flip_is_rejected(
        pos_seed in 0usize..10_000,
        mask in 1u8..=255,
    ) {
        let donor = tuner();
        let bytes = to_bytes(&donor).expect("serialize");
        let pos = pos_seed % bytes.len();
        let mut corrupt = bytes.clone();
        corrupt[pos] ^= mask;
        let mut recipient = tuner();
        prop_assert!(
            from_bytes(&mut recipient, &corrupt).is_err(),
            "flip at {pos} (mask {mask:#04x}) decoded"
        );
    }
}

/// A decoder fed corrupt bytes must reject them *before* mutating the
/// module: the recipient still computes bit-identically to a pristine
/// tuner after every rejected load.
#[test]
fn rejected_loads_leave_the_module_untouched() {
    let donor = tuner();
    let bytes = to_bytes(&donor).expect("serialize");
    let mut recipient = tuner();
    let pristine = to_bytes(&recipient).expect("serialize pristine");
    for pos in (0..bytes.len()).step_by(7) {
        let mut corrupt = bytes.clone();
        corrupt[pos] ^= 0xA5;
        if from_bytes(&mut recipient, &corrupt).is_err() {
            let after = to_bytes(&recipient).expect("serialize after");
            assert_eq!(pristine, after, "rejected load at {pos} mutated the module");
        }
    }
}

/// Sanity anchor for the properties above: a clean buffer still decodes,
/// and the error type for damage is the typed `CheckpointError`, not a
/// panic payload.
#[test]
fn clean_stream_decodes_and_damage_is_typed() {
    let bytes = train_snapshot_bytes();
    let snap = TrainCheckpoint::from_bytes(&bytes).expect("clean decode");
    assert_eq!((snap.epoch, snap.step, snap.adam_t), (2, 5, 5));
    let mut corrupt = bytes.clone();
    let last = corrupt.len() - 1;
    corrupt[last] ^= 0x01;
    match TrainCheckpoint::from_bytes(&corrupt) {
        Err(CheckpointError::Format(msg)) => {
            assert!(msg.contains("checksum"), "unexpected diagnosis: {msg}")
        }
        other => panic!("flipped trailer must be a Format error, got {other:?}"),
    }
}
