//! Datasets and mini-batch iteration.

use crate::synth::{generate_sample, Label, Sample};
use crate::task::TaskKind;
use pac_tensor::rng::seeded;
use rand::seq::SliceRandom;

/// A mini-batch ready for the model: equal-length token rows plus targets.
#[derive(Debug, Clone)]
pub struct Batch {
    /// Sample ids (activation-cache keys).
    pub ids: Vec<u64>,
    /// Token rows.
    pub tokens: Vec<Vec<usize>>,
    /// Targets.
    pub labels: Vec<Label>,
}

impl Batch {
    /// Number of samples.
    pub fn len(&self) -> usize {
        self.ids.len()
    }

    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.ids.is_empty()
    }

    /// Classification targets as a class-id vector; panics on regression
    /// batches.
    pub fn classes(&self) -> Vec<usize> {
        self.labels.iter().map(Label::class).collect()
    }

    /// Regression targets; panics on classification batches.
    pub fn scores(&self) -> Vec<f32> {
        self.labels.iter().map(Label::score).collect()
    }
}

/// An in-memory synthetic dataset.
#[derive(Debug, Clone)]
pub struct Dataset {
    /// The task this dataset instantiates.
    pub task: TaskKind,
    /// The samples.
    pub samples: Vec<Sample>,
    /// Sequence length of every sample.
    pub seq_len: usize,
}

impl Dataset {
    /// Generates `n` samples of `task` with the given sequence length.
    pub fn generate(task: TaskKind, n: usize, seq_len: usize, seed: u64) -> Self {
        let samples = (0..n as u64)
            .map(|i| generate_sample(task, seed, i, seq_len))
            .collect();
        Dataset {
            task,
            samples,
            seq_len,
        }
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.samples.len()
    }

    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.samples.is_empty()
    }

    /// Splits into `(train, eval)` at `train_fraction`.
    pub fn split(mut self, train_fraction: f64) -> (Dataset, Dataset) {
        let cut = ((self.samples.len() as f64) * train_fraction).round() as usize;
        let eval = self.samples.split_off(cut.min(self.samples.len()));
        let eval_ds = Dataset {
            task: self.task,
            samples: eval,
            seq_len: self.seq_len,
        };
        (self, eval_ds)
    }

    /// Mini-batches in a deterministic shuffled order for `epoch`.
    ///
    /// The shuffle depends on `(shuffle_seed, epoch)` so every epoch visits
    /// samples in a fresh order while staying reproducible.
    pub fn batches(&self, batch_size: usize, epoch: usize, shuffle_seed: u64) -> Vec<Batch> {
        let mut order: Vec<usize> = (0..self.samples.len()).collect();
        let mut rng = seeded(shuffle_seed.wrapping_add(epoch as u64));
        order.shuffle(&mut rng);
        order
            .chunks(batch_size.max(1))
            .map(|chunk| {
                let mut ids = Vec::with_capacity(chunk.len());
                let mut tokens = Vec::with_capacity(chunk.len());
                let mut labels = Vec::with_capacity(chunk.len());
                for &i in chunk {
                    let s = &self.samples[i];
                    ids.push(s.id);
                    tokens.push(s.tokens.clone());
                    labels.push(s.label);
                }
                Batch {
                    ids,
                    tokens,
                    labels,
                }
            })
            .collect()
    }

    /// Shards the dataset across `n` data-parallel workers; worker `w` gets
    /// samples `w, w+n, w+2n, …` (round-robin, balanced within ±1).
    pub fn shard(&self, n: usize, w: usize) -> Dataset {
        Dataset {
            task: self.task,
            samples: self
                .samples
                .iter()
                .skip(w)
                .step_by(n.max(1))
                .cloned()
                .collect(),
            seq_len: self.seq_len,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generate_and_batch() {
        let ds = Dataset::generate(TaskKind::Sst2, 25, 12, 3);
        assert_eq!(ds.len(), 25);
        let batches = ds.batches(8, 0, 42);
        assert_eq!(batches.len(), 4); // 8+8+8+1
        assert_eq!(batches[0].len(), 8);
        assert_eq!(batches[3].len(), 1);
        // All samples visited exactly once.
        let mut seen: Vec<u64> = batches.iter().flat_map(|b| b.ids.clone()).collect();
        seen.sort_unstable();
        assert_eq!(seen, (0..25).collect::<Vec<u64>>());
    }

    #[test]
    fn epochs_shuffle_differently_but_deterministically() {
        let ds = Dataset::generate(TaskKind::Qnli, 32, 12, 5);
        let e0a = ds.batches(8, 0, 1);
        let e0b = ds.batches(8, 0, 1);
        let e1 = ds.batches(8, 1, 1);
        assert_eq!(e0a[0].ids, e0b[0].ids);
        assert_ne!(
            e0a.iter().flat_map(|b| b.ids.clone()).collect::<Vec<_>>(),
            e1.iter().flat_map(|b| b.ids.clone()).collect::<Vec<_>>()
        );
    }

    #[test]
    fn split_partitions_without_loss() {
        let ds = Dataset::generate(TaskKind::Mrpc, 20, 12, 7);
        let (tr, ev) = ds.split(0.8);
        assert_eq!(tr.len(), 16);
        assert_eq!(ev.len(), 4);
    }

    #[test]
    fn shards_partition_the_dataset() {
        let ds = Dataset::generate(TaskKind::Sst2, 10, 12, 9);
        let shards: Vec<Dataset> = (0..3).map(|w| ds.shard(3, w)).collect();
        let total: usize = shards.iter().map(Dataset::len).sum();
        assert_eq!(total, 10);
        let mut ids: Vec<u64> = shards
            .iter()
            .flat_map(|s| s.samples.iter().map(|x| x.id))
            .collect();
        ids.sort_unstable();
        assert_eq!(ids, (0..10).collect::<Vec<u64>>());
        // Balanced within one sample.
        let sizes: Vec<usize> = shards.iter().map(Dataset::len).collect();
        assert!(sizes.iter().max().unwrap() - sizes.iter().min().unwrap() <= 1);
    }

    #[test]
    fn batch_label_accessors() {
        let ds = Dataset::generate(TaskKind::StsB, 4, 13, 11);
        let b = &ds.batches(4, 0, 0)[0];
        assert_eq!(b.scores().len(), 4);
        let ds2 = Dataset::generate(TaskKind::Sst2, 4, 13, 11);
        let b2 = &ds2.batches(4, 0, 0)[0];
        assert_eq!(b2.classes().len(), 4);
    }
}
