//! Synthetic sample generators with planted, learnable structure.

use crate::task::TaskKind;
use pac_tensor::rng::{derive_seed, seeded};
use rand::seq::SliceRandom;
use rand::Rng;

/// Token-id layout of the synthetic vocabulary.
///
/// Ids 0..4 are reserved (0 = PAD, 1 = START, 2 = SEP). Content tokens are
/// split into a "positive" and a "negative" half for the sentiment task.
pub const VOCAB: usize = 64;
const SEP: usize = 2;
const CONTENT_START: usize = 4;

/// Target of a sample: a class id or a regression score.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Label {
    /// Classification target.
    Class(usize),
    /// Regression target (STS-B style, on [0, 5]).
    Score(f32),
}

impl Label {
    /// The class id; panics on regression labels.
    pub fn class(&self) -> usize {
        match self {
            Label::Class(c) => *c,
            Label::Score(_) => panic!("regression label has no class"),
        }
    }

    /// The score; panics on classification labels.
    pub fn score(&self) -> f32 {
        match self {
            Label::Score(s) => *s,
            Label::Class(_) => panic!("classification label has no score"),
        }
    }
}

/// One synthetic example.
#[derive(Debug, Clone, PartialEq)]
pub struct Sample {
    /// Stable id — the activation-cache key.
    pub id: u64,
    /// Token sequence (fixed length within a dataset).
    pub tokens: Vec<usize>,
    /// Target.
    pub label: Label,
}

/// Generates sample `index` of `task` with the given sequence length.
///
/// Generation is pure in `(task, seed, index)`: the same triple always
/// yields the same sample, which is what lets distributed workers
/// materialize disjoint shards without communication.
pub fn generate_sample(task: TaskKind, seed: u64, index: u64, seq_len: usize) -> Sample {
    let mut rng = seeded(derive_seed(seed, index));
    let tokens;
    let label;
    match task {
        TaskKind::Sst2 => {
            // Sentiment: tokens drawn from the positive or negative half of
            // the content vocabulary with mixing; label = majority half.
            let positive: bool = rng.gen();
            let half = (VOCAB - CONTENT_START) / 2;
            let mut toks = Vec::with_capacity(seq_len);
            let mut pos_count = 0usize;
            for _ in 0..seq_len {
                let from_major = rng.gen_range(0.0..1.0) < 0.75;
                let is_pos = from_major == positive;
                let t = if is_pos {
                    CONTENT_START + rng.gen_range(0..half)
                } else {
                    CONTENT_START + half + rng.gen_range(0..half)
                };
                if is_pos {
                    pos_count += 1;
                }
                toks.push(t);
            }
            label = Label::Class(usize::from(pos_count * 2 >= seq_len));
            tokens = toks;
        }
        TaskKind::Mrpc => {
            // Paraphrase: B is a shuffled copy of A (label 1) or fresh
            // random tokens (label 0). A and B are SEP-joined halves.
            let half = (seq_len - 1) / 2;
            let a: Vec<usize> = (0..half)
                .map(|_| CONTENT_START + rng.gen_range(0..VOCAB - CONTENT_START))
                .collect();
            let is_para: bool = rng.gen();
            let b: Vec<usize> = if is_para {
                let mut b = a.clone();
                b.shuffle(&mut rng);
                b
            } else {
                (0..half)
                    .map(|_| CONTENT_START + rng.gen_range(0..VOCAB - CONTENT_START))
                    .collect()
            };
            let mut toks = a;
            toks.push(SEP);
            toks.extend(b);
            toks.resize(seq_len, 0);
            label = Label::Class(usize::from(is_para));
            tokens = toks;
        }
        TaskKind::StsB => {
            // Graded-intensity regression: tokens are drawn from the
            // positive/negative vocabulary halves with a per-sample mixing
            // ratio; the target is 5 × (positive fraction). This keeps the
            // *task type* (regression scored by Pearson-Spearman) while
            // staying learnable at micro-model scale — the paper's
            // token-overlap similarity requires set intersection across
            // segments, which a 2-layer d=32 model cannot represent
            // (documented substitution; see DESIGN.md).
            let half_vocab = (VOCAB - CONTENT_START) / 2;
            let p_pos: f32 = rng.gen_range(0.0..=1.0);
            let mut pos_count = 0usize;
            let toks: Vec<usize> = (0..seq_len)
                .map(|_| {
                    if rng.gen_range(0.0..1.0f32) < p_pos {
                        pos_count += 1;
                        CONTENT_START + rng.gen_range(0..half_vocab)
                    } else {
                        CONTENT_START + half_vocab + rng.gen_range(0..half_vocab)
                    }
                })
                .collect();
            label = Label::Score(5.0 * pos_count as f32 / seq_len as f32);
            tokens = toks;
        }
        TaskKind::Qnli => {
            // Entailment: A's first token is the "question key"; label 1 iff
            // segment B contains that key.
            let half = (seq_len - 1) / 2;
            let key = CONTENT_START + rng.gen_range(0..VOCAB - CONTENT_START);
            let mut a: Vec<usize> = (0..half)
                .map(|_| CONTENT_START + rng.gen_range(0..VOCAB - CONTENT_START))
                .collect();
            a[0] = key;
            let entails: bool = rng.gen();
            let mut b: Vec<usize> = (0..half)
                .map(|_| CONTENT_START + rng.gen_range(0..VOCAB - CONTENT_START))
                .collect();
            // Ensure the key's presence matches the label exactly.
            for t in b.iter_mut() {
                if *t == key {
                    *t = if key + 1 < VOCAB { key + 1 } else { key - 1 };
                }
            }
            if entails {
                let pos = rng.gen_range(0..b.len().max(1));
                b[pos] = key;
            }
            let mut toks = a;
            toks.push(SEP);
            toks.extend(b);
            toks.resize(seq_len, 0);
            label = Label::Class(usize::from(entails));
            tokens = toks;
        }
    }
    Sample {
        id: index,
        tokens,
        label,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_is_deterministic() {
        for task in TaskKind::all() {
            let a = generate_sample(task, 7, 3, 16);
            let b = generate_sample(task, 7, 3, 16);
            assert_eq!(a, b);
            let c = generate_sample(task, 7, 4, 16);
            assert_ne!(a.tokens, c.tokens);
        }
    }

    #[test]
    fn tokens_are_in_vocab_and_fixed_length() {
        for task in TaskKind::all() {
            for i in 0..50 {
                let s = generate_sample(task, 1, i, 17);
                assert_eq!(s.tokens.len(), 17);
                assert!(s.tokens.iter().all(|&t| t < VOCAB));
            }
        }
    }

    #[test]
    fn labels_are_roughly_balanced() {
        for task in [TaskKind::Mrpc, TaskKind::Sst2, TaskKind::Qnli] {
            let ones: usize = (0..400)
                .map(|i| generate_sample(task, 11, i, 16).label.class())
                .sum();
            assert!(
                (100..300).contains(&ones),
                "{}: {ones}/400 positive",
                task.name()
            );
        }
    }

    #[test]
    fn stsb_scores_span_range() {
        let scores: Vec<f32> = (0..200)
            .map(|i| generate_sample(TaskKind::StsB, 13, i, 17).label.score())
            .collect();
        assert!(scores.iter().all(|s| (0.0..=5.0).contains(s)));
        assert!(scores.iter().any(|&s| s < 1.0));
        assert!(scores.iter().any(|&s| s > 4.0));
    }

    #[test]
    fn qnli_key_presence_matches_label() {
        for i in 0..100 {
            let s = generate_sample(TaskKind::Qnli, 17, i, 17);
            let half = (17 - 1) / 2;
            let key = s.tokens[0];
            let b = &s.tokens[half + 1..];
            let present = b.contains(&key);
            assert_eq!(present, s.label.class() == 1, "sample {i}");
        }
    }

    #[test]
    fn mrpc_paraphrases_are_permutations() {
        for i in 0..100 {
            let s = generate_sample(TaskKind::Mrpc, 19, i, 17);
            if s.label.class() == 1 {
                let half = (17 - 1) / 2;
                let mut a = s.tokens[..half].to_vec();
                let mut b = s.tokens[half + 1..half + 1 + half].to_vec();
                a.sort_unstable();
                b.sort_unstable();
                assert_eq!(a, b, "paraphrase sample {i} is not a permutation");
            }
        }
    }
}
