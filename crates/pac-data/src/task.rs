//! GLUE-analog task descriptors.

use serde::{Deserialize, Serialize};

/// The four GLUE tasks the paper evaluates (Table 2/3).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum TaskKind {
    /// Microsoft Research Paraphrase Corpus — sentence-pair classification.
    Mrpc,
    /// Semantic Textual Similarity Benchmark — regression on [0, 5].
    StsB,
    /// Stanford Sentiment Treebank — single-sentence classification.
    Sst2,
    /// Question NLI — question/answer entailment classification.
    Qnli,
}

impl TaskKind {
    /// All four tasks in the paper's column order.
    pub fn all() -> [TaskKind; 4] {
        [
            TaskKind::Mrpc,
            TaskKind::StsB,
            TaskKind::Sst2,
            TaskKind::Qnli,
        ]
    }

    /// Display name as in the paper's tables.
    pub fn name(&self) -> &'static str {
        match self {
            TaskKind::Mrpc => "MRPC",
            TaskKind::StsB => "STS-B",
            TaskKind::Sst2 => "SST-2",
            TaskKind::Qnli => "QNLI",
        }
    }

    /// Number of model outputs: classes for classification, 1 for
    /// regression.
    pub fn n_out(&self) -> usize {
        match self {
            TaskKind::StsB => 1,
            _ => 2,
        }
    }

    /// True for regression tasks (MSE loss instead of cross-entropy).
    pub fn is_regression(&self) -> bool {
        matches!(self, TaskKind::StsB)
    }

    /// Training-set size of the real GLUE task — drives the simulated
    /// training-duration experiments (Table 2).
    pub fn train_size(&self) -> usize {
        match self {
            TaskKind::Mrpc => 3_668,
            TaskKind::StsB => 5_749,
            TaskKind::Sst2 => 67_349,
            TaskKind::Qnli => 104_743,
        }
    }

    /// Fine-tuning epochs used by the paper: 3 for the small datasets
    /// (MRPC, STS-B, where the activation cache pays off), 1 for the large
    /// ones (SST-2, QNLI).
    pub fn paper_epochs(&self) -> usize {
        match self {
            TaskKind::Mrpc | TaskKind::StsB => 3,
            TaskKind::Sst2 | TaskKind::Qnli => 1,
        }
    }

    /// Metric reported in Table 3.
    pub fn metric_name(&self) -> &'static str {
        match self {
            TaskKind::Mrpc => "F1/Acc avg",
            TaskKind::StsB => "Pearson-Spearman",
            TaskKind::Sst2 | TaskKind::Qnli => "Accuracy",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn task_properties_match_paper() {
        assert_eq!(TaskKind::all().len(), 4);
        assert_eq!(TaskKind::Mrpc.paper_epochs(), 3);
        assert_eq!(TaskKind::StsB.paper_epochs(), 3);
        assert_eq!(TaskKind::Sst2.paper_epochs(), 1);
        assert_eq!(TaskKind::Qnli.paper_epochs(), 1);
        assert!(TaskKind::StsB.is_regression());
        assert_eq!(TaskKind::StsB.n_out(), 1);
        assert_eq!(TaskKind::Mrpc.n_out(), 2);
    }

    #[test]
    fn dataset_sizes_are_glue_sizes() {
        assert_eq!(TaskKind::Mrpc.train_size(), 3_668);
        assert_eq!(TaskKind::StsB.train_size(), 5_749);
        assert_eq!(TaskKind::Sst2.train_size(), 67_349);
        assert_eq!(TaskKind::Qnli.train_size(), 104_743);
        // Relative scale (SST-2 and QNLI dwarf MRPC/STS-B) drives Table 2.
        assert!(TaskKind::Qnli.train_size() > 20 * TaskKind::Mrpc.train_size());
    }
}
