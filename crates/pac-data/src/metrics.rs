//! Evaluation metrics matching the paper's Table 3 conventions.

use crate::task::TaskKind;

/// Classification accuracy.
pub fn accuracy(pred: &[usize], truth: &[usize]) -> f64 {
    assert_eq!(pred.len(), truth.len(), "prediction/target length mismatch");
    if pred.is_empty() {
        return 0.0;
    }
    let correct = pred.iter().zip(truth).filter(|(p, t)| p == t).count();
    correct as f64 / pred.len() as f64
}

/// Binary F1 with class `1` as positive.
pub fn f1_binary(pred: &[usize], truth: &[usize]) -> f64 {
    assert_eq!(pred.len(), truth.len(), "prediction/target length mismatch");
    let mut tp = 0.0;
    let mut fp = 0.0;
    let mut fne = 0.0;
    for (&p, &t) in pred.iter().zip(truth) {
        match (p, t) {
            (1, 1) => tp += 1.0,
            (1, 0) => fp += 1.0,
            (0, 1) => fne += 1.0,
            _ => {}
        }
    }
    if tp == 0.0 {
        return 0.0;
    }
    let precision = tp / (tp + fp);
    let recall = tp / (tp + fne);
    2.0 * precision * recall / (precision + recall)
}

/// Pearson correlation coefficient.
pub fn pearson(a: &[f32], b: &[f32]) -> f64 {
    assert_eq!(a.len(), b.len(), "series length mismatch");
    let n = a.len() as f64;
    if n < 2.0 {
        return 0.0;
    }
    let ma = a.iter().map(|&x| x as f64).sum::<f64>() / n;
    let mb = b.iter().map(|&x| x as f64).sum::<f64>() / n;
    let mut cov = 0.0;
    let mut va = 0.0;
    let mut vb = 0.0;
    for (&x, &y) in a.iter().zip(b) {
        let dx = x as f64 - ma;
        let dy = y as f64 - mb;
        cov += dx * dy;
        va += dx * dx;
        vb += dy * dy;
    }
    if va == 0.0 || vb == 0.0 {
        return 0.0;
    }
    cov / (va.sqrt() * vb.sqrt())
}

/// Spearman rank correlation (Pearson over average ranks).
pub fn spearman(a: &[f32], b: &[f32]) -> f64 {
    let ra = ranks(a);
    let rb = ranks(b);
    pearson(&ra, &rb)
}

fn ranks(x: &[f32]) -> Vec<f32> {
    let mut idx: Vec<usize> = (0..x.len()).collect();
    idx.sort_by(|&i, &j| x[i].partial_cmp(&x[j]).unwrap_or(std::cmp::Ordering::Equal));
    let mut out = vec![0.0f32; x.len()];
    let mut i = 0;
    while i < idx.len() {
        // Average ranks over ties.
        let mut j = i;
        while j + 1 < idx.len() && x[idx[j + 1]] == x[idx[i]] {
            j += 1;
        }
        let avg = (i + j) as f32 / 2.0 + 1.0;
        for &k in &idx[i..=j] {
            out[k] = avg;
        }
        i = j + 1;
    }
    out
}

/// The paper's per-task headline metric, scaled to [0, 100]:
/// MRPC → mean(F1, accuracy); STS-B → mean(Pearson, Spearman);
/// SST-2/QNLI → accuracy.
pub fn task_metric(
    task: TaskKind,
    class_pred: &[usize],
    class_truth: &[usize],
    score_pred: &[f32],
    score_truth: &[f32],
) -> f64 {
    match task {
        TaskKind::Mrpc => {
            100.0 * (f1_binary(class_pred, class_truth) + accuracy(class_pred, class_truth)) / 2.0
        }
        TaskKind::StsB => {
            100.0 * (pearson(score_pred, score_truth) + spearman(score_pred, score_truth)) / 2.0
        }
        TaskKind::Sst2 | TaskKind::Qnli => 100.0 * accuracy(class_pred, class_truth),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accuracy_basics() {
        assert_eq!(accuracy(&[1, 0, 1], &[1, 0, 0]), 2.0 / 3.0);
        assert_eq!(accuracy(&[], &[]), 0.0);
        assert_eq!(accuracy(&[1, 1], &[1, 1]), 1.0);
    }

    #[test]
    fn f1_known_values() {
        // tp=1, fp=1, fn=1 → p=0.5, r=0.5, f1=0.5
        assert_eq!(f1_binary(&[1, 1, 0], &[1, 0, 1]), 0.5);
        // No positive predictions → 0.
        assert_eq!(f1_binary(&[0, 0], &[1, 1]), 0.0);
        // Perfect.
        assert_eq!(f1_binary(&[1, 0, 1], &[1, 0, 1]), 1.0);
    }

    #[test]
    fn pearson_known_values() {
        let a = [1.0f32, 2.0, 3.0, 4.0];
        assert!((pearson(&a, &a) - 1.0).abs() < 1e-9);
        let neg: Vec<f32> = a.iter().map(|x| -x).collect();
        assert!((pearson(&a, &neg) + 1.0).abs() < 1e-9);
        let c = [5.0f32, 5.0, 5.0, 5.0];
        assert_eq!(pearson(&a, &c), 0.0);
    }

    #[test]
    fn spearman_is_rank_invariant() {
        // Monotone transform preserves Spearman exactly.
        let a = [1.0f32, 2.0, 3.0, 4.0, 5.0];
        let b: Vec<f32> = a.iter().map(|x| x.exp()).collect();
        assert!((spearman(&a, &b) - 1.0).abs() < 1e-9);
        // But not Pearson.
        assert!(pearson(&a, &b) < 1.0);
    }

    #[test]
    fn ranks_handle_ties() {
        let r = ranks(&[1.0, 2.0, 2.0, 3.0]);
        assert_eq!(r, vec![1.0, 2.5, 2.5, 4.0]);
    }

    #[test]
    fn task_metric_dispatch() {
        let cp = [1usize, 0, 1, 1];
        let ct = [1usize, 0, 1, 0];
        let sp = [1.0f32, 2.0, 3.0];
        let st = [1.1f32, 2.2, 2.9];
        assert!(task_metric(TaskKind::Sst2, &cp, &ct, &[], &[]) == 75.0);
        let mrpc = task_metric(TaskKind::Mrpc, &cp, &ct, &[], &[]);
        assert!(mrpc > 70.0 && mrpc < 90.0);
        let stsb = task_metric(TaskKind::StsB, &[], &[], &sp, &st);
        assert!(stsb > 90.0);
    }
}
