//! A small deterministic tokenizer mapping text to the synthetic
//! vocabulary, so examples and downstream users can feed real strings to
//! the micro models.
//!
//! The tokenizer is intentionally simple — lowercase word-level hashing
//! into the content-token range — because the micro models' vocabulary is
//! 64 ids. It is *stable*: the same word always maps to the same id, so
//! personalization data tokenizes consistently across sessions, which is
//! what the activation cache keys rely on.

use crate::synth::VOCAB;

/// Reserved token ids (shared with the synthetic generators).
pub const PAD: usize = 0;
/// Sequence-start token.
pub const START: usize = 1;
/// Segment separator.
pub const SEP: usize = 2;
/// Unknown/rare-word token.
pub const UNK: usize = 3;
const CONTENT_START: usize = 4;

/// Word-level hashing tokenizer over the synthetic vocabulary.
#[derive(Debug, Clone, Default)]
pub struct Tokenizer;

impl Tokenizer {
    /// Creates the tokenizer.
    pub fn new() -> Self {
        Tokenizer
    }

    /// Vocabulary size (fixed, shared with the synthetic tasks).
    pub fn vocab_size(&self) -> usize {
        VOCAB
    }

    /// Maps one word to a stable content-token id.
    pub fn token_for_word(&self, word: &str) -> usize {
        if word.is_empty() {
            return UNK;
        }
        // FNV-1a over the lowercased bytes: stable across platforms.
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in word.bytes() {
            let lb = b.to_ascii_lowercase();
            h ^= lb as u64;
            h = h.wrapping_mul(0x1000_0000_01b3);
        }
        CONTENT_START + (h as usize) % (VOCAB - CONTENT_START)
    }

    /// Tokenizes `text` into exactly `seq_len` ids (whitespace-split words,
    /// truncated or PAD-padded).
    pub fn encode(&self, text: &str, seq_len: usize) -> Vec<usize> {
        let mut out: Vec<usize> = text
            .split_whitespace()
            .take(seq_len)
            .map(|w| self.token_for_word(w))
            .collect();
        out.resize(seq_len, PAD);
        out
    }

    /// Tokenizes a sentence pair as `A SEP B`, fitting `seq_len`.
    pub fn encode_pair(&self, a: &str, b: &str, seq_len: usize) -> Vec<usize> {
        let half = (seq_len.saturating_sub(1)) / 2;
        let mut out: Vec<usize> = a
            .split_whitespace()
            .take(half)
            .map(|w| self.token_for_word(w))
            .collect();
        out.resize(half, PAD);
        out.push(SEP);
        let mut bs: Vec<usize> = b
            .split_whitespace()
            .take(seq_len - half - 1)
            .map(|w| self.token_for_word(w))
            .collect();
        bs.resize(seq_len - half - 1, PAD);
        out.extend(bs);
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn encoding_is_stable_and_case_insensitive() {
        let t = Tokenizer::new();
        assert_eq!(t.token_for_word("lights"), t.token_for_word("LIGHTS"));
        assert_eq!(
            t.encode("turn on the lights", 8),
            t.encode("turn on the lights", 8)
        );
        // With only 60 content buckets individual collisions happen; the
        // requirement is that a small vocabulary still spreads out.
        let words = [
            "lights", "music", "heating", "door", "window", "alarm", "oven", "fan", "tv", "lock",
        ];
        let distinct: std::collections::HashSet<usize> =
            words.iter().map(|w| t.token_for_word(w)).collect();
        assert!(distinct.len() >= 6, "only {} distinct ids", distinct.len());
    }

    #[test]
    fn tokens_stay_in_vocab() {
        let t = Tokenizer::new();
        for word in ["a", "zebra", "Hello!", "42", "ß", ""] {
            assert!(t.token_for_word(word) < VOCAB);
        }
        let ids = t.encode("one two three four five six seven eight nine", 6);
        assert_eq!(ids.len(), 6);
        assert!(ids.iter().all(|&i| i < VOCAB));
    }

    #[test]
    fn padding_and_truncation() {
        let t = Tokenizer::new();
        let short = t.encode("hi", 5);
        assert_eq!(short.len(), 5);
        assert_eq!(&short[1..], &[PAD; 4]);
        let long = t.encode("a b c d e f g h", 3);
        assert_eq!(long.len(), 3);
        assert!(long.iter().all(|&i| i >= 4));
    }

    #[test]
    fn pair_encoding_has_separator() {
        let t = Tokenizer::new();
        let ids = t.encode_pair("is the heating on", "yes it is", 9);
        assert_eq!(ids.len(), 9);
        assert_eq!(ids[4], SEP);
    }

    #[test]
    fn encodings_feed_models() {
        // End-to-end: tokenized text runs through a micro model.
        use pac_tensor::rng::seeded;
        let t = Tokenizer::new();
        let cfg = pac_model_stub();
        let model = pac_model::EncDecModel::new(&cfg, 2, &mut seeded(1));
        let batch = vec![
            t.encode("turn on the lights", 6),
            t.encode("play some music", 6),
        ];
        let (logits, _) = model.forward(&batch).unwrap();
        assert_eq!(logits.dims(), &[2, 2]);
    }

    fn pac_model_stub() -> pac_model::ModelConfig {
        pac_model::ModelConfig::micro(1, 1, 16, 2)
    }
}
