//! # pac-data
//!
//! Synthetic GLUE-analog workloads for the PAC reproduction.
//!
//! The paper evaluates on four GLUE tasks — MRPC (paraphrase), STS-B
//! (semantic similarity regression), SST-2 (sentiment) and QNLI (question
//! NLI). Pretrained checkpoints and the real datasets are unavailable
//! offline, so this crate generates *synthetic analogs* with the same task
//! **types**, the same **relative dataset sizes**, and planted structure a
//! micro-scale transformer can actually learn:
//!
//! | Task  | Type                      | Synthetic structure                         |
//! |-------|---------------------------|---------------------------------------------|
//! | MRPC  | sentence-pair classification | is segment B a permutation of segment A? |
//! | STS-B | sentence-pair regression  | target = token-overlap fraction × 5          |
//! | SST-2 | single-sentence classification | majority sentiment-vocabulary vote     |
//! | QNLI  | question/answer entailment | does segment B contain A's "answer" token? |
//!
//! Time/memory experiments depend only on sample counts × sequence length
//! (which match the paper); quality experiments (Table 3) compare
//! fine-tuning *techniques* against each other on identical data, which the
//! substitution preserves.

#![deny(missing_docs)]

pub mod dataset;
pub mod metrics;
pub mod synth;
pub mod task;
pub mod tokenizer;

pub use dataset::{Batch, Dataset};
pub use synth::{Label, Sample};
pub use task::TaskKind;
pub use tokenizer::Tokenizer;
