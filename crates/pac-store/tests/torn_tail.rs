//! Torn-tail recovery matrix: crash {at the record boundary, mid-blob,
//! inside the commit record, inside the CRC trailer, after the commit} ×
//! {zero, one, many} prior committed snapshots. In every cell `open()`
//! must land on the last *committed* snapshot and report exactly how many
//! torn bytes it truncated — never an error, never a panic, never a
//! half-decoded record.
//!
//! The crash offsets are not guessed: they are derived from the record
//! framing (`HEADER(10) + payload + crc(4)`), so "inside the commit
//! record" really is inside the commit record.

use pac_store::{Committed, DiskStore, Store, StoreError, CHUNK_BYTES};
use proptest::prelude::*;
use std::fs;
use std::path::PathBuf;

/// Framing overhead of one record: magic+version+tag+len before the
/// payload, CRC after it.
const FRAME: u64 = 10 + 4;

fn tmp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("pac-store-torn-{tag}-{}", std::process::id()));
    let _ = fs::remove_dir_all(&dir);
    dir
}

/// Payload of snapshot `i`: unique bytes, single chunk.
fn payload(i: usize) -> Vec<u8> {
    (0..100u8)
        .map(|j| j.wrapping_mul(31).wrapping_add(i as u8))
        .collect()
}

fn meta(i: usize) -> Vec<u8> {
    (i as u64).to_le_bytes().to_vec()
}

/// Encoded size of the blob record the final commit writes (one fresh
/// 100-byte chunk, keyed by an 8-byte hash).
const BLOB_BYTES: u64 = FRAME + 8 + 100;
/// Encoded size of the final commit record: seq + snapshot-len + meta-len
/// + 8-byte meta + chunk-count + one hash.
const COMMIT_BYTES: u64 = FRAME + 8 + 8 + 4 + 8 + 4 + 8;

#[test]
fn torn_tail_matrix_recovers_to_last_commit() {
    // (label, crash byte offset into the final commit, torn bytes the
    // recovery must truncate, does the final commit survive?)
    let cuts: [(&str, u64, u64, bool); 6] = [
        // Killed before a single byte of the append lands.
        ("before-any-byte", 0, 0, false),
        // Killed mid-blob: the partial blob is the torn tail.
        ("mid-blob", 60, 60, false),
        // Killed exactly between the blob and the commit record: the blob
        // is a complete record, so nothing is torn — but nothing is
        // committed either.
        ("blob-boundary", BLOB_BYTES, 0, false),
        // Killed inside the commit record body.
        ("inside-commit", BLOB_BYTES + 27, 27, false),
        // Killed inside the commit record's CRC trailer.
        (
            "inside-crc",
            BLOB_BYTES + COMMIT_BYTES - 2,
            COMMIT_BYTES - 2,
            false,
        ),
        // Killed only after the commit record is fully durable: the
        // snapshot survives.
        ("after-commit", BLOB_BYTES + COMMIT_BYTES, 0, true),
    ];

    for prior in [0usize, 1, 3] {
        for &(label, at_byte, want_torn, survives) in &cuts {
            let dir = tmp_dir(&format!("matrix-{prior}-{label}"));
            {
                let (mut store, _) = DiskStore::open(&dir).expect("open fresh");
                for i in 0..prior {
                    store.commit(&payload(i), &meta(i)).expect("prior commit");
                }
                store.arm_crash(at_byte);
                let outcome = store.commit(&payload(99), &meta(99));
                if survives {
                    assert!(outcome.is_ok(), "[{prior}/{label}] commit fits the budget");
                } else {
                    assert!(
                        matches!(outcome, Err(StoreError::Injected { .. })),
                        "[{prior}/{label}] expected injected crash, got {outcome:?}"
                    );
                }
            }

            let (store, report) = DiskStore::open(&dir).expect("recovery open");
            assert_eq!(
                report.truncated_bytes, want_torn,
                "[{prior}/{label}] torn byte report"
            );
            let latest = store.latest().expect("latest after recovery");
            let want: Option<(Vec<u8>, Vec<u8>)> = if survives {
                Some((payload(99), meta(99)))
            } else if prior > 0 {
                Some((payload(prior - 1), meta(prior - 1)))
            } else {
                None
            };
            match (latest, want) {
                (None, None) => {}
                (
                    Some(Committed {
                        payload: p,
                        meta: m,
                        ..
                    }),
                    Some((wp, wm)),
                ) => {
                    assert_eq!(p, wp, "[{prior}/{label}] recovered payload");
                    assert_eq!(m, wm, "[{prior}/{label}] recovered meta");
                }
                (got, want) => {
                    panic!("[{prior}/{label}] latest mismatch: got {got:?}, want {want:?}")
                }
            }
            // Recovery leaves a writable store: the next commit must land.
            let mut store = store;
            store
                .commit(&payload(7), &meta(7))
                .expect("post-recovery commit");
            fs::remove_dir_all(&dir).ok();
        }
    }
}

/// A crashed writer's orphaned blob is reused by the retried commit after
/// recovery: the chunk already sits in the log, so the retry only pays
/// for its commit record.
#[test]
fn orphaned_blob_is_deduped_on_retry() {
    let dir = tmp_dir("orphan-dedup");
    {
        let (mut store, _) = DiskStore::open(&dir).expect("open");
        store.commit(&payload(0), &meta(0)).expect("commit 0");
        // Die inside the commit record: the blob survives as an orphan.
        store.arm_crash(BLOB_BYTES + 5);
        let _ = store.commit(&payload(1), &meta(1));
    }
    let (mut store, _) = DiskStore::open(&dir).expect("recover");
    let before = store.bytes_written();
    store.commit(&payload(1), &meta(1)).expect("retry");
    let cost = store.bytes_written() - before;
    assert!(
        cost < BLOB_BYTES,
        "retry rewrote the orphaned blob: {cost} bytes"
    );
    let last = store.latest().expect("latest").expect("some");
    assert_eq!(last.payload, payload(1));
    fs::remove_dir_all(&dir).ok();
}

/// Trailing garbage after the last commit (a torn append from a dying
/// writer) is truncated and reported, byte for byte.
#[test]
fn trailing_garbage_is_truncated_and_reported() {
    let dir = tmp_dir("garbage");
    {
        let (mut store, _) = DiskStore::open(&dir).expect("open");
        store.commit(&payload(0), &meta(0)).expect("commit");
    }
    let seg = dir.join("seg-000000.wal");
    let mut bytes = fs::read(&seg).expect("read segment");
    bytes.extend_from_slice(&[0xde, 0xad, 0xbe, 0xef, 0x01]);
    fs::write(&seg, &bytes).expect("write garbage");

    let (store, report) = DiskStore::open(&dir).expect("recover");
    assert_eq!(report.truncated_bytes, 5);
    assert_eq!(report.commits, 1);
    let last = store.latest().expect("latest").expect("some");
    assert_eq!(last.payload, payload(0));
    fs::remove_dir_all(&dir).ok();
}

// Any single flipped byte anywhere in the log is caught by a CRC (or the
// blob content hash): open() truncates from the damaged record onward and
// recovers the last commit before it — it never decodes damaged bytes and
// never panics.
proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn any_single_byte_flip_truncates_from_the_damage(
        pos_seed in 0usize..10_000,
        mask in 1u8..=255,
        case in 0u32..1_000_000,
    ) {
        let dir = tmp_dir(&format!("flip-{case}"));
        let mut ends = Vec::new();
        {
            let (mut store, _) = DiskStore::open(&dir).expect("open");
            for i in 0..3 {
                store.commit(&payload(i), &meta(i)).expect("commit");
                ends.push(store.bytes_written());
            }
        }
        let seg = dir.join("seg-000000.wal");
        let mut bytes = fs::read(&seg).expect("read segment");
        let pos = pos_seed % bytes.len();
        bytes[pos] ^= mask;
        fs::write(&seg, &bytes).expect("write flipped");

        let (store, report) = DiskStore::open(&dir).expect("recover");
        // The last commit whose record ends at or before the damage
        // survives; everything from the damaged record on is gone.
        let survivors = ends.iter().filter(|&&e| e <= pos as u64).count();
        prop_assert_eq!(report.commits, survivors as u64);
        let latest = store.latest().expect("latest");
        match survivors {
            0 => prop_assert!(latest.is_none()),
            n => {
                let got = latest.expect("some");
                prop_assert_eq!(got.payload, payload(n - 1));
            }
        }
        prop_assert!(report.truncated_bytes > 0);
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn any_truncation_recovers_a_committed_prefix(
        cut_seed in 0usize..10_000,
        case in 0u32..1_000_000,
    ) {
        let dir = tmp_dir(&format!("cut-{case}"));
        let mut ends = Vec::new();
        {
            let (mut store, _) = DiskStore::open(&dir).expect("open");
            for i in 0..3 {
                // Two chunks each so cuts can land between blob and commit.
                let mut p = payload(i);
                p.extend(vec![i as u8; CHUNK_BYTES]);
                store.commit(&p, &meta(i)).expect("commit");
                ends.push(store.bytes_written());
            }
        }
        let seg = dir.join("seg-000000.wal");
        let bytes = fs::read(&seg).expect("read segment");
        let cut = cut_seed % (bytes.len() + 1);
        fs::write(&seg, &bytes[..cut]).expect("truncate");

        let (store, report) = DiskStore::open(&dir).expect("recover");
        let survivors = ends.iter().filter(|&&e| e <= cut as u64).count();
        prop_assert_eq!(report.commits, survivors as u64);
        let latest = store.latest().expect("latest");
        match survivors {
            0 => prop_assert!(latest.is_none()),
            n => {
                let got = latest.expect("some");
                let mut want = payload(n - 1);
                want.extend(vec![(n - 1) as u8; CHUNK_BYTES]);
                prop_assert_eq!(got.payload, want);
            }
        }
        fs::remove_dir_all(&dir).ok();
    }
}
