//! Cross-tenant dedup accounting: two near-identical personal adapter
//! checkpoints — same backbone, same shapes, only one tenant's personal
//! head weights differing — must share the majority of their 4 KiB chunk
//! bytes when committed through the same store. This is the property that
//! lets a registry hold thousands of per-tenant adapters at a fraction of
//! their summed serialized size.

use pac_model::{EncDecModel, ModelConfig};
use pac_peft::{ParallelTuner, TrainCheckpoint};
use pac_store::{DedupStats, MemStore, Store, CHUNK_BYTES};
use pac_tensor::rng::seeded;

/// A tuner big enough that one adapter checkpoint spans several chunks
/// (the micro config used elsewhere fits in a single chunk, where a
/// one-byte difference would trivially defeat chunk-granular dedup).
fn tuner(seed: u64) -> ParallelTuner {
    let cfg = ModelConfig::micro(2, 1, 64, 2);
    let model = EncDecModel::new(&cfg, 2, &mut seeded(seed));
    ParallelTuner::new(model, 4, 2, &mut seeded(seed + 1))
}

#[test]
fn near_identical_adapter_checkpoints_share_most_chunk_bytes() {
    let mut t = tuner(400);
    let bytes_a = TrainCheckpoint::capture(&t, 0, 0, 0)
        .to_bytes()
        .expect("serialize tenant A");
    assert!(
        bytes_a.len() >= 3 * CHUNK_BYTES,
        "checkpoint too small ({} bytes) to exercise chunk dedup",
        bytes_a.len()
    );

    // Tenant B's adapter differs only in its personal head weights — the
    // last parameters in serialization order, so the shared prefix maps to
    // identical chunks.
    for v in t.side.head.w.value.data_mut() {
        *v += 1e-3;
    }
    let bytes_b = TrainCheckpoint::capture(&t, 0, 0, 0)
        .to_bytes()
        .expect("serialize tenant B");
    assert_ne!(bytes_a, bytes_b, "perturbation must change the bytes");
    assert_eq!(bytes_a.len(), bytes_b.len());

    let mut store = MemStore::new();
    store.commit(&bytes_a, b"tenant-a/v0").expect("commit A");
    assert_eq!(store.dedup_stats(), DedupStats::default());
    store.commit(&bytes_b, b"tenant-b/v0").expect("commit B");

    let stats = store.dedup_stats();
    assert!(
        stats.bytes_shared * 2 > bytes_b.len() as u64,
        "near-identical adapters shared only {} of {} bytes",
        stats.bytes_shared,
        bytes_b.len()
    );
    assert!(stats.chunks_deduped >= 2);
    // The store's resident chunk bytes grew by less than half a checkpoint.
    assert!(store.chunk_bytes() < bytes_a.len() as u64 + bytes_b.len() as u64 / 2);

    // Both tenants still read back bit-identical.
    let a = store.committed(0).expect("read A").expect("some");
    let b = store.committed(1).expect("read B").expect("some");
    assert_eq!(a.payload, bytes_a);
    assert_eq!(b.payload, bytes_b);
}
