//! `pac-store`: a crash-safe, append-only segment log for checkpoint
//! snapshots.
//!
//! Every recovery path in the workspace (session rollback, elastic
//! catch-up, the distributed driver's `checkpoint_every` snapshots)
//! ultimately serializes a `PACCKPT2` blob. This crate gives those blobs a
//! durable home that survives `kill -9`:
//!
//! ```text
//! segment file  seg-000000.wal (rotated at a byte threshold)
//!
//!   record  := magic "PACS" · version u8 · tag u8 · len u32 LE
//!              · payload[len] · crc u32 LE        (FNV-1a over
//!                                                  version..payload)
//!   blob    := tag 1, payload = chunk-hash u64 LE · chunk bytes
//!   commit  := tag 2, payload = seq u64 · snapshot-len u64
//!              · meta-len u32 · meta · chunk-count u32 · hash u64 ...
//! ```
//!
//! **Atomicity.** A snapshot is written as its missing chunk blobs, an
//! `fsync` barrier, then one commit record, then a second `fsync`. A crash
//! at *any* byte offset therefore leaves either (a) a fully committed
//! snapshot, or (b) a torn tail after the last commit record. [`DiskStore::open`]
//! scans the log front to back verifying every CRC; the first invalid or
//! incomplete record and everything after it is truncated away — never
//! decoded, never panicking — and the dropped byte count is reported in a
//! typed [`OpenReport`]. Recovery always lands on the last *committed*
//! snapshot.
//!
//! **Dedup.** Snapshot payloads are chunked and keyed by content hash
//! (64-bit FNV-1a), so near-identical checkpoints — e.g. per-tenant
//! adapter deltas that share a frozen backbone — reuse each other's blob
//! records. Hash collisions cannot corrupt data: a dedup hit is only taken
//! when the stored chunk bytes compare equal.
//!
//! Failures are typed [`StoreError`]s in the same discipline as
//! `pac-net`'s `NetError`: malformed input is rejected, never unwrapped.
//! The [`CrashPoint`] adversary tears the writer down at a seeded byte
//! offset mid-append — the in-process equivalent of `kill -9` — so tests
//! can prove the recovery contract at every offset.

#![deny(missing_docs)]
#![forbid(unsafe_code)]

use std::collections::HashMap;
use std::fmt;
use std::fs::{self, File, OpenOptions};
use std::io::{self, Read, Write};
use std::path::{Path, PathBuf};

/// First bytes of every record.
pub const MAGIC: [u8; 4] = *b"PACS";
/// On-disk format version.
pub const VERSION: u8 = 1;
/// Chunk size for content-addressed dedup. Small enough that an adapter
/// delta maps to a handful of chunks, large enough to amortize framing.
pub const CHUNK_BYTES: usize = 4096;

const TAG_BLOB: u8 = 1;
const TAG_COMMIT: u8 = 2;
/// Refuse absurd payload lengths outright instead of allocating them.
const MAX_PAYLOAD: u32 = 256 * 1024 * 1024;
/// Record header: magic + version + tag + len.
const HEADER: usize = 4 + 1 + 1 + 4;
/// Default segment rotation threshold.
const DEFAULT_SEGMENT_BYTES: u64 = 8 * 1024 * 1024;

const FNV32_BASIS: u32 = 0x811c_9dc5;
const FNV32_PRIME: u32 = 0x0100_0193;
const FNV64_BASIS: u64 = 0xcbf2_9ce4_8422_2325;
const FNV64_PRIME: u64 = 0x0000_0100_0000_01b3;

fn fnv1a32(mut h: u32, bytes: &[u8]) -> u32 {
    for &b in bytes {
        h ^= b as u32;
        h = h.wrapping_mul(FNV32_PRIME);
    }
    h
}

/// 32-bit FNV-1a record checksum — the same framing idiom as
/// `pac-net::wire::checksum`.
pub fn checksum(bytes: &[u8]) -> u32 {
    fnv1a32(FNV32_BASIS, bytes)
}

/// 64-bit FNV-1a content hash used as the dedup key for snapshot chunks.
pub fn content_hash(bytes: &[u8]) -> u64 {
    let mut h = FNV64_BASIS;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(FNV64_PRIME);
    }
    h
}

/// A typed failure of the store. Same discipline as `NetError`: corrupt or
/// torn input is rejected with a diagnosis, never decoded and never a
/// panic.
#[derive(Debug)]
pub enum StoreError {
    /// Underlying filesystem I/O failed.
    Io(io::Error),
    /// A record did not start with [`MAGIC`] where one was required.
    BadMagic([u8; 4]),
    /// A record carried an unknown format version.
    BadVersion(u8),
    /// A record carried an unknown tag.
    BadTag(u8),
    /// A record's CRC trailer did not match its contents.
    BadChecksum {
        /// CRC computed over the received bytes.
        expected: u32,
        /// CRC carried in the record trailer.
        got: u32,
    },
    /// A record declared a payload longer than the store accepts.
    Oversize(u64),
    /// A structurally invalid record or commit (bad lengths, missing
    /// chunks, hash mismatch).
    Malformed(&'static str),
    /// The [`CrashPoint`] adversary tore the writer down mid-append. The
    /// store behaves as a killed process from here on: every further write
    /// fails with this error.
    Injected {
        /// Byte offset (from arming) at which the writer died.
        at_byte: u64,
    },
}

impl fmt::Display for StoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StoreError::Io(e) => write!(f, "store I/O error: {e}"),
            StoreError::BadMagic(m) => write!(f, "bad record magic {m:02x?}"),
            StoreError::BadVersion(v) => write!(f, "unsupported store version {v}"),
            StoreError::BadTag(t) => write!(f, "unknown record tag {t}"),
            StoreError::BadChecksum { expected, got } => {
                write!(
                    f,
                    "record checksum mismatch: expected {expected:#010x}, got {got:#010x}"
                )
            }
            StoreError::Oversize(n) => write!(f, "record payload of {n} bytes exceeds limit"),
            StoreError::Malformed(why) => write!(f, "malformed record: {why}"),
            StoreError::Injected { at_byte } => {
                write!(
                    f,
                    "writer killed by crash point {at_byte} bytes into an append"
                )
            }
        }
    }
}

impl std::error::Error for StoreError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            StoreError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<io::Error> for StoreError {
    fn from(e: io::Error) -> Self {
        StoreError::Io(e)
    }
}

/// The crash adversary: kills the writer after `at_byte` more bytes reach
/// the log, mid-record if that is where the offset lands — including
/// inside a commit record. The in-process equivalent of `kill -9`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CrashPoint {
    /// How many more bytes the writer is allowed to append before dying.
    pub at_byte: u64,
}

/// One committed snapshot read back from a store.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Committed {
    /// Monotonic commit sequence number (0-based).
    pub seq: u64,
    /// The snapshot payload, bit-identical to what was committed.
    pub payload: Vec<u8>,
    /// Caller-owned cursor metadata committed alongside the payload.
    pub meta: Vec<u8>,
}

/// Cross-tenant dedup accounting: how much payload a store *didn't* have
/// to hold because a commit referenced chunks an earlier commit already
/// stored. Near-identical personal adapters (same backbone, same shapes,
/// slightly different weights) share most of their 4 KiB chunks, so these
/// numbers are the registry's "bytes saved by multi-tenancy" ledger.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DedupStats {
    /// Chunk references resolved against an already-resident chunk.
    pub chunks_deduped: u64,
    /// Payload bytes those shared chunks covered (the storage avoided).
    pub bytes_shared: u64,
}

fn note_dedup(stats: &mut DedupStats, chunk_len: usize) {
    stats.chunks_deduped += 1;
    stats.bytes_shared += chunk_len as u64;
    pac_telemetry::counter_inc("store.dedup_hits");
    pac_telemetry::counter_inc("store.chunks_deduped");
    pac_telemetry::counter_add("store.bytes_shared", chunk_len as u64);
}

/// Reassembles a committed payload from its chunk-hash list.
fn reassemble(
    chunks: &HashMap<u64, Vec<u8>>,
    hashes: &[u64],
    payload_len: u64,
) -> Result<Vec<u8>, StoreError> {
    let mut payload = Vec::with_capacity((payload_len as usize).min(1 << 20));
    for h in hashes {
        let chunk = chunks
            .get(h)
            .ok_or(StoreError::Malformed("committed chunk missing from log"))?;
        payload.extend_from_slice(chunk);
    }
    if payload.len() as u64 != payload_len {
        return Err(StoreError::Malformed(
            "reassembled snapshot length mismatch",
        ));
    }
    Ok(payload)
}

/// What [`DiskStore::open`] found and did: how much log it scanned, how
/// many commits survived, and how many torn-tail bytes it truncated.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct OpenReport {
    /// Segment files present after recovery.
    pub segments: usize,
    /// Committed snapshots found in the log.
    pub commits: u64,
    /// Unique chunk blobs found in the log.
    pub blobs: usize,
    /// Valid log bytes retained.
    pub bytes_kept: u64,
    /// Torn or corrupt tail bytes truncated away (0 for a clean log).
    pub truncated_bytes: u64,
}

/// Durable snapshot sink the recovery stack persists through. The
/// in-memory impl ([`MemStore`]) keeps every existing in-process test
/// byte-identical; [`DiskStore`] survives `kill -9`.
pub trait Store {
    /// Atomically commits one snapshot payload plus caller cursor
    /// metadata; returns the commit sequence number.
    fn commit(&mut self, payload: &[u8], meta: &[u8]) -> Result<u64, StoreError>;
    /// The latest committed snapshot, if any.
    fn latest(&self) -> Result<Option<Committed>, StoreError>;
    /// The snapshot committed with sequence number `seq`, if it exists.
    /// Stores retain every commit, so a registry layered on top can pin a
    /// tenant to a historical adapter version, not just the newest one.
    fn committed(&self, seq: u64) -> Result<Option<Committed>, StoreError>;
    /// Number of snapshots committed so far (including recovered ones).
    fn commits(&self) -> u64;
    /// Cross-commit chunk sharing observed through this handle.
    fn dedup_stats(&self) -> DedupStats {
        DedupStats::default()
    }
    /// Arms the [`CrashPoint`] adversary: the writer dies `at_byte` bytes
    /// into its subsequent appends. No-op for stores without a writer to
    /// kill (the in-memory impl).
    fn arm_crash(&mut self, at_byte: u64) {
        let _ = at_byte;
    }
}

/// Volatile [`Store`]: commits live in process memory, chunked and
/// content-addressed exactly like [`DiskStore`] (same 4 KiB chunks, same
/// dedup key, same collision rejection) but with no durability. The
/// default store for in-process tests and the loopback serve demo, where
/// dedup accounting still matters but `kill -9` does not.
#[derive(Debug, Default)]
pub struct MemStore {
    chunks: HashMap<u64, Vec<u8>>,
    // Per commit: chunk-hash list, payload length, caller metadata.
    log: Vec<(Vec<u64>, u64, Vec<u8>)>,
    stats: DedupStats,
}

impl MemStore {
    /// An empty in-memory store.
    pub fn new() -> Self {
        Self::default()
    }

    /// Bytes held by unique chunks (what dedup actually keeps resident).
    pub fn chunk_bytes(&self) -> u64 {
        self.chunks.values().map(|c| c.len() as u64).sum()
    }
}

impl Store for MemStore {
    fn commit(&mut self, payload: &[u8], meta: &[u8]) -> Result<u64, StoreError> {
        let mut hashes = Vec::with_capacity(payload.len() / CHUNK_BYTES + 1);
        for chunk in payload.chunks(CHUNK_BYTES) {
            let hash = content_hash(chunk);
            hashes.push(hash);
            match self.chunks.get(&hash) {
                Some(existing) if existing == chunk => {
                    note_dedup(&mut self.stats, chunk.len());
                }
                Some(_) => return Err(StoreError::Malformed("chunk hash collision")),
                None => {
                    self.chunks.insert(hash, chunk.to_vec());
                }
            }
        }
        self.log.push((hashes, payload.len() as u64, meta.to_vec()));
        Ok(self.log.len() as u64 - 1)
    }

    fn latest(&self) -> Result<Option<Committed>, StoreError> {
        self.committed(self.log.len().wrapping_sub(1) as u64)
    }

    fn committed(&self, seq: u64) -> Result<Option<Committed>, StoreError> {
        let Some((hashes, payload_len, meta)) = self.log.get(seq as usize) else {
            return Ok(None);
        };
        Ok(Some(Committed {
            seq,
            payload: reassemble(&self.chunks, hashes, *payload_len)?,
            meta: meta.clone(),
        }))
    }

    fn commits(&self) -> u64 {
        self.log.len() as u64
    }

    fn dedup_stats(&self) -> DedupStats {
        self.stats
    }
}

/// Append-only, CRC-framed, crash-safe [`Store`] over a directory of
/// segment files. See the crate docs for the format and the recovery
/// contract.
pub struct DiskStore {
    dir: PathBuf,
    seg_index: u64,
    seg_file: File,
    seg_len: u64,
    segment_bytes: u64,
    segments: usize,
    chunks: HashMap<u64, Vec<u8>>,
    // Per commit, indexed by seq: chunk-hash list, payload length, meta.
    log: Vec<(Vec<u64>, u64, Vec<u8>)>,
    commits: u64,
    commit_sizes: Vec<u64>,
    bytes_written: u64,
    stats: DedupStats,
    crash: Option<(u64, u64)>,
}

fn segment_path(dir: &Path, index: u64) -> PathBuf {
    dir.join(format!("seg-{index:06}.wal"))
}

fn encode_record(tag: u8, payload: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(HEADER + payload.len() + 4);
    out.extend_from_slice(&MAGIC);
    out.push(VERSION);
    out.push(tag);
    out.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    out.extend_from_slice(payload);
    let crc = checksum(&out[4..]);
    out.extend_from_slice(&crc.to_le_bytes());
    out
}

/// One record parsed off the log during the open scan.
enum Record<'a> {
    Blob {
        hash: u64,
        data: &'a [u8],
    },
    Commit {
        seq: u64,
        payload_len: u64,
        meta: &'a [u8],
        hashes: Vec<u64>,
    },
}

/// Parses the record starting at `bytes[0..]`. Returns the record and its
/// total encoded length, or a typed reason the bytes are not a record —
/// the open scan treats any error as the start of the torn tail.
fn parse_record(bytes: &[u8]) -> Result<(Record<'_>, usize), StoreError> {
    if bytes.len() < HEADER + 4 {
        return Err(StoreError::Malformed("incomplete record header"));
    }
    if bytes[..4] != MAGIC {
        let mut m = [0u8; 4];
        m.copy_from_slice(&bytes[..4]);
        return Err(StoreError::BadMagic(m));
    }
    if bytes[4] != VERSION {
        return Err(StoreError::BadVersion(bytes[4]));
    }
    let tag = bytes[5];
    let len = u32::from_le_bytes([bytes[6], bytes[7], bytes[8], bytes[9]]);
    if len > MAX_PAYLOAD {
        return Err(StoreError::Oversize(len as u64));
    }
    let total = HEADER + len as usize + 4;
    if bytes.len() < total {
        return Err(StoreError::Malformed("record extends past end of segment"));
    }
    let payload = &bytes[HEADER..HEADER + len as usize];
    let got = u32::from_le_bytes([
        bytes[total - 4],
        bytes[total - 3],
        bytes[total - 2],
        bytes[total - 1],
    ]);
    let expected = checksum(&bytes[4..HEADER + len as usize]);
    if got != expected {
        return Err(StoreError::BadChecksum { expected, got });
    }
    let record = match tag {
        TAG_BLOB => {
            if payload.len() < 8 {
                return Err(StoreError::Malformed("blob record shorter than its hash"));
            }
            let hash = u64::from_le_bytes(payload[..8].try_into().expect("8 bytes"));
            let data = &payload[8..];
            if content_hash(data) != hash {
                return Err(StoreError::Malformed(
                    "blob content does not match its hash",
                ));
            }
            Record::Blob { hash, data }
        }
        TAG_COMMIT => {
            if payload.len() < 8 + 8 + 4 {
                return Err(StoreError::Malformed("commit record header truncated"));
            }
            let seq = u64::from_le_bytes(payload[..8].try_into().expect("8 bytes"));
            let payload_len = u64::from_le_bytes(payload[8..16].try_into().expect("8 bytes"));
            let meta_len =
                u32::from_le_bytes(payload[16..20].try_into().expect("4 bytes")) as usize;
            let rest = &payload[20..];
            if rest.len() < meta_len + 4 {
                return Err(StoreError::Malformed("commit meta extends past record"));
            }
            let meta = &rest[..meta_len];
            let count =
                u32::from_le_bytes(rest[meta_len..meta_len + 4].try_into().expect("4 bytes"))
                    as usize;
            let hash_bytes = &rest[meta_len + 4..];
            if hash_bytes.len() != count * 8 {
                return Err(StoreError::Malformed("commit hash list length mismatch"));
            }
            let hashes = hash_bytes
                .chunks_exact(8)
                .map(|c| u64::from_le_bytes(c.try_into().expect("8 bytes")))
                .collect();
            Record::Commit {
                seq,
                payload_len,
                meta,
                hashes,
            }
        }
        other => return Err(StoreError::BadTag(other)),
    };
    Ok((record, total))
}

impl DiskStore {
    /// Opens (or creates) a store at `dir`, recovering from any torn tail:
    /// the log is scanned front to back, every record CRC-verified, and
    /// the first invalid or incomplete record — plus everything after it —
    /// truncated away. Returns the recovered store and a typed report of
    /// what was kept and what was dropped.
    pub fn open(dir: impl AsRef<Path>) -> Result<(Self, OpenReport), StoreError> {
        Self::open_with_segment_bytes(dir, DEFAULT_SEGMENT_BYTES)
    }

    /// [`DiskStore::open`] with an explicit segment rotation threshold
    /// (tests use tiny segments to exercise rotation).
    pub fn open_with_segment_bytes(
        dir: impl AsRef<Path>,
        segment_bytes: u64,
    ) -> Result<(Self, OpenReport), StoreError> {
        let dir = dir.as_ref().to_path_buf();
        fs::create_dir_all(&dir)?;

        let mut indices: Vec<u64> = Vec::new();
        for entry in fs::read_dir(&dir)? {
            let name = entry?.file_name();
            let name = name.to_string_lossy();
            if let Some(idx) = name
                .strip_prefix("seg-")
                .and_then(|s| s.strip_suffix(".wal"))
                .and_then(|s| s.parse::<u64>().ok())
            {
                indices.push(idx);
            }
        }
        indices.sort_unstable();
        if indices.is_empty() {
            indices.push(0);
            File::create(segment_path(&dir, 0))?;
        }

        let mut chunks: HashMap<u64, Vec<u8>> = HashMap::new();
        let mut log: Vec<(Vec<u64>, u64, Vec<u8>)> = Vec::new();
        let mut commits = 0u64;
        let mut report = OpenReport::default();
        // (segment index, byte offset) where the valid log ends.
        let mut cut: Option<(u64, u64)> = None;

        'scan: for &idx in &indices {
            let mut bytes = Vec::new();
            File::open(segment_path(&dir, idx))?.read_to_end(&mut bytes)?;
            let mut off = 0usize;
            while off < bytes.len() {
                match parse_record(&bytes[off..]) {
                    Ok((record, total)) => {
                        match record {
                            Record::Blob { hash, data } => {
                                chunks.entry(hash).or_insert_with(|| data.to_vec());
                            }
                            Record::Commit {
                                seq,
                                payload_len,
                                meta,
                                hashes,
                            } => {
                                let known: u64 = hashes
                                    .iter()
                                    .map(|h| chunks.get(h).map_or(0, |c| c.len() as u64))
                                    .sum();
                                if hashes.iter().any(|h| !chunks.contains_key(h))
                                    || known != payload_len
                                {
                                    // A commit referencing chunks the log
                                    // does not hold is as torn as a bad CRC.
                                    cut = Some((idx, off as u64));
                                    break 'scan;
                                }
                                // `seq` is informational; recovery indexes
                                // commits by their order in the log.
                                let _ = seq;
                                log.push((hashes, payload_len, meta.to_vec()));
                                commits += 1;
                            }
                        }
                        off += total;
                        report.bytes_kept += total as u64;
                    }
                    Err(_) => {
                        cut = Some((idx, off as u64));
                        break 'scan;
                    }
                }
            }
        }

        // Truncate the torn tail: cut the segment the scan died in and
        // delete every later segment outright.
        if let Some((cut_idx, cut_off)) = cut {
            let path = segment_path(&dir, cut_idx);
            let len = fs::metadata(&path)?.len();
            report.truncated_bytes += len - cut_off;
            let f = OpenOptions::new().write(true).open(&path)?;
            f.set_len(cut_off)?;
            f.sync_data()?;
            for &idx in indices.iter().filter(|&&i| i > cut_idx) {
                let path = segment_path(&dir, idx);
                report.truncated_bytes += fs::metadata(&path)?.len();
                fs::remove_file(&path)?;
            }
            indices.retain(|&i| i <= cut_idx);
        }

        let seg_index = *indices.last().expect("at least one segment");
        let seg_file = OpenOptions::new()
            .append(true)
            .open(segment_path(&dir, seg_index))?;
        let seg_len = fs::metadata(segment_path(&dir, seg_index))?.len();

        report.segments = indices.len();
        report.commits = commits;
        report.blobs = chunks.len();
        pac_telemetry::gauge_set("store.segments", indices.len() as u64);

        Ok((
            Self {
                dir,
                seg_index,
                seg_file,
                seg_len,
                segment_bytes,
                segments: indices.len(),
                chunks,
                log,
                commits,
                commit_sizes: Vec::new(),
                bytes_written: 0,
                stats: DedupStats::default(),
                crash: None,
            },
            report,
        ))
    }

    /// Directory this store lives in.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// Bytes appended through this handle (not counting recovered log).
    pub fn bytes_written(&self) -> u64 {
        self.bytes_written
    }

    /// Bytes each [`Store::commit`] through this handle appended — the
    /// crash adversary uses these extents to aim inside a specific commit.
    pub fn commit_sizes(&self) -> &[u64] {
        &self.commit_sizes
    }

    /// Appends `buf` to the current segment, honoring an armed
    /// [`CrashPoint`]: if the budget runs out inside `buf`, only the
    /// prefix reaches the file (made durable, as a real torn write would
    /// be) and the writer is dead from then on.
    fn write_raw(&mut self, buf: &[u8]) -> Result<(), StoreError> {
        if let Some((armed_at, remaining)) = self.crash {
            if remaining < buf.len() as u64 {
                let torn = &buf[..remaining as usize];
                self.seg_file.write_all(torn)?;
                self.seg_file.sync_data()?;
                self.seg_len += remaining;
                self.bytes_written += remaining;
                self.crash = Some((armed_at, 0));
                return Err(StoreError::Injected { at_byte: armed_at });
            }
            self.crash = Some((armed_at, remaining - buf.len() as u64));
        }
        self.seg_file.write_all(buf)?;
        self.seg_len += buf.len() as u64;
        self.bytes_written += buf.len() as u64;
        pac_telemetry::counter_add("store.bytes_written", buf.len() as u64);
        Ok(())
    }

    fn maybe_rotate(&mut self) -> Result<(), StoreError> {
        if self.seg_len < self.segment_bytes {
            return Ok(());
        }
        self.seg_file.sync_data()?;
        self.seg_index += 1;
        self.seg_file = OpenOptions::new()
            .append(true)
            .create_new(true)
            .open(segment_path(&self.dir, self.seg_index))?;
        self.seg_len = 0;
        self.segments += 1;
        pac_telemetry::gauge_set("store.segments", self.segments as u64);
        Ok(())
    }
}

impl Store for DiskStore {
    fn commit(&mut self, payload: &[u8], meta: &[u8]) -> Result<u64, StoreError> {
        self.maybe_rotate()?;
        let before = self.bytes_written;

        // Phase 1: append every chunk blob this snapshot needs and does
        // not already share with an earlier one.
        let mut hashes = Vec::with_capacity(payload.len() / CHUNK_BYTES + 1);
        let mut wrote_blob = false;
        for chunk in payload.chunks(CHUNK_BYTES) {
            let hash = content_hash(chunk);
            hashes.push(hash);
            match self.chunks.get(&hash) {
                // Content-addressed hit: only trust the hash when the
                // bytes really are identical.
                Some(existing) if existing == chunk => {
                    note_dedup(&mut self.stats, chunk.len());
                    continue;
                }
                Some(_) => {
                    return Err(StoreError::Malformed("chunk hash collision"));
                }
                None => {}
            }
            let mut blob = Vec::with_capacity(8 + chunk.len());
            blob.extend_from_slice(&hash.to_le_bytes());
            blob.extend_from_slice(chunk);
            let rec = encode_record(TAG_BLOB, &blob);
            self.write_raw(&rec)?;
            self.chunks.insert(hash, chunk.to_vec());
            wrote_blob = true;
        }

        // Phase 2: fsync barrier — the commit record must never be durable
        // before the chunks it references.
        if wrote_blob {
            self.seg_file.sync_data()?;
        }

        // Phase 3: the commit record, then make it durable.
        let seq = self.commits;
        let mut body = Vec::with_capacity(8 + 8 + 4 + meta.len() + 4 + hashes.len() * 8);
        body.extend_from_slice(&seq.to_le_bytes());
        body.extend_from_slice(&(payload.len() as u64).to_le_bytes());
        body.extend_from_slice(&(meta.len() as u32).to_le_bytes());
        body.extend_from_slice(meta);
        body.extend_from_slice(&(hashes.len() as u32).to_le_bytes());
        for h in &hashes {
            body.extend_from_slice(&h.to_le_bytes());
        }
        let rec = encode_record(TAG_COMMIT, &body);
        self.write_raw(&rec)?;
        self.seg_file.sync_data()?;

        self.log.push((hashes, payload.len() as u64, meta.to_vec()));
        self.commits += 1;
        self.commit_sizes.push(self.bytes_written - before);
        Ok(seq)
    }

    fn latest(&self) -> Result<Option<Committed>, StoreError> {
        self.committed(self.log.len().wrapping_sub(1) as u64)
    }

    fn committed(&self, seq: u64) -> Result<Option<Committed>, StoreError> {
        let Some((hashes, payload_len, meta)) = self.log.get(seq as usize) else {
            return Ok(None);
        };
        Ok(Some(Committed {
            seq,
            payload: reassemble(&self.chunks, hashes, *payload_len)?,
            meta: meta.clone(),
        }))
    }

    fn commits(&self) -> u64 {
        self.commits
    }

    fn dedup_stats(&self) -> DedupStats {
        self.stats
    }

    fn arm_crash(&mut self, at_byte: u64) {
        self.crash = Some((at_byte, at_byte));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("pac-store-test-{tag}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn empty_store_has_no_latest() {
        let dir = tmp_dir("empty");
        let (store, report) = DiskStore::open(&dir).expect("open");
        assert_eq!(report.commits, 0);
        assert_eq!(report.truncated_bytes, 0);
        assert!(store.latest().expect("latest").is_none());
        assert_eq!(store.commits(), 0);
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn commit_then_reopen_round_trips_bitwise() {
        let dir = tmp_dir("roundtrip");
        {
            let (mut store, _) = DiskStore::open(&dir).expect("open");
            store.commit(b"snapshot-zero", b"meta-0").expect("commit 0");
            store
                .commit(b"snapshot-one-larger", b"meta-1")
                .expect("commit 1");
        }
        let (store, report) = DiskStore::open(&dir).expect("reopen");
        assert_eq!(report.commits, 2);
        assert_eq!(report.truncated_bytes, 0);
        let last = store.latest().expect("latest").expect("some");
        assert_eq!(last.seq, 1);
        assert_eq!(last.payload, b"snapshot-one-larger");
        assert_eq!(last.meta, b"meta-1");
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn identical_payload_chunks_are_deduped() {
        let dir = tmp_dir("dedup");
        let payload: Vec<u8> = (0..3 * CHUNK_BYTES).map(|i| (i % 251) as u8).collect();
        let (mut store, _) = DiskStore::open(&dir).expect("open");
        store.commit(&payload, b"a").expect("first");
        let before = store.bytes_written();
        store.commit(&payload, b"b").expect("second");
        let second_cost = store.bytes_written() - before;
        // The second commit shares every chunk: it only pays for its
        // commit record, far below one chunk.
        assert!(
            second_cost < CHUNK_BYTES as u64,
            "dedup failed: second commit cost {second_cost} bytes"
        );
        let last = store.latest().expect("latest").expect("some");
        assert_eq!(last.payload, payload);
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn segments_rotate_at_threshold() {
        let dir = tmp_dir("rotate");
        let (mut store, _) = DiskStore::open_with_segment_bytes(&dir, 1024).expect("open");
        for i in 0..8u8 {
            let payload: Vec<u8> = (0..600).map(|j| (j as u8).wrapping_add(i)).collect();
            store.commit(&payload, &[i]).expect("commit");
        }
        assert!(store.segments > 1, "no rotation after 8 oversized commits");
        let (store, report) = DiskStore::open_with_segment_bytes(&dir, 1024).expect("reopen");
        assert_eq!(report.commits, 8);
        assert!(report.segments > 1);
        let last = store.latest().expect("latest").expect("some");
        assert_eq!(last.meta, vec![7]);
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn crash_point_tears_the_writer_mid_append() {
        let dir = tmp_dir("crash");
        let (mut store, _) = DiskStore::open(&dir).expect("open");
        store.commit(b"durable", b"m0").expect("commit 0");
        store.arm_crash(10);
        match store.commit(b"lost-to-the-crash", b"m1") {
            Err(StoreError::Injected { at_byte: 10 }) => {}
            other => panic!("expected injected crash, got {other:?}"),
        }
        // The handle is dead: even a retry fails without touching the log.
        assert!(matches!(
            store.commit(b"retry", b"m2"),
            Err(StoreError::Injected { .. })
        ));
        drop(store);
        let (store, report) = DiskStore::open(&dir).expect("recover");
        assert!(report.truncated_bytes > 0, "torn tail must be truncated");
        let last = store.latest().expect("latest").expect("some");
        assert_eq!(last.payload, b"durable");
        assert_eq!(last.meta, b"m0");
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn mem_store_round_trips() {
        let mut store = MemStore::new();
        assert!(store.latest().expect("latest").is_none());
        assert_eq!(store.commit(b"p0", b"m0").expect("c0"), 0);
        assert_eq!(store.commit(b"p1", b"m1").expect("c1"), 1);
        let last = store.latest().expect("latest").expect("some");
        assert_eq!(
            (last.seq, &last.payload[..], &last.meta[..]),
            (1, &b"p1"[..], &b"m1"[..])
        );
        store.arm_crash(3); // no-op by contract
        assert_eq!(store.commit(b"p2", b"m2").expect("c2"), 2);
    }

    #[test]
    fn committed_history_is_addressable_on_both_stores() {
        let dir = tmp_dir("history");
        let mut mem = MemStore::new();
        let (mut disk, _) = DiskStore::open(&dir).expect("open");
        for store in [&mut mem as &mut dyn Store, &mut disk as &mut dyn Store] {
            store.commit(b"v0", b"m0").expect("c0");
            store.commit(b"v1", b"m1").expect("c1");
            store.commit(b"v2", b"m2").expect("c2");
            let mid = store.committed(1).expect("committed").expect("some");
            assert_eq!(
                (mid.seq, &mid.payload[..], &mid.meta[..]),
                (1, &b"v1"[..], &b"m1"[..])
            );
            assert!(store.committed(3).expect("committed").is_none());
        }
        drop(disk);
        // History survives recovery, not just the latest commit.
        let (disk, report) = DiskStore::open(&dir).expect("reopen");
        assert_eq!(report.commits, 3);
        let first = disk.committed(0).expect("committed").expect("some");
        assert_eq!(first.payload, b"v0");
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn mem_store_dedups_chunks_with_accounting() {
        let mut store = MemStore::new();
        let payload: Vec<u8> = (0..3 * CHUNK_BYTES).map(|i| (i % 253) as u8).collect();
        store.commit(&payload, b"a").expect("first");
        assert_eq!(store.dedup_stats(), DedupStats::default());
        store.commit(&payload, b"b").expect("second");
        let stats = store.dedup_stats();
        assert_eq!(stats.chunks_deduped, 3);
        assert_eq!(stats.bytes_shared, payload.len() as u64);
        // Unique chunk bytes did not grow on the second commit.
        assert_eq!(store.chunk_bytes(), payload.len() as u64);
        let last = store.latest().expect("latest").expect("some");
        assert_eq!(last.payload, payload);
    }

    #[test]
    fn empty_payload_commits_cleanly() {
        let dir = tmp_dir("emptypayload");
        let (mut store, _) = DiskStore::open(&dir).expect("open");
        store.commit(b"", b"cursor-only").expect("commit");
        drop(store);
        let (store, _) = DiskStore::open(&dir).expect("reopen");
        let last = store.latest().expect("latest").expect("some");
        assert!(last.payload.is_empty());
        assert_eq!(last.meta, b"cursor-only");
        fs::remove_dir_all(&dir).ok();
    }
}
