//! # pac-serve — the multi-tenant adapter platform
//!
//! The serving layer the paper's personal-LLM story implies but never
//! builds: one frozen backbone, thousands of personal Parallel-Adapters,
//! each tenant fine-tuning *their* adapter in short bursts against the
//! shared CoW backbone. Three subsystems compose:
//!
//! * [`registry`] — versioned, content-addressed adapter storage through
//!   the [`pac_store::Store`] trait. Every publish is one PACCKPT2 commit
//!   tagged `(tenant, version)`; 4 KiB chunk dedup means near-identical
//!   adapters (same shapes, slightly different weights) share most of
//!   their bytes, and the registry's index is rebuilt from the log alone,
//!   so a crashed coordinator recovers its whole tenant catalog.
//! * [`cache`] — per-rank resident-adapter cache under a byte budget
//!   derived from the planner's device-memory ceiling (Eq. 4–6 via
//!   [`pac_cluster::CostModel`]), with LRU-with-pin eviction: an adapter
//!   pinned by an in-flight burst is never evicted from under it.
//! * [`router`] + [`scheduler`] — tenant jobs are routed to the rank
//!   whose cache already holds the adapter (warm hit) or to the
//!   least-loaded rank (cold miss → registry fetch), and multiplexed over
//!   the rank executors with round-robin fairness over an active-tenant
//!   window. Per-tenant isolation is structural: every burst starts from
//!   `reset_to(baseline)` + `swap_in(adapter)`, so a tenant's panic is
//!   caught, attributed, and rolled back without touching any other
//!   tenant's adapter or loss trajectory — bitwise, by test.
//!
//! [`demo`] wires it to the network: tenant clients stream `JobSubmit`
//! frames to the same rendezvous listener workers `Hello` on
//! ([`pac_net::Admission`]), and get `JobDone` replies with the published
//! adapter version and final loss.

#![deny(missing_docs)]

pub mod cache;
pub mod demo;
pub mod registry;
pub mod router;
pub mod scheduler;

pub use cache::{AdapterCache, CacheBudget};
pub use demo::{run_loopback_demo, DemoConfig, DemoError, DemoReport};
pub use registry::{AdapterRegistry, RegistryError};
pub use router::{Route, Router};
pub use scheduler::{
    JobOutcome, JobSpec, ServeConfig, ServeError, ServeEvent, ServePlatform, ServeReport,
};
