//! The serve platform: concurrent per-tenant fine-tuning jobs multiplexed
//! over rank executors that share one CoW backbone.
//!
//! Every rank holds a [`ParallelTuner`] *clone* of one prototype: the
//! frozen backbone tensors are `Arc`-shared copy-on-write, and because a
//! tenant burst only ever writes side-net parameters, the backbone stays
//! physically shared across all ranks for the life of the platform — the
//! report proves it by pointer identity and books the bytes saved.
//!
//! Scheduling is tick-based and deterministic:
//!
//! 1. **Admit + route** (sequential) — up to `active_window` tenants are
//!    active at once; each tick services up to one job per rank,
//!    round-robin over the active set (fairness: the serviced tenants
//!    rotate to the back). Each selected job is routed warm/cold/fresh
//!    and its adapter is loaded (cache clone vs registry fetch, both
//!    timed) and pinned.
//! 2. **Compute** (parallel) — each rank runs its assigned bursts on its
//!    own executor thread. A burst starts from `reset_to(baseline)` +
//!    `swap_in(adapter)`, so rank state can never leak between tenants;
//!    panics are caught per job and attributed to the tenant.
//! 3. **Commit** (sequential) — completed bursts publish the next
//!    adapter version to the registry and refresh the rank cache; faulted
//!    bursts publish nothing (the tenant's last version stands) and the
//!    fault is booked on the tenant's session alone.

use std::collections::{BTreeMap, HashMap, VecDeque};
use std::fmt;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::time::Instant;

use pac_cluster::{CostModel, DeviceSpec};
use pac_core::{run_tenant_burst, BurstSpec, TenantPhase, TenantSession};
use pac_model::{EncDecModel, ModelConfig};
use pac_nn::Module;
use pac_parallel::{plan_filled, plan_serialized, SimStage, TenantLoad};
use pac_peft::{AdapterBaseline, ParallelTuner, Technique, TrainCheckpoint};
use pac_store::{DedupStats, Store};
use pac_telemetry::{counter_add, counter_inc};
use pac_tensor::rng::seeded;

use crate::cache::{AdapterCache, CacheBudget};
use crate::registry::{AdapterRegistry, RegistryError};
use crate::router::{Route, Router};

/// Platform-fatal failure (registry/store). Tenant faults are *not*
/// errors — they are attributed on the tenant's session.
#[derive(Debug)]
pub enum ServeError {
    /// The adapter registry (or its store) failed.
    Registry(RegistryError),
}

impl fmt::Display for ServeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServeError::Registry(e) => write!(f, "serve registry: {e}"),
        }
    }
}

impl std::error::Error for ServeError {}

impl From<RegistryError> for ServeError {
    fn from(e: RegistryError) -> Self {
        ServeError::Registry(e)
    }
}

/// One tenant fine-tuning job: a burst of cached training steps.
#[derive(Debug, Clone)]
pub struct JobSpec {
    /// Tenant whose personal adapter this job trains.
    pub tenant: u64,
    /// Cached training steps to run.
    pub steps: usize,
    /// Seed for the tenant's private rows.
    pub seed: u64,
    /// Fault injection: panic before cached step `i` (tests/demo).
    pub fault_at: Option<usize>,
    /// After this job, the tenant parks: it leaves the active window and
    /// re-enters through the admission backlog for its next job (a
    /// sporadic tenant whose adapter will likely be evicted in between —
    /// the realistic source of cold misses). `false` keeps the tenant in
    /// the window until its queue drains (an interactive session).
    pub park: bool,
}

/// Platform configuration.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Rank executors sharing the backbone.
    pub ranks: usize,
    /// Backbone architecture (every tenant adapter fits this model).
    pub model: ModelConfig,
    /// Output classes of the task head.
    pub n_out: usize,
    /// Parallel-Adapters bottleneck reduction.
    pub reduction: usize,
    /// Backbone init seed — all ranks clone one prototype from it.
    pub seed: u64,
    /// Rows per tenant burst.
    pub rows: usize,
    /// Tokens per row.
    pub seq: usize,
    /// Adam learning rate.
    pub lr: f32,
    /// Device whose Eq. 4–6 memory ceiling bounds the adapter cache.
    pub device: DeviceSpec,
    /// Cache clamp: resident adapters per rank (budget = clamp × adapter
    /// size, capped by the device ceiling). Keeps eviction honest at
    /// micro scale.
    pub cached_adapters_per_rank: usize,
    /// Concurrently active tenants (admission window).
    pub active_window: usize,
    /// Completed jobs per hit-rate trajectory sample.
    pub trajectory_window: usize,
    /// Planted bug: skip the baseline hygiene reset for fresh tenants
    /// (the isolation self-test's target).
    pub buggify_skip_reset: bool,
    /// Cross-tenant bubble filling: when ≥ 2 tenants are co-scheduled on
    /// one tick, plan their bursts through
    /// [`pac_parallel::fill::plan_filled`] (the multiworld coordinator's
    /// slot schedule) instead of treating each tenant's pipeline as
    /// exclusive, and book the bubble-fraction gap vs the serialized
    /// baseline on the report and `serve.fill.*` counters.
    pub fill_bubbles: bool,
}

impl ServeConfig {
    /// Micro-scale defaults: `ranks` executors over a 2+1-layer micro
    /// backbone, eviction-sized cache, 4×ranks active tenants.
    pub fn micro(ranks: usize) -> Self {
        ServeConfig {
            ranks,
            model: ModelConfig::micro(2, 1, 32, 2),
            n_out: 2,
            reduction: 4,
            seed: 17,
            rows: 2,
            seq: 8,
            lr: 5e-2,
            device: DeviceSpec::jetson_nano(),
            cached_adapters_per_rank: 8,
            active_window: 4 * ranks.max(1),
            trajectory_window: 100,
            buggify_skip_reset: false,
            fill_bubbles: false,
        }
    }
}

/// One line of the serve transcript.
#[derive(Debug, Clone)]
pub struct ServeEvent {
    /// Scheduler tick the event happened on.
    pub tick: u64,
    /// Tenant the event concerns.
    pub tenant: u64,
    /// Event kind: `admit`, `route`, `load`, `evict`, `publish`, `fault`.
    pub kind: &'static str,
    /// Human-readable detail.
    pub detail: String,
}

/// Per-job result, in input order (what `JobDone` carries on the wire).
#[derive(Debug, Clone, Copy)]
pub struct JobOutcome {
    /// Tenant of the job.
    pub tenant: u64,
    /// Adapter version the job published (0 when faulted).
    pub version: u32,
    /// Whether the job faulted.
    pub faulted: bool,
    /// Final training loss of the burst (NaN when faulted).
    pub final_loss: f32,
}

/// What a serve run measured.
#[derive(Debug, Clone)]
pub struct ServeReport {
    /// Jobs that completed and published.
    pub jobs_completed: u64,
    /// Jobs that faulted (attributed, nothing published).
    pub jobs_faulted: u64,
    /// Scheduler ticks run.
    pub ticks: u64,
    /// Adapter loads served from a rank cache.
    pub warm_hits: u64,
    /// Adapter loads that went to the registry.
    pub cold_misses: u64,
    /// First bursts of brand-new tenants (nothing to load).
    pub fresh_starts: u64,
    /// Cache evictions across all ranks.
    pub evictions: u64,
    /// Mean warm-load nanoseconds (cache clone).
    pub warm_ns_avg: u64,
    /// Mean cold-load nanoseconds (registry fetch + decode).
    pub cold_ns_avg: u64,
    /// `(jobs_done, warm/(warm+cold))` per trajectory window.
    pub hit_rate_trajectory: Vec<(u64, f64)>,
    /// Peak resident adapter bytes over all ranks combined.
    pub resident_peak_bytes: u64,
    /// Per-rank enforced cache budget.
    pub budget_bytes: u64,
    /// Eq. 4–6 device ceiling the budget was planned under.
    pub device_ceiling_bytes: u64,
    /// One adapter's serialized size.
    pub adapter_bytes: u64,
    /// Registry chunk-dedup ledger.
    pub dedup: DedupStats,
    /// Whether every rank's backbone aliases the prototype's storage.
    pub backbone_shared: bool,
    /// Serialized backbone parameter bytes (one copy).
    pub backbone_bytes: u64,
    /// Bytes CoW sharing saved: `(ranks - 1) × backbone_bytes`.
    pub cow_shared_bytes: u64,
    /// Tenants with at least one published version.
    pub tenants_published: u64,
    /// tenant → `(latest version, last loss)` for completed trajectories.
    pub final_losses: BTreeMap<u64, (u32, f32)>,
    /// `(tenant, serviced_steps, wait_ticks)` fairness ledger.
    pub fairness: Vec<(u64, u64, u64)>,
    /// Ticks on which ≥ 2 co-scheduled tenants were planned through the
    /// bubble-filling schedule (0 unless [`ServeConfig::fill_bubbles`]).
    pub fill_ticks: u64,
    /// Mean combined bubble fraction of the filled plans over those ticks.
    pub fill_bubble_filled: f64,
    /// Mean combined bubble fraction of the serialized (unbatched)
    /// baseline over the same ticks — filling must come in below this.
    pub fill_bubble_serialized: f64,
    /// Per-job outcomes in input order.
    pub job_outcomes: Vec<JobOutcome>,
    /// Full transcript.
    pub events: Vec<ServeEvent>,
    /// Wall-clock seconds of the run.
    pub elapsed_secs: f64,
    /// Completed tenant jobs per wall-clock second.
    pub tenants_per_sec: f64,
}

impl ServeReport {
    /// Max/min serviced steps across tenants — the fairness spread.
    pub fn serviced_spread(&self) -> (u64, u64) {
        let lo = self.fairness.iter().map(|&(_, s, _)| s).min().unwrap_or(0);
        let hi = self.fairness.iter().map(|&(_, s, _)| s).max().unwrap_or(0);
        (lo, hi)
    }
}

/// One rank: a backbone-sharing tuner clone plus its adapter cache.
struct RankExecutor {
    tuner: ParallelTuner,
    cache: AdapterCache,
}

/// A job after phase 1: routed, adapter loaded and pinned.
struct PreparedJob {
    job_idx: usize,
    rank: usize,
    park: bool,
    spec: BurstSpec,
    adapter: Option<TrainCheckpoint>,
}

/// The multi-tenant serve platform over store `S`.
pub struct ServePlatform<S: Store> {
    cfg: ServeConfig,
    baseline: AdapterBaseline,
    ranks: Vec<RankExecutor>,
    registry: AdapterRegistry<S>,
    router: Router,
    adapter_bytes: u64,
    sessions: BTreeMap<u64, TenantSession>,
    events: Vec<ServeEvent>,
    budget: CacheBudget,
    backbone_ptr: usize,
    tick: u64,
}

impl<S: Store> ServePlatform<S> {
    /// Builds the platform: one prototype tuner from `cfg.seed`, `ranks`
    /// CoW clones of it, caches under the planned budget, and the
    /// registry over `store` (pre-existing adapters are picked up).
    pub fn new(cfg: ServeConfig, store: S) -> Result<Self, ServeError> {
        let model = EncDecModel::new(&cfg.model, cfg.n_out, &mut seeded(cfg.seed));
        let proto = ParallelTuner::new(model, cfg.reduction, cfg.n_out, &mut seeded(cfg.seed + 1));
        let baseline = proto.baseline();
        let cost = CostModel::new(
            cfg.model.clone(),
            Technique::ParallelAdapters {
                reduction: cfg.reduction,
            },
            cfg.seq,
        );
        // A *published* adapter carries Adam moments (m + v per trainable
        // scalar) on top of the weights the moment-free baseline holds —
        // size cache slots for what tenants actually publish, or the
        // budget silently holds 3x fewer adapters than asked.
        let adapter_bytes = baseline.size_bytes() as u64 + 2 * cost.trainable_bytes_total() as u64;
        let clamp = cfg.cached_adapters_per_rank as u64 * adapter_bytes;
        let budget = CacheBudget::plan(&cfg.device, &cost, cfg.rows, Some(clamp));
        let backbone_ptr = proto.model.embed.table.value.data().as_ptr() as usize;
        let ranks = (0..cfg.ranks.max(1))
            .map(|_| RankExecutor {
                tuner: proto.clone(),
                cache: AdapterCache::new(budget.budget_bytes),
            })
            .collect();
        Ok(ServePlatform {
            cfg,
            baseline,
            ranks,
            registry: AdapterRegistry::open(store)?,
            router: Router::new(),
            adapter_bytes,
            sessions: BTreeMap::new(),
            events: Vec::new(),
            budget,
            backbone_ptr,
            tick: 0,
        })
    }

    /// The tenant's session ledger, if admitted.
    pub fn session(&self, tenant: u64) -> Option<&TenantSession> {
        self.sessions.get(&tenant)
    }

    /// The registry under the platform.
    pub fn registry(&self) -> &AdapterRegistry<S> {
        &self.registry
    }

    fn event(&mut self, tenant: u64, kind: &'static str, detail: String) {
        self.events.push(ServeEvent {
            tick: self.tick,
            tenant,
            kind,
            detail,
        });
    }

    /// Runs `jobs` to completion and reports. Jobs of one tenant run in
    /// input order; tenants are admitted in first-appearance order into
    /// the active window and serviced round-robin.
    pub fn run(&mut self, jobs: &[JobSpec]) -> Result<ServeReport, ServeError> {
        let started = Instant::now();
        // Per-tenant FIFO queues in first-appearance order.
        let mut queues: HashMap<u64, VecDeque<(usize, JobSpec)>> = HashMap::new();
        let mut arrival: Vec<u64> = Vec::new();
        for (idx, job) in jobs.iter().enumerate() {
            if !queues.contains_key(&job.tenant) {
                arrival.push(job.tenant);
            }
            queues
                .entry(job.tenant)
                .or_default()
                .push_back((idx, job.clone()));
        }
        let mut waiting: VecDeque<u64> = arrival.into();
        let mut active: VecDeque<u64> = VecDeque::new();

        let mut outcomes: Vec<Option<JobOutcome>> = vec![None; jobs.len()];
        let mut jobs_completed = 0u64;
        let mut jobs_faulted = 0u64;
        let mut warm_hits = 0u64;
        let mut cold_misses = 0u64;
        let mut fresh_starts = 0u64;
        let mut evictions = 0u64;
        let (mut warm_ns, mut cold_ns) = (0u64, 0u64);
        let mut trajectory: Vec<(u64, f64)> = Vec::new();
        let (mut win_warm, mut win_cold) = (0u64, 0u64);
        let mut resident_peak = 0u64;
        let mut fill_ticks = 0u64;
        let (mut fill_filled_sum, mut fill_serial_sum) = (0.0f64, 0.0f64);

        loop {
            // Admission: top the active window up from the backlog.
            while active.len() < self.cfg.active_window {
                match waiting.pop_front() {
                    Some(t) => {
                        let first_admission = !self.sessions.contains_key(&t);
                        self.sessions
                            .entry(t)
                            .or_insert_with(|| TenantSession::admitted(t));
                        if first_admission {
                            self.event(t, "admit", format!("tenant {t} admitted to active window"));
                        } else {
                            self.event(t, "admit", format!("tenant {t} re-admitted from backlog"));
                        }
                        active.push_back(t);
                    }
                    None => break,
                }
            }
            if active.is_empty() {
                break;
            }
            self.tick += 1;

            // Select: one job for up to `ranks` tenants from the front of
            // the rotation.
            let k = self.ranks.len().min(active.len());
            let selected: Vec<u64> = (0..k)
                .map(|_| active.pop_front().expect("k <= len"))
                .collect();
            // Everyone still queued behind them waited this tick.
            counter_add("serve.wait.ticks", active.len() as u64);
            for t in &active {
                if let Some(s) = self.sessions.get_mut(t) {
                    s.wait_ticks += 1;
                }
            }

            // Phase 1: route + load + pin, sequentially.
            let mut load = vec![0usize; self.ranks.len()];
            let mut assignments: Vec<Vec<PreparedJob>> =
                (0..self.ranks.len()).map(|_| Vec::new()).collect();
            for &tenant in &selected {
                let (job_idx, job) = queues
                    .get_mut(&tenant)
                    .and_then(VecDeque::pop_front)
                    .expect("active tenant has a queued job");
                let parked = match self.sessions.get(&tenant).map(|s| &s.phase) {
                    Some(TenantPhase::Parked { version }) => Some(*version),
                    _ => None,
                };
                let warm: Vec<bool> = self
                    .ranks
                    .iter()
                    .map(|r| parked.is_some() && r.cache.peek_version(tenant) == parked)
                    .collect();
                let (rank, route) = self.router.route(parked.is_some(), &warm, &load);
                load[rank] += 1;
                self.event(
                    tenant,
                    "route",
                    format!("job {job_idx} -> rank {rank} ({route:?})"),
                );
                let adapter = match (parked, route) {
                    (Some(version), Route::Warm) => {
                        let t0 = Instant::now();
                        let (v, ck) = self.ranks[rank]
                            .cache
                            .get(tenant)
                            .expect("warm route implies resident");
                        debug_assert_eq!(v, version);
                        let ns = t0.elapsed().as_nanos() as u64;
                        warm_ns += ns;
                        warm_hits += 1;
                        win_warm += 1;
                        self.event(
                            tenant,
                            "load",
                            format!("warm hit v{version} on rank {rank} in {ns}ns"),
                        );
                        Some(ck)
                    }
                    (Some(version), _) => {
                        self.ranks[rank].cache.note_miss();
                        let t0 = Instant::now();
                        let ck = self
                            .registry
                            .fetch(tenant, version)?
                            .expect("parked version is published");
                        let ns = t0.elapsed().as_nanos() as u64;
                        cold_ns += ns;
                        cold_misses += 1;
                        win_cold += 1;
                        let evicted = self.ranks[rank].cache.insert(tenant, version, ck.clone());
                        self.event(
                            tenant,
                            "load",
                            format!("cold miss v{version} -> rank {rank} in {ns}ns"),
                        );
                        for victim in evicted {
                            evictions += 1;
                            self.event(
                                victim,
                                "evict",
                                format!("evicted from rank {rank} to fit tenant {tenant}"),
                            );
                        }
                        Some(ck)
                    }
                    (None, _) => {
                        fresh_starts += 1;
                        None
                    }
                };
                self.ranks[rank].cache.pin(tenant);
                if let Some(s) = self.sessions.get_mut(&tenant) {
                    s.begin_burst();
                }
                assignments[rank].push(PreparedJob {
                    job_idx,
                    rank,
                    park: job.park,
                    spec: BurstSpec {
                        tenant,
                        seed: job.seed,
                        steps: job.steps,
                        rows: self.cfg.rows,
                        seq: self.cfg.seq,
                        lr: self.cfg.lr,
                        fault_at: job.fault_at,
                    },
                    adapter,
                });
            }

            // Cross-tenant bubble filling: when this tick co-scheduled
            // ≥ 2 tenants, plan their bursts through the multiworld slot
            // schedule and book the bubble-fraction gap against running
            // each tenant's pipeline exclusively. At micro scale the
            // bursts below still execute whole per rank — the plan is the
            // coordinator's co-scheduling decision, surfaced here so
            // operators can see what filling buys before enabling it on a
            // real pipeline deployment.
            if self.cfg.fill_bubbles {
                let loads: Vec<TenantLoad> = assignments
                    .iter()
                    .flatten()
                    .map(|pj| TenantLoad {
                        // Synthetic two-stage backbone split with the
                        // paper's fwd:bwd ≈ 1:2 cost ratio; one micro-batch
                        // per burst step. Deterministic by construction.
                        stages: vec![
                            SimStage {
                                fwd_s: 1.0,
                                bwd_s: 2.0,
                                send_fwd_s: 0.1,
                                send_bwd_s: 0.1,
                                weight_bytes: 0,
                                act_bytes_per_mb: 0,
                                fixed_bytes: 0,
                                allreduce_s: 0.0,
                            };
                            2
                        ],
                        micros: pj.spec.steps.max(1),
                    })
                    .collect();
                if loads.len() >= 2 {
                    let filled = plan_filled(&loads);
                    let serial = plan_serialized(&loads);
                    fill_ticks += 1;
                    fill_filled_sum += filled.combined.bubble_fraction;
                    fill_serial_sum += serial.combined.bubble_fraction;
                    counter_inc("serve.fill.ticks");
                    counter_add("serve.fill.tenants", loads.len() as u64);
                }
            }

            // Phase 2: each rank runs its bursts on its own thread.
            let baseline = &self.baseline;
            let buggify = self.cfg.buggify_skip_reset;
            let mut results: Vec<(PreparedJob, Result<pac_core::BurstOutcome, String>)> =
                std::thread::scope(|scope| {
                    let handles: Vec<_> = self
                        .ranks
                        .iter_mut()
                        .zip(assignments)
                        .filter(|(_, jobs)| !jobs.is_empty())
                        .map(|(exec, jobs)| {
                            scope.spawn(move || {
                                jobs.into_iter()
                                    .map(|pj| {
                                        // The planted-bug knob: skip the
                                        // hygiene reset for fresh tenants.
                                        let skip = buggify && pj.adapter.is_none();
                                        let out = catch_unwind(AssertUnwindSafe(|| {
                                            run_tenant_burst(
                                                &mut exec.tuner,
                                                baseline,
                                                pj.adapter.as_ref(),
                                                &pj.spec,
                                                skip,
                                            )
                                        }));
                                        let out = match out {
                                            Ok(Ok(b)) => Ok(b),
                                            Ok(Err(e)) => Err(e.to_string()),
                                            Err(p) => Err(panic_message(p)),
                                        };
                                        (pj, out)
                                    })
                                    .collect::<Vec<_>>()
                            })
                        })
                        .collect();
                    handles
                        .into_iter()
                        .flat_map(|h| h.join().expect("rank executor thread"))
                        .collect()
                });
            results.sort_by_key(|(pj, _)| pj.job_idx);

            // Phase 3: commit in job order.
            let mut finished_this_tick: Vec<u64> = Vec::new();
            let mut parked_this_tick: Vec<u64> = Vec::new();
            for (pj, result) in results {
                let tenant = pj.spec.tenant;
                // Locate the rank that ran it to unpin / refresh its cache.
                match result {
                    Ok(outcome) => {
                        let version = self.registry.publish(tenant, &outcome.checkpoint)?;
                        let final_loss = outcome.losses.last().copied().unwrap_or(f32::NAN);
                        if let Some(s) = self.sessions.get_mut(&tenant) {
                            s.complete_burst(version, &outcome.losses);
                        }
                        // Publish-affinity: the fresh version lands in the
                        // cache of the rank that computed it, so the
                        // tenant's next burst routes warm to the same
                        // rank. Stale copies on other ranks are dropped
                        // rather than refreshed (one resident copy per
                        // tenant keeps the budget honest).
                        for exec in self.ranks.iter_mut() {
                            exec.cache.unpin(tenant);
                        }
                        for (r, exec) in self.ranks.iter_mut().enumerate() {
                            if r != pj.rank && exec.cache.contains(tenant) {
                                exec.cache.drop_slot(tenant);
                            }
                        }
                        let evicted = self.ranks[pj.rank].cache.insert(
                            tenant,
                            version,
                            outcome.checkpoint.clone(),
                        );
                        for victim in evicted {
                            evictions += 1;
                            self.events.push(ServeEvent {
                                tick: self.tick,
                                tenant: victim,
                                kind: "evict",
                                detail: format!(
                                    "evicted from rank {} by tenant {tenant} publish",
                                    pj.rank
                                ),
                            });
                        }
                        self.event(
                            tenant,
                            "publish",
                            format!("published v{version}, final loss {final_loss:.4}"),
                        );
                        counter_inc("serve.jobs.completed");
                        jobs_completed += 1;
                        outcomes[pj.job_idx] = Some(JobOutcome {
                            tenant,
                            version,
                            faulted: false,
                            final_loss,
                        });
                    }
                    Err(detail) => {
                        for exec in self.ranks.iter_mut() {
                            exec.cache.unpin(tenant);
                        }
                        if let Some(s) = self.sessions.get_mut(&tenant) {
                            s.fault_burst(detail.clone());
                        }
                        self.event(
                            tenant,
                            "fault",
                            format!("attributed to tenant {tenant}: {detail}"),
                        );
                        counter_inc("serve.jobs.faulted");
                        jobs_faulted += 1;
                        outcomes[pj.job_idx] = Some(JobOutcome {
                            tenant,
                            version: 0,
                            faulted: true,
                            final_loss: f32::NAN,
                        });
                    }
                }
                // Hit-rate trajectory sampling.
                let done = jobs_completed + jobs_faulted;
                if done.is_multiple_of(self.cfg.trajectory_window as u64)
                    && (win_warm + win_cold) > 0
                {
                    trajectory.push((done, win_warm as f64 / (win_warm + win_cold) as f64));
                    win_warm = 0;
                    win_cold = 0;
                }
                if queues.get(&tenant).is_none_or(VecDeque::is_empty) {
                    finished_this_tick.push(tenant);
                } else if pj.park {
                    parked_this_tick.push(tenant);
                }
            }

            let resident_now: u64 = self.ranks.iter().map(|r| r.cache.resident_bytes()).sum();
            resident_peak = resident_peak.max(resident_now);

            // Rotation: serviced tenants with jobs left go to the back;
            // finished tenants leave the window (their successor is
            // admitted at the top of the next tick); parking tenants
            // leave too and re-enter through the backlog later — by the
            // time they return, the intervening tenants have usually
            // evicted their adapter, so their next load is a cold miss.
            for tenant in selected {
                if finished_this_tick.contains(&tenant) {
                    continue;
                }
                if parked_this_tick.contains(&tenant) {
                    self.event(
                        tenant,
                        "park",
                        format!("tenant {tenant} parked; will re-enter via backlog"),
                    );
                    waiting.push_back(tenant);
                } else {
                    active.push_back(tenant);
                }
            }
        }
        if win_warm + win_cold > 0 {
            let done = jobs_completed + jobs_faulted;
            trajectory.push((done, win_warm as f64 / (win_warm + win_cold) as f64));
        }

        let elapsed_secs = started.elapsed().as_secs_f64();
        let backbone_shared = self
            .ranks
            .iter()
            .all(|r| r.tuner.model.embed.table.value.data().as_ptr() as usize == self.backbone_ptr);
        let backbone_bytes = self.ranks[0].tuner.model.num_params() as u64 * 4;
        let final_losses = self
            .sessions
            .iter()
            .filter_map(|(&t, s)| match s.phase {
                TenantPhase::Parked { version } => s.final_loss().map(|l| (t, (version, l))),
                _ => None,
            })
            .collect();
        let fairness = self
            .sessions
            .values()
            .map(|s| (s.tenant, s.serviced_steps, s.wait_ticks))
            .collect();
        Ok(ServeReport {
            jobs_completed,
            jobs_faulted,
            ticks: self.tick,
            warm_hits,
            cold_misses,
            fresh_starts,
            evictions,
            warm_ns_avg: warm_ns.checked_div(warm_hits).unwrap_or(0),
            cold_ns_avg: cold_ns.checked_div(cold_misses).unwrap_or(0),
            hit_rate_trajectory: trajectory,
            resident_peak_bytes: resident_peak,
            budget_bytes: self.budget.budget_bytes * self.ranks.len() as u64,
            device_ceiling_bytes: self.budget.device_ceiling_bytes,
            adapter_bytes: self.adapter_bytes,
            dedup: self.registry.dedup_stats(),
            backbone_shared,
            backbone_bytes,
            cow_shared_bytes: backbone_bytes * (self.ranks.len() as u64 - 1),
            tenants_published: self.registry.tenants() as u64,
            final_losses,
            fairness,
            fill_ticks,
            fill_bubble_filled: if fill_ticks > 0 {
                fill_filled_sum / fill_ticks as f64
            } else {
                0.0
            },
            fill_bubble_serialized: if fill_ticks > 0 {
                fill_serial_sum / fill_ticks as f64
            } else {
                0.0
            },
            job_outcomes: outcomes
                .into_iter()
                .map(|o| o.expect("every job ran"))
                .collect(),
            events: std::mem::take(&mut self.events),
            elapsed_secs,
            tenants_per_sec: if elapsed_secs > 0.0 {
                jobs_completed as f64 / elapsed_secs
            } else {
                0.0
            },
        })
    }
}

/// Renders a caught panic payload.
fn panic_message(payload: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "opaque panic payload".to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pac_store::MemStore;

    fn jobs(tenants: u64, per_tenant: usize) -> Vec<JobSpec> {
        let mut out = Vec::new();
        for round in 0..per_tenant {
            for t in 0..tenants {
                out.push(JobSpec {
                    tenant: t,
                    steps: 2,
                    seed: 1000 + round as u64,
                    fault_at: None,
                    park: false,
                });
            }
        }
        out
    }

    #[test]
    fn platform_services_every_job_and_shares_the_backbone() {
        let mut cfg = ServeConfig::micro(2);
        cfg.trajectory_window = 8;
        let mut platform = ServePlatform::new(cfg, MemStore::new()).unwrap();
        let report = platform.run(&jobs(12, 2)).unwrap();
        assert_eq!(report.jobs_completed, 24);
        assert_eq!(report.jobs_faulted, 0);
        assert!(report.backbone_shared, "CoW backbone must stay shared");
        assert!(report.cow_shared_bytes > 0);
        assert_eq!(report.tenants_published, 12);
        // Every tenant got exactly two versions.
        for t in 0..12 {
            assert_eq!(platform.registry().versions(t), 2);
        }
        // Second bursts load adapters; with a 4-adapter/rank cache and an
        // 8-tenant window some of them hit warm.
        assert_eq!(report.warm_hits + report.cold_misses, 12);
        assert!(
            report.warm_hits > 0,
            "second bursts should find warm adapters"
        );
        assert!(!report.hit_rate_trajectory.is_empty());
        // Dedup accounting rides along from the store. (Dense f32 Adam
        // updates touch every chunk at micro scale, so sharing between
        // *trained* versions can be zero here; the >50%-sharing property
        // for near-identical adapters is pinned by pac-store's test.)
        assert_eq!(report.dedup, platform.registry().dedup_stats());
        // Fairness: every tenant serviced the same number of steps.
        let (lo, hi) = report.serviced_spread();
        assert_eq!((lo, hi), (4, 4));
        assert_eq!(report.job_outcomes.len(), 24);
        assert!(report
            .job_outcomes
            .iter()
            .all(|o| !o.faulted && o.version >= 1));
    }

    #[test]
    fn bubble_filling_beats_the_serialized_plan_on_co_scheduled_ticks() {
        let mut cfg = ServeConfig::micro(2);
        cfg.fill_bubbles = true;
        let mut platform = ServePlatform::new(cfg, MemStore::new()).unwrap();
        let report = platform.run(&jobs(6, 1)).unwrap();
        assert!(report.fill_ticks > 0, "2 ranks over 6 tenants co-schedule");
        assert!(
            report.fill_bubble_filled < report.fill_bubble_serialized,
            "filled {} vs serialized {}",
            report.fill_bubble_filled,
            report.fill_bubble_serialized
        );

        // Off by default: the knob must not change existing reports.
        let mut plain = ServePlatform::new(ServeConfig::micro(2), MemStore::new()).unwrap();
        let r2 = plain.run(&jobs(6, 1)).unwrap();
        assert_eq!(r2.fill_ticks, 0);
        assert_eq!(r2.fill_bubble_filled, 0.0);
    }

    #[test]
    fn eviction_keeps_resident_bytes_under_budget() {
        let mut cfg = ServeConfig::micro(1);
        cfg.cached_adapters_per_rank = 2;
        cfg.active_window = 6;
        let mut platform = ServePlatform::new(cfg, MemStore::new()).unwrap();
        let report = platform.run(&jobs(6, 2)).unwrap();
        assert!(report.evictions > 0, "6 tenants through 2 slots must evict");
        // One job in flight at a time (1 rank): the pinned working set
        // never exceeds budget + one adapter.
        assert!(report.resident_peak_bytes <= report.budget_bytes + report.adapter_bytes);
    }
}
