//! Warm-affinity routing: send a tenant's job to the rank whose cache
//! already holds the adapter; otherwise to the cheapest (least-loaded)
//! rank, rotating ties so cold tenants spread evenly.

use pac_telemetry::counter_inc;

/// How a job reached its rank, which is also what its adapter load will
/// cost: a warm hit is a cache clone, a cold miss is a registry fetch +
/// decode, a fresh tenant has nothing to load at all.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Route {
    /// The chosen rank's cache holds the tenant's adapter.
    Warm,
    /// The adapter exists but is resident nowhere cheap — registry fetch.
    Cold,
    /// First burst of a brand-new tenant: baseline only.
    Fresh,
}

/// Stateful router: a rotation cursor spreads tie-breaks.
#[derive(Debug, Default)]
pub struct Router {
    rr: usize,
}

impl Router {
    /// A router with the rotation cursor at rank 0.
    pub fn new() -> Self {
        Router::default()
    }

    /// Picks a rank for one job. `has_adapter` is whether the tenant has
    /// a published adapter; `warm[r]` whether rank `r`'s cache holds it;
    /// `load[r]` the jobs already assigned to rank `r` this tick.
    pub fn route(&mut self, has_adapter: bool, warm: &[bool], load: &[usize]) -> (usize, Route) {
        debug_assert_eq!(warm.len(), load.len());
        let n = load.len();
        if has_adapter {
            // Warm affinity first: among warm ranks, least loaded.
            if let Some(rank) = Self::argmin(load, |r| warm[r], self.rr, n) {
                counter_inc("serve.route.warm");
                return (rank, Route::Warm);
            }
        }
        let rank = Self::argmin(load, |_| true, self.rr, n).expect("at least one rank");
        self.rr = (rank + 1) % n;
        let route = if has_adapter {
            counter_inc("serve.route.cold");
            Route::Cold
        } else {
            counter_inc("serve.route.fresh");
            Route::Fresh
        };
        (rank, route)
    }

    /// Least-loaded eligible rank, scanning from `start` so equal loads
    /// rotate instead of piling onto rank 0.
    fn argmin(
        load: &[usize],
        eligible: impl Fn(usize) -> bool,
        start: usize,
        n: usize,
    ) -> Option<usize> {
        let mut best: Option<usize> = None;
        for i in 0..n {
            let r = (start + i) % n;
            if !eligible(r) {
                continue;
            }
            if best.is_none_or(|b| load[r] < load[b]) {
                best = Some(r);
            }
        }
        best
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn warm_rank_wins_even_when_busier() {
        let mut router = Router::new();
        let (rank, route) = router.route(true, &[false, true, false], &[0, 1, 0]);
        assert_eq!((rank, route), (1, Route::Warm));
    }

    #[test]
    fn cold_and_fresh_spread_round_robin_over_equal_loads() {
        let mut router = Router::new();
        let mut picks = Vec::new();
        for _ in 0..4 {
            let (rank, route) = router.route(false, &[false; 2], &[0; 2]);
            assert_eq!(route, Route::Fresh);
            picks.push(rank);
        }
        assert_eq!(picks, vec![0, 1, 0, 1]);
        let (rank, route) = router.route(true, &[false, false], &[3, 1]);
        assert_eq!((rank, route), (1, Route::Cold));
    }
}
