//! Per-rank resident-adapter cache: byte budget from the planner's
//! device-memory ceiling, LRU-with-pin eviction.
//!
//! The budget question is the planner's Eq. 4–6 question re-asked at
//! serve time: after the frozen backbone, the trainable side net (with
//! Adam moments and gradients), and the retained activations of one
//! burst, how many bytes of *other tenants'* adapters may stay resident?
//! [`CacheBudget::plan`] computes that ceiling from the same
//! [`CostModel`] the planner uses; the demo additionally clamps it to a
//! small multiple of the adapter size so eviction is actually exercised
//! at micro scale (a Jetson-class ceiling would hold every adapter).

use std::collections::HashMap;

use pac_cluster::{CostModel, DeviceSpec};
use pac_peft::TrainCheckpoint;
use pac_telemetry::{counter_inc, gauge_max};

/// The resident-adapter byte budget and the ceiling it came from.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CacheBudget {
    /// Eq. 4–6 headroom: device memory minus backbone weights, trainable
    /// state (params + grads + Adam m/v), and one burst's retained
    /// activations.
    pub device_ceiling_bytes: u64,
    /// The budget actually enforced: the ceiling, optionally clamped.
    pub budget_bytes: u64,
}

impl CacheBudget {
    /// Plans the adapter budget for `device` running `cost`'s workload
    /// with `rows` resident activation rows. `clamp_bytes` caps the
    /// enforced budget below the ceiling (micro-scale demos).
    pub fn plan(
        device: &DeviceSpec,
        cost: &CostModel,
        rows: usize,
        clamp_bytes: Option<u64>,
    ) -> Self {
        let layers = cost.layer_costs();
        let backbone: usize = layers.iter().map(|l| l.weight_bytes).sum();
        let acts: usize = layers.iter().map(|l| l.retained_act_bytes).sum::<usize>() * rows;
        // Trainable params carry grad + Adam m + Adam v alongside the
        // value: 4x the parameter bytes stay resident while training.
        let trainable = cost.trainable_bytes_total() * 4;
        let resident = backbone + trainable + acts;
        let ceiling = device.usable_memory.saturating_sub(resident) as u64;
        CacheBudget {
            device_ceiling_bytes: ceiling,
            budget_bytes: clamp_bytes.map_or(ceiling, |c| c.min(ceiling)),
        }
    }
}

#[derive(Debug)]
struct Slot {
    version: u32,
    adapter: TrainCheckpoint,
    bytes: u64,
    last_used: u64,
    pinned: bool,
}

/// LRU-with-pin adapter cache for one rank executor.
#[derive(Debug)]
pub struct AdapterCache {
    budget_bytes: u64,
    resident: u64,
    clock: u64,
    slots: HashMap<u64, Slot>,
    hits: u64,
    misses: u64,
    evictions: u64,
}

impl AdapterCache {
    /// An empty cache enforcing `budget_bytes`.
    pub fn new(budget_bytes: u64) -> Self {
        AdapterCache {
            budget_bytes,
            resident: 0,
            clock: 0,
            slots: HashMap::new(),
            hits: 0,
            misses: 0,
            evictions: 0,
        }
    }

    /// The enforced byte budget.
    pub fn budget_bytes(&self) -> u64 {
        self.budget_bytes
    }

    /// Bytes currently resident.
    pub fn resident_bytes(&self) -> u64 {
        self.resident
    }

    /// Resident adapter count.
    pub fn len(&self) -> usize {
        self.slots.len()
    }

    /// True when nothing is resident.
    pub fn is_empty(&self) -> bool {
        self.slots.is_empty()
    }

    /// (hits, misses, evictions) booked through this cache.
    pub fn stats(&self) -> (u64, u64, u64) {
        (self.hits, self.misses, self.evictions)
    }

    /// Whether the tenant's adapter is resident (any version).
    pub fn contains(&self, tenant: u64) -> bool {
        self.slots.contains_key(&tenant)
    }

    /// The resident version for `tenant`, without touching recency or
    /// hit/miss accounting — the router's eligibility probe.
    pub fn peek_version(&self, tenant: u64) -> Option<u32> {
        self.slots.get(&tenant).map(|s| s.version)
    }

    /// Books a miss decided elsewhere (e.g. a resident-but-stale version
    /// the scheduler chose to refetch).
    pub fn note_miss(&mut self) {
        self.misses += 1;
        counter_inc("serve.cache.misses");
    }

    /// Looks the tenant's adapter up, bumping recency. A hit returns the
    /// resident `(version, adapter)`; the caller decides whether the
    /// version is current. A miss is booked for the hit-rate ledger.
    pub fn get(&mut self, tenant: u64) -> Option<(u32, TrainCheckpoint)> {
        self.clock += 1;
        match self.slots.get_mut(&tenant) {
            Some(slot) => {
                slot.last_used = self.clock;
                self.hits += 1;
                counter_inc("serve.cache.hits");
                Some((slot.version, slot.adapter.clone()))
            }
            None => {
                self.misses += 1;
                counter_inc("serve.cache.misses");
                None
            }
        }
    }

    /// Pins the tenant's slot for an in-flight burst: pinned slots are
    /// never evicted.
    pub fn pin(&mut self, tenant: u64) {
        if let Some(slot) = self.slots.get_mut(&tenant) {
            slot.pinned = true;
        }
    }

    /// Releases a pin.
    pub fn unpin(&mut self, tenant: u64) {
        if let Some(slot) = self.slots.get_mut(&tenant) {
            slot.pinned = false;
        }
    }

    /// Drops the tenant's slot outright (a stale copy superseded by a
    /// publish elsewhere). Not an eviction: nothing was displaced.
    pub fn drop_slot(&mut self, tenant: u64) {
        if let Some(slot) = self.slots.remove(&tenant) {
            self.resident -= slot.bytes;
        }
    }

    /// Inserts (or replaces) the tenant's adapter, evicting unpinned LRU
    /// slots until the budget holds. Returns the evicted tenants. A
    /// working set of pinned slots may transiently exceed the budget —
    /// pins win over the budget, and the peak gauge records the overshoot.
    pub fn insert(&mut self, tenant: u64, version: u32, adapter: TrainCheckpoint) -> Vec<u64> {
        self.clock += 1;
        let bytes = adapter.size_bytes() as u64;
        if let Some(old) = self.slots.remove(&tenant) {
            self.resident -= old.bytes;
        }
        let mut evicted = Vec::new();
        while self.resident + bytes > self.budget_bytes {
            let victim = self
                .slots
                .iter()
                .filter(|(_, s)| !s.pinned)
                .min_by_key(|(_, s)| s.last_used)
                .map(|(&t, _)| t);
            match victim {
                Some(t) => {
                    let slot = self.slots.remove(&t).expect("victim is resident");
                    self.resident -= slot.bytes;
                    self.evictions += 1;
                    counter_inc("serve.cache.evictions");
                    evicted.push(t);
                }
                None => break, // everything left is pinned
            }
        }
        self.resident += bytes;
        self.slots.insert(
            tenant,
            Slot {
                version,
                adapter,
                bytes,
                last_used: self.clock,
                pinned: false,
            },
        );
        gauge_max("serve.cache.resident_peak_bytes", self.resident);
        evicted
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pac_model::{EncDecModel, ModelConfig};
    use pac_peft::{ParallelTuner, Technique};
    use pac_tensor::rng::seeded;

    fn adapter(seed: u64) -> TrainCheckpoint {
        let cfg = ModelConfig::micro(2, 1, 16, 2);
        let model = EncDecModel::new(&cfg, 2, &mut seeded(seed));
        let t = ParallelTuner::new(model, 4, 2, &mut seeded(seed + 1));
        TrainCheckpoint::capture(&t, 0, 0, 0)
    }

    #[test]
    fn budget_comes_from_the_planner_ceiling() {
        let cfg = ModelConfig::micro(2, 1, 16, 2);
        let cost = CostModel::new(cfg, Technique::ParallelAdapters { reduction: 4 }, 8);
        let dev = DeviceSpec::jetson_nano();
        let open = CacheBudget::plan(&dev, &cost, 4, None);
        assert!(open.device_ceiling_bytes > 0);
        assert!(open.device_ceiling_bytes < dev.usable_memory as u64);
        assert_eq!(open.budget_bytes, open.device_ceiling_bytes);
        let clamped = CacheBudget::plan(&dev, &cost, 4, Some(1234));
        assert_eq!(clamped.budget_bytes, 1234);
        assert_eq!(clamped.device_ceiling_bytes, open.device_ceiling_bytes);
    }

    #[test]
    fn lru_evicts_oldest_unpinned_first_and_respects_pins() {
        let a = adapter(1);
        let bytes = a.size_bytes() as u64;
        // Room for exactly two adapters.
        let mut cache = AdapterCache::new(2 * bytes + 1);
        assert!(cache.insert(1, 1, a.clone()).is_empty());
        assert!(cache.insert(2, 1, a.clone()).is_empty());
        // Touch tenant 1 so tenant 2 is LRU.
        assert!(cache.get(1).is_some());
        assert_eq!(cache.insert(3, 1, a.clone()), vec![2]);
        assert!(cache.contains(1) && cache.contains(3) && !cache.contains(2));

        // Pin both residents: the next insert evicts nothing and the
        // working set overshoots the budget rather than breaking a pin.
        cache.pin(1);
        cache.pin(3);
        assert!(cache.insert(4, 1, a.clone()).is_empty());
        assert!(cache.resident_bytes() > cache.budget_bytes());
        cache.unpin(1);
        cache.unpin(3);
        // Once the pins release, re-inserting evicts back under budget;
        // the replaced slot is not double-counted.
        cache.insert(4, 2, a.clone());
        assert!(cache.resident_bytes() <= cache.budget_bytes());
        assert_eq!(cache.peek_version(4), Some(2));
        let (hits, misses, _) = cache.stats();
        assert_eq!((hits, misses), (1, 0));
        assert!(cache.get(99).is_none());
        assert_eq!(cache.stats().1, 1);
    }
}
