//! Loopback serve demo: tenant clients stream `JobSubmit` frames over
//! real TCP to the same rendezvous listener the training world uses, the
//! platform runs every job, and `JobDone` replies carry each job's
//! published adapter version and final loss back.
//!
//! One connection, many jobs: the first `JobSubmit` classifies the
//! connection via [`Rendezvous::try_accept_admission`]
//! ([`Admission::Job`]), further submissions stream on the same
//! connection, and a `Shutdown` frame marks the end of the batch. Replies
//! come back in submission order after the run, so the client can match
//! them positionally.

use std::fmt;
use std::time::Duration;

use pac_net::{Admission, Msg, NetError, Rendezvous, Tcp, Transport};
use pac_store::MemStore;

use crate::scheduler::{JobSpec, ServeConfig, ServeError, ServePlatform, ServeReport};

/// Demo shape: how many tenants, how many jobs each, how many ranks.
#[derive(Debug, Clone)]
pub struct DemoConfig {
    /// Tenant population; tenant ids are `0..tenants`.
    pub tenants: u64,
    /// Jobs per tenant (each a burst against the tenant's adapter).
    pub jobs_per_tenant: usize,
    /// Rank executors in the world.
    pub ranks: usize,
    /// Cached training steps per job.
    pub steps: usize,
    /// Tenants whose *second* job faults mid-burst (isolation showcase).
    pub fault_tenants: Vec<u64>,
    /// Plants the reset-skip bug in the platform (self-test target).
    pub buggify_skip_reset: bool,
    /// Completed jobs per hit-rate trajectory sample.
    pub trajectory_window: usize,
    /// Cache slots per rank (budget = slots × trained-adapter bytes).
    pub cache_slots_per_rank: usize,
    /// Every `k`-th tenant is a *returning* tenant: it parks between its
    /// jobs and re-enters through the admission backlog, so its adapter
    /// is usually evicted by the time it comes back (the realistic source
    /// of cold misses). `0` makes every tenant an interactive session
    /// that stays in the window (all-warm revisits).
    pub returning_every: u64,
}

impl DemoConfig {
    /// `tenants` tenants × 2 jobs over `ranks` ranks, no faults.
    pub fn new(tenants: u64, ranks: usize) -> Self {
        DemoConfig {
            tenants,
            jobs_per_tenant: 2,
            ranks,
            steps: 2,
            fault_tenants: Vec::new(),
            buggify_skip_reset: false,
            trajectory_window: 100,
            cache_slots_per_rank: 6,
            returning_every: 4,
        }
    }

    /// The job batch a client submits: per-tenant sessions in tenant
    /// order, each tenant's jobs back to back in the stream (the
    /// platform's admission window restores concurrency).
    pub fn jobs(&self) -> Vec<JobSpec> {
        let mut out = Vec::with_capacity(self.tenants as usize * self.jobs_per_tenant);
        for tenant in 0..self.tenants {
            for round in 0..self.jobs_per_tenant {
                let faulted = round == 1 && self.fault_tenants.contains(&tenant);
                let returning = self.returning_every > 0 && tenant % self.returning_every == 0;
                out.push(JobSpec {
                    tenant,
                    steps: self.steps,
                    seed: 4000 + round as u64,
                    fault_at: if faulted { Some(1) } else { None },
                    park: returning && round + 1 < self.jobs_per_tenant,
                });
            }
        }
        out
    }
}

/// Demo failure: network or platform.
#[derive(Debug)]
pub enum DemoError {
    /// A wire/transport failure on either side.
    Net(NetError),
    /// The platform failed fatally (registry/store).
    Serve(ServeError),
    /// The client saw a reply stream that didn't match its submissions.
    Protocol(String),
}

impl fmt::Display for DemoError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DemoError::Net(e) => write!(f, "demo net: {e}"),
            DemoError::Serve(e) => write!(f, "demo serve: {e}"),
            DemoError::Protocol(s) => write!(f, "demo protocol: {s}"),
        }
    }
}

impl std::error::Error for DemoError {}

impl From<NetError> for DemoError {
    fn from(e: NetError) -> Self {
        DemoError::Net(e)
    }
}

impl From<ServeError> for DemoError {
    fn from(e: ServeError) -> Self {
        DemoError::Serve(e)
    }
}

/// What the demo proved end to end.
#[derive(Debug)]
pub struct DemoReport {
    /// The platform's own report.
    pub serve: ServeReport,
    /// `JobDone` replies the client received, in submission order:
    /// `(tenant, version, faulted, final_loss)`.
    pub acks: Vec<(u64, u32, bool, f32)>,
}

/// Runs the loopback demo: binds a rendezvous listener, streams every
/// job from a client thread, services the batch through a
/// [`ServePlatform`] over an in-memory registry store, and returns both
/// sides' views.
pub fn run_loopback_demo(cfg: &DemoConfig) -> Result<DemoReport, DemoError> {
    let rdv = Rendezvous::bind_on(&Tcp::LOOPBACK)?;
    let port = rdv.port();
    let jobs = cfg.jobs();
    let n_jobs = jobs.len();

    let client_jobs: Vec<(u64, u32, u64)> = jobs
        .iter()
        .map(|j| (j.tenant, j.steps as u32, j.seed))
        .collect();
    let client = std::thread::spawn(move || -> Result<Vec<(u64, u32, bool, f32)>, NetError> {
        let mut conn = Tcp::LOOPBACK.connect(port, Duration::from_secs(30))?;
        for (tenant, steps, seed) in client_jobs {
            conn.send(&Msg::JobSubmit {
                tenant,
                steps,
                seed,
            })?;
        }
        conn.send(&Msg::Shutdown)?;
        // The whole batch computes before the first reply: wait long.
        conn.set_timeout(Some(Duration::from_secs(600)))?;
        let mut acks = Vec::with_capacity(n_jobs);
        while acks.len() < n_jobs {
            match conn.recv()? {
                Msg::JobDone {
                    tenant,
                    version,
                    faulted,
                    final_loss,
                } => acks.push((tenant, version, faulted, final_loss)),
                _ => return Err(NetError::Malformed("expected JobDone replies")),
            }
        }
        Ok(acks)
    });

    // Server side: classify the dial, then drain the submission stream.
    let admission = rdv
        .try_accept_admission(Duration::from_secs(30), Duration::from_secs(30))?
        .ok_or(DemoError::Protocol("no client dialed".to_string()))?;
    let (mut conn, first) = match admission {
        Admission::Job {
            conn,
            tenant,
            steps,
            seed,
        } => (conn, (tenant, steps, seed)),
        Admission::Worker(_) => {
            return Err(DemoError::Protocol(
                "expected a tenant job, got a worker Hello".to_string(),
            ))
        }
    };
    let mut submitted = vec![first];
    loop {
        match conn.recv()? {
            Msg::JobSubmit {
                tenant,
                steps,
                seed,
            } => submitted.push((tenant, steps, seed)),
            Msg::Shutdown => break,
            _ => {
                return Err(DemoError::Protocol(
                    "expected JobSubmit or Shutdown".to_string(),
                ))
            }
        }
    }
    // Re-attach the server-side-only fault plan (fault injection never
    // rides the wire) by matching submissions against the config's batch.
    if submitted.len() != jobs.len() {
        return Err(DemoError::Protocol(format!(
            "client submitted {} jobs, expected {}",
            submitted.len(),
            jobs.len()
        )));
    }

    let mut serve_cfg = ServeConfig::micro(cfg.ranks);
    serve_cfg.cached_adapters_per_rank = cfg.cache_slots_per_rank;
    serve_cfg.trajectory_window = cfg.trajectory_window;
    serve_cfg.buggify_skip_reset = cfg.buggify_skip_reset;
    let mut platform = ServePlatform::new(serve_cfg, MemStore::new())?;
    let report = platform.run(&jobs)?;

    for outcome in &report.job_outcomes {
        conn.send(&Msg::JobDone {
            tenant: outcome.tenant,
            version: outcome.version,
            faulted: outcome.faulted,
            final_loss: outcome.final_loss,
        })?;
    }
    let acks = client
        .join()
        .map_err(|_| DemoError::Protocol("client thread panicked".to_string()))??;
    Ok(DemoReport {
        serve: report,
        acks,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn loopback_demo_round_trips_jobs_and_replies() {
        let mut cfg = DemoConfig::new(10, 2);
        cfg.fault_tenants = vec![3];
        cfg.trajectory_window = 5;
        let report = run_loopback_demo(&cfg).unwrap();
        assert_eq!(report.acks.len(), 20);
        assert_eq!(report.serve.jobs_completed, 19);
        assert_eq!(report.serve.jobs_faulted, 1);
        // The client's acks agree with the platform's outcomes.
        for (ack, outcome) in report.acks.iter().zip(&report.serve.job_outcomes) {
            assert_eq!(ack.0, outcome.tenant);
            assert_eq!(ack.1, outcome.version);
            assert_eq!(ack.2, outcome.faulted);
        }
        // Tenant 3's second job faulted: it stays at version 1, the fault
        // is attributed to it, and nobody else faulted.
        let faulted: Vec<_> = report.acks.iter().filter(|a| a.2).collect();
        assert_eq!(faulted.len(), 1);
        assert_eq!(faulted[0].0, 3);
    }
}
