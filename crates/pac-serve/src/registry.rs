//! Versioned adapter registry over the content-addressed [`Store`].
//!
//! Each publish commits the tenant's PACCKPT2 adapter bytes with a
//! 16-byte `PACT` meta record `(tenant, version)`. Versions are 1-based
//! and monotonic per tenant; the store retains every commit, so any
//! historical version stays fetchable (`committed(seq)`), and the whole
//! tenant index is rebuilt by scanning the log — no side index to lose.
//! Chunk-level dedup in the store makes the marginal cost of the
//! thousandth near-identical adapter a fraction of its nominal size;
//! [`AdapterRegistry::dedup_stats`] is the receipt.

use std::collections::BTreeMap;
use std::fmt;

use pac_peft::{CheckpointError, TrainCheckpoint};
use pac_store::{DedupStats, Store, StoreError};
use pac_telemetry::counter_inc;

/// Magic prefix of a registry meta record.
const META_MAGIC: &[u8; 4] = b"PACT";

/// Encodes the `(tenant, version)` tag committed alongside adapter bytes.
fn encode_meta(tenant: u64, version: u32) -> Vec<u8> {
    let mut meta = Vec::with_capacity(16);
    meta.extend_from_slice(META_MAGIC);
    meta.extend_from_slice(&tenant.to_le_bytes());
    meta.extend_from_slice(&version.to_le_bytes());
    meta
}

/// Decodes a registry meta record; `None` for foreign commits (the store
/// may be shared with non-registry snapshots, which the index skips).
fn decode_meta(meta: &[u8]) -> Option<(u64, u32)> {
    if meta.len() != 16 || &meta[..4] != META_MAGIC {
        return None;
    }
    let tenant = u64::from_le_bytes(meta[4..12].try_into().ok()?);
    let version = u32::from_le_bytes(meta[12..16].try_into().ok()?);
    Some((tenant, version))
}

/// Registry failure: the store or the checkpoint codec underneath.
#[derive(Debug)]
pub enum RegistryError {
    /// The backing [`Store`] failed.
    Store(StoreError),
    /// Adapter bytes failed to encode or decode as PACCKPT2.
    Checkpoint(CheckpointError),
    /// A fetched commit's meta did not match the index (corrupt index
    /// rebuild or a store that reordered history — never expected).
    Inconsistent(&'static str),
}

impl fmt::Display for RegistryError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RegistryError::Store(e) => write!(f, "registry store: {e}"),
            RegistryError::Checkpoint(e) => write!(f, "registry checkpoint: {e}"),
            RegistryError::Inconsistent(what) => write!(f, "registry inconsistent: {what}"),
        }
    }
}

impl std::error::Error for RegistryError {}

impl From<StoreError> for RegistryError {
    fn from(e: StoreError) -> Self {
        RegistryError::Store(e)
    }
}

impl From<CheckpointError> for RegistryError {
    fn from(e: CheckpointError) -> Self {
        RegistryError::Checkpoint(e)
    }
}

/// The tenant → adapter-version catalog over a [`Store`].
#[derive(Debug)]
pub struct AdapterRegistry<S: Store> {
    store: S,
    /// tenant → [(version, store seq)], versions ascending.
    index: BTreeMap<u64, Vec<(u32, u64)>>,
}

impl<S: Store> AdapterRegistry<S> {
    /// Opens a registry over `store`, rebuilding the tenant index by
    /// scanning every committed snapshot's meta record. Commits without a
    /// `PACT` meta are skipped, so the registry can share a store with
    /// other snapshot traffic.
    pub fn open(store: S) -> Result<Self, RegistryError> {
        let mut index: BTreeMap<u64, Vec<(u32, u64)>> = BTreeMap::new();
        for seq in 0..store.commits() {
            if let Some(c) = store.committed(seq)? {
                if let Some((tenant, version)) = decode_meta(&c.meta) {
                    index.entry(tenant).or_default().push((version, seq));
                }
            }
        }
        for versions in index.values_mut() {
            versions.sort_unstable();
        }
        Ok(AdapterRegistry { store, index })
    }

    /// Publishes `adapter` as the tenant's next version; returns it
    /// (1-based). The commit is atomic in the store; the index entry is
    /// added only after the commit succeeds.
    pub fn publish(
        &mut self,
        tenant: u64,
        adapter: &TrainCheckpoint,
    ) -> Result<u32, RegistryError> {
        let version = self.latest_version(tenant).map_or(1, |v| v + 1);
        let payload = adapter.to_bytes()?;
        let seq = self.store.commit(&payload, &encode_meta(tenant, version))?;
        self.index.entry(tenant).or_default().push((version, seq));
        counter_inc("serve.registry.publishes");
        Ok(version)
    }

    /// The tenant's newest published version, if any.
    pub fn latest_version(&self, tenant: u64) -> Option<u32> {
        self.index
            .get(&tenant)
            .and_then(|v| v.last())
            .map(|&(version, _)| version)
    }

    /// Fetches and decodes one historical adapter version.
    pub fn fetch(
        &self,
        tenant: u64,
        version: u32,
    ) -> Result<Option<TrainCheckpoint>, RegistryError> {
        let seq = match self
            .index
            .get(&tenant)
            .and_then(|v| v.iter().find(|&&(ver, _)| ver == version))
        {
            Some(&(_, seq)) => seq,
            None => return Ok(None),
        };
        let committed = self
            .store
            .committed(seq)?
            .ok_or(RegistryError::Inconsistent(
                "indexed seq missing from store",
            ))?;
        if decode_meta(&committed.meta) != Some((tenant, version)) {
            return Err(RegistryError::Inconsistent("meta mismatch at indexed seq"));
        }
        Ok(Some(TrainCheckpoint::from_bytes(&committed.payload)?))
    }

    /// Fetches the tenant's newest adapter, if any.
    pub fn fetch_latest(
        &self,
        tenant: u64,
    ) -> Result<Option<(u32, TrainCheckpoint)>, RegistryError> {
        match self.latest_version(tenant) {
            Some(version) => Ok(self.fetch(tenant, version)?.map(|ck| (version, ck))),
            None => Ok(None),
        }
    }

    /// Number of tenants with at least one published adapter.
    pub fn tenants(&self) -> usize {
        self.index.len()
    }

    /// Number of versions published for `tenant`.
    pub fn versions(&self, tenant: u64) -> usize {
        self.index.get(&tenant).map_or(0, Vec::len)
    }

    /// Cross-tenant chunk-sharing ledger from the backing store.
    pub fn dedup_stats(&self) -> DedupStats {
        self.store.dedup_stats()
    }

    /// The backing store.
    pub fn store(&self) -> &S {
        &self.store
    }

    /// Consumes the registry, returning the backing store (e.g. to reopen
    /// and prove the index is log-derived).
    pub fn into_store(self) -> S {
        self.store
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pac_model::{EncDecModel, ModelConfig};
    use pac_peft::ParallelTuner;
    use pac_store::MemStore;
    use pac_tensor::rng::seeded;

    fn tuner(seed: u64) -> ParallelTuner {
        let cfg = ModelConfig::micro(2, 1, 16, 2);
        let model = EncDecModel::new(&cfg, 2, &mut seeded(seed));
        ParallelTuner::new(model, 4, 2, &mut seeded(seed + 1))
    }

    #[test]
    fn versions_are_monotonic_per_tenant_and_survive_reopen() {
        let t = tuner(11);
        let ck = pac_peft::TrainCheckpoint::capture(&t, 0, 3, 3);
        let mut reg = AdapterRegistry::open(MemStore::new()).unwrap();
        assert_eq!(reg.publish(7, &ck).unwrap(), 1);
        assert_eq!(reg.publish(7, &ck).unwrap(), 2);
        assert_eq!(reg.publish(9, &ck).unwrap(), 1);
        assert_eq!(reg.latest_version(7), Some(2));
        assert_eq!(reg.versions(7), 2);
        assert_eq!(reg.tenants(), 2);

        // The index is pure log: reopen over the same store rebuilds it.
        let reopened = AdapterRegistry::open(reg.into_store()).unwrap();
        assert_eq!(reopened.latest_version(7), Some(2));
        assert_eq!(reopened.latest_version(9), Some(1));
        let (v, fetched) = reopened.fetch_latest(7).unwrap().unwrap();
        assert_eq!(v, 2);
        assert_eq!(fetched.to_bytes().unwrap(), ck.to_bytes().unwrap());
        // Historical versions stay addressable.
        assert!(reopened.fetch(7, 1).unwrap().is_some());
        assert!(reopened.fetch(7, 3).unwrap().is_none());
        assert!(reopened.fetch(8, 1).unwrap().is_none());
    }

    #[test]
    fn meta_codec_rejects_foreign_records() {
        assert_eq!(decode_meta(&encode_meta(42, 3)), Some((42, 3)));
        assert_eq!(decode_meta(b"PACX0000000000ab"), None);
        assert_eq!(decode_meta(b"short"), None);
    }
}
