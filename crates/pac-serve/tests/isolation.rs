//! Tenant isolation, proven bitwise.
//!
//! The platform's isolation contract: one tenant faulting — or one
//! platform being *miswired* — must never move any other tenant's loss
//! trajectory by a single bit. Both tests run the same job batch through
//! two platforms and compare trajectories bit-for-bit, which only holds
//! because every burst starts from `reset_to(baseline)` + `swap_in` and
//! is therefore a pure function of (tenant, seed, adapter version), not
//! of the rank, the cache, or the schedule that ran it.
//!
//! The second test is the planted-bug self-test (the `simsweep
//! --planted` idiom): flipping `buggify_skip_reset` plants the one bug
//! the isolation suite exists to catch — a rank skipping the hygiene
//! reset between tenants — and asserts the bitwise detector actually
//! fires. A detector that cannot see the planted bug would be
//! vacuous.

use std::collections::BTreeMap;

use pac_serve::{JobSpec, ServeConfig, ServePlatform};
use pac_store::MemStore;

const TENANTS: u64 = 8;
const JOBS_PER_TENANT: usize = 2;

fn batch(fault_tenant: Option<u64>) -> Vec<JobSpec> {
    let mut jobs = Vec::new();
    for tenant in 0..TENANTS {
        for round in 0..JOBS_PER_TENANT {
            jobs.push(JobSpec {
                tenant,
                steps: 2,
                seed: 300 + round as u64,
                fault_at: if round == 1 && fault_tenant == Some(tenant) {
                    Some(1)
                } else {
                    None
                },
                park: false,
            });
        }
    }
    jobs
}

/// Per-tenant loss trajectories as bit-patterns.
type LossBits = BTreeMap<u64, Vec<u32>>;
/// Per-tenant `(version, final loss)` from the report.
type FinalLosses = BTreeMap<u64, (u32, f32)>;

/// Runs one platform over the batch; returns each tenant's full loss
/// trajectory (bit-patterns) plus the report's final-loss map.
fn trajectories(buggify: bool, fault_tenant: Option<u64>) -> (LossBits, FinalLosses) {
    let mut cfg = ServeConfig::micro(2);
    cfg.buggify_skip_reset = buggify;
    let mut platform = ServePlatform::new(cfg, MemStore::new()).unwrap();
    let report = platform.run(&batch(fault_tenant)).unwrap();
    let mut losses = BTreeMap::new();
    for tenant in 0..TENANTS {
        let session = platform.session(tenant).expect("tenant was admitted");
        losses.insert(tenant, session.losses.iter().map(|l| l.to_bits()).collect());
    }
    (losses, report.final_losses)
}

#[test]
fn tenant_fault_is_attributed_without_touching_other_trajectories() {
    let (clean, clean_final) = trajectories(false, None);
    let (faulted, faulted_final) = trajectories(false, Some(5));

    // The faulted tenant lost its second burst: shorter trajectory,
    // parked at version 1 in the clean run vs absent from the faulted
    // run's final map (its phase is Faulted, not Parked).
    assert_eq!(clean[&5].len(), 2 * JOBS_PER_TENANT);
    assert_eq!(faulted[&5].len(), 2, "faulted burst must publish nothing");
    assert_eq!(clean_final[&5].0, JOBS_PER_TENANT as u32);
    assert!(!faulted_final.contains_key(&5));

    // Everyone else: bitwise identical trajectories and final losses,
    // even though the fault perturbed cache recency and routing for the
    // rest of the run.
    for tenant in (0..TENANTS).filter(|&t| t != 5) {
        assert_eq!(
            clean[&tenant], faulted[&tenant],
            "tenant {tenant}'s trajectory moved when tenant 5 faulted"
        );
        let (cv, cl) = clean_final[&tenant];
        let (fv, fl) = faulted_final[&tenant];
        assert_eq!((cv, cl.to_bits()), (fv, fl.to_bits()));
    }
}

#[test]
fn planted_reset_skip_is_caught_by_the_bitwise_detector() {
    let (clean_a, _) = trajectories(false, None);
    let (clean_b, _) = trajectories(false, None);
    // Sanity: the detector is quiet on two healthy runs (platform
    // determinism end to end).
    assert_eq!(clean_a, clean_b, "healthy runs must be bitwise identical");

    // Plant the bug: ranks skip the hygiene reset before fresh tenants.
    let (planted, _) = trajectories(true, None);
    let diverged: Vec<u64> = (0..TENANTS).filter(|t| clean_a[t] != planted[t]).collect();
    assert!(
        !diverged.is_empty(),
        "the planted reset-skip bug must be visible to the bitwise detector"
    );
    // The very first tenant on each rank trains from a pristine clone,
    // so the leak cannot show up everywhere — but with 8 tenants over 2
    // ranks it must show up somewhere past the first wave.
    assert!(
        diverged.iter().any(|&t| t >= 2),
        "cross-tenant leakage should hit tenants after the first wave, got {diverged:?}"
    );
}
