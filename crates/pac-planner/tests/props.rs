//! Property-based tests for the recovery planner: `replan_without` must be
//! deterministic (recovery is replayable), monotone on homogeneous pools
//! (losing a device never speeds up the plan), and index-robust
//! (duplicates dedupe, out-of-range rejects).

use pac_cluster::{Cluster, CostModel, DeviceSpec, LinkSpec};
use pac_model::ModelConfig;
use pac_peft::Technique;
use pac_planner::Planner;
use proptest::prelude::*;

fn cost() -> CostModel {
    CostModel::new(ModelConfig::t5_base(), Technique::parallel_default(), 64)
}

fn planner(n: usize) -> Planner {
    Planner::paper_defaults(Cluster::nanos(n), 4)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Replanning after the same failure always yields the same plan —
    /// the whole recovery path is replayable from (plan, seed).
    #[test]
    fn replan_without_is_deterministic(n in 3usize..6, dead_sel in 0usize..100) {
        let dead = dead_sel % n;
        let p = planner(n);
        let a = p.replan_without(&cost(), &[dead]);
        let b = p.replan_without(&cost(), &[dead]);
        match (a, b) {
            (Some(a), Some(b)) => {
                prop_assert_eq!(a.best_makespan_s.to_bits(), b.best_makespan_s.to_bits());
                prop_assert_eq!(a.best_micro_batches, b.best_micro_batches);
                prop_assert_eq!(format!("{:?}", a.best), format!("{:?}", b.best));
            }
            (None, None) => {}
            _ => prop_assert!(false, "replan feasibility flapped"),
        }
    }

    /// On a homogeneous pool, losing a device never *improves* the best
    /// makespan: the survivors are a strict subset of identical hardware.
    #[test]
    fn removing_a_device_never_improves_makespan(n in 3usize..6, dead_sel in 0usize..100) {
        let dead = dead_sel % n;
        let p = planner(n);
        let before = p.plan(&cost()).expect("T5-Base plannable on nanos");
        let after = p
            .replan_without(&cost(), &[dead])
            .expect("still plannable on survivors");
        prop_assert!(
            after.best_makespan_s >= before.best_makespan_s * (1.0 - 1e-9),
            "lost a device yet sped up: {} -> {}",
            before.best_makespan_s,
            after.best_makespan_s
        );
    }

    /// Planning against a *measured* link (from the loopback calibration
    /// bench) composes with the search: on identical hardware, a strictly
    /// faster fabric never worsens the best makespan — every candidate's
    /// comm time shrinks, so the min over candidates does too.
    #[test]
    fn faster_measured_link_never_worsens_makespan(
        n in 3usize..6,
        bw_mbps in 32.0f64..256.0,
        lat_ms in 0.1f64..5.0,
    ) {
        let slow = LinkSpec::measured(bw_mbps * 1e6, lat_ms * 1e-3);
        let fast = LinkSpec::measured(bw_mbps * 4.0 * 1e6, lat_ms * 0.25 * 1e-3);
        let plan = |link: LinkSpec| {
            Planner::paper_defaults(Cluster::nanos(n).with_link(link), 4)
                .plan(&cost())
                .expect("plannable on nanos")
        };
        let (s, f) = (plan(slow), plan(fast));
        prop_assert!(
            f.best_makespan_s <= s.best_makespan_s * (1.0 + 1e-9),
            "4x bandwidth + 1/4 latency slowed the plan: {} -> {}",
            s.best_makespan_s,
            f.best_makespan_s
        );
    }

    /// Duplicate failure reports collapse to a single failure.
    #[test]
    fn duplicate_failures_equal_deduped(n in 3usize..6, dead_sel in 0usize..100) {
        let dead = dead_sel % n;
        let p = planner(n);
        let once = p.replan_without(&cost(), &[dead]);
        let thrice = p.replan_without(&cost(), &[dead, dead, dead]);
        match (once, thrice) {
            (Some(a), Some(b)) => {
                prop_assert_eq!(a.best_makespan_s.to_bits(), b.best_makespan_s.to_bits());
            }
            (None, None) => {}
            _ => prop_assert!(false, "dedup changed feasibility"),
        }
    }

    /// Admitting joined devices never worsens the best makespan vs. the
    /// pre-join plan: the pre-join pool is always a candidate of
    /// `replan_with`'s sweep, so device gain is monotone by construction.
    #[test]
    fn replan_with_never_worsens_makespan(n in 2usize..5, extra in 1usize..4) {
        let p = planner(n);
        let before = p.plan(&cost()).expect("T5-Base plannable on nanos");
        let joined = vec![DeviceSpec::jetson_nano(); extra];
        let after = p
            .replan_with(&cost(), &joined)
            .expect("grown pool plannable");
        prop_assert!(
            after.best_makespan_s <= before.best_makespan_s * (1.0 + 1e-9),
            "gained {} device(s) yet slowed down: {} -> {}",
            extra,
            before.best_makespan_s,
            after.best_makespan_s
        );
        // Indices in the admitted plan address the appended pool, so the
        // original devices keep their indices.
        prop_assert!(after.device_indices.iter().all(|&i| i < n + extra));
    }

    /// Join admission is deterministic — elastic recovery is replayable.
    #[test]
    fn replan_with_is_deterministic(n in 2usize..5, extra in 1usize..4) {
        let p = planner(n);
        let joined = vec![DeviceSpec::jetson_nano(); extra];
        let a = p.replan_with(&cost(), &joined);
        let b = p.replan_with(&cost(), &joined);
        match (a, b) {
            (Some(a), Some(b)) => {
                prop_assert_eq!(a.best_makespan_s.to_bits(), b.best_makespan_s.to_bits());
                prop_assert_eq!(a.best_micro_batches, b.best_micro_batches);
                prop_assert_eq!(a.device_indices, b.device_indices);
            }
            (None, None) => {}
            _ => prop_assert!(false, "join admission flapped"),
        }
    }

    /// Out-of-range indices and whole-pool failures are rejected, not
    /// silently ignored.
    #[test]
    fn invalid_failure_sets_are_rejected(n in 2usize..5) {
        let p = planner(n);
        prop_assert!(p.replan_without(&cost(), &[n]).is_none());
        let all: Vec<usize> = (0..n).collect();
        prop_assert!(p.replan_without(&cost(), &all).is_none());
        // Duplicates must not smuggle a "partial" failure set past the
        // whole-pool check: [0, 0] on a 2-pool still leaves a survivor.
        if n == 2 {
            prop_assert!(p.replan_without(&cost(), &[0, 0]).is_some());
        }
    }
}
