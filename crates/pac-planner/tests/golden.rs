//! Golden plans for Eq. 4–6 on small heterogeneous clusters.
//!
//! The planner's stage sweep + partition DP + pipeline simulation is pure
//! arithmetic over the cost model, so its output for a fixed cluster is a
//! *contract*: these tests pin the selected stage count, the exact layer
//! partition, and the device grouping for three representative clusters.
//! If a cost-model or DP change moves one of these plans, that is a
//! behavior change that must be reviewed, not noise.

use pac_cluster::{Cluster, CostModel, DeviceSpec, LinkSpec};
use pac_model::ModelConfig;
use pac_peft::Technique;
use pac_planner::{PlanOutcome, Planner};

/// Compact, readable fingerprint of a plan: stage layer ranges with their
/// device groups, plus the devices the plan uses.
fn fingerprint(out: &PlanOutcome) -> String {
    let stages: Vec<String> = out
        .best
        .stages
        .iter()
        .map(|s| format!("[{}..{})x{:?}", s.layer_start, s.layer_end, s.devices))
        .collect();
    format!(
        "stages={} micro={} plan={} devices={:?}",
        out.best.stages.len(),
        out.best_micro_batches,
        stages.join(" "),
        out.device_indices,
    )
}

fn plan_cost(
    devices: Vec<DeviceSpec>,
    link: LinkSpec,
    cost: &CostModel,
    mini: usize,
) -> PlanOutcome {
    let cluster = Cluster { devices, link };
    Planner::paper_defaults(cluster, mini)
        .plan(cost)
        .expect("feasible plan")
}

fn plan_with(
    devices: Vec<DeviceSpec>,
    link: LinkSpec,
    model: ModelConfig,
    technique: Technique,
    mini: usize,
) -> PlanOutcome {
    plan_cost(devices, link, &CostModel::new(model, technique, 64), mini)
}

fn plan(devices: Vec<DeviceSpec>, link: LinkSpec, model: ModelConfig, mini: usize) -> PlanOutcome {
    plan_with(devices, link, model, Technique::parallel_default(), mini)
}

/// Two Nanos plus a TX2 on the paper's 128 Mbps LAN: the classic
/// heterogeneous pool from the paper's device-grouping experiment.
#[test]
fn golden_two_nanos_one_tx2() {
    let out = plan(
        vec![
            DeviceSpec::jetson_nano(),
            DeviceSpec::jetson_nano(),
            DeviceSpec::jetson_tx2(),
        ],
        LinkSpec::lan_128mbps(),
        ModelConfig::t5_base(),
        8,
    );
    assert_eq!(
        fingerprint(&out),
        "stages=2 micro=8 plan=[0..3)x[0] [3..24)x[1] devices=[0, 2]"
    );
}

/// A strong/medium/weak trio (TX2, Nano, Pi 4) on gigabit: the planner
/// must decide whether the Pi is worth keeping at all.
#[test]
fn golden_tx2_nano_pi4() {
    let out = plan(
        vec![
            DeviceSpec::jetson_tx2(),
            DeviceSpec::jetson_nano(),
            DeviceSpec::raspberry_pi4(),
        ],
        LinkSpec::gigabit(),
        ModelConfig::t5_base(),
        8,
    );
    assert_eq!(
        fingerprint(&out),
        "stages=2 micro=8 plan=[0..11)x[0] [11..24)x[1] devices=[0, 1]"
    );
}

/// Memory pressure forcing the stage count *above* latency-optimal: a
/// BART-Large f32 replica (~1.6 GB) does not fit one Nano's 1.5 GB, so a
/// 1-stage (pure DP) plan is infeasible even though fewer stages would
/// mean less pipeline communication.
#[test]
fn golden_memory_pressure_forces_deeper_pipeline() {
    // Reduction 64 keeps the adapter allreduce cheap, so with enough
    // memory pure data parallelism is the latency-optimal shape — making
    // the memory ceiling the only reason to pipeline.
    let lean = Technique::ParallelAdapters { reduction: 64 };
    let out = plan_with(
        vec![
            DeviceSpec::jetson_nano(),
            DeviceSpec::jetson_nano(),
            DeviceSpec::jetson_nano(),
        ],
        LinkSpec::gigabit(),
        ModelConfig::bart_large(),
        lean,
        8,
    );
    assert_eq!(
        fingerprint(&out),
        "stages=2 micro=8 plan=[0..9)x[0, 1] [9..24)x[2] devices=[0, 1, 2]"
    );
    assert!(
        out.best.stages.len() >= 2,
        "one Nano cannot hold a BART-Large replica"
    );
    // The partition DP prunes memory-infeasible stage counts entirely, so
    // the 1-stage (pure DP) candidate does not even appear.
    assert!(
        out.candidates.iter().all(|c| c.stages >= 2),
        "a 1-stage plan must be memory-infeasible here"
    );

    // Prove it is *memory* pressure that forced the depth: the same
    // cluster with its memory ceiling lifted picks a shallower plan.
    let roomy = DeviceSpec {
        usable_memory: 64 * 1024 * 1024 * 1024,
        ..DeviceSpec::jetson_nano()
    };
    let unconstrained = plan_with(
        vec![roomy.clone(), roomy.clone(), roomy],
        LinkSpec::gigabit(),
        ModelConfig::bart_large(),
        lean,
        8,
    );
    assert_eq!(
        fingerprint(&unconstrained),
        "stages=1 micro=2 plan=[0..24)x[0, 1, 2] devices=[0, 1, 2]"
    );
    assert!(
        unconstrained.best.stages.len() < out.best.stages.len(),
        "without the memory ceiling the planner picks {} stages, not fewer than {}",
        unconstrained.best.stages.len(),
        out.best.stages.len()
    );
}

/// The same three golden clusters re-planned with frozen-side int8
/// accounting (`CostModel::with_int8_frozen`): quantized cache/wire/weight
/// bytes change what Eq. 4–6 consider feasible. The headline delta is the
/// memory-pressure cluster — a BART-Large f32 replica exceeds one Nano's
/// ceiling and forces a 2-stage pipeline, while the ~4×-smaller int8
/// replica fits, so pure data parallelism (the latency-optimal shape)
/// becomes plannable on identical hardware.
#[test]
fn golden_int8_replan_fits_where_f32_exceeded_the_ceiling() {
    let lean = Technique::ParallelAdapters { reduction: 64 };
    let nanos = || {
        vec![
            DeviceSpec::jetson_nano(),
            DeviceSpec::jetson_nano(),
            DeviceSpec::jetson_nano(),
        ]
    };

    // f32 reference (same as golden_memory_pressure_forces_deeper_pipeline):
    // no 1-stage candidate survives the memory check.
    let f32_out = plan_with(
        nanos(),
        LinkSpec::gigabit(),
        ModelConfig::bart_large(),
        lean,
        8,
    );
    assert!(f32_out.candidates.iter().all(|c| c.stages >= 2));

    // int8 accounting: the quantized replica fits a single Nano, pure DP
    // appears and wins.
    let q8_cost = CostModel::new(ModelConfig::bart_large(), lean, 64).with_int8_frozen();
    let q8_out = plan_cost(nanos(), LinkSpec::gigabit(), &q8_cost, 8);
    assert!(
        q8_out.candidates.iter().any(|c| c.stages == 1),
        "int8 accounting must make the 1-stage plan memory-feasible"
    );
    assert_eq!(
        fingerprint(&q8_out),
        "stages=1 micro=2 plan=[0..24)x[0, 1, 2] devices=[0, 1, 2]"
    );
    assert!(q8_out.best.stages.len() < f32_out.best.stages.len());

    // The other two golden clusters were never memory-bound, so int8
    // accounting must not change their selected shapes — only (possibly)
    // their simulated makespans via the smaller Act edges.
    let q8_t5 = CostModel::new(ModelConfig::t5_base(), Technique::parallel_default(), 64)
        .with_int8_frozen();
    let a = plan_cost(
        vec![
            DeviceSpec::jetson_nano(),
            DeviceSpec::jetson_nano(),
            DeviceSpec::jetson_tx2(),
        ],
        LinkSpec::lan_128mbps(),
        &q8_t5,
        8,
    );
    assert_eq!(
        a.best.stages.len(),
        2,
        "shape preserved: {}",
        fingerprint(&a)
    );
    let b = plan_cost(
        vec![
            DeviceSpec::jetson_tx2(),
            DeviceSpec::jetson_nano(),
            DeviceSpec::raspberry_pi4(),
        ],
        LinkSpec::gigabit(),
        &q8_t5,
        8,
    );
    assert_eq!(
        b.best.stages.len(),
        2,
        "shape preserved: {}",
        fingerprint(&b)
    );
}
