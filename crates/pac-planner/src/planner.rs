//! Stage-count sweep and plan selection (paper Eq. 4–6).

use crate::dp::partition_for_stages;
use crate::profile::Profile;
use pac_cluster::{Cluster, CostModel, DeviceSpec};
use pac_parallel::{simulate_plan, ParallelPlan, Schedule};
use serde::{Deserialize, Serialize};

/// One evaluated candidate (a stage count with its optimal partition).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct CandidatePlan {
    /// Number of pipeline stages.
    pub stages: usize,
    /// The bottleneck-optimal plan for this stage count.
    pub plan: ParallelPlan,
    /// Best micro-batch count found for this plan.
    pub micro_batches: usize,
    /// Simulated mini-batch makespan (Eq. 4–6 value), seconds.
    pub makespan_s: f64,
    /// Whether the simulated peak memory exceeds device capacity at every
    /// tried micro-batch count.
    pub oom: bool,
}

/// Outcome of a planning run.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct PlanOutcome {
    /// The selected plan.
    pub best: ParallelPlan,
    /// Micro-batch count the selected plan runs with.
    pub best_micro_batches: usize,
    /// Its simulated makespan (seconds per mini-batch).
    pub best_makespan_s: f64,
    /// Every evaluated candidate for the winning device subset, in
    /// stage-count order.
    pub candidates: Vec<CandidatePlan>,
    /// Cluster indices of the devices the plan actually uses (ascending).
    /// Devices left idle — because an awkward pool size planned slower
    /// than a subset — don't appear.
    pub device_indices: Vec<usize>,
}

/// The PAC planner: sweeps stage counts, solves the partition DP for each,
/// simulates the resulting pipelines and picks the fastest feasible plan.
#[derive(Debug, Clone)]
pub struct Planner {
    /// Target cluster.
    pub cluster: Cluster,
    /// Mini-batch size.
    pub mini_batch: usize,
    /// Number of micro-batches per mini-batch.
    pub micro_batches: usize,
    /// Micro-batch schedule (the paper uses 1F1B).
    pub schedule: Schedule,
}

impl Planner {
    /// Planner with the paper's defaults: 1F1B, micro-batches = devices.
    pub fn paper_defaults(cluster: Cluster, mini_batch: usize) -> Self {
        let micro = cluster.len().max(1);
        Planner {
            cluster,
            mini_batch,
            micro_batches: micro,
            schedule: Schedule::OneFOneB,
        }
    }

    /// Plans for the model/technique described by `cost`.
    ///
    /// Returns `None` when no stage count yields a feasible (non-OOM) plan
    /// — the "OOM" cells of the paper's Table 2.
    pub fn plan(&self, cost: &CostModel) -> Option<PlanOutcome> {
        let profile = Profile::from_cost_model(cost);
        self.plan_from_profile(cost, &profile)
    }

    /// Micro-batch counts the planner tries for each candidate partition:
    /// powers of two up to the mini-batch size, plus the configured
    /// default. The paper's planner treats micro-batching as part of the
    /// configuration space (more micro-batches amortize pipeline bubbles;
    /// fewer keep per-device shares integral for wide groups).
    fn micro_candidates(&self) -> Vec<usize> {
        let mut out = Vec::new();
        let mut m = 1usize;
        while m <= self.mini_batch.max(1) {
            out.push(m);
            m *= 2;
        }
        if !out.contains(&self.micro_batches) && self.micro_batches <= self.mini_batch {
            out.push(self.micro_batches);
        }
        out
    }

    /// Replans after fail-stop of the given devices — the recovery path
    /// when a pool member drops off the LAN mid-training. Duplicate indices
    /// count once (a device fails only once); out-of-range indices are
    /// rejected. Returns `None` when the surviving devices cannot host the
    /// model (or none survive).
    pub fn replan_without(&self, cost: &CostModel, failed: &[usize]) -> Option<PlanOutcome> {
        let mut unique: Vec<usize> = failed.to_vec();
        unique.sort_unstable();
        unique.dedup();
        if unique.last().is_some_and(|&i| i >= self.cluster.len()) {
            return None;
        }
        if unique.len() >= self.cluster.len() {
            return None;
        }
        let survivor = Planner {
            cluster: self.cluster.without_devices(&unique),
            ..self.clone()
        };
        survivor.plan(cost)
    }

    /// Replans after the given devices *join* the pool — the admission
    /// path when a new member Hellos into a running rendezvous. The dual
    /// of [`Planner::replan_without`]: the joined devices are appended to
    /// the current pool (so existing device indices stay valid in the
    /// returned plan's indexing) and both the grown pool and the current
    /// one are swept; whichever plans faster wins, the grown pool on ties.
    /// Because the current pool's plan is always a candidate, the best
    /// makespan is monotone under device gain by construction: admitting
    /// a device can never worsen the plan. Returns `None` only when even
    /// the pre-join pool is unplannable, and an empty `joined` degenerates
    /// to [`Planner::plan`].
    pub fn replan_with(&self, cost: &CostModel, joined: &[DeviceSpec]) -> Option<PlanOutcome> {
        let base = self.plan(cost);
        if joined.is_empty() {
            return base;
        }
        let mut devices = self.cluster.devices.clone();
        devices.extend(joined.iter().cloned());
        let grown = Planner {
            cluster: Cluster {
                devices,
                link: self.cluster.link,
            },
            ..self.clone()
        };
        match (grown.plan(cost), base) {
            (Some(g), Some(b)) => {
                if g.best_makespan_s <= b.best_makespan_s {
                    Some(g)
                } else {
                    Some(b)
                }
            }
            (Some(g), None) => Some(g),
            (None, b) => b,
        }
    }

    /// Plans from an explicit profile (e.g. a measured one).
    ///
    /// The sweep covers device *subsets* as well as stage counts: an
    /// awkward pool size can plan slower than a smaller one (e.g. five
    /// devices force ragged groups where four split cleanly), so the
    /// planner tries leaving the slowest devices idle, fastest-first
    /// prefixes only. This also makes planning monotone under device loss
    /// on homogeneous pools — removing a device only shrinks the searched
    /// subset lattice, so the best makespan can never improve.
    pub fn plan_from_profile(&self, cost: &CostModel, profile: &Profile) -> Option<PlanOutcome> {
        let d = self.cluster.len();
        if d == 0 {
            return None;
        }
        let mut order: Vec<usize> = (0..d).collect();
        order.sort_by(|&a, &b| {
            self.cluster.devices[b]
                .effective_flops()
                .total_cmp(&self.cluster.devices[a].effective_flops())
        });
        let mut best: Option<PlanOutcome> = None;
        for k in 1..=d {
            let mut used: Vec<usize> = order[..k].to_vec();
            used.sort_unstable();
            let sub = Cluster {
                devices: used
                    .iter()
                    .map(|&i| self.cluster.devices[i].clone())
                    .collect(),
                link: self.cluster.link,
            };
            let survivor = Planner {
                cluster: sub,
                ..self.clone()
            };
            if let Some(mut out) = survivor.plan_all_devices(cost, profile) {
                out.device_indices = used;
                if best
                    .as_ref()
                    .map(|b| out.best_makespan_s < b.best_makespan_s)
                    .unwrap_or(true)
                {
                    best = Some(out);
                }
            }
        }
        best
    }

    /// The single-subset sweep: stage counts × micro-batch counts over
    /// *all* of `self.cluster`'s devices.
    fn plan_all_devices(&self, cost: &CostModel, profile: &Profile) -> Option<PlanOutcome> {
        let d = self.cluster.len();
        let mut candidates = Vec::new();
        let mut best: Option<(ParallelPlan, usize, f64)> = None;
        let limit = self
            .cluster
            .devices
            .iter()
            .map(|dev| dev.usable_memory)
            .min()
            .unwrap_or(0);

        let micros = self.micro_candidates();
        for s in 1..=d.min(profile.num_layers()) {
            let mut cand_best: Option<(ParallelPlan, usize, f64)> = None;
            for &micro in &micros {
                let samples_per_micro = self.mini_batch as f64 / micro as f64;
                let Some((plan, _bottleneck)) =
                    partition_for_stages(profile, &self.cluster, s, samples_per_micro, s)
                else {
                    continue;
                };
                let sim = simulate_plan(
                    &self.cluster,
                    cost,
                    &plan,
                    self.mini_batch,
                    micro,
                    self.schedule,
                );
                if sim.oom_stage(limit).is_some() {
                    continue;
                }
                if cand_best
                    .as_ref()
                    .map(|(_, _, t)| sim.makespan_s < *t)
                    .unwrap_or(true)
                {
                    cand_best = Some((plan, micro, sim.makespan_s));
                }
            }
            match cand_best {
                Some((plan, micro, t)) => {
                    if best.as_ref().map(|(_, _, bt)| t < *bt).unwrap_or(true) {
                        best = Some((plan.clone(), micro, t));
                    }
                    candidates.push(CandidatePlan {
                        stages: s,
                        plan,
                        micro_batches: micro,
                        makespan_s: t,
                        oom: false,
                    });
                }
                None => {
                    // Record the infeasibility if a partition existed at all.
                    if let Some((plan, _)) =
                        partition_for_stages(profile, &self.cluster, s, self.mini_batch as f64, s)
                    {
                        candidates.push(CandidatePlan {
                            stages: s,
                            plan,
                            micro_batches: 1,
                            makespan_s: f64::INFINITY,
                            oom: true,
                        });
                    }
                }
            }
        }

        best.map(|(plan, micro, makespan)| PlanOutcome {
            best: plan,
            best_micro_batches: micro,
            best_makespan_s: makespan,
            candidates,
            device_indices: (0..d).collect(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pac_model::ModelConfig;
    use pac_peft::Technique;

    fn planner(n: usize, mini_batch: usize) -> Planner {
        Planner::paper_defaults(Cluster::nanos(n), mini_batch)
    }

    #[test]
    fn plans_are_valid_and_feasible() {
        let cost = CostModel::new(ModelConfig::t5_base(), Technique::parallel_default(), 128);
        let out = planner(4, 4)
            .plan(&cost)
            .expect("T5-Base must be plannable");
        assert!(out.best.validate(24, 4).is_ok());
        assert!(out.best_makespan_s > 0.0);
        assert!(!out.candidates.is_empty());
        // The best plan is the fastest non-OOM candidate.
        let min_feasible = out
            .candidates
            .iter()
            .filter(|c| !c.oom)
            .map(|c| c.makespan_s)
            .fold(f64::INFINITY, f64::min);
        assert!((out.best_makespan_s - min_feasible).abs() < 1e-12);
    }

    #[test]
    fn fig10_bart_large_on_8_nanos_prefers_shallow_wide_plans() {
        // Paper Fig 10: with 8 devices PAC divides BART-Large into 2 stages
        // of 4 devices each rather than Eco-FL's 8-stage straight pipeline.
        let cost = CostModel::new(
            ModelConfig::bart_large(),
            Technique::parallel_default(),
            128,
        );
        let out = planner(8, 8)
            .plan(&cost)
            .expect("BART-Large must be plannable on 8 Nanos");
        assert!(
            out.best.num_stages() < 8,
            "expected a hybrid plan, got {} stages ({})",
            out.best.num_stages(),
            out.best.grouping_string()
        );
        assert!(out.best.num_stages() >= 2, "{}", out.best.grouping_string());
    }

    #[test]
    fn full_t5_large_is_unplannable_on_small_clusters() {
        // Table 2: Full fine-tuning of T5-Large OOMs on every baseline —
        // even pipelined over 4 Nanos the per-stage working set is too big.
        let cost = CostModel::new(ModelConfig::t5_large(), Technique::Full, 128);
        assert!(planner(4, 16).plan(&cost).is_none());
    }

    #[test]
    fn peft_makes_t5_large_plannable() {
        let cost = CostModel::new(ModelConfig::t5_large(), Technique::parallel_default(), 128);
        let out = planner(8, 8).plan(&cost);
        assert!(out.is_some(), "PA should unlock T5-Large on 8 Nanos");
    }

    #[test]
    fn single_device_planning_degenerates_to_standalone() {
        let cost = CostModel::new(ModelConfig::t5_base(), Technique::parallel_default(), 128);
        let out = planner(1, 2).plan(&cost).expect("standalone plan");
        assert_eq!(out.best.num_stages(), 1);
        assert_eq!(out.best.num_devices(), 1);
    }

    #[test]
    fn straggler_shifts_work_away() {
        // With one Nano slowed 4×, the planner's best plan must beat the
        // naive even pipeline (which would put equal work on the
        // straggler) when both are simulated on the straggler cluster.
        let cluster = Cluster::nanos(4).with_straggler(3, 4.0);
        let cost = CostModel::new(ModelConfig::t5_base(), Technique::parallel_default(), 128);
        let planner = Planner::paper_defaults(cluster.clone(), 8);
        let outcome = planner.plan(&cost).expect("plannable with a straggler");

        let layers = cost.layer_costs().len();
        let naive = pac_parallel::ParallelPlan::pipeline_even(layers, 4);
        let naive_sim =
            pac_parallel::simulate_plan(&cluster, &cost, &naive, 8, 4, Schedule::OneFOneB);
        assert!(
            outcome.best_makespan_s < naive_sim.makespan_s,
            "planned {} vs naive {}",
            outcome.best_makespan_s,
            naive_sim.makespan_s
        );
    }

    #[test]
    fn replan_after_failure_recovers() {
        let cost = CostModel::new(ModelConfig::t5_base(), Technique::parallel_default(), 128);
        let planner = planner(8, 8);
        let before = planner.plan(&cost).expect("8 devices plannable");
        // Two devices fail: a valid plan over 6 devices must exist and be
        // slower (or equal) but not catastrophically so.
        let after = planner
            .replan_without(&cost, &[0, 5])
            .expect("6 survivors still plannable");
        assert!(after.best.validate(24, 6).is_ok());
        assert!(after.best_makespan_s >= before.best_makespan_s * 0.9);
        // Losing everything is unplannable.
        assert!(planner
            .replan_without(&cost, &(0..8).collect::<Vec<_>>())
            .is_none());
    }

    #[test]
    fn replan_with_admits_devices_and_never_worsens() {
        let cost = CostModel::new(ModelConfig::t5_base(), Technique::parallel_default(), 128);
        let planner = planner(2, 8);
        let before = planner.plan(&cost).expect("2 devices plannable");
        // Two identical devices join a shrunken pool: the grown plan must
        // be at least as fast, and existing indices stay valid.
        let joined = vec![DeviceSpec::jetson_nano(), DeviceSpec::jetson_nano()];
        let after = planner
            .replan_with(&cost, &joined)
            .expect("grown pool plannable");
        assert!(
            after.best_makespan_s <= before.best_makespan_s * (1.0 + 1e-9),
            "gaining devices worsened the plan: {} -> {}",
            before.best_makespan_s,
            after.best_makespan_s
        );
        assert!(after.device_indices.iter().all(|&i| i < 4));
        // An empty join set degenerates to the current plan.
        let same = planner.replan_with(&cost, &[]).expect("plannable");
        assert_eq!(
            same.best_makespan_s.to_bits(),
            before.best_makespan_s.to_bits()
        );
    }

    #[test]
    fn replan_with_feasibility_matches_direct_grown_plan() {
        // Full T5-Large OOMs on 4 Nanos. A join that grows the pool must
        // report feasibility exactly as a direct plan over the grown pool
        // would — whether or not the extra devices clear the memory wall.
        let full = CostModel::new(ModelConfig::t5_large(), Technique::Full, 128);
        let small = planner(4, 16);
        assert!(small.plan(&full).is_none());
        let joined = vec![DeviceSpec::jetson_nano(); 12];
        let grown_direct = Planner::paper_defaults(Cluster::nanos(16), 16).plan(&full);
        let via_join = small.replan_with(&full, &joined);
        assert_eq!(grown_direct.is_some(), via_join.is_some());
    }

    #[test]
    fn planning_is_fast() {
        // Paper: "the whole planning time is within three seconds on an
        // edge device" — on this machine the full sweep should be well
        // under one second.
        let cost = CostModel::new(ModelConfig::t5_large(), Technique::parallel_default(), 128);
        let t0 = std::time::Instant::now();
        let _ = planner(8, 8).plan(&cost);
        let elapsed = t0.elapsed();
        assert!(elapsed.as_secs_f64() < 3.0, "planning took {elapsed:?}");
    }
}
