//! # pac-planner
//!
//! The PAC profiler and hybrid-parallelism planner (paper §5.1, Eq. 2–6).
//!
//! Planning proceeds in three steps, mirroring the paper:
//!
//! 1. **Profile** ([`profile`]) — obtain per-layer forward/backward times
//!    and sizes, either analytically from the cost model (paper-scale
//!    models) or by measuring a real micro model on this machine.
//! 2. **Partition** ([`dp`]) — for every stage count `s`, a dynamic program
//!    finds the bottleneck-optimal contiguous layer partition *and* device
//!    grouping (Eq. 2–3), pruning assignments that exceed device memory
//!    (the paper's "OOM ⇒ +∞" rule).
//! 3. **Select** ([`planner`]) — each candidate plan is evaluated with the
//!    full pipeline timeline simulator (the exact quantity Eq. 4–6
//!    approximate in closed form) and the fastest feasible plan wins.
//!
//! The whole sweep over a 48-layer model and 8 devices completes in
//! milliseconds (benchmarked in `pac-bench`), comfortably inside the
//! paper's "within three seconds on an edge device" claim.

#![deny(missing_docs)]

pub mod dp;
pub mod planner;
pub mod profile;

pub use dp::{partition_for_stages, DpTable};
pub use planner::{CandidatePlan, PlanOutcome, Planner};
pub use profile::{LayerProfileEntry, Profile};
