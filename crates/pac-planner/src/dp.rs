//! The paper's dynamic-programming partitioner (Eq. 2–3).
//!
//! `W(0→y, D_n, s)` — the minimal bottleneck stage time using the first `y`
//! layers, the first `n` devices and `s` stages — satisfies
//!
//! ```text
//! W(0→y, Dₙ, s) = min over (q, m) of max( W(0→q, Dₙ₋ₘ, s−1),
//!                                          T(q+1→y, last m devices) )
//! ```
//!
//! where `T` is the data-parallel execution time of the candidate stage on
//! its `m`-device group (Eq. 3): the slowest group member gates the stage,
//! and an assignment whose per-device working set exceeds device memory
//! gets `T = +∞` (the paper's OOM rule).

use crate::profile::Profile;
use pac_cluster::Cluster;
use pac_parallel::{ParallelPlan, StageAssignment};

/// Back-pointer lattice `back[y][n][s] = (q, m)` for plan reconstruction.
type BackPtrs = Vec<Vec<Vec<Option<(usize, usize)>>>>;

/// Memoization table and reconstruction data for one DP run.
#[derive(Debug)]
pub struct DpTable {
    /// `w[y][n][s]` = optimal bottleneck time (seconds); `INFINITY` if
    /// infeasible.
    w: Vec<Vec<Vec<f64>>>,
    /// Back-pointers `(q, m)` for reconstruction.
    back: BackPtrs,
    layers: usize,
    devices: usize,
}

/// Per-device stage execution time (Eq. 3) with the OOM rule.
///
/// `samples_per_dev` is the micro-batch share each group member processes.
/// The argument list mirrors Eq. 3's free variables one-to-one; bundling
/// them into a struct would only rename the equation.
#[allow(clippy::too_many_arguments)]
fn stage_time(
    profile: &Profile,
    cluster: &Cluster,
    start: usize,
    end: usize,
    dev_lo: usize,
    dev_hi: usize,
    samples_per_dev: f64,
    is_first: bool,
    is_last: bool,
    inflight: usize,
) -> f64 {
    let flops = profile.range_flops(start, end) * samples_per_dev;
    let slowest = cluster.devices[dev_lo..dev_hi]
        .iter()
        .map(|d| d.effective_flops())
        .fold(f64::INFINITY, f64::min);

    // Memory check (paper: OOM ⇒ +∞). Weights + grads/opt + activations
    // for the in-flight micro-batches, plus embeddings on the endpoints.
    let mut bytes = profile.range_weight_bytes(start, end)
        + 3 * profile.range_trainable_bytes(start, end)
        + (profile.range_act_bytes(start, end) as f64 * samples_per_dev).ceil() as usize * inflight;
    if is_first || is_last {
        bytes += profile.embed_bytes;
    }
    let min_mem = cluster.devices[dev_lo..dev_hi]
        .iter()
        .map(|d| d.usable_memory)
        .min()
        .unwrap_or(0);
    if bytes > min_mem {
        return f64::INFINITY;
    }
    flops / slowest
}

/// Runs the DP for exactly `n_stages` stages over all `cluster` devices and
/// reconstructs the optimal plan.
///
/// `samples_per_micro` is the micro-batch size before group subdivision;
/// `inflight` bounds concurrently retained micro-batches (stage count under
/// 1F1B — callers usually pass `n_stages`).
///
/// Returns `None` when no feasible partition exists (every assignment OOMs
/// or there are fewer layers than stages).
pub fn partition_for_stages(
    profile: &Profile,
    cluster: &Cluster,
    n_stages: usize,
    samples_per_micro: f64,
    inflight: usize,
) -> Option<(ParallelPlan, f64)> {
    let l_n = profile.num_layers();
    let d_n = cluster.len();
    if n_stages == 0 || n_stages > l_n || n_stages > d_n {
        return None;
    }

    let inf = f64::INFINITY;
    // w[y][n][s]: first y layers, first n devices, s stages.
    let mut w = vec![vec![vec![inf; n_stages + 1]; d_n + 1]; l_n + 1];
    let mut back: BackPtrs = vec![vec![vec![None; n_stages + 1]; d_n + 1]; l_n + 1];
    w[0][0][0] = 0.0;

    for s in 1..=n_stages {
        for y in s..=l_n {
            for n in s..=d_n {
                // The new (s-th) stage takes layers q..y on devices n-m..n.
                for q in (s - 1)..y {
                    for m in 1..=(n - (s - 1)) {
                        let prev = w[q][n - m][s - 1];
                        if !prev.is_finite() {
                            continue;
                        }
                        let t = stage_time(
                            profile,
                            cluster,
                            q,
                            y,
                            n - m,
                            n,
                            samples_per_micro / m as f64,
                            q == 0,
                            y == l_n,
                            inflight,
                        );
                        let cand = prev.max(t);
                        if cand < w[y][n][s] {
                            w[y][n][s] = cand;
                            back[y][n][s] = Some((q, m));
                        }
                    }
                }
            }
        }
    }

    let table = DpTable {
        w,
        back,
        layers: l_n,
        devices: d_n,
    };
    table.reconstruct(n_stages)
}

impl DpTable {
    /// Reconstructs the optimal plan for `n_stages` from the back-pointers.
    fn reconstruct(&self, n_stages: usize) -> Option<(ParallelPlan, f64)> {
        let bottleneck = self.w[self.layers][self.devices][n_stages];
        if !bottleneck.is_finite() {
            return None;
        }
        let mut stages_rev = Vec::with_capacity(n_stages);
        let mut y = self.layers;
        let mut n = self.devices;
        for s in (1..=n_stages).rev() {
            let (q, m) = self.back[y][n][s]?;
            stages_rev.push(StageAssignment {
                layer_start: q,
                layer_end: y,
                devices: (n - m..n).collect(),
            });
            y = q;
            n -= m;
        }
        stages_rev.reverse();
        Some((ParallelPlan { stages: stages_rev }, bottleneck))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pac_cluster::CostModel;
    use pac_model::ModelConfig;
    use pac_peft::Technique;

    fn profile(cfg: ModelConfig, t: Technique) -> Profile {
        Profile::from_cost_model(&CostModel::new(cfg, t, 128))
    }

    #[test]
    fn single_stage_uses_all_devices() {
        let p = profile(ModelConfig::t5_base(), Technique::parallel_default());
        let cluster = Cluster::nanos(4);
        let (plan, t) = partition_for_stages(&p, &cluster, 1, 4.0, 1).unwrap();
        assert_eq!(plan.num_stages(), 1);
        assert_eq!(plan.stages[0].group_size(), 4);
        assert!(plan.validate(p.num_layers(), 4).is_ok());
        assert!(t.is_finite() && t > 0.0);
    }

    #[test]
    fn partitions_are_time_balanced_not_count_balanced() {
        // Decoder layers process 8 tokens vs the encoder's 128, so a
        // time-balanced partition packs many decoder layers into one stage.
        // The DP must balance *time*, which means stage FLOP sums are even
        // though layer counts are not.
        let p = profile(ModelConfig::t5_base(), Technique::parallel_default());
        let cluster = Cluster::nanos(4);
        let (plan, bottleneck) = partition_for_stages(&p, &cluster, 4, 4.0, 4).unwrap();
        assert_eq!(plan.num_stages(), 4);
        assert!(plan.validate(24, 4).is_ok());
        let times: Vec<f64> = plan
            .stages
            .iter()
            .map(|s| p.range_flops(s.layer_start, s.layer_end))
            .collect();
        let max = times.iter().cloned().fold(0.0, f64::max);
        let mean = times.iter().sum::<f64>() / times.len() as f64;
        assert!(max / mean < 1.5, "time-unbalanced: {times:?}");
        // The reported bottleneck corresponds to the max stage time.
        assert!(bottleneck > 0.0);
    }

    #[test]
    fn per_device_work_is_invariant_to_stage_count() {
        // With all 8 devices in use, the total FLOPs per device is the same
        // whether the model is 2 stages × 4-wide or 8 stages × 1-wide, so
        // bottleneck times must be within granularity of each other (the
        // pipeline *bubble* difference is what the simulator adds on top).
        let p = profile(ModelConfig::t5_base(), Technique::parallel_default());
        let cluster = Cluster::nanos(8);
        let (_, t2) = partition_for_stages(&p, &cluster, 2, 8.0, 2).unwrap();
        let (_, t8) = partition_for_stages(&p, &cluster, 8, 8.0, 8).unwrap();
        let ratio = t8 / t2;
        assert!((0.6..1.7).contains(&ratio), "t8 {t8} vs t2 {t2}");
    }

    #[test]
    fn infeasible_requests_return_none() {
        let p = profile(ModelConfig::t5_base(), Technique::parallel_default());
        let cluster = Cluster::nanos(2);
        assert!(partition_for_stages(&p, &cluster, 0, 1.0, 1).is_none());
        assert!(partition_for_stages(&p, &cluster, 3, 1.0, 1).is_none()); // > devices
        let tiny = Cluster::nanos(30);
        assert!(partition_for_stages(&p, &tiny, 25, 1.0, 1).is_none()); // > layers
    }

    #[test]
    fn oom_rule_rejects_single_device_t5_large_full() {
        // A full-fine-tuning T5-Large stage on one Nano cannot fit: the DP
        // must return None for the 1-stage/1-device request.
        let p = profile(ModelConfig::t5_large(), Technique::Full);
        let cluster = Cluster::nanos(1);
        assert!(partition_for_stages(&p, &cluster, 1, 16.0, 1).is_none());
    }

    #[test]
    fn heterogeneous_groups_respect_slowest_member() {
        // With one fast and one slow device in the same group the stage
        // time must be gated by the slow one: splitting into 2 stages puts
        // the boundary so the slow device gets less work.
        let p = profile(ModelConfig::t5_base(), Technique::parallel_default());
        let cluster = Cluster::smart_home(); // TX2, 2× Nano, Pi4
        let result = partition_for_stages(&p, &cluster, 2, 4.0, 2);
        assert!(result.is_some());
        let (plan, t) = result.unwrap();
        assert!(plan.validate(24, 4).is_ok());
        assert!(t.is_finite());
    }
}
