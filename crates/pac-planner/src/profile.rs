//! Runtime profiles consumed by the planner.

use pac_cluster::CostModel;
use serde::{Deserialize, Serialize};

/// Per-layer profile entry, normalized per sample.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct LayerProfileEntry {
    /// Forward FLOPs per sample.
    pub fwd_flops: f64,
    /// Backward FLOPs per sample (dX + dW under the profiled technique).
    pub bwd_flops: f64,
    /// Resident weight bytes.
    pub weight_bytes: usize,
    /// Trainable (gradient/optimizer-bearing) bytes.
    pub trainable_bytes: usize,
    /// Retained activation bytes per sample.
    pub act_bytes: usize,
    /// Stage-boundary payload bytes per sample.
    pub boundary_bytes: usize,
}

/// A complete model profile: one entry per backbone layer, plus shared
/// (embedding) weights charged to the pipeline endpoints.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Profile {
    /// Per-layer entries in pipeline order.
    pub layers: Vec<LayerProfileEntry>,
    /// Embedding bytes resident on the first and last stages.
    pub embed_bytes: usize,
}

impl Profile {
    /// Analytic profiling from the cost model — the calibration-dataset
    /// profiling pass of the paper (Step 1), computed in closed form since
    /// the simulator's "runtime" *is* the cost model.
    pub fn from_cost_model(cost: &CostModel) -> Self {
        let layers = cost
            .layer_costs()
            .iter()
            .map(|l| LayerProfileEntry {
                fwd_flops: l.fwd_flops,
                bwd_flops: l.bwd_flops(),
                weight_bytes: l.weight_bytes,
                trainable_bytes: l.trainable_bytes,
                act_bytes: l.retained_act_bytes,
                boundary_bytes: l.boundary_bytes,
            })
            .collect();
        Profile {
            layers,
            embed_bytes: cost.config.embedding_params() * 4,
        }
    }

    /// Wall-clock profiling of a real micro model on this machine: times
    /// each layer's forward and backward over `reps` repetitions and
    /// converts seconds to "FLOPs" against a 1 FLOP/s reference device, so
    /// plans computed from measured profiles are directly comparable.
    pub fn measure_micro(
        model: &pac_model::EncoderModel,
        batch: &[Vec<usize>],
        reps: usize,
    ) -> Self {
        use std::time::Instant;
        let reps = reps.max(1);
        let b = batch.len().max(1);
        let mut model = model.clone();
        let mut entries = Vec::with_capacity(model.layers.len());

        // Embed once to get a representative hidden state.
        let (hidden, _) = model
            .embed_batch_for_profile(batch)
            .expect("profiling batch must be well-formed");
        let mut x = hidden;
        for li in 0..model.layers.len() {
            let t0 = Instant::now();
            let mut ctx = None;
            for _ in 0..reps {
                let (y, c) = model.layers[li]
                    .forward(&x, None)
                    .expect("profiled forward");
                ctx = Some((y, c));
            }
            let fwd_s = t0.elapsed().as_secs_f64() / reps as f64;
            let (y, c) = ctx.expect("at least one rep");

            let dy = pac_tensor::Tensor::ones(y.dims());
            let t1 = Instant::now();
            for _ in 0..reps {
                let _ = model.layers[li]
                    .backward(&c, &dy)
                    .expect("profiled backward");
            }
            let bwd_s = t1.elapsed().as_secs_f64() / reps as f64;

            let mut weight_bytes = 0usize;
            pac_nn::Module::visit_params_ref(&model.layers[li], &mut |p| {
                weight_bytes += p.value.size_bytes();
            });
            let boundary = y.size_bytes() / b;
            entries.push(LayerProfileEntry {
                fwd_flops: fwd_s / b as f64,
                bwd_flops: bwd_s / b as f64,
                weight_bytes,
                trainable_bytes: weight_bytes,
                act_bytes: 8 * boundary,
                boundary_bytes: boundary,
            });
            x = y;
        }
        Profile {
            layers: entries,
            embed_bytes: model.embed.table.value.size_bytes(),
        }
    }

    /// Number of layers.
    pub fn num_layers(&self) -> usize {
        self.layers.len()
    }

    /// Total step FLOPs per sample over a contiguous layer range.
    pub fn range_flops(&self, start: usize, end: usize) -> f64 {
        self.layers[start..end]
            .iter()
            .map(|l| l.fwd_flops + l.bwd_flops)
            .sum()
    }

    /// Weight bytes over a range.
    pub fn range_weight_bytes(&self, start: usize, end: usize) -> usize {
        self.layers[start..end].iter().map(|l| l.weight_bytes).sum()
    }

    /// Trainable bytes over a range.
    pub fn range_trainable_bytes(&self, start: usize, end: usize) -> usize {
        self.layers[start..end]
            .iter()
            .map(|l| l.trainable_bytes)
            .sum()
    }

    /// Retained activation bytes per sample over a range.
    pub fn range_act_bytes(&self, start: usize, end: usize) -> usize {
        self.layers[start..end].iter().map(|l| l.act_bytes).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pac_model::ModelConfig;
    use pac_peft::Technique;
    use pac_tensor::rng::seeded;
    use rand::Rng as _;

    #[test]
    fn analytic_profile_covers_all_layers() {
        let cost = CostModel::new(ModelConfig::t5_base(), Technique::parallel_default(), 128);
        let p = Profile::from_cost_model(&cost);
        assert_eq!(p.num_layers(), 24);
        assert!(p.embed_bytes > 0);
        assert!(p.layers.iter().all(|l| l.fwd_flops > 0.0));
        // Range accessors are additive.
        let whole = p.range_flops(0, 24);
        let split = p.range_flops(0, 10) + p.range_flops(10, 24);
        assert!((whole - split).abs() < 1e-6);
        assert_eq!(
            p.range_weight_bytes(0, 24),
            p.range_weight_bytes(0, 7) + p.range_weight_bytes(7, 24)
        );
    }

    #[test]
    fn measured_profile_has_positive_times() {
        let cfg = ModelConfig::micro(3, 0, 16, 2);
        let model = pac_model::EncoderModel::new(&cfg, 2, &mut seeded(300));
        let mut rng = seeded(301);
        let batch: Vec<Vec<usize>> = (0..2)
            .map(|_| (0..4).map(|_| rng.gen_range(0..64)).collect())
            .collect();
        let p = Profile::measure_micro(&model, &batch, 2);
        assert_eq!(p.num_layers(), 3);
        for l in &p.layers {
            assert!(l.fwd_flops > 0.0, "forward time must be positive");
            assert!(l.bwd_flops > 0.0, "backward time must be positive");
            assert!(l.weight_bytes > 0);
            assert!(l.boundary_bytes > 0);
        }
    }
}
