//! Cache-phase bitwise equivalence (paper §4.2).
//!
//! The activation cache must be a *pure* optimization: training epochs ≥ 2
//! from cached backbone activations has to produce bitwise-identical
//! results — every epoch loss bit and every final parameter bit — to
//! recomputing the frozen backbone forward each epoch. And that identity
//! must hold at every parallelism width, because the tensor kernels commit
//! to width-independent reduction order.

use pac_core::{finetune, finetune_with_cache, TrainConfig};
use pac_data::{Dataset, TaskKind};
use pac_model::ModelConfig;
use pac_nn::Module;
use pac_peft::{ActivationCache, Technique, Tuner};
use pac_tensor::rng::seeded;
use pac_tensor::Tensor;

const WIDTHS: [usize; 3] = [1, 2, 8];

struct Outcome {
    losses: Vec<f32>,
    params: Vec<Tensor>,
}

fn params_of(tuner: &Tuner) -> Vec<Tensor> {
    let mut out = Vec::new();
    tuner.visit_params_ref(&mut |p| out.push(p.value.clone()));
    out
}

fn run(width: usize, cached: bool) -> Outcome {
    rayon::pool::set_max_concurrency(width);
    let cfg = ModelConfig::micro(2, 1, 16, 2);
    let mut tuner = Tuner::new(Technique::parallel_default(), &cfg, 2, &mut seeded(411));
    let (train, eval) = Dataset::generate(TaskKind::Sst2, 32, 17, 5).split(0.8);
    let tcfg = TrainConfig {
        epochs: 3,
        ..Default::default()
    };
    let report = if cached {
        let mut cache = ActivationCache::new();
        finetune_with_cache(&mut tuner, &train, &eval, &tcfg, &mut cache).expect("cached run")
    } else {
        finetune(&mut tuner, &train, &eval, &tcfg).expect("plain run")
    };
    rayon::pool::set_max_concurrency(usize::MAX);
    Outcome {
        losses: report.epoch_losses,
        params: params_of(&tuner),
    }
}

fn assert_bitwise(a: &Outcome, b: &Outcome, what: &str) {
    assert_eq!(a.losses.len(), b.losses.len(), "{what}: epoch count");
    for (e, (x, y)) in a.losses.iter().zip(b.losses.iter()).enumerate() {
        assert_eq!(
            x.to_bits(),
            y.to_bits(),
            "{what}: epoch {e} loss bits differ: {x} vs {y}"
        );
    }
    assert_eq!(a.params.len(), b.params.len(), "{what}: param count");
    for (i, (x, y)) in a.params.iter().zip(b.params.iter()).enumerate() {
        for (p, q) in x.data().iter().zip(y.data().iter()) {
            assert_eq!(p.to_bits(), q.to_bits(), "{what}: param {i} bits differ");
        }
    }
}

/// Epochs ≥ 2 served from the activation cache are bitwise identical —
/// loss bits and final adapter parameters — to recomputing the frozen
/// backbone every epoch, at every pool width.
#[test]
fn cached_epochs_are_bitwise_identical_to_backbone_recompute() {
    let reference = run(1, false);
    assert_eq!(
        reference.losses.len(),
        3,
        "needs epochs >= 2 to mean anything"
    );
    for width in WIDTHS {
        let cached = run(width, true);
        assert_bitwise(
            &reference,
            &cached,
            &format!("cached(width={width}) vs recompute(width=1)"),
        );
    }
}

/// The backbone-recompute path itself is width-invariant — otherwise the
/// cached-vs-recomputed identity above could mask a nondeterministic
/// kernel by comparing two equally-wrong runs.
#[test]
fn recompute_path_is_pool_width_invariant() {
    let reference = run(1, false);
    for width in &WIDTHS[1..] {
        let other = run(*width, false);
        assert_bitwise(&reference, &other, &format!("recompute width {width} vs 1"));
    }
}
