//! Simulated end-to-end training-time estimation — the machinery behind
//! Table 2 (training hours with OOM verdicts) and Figures 9/11.

use pac_cluster::{Cluster, CollectiveModel, CostModel};
use pac_data::TaskKind;
use pac_model::ModelConfig;
use pac_parallel::{
    simulate::{simulate_cached_dp_step, simulate_ecofl},
    simulate_data_parallel, simulate_plan, ParallelPlan, Schedule,
};
use pac_peft::{ActivationCache, Technique};
use pac_planner::Planner;
use serde::{Deserialize, Serialize};

/// The training systems compared in the paper.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum System {
    /// Single-device fine-tuning.
    Standalone,
    /// Eco-FL (Ye et al. 2022): straight pipeline parallelism, one stage
    /// per device, GPipe-style flush.
    EcoFl,
    /// EDDL (Hao & Zhang 2021): pure data parallelism, full replica per
    /// device.
    Eddl,
    /// PAC (this paper): planner-chosen hybrid parallelism with 1F1B, plus
    /// the activation cache for epochs ≥ 2.
    Pac,
}

impl System {
    /// Display name as in the paper's tables.
    pub fn name(&self) -> &'static str {
        match self {
            System::Standalone => "Standalone",
            System::EcoFl => "Eco-FL",
            System::Eddl => "EDDL",
            System::Pac => "PAC (Ours)",
        }
    }

    /// The baselines in Table 2 row order.
    pub fn baselines() -> [System; 3] {
        [System::Standalone, System::EcoFl, System::Eddl]
    }
}

/// One Table-2 cell: either a simulated duration or an OOM verdict.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum CellResult {
    /// Training completes in this many hours.
    Hours(f64),
    /// At least one device exceeds its memory capacity.
    Oom,
}

impl CellResult {
    /// The duration, if feasible.
    pub fn hours(&self) -> Option<f64> {
        match self {
            CellResult::Hours(h) => Some(*h),
            CellResult::Oom => None,
        }
    }

    /// Formats like the paper's tables (`"0.14"` or `"OOM"`).
    pub fn display(&self) -> String {
        match self {
            CellResult::Hours(h) => format!("{h:.2}"),
            CellResult::Oom => "OOM".into(),
        }
    }
}

/// Evaluation geometry shared by the Table 2 experiments.
const MINI_BATCH: usize = 16;
const SEQ_LEN: usize = 128;

fn steps_per_epoch(task: TaskKind) -> usize {
    task.train_size().div_ceil(MINI_BATCH)
}

/// Redistribution time between PAC phase 1 and phase 2 (paper §5.2): an
/// allgather of the adapter parameters plus reshuffling each device's
/// locally-cached activations to the data-parallel sharding.
fn redistribution_time(cluster: &Cluster, cost: &CostModel, n_samples: usize) -> f64 {
    let n = cluster.len();
    if n <= 1 {
        return 0.0;
    }
    let coll = CollectiveModel::new(cluster.link);
    let params = coll.allgather_time(n, cost.trainable_bytes_total());
    let cache_bytes = ActivationCache::predicted_bytes(
        n_samples,
        cost.seq,
        cost.config.hidden,
        cost.config.enc_layers,
    ) + ActivationCache::predicted_bytes(
        n_samples,
        cost.dec_seq,
        cost.config.hidden,
        cost.config.dec_layers,
    );
    // Each device keeps ~1/n of the cache and fetches nothing it already
    // holds; cross-device moves are ~(n−1)/n of the total, spread over n
    // parallel links.
    let moved = cache_bytes as f64 * (n - 1) as f64 / (n * n) as f64;
    params + moved * 8.0 / cluster.link.bandwidth_bps
}

/// Estimates one (system, technique, model, task) cell on `cluster`.
///
/// Returns the simulated total training time for the paper's epoch counts
/// (3 for MRPC/STS-B, 1 for SST-2/QNLI), or [`CellResult::Oom`].
pub fn estimate_cell(
    system: System,
    technique: Technique,
    model: &ModelConfig,
    task: TaskKind,
    cluster: &Cluster,
) -> CellResult {
    let cost = CostModel::new(model.clone(), technique, SEQ_LEN);
    let steps = steps_per_epoch(task);
    let epochs = task.paper_epochs();
    let limit = cluster
        .devices
        .iter()
        .map(|d| d.usable_memory)
        .min()
        .unwrap_or(0);
    let layers = cost.layer_costs().len();

    let step_time: f64 = match system {
        System::Standalone => {
            let single = Cluster {
                devices: vec![cluster.devices[0].clone()],
                link: cluster.link,
            };
            // Gradient accumulation over small micro-batches keeps the
            // activation working set feasible on one device.
            let plan = ParallelPlan::standalone(layers);
            let sim = simulate_plan(&single, &cost, &plan, MINI_BATCH, 8, Schedule::OneFOneB);
            if sim.oom_stage(limit).is_some() {
                return CellResult::Oom;
            }
            sim.makespan_s
        }
        System::EcoFl => {
            // Eco-FL caps in-flight micro-batches to fit memory (§6.2).
            let Some(sim) = simulate_ecofl(cluster, &cost, MINI_BATCH, cluster.len()) else {
                return CellResult::Oom;
            };
            sim.makespan_s
        }
        System::Eddl => {
            let sim = simulate_data_parallel(cluster, &cost, MINI_BATCH);
            if sim.oom_device(limit).is_some() {
                return CellResult::Oom;
            }
            sim.step_s
        }
        System::Pac => {
            let planner = Planner::paper_defaults(cluster.clone(), MINI_BATCH);
            let Some(outcome) = planner.plan(&cost) else {
                return CellResult::Oom;
            };
            // Epoch 1 at the planned hybrid configuration.
            let epoch1 = outcome.best_makespan_s * steps as f64;
            if epochs == 1 || !technique.supports_activation_cache() {
                return CellResult::Hours(epoch1 * epochs as f64 / 3600.0);
            }
            // Epochs ≥ 2 from the activation cache, after redistribution.
            let cached = simulate_cached_dp_step(cluster, &cost, MINI_BATCH);
            if cached.oom_device(limit).is_some() {
                return CellResult::Oom;
            }
            let redistribute = redistribution_time(cluster, &cost, task.train_size());
            let total = epoch1 + redistribute + cached.step_s * steps as f64 * (epochs - 1) as f64;
            return CellResult::Hours(total / 3600.0);
        }
    };

    CellResult::Hours(step_time * steps as f64 * epochs as f64 / 3600.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn nanos8() -> Cluster {
        Cluster::nanos(8)
    }

    #[test]
    fn full_fine_tuning_ooms_everywhere_like_table2_row1() {
        // Table 2: Full × Standalone/EDDL = OOM on all models; Eco-FL OOMs
        // on T5-Large.
        for model in ModelConfig::paper_models() {
            for system in [System::Standalone, System::Eddl] {
                let r = estimate_cell(system, Technique::Full, &model, TaskKind::Mrpc, &nanos8());
                assert_eq!(
                    r,
                    CellResult::Oom,
                    "{} × Full × {}",
                    system.name(),
                    model.name
                );
            }
        }
        let r = estimate_cell(
            System::EcoFl,
            Technique::Full,
            &ModelConfig::t5_large(),
            TaskKind::Mrpc,
            &nanos8(),
        );
        assert_eq!(r, CellResult::Oom, "Eco-FL × Full × T5-Large");
    }

    #[test]
    fn eddl_with_peft_runs_t5_base_but_ooms_on_larger() {
        let r = estimate_cell(
            System::Eddl,
            Technique::adapters_default(),
            &ModelConfig::t5_base(),
            TaskKind::Mrpc,
            &nanos8(),
        );
        assert!(r.hours().is_some(), "EDDL × Adapters × T5-Base should run");
        for model in [ModelConfig::bart_large(), ModelConfig::t5_large()] {
            let r = estimate_cell(
                System::Eddl,
                Technique::adapters_default(),
                &model,
                TaskKind::Mrpc,
                &nanos8(),
            );
            assert_eq!(r, CellResult::Oom, "EDDL × Adapters × {}", model.name);
        }
    }

    #[test]
    fn pac_is_fastest_on_mrpc_t5_base() {
        // Table 2 column 1: PAC 0.14 h beats Eco-FL×Adapters 0.39 h,
        // EDDL×Adapters 0.34 h and Standalone×Adapters 1.21 h.
        let cluster = nanos8();
        let model = ModelConfig::t5_base();
        let pac = estimate_cell(
            System::Pac,
            Technique::parallel_default(),
            &model,
            TaskKind::Mrpc,
            &cluster,
        )
        .hours()
        .expect("PAC must run");
        for (system, technique) in [
            (System::Standalone, Technique::adapters_default()),
            (System::EcoFl, Technique::adapters_default()),
            (System::Eddl, Technique::adapters_default()),
            (System::EcoFl, Technique::lora_default()),
            (System::Eddl, Technique::lora_default()),
        ] {
            if let Some(h) =
                estimate_cell(system, technique, &model, TaskKind::Mrpc, &cluster).hours()
            {
                assert!(
                    pac < h,
                    "PAC {pac:.3} h not faster than {} × {} at {h:.3} h",
                    system.name(),
                    technique.name()
                );
            }
        }
    }

    #[test]
    fn pac_speedup_over_standalone_is_paper_scale() {
        // The paper's headline: up to 8.64× faster than Standalone+PEFT on
        // the cached datasets. Expect a large multiple (≥ 4×).
        let cluster = nanos8();
        let model = ModelConfig::t5_base();
        let pac = estimate_cell(
            System::Pac,
            Technique::parallel_default(),
            &model,
            TaskKind::Mrpc,
            &cluster,
        )
        .hours()
        .unwrap();
        let standalone = estimate_cell(
            System::Standalone,
            Technique::adapters_default(),
            &model,
            TaskKind::Mrpc,
            &cluster,
        )
        .hours()
        .unwrap();
        let speedup = standalone / pac;
        assert!(speedup > 4.0, "speedup only {speedup:.2}×");
    }

    #[test]
    fn large_datasets_take_proportionally_longer() {
        let cluster = nanos8();
        let model = ModelConfig::t5_base();
        let mrpc = estimate_cell(
            System::Pac,
            Technique::parallel_default(),
            &model,
            TaskKind::Mrpc,
            &cluster,
        )
        .hours()
        .unwrap();
        let qnli = estimate_cell(
            System::Pac,
            Technique::parallel_default(),
            &model,
            TaskKind::Qnli,
            &cluster,
        )
        .hours()
        .unwrap();
        // QNLI is 28× more data but only 1 epoch (vs 3, 2 cached): expect
        // roughly an order of magnitude more time.
        assert!(qnli > 4.0 * mrpc, "qnli {qnli} vs mrpc {mrpc}");
    }

    #[test]
    fn redistribution_is_small_fraction_of_training() {
        // Paper §5.2: redistribution ≈ 8% of a 3-epoch BART-Large MRPC run.
        let cluster = nanos8();
        let cost = CostModel::new(
            ModelConfig::bart_large(),
            Technique::parallel_default(),
            SEQ_LEN,
        );
        let redist = redistribution_time(&cluster, &cost, TaskKind::Mrpc.train_size());
        let total = estimate_cell(
            System::Pac,
            Technique::parallel_default(),
            &ModelConfig::bart_large(),
            TaskKind::Mrpc,
            &cluster,
        )
        .hours()
        .expect("PAC BART-Large must run")
            * 3600.0;
        let fraction = redist / total;
        assert!(
            (0.005..0.30).contains(&fraction),
            "redistribution fraction {fraction}"
        );
    }

    #[test]
    fn cell_display_formats() {
        assert_eq!(CellResult::Oom.display(), "OOM");
        assert_eq!(CellResult::Hours(0.141).display(), "0.14");
        assert_eq!(CellResult::Hours(0.141).hours(), Some(0.141));
        assert_eq!(CellResult::Oom.hours(), None);
    }
}
