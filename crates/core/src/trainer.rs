//! Single-process fine-tuning loops over any technique and task.

use pac_data::{metrics, Batch, Dataset, TaskKind};
use pac_nn::{cross_entropy, cross_entropy_smoothed, mse, Adam, LrSchedule, Module, Optimizer};
use pac_peft::{ActivationCache, Technique, Tuner};
use pac_tensor::{reduce, Result, Tensor};

/// Hyperparameters for a fine-tuning run.
#[derive(Debug, Clone, Copy)]
pub struct TrainConfig {
    /// Adam base learning rate.
    pub lr: f32,
    /// Number of epochs.
    pub epochs: usize,
    /// Mini-batch size.
    pub batch_size: usize,
    /// Shuffle seed.
    pub seed: u64,
    /// Optional global gradient-norm clip.
    pub clip: Option<f32>,
    /// Learning-rate schedule applied on top of `lr`.
    pub schedule: LrSchedule,
    /// Label-smoothing ε for classification tasks (0 = plain CE).
    pub label_smoothing: f32,
}

impl Default for TrainConfig {
    fn default() -> Self {
        TrainConfig {
            lr: 1e-2,
            epochs: 3,
            batch_size: 8,
            seed: 7,
            clip: Some(5.0),
            schedule: LrSchedule::Constant,
            label_smoothing: 0.0,
        }
    }
}

/// Outcome of a fine-tuning run.
#[derive(Debug, Clone)]
pub struct TrainReport {
    /// Mean training loss per epoch.
    pub epoch_losses: Vec<f32>,
    /// Final evaluation metric on [0, 100] (task-specific; see
    /// `pac_data::metrics::task_metric`).
    pub metric: f64,
    /// Cache statistics, when a cache was used.
    pub cache_stats: Option<pac_peft::CacheStats>,
}

fn batch_loss(
    tuner: &mut Tuner,
    batch: &Batch,
    task: TaskKind,
    smoothing: f32,
) -> Result<(f32, Tensor, pac_peft::TunerCtx)> {
    let (logits, ctx) = tuner.forward(&batch.tokens)?;
    let (loss, dl) = loss_and_grad(&logits, batch, task, smoothing)?;
    Ok((loss, dl, ctx))
}

fn loss_and_grad(
    logits: &Tensor,
    batch: &Batch,
    task: TaskKind,
    smoothing: f32,
) -> Result<(f32, Tensor)> {
    if task.is_regression() {
        let targets = Tensor::from_vec(batch.scores(), [batch.len(), 1])?;
        mse(logits, &targets)
    } else if smoothing > 0.0 {
        cross_entropy_smoothed(logits, &batch.classes(), smoothing)
    } else {
        cross_entropy(logits, &batch.classes())
    }
}

/// Fine-tunes `tuner` on `train`, evaluating on `eval` at the end.
///
/// # Errors
/// Propagates shape errors from the model.
pub fn finetune(
    tuner: &mut Tuner,
    train: &Dataset,
    eval: &Dataset,
    cfg: &TrainConfig,
) -> Result<TrainReport> {
    let mut opt = Adam::new(cfg.lr);
    let mut step = 0usize;
    let mut epoch_losses = Vec::with_capacity(cfg.epochs);
    for epoch in 0..cfg.epochs {
        let _epoch_span = pac_telemetry::span("trainer.epoch");
        let mut sum = 0.0f32;
        let batches = train.batches(cfg.batch_size, epoch, cfg.seed);
        for batch in &batches {
            tuner.zero_grads();
            let (loss, dl, ctx) = batch_loss(tuner, batch, train.task, cfg.label_smoothing)?;
            sum += loss;
            tuner.backward(&ctx, &dl)?;
            if let Some(c) = cfg.clip {
                tuner.clip_grad_norm(c);
            }
            opt.lr = cfg.schedule.lr_at(cfg.lr, step);
            opt.step(tuner);
            step += 1;
        }
        epoch_losses.push(sum / batches.len().max(1) as f32);
    }
    let metric = evaluate(tuner, eval)?;
    Ok(TrainReport {
        epoch_losses,
        metric,
        cache_stats: None,
    })
}

/// PAC's Parallel-Adapters fine-tuning loop with the activation cache
/// (paper §4.2): epoch 1 runs the frozen backbone forward and fills the
/// cache; epochs ≥ 2 train purely from cached activations.
///
/// # Errors
/// Returns an error if `tuner` is not a Parallel-Adapters tuner or on shape
/// errors.
pub fn finetune_with_cache(
    tuner: &mut Tuner,
    train: &Dataset,
    eval: &Dataset,
    cfg: &TrainConfig,
    cache: &mut ActivationCache,
) -> Result<TrainReport> {
    debug_assert!(matches!(
        tuner.technique(),
        Technique::ParallelAdapters { .. }
    ));
    let mut opt = Adam::new(cfg.lr);
    let mut step = 0usize;
    let mut epoch_losses = Vec::with_capacity(cfg.epochs);
    for epoch in 0..cfg.epochs {
        let _epoch_span = pac_telemetry::span("trainer.epoch");
        let mut sum = 0.0f32;
        let batches = train.batches(cfg.batch_size, epoch, cfg.seed);
        for batch in &batches {
            tuner.zero_grads();
            let loss = if let Some(acts) = cache.get_batch(&batch.ids) {
                // Cache hit: no backbone forward at all.
                let _span = pac_telemetry::span("trainer.cached_batch");
                let (logits, ctx) = tuner.forward_cached(&acts)?;
                let (loss, dl) = loss_and_grad(&logits, batch, train.task, cfg.label_smoothing)?;
                tuner.backward(&ctx, &dl)?;
                loss
            } else {
                // Epoch-1 path: full forward, then fill the cache.
                let _span = pac_telemetry::span("trainer.fill_batch");
                let (logits, ctx) = tuner.forward(&batch.tokens)?;
                let acts = tuner
                    .cacheable_acts(&ctx)
                    .expect("parallel tuner produces cacheable activations");
                cache.insert_batch(&batch.ids, acts);
                let (loss, dl) = loss_and_grad(&logits, batch, train.task, cfg.label_smoothing)?;
                tuner.backward(&ctx, &dl)?;
                loss
            };
            sum += loss;
            if let Some(c) = cfg.clip {
                tuner.clip_grad_norm(c);
            }
            opt.lr = cfg.schedule.lr_at(cfg.lr, step);
            opt.step(tuner);
            step += 1;
        }
        epoch_losses.push(sum / batches.len().max(1) as f32);
    }
    let metric = evaluate(tuner, eval)?;
    Ok(TrainReport {
        epoch_losses,
        metric,
        cache_stats: Some(cache.stats()),
    })
}

/// Evaluates `tuner` on `ds`, returning the task metric on [0, 100].
///
/// # Errors
/// Propagates shape errors from the model.
pub fn evaluate(tuner: &mut Tuner, ds: &Dataset) -> Result<f64> {
    let mut class_pred = Vec::new();
    let mut class_truth = Vec::new();
    let mut score_pred = Vec::new();
    let mut score_truth = Vec::new();
    for batch in ds.batches(16, 0, 0) {
        let (logits, _) = tuner.forward(&batch.tokens)?;
        if ds.task.is_regression() {
            score_pred.extend(logits.data().iter().copied());
            score_truth.extend(batch.scores());
        } else {
            class_pred.extend(reduce::argmax_rows(&logits));
            class_truth.extend(batch.classes());
        }
    }
    Ok(metrics::task_metric(
        ds.task,
        &class_pred,
        &class_truth,
        &score_pred,
        &score_truth,
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use pac_model::ModelConfig;
    use pac_tensor::rng::seeded;

    fn datasets(task: TaskKind, n: usize) -> (Dataset, Dataset) {
        Dataset::generate(task, n, 13, 5).split(0.8)
    }

    #[test]
    fn full_finetune_beats_chance_on_sst2() {
        let cfg = ModelConfig::micro(2, 1, 32, 4);
        let mut tuner = Tuner::new(Technique::Full, &cfg, 2, &mut seeded(400));
        let (train, eval) = datasets(TaskKind::Sst2, 120);
        let report = finetune(
            &mut tuner,
            &train,
            &eval,
            &TrainConfig {
                epochs: 6,
                lr: 3e-3,
                ..Default::default()
            },
        )
        .unwrap();
        assert!(
            report.metric > 65.0,
            "metric {} ≤ chance-ish",
            report.metric
        );
        assert!(report.epoch_losses.last().unwrap() < &report.epoch_losses[0]);
    }

    #[test]
    fn cached_finetune_hits_cache_after_first_epoch() {
        let cfg = ModelConfig::micro(2, 1, 16, 2);
        let mut tuner = Tuner::new(Technique::parallel_default(), &cfg, 2, &mut seeded(401));
        let (train, eval) = datasets(TaskKind::Sst2, 40);
        let mut cache = ActivationCache::new();
        let report = finetune_with_cache(
            &mut tuner,
            &train,
            &eval,
            &TrainConfig {
                epochs: 3,
                ..Default::default()
            },
            &mut cache,
        )
        .unwrap();
        let stats = report.cache_stats.unwrap();
        assert_eq!(stats.entries, train.len());
        // Epochs 2 and 3 hit the cache on every sample (hits are counted
        // per sample, not per batch).
        assert!(stats.hits > 0, "no cache hits recorded");
        assert_eq!(stats.hits, 2 * train.len());
    }

    #[test]
    fn cached_and_uncached_training_agree() {
        // The cache must be a pure optimization: same seeds → same final
        // parameters whether or not the cache is used.
        let cfg = ModelConfig::micro(1, 1, 16, 2);
        let (train, eval) = datasets(TaskKind::Sst2, 24);
        let tcfg = TrainConfig {
            epochs: 3,
            ..Default::default()
        };

        let mut plain = Tuner::new(Technique::parallel_default(), &cfg, 2, &mut seeded(402));
        let mut cached = plain.clone();

        let r_plain = finetune(&mut plain, &train, &eval, &tcfg).unwrap();
        let mut cache = ActivationCache::new();
        let r_cached = finetune_with_cache(&mut cached, &train, &eval, &tcfg, &mut cache).unwrap();

        assert!(
            (r_plain.metric - r_cached.metric).abs() < 1e-9,
            "metrics diverged: {} vs {}",
            r_plain.metric,
            r_cached.metric
        );
        for (a, b) in r_plain.epoch_losses.iter().zip(&r_cached.epoch_losses) {
            assert!((a - b).abs() < 1e-4, "loss diverged: {a} vs {b}");
        }
        // Parameters must match closely (identical up to f32 noise).
        let mut pa = Vec::new();
        plain.visit_params_ref(&mut |p| pa.push(p.value.clone()));
        let mut idx = 0;
        cached.visit_params_ref(&mut |p| {
            assert!(
                p.value.approx_eq(&pa[idx], 1e-4),
                "param {idx} diverged between cached and uncached training"
            );
            idx += 1;
        });
    }

    #[test]
    fn int8_cached_training_stays_close_to_f32() {
        // The int8 cache is lossy (half-quantization-step perturbation of
        // the frozen activations), so it cannot be bitwise — but training
        // from it must land within a small tolerance of the f32 reference.
        let cfg = ModelConfig::micro(1, 1, 16, 2);
        let (train, eval) = datasets(TaskKind::Sst2, 24);
        let tcfg = TrainConfig {
            epochs: 3,
            ..Default::default()
        };

        let mut f32_tuner = Tuner::new(Technique::parallel_default(), &cfg, 2, &mut seeded(402));
        let mut q8_tuner = f32_tuner.clone();

        let mut f32_cache = ActivationCache::new();
        let r_f32 =
            finetune_with_cache(&mut f32_tuner, &train, &eval, &tcfg, &mut f32_cache).unwrap();
        let mut q8_cache = ActivationCache::new_int8();
        let r_q8 = finetune_with_cache(&mut q8_tuner, &train, &eval, &tcfg, &mut q8_cache).unwrap();

        let f32_loss = *r_f32.epoch_losses.last().unwrap();
        let q8_loss = *r_q8.epoch_losses.last().unwrap();
        assert!(
            (f32_loss - q8_loss).abs() < 0.5,
            "int8-cache final loss {q8_loss} drifted from f32 {f32_loss}"
        );
        // And the resident cache is ~4× smaller for the same samples. The
        // micro model's hidden=16 makes the 4-byte per-row scale a 25%
        // overhead (20 vs 64 bytes/row = 3.2×); at realistic hidden sizes
        // the ratio approaches 4× (h=64 → 3.76×, h=768 → 3.98×).
        let fb = f32_cache.stats().bytes as f64;
        let qb = q8_cache.stats().bytes as f64;
        assert!(fb / qb >= 3.0, "cache cut only {:.2}x", fb / qb);
        assert_eq!(q8_cache.stats().logical_bytes, f32_cache.stats().bytes);
    }

    #[test]
    fn schedule_and_smoothing_path_trains() {
        let cfg = ModelConfig::micro(1, 1, 16, 2);
        let mut tuner = Tuner::new(Technique::parallel_default(), &cfg, 2, &mut seeded(404));
        let (train, eval) = datasets(TaskKind::Sst2, 32);
        let report = finetune(
            &mut tuner,
            &train,
            &eval,
            &TrainConfig {
                epochs: 4,
                schedule: LrSchedule::WarmupCosine {
                    warmup: 4,
                    total: 16,
                    floor: 0.1,
                },
                label_smoothing: 0.1,
                ..Default::default()
            },
        )
        .unwrap();
        assert!(report.epoch_losses.iter().all(|l| l.is_finite()));
        assert!(report.epoch_losses.last().unwrap() < &report.epoch_losses[0]);
    }

    #[test]
    fn regression_task_trains() {
        let cfg = ModelConfig::micro(2, 1, 32, 4);
        let mut tuner = Tuner::new(Technique::parallel_default(), &cfg, 1, &mut seeded(403));
        let (train, eval) = datasets(TaskKind::StsB, 100);
        let report = finetune(
            &mut tuner,
            &train,
            &eval,
            &TrainConfig {
                epochs: 8,
                lr: 5e-3,
                ..Default::default()
            },
        )
        .unwrap();
        // Pearson-Spearman of a learning model must be clearly positive.
        assert!(report.metric > 20.0, "STS-B metric {}", report.metric);
    }
}
