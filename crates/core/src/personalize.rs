//! High-level personalization API — the "intelligent personal assistant"
//! loop of the paper's introduction, as a library surface.
//!
//! A [`Personalizer`] wraps a pretrained backbone with Parallel Adapters
//! and accumulates user interactions as labeled text. Training uses the
//! PAC recipe end to end: the first pass over each example fills the
//! activation cache, later passes train the side network from the cache
//! alone; the personalization can be exported/imported as an adapter-only
//! checkpoint (megabytes, not the backbone).

use pac_data::Tokenizer;
use pac_model::EncDecModel;
use pac_nn::{cross_entropy, Adam, LrSchedule, Module, Optimizer};
use pac_peft::{checkpoint, ActivationCache, CacheStats, CheckpointError, Technique, Tuner};
use pac_tensor::rng::seeded;
use pac_tensor::{reduce, Result};

/// One observed interaction.
#[derive(Debug, Clone)]
struct Interaction {
    id: u64,
    tokens: Vec<usize>,
    label: usize,
}

/// Configuration for a [`Personalizer`].
#[derive(Debug, Clone, Copy)]
pub struct PersonalizerConfig {
    /// Number of label classes.
    pub n_classes: usize,
    /// Parallel-Adapters reduction factor.
    pub reduction: usize,
    /// Token sequence length for every interaction.
    pub seq_len: usize,
    /// Base learning rate (warmup + constant schedule).
    pub lr: f32,
    /// RNG seed for the side-network init.
    pub seed: u64,
}

impl Default for PersonalizerConfig {
    fn default() -> Self {
        PersonalizerConfig {
            n_classes: 2,
            reduction: 4,
            seq_len: 12,
            lr: 1e-2,
            seed: 42,
        }
    }
}

/// Accumulates user interactions and fine-tunes a personal LLM in place.
#[derive(Debug, Clone)]
pub struct Personalizer {
    tuner: Tuner,
    tokenizer: Tokenizer,
    cache: ActivationCache,
    config: PersonalizerConfig,
    interactions: Vec<Interaction>,
    opt: Adam,
    schedule: LrSchedule,
    step: usize,
}

impl Personalizer {
    /// Wraps a (pretrained) backbone for personalization.
    pub fn new(backbone: EncDecModel, config: PersonalizerConfig) -> Self {
        let tuner = Tuner::wrap(
            Technique::ParallelAdapters {
                reduction: config.reduction,
            },
            backbone,
            config.n_classes,
            &mut seeded(config.seed),
        );
        Personalizer {
            tuner,
            tokenizer: Tokenizer::new(),
            cache: ActivationCache::new(),
            config,
            interactions: Vec::new(),
            opt: Adam::new(config.lr),
            schedule: LrSchedule::Warmup { warmup: 10 },
            step: 0,
        }
    }

    /// Records a labeled interaction (e.g. a command plus user feedback).
    pub fn observe(&mut self, text: &str, label: usize) {
        debug_assert!(label < self.config.n_classes);
        let id = self.interactions.len() as u64;
        self.interactions.push(Interaction {
            id,
            tokens: self.tokenizer.encode(text, self.config.seq_len),
            label,
        });
    }

    /// Records a labeled sentence-pair interaction (question/answer style).
    pub fn observe_pair(&mut self, a: &str, b: &str, label: usize) {
        let id = self.interactions.len() as u64;
        self.interactions.push(Interaction {
            id,
            tokens: self.tokenizer.encode_pair(a, b, self.config.seq_len),
            label,
        });
    }

    /// Number of observed interactions.
    pub fn num_interactions(&self) -> usize {
        self.interactions.len()
    }

    /// Fine-tunes on everything observed so far. Epoch 1 over each example
    /// fills the activation cache; subsequent epochs never touch the
    /// backbone. Returns the mean loss per epoch.
    ///
    /// # Errors
    /// Propagates shape errors from the model.
    pub fn train(&mut self, epochs: usize, batch_size: usize) -> Result<Vec<f32>> {
        let mut epoch_losses = Vec::with_capacity(epochs);
        for _ in 0..epochs {
            let mut sum = 0.0f32;
            let mut count = 0usize;
            for chunk in self.interactions.chunks(batch_size.max(1)) {
                let ids: Vec<u64> = chunk.iter().map(|i| i.id).collect();
                let targets: Vec<usize> = chunk.iter().map(|i| i.label).collect();
                self.tuner.zero_grads();
                let loss = if let Some(acts) = self.cache.get_batch(&ids) {
                    let (logits, ctx) = self.tuner.forward_cached(&acts)?;
                    let (loss, dl) = cross_entropy(&logits, &targets)?;
                    self.tuner.backward(&ctx, &dl)?;
                    loss
                } else {
                    let tokens: Vec<Vec<usize>> = chunk.iter().map(|i| i.tokens.clone()).collect();
                    let (logits, ctx) = self.tuner.forward(&tokens)?;
                    if let Some(acts) = self.tuner.cacheable_acts(&ctx) {
                        self.cache.insert_batch(&ids, acts);
                    }
                    let (loss, dl) = cross_entropy(&logits, &targets)?;
                    self.tuner.backward(&ctx, &dl)?;
                    loss
                };
                sum += loss;
                count += 1;
                self.tuner.clip_grad_norm(5.0);
                self.opt.lr = self.schedule.lr_at(self.config.lr, self.step);
                self.opt.step(&mut self.tuner);
                self.step += 1;
            }
            epoch_losses.push(sum / count.max(1) as f32);
        }
        Ok(epoch_losses)
    }

    /// Predicts the class of `text` with the current personalization.
    ///
    /// # Errors
    /// Propagates shape errors from the model.
    pub fn predict(&mut self, text: &str) -> Result<usize> {
        let tokens = vec![self.tokenizer.encode(text, self.config.seq_len)];
        let (logits, _) = self.tuner.forward(&tokens)?;
        Ok(reduce::argmax_rows(&logits)[0])
    }

    /// Class probabilities for `text`.
    ///
    /// # Errors
    /// Propagates shape errors from the model.
    pub fn predict_proba(&mut self, text: &str) -> Result<Vec<f32>> {
        let tokens = vec![self.tokenizer.encode(text, self.config.seq_len)];
        let (logits, _) = self.tuner.forward(&tokens)?;
        Ok(reduce::softmax_rows(&logits).data().to_vec())
    }

    /// Exports the personalization (trainable parameters only) as bytes.
    ///
    /// # Errors
    /// Propagates checkpoint serialization errors.
    pub fn export_adapter(&self) -> std::result::Result<Vec<u8>, CheckpointError> {
        checkpoint::to_bytes(&self.tuner)
    }

    /// Imports a previously exported personalization.
    ///
    /// # Errors
    /// Fails on malformed bytes or architecture mismatch.
    pub fn import_adapter(&mut self, bytes: &[u8]) -> std::result::Result<(), CheckpointError> {
        checkpoint::from_bytes(&mut self.tuner, bytes)
    }

    /// Activation-cache statistics (entries, bytes, hits, misses).
    pub fn cache_stats(&self) -> CacheStats {
        self.cache.stats()
    }

    /// Trainable / total parameter counts.
    pub fn param_counts(&self) -> (usize, usize) {
        (self.tuner.num_trainable(), self.tuner.total_params())
    }

    /// Clears the activation cache (the paper clears it after fine-tuning).
    pub fn clear_cache(&mut self) {
        self.cache.clear();
    }

    /// Read access to the underlying tuner (e.g. for evaluation utilities).
    pub fn tuner_mut(&mut self) -> &mut Tuner {
        &mut self.tuner
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pac_model::ModelConfig;

    fn personalizer(seed: u64) -> Personalizer {
        let cfg = ModelConfig::micro(2, 1, 32, 4);
        let backbone = EncDecModel::new(&cfg, 2, &mut seeded(seed));
        Personalizer::new(
            backbone,
            PersonalizerConfig {
                seed,
                ..Default::default()
            },
        )
    }

    fn observe_home_data(p: &mut Personalizer, copies: usize) {
        let positive = [
            "play my favorite song",
            "that was perfect thank you",
            "great job with the lights",
            "i love this temperature",
        ];
        let negative = [
            "no stop that immediately",
            "that is wrong turn it off",
            "bad answer try again",
            "too loud turn it down",
        ];
        for _ in 0..copies {
            for t in positive {
                p.observe(t, 1);
            }
            for t in negative {
                p.observe(t, 0);
            }
        }
    }

    #[test]
    fn learns_user_feedback() {
        let mut p = personalizer(900);
        observe_home_data(&mut p, 3);
        assert_eq!(p.num_interactions(), 24);
        let losses = p.train(12, 8).unwrap();
        assert!(
            losses.last().unwrap() < &(losses[0] * 0.8),
            "losses {losses:?}"
        );
        // The personalizer memorizes its feedback history: ≥ 75% of the
        // seen phrases classify correctly (a random frozen backbone plus a
        // small side network won't be perfect on every hash-collided
        // phrase, and does not need to be).
        let eval = [
            ("play my favorite song", 1),
            ("that was perfect thank you", 1),
            ("great job with the lights", 1),
            ("i love this temperature", 1),
            ("no stop that immediately", 0),
            ("that is wrong turn it off", 0),
            ("bad answer try again", 0),
            ("too loud turn it down", 0),
        ];
        let correct = eval
            .iter()
            .filter(|(t, l)| p.predict(t).unwrap() == *l)
            .count();
        assert!(correct >= 6, "only {correct}/8 seen phrases correct");
        let proba = p.predict_proba("that was perfect thank you").unwrap();
        assert!((proba.iter().sum::<f32>() - 1.0).abs() < 1e-4);
    }

    #[test]
    fn cache_fills_once_and_serves_later_epochs() {
        let mut p = personalizer(901);
        observe_home_data(&mut p, 1);
        p.train(3, 4).unwrap();
        let stats = p.cache_stats();
        assert_eq!(stats.entries, 8);
        // 8 samples/epoch × 2 cached epochs (hits are counted per sample).
        assert_eq!(stats.hits, 16);
        p.clear_cache();
        assert_eq!(p.cache_stats().entries, 0);
    }

    #[test]
    fn adapter_export_import_round_trip() {
        let mut trained = personalizer(902);
        observe_home_data(&mut trained, 2);
        trained.train(5, 8).unwrap();
        let bytes = trained.export_adapter().unwrap();
        let (trainable, total) = trained.param_counts();
        assert!(bytes.len() < total * 4 / 2, "adapter not compact");
        assert!(trainable < total);

        // A fresh personalizer over the *same* backbone inherits the
        // behavior by importing the adapter.
        let mut fresh = personalizer(902);
        fresh.import_adapter(&bytes).unwrap();
        assert_eq!(
            fresh.predict("play my favorite song").unwrap(),
            trained.predict("play my favorite song").unwrap()
        );
        let a = trained.predict_proba("too loud turn it down").unwrap();
        let b = fresh.predict_proba("too loud turn it down").unwrap();
        for (x, y) in a.iter().zip(&b) {
            assert!((x - y).abs() < 1e-5);
        }
    }

    #[test]
    fn pair_observations_work() {
        let mut p = personalizer(903);
        p.observe_pair("is the door locked", "yes it is locked", 1);
        p.observe_pair("is the door locked", "the weather is nice", 0);
        let losses = p.train(2, 2).unwrap();
        assert_eq!(losses.len(), 2);
        assert!(losses.iter().all(|l| l.is_finite()));
    }
}
